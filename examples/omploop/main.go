// Omploop: the paper's future-work proposal in action (§X) — an
// OpenMP-style program whose directives run on lightweight threads
// instead of Pthreads. Computes a dot product with a reduction clause
// and scales a vector with different loop schedules, on any LWT backend.
//
//	go run ./examples/omploop -backend argobots -n 1000000 -threads 4
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	"repro/omp"
)

func main() {
	backend := flag.String("backend", "argobots", "LWT backend under the directive layer")
	n := flag.Int("n", 1_000_000, "vector length")
	threads := flag.Int("threads", 4, "team size")
	flag.Parse()

	rt, err := omp.Open(omp.Config{Backend: *backend, Executors: *threads})
	if err != nil {
		log.Fatalf("omploop: %v", err)
	}
	defer rt.Close()

	x := make([]float64, *n)
	y := make([]float64, *n)
	// #pragma omp parallel for schedule(static)
	rt.ParallelFor(*n, omp.Static, 0, func(i int) {
		x[i] = float64(i % 100)
		y[i] = 2
	})

	// #pragma omp parallel for reduction(+:dot) schedule(guided)
	t0 := time.Now()
	dot := rt.ReduceFloat64(*n, omp.Guided, 1024,
		func(a, b float64) float64 { return a + b }, 0,
		func(i int) float64 { return x[i] * y[i] })
	dt := time.Since(t0)

	var want float64
	for i := 0; i < *n; i++ {
		want += x[i] * y[i]
	}
	status := "verified"
	if math.Abs(dot-want) > 1e-6*math.Abs(want) {
		status = fmt.Sprintf("FAILED (want %v)", want)
	}
	fmt.Printf("dot product on %s/%d threads: %v (%s) in %v\n",
		*backend, *threads, dot, status, dt)

	// #pragma omp parallel + single + task: task-parallel scaling.
	t0 = time.Now()
	const chunkSize = 4096
	rt.Parallel(func(rg *omp.Region, tid int) {
		rg.Single(tid, func() {
			for lo := 0; lo < *n; lo += chunkSize {
				lo := lo
				hi := lo + chunkSize
				if hi > *n {
					hi = *n
				}
				rg.Task(func() {
					for i := lo; i < hi; i++ {
						y[i] *= 3
					}
				})
			}
		})
	})
	fmt.Printf("task-parallel scale of %d elements in %v (y[0]=%v, y[n-1]=%v)\n",
		*n, time.Since(t0), y[0], y[*n-1])
}
