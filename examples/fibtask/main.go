// Fibtask: recursive divide-and-conquer task parallelism — the workload
// class the paper's §VII-D (nested task parallelism) and MassiveThreads'
// work-first design (§III-C) target. Computes Fibonacci numbers by
// spawning a ULT per recursive call down to a sequential cutoff, then
// compares the LWT backends on the same tree.
//
//	go run ./examples/fibtask -n 24 -threads 4
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	lwt "repro"
)

// fibSeq is the sequential baseline below the spawn cutoff.
func fibSeq(n int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	return fibSeq(n-1) + fibSeq(n-2)
}

// fibTask spawns the left branch as a child ULT and recurses into the
// right branch itself — the classic work-first decomposition.
func fibTask(c lwt.Ctx, n, cutoff int, out *uint64) {
	if n < cutoff {
		*out = fibSeq(n)
		return
	}
	var left, right uint64
	h := c.ULTCreate(func(cc lwt.Ctx) { fibTask(cc, n-1, cutoff, &left) })
	fibTask(c, n-2, cutoff, &right)
	c.Join(h)
	*out = left + right
}

func main() {
	n := flag.Int("n", 24, "Fibonacci index")
	cutoff := flag.Int("cutoff", 12, "sequential cutoff")
	threads := flag.Int("threads", 4, "number of executors")
	flag.Parse()

	want := fibSeq(*n)
	fmt.Printf("fib(%d) = %d, spawn cutoff %d, %d threads\n", *n, want, *cutoff, *threads)

	// The recursion-oriented backends first, then the rest.
	for _, backend := range []string{
		"massivethreads", "massivethreads-helpfirst", "argobots", "qthreads", "go",
	} {
		r, err := lwt.Open(lwt.Config{Backend: backend, Executors: *threads})
		if err != nil {
			log.Fatalf("fibtask: %v", err)
		}
		var got uint64
		t0 := time.Now()
		root := r.ULTCreate(func(c lwt.Ctx) { fibTask(c, *n, *cutoff, &got) })
		r.Join(root)
		dt := time.Since(t0)
		r.Finalize()
		status := "ok"
		if got != want {
			status = fmt.Sprintf("WRONG (got %d)", got)
		}
		fmt.Printf("  %-26s %10v  %s\n", backend, dt, status)
	}
}
