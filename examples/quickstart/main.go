// Quickstart: the paper's Listing 4 ("pseudo-code using abstracted LWT
// functions") as a running program on the unified API. Pick any backend
// with -backend; the same reduced function set — init, create, yield,
// join, finalize — works on all of them, which is exactly the paper's
// §VIII-C observation.
//
//	go run ./examples/quickstart -backend argobots -n 100 -threads 4
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"

	lwt "repro"
)

func main() {
	backend := flag.String("backend", "argobots", "unified-API backend to run on")
	n := flag.Int("n", 100, "number of work units (Listing 4's N)")
	threads := flag.Int("threads", 4, "number of executors")
	flag.Parse()

	// initialization_function()
	r, err := lwt.New(*backend, *threads)
	if err != nil {
		log.Fatalf("quickstart: %v (backends: %v)", err, lwt.Backends())
	}

	// for i in 0..N: ULT_creation_function(example)
	var greeted atomic.Int64
	handles := make([]lwt.Handle, *n)
	for i := range handles {
		handles[i] = r.ULTCreate(func(lwt.Ctx) {
			greeted.Add(1) // the "Hello world" body of Listing 4
		})
	}

	// yield_function()
	r.Yield()

	// for i in 0..N: join_function()
	r.JoinAll(handles)

	// finalize_function()
	r.Finalize()

	fmt.Printf("backend %-16s: %d of %d ULTs said hello on %d threads\n",
		*backend, greeted.Load(), *n, *threads)

	caps := func() lwt.Capabilities {
		rr := lwt.MustNew(*backend, 1)
		defer rr.Finalize()
		return rr.Caps()
	}()
	fmt.Printf("Table I profile: %d hierarchy levels, %d work-unit type(s), tasklets=%v, yield_to=%v\n",
		caps.HierarchyLevels, caps.WorkUnitTypes, caps.Tasklets, caps.YieldTo)
}
