// Quickstart: the paper's Listing 4 ("pseudo-code using abstracted LWT
// functions") as a running program on the unified API, at its v2
// (GLT-shaped) surface. Pick any backend with -backend; the same reduced
// function set — open, create, yield, join, finalize — works on all of
// them, which is exactly the paper's §VIII-C observation.
//
// Migrating from the v1 surface is mechanical:
//
//	v1 (deprecated)        v2
//	---------------------  ------------------------------------------------
//	lwt.New(name, n)       lwt.Open(lwt.Config{Backend: name, Executors: n})
//	lwt.MustNew(name, n)   lwt.MustOpen(lwt.Config{...})
//	                       + Config.Scheduler, r.ULTCreateTo, c.ExecutorID,
//	                         r.NewMutex/NewBarrier/NewCond, c.YieldTo
//
//	go run ./examples/quickstart -backend argobots -n 100 -threads 4 -scheduler lifo
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"sync/atomic"

	lwt "repro"
)

func main() {
	backend := flag.String("backend", "argobots", "unified-API backend to run on")
	n := flag.Int("n", 100, "number of work units (Listing 4's N)")
	threads := flag.Int("threads", 4, "number of executors")
	scheduler := flag.String("scheduler", "", "ready-pool policy (fifo|lifo|priority|random)")
	flag.Parse()

	// initialization_function() — v2: one Config, negotiated against the
	// backend's capabilities.
	r, err := lwt.Open(lwt.Config{Backend: *backend, Executors: *threads, Scheduler: *scheduler})
	if err != nil {
		log.Fatalf("quickstart: %v (backends: %v)", err, lwt.Backends())
	}
	for _, d := range r.Degradations() {
		fmt.Printf("degraded: %s\n", d)
	}

	// for i in 0..N: ULT_creation_function(example) — dealt across the
	// executor group; backends with placement pin each unit.
	var greeted atomic.Int64
	perExec := make([]atomic.Int64, r.NumExecutors())
	handles := make([]lwt.Handle, *n)
	for i := range handles {
		i := i
		handles[i] = r.ULTCreateTo(i, func(c lwt.Ctx) {
			greeted.Add(1) // the "Hello world" body of Listing 4
			perExec[c.ExecutorID()].Add(1)
		})
	}

	// yield_function()
	r.Yield()

	// for i in 0..N: join_function()
	r.JoinAll(handles)

	caps := r.Caps()
	execs := r.NumExecutors()
	granted := r.Config().Scheduler

	// finalize_function()
	r.Finalize()

	fmt.Printf("backend %-16s: %d of %d ULTs said hello on %d executors\n",
		*backend, greeted.Load(), *n, execs)
	counts := make([]string, execs)
	for i := range counts {
		counts[i] = fmt.Sprint(perExec[i].Load())
	}
	fmt.Printf("per-executor spread  : [%s] (placement=%v)\n", strings.Join(counts, " "), caps.Placement)
	if granted == "" {
		granted = "fifo (default)"
	}
	fmt.Printf("scheduler            : %s (supported: %s)\n", granted, strings.Join(caps.Schedulers, ","))
	fmt.Printf("Table I profile      : %d hierarchy levels, %d work-unit type(s), tasklets=%v, yield_to=%v, sync=%s\n",
		caps.HierarchyLevels, caps.WorkUnitTypes, caps.Tasklets, caps.YieldTo, caps.SyncMechanism)
}
