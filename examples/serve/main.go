// Serve: the task-submission subsystem from plain goroutines — the
// pattern the Table II API cannot express (work created outside the
// backend's main thread, results returned, overload rejected). A pool
// of producer goroutines submits BLAS work and fib ULT trees to every
// backend in turn — spread across a pool of runtime shards by
// power-of-two-choices, with a slice of keyed traffic pinned to shards
// by session — deliberately overruns the queues to show ErrSaturated,
// and prints the serving metrics each backend accumulated, with the
// per-shard traffic split.
//
//	go run ./examples/serve -threads 2 -shards 2 -requests 200
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	lwt "repro"
	"repro/internal/blas"
)

func main() {
	threads := flag.Int("threads", 2, "executors per shard")
	shards := flag.Int("shards", 2, "runtime shards per backend")
	requests := flag.Int("requests", 200, "requests per backend")
	producers := flag.Int("producers", 4, "producer goroutines")
	flag.Parse()

	for _, backend := range lwt.Backends() {
		srv, err := lwt.NewServer(lwt.ServeOptions{
			Backend: backend, Threads: *threads, Shards: *shards, QueueDepth: 64,
		})
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
		sub := srv.Submitter()

		var wg sync.WaitGroup
		var wrong atomic.Int64
		for p := 0; p < *producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < *requests / *producers; i++ {
					if i%10 == 0 {
						// A ULT-shaped request: fib(16) as a spawn/join
						// tree on the serving runtime.
						f, err := lwt.DoULT(sub, context.Background(), func(c lwt.Ctx) (uint64, error) {
							return fibULT(c, 16), nil
						}, lwt.Req{})
						if err != nil {
							log.Fatalf("%s: SubmitULT: %v", backend, err)
						}
						if v := f.MustWait(); v != 987 {
							wrong.Add(1)
						}
						continue
					}
					if i%10 == 5 {
						// A keyed request: producer p's "session" always
						// lands on the same shard, keeping that runtime's
						// local state warm.
						f, err := lwt.Do(sub, context.Background(), func() (float32, error) {
							v := make([]float32, 256)
							blas.Fill(v, 4)
							blas.Sscal(v, 0.25)
							return blas.Sasum(v), nil
						}, lwt.Req{Key: fmt.Sprintf("session-%d", p)})
						if err != nil {
							log.Fatalf("%s: SubmitKeyed: %v", backend, err)
						}
						if v := f.MustWait(); v != 256 {
							wrong.Add(1)
						}
						continue
					}
					// A tasklet-shaped request: scale a vector, return
					// its checksum.
					f, err := lwt.Do(sub, context.Background(), func() (float32, error) {
						v := make([]float32, 512)
						blas.Fill(v, 2)
						blas.Sscal(v, 0.5)
						return blas.Sasum(v), nil
					}, lwt.Req{})
					if err != nil {
						log.Fatalf("%s: Submit: %v", backend, err)
					}
					if v := f.MustWait(); v != 512 {
						wrong.Add(1)
					}
				}
			}(p)
		}
		wg.Wait()

		// Overrun the queue on purpose: fire non-blocking submissions
		// against a gated server until admission control pushes back.
		gate := make(chan struct{})
		blocked, _ := lwt.Do(sub, context.Background(), func() (int, error) {
			<-gate
			return 0, nil
		}, lwt.Req{})
		saturated := 0
		for i := 0; i < 10_000; i++ {
			if _, err := lwt.Do(sub, nil, func() (int, error) { return i, nil }, lwt.Req{NonBlocking: true}); errors.Is(err, lwt.ErrSaturated) {
				saturated++
				break
			}
		}
		close(gate)
		if blocked != nil {
			blocked.MustWait()
		}

		m := srv.Metrics()
		sm := srv.ShardMetrics()
		srv.Close()
		split := ""
		for i, s := range sm {
			if i > 0 {
				split += "/"
			}
			split += fmt.Sprint(s.Completed)
		}
		fmt.Printf("%-26s completed=%-5d per-shard=%-12s p50=%-10v p99=%-10v %8.0f req/s  saturated rejections seen: %d\n",
			backend, m.Completed, split, m.Latency.P50, m.Latency.P99, m.Throughput, saturated)
		if wrong.Load() != 0 {
			log.Fatalf("%s: %d wrong results", backend, wrong.Load())
		}
	}
}

// fibULT is the recursive spawn/join decomposition on the serving
// runtime's cooperative context.
func fibULT(c lwt.Ctx, n int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	if n < 10 {
		return fibULT(c, n-1) + fibULT(c, n-2)
	}
	var left uint64
	h := c.ULTCreate(func(cc lwt.Ctx) { left = fibULT(cc, n-1) })
	right := fibULT(c, n-2)
	c.Join(h)
	return left + right
}
