// Pipeline: cooperative multi-stage processing on ULTs — the style of
// code that needs the yield operation of Table II. Three stages
// (generate, transform, reduce) run as long-lived ULTs communicating
// through bounded buffers; a stage that finds its buffer empty or full
// yields to the scheduler instead of blocking, so a single executor can
// interleave all stages — something stackless tasklets cannot express
// (§III-B: only ULTs can yield and suspend).
//
//	go run ./examples/pipeline -items 10000 -threads 2
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	lwt "repro"
)

// buffer is a bounded FIFO shared by adjacent stages. Stages poll it and
// yield when they cannot progress; the mutex only protects the slice.
type buffer struct {
	mu    sync.Mutex
	items []int
	cap   int
	done  bool
}

func (b *buffer) push(v int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items) >= b.cap {
		return false
	}
	b.items = append(b.items, v)
	return true
}

func (b *buffer) pop() (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(b.items) == 0 {
		return 0, false
	}
	v := b.items[0]
	b.items = b.items[1:]
	return v, true
}

func (b *buffer) close() {
	b.mu.Lock()
	b.done = true
	b.mu.Unlock()
}

func (b *buffer) closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.done && len(b.items) == 0
}

func main() {
	items := flag.Int("items", 10000, "items to push through the pipeline")
	threads := flag.Int("threads", 2, "number of executors")
	backend := flag.String("backend", "argobots", "unified-API backend")
	flag.Parse()

	r, err := lwt.Open(lwt.Config{Backend: *backend, Executors: *threads})
	if err != nil {
		log.Fatalf("pipeline: %v", err)
	}

	ab := &buffer{cap: 64}
	bc := &buffer{cap: 64}
	var sum int64

	t0 := time.Now()
	gen := r.ULTCreate(func(c lwt.Ctx) {
		for i := 1; i <= *items; {
			if ab.push(i) {
				i++
			} else {
				c.Yield() // buffer full: let downstream drain it
			}
		}
		ab.close()
	})
	xform := r.ULTCreate(func(c lwt.Ctx) {
		for !ab.closed() {
			v, ok := ab.pop()
			if !ok {
				c.Yield() // buffer empty: let upstream refill it
				continue
			}
			for !bc.push(v * v) {
				c.Yield()
			}
		}
		bc.close()
	})
	reduce := r.ULTCreate(func(c lwt.Ctx) {
		for !bc.closed() {
			v, ok := bc.pop()
			if !ok {
				c.Yield()
				continue
			}
			sum += int64(v)
		}
	})

	r.JoinAll([]lwt.Handle{gen, xform, reduce})
	dt := time.Since(t0)
	r.Finalize()

	// Closed form of sum of squares 1..n.
	n := int64(*items)
	want := n * (n + 1) * (2*n + 1) / 6
	status := "verified"
	if sum != want {
		status = fmt.Sprintf("FAILED (got %d, want %d)", sum, want)
	}
	fmt.Printf("pipeline on %s (%d threads): %d items, sum of squares = %d (%s) in %v\n",
		*backend, *threads, *items, sum, status, dt)
}
