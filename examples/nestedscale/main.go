// Nestedscale: the paper's nested parallel-for pattern (§VII-C,
// Listing 3, Figure 7) as an application — scaling every row of a matrix
// with an outer parallel loop over rows and an inner parallel loop over
// columns. This is the scenario where the paper measures LWT runtimes
// beating the Intel OpenMP runtime by factors of 48–130, because work
// units are so much cheaper than nested thread teams.
//
//	go run ./examples/nestedscale -rows 200 -cols 200 -threads 4
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	lwt "repro"
)

// chunk computes thread t's half-open share of n items over k threads.
func chunk(n, k, t int) (lo, hi int) {
	base, rem := n/k, n%k
	lo = t*base + min(t, rem)
	hi = lo + base
	if t < rem {
		hi++
	}
	return
}

// scaleNested multiplies every element of the rows-by-cols matrix m by a,
// with nested work-unit parallelism over threads executors.
func scaleNested(r *lwt.Runtime, m []float64, rows, cols, threads int, a float64) {
	outer := make([]lwt.Handle, threads)
	for t := 0; t < threads; t++ {
		lo, hi := chunk(rows, threads, t)
		outer[t] = r.ULTCreate(func(c lwt.Ctx) {
			for i := lo; i < hi; i++ {
				row := m[i*cols : (i+1)*cols]
				// Inner parallel loop: one work unit per executor,
				// exactly Listing 3's inner pragma.
				inner := make([]lwt.Handle, threads)
				for u := 0; u < threads; u++ {
					ilo, ihi := chunk(cols, threads, u)
					inner[u] = c.TaskletCreate(func() {
						for j := ilo; j < ihi; j++ {
							row[j] *= a
						}
					})
				}
				for _, h := range inner {
					c.Join(h)
				}
			}
		})
	}
	r.JoinAll(outer)
}

func main() {
	rows := flag.Int("rows", 200, "matrix rows (outer loop)")
	cols := flag.Int("cols", 200, "matrix columns (inner loop)")
	threads := flag.Int("threads", 4, "number of executors")
	flag.Parse()

	fmt.Printf("scaling a %dx%d matrix, nested parallelism on %d threads\n",
		*rows, *cols, *threads)

	for _, backend := range []string{"argobots", "qthreads", "massivethreads", "go"} {
		m := make([]float64, (*rows)*(*cols))
		for i := range m {
			m[i] = 1
		}
		r, err := lwt.Open(lwt.Config{Backend: backend, Executors: *threads})
		if err != nil {
			log.Fatalf("nestedscale: %v", err)
		}
		t0 := time.Now()
		scaleNested(r, m, *rows, *cols, *threads, 3)
		dt := time.Since(t0)
		r.Finalize()

		ok := true
		for _, x := range m {
			if x != 3 {
				ok = false
				break
			}
		}
		status := "verified"
		if !ok {
			status = "FAILED VERIFICATION"
		}
		fmt.Printf("  %-16s %10v  %s\n", backend, dt, status)
	}
}
