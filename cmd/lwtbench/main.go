// Command lwtbench regenerates the performance figures of the paper
// (Figures 2–8): each run sweeps the selected microbenchmark pattern over
// a thread-count axis for every system in the figure legend and prints
// the series as a table.
//
// Usage:
//
//	lwtbench -fig 4                  # Figure 4 at laptop scale
//	lwtbench -fig 7 -paper           # paper-sized workload (slow)
//	lwtbench -fig 2 -threads 16 -reps 100
//	lwtbench -fig 5 -systems "gcc,Argobots Tasklet,Go"
//	lwtbench -all                    # every figure, laptop scale
//	lwtbench -all -json              # …and write BENCH_<fig>.json files
//	lwtbench -all -json -out results # …into the results directory
//
// With -json every regenerated figure is also written as a
// machine-readable BENCH_<fig>.json (per-system, per-thread-count mean
// plus P50/P95/P99 in nanoseconds, with the producing environment
// recorded). The CI bench-smoke job archives these files and
// cmd/benchgate compares them against the checked-in bench_baseline.json
// to catch performance regressions.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/microbench"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (2-8)")
	all := flag.Bool("all", false, "regenerate every figure")
	maxThreads := flag.Int("threads", 0, "max thread count (0 = 2x CPUs)")
	reps := flag.Int("reps", 0, "repetitions per point (0 = preset default)")
	paper := flag.Bool("paper", false, "use the paper's full workload sizes (1000x1000 nested, 500 reps)")
	systems := flag.String("systems", "", "comma-separated legend names (default: all)")
	jsonOut := flag.Bool("json", false, "additionally write BENCH_<fig>.json for each figure")
	outDir := flag.String("out", ".", "directory for -json output files")
	flag.Parse()

	if !*all && (*fig < 2 || *fig > 8) {
		fmt.Fprintln(os.Stderr, "lwtbench: pass -fig 2..8 or -all")
		os.Exit(2)
	}

	prm := microbench.QuickParams()
	if *paper {
		prm = microbench.PaperParams()
	}
	if *reps > 0 {
		prm.Reps = *reps
	}
	threads := microbench.ThreadCounts(*maxThreads)

	specs := microbench.PaperSystems()
	if *systems != "" {
		specs = specs[:0]
		for _, name := range strings.Split(*systems, ",") {
			name = strings.TrimSpace(name)
			s, ok := microbench.FindSpec(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "lwtbench: unknown system %q\n", name)
				os.Exit(2)
			}
			specs = append(specs, s)
		}
	}

	figs := []int{*fig}
	if *all {
		figs = []int{2, 3, 4, 5, 6, 7, 8}
	}
	titles := map[int]string{
		2: "Figure 2: time of creating one work unit for each thread",
		3: "Figure 3: time of joining one work unit for each thread",
		4: fmt.Sprintf("Figure 4: execution time of a %d-iteration for loop", prm.ForIters),
		5: fmt.Sprintf("Figure 5: execution time of %d tasks created in a single region", prm.Tasks),
		6: fmt.Sprintf("Figure 6: execution time of %d tasks created in a parallel region", prm.Tasks),
		7: fmt.Sprintf("Figure 7: nested parallel for, %dx%d iterations", prm.NestedOuter, prm.NestedInner),
		8: fmt.Sprintf("Figure 8: %d nested tasks (%d parents x %d children)", prm.Parents*prm.Children, prm.Parents, prm.Children),
	}

	for _, f := range figs {
		var series []microbench.Series
		for _, spec := range specs {
			series = append(series, microbench.Sweep(spec, microbench.Pattern(f), threads, prm))
		}
		fmt.Print(microbench.RenderTable(titles[f], series))
		fmt.Println()
		if *jsonOut {
			path := filepath.Join(*outDir, microbench.BenchFileName(f))
			if err := microbench.WriteFigureJSON(path, microbench.ToJSON(f, titles[f], series)); err != nil {
				fmt.Fprintf(os.Stderr, "lwtbench: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
