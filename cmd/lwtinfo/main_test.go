package main

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestRenderBackendsPinsCapabilityTable pins the capability report's
// shape: the aio column is present and true for every backend, each
// backend has an async-I/O resume rule, and the placement-preserving
// backends say so in their rule.
func TestRenderBackendsPinsCapabilityTable(t *testing.T) {
	out := renderBackends()
	header := "backend"
	for _, col := range []string{"levels", "units", "tasklets", "yield-to", "placement", "sync", "aio", "cancel", "execs", "schedulers"} {
		header += " " + col
	}
	var headerLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "backend") && strings.Contains(line, "schedulers") {
			headerLine = line
			break
		}
	}
	if headerLine == "" {
		t.Fatalf("no header line in output:\n%s", out)
	}
	if got := strings.Join(strings.Fields(headerLine), " "); got != header {
		t.Fatalf("header = %q, want %q", got, header)
	}
	table, _, ok := strings.Cut(out, "Async-I/O resume rules")
	if !ok {
		t.Fatalf("resume-rules block missing")
	}
	for _, name := range core.Backends() {
		found := false
		for _, line := range strings.Split(table, "\n") {
			fields := strings.Fields(line)
			if len(fields) > 0 && fields[0] == name && len(fields) >= 11 {
				found = true
				// Column 8 (0-indexed 7) is aio; every backend parks.
				if fields[7] != "true" {
					t.Errorf("%s: aio column = %q, want true", name, fields[7])
				}
				// Column 9 (0-indexed 8) is cancel: parking backends
				// wake cancelled waits early.
				if fields[8] != "park-wake" {
					t.Errorf("%s: cancel column = %q, want park-wake", name, fields[8])
				}
			}
		}
		if !found {
			t.Errorf("no capability row for backend %s", name)
		}
		if rule := aioResumeRule(name); rule == "backend-defined" {
			t.Errorf("%s: no async-I/O resume rule", name)
		}
	}
	for name, wantPreserved := range map[string]bool{
		"argobots":       true,
		"qthreads":       true,
		"converse":       true,
		"massivethreads": false,
		"go":             false,
	} {
		got := strings.Contains(aioResumeRule(name), "placement preserved")
		if got != wantPreserved {
			t.Errorf("%s resume rule %q: placement-preserved = %v, want %v",
				name, aioResumeRule(name), got, wantPreserved)
		}
	}
}

// TestRenderTopologyPinsLayoutBlock pins the topology report: both the
// detected machine and the paper's testbed appear, each with the shard
// layout the serving pool derives from it — the paper's 36 cores must
// map to 36 shards of 2 executors.
func TestRenderTopologyPinsLayoutBlock(t *testing.T) {
	out := renderTopology()
	for _, want := range []string{"detected", "paper testbed"} {
		if !strings.Contains(out, want) {
			t.Errorf("topology block missing %q row:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "36 shards x 2 executors") {
		t.Errorf("paper testbed row does not derive 36 shards x 2 executors:\n%s", out)
	}
}
