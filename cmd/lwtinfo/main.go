// Command lwtinfo renders the paper's semantic analysis: Table I (the
// execution and scheduling functionality of each LWT library) and
// Table II (the reduced function set the microbenchmarks need), plus the
// live capability report of every registered unified-API backend — at
// the v2 surface, including the extended columns: placement, scheduler
// policies, synchronization mechanism and yield-to.
//
// Usage:
//
//	lwtinfo [-table 1|2|all] [-backends]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/semantics"
)

func main() {
	table := flag.String("table", "all", "which table to print: 1, 2 or all")
	backends := flag.Bool("backends", false, "also print live backend capabilities")
	flag.Parse()

	switch *table {
	case "1":
		fmt.Println("Table I: execution and scheduling functionality of the LWT libraries")
		fmt.Print(semantics.RenderTableI())
	case "2":
		fmt.Println("Table II: most used functions in the microbenchmark implementations")
		fmt.Print(semantics.RenderTableII())
	case "all":
		fmt.Println("Table I: execution and scheduling functionality of the LWT libraries")
		fmt.Print(semantics.RenderTableI())
		fmt.Println()
		fmt.Println("Table II: most used functions in the microbenchmark implementations")
		fmt.Print(semantics.RenderTableII())
	default:
		fmt.Fprintf(os.Stderr, "lwtinfo: unknown table %q\n", *table)
		os.Exit(2)
	}

	if *backends {
		fmt.Println()
		fmt.Println("Registered unified-API backends (live capabilities, v2 surface):")
		fmt.Printf("  %-26s %-6s %-5s %-8s %-8s %-9s %-9s %-6s %s\n",
			"backend", "levels", "units", "tasklets", "yield-to", "placement", "sync", "execs", "schedulers")
		for _, name := range core.Backends() {
			r := core.MustOpen(core.Config{Backend: name, Executors: 2})
			c := r.Caps()
			execs := r.NumExecutors()
			r.Finalize()
			fmt.Printf("  %-26s %-6d %-5d %-8v %-8v %-9v %-9s %-6d %s\n",
				name, c.HierarchyLevels, c.WorkUnitTypes, c.Tasklets, c.YieldTo,
				c.Placement, c.SyncMechanism, execs, strings.Join(c.Schedulers, ","))
		}
		fmt.Println()
		fmt.Println("Degradation rules: a Config.Scheduler outside the backend's list")
		fmt.Println("falls back to the default policy — recorded by Open (Degradations),")
		fmt.Println("or an error under Config.Strict. Per-call fallbacks follow the")
		fmt.Println("capability flags: ULTCreateTo without placement creates locally;")
		fmt.Println("YieldTo without yield-to support degrades to Yield.")
	}
}
