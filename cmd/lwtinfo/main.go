// Command lwtinfo renders the paper's semantic analysis: Table I (the
// execution and scheduling functionality of each LWT library) and
// Table II (the reduced function set the microbenchmarks need), plus the
// live capability report of every registered unified-API backend — at
// the v2 surface, including the extended columns: placement, scheduler
// policies, synchronization mechanism and yield-to.
//
// Usage:
//
//	lwtinfo [-table 1|2|all] [-backends]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/semantics"
	"repro/internal/serve"
	"repro/internal/topo"
)

func main() {
	table := flag.String("table", "all", "which table to print: 1, 2 or all")
	backends := flag.Bool("backends", false, "also print live backend capabilities")
	flag.Parse()

	switch *table {
	case "1":
		fmt.Println("Table I: execution and scheduling functionality of the LWT libraries")
		fmt.Print(semantics.RenderTableI())
	case "2":
		fmt.Println("Table II: most used functions in the microbenchmark implementations")
		fmt.Print(semantics.RenderTableII())
	case "all":
		fmt.Println("Table I: execution and scheduling functionality of the LWT libraries")
		fmt.Print(semantics.RenderTableI())
		fmt.Println()
		fmt.Println("Table II: most used functions in the microbenchmark implementations")
		fmt.Print(semantics.RenderTableII())
	default:
		fmt.Fprintf(os.Stderr, "lwtinfo: unknown table %q\n", *table)
		os.Exit(2)
	}

	if *backends {
		fmt.Println()
		fmt.Print(renderBackends())
	}

	fmt.Println()
	fmt.Print(renderTopology())
}

// renderTopology reports the detected machine topology, the paper's
// testbed for comparison, and the serve-layer pool layout each implies
// (one shard per physical core, one executor per hardware thread —
// lwtserved -topo detect|paper). Separated from main so a unit test can
// pin the output.
func renderTopology() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Machine topology (serving-pool layout it implies; lwtserved -topo):")
	for _, row := range []struct {
		name string
		t    topo.Topology
	}{
		{"detected", topo.Detect()},
		{"paper testbed", topo.Paper()},
	} {
		sh, th := serve.TopoLayout(row.t)
		fmt.Fprintf(&b, "  %-14s %-36s -> %d shards x %d executors\n",
			row.name, row.t.String(), sh, th)
	}
	return b.String()
}

// aioResumeRule is the per-backend half of the AsyncIO column: where a
// work unit parked on the async-I/O reactor continues when the reactor
// resumes it.
func aioResumeRule(name string) string {
	switch name {
	case "argobots":
		return "issuing execution stream's private pool (placement preserved)"
	case "argobots-shared":
		return "the shared pool"
	case "qthreads", "qthreads-pernode":
		return "issuing shepherd's pool (placement preserved)"
	case "massivethreads", "massivethreads-helpfirst":
		return "shared injection queue (any worker may pick it up, as a steal would)"
	case "converse":
		return "issuing processor's queue (placement preserved)"
	case "go":
		return "the shared global queue"
	default:
		return "backend-defined"
	}
}

// renderBackends renders the live capability report — the table, the
// per-backend async-I/O resume rules, and the degradation rules —
// separated from main so a unit test can pin the output.
func renderBackends() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Registered unified-API backends (live capabilities, v2 surface):")
	fmt.Fprintf(&b, "  %-26s %-6s %-5s %-8s %-8s %-9s %-9s %-5s %-9s %-6s %s\n",
		"backend", "levels", "units", "tasklets", "yield-to", "placement", "sync", "aio", "cancel", "execs", "schedulers")
	names := core.Backends()
	for _, name := range names {
		r := core.MustOpen(core.Config{Backend: name, Executors: 2})
		c := r.Caps()
		execs := r.NumExecutors()
		r.Finalize()
		// Cancellation rides the async-I/O reactor: where parks exist,
		// a cancelled context wakes the parked work unit early
		// (park-wake); without parks the wait loop polls the cancel
		// channel between yields.
		cancel := "yield-poll"
		if c.AsyncIO {
			cancel = "park-wake"
		}
		fmt.Fprintf(&b, "  %-26s %-6d %-5d %-8v %-8v %-9v %-9s %-5v %-9s %-6d %s\n",
			name, c.HierarchyLevels, c.WorkUnitTypes, c.Tasklets, c.YieldTo,
			c.Placement, c.SyncMechanism, c.AsyncIO, cancel, execs, strings.Join(c.Schedulers, ","))
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, "Async-I/O resume rules (where a work unit parked on the reactor continues):")
	for _, name := range names {
		fmt.Fprintf(&b, "  %-26s %s\n", name, aioResumeRule(name))
	}
	fmt.Fprintln(&b)
	fmt.Fprintln(&b, "Degradation rules: a Config.Scheduler outside the backend's list")
	fmt.Fprintln(&b, "falls back to the default policy — recorded by Open (Degradations),")
	fmt.Fprintln(&b, "or an error under Config.Strict. Per-call fallbacks follow the")
	fmt.Fprintln(&b, "capability flags: ULTCreateTo without placement creates locally;")
	fmt.Fprintln(&b, "YieldTo without yield-to support degrades to Yield. The async-I/O")
	fmt.Fprintln(&b, "waits (Sleep, Deadline, AwaitIO, ReadIO, WriteIO) park the work unit")
	fmt.Fprintln(&b, "off its executor where the aio column is true, yield-poll on a")
	fmt.Fprintln(&b, "context without park support, and block plainly with no context.")
	fmt.Fprintln(&b, "Cancellation follows the cancel column: a Ctx whose deadline passes")
	fmt.Fprintln(&b, "or whose submission context is cancelled fires core.Canceled(ctx);")
	fmt.Fprintln(&b, "park-wake backends wake any parked Sleep/AwaitIO early with")
	fmt.Fprintln(&b, "ErrCanceled, yield-poll backends observe it between polls. Handlers")
	fmt.Fprintln(&b, "that never wait must check the channel themselves — cancellation is")
	fmt.Fprintln(&b, "cooperative everywhere.")
	return b.String()
}
