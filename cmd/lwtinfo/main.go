// Command lwtinfo renders the paper's semantic analysis: Table I (the
// execution and scheduling functionality of each LWT library) and
// Table II (the reduced function set the microbenchmarks need), plus the
// live capability report of every registered unified-API backend.
//
// Usage:
//
//	lwtinfo [-table 1|2|all] [-backends]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/semantics"
)

func main() {
	table := flag.String("table", "all", "which table to print: 1, 2 or all")
	backends := flag.Bool("backends", false, "also print live backend capabilities")
	flag.Parse()

	switch *table {
	case "1":
		fmt.Println("Table I: execution and scheduling functionality of the LWT libraries")
		fmt.Print(semantics.RenderTableI())
	case "2":
		fmt.Println("Table II: most used functions in the microbenchmark implementations")
		fmt.Print(semantics.RenderTableII())
	case "all":
		fmt.Println("Table I: execution and scheduling functionality of the LWT libraries")
		fmt.Print(semantics.RenderTableI())
		fmt.Println()
		fmt.Println("Table II: most used functions in the microbenchmark implementations")
		fmt.Print(semantics.RenderTableII())
	default:
		fmt.Fprintf(os.Stderr, "lwtinfo: unknown table %q\n", *table)
		os.Exit(2)
	}

	if *backends {
		fmt.Println()
		fmt.Println("Registered unified-API backends (live capabilities):")
		for _, name := range core.Backends() {
			r := core.MustNew(name, 2)
			c := r.Caps()
			r.Finalize()
			fmt.Printf("  %-26s levels=%d units=%d tasklets=%-5v yield-to=%-5v global-queue=%-5v stackable-sched=%v\n",
				name, c.HierarchyLevels, c.WorkUnitTypes, c.Tasklets, c.YieldTo, c.GlobalQueue, c.StackableScheduler)
		}
	}
}
