// Command benchgate is the CI performance-regression gate: it compares
// freshly produced BENCH_<fig>.json files (lwtbench -json) against the
// checked-in bench_baseline.json and fails when any matching
// (figure, system, threads) cell regressed by more than the tolerance
// factor.
//
// The gate is built to catch real regressions without flaking on
// scheduler noise, which for these runtimes is extreme (a work-stealing
// cell can legitimately move 1000x between runs when the main flow gets
// stolen onto a different worker):
//
//   - The per-cell statistic is the minimum over repetitions, the classic
//     noise-robust benchmark number: an accidental lock on a hot path
//     raises the minimum too, while a run that caught the slow scheduling
//     mode does not lower it.
//   - The verdict is per figure, on the geometric mean of the cell
//     ratios: a genuine hot-path regression shifts essentially every cell
//     and moves the geomean with it, while a single bimodal outlier is
//     damped by the other cells.
//   - The tolerance is loose (default 3x) because the baseline is
//     recorded on whatever machine last refreshed it, and CI runners
//     differ in core count, clock and neighbours.
//
// Cells present on one side only — for example thread counts the
// runner's axis does not reach — are skipped. Individual cells beyond
// the tolerance are printed for diagnosis but do not fail the gate on
// their own.
//
// Summary mode (-summary) prints the same per-figure geometric-mean
// deltas — including improvements, rendered as NN% faster/slower — and
// always exits 0: CI runs it on every build so perf movement is visible
// in the job log even when it is nowhere near the gate's tolerance.
//
// Usage:
//
//	benchgate -baseline bench_baseline.json            # gate BENCH_*.json in .
//	benchgate -baseline bench_baseline.json -dir out   # …in out/
//	benchgate -baseline bench_baseline.json -max-ratio 5
//	benchgate -baseline bench_baseline.json -summary   # report deltas, never fail
//	benchgate -write-baseline bench_baseline.json      # refresh the baseline
//	                                                   # from BENCH_*.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/microbench"
)

func main() {
	baseline := flag.String("baseline", "bench_baseline.json", "checked-in baseline file")
	dir := flag.String("dir", ".", "directory holding the fresh BENCH_*.json files")
	maxRatio := flag.Float64("max-ratio", 3.0, "fail when fresh mean exceeds baseline mean by this factor")
	write := flag.String("write-baseline", "", "instead of gating, combine BENCH_*.json into this baseline file")
	summary := flag.Bool("summary", false, "print per-figure geomean deltas vs the baseline and exit 0 (no gating)")
	flag.Parse()

	fresh, err := loadDir(*dir)
	if err != nil {
		fatal(err)
	}
	if len(fresh) == 0 {
		fatal(fmt.Errorf("no BENCH_*.json files in %s (run lwtbench -all -json first)", *dir))
	}

	if *write != "" {
		if err := writeBaseline(*write, fresh); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %s (%d figures)\n", *write, len(fresh))
		return
	}

	base, err := readBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	if *summary {
		printSummary(base, fresh)
		return
	}
	ok := gate(base, fresh, *maxRatio)
	if !ok {
		os.Exit(1)
	}
}

// printSummary reports each figure's geometric-mean movement against the
// baseline as a human-readable delta. Informational only.
func printSummary(base, fresh []microbench.FigureJSON) {
	baseIdx := index(base)
	freshIdx := index(fresh)
	logSum := map[int]float64{}
	cells := map[int]int{}
	for k, fn := range freshIdx {
		bn, ok := baseIdx[k]
		if !ok || bn <= 0 || fn <= 0 {
			continue
		}
		logSum[k.figure] += math.Log(float64(fn) / float64(bn))
		cells[k.figure]++
	}
	if len(cells) == 0 {
		fmt.Println("benchgate summary: no comparable cells between baseline and fresh results")
		return
	}
	figs := make([]int, 0, len(cells))
	for f := range cells {
		figs = append(figs, f)
	}
	sort.Ints(figs)
	fmt.Println("benchgate summary: per-figure geomean vs baseline (min-over-reps ns, <100% = faster)")
	for _, f := range figs {
		gm := math.Exp(logSum[f] / float64(cells[f]))
		word := "slower"
		delta := (gm - 1) * 100
		if gm < 1 {
			word = "faster"
			delta = (1 - gm) * 100
		}
		fmt.Printf("benchgate summary: fig%d %6.2fx (%5.1f%% %s) over %d cells\n",
			f, gm, delta, word, cells[f])
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
	os.Exit(2)
}

// loadDir reads every BENCH_*.json in dir.
func loadDir(dir string) ([]microbench.FigureJSON, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var out []microbench.FigureJSON
	for _, p := range paths {
		f, err := microbench.ReadFigureJSON(p)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// readBaseline loads the combined baseline (an array of figures).
func readBaseline(path string) ([]microbench.FigureJSON, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []microbench.FigureJSON
	if err := json.Unmarshal(b, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

func writeBaseline(path string, figs []microbench.FigureJSON) error {
	b, err := json.MarshalIndent(figs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// cellKey identifies one comparable measurement.
type cellKey struct {
	figure  int
	system  string
	threads int
}

// index maps cells to their minimum-over-reps nanosecond value. Results
// written before the MinNs field existed fall back to the mean.
func index(figs []microbench.FigureJSON) map[cellKey]int64 {
	out := map[cellKey]int64{}
	for _, f := range figs {
		for _, s := range f.Series {
			for _, p := range s.Points {
				v := p.MinNs
				if v <= 0 {
					v = p.MeanNs
				}
				out[cellKey{f.Figure, s.System, p.Threads}] = v
			}
		}
	}
	return out
}

// gate compares every cell present in both sets and fails a figure when
// the geometric mean of its cell ratios exceeds maxRatio.
func gate(base, fresh []microbench.FigureJSON, maxRatio float64) bool {
	baseIdx := index(base)
	freshIdx := index(fresh)

	keys := make([]cellKey, 0, len(freshIdx))
	for k := range freshIdx {
		if _, ok := baseIdx[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.figure != b.figure {
			return a.figure < b.figure
		}
		if a.system != b.system {
			return a.system < b.system
		}
		return a.threads < b.threads
	})
	if len(keys) == 0 {
		fmt.Println("benchgate: no comparable cells between baseline and fresh results")
		return true
	}

	logSum := map[int]float64{}
	cells := map[int]int{}
	for _, k := range keys {
		bn, fn := baseIdx[k], freshIdx[k]
		if bn <= 0 || fn <= 0 {
			continue
		}
		ratio := float64(fn) / float64(bn)
		logSum[k.figure] += math.Log(ratio)
		cells[k.figure]++
		if ratio > maxRatio {
			fmt.Printf("note: fig%d %-22s threads=%-3d baseline=%dns fresh=%dns ratio=%.2fx (cell-level, informational)\n",
				k.figure, k.system, k.threads, bn, fn, ratio)
		}
	}

	figs := make([]int, 0, len(cells))
	for f := range cells {
		figs = append(figs, f)
	}
	sort.Ints(figs)
	failed := 0
	for _, f := range figs {
		gm := math.Exp(logSum[f] / float64(cells[f]))
		verdict := "ok"
		if gm > maxRatio {
			verdict = "REGRESSION"
			failed++
		}
		fmt.Printf("benchgate: fig%d geomean ratio %.2fx over %d cells (limit %.2fx) — %s\n",
			f, gm, cells[f], maxRatio, verdict)
	}
	if failed > 0 {
		fmt.Printf("benchgate: %d figure(s) regressed\n", failed)
		return false
	}
	fmt.Println("benchgate: all figures within tolerance")
	return true
}
