package main

import (
	"testing"

	"repro/internal/microbench"
)

func mkFig(fig int, system string, minNs ...int64) microbench.FigureJSON {
	s := microbench.SeriesJSON{System: system}
	for i, v := range minNs {
		s.Points = append(s.Points, microbench.PointJSON{
			Threads: 1 << i, MinNs: v, MeanNs: v, Reps: 3,
		})
	}
	return microbench.FigureJSON{Figure: fig, Series: []microbench.SeriesJSON{s}}
}

func TestGatePassesOnNoise(t *testing.T) {
	base := []microbench.FigureJSON{mkFig(2, "Go", 100, 200, 400)}
	// One 10x outlier (scheduler caught the slow mode) among stable cells
	// must not fail the figure: the geomean stays under 3x.
	fresh := []microbench.FigureJSON{mkFig(2, "Go", 110, 2000, 380)}
	if !gate(base, fresh, 3.0) {
		t.Fatal("gate failed on a single-cell outlier")
	}
}

func TestGateFailsOnUniformRegression(t *testing.T) {
	base := []microbench.FigureJSON{mkFig(2, "Go", 100, 200, 400)}
	// Everything 4x slower — the hot-path-regression shape.
	fresh := []microbench.FigureJSON{mkFig(2, "Go", 400, 800, 1600)}
	if gate(base, fresh, 3.0) {
		t.Fatal("gate passed a uniform 4x regression")
	}
}

func TestGateSkipsUnmatchedCells(t *testing.T) {
	base := []microbench.FigureJSON{mkFig(2, "Go", 100)}
	// Different system and extra thread counts: nothing comparable.
	fresh := []microbench.FigureJSON{mkFig(2, "Qthreads", 100_000, 100_000)}
	if !gate(base, fresh, 3.0) {
		t.Fatal("gate failed with no comparable cells")
	}
}

func TestIndexFallsBackToMean(t *testing.T) {
	f := microbench.FigureJSON{Figure: 4, Series: []microbench.SeriesJSON{{
		System: "gcc",
		Points: []microbench.PointJSON{{Threads: 2, MeanNs: 123}}, // no MinNs
	}}}
	idx := index([]microbench.FigureJSON{f})
	if got := idx[cellKey{4, "gcc", 2}]; got != 123 {
		t.Fatalf("fallback value = %d, want 123", got)
	}
}
