// Lwtgate is the cluster front proxy: one HTTP endpoint that spreads
// requests over N lwtserved worker processes, scaling the serving tier
// past a single Go process. It is the multi-process mirror of the
// in-process shard pool — what serve's Router does for shards inside
// one daemon, the gate does for whole workers:
//
//   - ?key= requests pin to a worker by consistent hashing (FNV-1a +
//     virtual nodes), so keyed sessions keep hitting one process's warm
//     runtimes, and worker add/remove remaps only the departed worker's
//     ~1/N share of the key space.
//   - Unkeyed requests route by power-of-two-choices over per-worker
//     in-flight and recent-latency estimates; worker 503s feed the
//     estimate as backpressure and re-route the request once, exactly
//     like the in-process p2c + re-route-once design.
//   - Active /healthz checks eject unresponsive workers and re-admit
//     recovered ones; connection failures retry idempotent requests on
//     the next candidate (ring successor for keyed, new p2c pick for
//     unkeyed), bounded by -retries.
//   - End-to-end deadlines: an X-LWT-Deadline-Ms header (or
//     ?deadline_ms=) caps the whole proxied exchange — each attempt's
//     context is cut at min(-attempt-timeout, remaining budget), the
//     forwarded header carries the *remaining* milliseconds so workers
//     shed queued work the client stopped waiting for, and a request
//     whose budget runs out at the gate is answered 504 instead of
//     burning further retries.
//   - A per-worker circuit breaker (see internal/cluster doc) turns a
//     failure *rate* — timeouts, resets from a sick-but-alive process —
//     into fail-fast routing with a half-open probe for recovery,
//     composing with (not replacing) health ejection.
//   - Optional hedging (-hedge): idempotent unkeyed requests stuck past
//     the recent P99 latency launch one extra attempt on another
//     worker; first useful response wins, the loser is cancelled.
//
// Endpoints (everything else is proxied to a worker):
//
//	/cluster/metrics   gate + per-worker routing counters as JSON
//	                   (?format=prom for the Prometheus view)
//	/cluster/workers   per-worker state (healthy/ejected, load, EWMA)
//	/metrics           Prometheus text exposition: per-worker load
//	                   estimates, ejections, retries, gate counters
//	/healthz           gate liveness
//	/readyz            gate readiness (503 once draining)
//
// On SIGINT/SIGTERM the gate stops admission (/readyz flips to 503,
// new requests are refused), flushes in-flight proxied requests
// (bounded by -drain), and exits 0 — the graceful-drain contract the
// workers themselves keep, applied at the cluster tier.
//
// -addr accepts :0; the actual bound address is printed as a parseable
// "listening on <addr>" line before serving.
//
//	go run ./cmd/lwtgate -addr :9090 -workers 127.0.0.1:8081,127.0.0.1:8082
//	curl 'localhost:9090/fib?n=30&backend=argobots&key=sess-7'
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

var (
	addr    = flag.String("addr", ":9090", "listen address (:0 binds an ephemeral port, announced via the 'listening on' log line)")
	workers = flag.String("workers", "", "comma-separated lwtserved worker addresses (host:port), required")
	vnodes  = flag.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per worker on the consistent-hash ring")
	retries = flag.Int("retries", cluster.DefaultRetries, "extra attempts per idempotent request (conn failures / unkeyed 503s); negative disables")

	checkEvery   = flag.Duration("check-interval", 500*time.Millisecond, "health-probe interval")
	checkTimeout = flag.Duration("check-timeout", 2*time.Second, "health-probe timeout")
	failAfter    = flag.Int("fail-after", 3, "consecutive failed probes/connections that eject a worker")
	readyAfter   = flag.Int("ready-after", 2, "consecutive passing probes that re-admit an ejected worker")

	attemptTimeout = flag.Duration("attempt-timeout", 0, "per-attempt upstream timeout (0: bounded only by the request deadline)")
	hedge          = flag.Bool("hedge", false, "hedge idempotent unkeyed requests with a second attempt after the P99-derived delay")
	breakerWindow  = flag.Int("breaker-window", 0, "circuit-breaker sliding outcome window per worker, in attempts (0: default 20)")
	breakerRatio   = flag.Float64("breaker-ratio", 0, "failure ratio over the window that opens a worker's breaker (0: default 0.5)")
	breakerCool    = flag.Duration("breaker-cooldown", 0, "open-breaker fail-fast period before the half-open probe (0: default 2s)")
	breakerOff     = flag.Bool("breaker-off", false, "disable the per-worker circuit breaker")

	drain    = flag.Duration("drain", 30*time.Second, "in-flight flush budget at shutdown (0: unbounded)")
	notReady = flag.Duration("notready-grace", 250*time.Millisecond, "window between /readyz flipping 503 and the listener closing, so upstream probes observe the flip")
)

func main() {
	flag.Parse()
	addrs := strings.Split(*workers, ",")
	table := cluster.NewTable(*vnodes, cluster.HealthPolicy{
		FailThreshold: *failAfter,
		OKThreshold:   *readyAfter,
		Breaker: cluster.BreakerPolicy{
			Window:       *breakerWindow,
			FailureRatio: *breakerRatio,
			Cooldown:     *breakerCool,
			Disabled:     *breakerOff,
		},
	})
	n := 0
	for _, a := range addrs {
		if strings.TrimSpace(a) == "" {
			continue
		}
		if _, err := table.Add(a); err != nil {
			log.Fatalf("lwtgate: %v", err)
		}
		n++
	}
	if n == 0 {
		log.Fatal("lwtgate: -workers requires at least one worker address")
	}

	gw := cluster.New(cluster.Options{
		Table:          table,
		Retries:        *retries,
		AttemptTimeout: *attemptTimeout,
		Hedge:          *hedge,
	})
	checker := cluster.NewChecker(table, cluster.HealthConfig{
		Interval: *checkEvery,
		Timeout:  *checkTimeout,
	})
	checker.Start()

	// Control endpoints first; the gateway is the catch-all proxy.
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/metrics", gw.MetricsHandler())
	mux.HandleFunc("/cluster/workers", gw.WorkersHandler())
	mux.HandleFunc("/metrics", gw.PromHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if gw.Draining() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.Handle("/", gw)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("lwtgate: %v", err)
	}
	hs := &http.Server{Handler: mux}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Stop admission before flushing: readiness flips and the
		// proxy refuses new requests, then Shutdown waits out the
		// in-flight ones (bounded by -drain).
		gw.StartDrain()
		log.Println("lwtgate: draining")
		// Admission is already off (the proxy 503s new work), but hold
		// the listener open briefly so /readyz probes observe the flip
		// instead of racing a connection refusal.
		time.Sleep(*notReady)
		ctx := context.Background()
		if *drain > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *drain)
			defer cancel()
		}
		_ = hs.Shutdown(ctx)
	}()
	log.Printf("lwtgate: listening on %s (workers=%v retries=%d vnodes=%d)",
		ln.Addr(), table.Ring().Members(), *retries, *vnodes)
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	checker.Stop()
	m := gw.Snapshot()
	log.Printf("lwtgate: drained cleanly (proxied=%d retried=%d reroutes503=%d failed=%d rejected-draining=%d)",
		m.Proxied, m.Retried, m.Reroutes503, m.Failed, m.RejectedDraining)
}
