// Lwtgate is the cluster front proxy: one HTTP endpoint that spreads
// requests over N lwtserved worker processes, scaling the serving tier
// past a single Go process. It is the multi-process mirror of the
// in-process shard pool — what serve's Router does for shards inside
// one daemon, the gate does for whole workers:
//
//   - ?key= requests pin to a worker by consistent hashing (FNV-1a +
//     virtual nodes), so keyed sessions keep hitting one process's warm
//     runtimes, and worker add/remove remaps only the departed worker's
//     ~1/N share of the key space.
//   - Unkeyed requests route by power-of-two-choices over per-worker
//     in-flight and recent-latency estimates; worker 503s feed the
//     estimate as backpressure and re-route the request once, exactly
//     like the in-process p2c + re-route-once design.
//   - Active /healthz checks eject unresponsive workers and re-admit
//     recovered ones; connection failures retry idempotent requests on
//     the next candidate (ring successor for keyed, new p2c pick for
//     unkeyed), bounded by -retries.
//
// Endpoints (everything else is proxied to a worker):
//
//	/cluster/metrics   gate + per-worker routing counters as JSON
//	                   (?format=prom for the Prometheus view)
//	/cluster/workers   per-worker state (healthy/ejected, load, EWMA)
//	/metrics           Prometheus text exposition: per-worker load
//	                   estimates, ejections, retries, gate counters
//	/healthz           gate liveness
//	/readyz            gate readiness (503 once draining)
//
// On SIGINT/SIGTERM the gate stops admission (/readyz flips to 503,
// new requests are refused), flushes in-flight proxied requests
// (bounded by -drain), and exits 0 — the graceful-drain contract the
// workers themselves keep, applied at the cluster tier.
//
// -addr accepts :0; the actual bound address is printed as a parseable
// "listening on <addr>" line before serving.
//
//	go run ./cmd/lwtgate -addr :9090 -workers 127.0.0.1:8081,127.0.0.1:8082
//	curl 'localhost:9090/fib?n=30&backend=argobots&key=sess-7'
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

var (
	addr    = flag.String("addr", ":9090", "listen address (:0 binds an ephemeral port, announced via the 'listening on' log line)")
	workers = flag.String("workers", "", "comma-separated lwtserved worker addresses (host:port), required")
	vnodes  = flag.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per worker on the consistent-hash ring")
	retries = flag.Int("retries", cluster.DefaultRetries, "extra attempts per idempotent request (conn failures / unkeyed 503s); negative disables")

	checkEvery   = flag.Duration("check-interval", 500*time.Millisecond, "health-probe interval")
	checkTimeout = flag.Duration("check-timeout", 2*time.Second, "health-probe timeout")
	failAfter    = flag.Int("fail-after", 3, "consecutive failed probes/connections that eject a worker")
	readyAfter   = flag.Int("ready-after", 2, "consecutive passing probes that re-admit an ejected worker")

	drain    = flag.Duration("drain", 30*time.Second, "in-flight flush budget at shutdown (0: unbounded)")
	notReady = flag.Duration("notready-grace", 250*time.Millisecond, "window between /readyz flipping 503 and the listener closing, so upstream probes observe the flip")
)

func main() {
	flag.Parse()
	addrs := strings.Split(*workers, ",")
	table := cluster.NewTable(*vnodes, cluster.HealthPolicy{
		FailThreshold: *failAfter,
		OKThreshold:   *readyAfter,
	})
	n := 0
	for _, a := range addrs {
		if strings.TrimSpace(a) == "" {
			continue
		}
		if _, err := table.Add(a); err != nil {
			log.Fatalf("lwtgate: %v", err)
		}
		n++
	}
	if n == 0 {
		log.Fatal("lwtgate: -workers requires at least one worker address")
	}

	gw := cluster.New(cluster.Options{Table: table, Retries: *retries})
	checker := cluster.NewChecker(table, cluster.HealthConfig{
		Interval: *checkEvery,
		Timeout:  *checkTimeout,
	})
	checker.Start()

	// Control endpoints first; the gateway is the catch-all proxy.
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/metrics", gw.MetricsHandler())
	mux.HandleFunc("/cluster/workers", gw.WorkersHandler())
	mux.HandleFunc("/metrics", gw.PromHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if gw.Draining() {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.Handle("/", gw)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("lwtgate: %v", err)
	}
	hs := &http.Server{Handler: mux}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		// Stop admission before flushing: readiness flips and the
		// proxy refuses new requests, then Shutdown waits out the
		// in-flight ones (bounded by -drain).
		gw.StartDrain()
		log.Println("lwtgate: draining")
		// Admission is already off (the proxy 503s new work), but hold
		// the listener open briefly so /readyz probes observe the flip
		// instead of racing a connection refusal.
		time.Sleep(*notReady)
		ctx := context.Background()
		if *drain > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *drain)
			defer cancel()
		}
		_ = hs.Shutdown(ctx)
	}()
	log.Printf("lwtgate: listening on %s (workers=%v retries=%d vnodes=%d)",
		ln.Addr(), table.Ring().Members(), *retries, *vnodes)
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	checker.Stop()
	m := gw.Snapshot()
	log.Printf("lwtgate: drained cleanly (proxied=%d retried=%d reroutes503=%d failed=%d rejected-draining=%d)",
		m.Proxied, m.Retried, m.Reroutes503, m.Failed, m.RejectedDraining)
}
