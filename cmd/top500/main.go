// Command top500 regenerates Figure 1 of the paper: the percentage of
// Top500 systems per cores-per-socket class for each November list from
// 2001 to 2015, printed as the data table behind the stacked-bar chart.
//
// Usage:
//
//	top500 [-year 2015]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/top500"
)

func main() {
	year := flag.Int("year", 0, "print a single year's shares (0 = all years)")
	flag.Parse()

	d := top500.Historical()
	if *year == 0 {
		fmt.Println("Figure 1: Top500 systems by cores per socket (November lists)")
		fmt.Print(top500.Render(d))
		return
	}
	shares := d.Shares(*year)
	if len(shares) == 0 {
		fmt.Fprintf(os.Stderr, "top500: no data for %d (have 2001-2015)\n", *year)
		os.Exit(2)
	}
	fmt.Printf("November %d list by cores per socket:\n", *year)
	for _, b := range top500.Buckets() {
		fmt.Printf("  %-6s %6.1f%%\n", b, shares[b])
	}
}
