// Command lwttrace analyzes flight-recorder traces. It either runs one
// of the paper's microbenchmark patterns live with tracing enabled, or
// loads a dump produced by a running daemon (lwtserved's /debug/trace
// endpoint, a SIGUSR2 dump file, or an anomaly dump), and prints the
// paper-style aggregate time-breakdown table with percentages —
// making claims like §IX-D's "Converse Threads expends up to 75 % of
// its execution time in performing barrier and yield operations"
// directly observable. Either source can additionally be exported as
// Chrome trace-event JSON for chrome://tracing / Perfetto.
//
// Usage:
//
//	lwttrace -runtime argobots -tasks 1000 -threads 4
//	lwttrace -runtime converse -tasks 1000 -threads 4 -chrome trace.json
//	lwttrace -dump trace-dump.json
//	lwttrace -dump http://127.0.0.1:8080/debug/trace
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro/internal/argobots"
	"repro/internal/converse"
	"repro/internal/trace"
)

func main() {
	rtName := flag.String("runtime", "argobots", "runtime to trace live: argobots or converse")
	threads := flag.Int("threads", 4, "execution streams / processors")
	tasks := flag.Int("tasks", 1000, "work units to create")
	dump := flag.String("dump", "", "analyze a flight-recorder dump instead of running live: a file path, or an http(s) URL such as http://host:port/debug/trace")
	chrome := flag.String("chrome", "", "write Chrome trace-event JSON to this file")
	flag.Parse()

	var events []trace.Event
	if *dump != "" {
		d, err := loadDump(*dump)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lwttrace: %v\n", err)
			os.Exit(1)
		}
		if d.Disabled {
			fmt.Fprintln(os.Stderr, "lwttrace: dump was taken with tracing disabled (LWT_TRACE_OFF)")
			os.Exit(1)
		}
		fmt.Printf("dump taken %s", d.TakenAt.Format("2006-01-02 15:04:05.000"))
		if d.Reason != "" {
			fmt.Printf(" (%s)", d.Reason)
		}
		fmt.Printf(": %d lanes, %d events\n", len(d.Lanes), len(d.Events))
		for _, l := range d.Lanes {
			over := uint64(0)
			if l.Written > uint64(l.Slots) {
				over = l.Written - uint64(l.Slots)
			}
			fmt.Printf("  lane %-24s exec %3d  written %8d  overwritten %8d  dropped %d\n",
				l.Name, l.Exec, l.Written, over, l.Dropped)
		}
		events = d.Events
	} else {
		rec := trace.NewRecorder(1 << 16)
		switch *rtName {
		case "argobots":
			runArgobots(rec, *threads, *tasks)
		case "converse":
			runConverse(rec, *threads, *tasks)
		default:
			fmt.Fprintf(os.Stderr, "lwttrace: unknown runtime %q\n", *rtName)
			os.Exit(2)
		}
		events = rec.Events()
	}

	sum := trace.Summarize(events)
	fmt.Print(sum.Render())
	fmt.Printf("sync share (barrier+yield): %.1f%%\n",
		100*sum.Fraction(trace.KindBarrier, trace.KindYield))

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lwttrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteChromeTrace(f, events); err != nil {
			fmt.Fprintf(os.Stderr, "lwttrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace written to %s\n", *chrome)
	}
}

// loadDump reads a dump from a file path or fetches it from a URL
// (lwtserved's /debug/trace). A URL without an explicit format query
// gets ?format=json appended so a breakdown- or chrome-format endpoint
// still yields a parseable dump.
func loadDump(src string) (*trace.Dump, error) {
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		if !strings.Contains(src, "format=") {
			sep := "?"
			if strings.Contains(src, "?") {
				sep = "&"
			}
			src += sep + "format=json"
		}
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return nil, fmt.Errorf("GET %s: %s: %s", src, resp.Status, strings.TrimSpace(string(body)))
		}
		return trace.ReadDump(resp.Body)
	}
	f, err := os.Open(src)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadDump(f)
}

// runArgobots traces the Figure 5 pattern (tasks from a single creator).
func runArgobots(rec *trace.Recorder, threads, tasks int) {
	rt := argobots.Init(argobots.Config{XStreams: threads, Tracer: rec})
	defer rt.Finalize()
	tks := make([]*argobots.Task, tasks)
	for i := range tks {
		tks[i] = rt.TaskCreate(func() {})
	}
	for _, tk := range tks {
		if err := rt.TaskFree(tk); err != nil {
			fmt.Fprintf(os.Stderr, "lwttrace: join: %v\n", err)
			os.Exit(1)
		}
	}
}

// runConverse traces the two-step Message pattern with its barrier join.
func runConverse(rec *trace.Recorder, threads, tasks int) {
	rt := converse.Init(threads)
	rt.SetTracer(rec)
	defer rt.Finalize()
	for i := 0; i < tasks; i++ {
		rt.SyncSend(i%threads, func(*converse.Proc) {})
	}
	rt.Barrier()
}
