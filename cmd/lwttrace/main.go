// Command lwttrace runs one of the paper's microbenchmark patterns with
// scheduling-event tracing enabled and prints the aggregate time
// breakdown (optionally exporting a Chrome trace-event JSON for
// chrome://tracing / Perfetto). It makes claims like §IX-D's "Converse
// Threads expends up to 75 % of its execution time in performing barrier
// and yield operations" directly observable.
//
// Usage:
//
//	lwttrace -runtime argobots -tasks 1000 -threads 4
//	lwttrace -runtime converse -tasks 1000 -threads 4 -chrome trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/argobots"
	"repro/internal/converse"
	"repro/internal/trace"
)

func main() {
	rtName := flag.String("runtime", "argobots", "runtime to trace: argobots or converse")
	threads := flag.Int("threads", 4, "execution streams / processors")
	tasks := flag.Int("tasks", 1000, "work units to create")
	chrome := flag.String("chrome", "", "write Chrome trace-event JSON to this file")
	flag.Parse()

	rec := trace.NewRecorder(1 << 20)
	switch *rtName {
	case "argobots":
		runArgobots(rec, *threads, *tasks)
	case "converse":
		runConverse(rec, *threads, *tasks)
	default:
		fmt.Fprintf(os.Stderr, "lwttrace: unknown runtime %q\n", *rtName)
		os.Exit(2)
	}

	events := rec.Events()
	sum := trace.Summarize(events)
	fmt.Print(sum.Render())
	fmt.Printf("sync share (barrier+yield): %.1f%%\n",
		100*sum.Fraction(trace.KindBarrier, trace.KindYield))
	if rec.Dropped() > 0 {
		fmt.Printf("(%d events dropped past recorder capacity)\n", rec.Dropped())
	}

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lwttrace: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := trace.WriteChromeTrace(f, events); err != nil {
			fmt.Fprintf(os.Stderr, "lwttrace: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace written to %s\n", *chrome)
	}
}

// runArgobots traces the Figure 5 pattern (tasks from a single creator).
func runArgobots(rec *trace.Recorder, threads, tasks int) {
	rt := argobots.Init(argobots.Config{XStreams: threads, Tracer: rec})
	defer rt.Finalize()
	tks := make([]*argobots.Task, tasks)
	for i := range tks {
		tks[i] = rt.TaskCreate(func() {})
	}
	for _, tk := range tks {
		if err := rt.TaskFree(tk); err != nil {
			fmt.Fprintf(os.Stderr, "lwttrace: join: %v\n", err)
			os.Exit(1)
		}
	}
}

// runConverse traces the two-step Message pattern with its barrier join.
func runConverse(rec *trace.Recorder, threads, tasks int) {
	rt := converse.Init(threads)
	rt.SetTracer(rec)
	defer rt.Finalize()
	for i := 0; i < tasks; i++ {
		rt.SyncSend(i%threads, func(*converse.Proc) {})
	}
	rt.Barrier()
}
