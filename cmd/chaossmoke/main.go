// Chaossmoke drives the robustness tier end to end, as CI's
// chaos-smoke job and as a local acceptance check:
//
//  1. boots 3 lwtserved workers on ephemeral ports with a chaos proxy
//     (internal/chaos) in front of worker 0 — health probes are spared,
//     so the data path can burn while /healthz stays green, isolating
//     circuit-breaker containment from health ejection — and one
//     lwtgate over them with per-attempt timeouts, a tight breaker, and
//     end-to-end deadline budgets on every request,
//  2. injects each fault mode mid-load (added latency past the attempt
//     timeout, connection resets, 503 bursts, a blackhole) and asserts
//     zero lost requests: every request gets a terminal response inside
//     its deadline budget + slack, never a hang,
//  3. asserts the breaker cycle is visible in /metrics — the faulted
//     worker's lwt_gate_worker_breaker_opens_total grows and
//     lwt_gate_breaker_state returns to closed after each recovery,
//  4. pins a deadline-exhaustion 504 at the gate: with the faulted
//     worker blackholed and the budget below one attempt timeout, a
//     keyed request pinned to it burns its whole budget and is refused
//     with lwt_gate_deadline_exhausted_total growing,
//  5. SIGSTOPs worker 1 (a real frozen process — sockets accept,
//     nothing answers) under load, asserts containment and recovery
//     after SIGCONT, and
//  6. SIGTERMs the gate and workers and asserts clean drains (exit 0,
//     "drained cleanly" in every log) — no future is lost even after a
//     chaos run.
//
// Logs land in -logdir for archival. Exit status 0 means the whole
// scenario passed.
//
//	go build -o lwtgate ./cmd/lwtgate && go build -o lwtserved ./cmd/lwtserved
//	go run ./cmd/chaossmoke -gate ./lwtgate -worker ./lwtserved
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/prom"
)

var (
	gateBin   = flag.String("gate", "", "path to the lwtgate binary (required)")
	workerBin = flag.String("worker", "", "path to the lwtserved binary (required)")
	logDir    = flag.String("logdir", ".", "directory for gate/worker logs")
	faultFor  = flag.Duration("fault", 1200*time.Millisecond, "duration each fault stays armed under load")
	recovery  = flag.Duration("recovery", 1500*time.Millisecond, "post-fault window for the breaker to close again")
	loaders   = flag.Int("loaders", 4, "concurrent load goroutines")
	deadline  = flag.Duration("deadline", 2*time.Second, "end-to-end budget stamped on every load request")
)

// client timeout is the lost-request detector: the gate bounds every
// request by -deadline, so anything still unanswered here hung.
var client = &http.Client{Timeout: 60 * time.Second}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// proc is one supervised child process with a scanned log.
type proc struct {
	name string
	cmd  *exec.Cmd
	addr chan string

	mu       sync.Mutex
	exited   bool
	exitCode int
	waitDone chan struct{}
}

func startProc(name, bin string, args ...string) (*proc, error) {
	logPath := filepath.Join(*logDir, name+".log")
	logFile, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}
	p := &proc{name: name, addr: make(chan string, 1), waitDone: make(chan struct{})}
	p.cmd = exec.Command(bin, args...)
	pr, pw := io.Pipe()
	p.cmd.Stdout = pw
	p.cmd.Stderr = pw
	go func() {
		defer logFile.Close()
		sc := bufio.NewScanner(pr)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		announced := false
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(logFile, line)
			if !announced {
				if m := listenRe.FindStringSubmatch(line); m != nil {
					announced = true
					p.addr <- m[1]
				}
			}
		}
	}()
	if err := p.cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", name, err)
	}
	go func() {
		err := p.cmd.Wait()
		pw.Close()
		p.mu.Lock()
		p.exited = true
		p.exitCode = 0
		if err != nil {
			p.exitCode = -1
			if ee, ok := err.(*exec.ExitError); ok {
				p.exitCode = ee.ExitCode()
			}
		}
		p.mu.Unlock()
		close(p.waitDone)
	}()
	return p, nil
}

func (p *proc) waitAddr(d time.Duration) (string, error) {
	select {
	case a := <-p.addr:
		return a, nil
	case <-p.waitDone:
		return "", fmt.Errorf("%s exited before announcing its address (see %s.log)", p.name, p.name)
	case <-time.After(d):
		return "", fmt.Errorf("%s did not announce its address within %v", p.name, d)
	}
}

func (p *proc) signalAndWait(sig syscall.Signal, d time.Duration) (int, error) {
	_ = p.cmd.Process.Signal(sig)
	select {
	case <-p.waitDone:
	case <-time.After(d):
		_ = p.cmd.Process.Kill()
		return -1, fmt.Errorf("%s did not exit within %v of %v", p.name, d, sig)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exitCode, nil
}

func (p *proc) kill() {
	p.mu.Lock()
	exited := p.exited
	p.mu.Unlock()
	if !exited && p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
}

var failures atomic.Int32

func failf(format string, args ...any) {
	failures.Add(1)
	log.Printf("FAIL: "+format, args...)
}

func fatalf(procs []*proc, format string, args ...any) {
	log.Printf("FATAL: "+format, args...)
	for _, p := range procs {
		if p != nil {
			p.kill()
		}
	}
	os.Exit(1)
}

// loadStats is what the background load accumulates.
type loadStats struct {
	sent, ok, errResp, lost atomic.Int64
	maxElapsed              atomic.Int64 // ns, across terminal responses
}

// get issues one request, classifying the outcome and tracking the
// terminal-response latency against the deadline ceiling.
func (s *loadStats) get(url string) (status int, worker string) {
	s.sent.Add(1)
	t0 := time.Now()
	resp, err := client.Get(url)
	elapsed := time.Since(t0)
	for {
		old := s.maxElapsed.Load()
		if int64(elapsed) <= old || s.maxElapsed.CompareAndSwap(old, int64(elapsed)) {
			break
		}
	}
	if err != nil {
		s.lost.Add(1)
		return 0, ""
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode == http.StatusOK {
		s.ok.Add(1)
	} else {
		s.errResp.Add(1)
	}
	return resp.StatusCode, resp.Header.Get("X-Lwt-Worker")
}

// scrape fetches the gate's Prometheus page.
func scrape(gateURL string) (string, error) {
	resp, err := client.Get(gateURL + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// promValue reads one sample off a fresh scrape; missing samples
// return -1.
func promValue(gateURL, family, workerID string) float64 {
	page, err := scrape(gateURL)
	if err != nil {
		return -1
	}
	var labels map[string]string
	if workerID != "" {
		labels = map[string]string{"worker": workerID}
	}
	v, ok := prom.Value(page, family, labels)
	if !ok {
		return -1
	}
	return v
}

// waitBreakerState polls until the worker's breaker gauge reads want.
func waitBreakerState(gateURL, workerID string, want float64, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if promValue(gateURL, "lwt_gate_breaker_state", workerID) == want {
			return true
		}
		time.Sleep(50 * time.Millisecond)
	}
	return false
}

func logContains(name, substr string) bool {
	b, err := os.ReadFile(filepath.Join(*logDir, name+".log"))
	return err == nil && strings.Contains(string(b), substr)
}

func main() {
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	if *gateBin == "" || *workerBin == "" {
		log.Fatal("chaossmoke: -gate and -worker are required")
	}
	if err := os.MkdirAll(*logDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// ---- Boot: 3 workers, a chaos proxy in front of worker 0, one
	// gate over [proxy, worker1, worker2]. Health probes bypass the
	// proxy's faults; fail-after is out of reach so every bit of
	// containment below is the breaker's, not ejection's.
	var procs []*proc
	var workerProcs []*proc
	var workerAddrs []string
	for i := 0; i < 3; i++ {
		p, err := startProc(fmt.Sprintf("worker-%d", i), *workerBin,
			"-addr", "127.0.0.1:0", "-shards", "2", "-threads", "1",
			"-queue", "256", "-batch", "16", "-drain", "20s")
		if err != nil {
			fatalf(procs, "%v", err)
		}
		procs = append(procs, p)
		workerProcs = append(workerProcs, p)
		a, err := p.waitAddr(30 * time.Second)
		if err != nil {
			fatalf(procs, "%v", err)
		}
		workerAddrs = append(workerAddrs, a)
		log.Printf("worker-%d listening on %s", i, a)
	}
	proxy, err := chaos.NewProxy(workerAddrs[0], chaos.Options{Spare: []string{"/healthz"}})
	if err != nil {
		fatalf(procs, "chaos proxy: %v", err)
	}
	defer proxy.Close()
	faultedID := proxy.Addr() // the gate knows worker 0 by the proxy's address
	log.Printf("chaos proxy %s -> worker-0 %s", faultedID, workerAddrs[0])

	gate, err := startProc("gate", *gateBin,
		"-addr", "127.0.0.1:0",
		"-workers", strings.Join([]string{faultedID, workerAddrs[1], workerAddrs[2]}, ","),
		"-check-interval", "200ms", "-check-timeout", "1s",
		"-fail-after", "1000000", "-ready-after", "2",
		"-retries", "2", "-drain", "20s",
		"-attempt-timeout", "250ms",
		"-breaker-window", "8", "-breaker-ratio", "0.5", "-breaker-cooldown", "500ms")
	if err != nil {
		fatalf(procs, "%v", err)
	}
	procs = append(procs, gate)
	gateAddr, err := gate.waitAddr(30 * time.Second)
	if err != nil {
		fatalf(procs, "%v", err)
	}
	gateURL := "http://" + gateAddr
	log.Printf("gate listening on %s", gateAddr)

	ready := false
	for i := 0; i < 100; i++ {
		if resp, err := client.Get(gateURL + "/readyz"); err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				ready = true
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !ready {
		fatalf(procs, "gate never became ready")
	}

	// Map a keyed session onto the faulted worker for the pinned-504
	// phase below.
	var warm loadStats
	faultedKey := ""
	for k := 0; k < 20000 && faultedKey == ""; k++ {
		key := fmt.Sprintf("sess-%d", k)
		if status, worker := warm.get(gateURL + "/fib?n=12&wait=1&key=" + key); status == http.StatusOK && worker == faultedID {
			faultedKey = key
		}
	}
	if faultedKey == "" {
		fatalf(procs, "no key maps to the faulted worker")
	}

	// ---- Fault schedule under load: for each mode, arm it, hold load,
	// clear it, and require the breaker to close again before the next.
	dlMs := fmt.Sprintf("%d", deadline.Milliseconds())
	var stats loadStats
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < *loaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				path := "/fib?n=16&wait=1&deadline_ms=" + dlMs
				if i%3 == 0 {
					path += "&key=" + faultedKey // keep keyed pressure on the faulted worker
				}
				stats.get(gateURL + path)
			}
		}(g)
	}

	schedule := []struct {
		fault   chaos.Fault
		latency time.Duration
	}{
		{chaos.Latency, 600 * time.Millisecond}, // past the 250ms attempt timeout
		{chaos.Reset, 0},
		{chaos.Burst503, 0},
		{chaos.Blackhole, 0},
	}
	opensBefore := promValue(gateURL, "lwt_gate_worker_breaker_opens_total", faultedID)
	for _, s := range schedule {
		log.Printf("injecting %v for %v", s.fault, *faultFor)
		proxy.Inject(s.fault, s.latency)
		time.Sleep(*faultFor)
		proxy.Clear()
		// 503 bursts are backpressure, not breaker failures: the worker
		// is answering. Every other mode must cycle the breaker closed
		// again once the fault clears.
		if s.fault != chaos.Burst503 {
			if !waitBreakerState(gateURL, faultedID, float64(0), *recovery+2*time.Second) {
				failf("breaker did not close after %v cleared (state=%v)",
					s.fault, promValue(gateURL, "lwt_gate_breaker_state", faultedID))
			}
		} else {
			time.Sleep(*recovery)
		}
	}
	opensAfter := promValue(gateURL, "lwt_gate_worker_breaker_opens_total", faultedID)
	if opensAfter <= opensBefore {
		failf("breaker_opens_total did not grow across the fault schedule (%v -> %v)", opensBefore, opensAfter)
	} else {
		log.Printf("breaker cycled: opens %v -> %v, state closed again", opensBefore, opensAfter)
	}

	// ---- Pinned deadline exhaustion: with the faulted worker
	// blackholed and a budget below one attempt timeout, a keyed
	// request pinned to it must burn its budget and get the gate's 504
	// — and quickly, never the blackhole's hang.
	if !waitBreakerState(gateURL, faultedID, 0, 5*time.Second) {
		failf("breaker not closed before the deadline-exhaustion phase")
	}
	proxy.Inject(chaos.Blackhole, 0)
	exhaustedBefore := promValue(gateURL, "lwt_gate_deadline_exhausted_total", "")
	saw504 := false
	for i := 0; i < 5 && !saw504; i++ {
		var probe loadStats
		t0 := time.Now()
		status, _ := probe.get(gateURL + "/fib?n=16&wait=1&key=" + faultedKey + "&deadline_ms=100")
		if status == http.StatusGatewayTimeout {
			saw504 = true
			if d := time.Since(t0); d > 2*time.Second {
				failf("pinned 504 took %v, want ≈100ms budget", d)
			}
		}
	}
	proxy.Clear()
	if !saw504 {
		failf("no 504 for a budget-exhausted keyed request pinned to a blackholed worker")
	}
	if after := promValue(gateURL, "lwt_gate_deadline_exhausted_total", ""); !(after > exhaustedBefore) {
		failf("deadline_exhausted_total did not grow (%v -> %v)", exhaustedBefore, after)
	}
	if !waitBreakerState(gateURL, faultedID, 0, 5*time.Second) {
		failf("breaker did not recover after the blackhole phase")
	}

	// ---- SIGSTOP phase: freeze worker 1 — a real stopped process, not
	// a proxy fault. Its sockets accept and nothing answers; the
	// attempt timeout cuts each stranded attempt and the breaker
	// contains it until SIGCONT.
	w1 := workerProcs[1]
	log.Printf("SIGSTOPping worker-1 (%s) under load", workerAddrs[1])
	if err := chaos.Pause(w1.cmd.Process.Pid); err != nil {
		failf("SIGSTOP worker-1: %v", err)
	}
	time.Sleep(*faultFor)
	stoppedState := promValue(gateURL, "lwt_gate_breaker_state", workerAddrs[1])
	if err := chaos.Resume(w1.cmd.Process.Pid); err != nil {
		failf("SIGCONT worker-1: %v", err)
	}
	if stoppedState != float64(2) {
		// The breaker may legitimately be half-open at sample time;
		// what matters is that it opened at all.
		if promValue(gateURL, "lwt_gate_worker_breaker_opens_total", workerAddrs[1]) < 1 {
			failf("frozen worker never opened its breaker (state at freeze end: %v)", stoppedState)
		}
	}
	if !waitBreakerState(gateURL, workerAddrs[1], 0, 10*time.Second) {
		failf("breaker did not close after SIGCONT")
	} else {
		log.Printf("worker-1 thawed; breaker closed again")
	}

	close(stop)
	wg.Wait()

	// ---- Terminal-response + deadline-ceiling verdicts over the whole
	// run.
	sent, okN, errN, lost := stats.sent.Load(), stats.ok.Load(), stats.errResp.Load(), stats.lost.Load()
	maxEl := time.Duration(stats.maxElapsed.Load())
	log.Printf("load done: sent=%d ok=%d explicit-errors=%d lost=%d max-elapsed=%v",
		sent, okN, errN, lost, maxEl)
	if lost != 0 {
		failf("%d requests lost (no terminal response) — hangs leaked through the deadline tier", lost)
	}
	if okN == 0 {
		failf("no successful responses under chaos load")
	}
	// The ceiling: every request carried a -deadline budget; nothing
	// may take longer than budget + generous scheduling slack.
	if ceiling := *deadline + 3*time.Second; maxEl > ceiling {
		failf("max terminal-response latency %v exceeds the deadline ceiling %v", maxEl, ceiling)
	}
	// Containment: with retries, hedging headroom, and only one worker
	// faulted at a time, client-visible errors stay a small fraction.
	if errN*4 > sent {
		failf("explicit errors %d exceed 25%% of %d sent — containment failed", errN, sent)
	}

	// ---- Clean drains: chaos over, nothing may be lost at shutdown.
	if code, err := gate.signalAndWait(syscall.SIGTERM, 30*time.Second); err != nil || code != 0 {
		failf("gate drain: exit=%d err=%v", code, err)
	} else if !logContains("gate", "drained cleanly") {
		failf("gate log missing 'drained cleanly'")
	}
	for i, p := range workerProcs {
		if code, err := p.signalAndWait(syscall.SIGTERM, 30*time.Second); err != nil || code != 0 {
			failf("worker-%d drain: exit=%d err=%v", i, code, err)
		} else if !logContains(fmt.Sprintf("worker-%d", i), "drained cleanly") {
			failf("worker-%d log missing 'drained cleanly'", i)
		}
	}

	if n := failures.Load(); n > 0 {
		log.Fatalf("chaos smoke FAILED: %d check(s) failed", n)
	}
	log.Printf("chaos smoke PASSED: %d requests, 4 proxy faults + 1 SIGSTOP, 0 lost, max latency %v under a %v budget, breaker cycled, clean drains",
		sent, maxEl, *deadline)
}
