package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	lwt "repro"
	"repro/internal/cluster"
)

// TestDeadlineOfParsing pins the budget extraction: header wins over
// the query parameter, both are milliseconds-from-now, and garbage or
// non-positive values mean no deadline.
func TestDeadlineOfParsing(t *testing.T) {
	mk := func(header, query string) *http.Request {
		url := "/fib"
		if query != "" {
			url += "?deadline_ms=" + query
		}
		r := httptest.NewRequest(http.MethodGet, url, nil)
		if header != "" {
			r.Header.Set(cluster.DeadlineHeader, header)
		}
		return r
	}
	if !deadlineOf(mk("", "")).IsZero() {
		t.Fatal("no budget anywhere, want zero deadline")
	}
	for _, bad := range []string{"x", "0", "-5"} {
		if !deadlineOf(mk(bad, "")).IsZero() {
			t.Fatalf("header %q, want zero deadline", bad)
		}
	}
	before := time.Now()
	dl := deadlineOf(mk("", "200"))
	if got := dl.Sub(before); got <= 0 || got > 250*time.Millisecond {
		t.Fatalf("query budget lands %v out, want ~200ms", got)
	}
	// Header wins: 50ms header against a 10s query parameter.
	dl = deadlineOf(mk("50", "10000"))
	if got := dl.Sub(before); got > time.Second {
		t.Fatalf("header did not win over query: deadline %v out", got)
	}
}

// TestHandleDeadlineBoundsWait pins the 504 contract the chaos drill
// leans on: a body that never observes the cooperative cancel signal
// must not hold the HTTP reply past the budget — the Wait is cut at
// the deadline and the caller gets 504 while the work unit finishes in
// the background. Without a budget the same body answers 200.
func TestHandleDeadlineBoundsWait(t *testing.T) {
	g := &registry{servers: map[string]*lwt.Server{}, omps: map[string]*ompWorker{}}
	defer g.closeAll()
	// A cooperative but cancellation-blind body: yields so the shard's
	// executor is shared, never checks the cancel channel, runs ~300ms.
	h := handle(g, func(r *http.Request, sub *lwt.Submitter, n int) (*lwt.Future[float64], error) {
		return submitULT(r, sub, func(c lwt.Ctx) (float64, error) {
			end := time.Now().Add(300 * time.Millisecond)
			for time.Now().Before(end) {
				c.Yield()
			}
			return 1, nil
		})
	}, 1, 10)

	rec := httptest.NewRecorder()
	t0 := time.Now()
	h(rec, httptest.NewRequest(http.MethodGet, "/slow?backend=go&deadline_ms=50", nil))
	elapsed := time.Since(t0)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status past a 50ms budget = %d, want 504", rec.Code)
	}
	if elapsed >= 300*time.Millisecond {
		t.Fatalf("reply held %v — the Wait was not cut at the deadline", elapsed)
	}

	rec = httptest.NewRecorder()
	h(rec, httptest.NewRequest(http.MethodGet, "/slow?backend=go", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("unbudgeted status = %d, want 200", rec.Code)
	}
}
