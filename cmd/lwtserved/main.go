// Lwtserved is the serving subsystem end to end: an HTTP server that
// answers compute requests by submitting work into LWT backends through
// the serve layer's shard pool. Every registered backend serves
// concurrently; the ?backend= query parameter selects which runtime
// executes a request, -shards runs that many independent runtimes per
// backend, and -router picks how unkeyed requests spread across them.
//
// Endpoints:
//
//	/fib?n=28&cutoff=12&backend=argobots   recursive task parallelism (ULT per branch)
//	/dgemm?n=96&chunks=4&backend=qthreads  BLAS-3 GEMM decomposed across ULTs
//	/parfor?n=1048576&backend=go           parallel for over a vector via the omp layer
//	/io?ms=10&backend=go                   simulated I/O: the handler parks on the
//	                                       async-I/O reactor for ms milliseconds, holding
//	                                       no executor while it waits
//	/fibio?n=24&fan=4&ms=10&backend=go     fib compute overlapped with a fan of parked
//	                                       I/O waits (downstream-call shape)
//	/metrics                               Prometheus text exposition: per-shard queue depth,
//	                                       in-flight, I/O-parked, latency histograms, and
//	                                       scheduler steal/contention counters
//	/metrics.json                          per-backend aggregate + per-shard serve.Metrics as JSON
//	/debug/trace                           flight-recorder dump; ?format=json (default) for the
//	                                       raw dump, chrome for chrome://tracing / Perfetto,
//	                                       breakdown for the paper-style percentage table
//	/backends                              registered backend names
//	/healthz                               liveness (200 while the process serves)
//	/readyz                                readiness (503 from the moment SIGTERM arrives)
//
// Tracing is always on: every backend executor and serve shard records
// into bounded per-executor ring buffers (a flight recorder — newest
// events win). Besides the /debug/trace endpoint, SIGUSR2 writes a dump
// file into -trace-dir, and the serving layer's anomaly watchdog writes
// one automatically when it sees a P99 latency spike or sustained
// saturation — while the recorder's window still holds the anomaly.
// Set LWT_TRACE_OFF=1 to disable recording entirely.
//
// Flags:
//
//	-shards N          backend runtime shards per backend (0: one per CPU)
//	-router NAME       unkeyed routing policy: p2c (default), roundrobin, random
//	-drain D           graceful-drain budget at shutdown (0: unbounded)
//	-threads N         executors per shard
//	-queue N           submission queue depth per shard
//	-inflight N        max in-flight work units per shard (0: queue depth)
//	-batch N           requests launched per pump wakeup
//	-scheduler S       ready-pool policy per backend runtime
//	-steal             idle shards steal unkeyed backlog from loaded ones
//	                   (default on; keyed requests never move)
//	-autoscale-max N   shard-pool ceiling per backend; sustained saturation
//	                   grows the routing set toward it, sustained idleness
//	                   shrinks back to -shards (0: autoscaling off)
//	-scale-interval D  autoscaler sample period
//	-topo MODE         topology-aware layout: off, detect (probe the host),
//	                   paper (2x18x2), or an explicit SxCxP spec; derives
//	                   -shards (one per core) and -threads (PUs per core)
//	                   where those are unset
//
// Admission control maps to HTTP: a saturated backend answers 503 with
// Retry-After (after one re-route to the least-loaded shard); pass
// wait=1 to block (with the request's context) instead of fast-failing.
// Pass key=SESSION to pin the request to one shard by key hash — every
// request with the same key hits the same runtime, so its backend-local
// state stays warm. An X-LWT-Deadline-Ms header (what lwtgate forwards)
// or ?deadline_ms= parameter bounds the request end to end: still
// queued when the budget runs out, it is shed without running; already
// launched, the handler's parked waits wake early with a cancellation
// error. Either way the response is 504 Gateway Timeout. Request latency percentiles come from the serving
// layer's own metrics window. On SIGINT/SIGTERM the daemon flips
// /readyz to 503 first (so a cluster router stops sending work), then
// stops admission, drains every shard (each accepted request resolves),
// and exits 0.
//
// -addr accepts :0 for an ephemeral port; the daemon prints the actual
// bound address as a parseable "listening on <addr>" line before
// serving, so lwtgate and CI can boot N workers without port races.
//
//	go run ./cmd/lwtserved -addr :8080 -shards 4
//	curl 'localhost:8080/fib?n=30&backend=massivethreads&key=sess-7'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	lwt "repro"
	"repro/internal/blas"
	"repro/internal/cluster"
	"repro/internal/prom"
	"repro/internal/serve"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/omp"
)

var (
	addr      = flag.String("addr", ":8080", "listen address (:0 binds an ephemeral port, announced via the 'listening on' log line)")
	threads   = flag.Int("threads", 4, "executors per backend runtime shard")
	scheduler = flag.String("scheduler", "", "ready-pool policy per backend (fifo|lifo|priority|random; empty: backend default)")
	shards    = flag.Int("shards", 0, "backend runtime shards per backend (0: one per CPU)")
	router    = flag.String("router", "p2c", "unkeyed shard routing policy (p2c|roundrobin|random)")
	queue     = flag.Int("queue", 1024, "submission queue depth per shard")
	inflight  = flag.Int("inflight", 0, "max in-flight work units per shard (0: queue depth)")
	batch     = flag.Int("batch", 64, "requests launched per pump wakeup")
	drain     = flag.Duration("drain", 30*time.Second, "graceful-drain budget at shutdown (0: unbounded)")
	notReady  = flag.Duration("notready-grace", 250*time.Millisecond, "window between /readyz flipping 503 and the listener closing, so health probes observe the flip")
	traceDir  = flag.String("trace-dir", ".", "directory for flight-recorder dump files (SIGUSR2 and anomaly dumps)")
	anomEvery = flag.Duration("anomaly-interval", serve.DefaultAnomalyInterval, "anomaly watchdog sample period")
	steal     = flag.Bool("steal", true, "idle shards steal unkeyed queued requests from the most-loaded shard (keyed work never moves)")
	scaleMax  = flag.Int("autoscale-max", 0, "autoscaler shard ceiling per backend (0 or <= -shards: autoscaling off)")
	scaleTick = flag.Duration("scale-interval", serve.DefaultScaleInterval, "autoscaler sample period")
	topoMode  = flag.String("topo", "off", "topology-aware shard layout: off, detect, paper, or SxCxP (e.g. 2x18x2)")
)

// resolveTopo maps the -topo flag onto a machine topology: "off" (nil —
// flat layout), "detect" (probe the host), "paper" (the paper's 2x18x2
// Xeon E5-2699v3 pair), or an explicit "SxCxP" spec.
func resolveTopo(mode string) (*topo.Topology, error) {
	switch mode {
	case "", "off":
		return nil, nil
	case "detect":
		t := topo.Detect()
		return &t, nil
	case "paper":
		t := topo.Paper()
		return &t, nil
	}
	var s, c, p int
	if n, err := fmt.Sscanf(mode, "%dx%dx%d", &s, &c, &p); err != nil || n != 3 || s < 1 || c < 1 || p < 1 {
		return nil, fmt.Errorf("bad -topo %q (off|detect|paper|SxCxP)", mode)
	}
	return &topo.Topology{Sockets: s, CoresPerSocket: c, PUsPerCore: p}, nil
}

// dumpTrace snapshots the process-global flight recorder and writes it
// to a timestamped file in -trace-dir. Used by the SIGUSR2 handler and
// the serve anomaly watchdog; /debug/trace streams instead.
func dumpTrace(reason string) {
	d := trace.Default().Snapshot(reason)
	tag := reason
	if i := strings.IndexAny(tag, ": "); i >= 0 {
		tag = tag[:i]
	}
	name := filepath.Join(*traceDir,
		fmt.Sprintf("lwt-trace-%s-%s.json", tag, time.Now().Format("20060102-150405.000")))
	f, err := os.Create(name)
	if err != nil {
		log.Printf("lwtserved: trace dump: %v", err)
		return
	}
	defer f.Close()
	if _, err := d.WriteTo(f); err != nil {
		log.Printf("lwtserved: trace dump: %v", err)
		return
	}
	log.Printf("lwtserved: trace dump (%s): %d events -> %s", reason, len(d.Events), name)
}

// registry lazily creates one serving engine and one omp worker per
// backend, on first use.
type registry struct {
	mu      sync.Mutex
	servers map[string]*lwt.Server
	omps    map[string]*ompWorker
	topo    *topo.Topology // resolved -topo layout; nil means flat
}

func (g *registry) server(backend string) (*lwt.Server, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s, ok := g.servers[backend]; ok {
		return s, nil
	}
	// Each server gets its own router instance so round-robin cursors
	// and the like are never shared across backends.
	rt, err := lwt.RouterByName(*router)
	if err != nil {
		return nil, err
	}
	s, err := lwt.NewServer(lwt.ServeOptions{
		Backend: backend, Threads: *threads, Scheduler: *scheduler,
		Shards: *shards, Router: rt,
		QueueDepth: *queue, MaxInFlight: *inflight, Batch: *batch,
		DrainTimeout: *drain,
		Steal:        *steal,
		Scale:        lwt.AutoScale{MaxShards: *scaleMax, Interval: *scaleTick},
		Topo:         g.topo,
		// Anomaly-triggered flight-recorder dump: the watchdog fires
		// while the trace window still holds the spike it detected.
		AnomalyInterval: *anomEvery,
		OnAnomaly: func(reason string, m serve.Metrics) {
			log.Printf("lwtserved: anomaly on %s: %s", backend, reason)
			dumpTrace("anomaly-" + backend)
		},
	})
	if err != nil {
		return nil, err
	}
	if lay := s.Layout(); lay != "" {
		log.Printf("lwtserved: %s topology layout: %s", backend, lay)
	}
	g.servers[backend] = s
	return s, nil
}

func (g *registry) omp(backend string) (*ompWorker, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w, ok := g.omps[backend]; ok {
		return w, nil
	}
	w, err := newOmpWorker(backend, *threads)
	if err != nil {
		return nil, err
	}
	g.omps[backend] = w
	return w, nil
}

func (g *registry) closeAll() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, s := range g.servers {
		s.Close()
	}
	for _, w := range g.omps {
		w.close()
	}
}

// ompWorker confines one omp.Runtime to a dedicated master goroutine:
// the directive layer (like the C libraries it models) is driven from
// the thread that initialized it, so HTTP handlers hand their loops to
// the worker instead of calling the runtime directly.
type ompWorker struct {
	jobs chan func(*omp.Runtime)
	done chan struct{}
}

func newOmpWorker(backend string, threads int) (*ompWorker, error) {
	w := &ompWorker{jobs: make(chan func(*omp.Runtime), 64), done: make(chan struct{})}
	ready := make(chan error)
	go func() {
		rt, err := omp.Open(omp.Config{Backend: backend, Executors: threads, Scheduler: *scheduler})
		ready <- err
		if err != nil {
			close(w.done)
			return
		}
		defer close(w.done)
		defer rt.Close()
		for job := range w.jobs {
			job(rt)
		}
	}()
	if err := <-ready; err != nil {
		return nil, err
	}
	return w, nil
}

// run executes job on the worker's master goroutine and waits for it.
func (w *ompWorker) run(job func(*omp.Runtime)) {
	wait := make(chan struct{})
	w.jobs <- func(rt *omp.Runtime) {
		defer close(wait)
		job(rt)
	}
	<-wait
}

func (w *ompWorker) close() {
	close(w.jobs)
	<-w.done
}

// qint parses an integer query parameter with a default and bounds.
func qint(r *http.Request, name string, def, lo, hi int) int {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < lo {
		return def
	}
	if n > hi {
		return hi
	}
	return n
}

// backendOf validates the ?backend= selector.
func backendOf(r *http.Request) (string, error) {
	b := r.URL.Query().Get("backend")
	if b == "" {
		return "go", nil
	}
	for _, name := range lwt.Backends() {
		if name == b {
			return b, nil
		}
	}
	return "", fmt.Errorf("unknown backend %q (have %v)", b, lwt.Backends())
}

// reply writes a JSON response.
func reply(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// submitErr maps submission errors to HTTP statuses.
func submitErr(w http.ResponseWriter, err error) {
	switch {
	case err == lwt.ErrSaturated:
		w.Header().Set("Retry-After", "1")
		reply(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	case err == lwt.ErrServerClosed:
		reply(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
	default:
		reply(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	}
}

// waitErr maps a Future resolution error to HTTP: a request that died
// because its end-to-end budget ran out — shed from the queue
// (ErrExpired), cancelled mid-run (ErrCanceled), or the deadline-
// carrying context gave out — answers 504 Gateway Timeout so the
// caller can tell "out of time" from "handler failed" (500).
func waitErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, lwt.ErrExpired) || errors.Is(err, lwt.ErrCanceled) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		status = http.StatusGatewayTimeout
	}
	reply(w, status, map[string]string{"error": err.Error()})
}

// result is the common response envelope.
type result struct {
	Backend string  `json:"backend"`
	N       int     `json:"n"`
	Value   float64 `json:"value"`
	Micros  int64   `json:"micros"`
}

// handle wires one compute endpoint: resolve the backend's server,
// submit (blocking when wait=1), await the Future with the request's
// context, and render.
func handle(g *registry, compute func(r *http.Request, sub *lwt.Submitter, n int) (*lwt.Future[float64], error), defN, maxN int) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		backend, err := backendOf(r)
		if err != nil {
			reply(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		srv, err := g.server(backend)
		if err != nil {
			reply(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		n := qint(r, "n", defN, 1, maxN)
		t0 := time.Now()
		f, err := compute(r, srv.Submitter(), n)
		if err != nil {
			submitErr(w, err)
			return
		}
		// The deadline bounds the Wait too: a body that never observes
		// the cooperative cancel signal still must not hold the reply
		// past the budget — the caller gets 504 while the work unit
		// runs to completion in the background.
		wctx := r.Context()
		if dl := deadlineOf(r); !dl.IsZero() {
			var cancel context.CancelFunc
			wctx, cancel = context.WithDeadline(wctx, dl)
			defer cancel()
		}
		v, err := f.Wait(wctx)
		if err != nil {
			waitErr(w, err)
			return
		}
		reply(w, http.StatusOK, result{Backend: backend, N: n, Value: v, Micros: time.Since(t0).Microseconds()})
	}
}

// deadlineOf extracts a request's end-to-end completion budget: the
// X-LWT-Deadline-Ms header (what lwtgate forwards, already decremented
// by time spent upstream) or the ?deadline_ms= query parameter, in
// integer milliseconds from now. Zero time means no deadline.
func deadlineOf(r *http.Request) time.Time {
	v := r.Header.Get(cluster.DeadlineHeader)
	if v == "" {
		v = r.URL.Query().Get("deadline_ms")
	}
	if v == "" {
		return time.Time{}
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return time.Time{}
	}
	return time.Now().Add(time.Duration(ms) * time.Millisecond)
}

// submitULT routes one ULT-shaped request: ?key= pins it to a shard by
// affinity hash, ?wait=1 blocks on a full queue instead of fast-failing
// with 503, and a deadline (header or ?deadline_ms=) bounds the whole
// stay — queued past the budget sheds with ErrExpired, launched
// handlers see the cooperative cancellation signal.
func submitULT(r *http.Request, sub *lwt.Submitter, body func(lwt.Ctx) (float64, error)) (*lwt.Future[float64], error) {
	key := r.URL.Query().Get("key")
	deadline := deadlineOf(r)
	if r.URL.Query().Get("wait") == "1" {
		if key != "" {
			return lwt.DoULT(sub, r.Context(), body, lwt.Req{Key: key, Deadline: deadline})
		}
		return lwt.DoULT(sub, r.Context(), body, lwt.Req{Deadline: deadline})
	}
	if key != "" {
		return lwt.DoULT(sub, nil, body, lwt.Req{Key: key, Deadline: deadline, NonBlocking: true})
	}
	return lwt.DoULT(sub, nil, body, lwt.Req{Deadline: deadline, NonBlocking: true})
}

// fib computes fib(n) with a ULT per left branch below the cutoff.
func fib(c lwt.Ctx, n, cutoff int) uint64 {
	if n < 2 {
		return uint64(n)
	}
	if n < cutoff {
		return fib(c, n-1, cutoff) + fib(c, n-2, cutoff)
	}
	var left uint64
	h := c.ULTCreate(func(cc lwt.Ctx) { left = fib(cc, n-1, cutoff) })
	right := fib(c, n-2, cutoff)
	c.Join(h)
	return left + right
}

func main() {
	flag.Parse()
	if _, err := lwt.RouterByName(*router); err != nil {
		log.Fatalf("lwtserved: %v", err)
	}
	layout, err := resolveTopo(*topoMode)
	if err != nil {
		log.Fatalf("lwtserved: %v", err)
	}
	if layout != nil {
		sh, th := serve.TopoLayout(*layout)
		log.Printf("lwtserved: topology (%s): %s -> %d shards x %d executors per backend",
			*topoMode, layout, sh, th)
	}
	g := &registry{servers: map[string]*lwt.Server{}, omps: map[string]*ompWorker{}, topo: layout}

	mux := http.NewServeMux()

	// Task parallelism: a ULT tree on the serving runtime.
	mux.HandleFunc("/fib", handle(g, func(r *http.Request, sub *lwt.Submitter, n int) (*lwt.Future[float64], error) {
		cutoff := qint(r, "cutoff", 12, 2, 64)
		// Bound the spawn tree: the ULT count grows like fib(n-cutoff),
		// so an adversarial n=45&cutoff=2 would create ~10^8 work units
		// from one request. Cap the spawning depth at 20 levels
		// (≲ 20k ULTs); the remainder runs sequentially.
		if cutoff < n-20 {
			cutoff = n - 20
		}
		body := func(c lwt.Ctx) (float64, error) { return float64(fib(c, n, cutoff)), nil }
		return submitULT(r, sub, body)
	}, 28, 45))

	// BLAS-3: C ← A·B + C decomposed into row-range ULTs.
	mux.HandleFunc("/dgemm", handle(g, func(r *http.Request, sub *lwt.Submitter, n int) (*lwt.Future[float64], error) {
		chunks := qint(r, "chunks", *threads, 1, 64)
		body := func(c lwt.Ctx) (float64, error) {
			a := make([]float64, n*n)
			b := make([]float64, n*n)
			cm := make([]float64, n*n)
			for i := range a {
				a[i] = float64(i%7) * 0.5
				b[i] = float64(i%5) * 0.25
			}
			hs := make([]lwt.Handle, 0, chunks)
			for k := 0; k < chunks; k++ {
				lo, hi := k*n/chunks, (k+1)*n/chunks
				if lo == hi {
					continue
				}
				hs = append(hs, c.ULTCreate(func(lwt.Ctx) {
					blas.DgemmRows(n, a, b, cm, lo, hi)
				}))
			}
			for _, h := range hs {
				c.Join(h)
			}
			var sum float64
			for _, x := range cm {
				sum += x
			}
			return sum, nil
		}
		return submitULT(r, sub, body)
	}, 96, 512))

	// Simulated I/O: the handler parks on the async-I/O reactor for
	// ?ms= milliseconds. On AsyncIO backends the wait holds no executor
	// — the serving layer discounts parked handlers from its in-flight
	// gate — so a burst of these does not serialize on executor count
	// the way a blocking sleep would. Returns the measured wait in
	// milliseconds.
	mux.HandleFunc("/io", handle(g, func(r *http.Request, sub *lwt.Submitter, n int) (*lwt.Future[float64], error) {
		// The documented knob is ?ms= (README, serve-smoke); ?n= keeps
		// working as the handle()-provided fallback.
		ms := qint(r, "ms", n, 1, 10_000)
		body := func(c lwt.Ctx) (float64, error) {
			t0 := time.Now()
			if err := lwt.Sleep(c, time.Duration(ms)*time.Millisecond); err != nil {
				return 0, err // budget ran out mid-park: surface as 504
			}
			return float64(time.Since(t0).Microseconds()) / 1e3, nil
		}
		return submitULT(r, sub, body)
	}, 10, 10_000))

	// Compute overlapped with I/O: fan out ?fan= parked waits of ?ms=
	// milliseconds (the shape of a request issuing downstream calls),
	// run the fib tree while they sleep, then join the fan. Ideal
	// latency is max(compute, ms), not compute + fan*ms.
	mux.HandleFunc("/fibio", handle(g, func(r *http.Request, sub *lwt.Submitter, n int) (*lwt.Future[float64], error) {
		cutoff := qint(r, "cutoff", 12, 2, 64)
		if cutoff < n-20 {
			cutoff = n - 20
		}
		fan := qint(r, "fan", 4, 1, 64)
		ms := qint(r, "ms", 10, 0, 10_000)
		body := func(c lwt.Ctx) (float64, error) {
			hs := make([]lwt.Handle, fan)
			for i := range hs {
				hs[i] = c.ULTCreate(func(cc lwt.Ctx) {
					lwt.Sleep(cc, time.Duration(ms)*time.Millisecond)
				})
			}
			v := fib(c, n, cutoff)
			for _, h := range hs {
				c.Join(h)
			}
			return float64(v), nil
		}
		return submitULT(r, sub, body)
	}, 24, 45))

	// Loop parallelism through the omp directive layer, on its own
	// master goroutine per backend.
	mux.HandleFunc("/parfor", func(w http.ResponseWriter, r *http.Request) {
		backend, err := backendOf(r)
		if err != nil {
			reply(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		worker, err := g.omp(backend)
		if err != nil {
			reply(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		n := qint(r, "n", 1<<20, 1, 1<<24)
		t0 := time.Now()
		v := make([]float32, n)
		blas.Fill(v, 2)
		worker.run(func(rt *omp.Runtime) {
			rt.ParallelFor(n, omp.Static, 0, func(i int) { v[i] *= 1.5 })
		})
		reply(w, http.StatusOK, result{Backend: backend, N: n, Value: float64(blas.Sasum(v)), Micros: time.Since(t0).Microseconds()})
	})

	// backendMetrics is one backend's /metrics row: the cross-shard
	// aggregate plus one row per shard.
	type backendMetrics struct {
		Aggregate serve.Metrics   `json:"aggregate"`
		Shards    []serve.Metrics `json:"shards"`
	}
	// snapshotAll reads every live server once, in stable backend order.
	snapshotAll := func() []backendMetrics {
		g.mu.Lock()
		names := make([]string, 0, len(g.servers))
		for name := range g.servers {
			names = append(names, name)
		}
		sort.Strings(names)
		out := make([]backendMetrics, 0, len(names))
		for _, name := range names {
			agg, shards := g.servers[name].Snapshot()
			out = append(out, backendMetrics{Aggregate: agg, Shards: shards})
		}
		g.mu.Unlock()
		return out
	}

	// Prometheus text exposition (the scrape target); the previous JSON
	// view moved to /metrics.json.
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		views := make([]serve.View, 0, 8)
		for _, bm := range snapshotAll() {
			views = append(views, serve.View{Aggregate: bm.Aggregate, Shards: bm.Shards})
		}
		w.Header().Set("Content-Type", prom.ContentType)
		_, _ = serve.WriteProm(w, views...)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, snapshotAll())
	})

	// Flight-recorder dump on demand. The snapshot is non-destructive:
	// the rings keep recording while (and after) it is taken.
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		d := trace.Default().Snapshot("http")
		switch f := r.URL.Query().Get("format"); f {
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			_, _ = d.WriteTo(w)
		case "chrome":
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", `attachment; filename="lwt-trace-chrome.json"`)
			_ = trace.WriteChromeTrace(w, d.Events)
		case "breakdown":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			sum := trace.Summarize(d.Events)
			_, _ = io.WriteString(w, sum.Render())
		default:
			reply(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("unknown format %q (json|chrome|breakdown)", f)})
		}
	})

	mux.HandleFunc("/backends", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, lwt.Backends())
	})

	// Liveness vs readiness: /healthz answers 200 for the process's
	// whole life (a router's health checker probes it), while /readyz
	// flips to 503 the moment a shutdown signal arrives — *before* the
	// drain starts — so a cluster router stops routing new work to a
	// draining worker while its in-flight requests finish.
	var ready atomic.Bool
	ready.Store(true)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		reply(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !ready.Load() {
			w.Header().Set("Retry-After", "1")
			reply(w, http.StatusServiceUnavailable, map[string]bool{"ready": false})
			return
		}
		reply(w, http.StatusOK, map[string]bool{"ready": true})
	})

	// Listen before announcing: -addr :0 binds an ephemeral port, and
	// the "listening on <addr>" line below carries the real address in
	// a parseable form for lwtgate/CI supervisors scraping the log.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("lwtserved: %v", err)
	}
	hs := &http.Server{Handler: mux}
	// SIGUSR2: dump the flight recorder to -trace-dir without disturbing
	// service — the operator's "what just happened" trigger.
	go func() {
		usr2 := make(chan os.Signal, 1)
		signal.Notify(usr2, syscall.SIGUSR2)
		for range usr2 {
			dumpTrace("sigusr2")
		}
	}()
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		ready.Store(false)
		log.Println("lwtserved: readiness off, shutting down")
		// Keep the listener open briefly after the readiness flip:
		// Shutdown closes listeners immediately, and a router probing
		// /readyz should see the 503 (stop sending) rather than a
		// connection refusal racing the in-flight work it already sent.
		time.Sleep(*notReady)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
	}()
	log.Printf("lwtserved: listening on %s (shards=%d router=%s backends=%v)",
		ln.Addr(), *shards, *router, lwt.Backends())
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	// Graceful drain: every backend's shards run their accepted requests
	// to completion (bounded by -drain) before the runtimes finalize.
	// Any request a shard could not run inside the budget still resolves
	// its future — with ErrClosed — and is counted here.
	g.closeAll()
	g.mu.Lock()
	var completed, rejected uint64
	for _, s := range g.servers {
		m := s.Metrics()
		completed += m.Completed
		rejected += m.Rejected
	}
	g.mu.Unlock()
	log.Printf("lwtserved: drained cleanly (completed=%d, rejected-at-deadline=%d)", completed, rejected)
}
