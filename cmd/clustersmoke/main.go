// Clustersmoke drives the distributed serving tier end to end, as CI's
// cluster-smoke job and as a local acceptance check:
//
//  1. boots N lwtserved workers on ephemeral ports (parsing each
//     "listening on <addr>" line) and one lwtgate over them,
//  2. drives keyed + unkeyed fib/dgemm/parfor across every backend
//     through the gate and verifies results,
//  3. maps keyed sessions to workers (X-LWT-Worker), SIGSTOPs one
//     worker under load — a frozen process whose sockets still accept —
//     and asserts zero lost requests (the gate's attempt timeout cuts
//     stranded attempts), ejection while frozen, and re-admission with
//     restored affinity after SIGCONT; then SIGKILLs another
//     worker mid-load and asserts zero lost requests — every request
//     gets a terminal response (success or explicit error, no hangs) —
//     while keyed traffic pinned to survivors never changes worker,
//  4. verifies the gate ejected the dead worker, that only the dead
//     worker's ~1/N key share remapped (bounded reshuffle), and that
//     the remapped keys sit stably on survivors,
//  5. SIGTERMs the gate and the surviving workers and asserts each
//     drains cleanly with exit 0.
//
// Worker and gate logs land in -logdir for archival. Exit status 0
// means the whole scenario passed.
//
//	go build -o lwtgate ./cmd/lwtgate && go build -o lwtserved ./cmd/lwtserved
//	go run ./cmd/clustersmoke -gate ./lwtgate -worker ./lwtserved
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/chaos"
)

var (
	gateBin   = flag.String("gate", "", "path to the lwtgate binary (required)")
	workerBin = flag.String("worker", "", "path to the lwtserved binary (required)")
	nWorkers  = flag.Int("n", 3, "worker process count")
	logDir    = flag.String("logdir", ".", "directory for gate/worker logs")
	loadFor   = flag.Duration("load", 4*time.Second, "duration of the kill-mid-load phase")
	loaders   = flag.Int("loaders", 6, "concurrent load goroutines")
	keyCount  = flag.Int("keys", 120, "keyed sessions tracked for affinity/reshuffle checks")
)

// client enforces the no-hangs terminal-response guarantee: any request
// that cannot produce a response inside the timeout counts as lost.
var client = &http.Client{Timeout: 90 * time.Second}

var listenRe = regexp.MustCompile(`listening on (\S+)`)

// proc is one supervised child process with a scanned log.
type proc struct {
	name string
	cmd  *exec.Cmd
	addr chan string // actual bound address, sent once

	mu       sync.Mutex
	exited   bool
	exitCode int
	waitDone chan struct{}
}

// startProc launches bin, tees its output to logdir/<name>.log, and
// watches for the parseable "listening on <addr>" line.
func startProc(name, bin string, args ...string) (*proc, error) {
	logPath := filepath.Join(*logDir, name+".log")
	logFile, err := os.Create(logPath)
	if err != nil {
		return nil, err
	}
	p := &proc{name: name, addr: make(chan string, 1), waitDone: make(chan struct{})}
	p.cmd = exec.Command(bin, args...)
	pr, pw := io.Pipe()
	p.cmd.Stdout = pw
	p.cmd.Stderr = pw
	go func() {
		defer logFile.Close()
		sc := bufio.NewScanner(pr)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		announced := false
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintln(logFile, line)
			if !announced {
				if m := listenRe.FindStringSubmatch(line); m != nil {
					announced = true
					p.addr <- m[1]
				}
			}
		}
	}()
	if err := p.cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", name, err)
	}
	go func() {
		err := p.cmd.Wait()
		pw.Close()
		p.mu.Lock()
		p.exited = true
		p.exitCode = 0
		if err != nil {
			p.exitCode = -1
			if ee, ok := err.(*exec.ExitError); ok {
				p.exitCode = ee.ExitCode()
			}
		}
		p.mu.Unlock()
		close(p.waitDone)
	}()
	return p, nil
}

// waitAddr blocks for the announced listen address.
func (p *proc) waitAddr(d time.Duration) (string, error) {
	select {
	case a := <-p.addr:
		return a, nil
	case <-p.waitDone:
		return "", fmt.Errorf("%s exited before announcing its address (see %s.log)", p.name, p.name)
	case <-time.After(d):
		return "", fmt.Errorf("%s did not announce its address within %v", p.name, d)
	}
}

// signalAndWait sends sig and waits for exit, returning the exit code.
func (p *proc) signalAndWait(sig syscall.Signal, d time.Duration) (int, error) {
	_ = p.cmd.Process.Signal(sig)
	select {
	case <-p.waitDone:
	case <-time.After(d):
		_ = p.cmd.Process.Kill()
		return -1, fmt.Errorf("%s did not exit within %v of %v", p.name, d, sig)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.exitCode, nil
}

func (p *proc) kill() {
	p.mu.Lock()
	exited := p.exited
	p.mu.Unlock()
	if !exited && p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
	}
}

// failures accumulates check failures; the scenario keeps going where
// it safely can so one run reports as much as possible.
var failures atomic.Int32

func failf(format string, args ...any) {
	failures.Add(1)
	log.Printf("FAIL: "+format, args...)
}

func fatalf(procs []*proc, format string, args ...any) {
	log.Printf("FATAL: "+format, args...)
	for _, p := range procs {
		if p != nil {
			p.kill()
		}
	}
	os.Exit(1)
}

// getJSON issues a GET and decodes the body into out (when non-nil).
// It returns the status and serving worker id; a transport error or
// timeout returns lost=true — the smoke's definition of a lost request.
func getJSON(url string, out any) (status int, worker string, lost bool, err error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, "", true, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if out != nil && resp.StatusCode == http.StatusOK {
		if jerr := json.Unmarshal(body, out); jerr != nil {
			return resp.StatusCode, "", false, fmt.Errorf("decode %s: %w (body %q)", url, jerr, body)
		}
	}
	return resp.StatusCode, resp.Header.Get("X-Lwt-Worker"), false, nil
}

type computeResult struct {
	Backend string  `json:"backend"`
	Value   float64 `json:"value"`
}

type workerRow struct {
	ID    string
	State string
}

func main() {
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	if *gateBin == "" || *workerBin == "" {
		log.Fatal("clustersmoke: -gate and -worker are required")
	}
	if err := os.MkdirAll(*logDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// ---- Phase 1: boot N workers + 1 gate on ephemeral ports.
	var procs []*proc
	var workerProcs []*proc
	var workerAddrs []string
	for i := 0; i < *nWorkers; i++ {
		p, err := startProc(fmt.Sprintf("worker-%d", i), *workerBin,
			"-addr", "127.0.0.1:0", "-shards", "2", "-threads", "1",
			"-queue", "256", "-batch", "16", "-drain", "20s")
		if err != nil {
			fatalf(procs, "%v", err)
		}
		procs = append(procs, p)
		workerProcs = append(workerProcs, p)
		a, err := p.waitAddr(30 * time.Second)
		if err != nil {
			fatalf(procs, "%v", err)
		}
		workerAddrs = append(workerAddrs, a)
		log.Printf("worker-%d listening on %s", i, a)
	}
	gate, err := startProc("gate", *gateBin,
		"-addr", "127.0.0.1:0", "-workers", strings.Join(workerAddrs, ","),
		"-check-interval", "200ms", "-check-timeout", "1s",
		"-fail-after", "2", "-ready-after", "2", "-retries", "2", "-drain", "20s",
		"-attempt-timeout", "2s")
	if err != nil {
		fatalf(procs, "%v", err)
	}
	procs = append(procs, gate)
	gateAddr, err := gate.waitAddr(30 * time.Second)
	if err != nil {
		fatalf(procs, "%v", err)
	}
	gateURL := "http://" + gateAddr
	log.Printf("gate listening on %s over %v", gateAddr, workerAddrs)

	ok := false
	for i := 0; i < 100; i++ {
		if status, _, _, _ := getJSON(gateURL+"/readyz", nil); status == http.StatusOK {
			ok = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !ok {
		fatalf(procs, "gate never became ready")
	}

	// ---- Phase 2: keyed + unkeyed fib/dgemm/parfor on every backend,
	// proxied through the gate.
	var backends []string
	if status, _, _, err := getJSON(gateURL+"/backends", &backends); err != nil || status != http.StatusOK || len(backends) == 0 {
		fatalf(procs, "listing backends through gate: status %d err %v", status, err)
	}
	log.Printf("driving backends through gate: %v", backends)
	for _, b := range backends {
		var r computeResult
		if status, _, _, err := getJSON(gateURL+"/fib?n=22&wait=1&backend="+b, &r); status != http.StatusOK || err != nil || r.Value != 17711 {
			failf("backend %s: fib(22) status %d value %v err %v", b, status, r.Value, err)
		}
		if status, _, _, err := getJSON(gateURL+"/dgemm?n=48&wait=1&backend="+b, &r); status != http.StatusOK || err != nil || r.Value <= 0 {
			failf("backend %s: dgemm status %d value %v err %v", b, status, r.Value, err)
		}
		if status, _, _, err := getJSON(gateURL+"/parfor?n=65536&backend="+b, &r); status != http.StatusOK || err != nil || r.Value <= 0 {
			failf("backend %s: parfor status %d value %v err %v", b, status, r.Value, err)
		}
		if status, worker, _, err := getJSON(gateURL+"/fib?n=20&wait=1&backend="+b+"&key=smoke-"+b, &r); status != http.StatusOK || err != nil || r.Value != 6765 || worker == "" {
			failf("backend %s: keyed fib(20) status %d value %v worker %q err %v", b, status, r.Value, worker, err)
		}
	}

	// ---- Phase 3: map keyed sessions to workers and pin the map.
	keyOf := func(i int) string { return fmt.Sprintf("sess-%d", i) }
	owner := make(map[string]string, *keyCount)
	for i := 0; i < *keyCount; i++ {
		key := keyOf(i)
		status, worker, _, err := getJSON(gateURL+"/fib?n=12&wait=1&key="+key, nil)
		if status != http.StatusOK || worker == "" || err != nil {
			fatalf(procs, "affinity map: key %s status %d worker %q err %v", key, status, worker, err)
		}
		owner[key] = worker
	}
	for i := 0; i < *keyCount; i++ {
		key := keyOf(i)
		if _, worker, _, _ := getJSON(gateURL+"/fib?n=12&wait=1&key="+key, nil); worker != owner[key] {
			failf("affinity unstable before kill: key %s moved %s -> %s", key, owner[key], worker)
		}
	}
	perWorker := map[string]int{}
	for _, w := range owner {
		perWorker[w]++
	}
	log.Printf("keyed sessions per worker: %v", perWorker)

	// ---- Phase 3b: SIGSTOP worker-0 under load. A frozen process is
	// the failure health checks alone cannot tell from slowness — its
	// sockets still accept, nothing in userspace answers. The gate's
	// attempt timeout must cut every stranded attempt (zero lost
	// requests), the timed-out probes must eject it, and SIGCONT must
	// bring it back with its key affinity intact.
	frozen := workerProcs[0]
	frozenAddr := workerAddrs[0]
	log.Printf("SIGSTOPping worker-0 (%s) under load", frozenAddr)
	if err := chaos.Pause(frozen.cmd.Process.Pid); err != nil {
		fatalf(procs, "SIGSTOP worker-0: %v", err)
	}
	{
		var fLost, fOK, fErr atomic.Int64
		var fwg sync.WaitGroup
		fEnd := time.Now().Add(4 * time.Second)
		for g := 0; g < *loaders; g++ {
			fwg.Add(1)
			go func(g int) {
				defer fwg.Done()
				for i := 0; time.Now().Before(fEnd); i++ {
					path := "/fib?n=12&wait=1"
					if i%2 == 0 {
						path += "&key=" + keyOf((g*(*keyCount)/8+i)%*keyCount)
					}
					status, _, isLost, _ := getJSON(gateURL+path, nil)
					switch {
					case isLost:
						fLost.Add(1)
					case status == http.StatusOK:
						fOK.Add(1)
					default:
						fErr.Add(1)
					}
				}
			}(g)
		}
		fwg.Wait()
		log.Printf("frozen-worker load: ok=%d explicit-errors=%d lost=%d", fOK.Load(), fErr.Load(), fLost.Load())
		if fLost.Load() != 0 {
			failf("%d requests lost while worker-0 was frozen", fLost.Load())
		}
		if fOK.Load() == 0 {
			failf("no successful responses while worker-0 was frozen")
		}
	}
	frozenEjected := false
	for i := 0; i < 50 && !frozenEjected; i++ {
		var rows []workerRow
		if status, _, _, err := getJSON(gateURL+"/cluster/workers", &rows); status == http.StatusOK && err == nil {
			for _, r := range rows {
				if r.ID == frozenAddr && r.State == "ejected" {
					frozenEjected = true
				}
			}
		}
		if !frozenEjected {
			time.Sleep(100 * time.Millisecond)
		}
	}
	if !frozenEjected {
		failf("gate never ejected frozen worker %s", frozenAddr)
	}
	if err := chaos.Resume(frozen.cmd.Process.Pid); err != nil {
		fatalf(procs, "SIGCONT worker-0: %v", err)
	}
	// Re-admission plus breaker recovery: a key owned by the thawed
	// worker routes back to it once probes pass and its breaker's
	// half-open probe succeeds.
	frozenKey := ""
	for key, w := range owner {
		if w == frozenAddr {
			frozenKey = key
			break
		}
	}
	if frozenKey == "" {
		failf("no keyed session mapped to worker-0; cannot verify thaw affinity")
	} else {
		restored := false
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if _, worker, _, _ := getJSON(gateURL+"/fib?n=12&wait=1&key="+frozenKey, nil); worker == frozenAddr {
				restored = true
				break
			}
			time.Sleep(200 * time.Millisecond)
		}
		if !restored {
			failf("thawed worker %s never got key %s back", frozenAddr, frozenKey)
		} else {
			log.Printf("worker-0 thawed: re-admitted, affinity restored")
		}
	}

	// ---- Phase 4: concurrent keyed+unkeyed load across backends;
	// SIGKILL one worker mid-stream. Every request must get a terminal
	// response, and keys pinned to survivors must never change worker.
	victim := workerProcs[1]
	victimAddr := workerAddrs[1]
	var killed atomic.Bool
	var sent, okResp, explicitErr, lost, affinityViolations atomic.Int64

	loadBackends := backends
	var wg sync.WaitGroup
	end := time.Now().Add(*loadFor)
	for g := 0; g < *loaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; time.Now().Before(end); i++ {
				b := loadBackends[(g+i)%len(loadBackends)]
				var path, wantWorker string
				switch i % 4 {
				case 0:
					key := keyOf((g*(*keyCount)/8 + i) % *keyCount)
					path = "/fib?n=16&wait=1&backend=" + b + "&key=" + key
					if w := owner[key]; w != victimAddr {
						wantWorker = w
					}
				case 1:
					path = "/fib?n=16&wait=1&backend=" + b
				case 2:
					path = "/dgemm?n=32&wait=1&backend=" + b
				default:
					path = "/parfor?n=8192&backend=" + b
				}
				sent.Add(1)
				status, worker, isLost, _ := getJSON(gateURL+path, nil)
				switch {
				case isLost:
					lost.Add(1)
				case status == http.StatusOK:
					okResp.Add(1)
				default:
					explicitErr.Add(1)
				}
				// The affinity contract under failure: a key pinned to a
				// surviving worker never moves, even while the victim is
				// dying. (Keys pinned to the victim may fail over.)
				if !isLost && status == http.StatusOK && wantWorker != "" && worker != wantWorker {
					affinityViolations.Add(1)
					failf("load: key pinned to survivor %s served by %s", wantWorker, worker)
				}
			}
		}(g)
	}
	go func() {
		time.Sleep(*loadFor / 4)
		killed.Store(true)
		log.Printf("SIGKILLing worker-1 (%s) mid-load", victimAddr)
		_ = victim.cmd.Process.Kill()
	}()
	wg.Wait()
	if !killed.Load() {
		failf("load phase ended before the kill fired — raise -load")
	}
	log.Printf("load done: sent=%d ok=%d explicit-errors=%d lost=%d",
		sent.Load(), okResp.Load(), explicitErr.Load(), lost.Load())
	if lost.Load() != 0 {
		failf("%d requests lost (no terminal response)", lost.Load())
	}
	if okResp.Load() == 0 {
		failf("no successful responses under load")
	}
	if e, s := explicitErr.Load(), sent.Load(); e*20 > s {
		failf("explicit errors %d exceed 5%% of %d sent", e, s)
	}

	// ---- Phase 5: the gate must have ejected the victim; keys pinned
	// to survivors stay put, the victim's keys remap stably onto
	// survivors, and nothing else reshuffles.
	ejected := false
	for i := 0; i < 50; i++ {
		var rows []workerRow
		if status, _, _, err := getJSON(gateURL+"/cluster/workers", &rows); status == http.StatusOK && err == nil {
			for _, r := range rows {
				if r.ID == victimAddr && r.State == "ejected" {
					ejected = true
				}
			}
		}
		if ejected {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !ejected {
		failf("gate never ejected killed worker %s", victimAddr)
	}
	moved := 0
	newOwner := make(map[string]string, *keyCount)
	for i := 0; i < *keyCount; i++ {
		key := keyOf(i)
		status, worker, _, err := getJSON(gateURL+"/fib?n=12&wait=1&key="+key, nil)
		if status != http.StatusOK || err != nil {
			failf("post-kill keyed request %s: status %d err %v", key, status, err)
			continue
		}
		newOwner[key] = worker
		switch {
		case worker == victimAddr:
			failf("key %s still routed to killed worker", key)
		case owner[key] == victimAddr:
			moved++
		case worker != owner[key]:
			failf("bounded reshuffle violated: key %s on survivor %s moved to %s", key, owner[key], worker)
		}
	}
	// The victim's share is ~K/N (consistent hashing's bound); well
	// under half the keys for N=3 even with ring imbalance.
	if moved != perWorker[victimAddr] {
		failf("moved %d keys, expected exactly the victim's %d", moved, perWorker[victimAddr])
	}
	if 2*moved >= *keyCount {
		failf("reshuffle unbounded: %d/%d keys moved", moved, *keyCount)
	}
	log.Printf("bounded reshuffle: %d/%d keys remapped (victim owned %d)", moved, *keyCount, perWorker[victimAddr])
	for i := 0; i < *keyCount; i++ {
		key := keyOf(i)
		if _, worker, _, _ := getJSON(gateURL+"/fib?n=12&wait=1&key="+key, nil); worker != newOwner[key] {
			failf("post-kill affinity unstable: key %s moved %s -> %s", key, newOwner[key], worker)
		}
	}

	// ---- Phase 6: graceful drain — gate first, then surviving
	// workers; each must exit 0 after a clean flush.
	if code, err := gate.signalAndWait(syscall.SIGTERM, 30*time.Second); err != nil || code != 0 {
		failf("gate drain: exit=%d err=%v", code, err)
	} else if !logContains("gate", "drained cleanly") {
		failf("gate log missing 'drained cleanly'")
	}
	for i, p := range workerProcs {
		if p == victim {
			continue
		}
		if code, err := p.signalAndWait(syscall.SIGTERM, 30*time.Second); err != nil || code != 0 {
			failf("worker-%d drain: exit=%d err=%v", i, code, err)
		} else if !logContains(fmt.Sprintf("worker-%d", i), "drained cleanly") {
			failf("worker-%d log missing 'drained cleanly'", i)
		}
	}

	if n := failures.Load(); n > 0 {
		log.Fatalf("cluster smoke FAILED: %d check(s) failed", n)
	}
	log.Printf("cluster smoke PASSED: %d workers, %d requests under load, 1 freeze + 1 kill, 0 lost, %d/%d keys reshuffled, clean drains",
		*nWorkers, sent.Load(), moved, *keyCount)
}

// logContains greps one child's archived log.
func logContains(name, substr string) bool {
	b, err := os.ReadFile(filepath.Join(*logDir, name+".log"))
	return err == nil && strings.Contains(string(b), substr)
}
