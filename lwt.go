// Package lwt is the public face of this repository: a unified
// lightweight-thread (LWT) API over faithful Go reproductions of the five
// threading runtimes studied in "A Review of Lightweight Thread Approaches
// for High Performance Computing" (Castelló et al., CLUSTER 2016) —
// Argobots, Qthreads, MassiveThreads, Converse Threads and the Go
// scheduler model — plus the GNU and Intel OpenMP runtime emulations the
// paper benchmarks them against.
//
// The API is the GLT-shaped second revision of the reduced function set
// the paper distills in Table II and Listing 4: initialize a backend from
// a Config, create ULTs and tasklets (optionally pinned to an executor,
// individually or in bulk), yield, join, synchronize, finalize. Every
// backend implements it; the paper's central claim — that this small set
// suffices for the common parallel patterns — is exercised by this
// module's examples, tests and benchmark harness.
//
// Create/join is the measured hot path (the paper's Figures 2–3), and it
// runs spawn-free and allocation-free in steady state: work-unit
// descriptors — backing goroutine included — are pooled, Join both
// synchronizes and releases the descriptor, and a joining work unit
// parks in the target's waiter slot to be resumed directly by the
// finishing unit instead of polling. The contract is the C libraries'
// own: a Handle must not be used after Join returns, except Done, which
// answers from a generation-counted completion word and stays correct
// forever. Runtime.ULTCreateBulk and Runtime.TaskletCreateBulk submit
// whole batches with one pool insertion and one executor wake, which is
// what the loop- and task-pattern figures (4–8) ride.
//
// Quickstart (Listing 4's shape, v2 surface):
//
//	r := lwt.MustOpen(lwt.Config{Backend: "argobots", Executors: 4})
//	defer r.Finalize()
//	hs := make([]lwt.Handle, 100)
//	for i := range hs {
//		hs[i] = r.ULTCreateTo(i, func(c lwt.Ctx) {
//			fmt.Println("hello from executor", c.ExecutorID())
//		})
//	}
//	r.Yield()
//	r.JoinAll(hs)
//
// Migration from the v1 positional surface:
//
//	v1 (deprecated)               v2
//	----------------------------  --------------------------------------------------
//	lwt.New(name, n)              lwt.Open(lwt.Config{Backend: name, Executors: n})
//	lwt.MustNew(name, n)          lwt.MustOpen(lwt.Config{...})
//	(not expressible)             Config.Scheduler: "fifo" | "lifo" | "priority" | "random"
//	(not expressible)             r.ULTCreateTo(i, fn), c.ULTCreateTo(i, fn)
//	(not expressible)             r.NumExecutors(), c.ExecutorID()
//	(backend-private)             r.NewMutex(), r.NewBarrier(n), r.NewCond(m)
//	(backend-private)             c.YieldTo(h)
//
// Capability negotiation: every Config request is checked against the
// backend's Capabilities at Open. What the backend cannot honor degrades
// the way the paper's own microbenchmarks degrade: a scheduler request
// falls back to the default policy — recorded and queryable via
// Runtime.Degradations, or an error under Config.Strict. The per-call
// operations degrade statically per the capability flags: ULTCreateTo
// falls back to local creation where Caps().Placement is false, and
// YieldTo falls back to Yield where Caps().YieldTo is false.
//
// The synchronization objects (Mutex, Barrier, Cond) are scheduler-aware:
// waiting yields the calling work unit back to the backend's scheduler
// instead of blocking the executor thread, so a lock held across a Yield
// cannot deadlock even a single-executor runtime. On Qthreads the mutex
// word lives in the runtime's full/empty-bit table (Capabilities.
// SyncMechanism == "feb"), exactly like qthread_lock.
//
// Backends are selected by name; see Backends for the registry. Variants
// the paper evaluates separately (MassiveThreads work-first vs help-first,
// Argobots private vs shared pools, Qthreads shepherd layouts) register
// under their own names.
//
// On top of the unified API sits the serving layer (NewServer): a
// sharded task-submission engine that lets arbitrary goroutines inject
// work into any backend. ServeOptions.Shards independent backend
// runtimes sit behind one Server, each with its own bounded queue and
// pump goroutine; a pluggable Router (power-of-two-choices by default,
// see RouterByName) spreads unkeyed submissions, Req.Key pins a
// session's requests to one shard by key hash, admission control is
// two-level (a full shard re-routes once before ErrSaturated
// surfaces), and Close drains gracefully — every accepted Future
// resolves. The pool is adaptive: idle shards steal unkeyed backlog
// from loaded ones (ServeOptions.Steal — keyed work never moves), the
// routing set grows and shrinks under ServeOptions.Scale, and
// ServeOptions.Topo lays shards out over the machine topology.
// cmd/lwtserved serves HTTP compute traffic through it on every
// backend.
//
// All submissions go through two generic entry points, Do (tasklet
// bodies) and DoULT (stackful bodies), with the per-request options —
// affinity key, deadline, non-blocking admission — in a Req struct:
//
//	srv := lwt.MustNewServer(lwt.ServeOptions{Backend: "argobots", Shards: 4})
//	defer srv.Close()
//	f, err := lwt.Do(srv.Submitter(), ctx, func() (int, error) {
//		return compute(), nil
//	}, lwt.Req{})
//	v, err := f.Wait(ctx)
//	g, err := lwt.Do(srv.Submitter(), ctx, handle, lwt.Req{Key: sessionID})
//
// The sixteen Submit*/TrySubmit* functions of earlier revisions remain
// as deprecated wrappers; each is a one-line delegation to Do or DoULT.
package lwt

import (
	"context"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// Runtime is an initialized unified-API instance over one backend.
type Runtime = core.Runtime

// Config parameterizes Open: backend name, executor-group size,
// scheduler policy, and strictness of capability negotiation.
type Config = core.Config

// Degradation records one Config request the backend could not honor and
// what was granted instead; see Runtime.Degradations.
type Degradation = core.Degradation

// Handle is a joinable reference to a created work unit.
type Handle = core.Handle

// Ctx is the cooperative context passed to ULT bodies.
type Ctx = core.Ctx

// Capabilities describes a backend in the vocabulary of the paper's
// Table I, extended with the v2 capability columns (placement, scheduler
// policies, synchronization mechanism).
type Capabilities = core.Capabilities

// Backend is the adapter interface a threading runtime implements to
// participate in the unified API.
type Backend = core.Backend

// Waiter is anything a synchronization object can wait on behalf of: a
// *Runtime (main thread) or a Ctx (running work unit).
type Waiter = core.Waiter

// Mutex is the scheduler-aware lock of the unified API; see
// Runtime.NewMutex.
type Mutex = core.Mutex

// Barrier is the scheduler-aware rendezvous of the unified API; see
// Runtime.NewBarrier.
type Barrier = core.Barrier

// Cond is the scheduler-aware condition variable of the unified API; see
// Runtime.NewCond.
type Cond = core.Cond

// Errors surfaced from the unified API.
var (
	// ErrUnknownBackend is returned by Open for unregistered backend
	// names.
	ErrUnknownBackend = core.ErrUnknownBackend
	// ErrUnknownScheduler is returned by Open when Config.Scheduler
	// names no policy at all.
	ErrUnknownScheduler = core.ErrUnknownScheduler
	// ErrUnsupported is returned by Open under Config.Strict when the
	// backend cannot honor a request that would otherwise degrade.
	ErrUnsupported = core.ErrUnsupported
)

// Open initializes a backend from the configuration, negotiating every
// requested capability against the backend's Capabilities (unsupported
// requests degrade explicitly; see Runtime.Degradations).
func Open(cfg Config) (*Runtime, error) { return core.Open(cfg) }

// MustOpen is Open for known-good configurations; it panics on error.
func MustOpen(cfg Config) *Runtime { return core.MustOpen(cfg) }

// New initializes the named backend with nthreads executors.
//
// Deprecated: New is the v1 positional constructor kept for migration;
// use Open, which adds scheduler selection, placement and capability
// negotiation.
func New(backend string, nthreads int) (*Runtime, error) {
	return core.New(backend, nthreads)
}

// MustNew is New for known-good arguments; it panics on error.
//
// Deprecated: use MustOpen.
func MustNew(backend string, nthreads int) *Runtime {
	return core.MustNew(backend, nthreads)
}

// Backends lists the registered backend names, sorted.
func Backends() []string { return core.Backends() }

// Register installs a custom backend factory; it panics on duplicate
// names.
func Register(name string, f func() Backend) {
	core.Register(name, func() core.Backend { return f() })
}

// --- Async I/O ---
//
// The waits below free the calling work unit's executor instead of
// blocking it: on a backend whose Capabilities report AsyncIO, the unit
// parks on a process-wide reactor and is resumed into its home pool
// when the wait completes. Where parking is unavailable the wait
// degrades explicitly — yield-polling inside a work unit without a
// parkable substrate, plain blocking when c is nil (no unit to park).

// ErrCanceled is the early-wake sentinel a cancelable wait returns when
// the request's cancellation signal fires before the wait's own
// completion.
var ErrCanceled = core.ErrCanceled

// Sleep blocks the calling work unit for at least d without occupying
// its executor. On a serving-layer context carrying a cancellation
// signal the wait ends early with ErrCanceled; otherwise Sleep returns
// nil.
func Sleep(c Ctx, d time.Duration) error { return core.Sleep(c, d) }

// Deadline blocks the calling work unit until ctx is cancelled or its
// deadline passes, returning ctx.Err().
func Deadline(c Ctx, ctx context.Context) error { return core.Deadline(c, ctx) }

// AwaitIO blocks the calling work unit until done is closed (a future's
// completion channel, a context's Done). On a serving-layer context
// carrying a cancellation signal the wait ends early with ErrCanceled;
// otherwise AwaitIO returns nil.
func AwaitIO(c Ctx, done <-chan struct{}) error { return core.AwaitIO(c, done) }

// Canceled returns the cooperative cancellation signal attached to c —
// closed when the request's deadline passed or its submission context
// was cancelled — or nil when c carries none, which blocks forever in a
// select exactly like context.Context.Done.
func Canceled(c Ctx) <-chan struct{} { return core.Canceled(c) }

// ReadIO reads from r into buf without occupying the calling unit's
// executor while the data is in flight.
func ReadIO(c Ctx, r io.Reader, buf []byte) (int, error) { return core.ReadIO(c, r, buf) }

// WriteIO writes all of buf to w without occupying the calling unit's
// executor while the bytes drain.
func WriteIO(c Ctx, w io.Writer, buf []byte) (int, error) { return core.WriteIO(c, w, buf) }

// --- Serving layer ---

// Server is a request-serving engine over a pool of backend runtime
// shards: each shard's pump goroutine owns its runtime's main thread
// and turns externally submitted requests into work units.
type Server = serve.Server

// ServeOptions configures a Server (backend, executors per shard,
// scheduler policy, shard count, router, queue depth, in-flight cap,
// batch size, drain timeout, tracer, work stealing, autoscaling,
// topology-aware layout).
type ServeOptions = serve.Options

// AutoScale configures the shard autoscaler (ServeOptions.Scale); the
// zero value leaves it off.
type AutoScale = serve.AutoScale

// Router picks the shard for each unkeyed submission; see RouterByName
// for the built-in policies.
type Router = serve.Router

// Submitter is the thread-safe, multi-producer injection front-end of a
// Server.
type Submitter = serve.Submitter

// Future is the result handle of a submission; see serve.Future.
type Future[T any] = serve.Future[T]

// ServerMetrics is a snapshot of a Server's counters and latency window.
type ServerMetrics = serve.Metrics

// PanicError is the error a Future resolves to when a request body
// panicked.
type PanicError = serve.PanicError

// ErrSaturated is the admission-control fast-reject for a full
// submission queue.
var ErrSaturated = serve.ErrSaturated

// ErrServerClosed is returned for submissions to a closed Server.
var ErrServerClosed = serve.ErrClosed

// ErrExpired resolves a Future whose request's deadline passed while it
// waited in the queue — the request was shed before launch.
var ErrExpired = serve.ErrExpired

// NewServer starts a serving engine over the named backend.
func NewServer(opts ServeOptions) (*Server, error) { return serve.New(opts) }

// MustNewServer is NewServer for known-good options; it panics on error.
func MustNewServer(opts ServeOptions) *Server { return serve.MustNew(opts) }

// Req carries the per-submission options of one Do or DoULT call:
// affinity key, end-to-end deadline, non-blocking admission. The zero
// value is a plain submission — unkeyed, no deadline, blocking.
type Req = serve.Req

// Do queues fn as a tasklet-shaped request with the options in req —
// the single submission entry point the legacy Submit*/TrySubmit*
// permutations collapse into. With the zero Req, Do blocks on a full
// queue until space frees, ctx is cancelled, or the server closes; a
// deadline on ctx is adopted as the request's completion budget.
// Req.Key pins the request to its key's shard (FNV-1a hash), keeping
// that shard's backend-local state warm for the session; Req.Deadline
// sets an explicit budget — a request still queued when it passes is
// shed before launch (Future resolves ErrExpired), and a launched
// handler sees it through the cooperative cancellation signal
// (Canceled, cancelable Sleep/AwaitIO); Req.NonBlocking turns a full
// queue into an immediate ErrSaturated instead of parking.
func Do[T any](sub *Submitter, ctx context.Context, fn func() (T, error), req Req) (*Future[T], error) {
	return serve.Do(sub, ctx, fn, req)
}

// DoULT is Do for stackful request bodies: fn receives the cooperative
// context, so it can spawn and join child work units (nested
// parallelism on the serving runtime) and issue cancelable aio waits.
func DoULT[T any](sub *Submitter, ctx context.Context, fn func(Ctx) (T, error), req Req) (*Future[T], error) {
	return serve.DoULT(sub, ctx, fn, req)
}

// Submit queues fn as a tasklet-shaped request, blocking on a full
// queue until space frees, ctx is cancelled, or the server closes.
//
// Deprecated: use Do with a zero Req.
func Submit[T any](sub *Submitter, ctx context.Context, fn func() (T, error)) (*Future[T], error) {
	return Do(sub, ctx, fn, Req{})
}

// TrySubmit is Submit without blocking: a full queue returns
// ErrSaturated immediately.
//
// Deprecated: use Do with Req{NonBlocking: true}.
func TrySubmit[T any](sub *Submitter, fn func() (T, error)) (*Future[T], error) {
	return Do(sub, nil, fn, Req{NonBlocking: true})
}

// SubmitULT queues fn as a stackful ULT whose body receives the
// cooperative context, for requests that spawn and join children.
//
// Deprecated: use DoULT with a zero Req.
func SubmitULT[T any](sub *Submitter, ctx context.Context, fn func(Ctx) (T, error)) (*Future[T], error) {
	return DoULT(sub, ctx, fn, Req{})
}

// TrySubmitULT is SubmitULT with ErrSaturated fast-reject.
//
// Deprecated: use DoULT with Req{NonBlocking: true}.
func TrySubmitULT[T any](sub *Submitter, fn func(Ctx) (T, error)) (*Future[T], error) {
	return DoULT(sub, nil, fn, Req{NonBlocking: true})
}

// SubmitKeyed is Submit with shard affinity: every submission carrying
// the same key runs on the same backend runtime shard.
//
// Deprecated: use Do with Req{Key: key}.
func SubmitKeyed[T any](sub *Submitter, ctx context.Context, key string, fn func() (T, error)) (*Future[T], error) {
	return Do(sub, ctx, fn, Req{Key: key})
}

// TrySubmitKeyed is SubmitKeyed without blocking: a full pinned shard
// returns ErrSaturated directly — affinity is never traded for an
// emptier queue.
//
// Deprecated: use Do with Req{Key: key, NonBlocking: true}.
func TrySubmitKeyed[T any](sub *Submitter, key string, fn func() (T, error)) (*Future[T], error) {
	return Do(sub, nil, fn, Req{Key: key, NonBlocking: true})
}

// SubmitULTKeyed is SubmitKeyed for stackful request bodies that spawn
// and join children on the pinned shard's runtime.
//
// Deprecated: use DoULT with Req{Key: key}.
func SubmitULTKeyed[T any](sub *Submitter, ctx context.Context, key string, fn func(Ctx) (T, error)) (*Future[T], error) {
	return DoULT(sub, ctx, fn, Req{Key: key})
}

// TrySubmitULTKeyed is SubmitULTKeyed with ErrSaturated fast-reject on
// the pinned shard.
//
// Deprecated: use DoULT with Req{Key: key, NonBlocking: true}.
func TrySubmitULTKeyed[T any](sub *Submitter, key string, fn func(Ctx) (T, error)) (*Future[T], error) {
	return DoULT(sub, nil, fn, Req{Key: key, NonBlocking: true})
}

// SubmitDeadline is Submit with an end-to-end deadline.
//
// Deprecated: use Do with Req{Deadline: deadline}.
func SubmitDeadline[T any](sub *Submitter, ctx context.Context, deadline time.Time, fn func() (T, error)) (*Future[T], error) {
	return Do(sub, ctx, fn, Req{Deadline: deadline})
}

// SubmitULTDeadline is SubmitDeadline for stackful request bodies.
//
// Deprecated: use DoULT with Req{Deadline: deadline}.
func SubmitULTDeadline[T any](sub *Submitter, ctx context.Context, deadline time.Time, fn func(Ctx) (T, error)) (*Future[T], error) {
	return DoULT(sub, ctx, fn, Req{Deadline: deadline})
}

// TrySubmitDeadline is SubmitDeadline with ErrSaturated fast-reject.
//
// Deprecated: use Do with Req{Deadline: deadline, NonBlocking: true}.
func TrySubmitDeadline[T any](sub *Submitter, deadline time.Time, fn func() (T, error)) (*Future[T], error) {
	return Do(sub, nil, fn, Req{Deadline: deadline, NonBlocking: true})
}

// TrySubmitULTDeadline is SubmitULTDeadline with ErrSaturated
// fast-reject.
//
// Deprecated: use DoULT with Req{Deadline: deadline, NonBlocking: true}.
func TrySubmitULTDeadline[T any](sub *Submitter, deadline time.Time, fn func(Ctx) (T, error)) (*Future[T], error) {
	return DoULT(sub, nil, fn, Req{Deadline: deadline, NonBlocking: true})
}

// TrySubmitKeyedDeadline is TrySubmitKeyed with an end-to-end deadline.
//
// Deprecated: use Do with Req{Key: key, Deadline: deadline, NonBlocking: true}.
func TrySubmitKeyedDeadline[T any](sub *Submitter, key string, deadline time.Time, fn func() (T, error)) (*Future[T], error) {
	return Do(sub, nil, fn, Req{Key: key, Deadline: deadline, NonBlocking: true})
}

// SubmitKeyedDeadline is SubmitKeyed with an end-to-end deadline.
//
// Deprecated: use Do with Req{Key: key, Deadline: deadline}.
func SubmitKeyedDeadline[T any](sub *Submitter, ctx context.Context, key string, deadline time.Time, fn func() (T, error)) (*Future[T], error) {
	return Do(sub, ctx, fn, Req{Key: key, Deadline: deadline})
}

// SubmitULTKeyedDeadline is SubmitULTKeyed with an end-to-end deadline.
//
// Deprecated: use DoULT with Req{Key: key, Deadline: deadline}.
func SubmitULTKeyedDeadline[T any](sub *Submitter, ctx context.Context, key string, deadline time.Time, fn func(Ctx) (T, error)) (*Future[T], error) {
	return DoULT(sub, ctx, fn, Req{Key: key, Deadline: deadline})
}

// TrySubmitULTKeyedDeadline is TrySubmitULTKeyed with an end-to-end
// deadline.
//
// Deprecated: use DoULT with Req{Key: key, Deadline: deadline, NonBlocking: true}.
func TrySubmitULTKeyedDeadline[T any](sub *Submitter, key string, deadline time.Time, fn func(Ctx) (T, error)) (*Future[T], error) {
	return DoULT(sub, nil, fn, Req{Key: key, Deadline: deadline, NonBlocking: true})
}

// RouterByName returns a fresh submission router: "p2c" (the default,
// power-of-two-choices on shard depth), "roundrobin", or "random".
func RouterByName(name string) (Router, error) { return serve.RouterByName(name) }
