// Package lwt is the public face of this repository: a unified
// lightweight-thread (LWT) API over faithful Go reproductions of the five
// threading runtimes studied in "A Review of Lightweight Thread Approaches
// for High Performance Computing" (Castelló et al., CLUSTER 2016) —
// Argobots, Qthreads, MassiveThreads, Converse Threads and the Go
// scheduler model — plus the GNU and Intel OpenMP runtime emulations the
// paper benchmarks them against.
//
// The API is the reduced function set the paper distills in Table II and
// Listing 4: initialize a backend, create ULTs and tasklets, yield, join,
// finalize. Every backend implements it; the paper's central claim — that
// this small set suffices for the common parallel patterns (for loops,
// task parallelism, nested parallelism) — is exercised by this module's
// examples, tests and benchmark harness.
//
// Quickstart (Listing 4's shape):
//
//	r := lwt.MustNew("argobots", 4)
//	defer r.Finalize()
//	hs := make([]lwt.Handle, 100)
//	for i := range hs {
//		hs[i] = r.ULTCreate(func(lwt.Ctx) { fmt.Println("hello") })
//	}
//	r.Yield()
//	r.JoinAll(hs)
//
// Backends are selected by name; see Backends for the registry. Variants
// the paper evaluates separately (MassiveThreads work-first vs help-first,
// Argobots private vs shared pools, Qthreads shepherd layouts) register
// under their own names.
package lwt

import (
	"repro/internal/core"
)

// Runtime is an initialized unified-API instance over one backend.
type Runtime = core.Runtime

// Handle is a joinable reference to a created work unit.
type Handle = core.Handle

// Ctx is the cooperative context passed to ULT bodies.
type Ctx = core.Ctx

// Capabilities describes a backend in the vocabulary of the paper's
// Table I.
type Capabilities = core.Capabilities

// Backend is the adapter interface a threading runtime implements to
// participate in the unified API.
type Backend = core.Backend

// ErrUnknownBackend is returned by New for unregistered backend names.
var ErrUnknownBackend = core.ErrUnknownBackend

// New initializes the named backend with nthreads executors.
func New(backend string, nthreads int) (*Runtime, error) {
	return core.New(backend, nthreads)
}

// MustNew is New for known-good arguments; it panics on error.
func MustNew(backend string, nthreads int) *Runtime {
	return core.MustNew(backend, nthreads)
}

// Backends lists the registered backend names, sorted.
func Backends() []string { return core.Backends() }

// Register installs a custom backend factory; it panics on duplicate
// names.
func Register(name string, f func() Backend) {
	core.Register(name, func() core.Backend { return f() })
}
