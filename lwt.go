// Package lwt is the public face of this repository: a unified
// lightweight-thread (LWT) API over faithful Go reproductions of the five
// threading runtimes studied in "A Review of Lightweight Thread Approaches
// for High Performance Computing" (Castelló et al., CLUSTER 2016) —
// Argobots, Qthreads, MassiveThreads, Converse Threads and the Go
// scheduler model — plus the GNU and Intel OpenMP runtime emulations the
// paper benchmarks them against.
//
// The API is the reduced function set the paper distills in Table II and
// Listing 4: initialize a backend, create ULTs and tasklets, yield, join,
// finalize. Every backend implements it; the paper's central claim — that
// this small set suffices for the common parallel patterns (for loops,
// task parallelism, nested parallelism) — is exercised by this module's
// examples, tests and benchmark harness.
//
// Quickstart (Listing 4's shape):
//
//	r := lwt.MustNew("argobots", 4)
//	defer r.Finalize()
//	hs := make([]lwt.Handle, 100)
//	for i := range hs {
//		hs[i] = r.ULTCreate(func(lwt.Ctx) { fmt.Println("hello") })
//	}
//	r.Yield()
//	r.JoinAll(hs)
//
// Backends are selected by name; see Backends for the registry. Variants
// the paper evaluates separately (MassiveThreads work-first vs help-first,
// Argobots private vs shared pools, Qthreads shepherd layouts) register
// under their own names.
//
// On top of the Table II API sits the serving layer (NewServer): a
// concurrent task-submission engine that lets arbitrary goroutines
// inject work into any backend through a bounded queue with Future
// results, admission control (ErrSaturated) and per-request metrics —
// the external-submission path the paper's reduced function set lacks.
// cmd/lwtserved serves HTTP compute traffic through it on every backend.
//
//	srv := lwt.MustNewServer(lwt.ServeOptions{Backend: "argobots"})
//	defer srv.Close()
//	f, err := lwt.Submit(srv.Submitter(), ctx, func() (int, error) {
//		return compute(), nil
//	})
//	v, err := f.Wait(ctx)
package lwt

import (
	"context"

	"repro/internal/core"
	"repro/internal/serve"
)

// Runtime is an initialized unified-API instance over one backend.
type Runtime = core.Runtime

// Handle is a joinable reference to a created work unit.
type Handle = core.Handle

// Ctx is the cooperative context passed to ULT bodies.
type Ctx = core.Ctx

// Capabilities describes a backend in the vocabulary of the paper's
// Table I.
type Capabilities = core.Capabilities

// Backend is the adapter interface a threading runtime implements to
// participate in the unified API.
type Backend = core.Backend

// ErrUnknownBackend is returned by New for unregistered backend names.
var ErrUnknownBackend = core.ErrUnknownBackend

// New initializes the named backend with nthreads executors.
func New(backend string, nthreads int) (*Runtime, error) {
	return core.New(backend, nthreads)
}

// MustNew is New for known-good arguments; it panics on error.
func MustNew(backend string, nthreads int) *Runtime {
	return core.MustNew(backend, nthreads)
}

// Backends lists the registered backend names, sorted.
func Backends() []string { return core.Backends() }

// Register installs a custom backend factory; it panics on duplicate
// names.
func Register(name string, f func() Backend) {
	core.Register(name, func() core.Backend { return f() })
}

// --- Serving layer ---

// Server is a request-serving engine over one backend: a pump goroutine
// owns the backend's main thread and turns externally submitted requests
// into work units.
type Server = serve.Server

// ServeOptions configures a Server (backend, executors, queue depth,
// in-flight cap, batch size, tracer).
type ServeOptions = serve.Options

// Submitter is the thread-safe, multi-producer injection front-end of a
// Server.
type Submitter = serve.Submitter

// Future is the result handle of a submission; see serve.Future.
type Future[T any] = serve.Future[T]

// ServerMetrics is a snapshot of a Server's counters and latency window.
type ServerMetrics = serve.Metrics

// PanicError is the error a Future resolves to when a request body
// panicked.
type PanicError = serve.PanicError

// ErrSaturated is the admission-control fast-reject for a full
// submission queue.
var ErrSaturated = serve.ErrSaturated

// ErrServerClosed is returned for submissions to a closed Server.
var ErrServerClosed = serve.ErrClosed

// NewServer starts a serving engine over the named backend.
func NewServer(opts ServeOptions) (*Server, error) { return serve.New(opts) }

// MustNewServer is NewServer for known-good options; it panics on error.
func MustNewServer(opts ServeOptions) *Server { return serve.MustNew(opts) }

// Submit queues fn as a tasklet-shaped request, blocking on a full
// queue until space frees, ctx is cancelled, or the server closes.
func Submit[T any](sub *Submitter, ctx context.Context, fn func() (T, error)) (*Future[T], error) {
	return serve.Submit(sub, ctx, fn)
}

// TrySubmit is Submit without blocking: a full queue returns
// ErrSaturated immediately.
func TrySubmit[T any](sub *Submitter, fn func() (T, error)) (*Future[T], error) {
	return serve.TrySubmit(sub, fn)
}

// SubmitULT queues fn as a stackful ULT whose body receives the
// cooperative context, for requests that spawn and join children.
func SubmitULT[T any](sub *Submitter, ctx context.Context, fn func(Ctx) (T, error)) (*Future[T], error) {
	return serve.SubmitULT(sub, ctx, fn)
}

// TrySubmitULT is SubmitULT with ErrSaturated fast-reject.
func TrySubmitULT[T any](sub *Submitter, fn func(Ctx) (T, error)) (*Future[T], error) {
	return serve.TrySubmitULT(sub, fn)
}
