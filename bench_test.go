// Benchmarks regenerating every table and figure of the paper's
// evaluation. One family per figure:
//
//	BenchmarkFig1Top500        — Figure 1 data pipeline
//	BenchmarkFig2Create        — create one work unit per thread
//	BenchmarkFig3Join          — join one work unit per thread
//	BenchmarkFig4ForLoop       — 1,000-iteration parallel for
//	BenchmarkFig5TaskSingle    — tasks created in a single region
//	BenchmarkFig6TaskParallel  — tasks created in a parallel region
//	BenchmarkFig7NestedFor     — nested parallel for
//	BenchmarkFig8NestedTask    — nested task parallelism
//	BenchmarkTableRendering    — Tables I and II
//
// plus the ablation families for the design decisions DESIGN.md calls
// out (pool configuration, creation policy, shepherd layout, task
// cutoff, work-unit kind, and the raw-goroutine comparison).
//
// Figure-quality sweeps (full thread axis, paper-sized workloads, RSD
// reporting) are produced by cmd/lwtbench; these benchmarks use reduced
// sizes so the whole suite runs in minutes.
package lwt_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	lwt "repro"
	"repro/internal/argobots"
	"repro/internal/blas"
	"repro/internal/microbench"
	"repro/internal/omplwt"
	"repro/internal/openmp"
	"repro/internal/queue"
	"repro/internal/semantics"
	"repro/internal/top500"
	"repro/internal/ult"
)

// benchParams are reduced workload sizes preserving the paper's ratios.
func benchParams() microbench.Params {
	return microbench.Params{
		ForIters: 1000, Tasks: 500,
		NestedOuter: 20, NestedInner: 20,
		Parents: 50, Children: 4,
		Reps: 1,
	}
}

// benchThreads is the reduced thread axis for the per-figure benchmarks.
func benchThreads() []int {
	n := runtime.NumCPU()
	if n > 8 {
		n = 8
	}
	if n < 2 {
		return []int{1}
	}
	return []int{2, n}
}

// benchPattern runs one figure's pattern across systems and thread
// counts as sub-benchmarks.
func benchPattern(b *testing.B, run func(sys microbench.System, prm microbench.Params)) {
	prm := benchParams()
	for _, spec := range microbench.PaperSystems() {
		for _, n := range benchThreads() {
			b.Run(fmt.Sprintf("%s/threads=%d", spec.Name, n), func(b *testing.B) {
				sys := spec.Make()
				sys.Setup(n)
				defer sys.Teardown()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					run(sys, prm)
				}
			})
		}
	}
}

func BenchmarkFig1Top500(b *testing.B) {
	d := top500.Historical()
	for i := 0; i < b.N; i++ {
		if out := top500.Render(d); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig2Create(b *testing.B) {
	benchPattern(b, func(sys microbench.System, prm microbench.Params) {
		create, _ := sys.CreateJoin()
		_ = create
	})
}

func BenchmarkFig3Join(b *testing.B) {
	benchPattern(b, func(sys microbench.System, prm microbench.Params) {
		_, join := sys.CreateJoin()
		_ = join
	})
}

func BenchmarkFig4ForLoop(b *testing.B) {
	benchPattern(b, func(sys microbench.System, prm microbench.Params) {
		sys.ForLoop(prm.ForIters)
	})
}

func BenchmarkFig5TaskSingle(b *testing.B) {
	benchPattern(b, func(sys microbench.System, prm microbench.Params) {
		sys.TaskSingle(prm.Tasks)
	})
}

func BenchmarkFig6TaskParallel(b *testing.B) {
	benchPattern(b, func(sys microbench.System, prm microbench.Params) {
		sys.TaskParallel(prm.Tasks)
	})
}

func BenchmarkFig7NestedFor(b *testing.B) {
	benchPattern(b, func(sys microbench.System, prm microbench.Params) {
		sys.NestedFor(prm.NestedOuter, prm.NestedInner)
	})
}

func BenchmarkFig8NestedTask(b *testing.B) {
	benchPattern(b, func(sys microbench.System, prm microbench.Params) {
		sys.NestedTask(prm.Parents, prm.Children)
	})
}

func BenchmarkTableRendering(b *testing.B) {
	b.Run("TableI", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(semantics.RenderTableI()) == 0 {
				b.Fatal("empty table")
			}
		}
	})
	b.Run("TableII", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if len(semantics.RenderTableII()) == 0 {
				b.Fatal("empty table")
			}
		}
	})
}

// --- Ablations (design decisions of DESIGN.md §5) ---

// benchOne benchmarks a single system on one pattern at one thread count.
func benchOne(b *testing.B, sys microbench.System, n int, run func(sys microbench.System)) {
	sys.Setup(n)
	defer sys.Teardown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(sys)
	}
}

// BenchmarkAblationArgobotsPools compares Argobots private pools (the
// paper's pick) against a single shared pool on the task-single pattern.
func BenchmarkAblationArgobotsPools(b *testing.B) {
	prm := benchParams()
	for _, cfg := range []struct{ name, backend string }{
		{"private", "argobots"},
		{"shared", "argobots-shared"},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			benchOne(b, microbench.NewLWT(cfg.backend, true, cfg.name), 4,
				func(sys microbench.System) { sys.TaskSingle(prm.Tasks) })
		})
	}
}

// BenchmarkAblationTaskletVsULT quantifies the stackless-vs-stackful gap
// the paper reports as roughly 2x (§IX-B).
func BenchmarkAblationTaskletVsULT(b *testing.B) {
	prm := benchParams()
	for _, cfg := range []struct {
		name     string
		tasklets bool
	}{
		{"tasklet", true},
		{"ult", false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			benchOne(b, microbench.NewLWT("argobots", cfg.tasklets, cfg.name), 4,
				func(sys microbench.System) { sys.TaskSingle(prm.Tasks) })
		})
	}
}

// BenchmarkAblationMassiveThreadsPolicy compares work-first and
// help-first creation (§VIII-B2) on the recursion-shaped nested tasks.
func BenchmarkAblationMassiveThreadsPolicy(b *testing.B) {
	prm := benchParams()
	for _, cfg := range []struct{ name, backend string }{
		{"work-first", "massivethreads"},
		{"help-first", "massivethreads-helpfirst"},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			benchOne(b, microbench.NewLWT(cfg.backend, false, cfg.name), 4,
				func(sys microbench.System) { sys.NestedTask(prm.Parents, prm.Children) })
		})
	}
}

// BenchmarkAblationQthreadsConfig compares the shepherd layouts of
// §VIII-B3: one shepherd per CPU vs one per node.
func BenchmarkAblationQthreadsConfig(b *testing.B) {
	prm := benchParams()
	for _, cfg := range []struct{ name, backend string }{
		{"per-cpu", "qthreads"},
		{"per-node", "qthreads-pernode"},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			benchOne(b, microbench.NewLWT(cfg.backend, false, cfg.name), 4,
				func(sys microbench.System) { sys.TaskSingle(prm.Tasks) })
		})
	}
}

// BenchmarkAblationOpenMPCutoff isolates the task cutoff of §VII-B by
// running the gcc single-region pattern with the cutoff on and off.
func BenchmarkAblationOpenMPCutoff(b *testing.B) {
	const tasks = 2000
	for _, cfg := range []struct {
		name    string
		disable bool
	}{
		{"cutoff-on", false},
		{"cutoff-off", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			rt := openmp.New(openmp.Config{
				Flavor: openmp.GCC, NumThreads: 4,
				WaitPolicy: openmp.Passive, DisableCutoff: cfg.disable,
			})
			defer rt.Close()
			rt.Parallel(func(tc *openmp.TeamCtx) {}) // warm the pool
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.Parallel(func(tc *openmp.TeamCtx) {
					tc.Single(func() {
						for j := 0; j < tasks; j++ {
							tc.Task(func() {})
						}
					})
				})
			}
		})
	}
}

// BenchmarkDirectivesOnLWT is the paper's conclusion measured (§X): the
// same OpenMP-shaped program run on the Pthreads-style runtimes (gcc,
// icc emulations) versus the directive layer over LWT backends. The LWT
// substrate should win the task-parallel and nested patterns, as the
// paper predicts for OpenMP-over-LWT.
func BenchmarkDirectivesOnLWT(b *testing.B) {
	const tasks = 500
	const outer, inner = 10, 50
	type variant struct {
		name string
		mkT  func(b *testing.B) func() // task-single pattern runner
		mkN  func(b *testing.B) func() // nested-for pattern runner
	}
	ompVariant := func(flavor openmp.Flavor) variant {
		return variant{
			name: "pthreads-" + flavor.String(),
			mkT: func(b *testing.B) func() {
				rt := openmp.New(openmp.Config{Flavor: flavor, NumThreads: 4, WaitPolicy: openmp.Passive})
				b.Cleanup(rt.Close)
				rt.Parallel(func(tc *openmp.TeamCtx) {})
				return func() {
					rt.Parallel(func(tc *openmp.TeamCtx) {
						tc.Single(func() {
							for i := 0; i < tasks; i++ {
								tc.Task(func() {})
							}
						})
					})
				}
			},
			mkN: func(b *testing.B) func() {
				rt := openmp.New(openmp.Config{Flavor: flavor, NumThreads: 4, WaitPolicy: openmp.Passive})
				b.Cleanup(rt.Close)
				rt.Parallel(func(tc *openmp.TeamCtx) {})
				return func() {
					rt.Parallel(func(tc *openmp.TeamCtx) {
						lo, hi := openmp.ChunkRange(outer, tc.NumThreads(), tc.TID())
						for i := lo; i < hi; i++ {
							tc.ParallelFor(inner, func(j int) {})
						}
					})
				}
			},
		}
	}
	lwtVariant := func(backend string) variant {
		return variant{
			name: "lwt-" + backend,
			mkT: func(b *testing.B) func() {
				rt := omplwt.MustOpen(omplwt.Config{Backend: backend, Executors: 4})
				b.Cleanup(rt.Close)
				return func() {
					rt.Parallel(func(rg *omplwt.Region, tid int) {
						rg.Single(tid, func() {
							for i := 0; i < tasks; i++ {
								rg.Task(func() {})
							}
						})
					})
				}
			},
			mkN: func(b *testing.B) func() {
				rt := omplwt.MustOpen(omplwt.Config{Backend: backend, Executors: 4})
				b.Cleanup(rt.Close)
				return func() {
					rt.Parallel(func(rg *omplwt.Region, tid int) {
						lo, hi := 0, 0
						base, rem := outer/4, outer%4
						lo = tid*base + min(tid, rem)
						hi = lo + base
						if tid < rem {
							hi++
						}
						for i := lo; i < hi; i++ {
							rg.ParallelFor(inner, omplwt.Static, 0, func(j int) {})
						}
					})
				}
			},
		}
	}
	variants := []variant{
		ompVariant(openmp.GCC),
		ompVariant(openmp.ICC),
		lwtVariant("argobots"),
		lwtVariant("qthreads"),
	}
	for _, v := range variants {
		b.Run("task-single/"+v.name, func(b *testing.B) {
			run := v.mkT(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
	for _, v := range variants {
		b.Run("nested-for/"+v.name, func(b *testing.B) {
			run := v.mkN(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}

// BenchmarkAblationIdlePolicy compares the busy-wait idle policy the C
// libraries default to against parked idle streams, once at core-bounded
// stream counts and once oversubscribed — the regime where EXPERIMENTS.md
// notes this model's busy-wait diverges from the paper's 72-HT testbed.
func BenchmarkAblationIdlePolicy(b *testing.B) {
	const tasks = 300
	over := runtime.NumCPU() + 8
	for _, cfg := range []struct {
		name    string
		streams int
		parking bool
	}{
		{"busy-wait/fit", 4, false},
		{"parking/fit", 4, true},
		{fmt.Sprintf("busy-wait/over-%d", over), over, false},
		{fmt.Sprintf("parking/over-%d", over), over, true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			rt := argobots.Init(argobots.Config{XStreams: cfg.streams, IdleParking: cfg.parking})
			defer rt.Finalize()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tks := make([]*argobots.Task, tasks)
				for j := range tks {
					tks[j] = rt.TaskCreate(func() {})
				}
				for _, tk := range tks {
					rt.TaskFree(tk)
				}
			}
		})
	}
}

// BenchmarkAblationDequeLocking compares the mutex-protected deque the
// paper describes for MassiveThreads (§III-C: steals "require mutex
// protection") against the Chase-Lev lock-free deque the runtimes now
// schedule on, under an owner plus three thieves.
func BenchmarkAblationDequeLocking(b *testing.B) {
	type dq interface {
		PushBottom(ult.Unit)
		PopBottom() ult.Unit
		StealTop() ult.Unit
	}
	run := func(b *testing.B, d dq) {
		const batch = 256
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						d.StealTop()
					}
				}
			}()
		}
		unit := ult.NewTasklet(func() {})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				d.PushBottom(unit)
			}
			for j := 0; j < batch; j++ {
				if d.PopBottom() == nil {
					break // thieves got there first
				}
			}
		}
		b.StopTimer()
		close(stop)
		wg.Wait()
	}
	b.Run("mutex", func(b *testing.B) { run(b, queue.NewMutexDeque(256)) })
	b.Run("lock-free", func(b *testing.B) { run(b, queue.NewDeque(256)) })
}

// BenchmarkULTCreateJoin measures the paper's own metric — the cost of
// creating and joining one work unit — on the Argobots emulation, where
// the join-and-free discipline recycles descriptors through the ult
// package's pools. Both variants run the steady-state recycled cycle:
// the ULT path reuses the parked trampoline goroutine inside the pooled
// descriptor (0 spawns) and its single allocation is the public handle,
// which doubles as the body argument; the join parks the primary in the
// unit's waiter slot after one cooperative poll. Idle streams park
// (the passive wait policy) so that on small hosts the benchmark
// measures the create/join path rather than busy-wait oversubscription —
// that regime is BenchmarkAblationIdlePolicy's subject.
func BenchmarkULTCreateJoin(b *testing.B) {
	for _, cfg := range []struct {
		name string
		xs   int
	}{
		{"tasklet/streams-1", 1},
		{"tasklet/streams-4", 4},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			rt := argobots.Init(argobots.Config{XStreams: cfg.xs, IdleParking: true})
			defer rt.Finalize()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tk := rt.TaskCreate(func() {})
				if err := rt.TaskFree(tk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("ult/streams-1", func(b *testing.B) {
		rt := argobots.Init(argobots.Config{XStreams: 1, IdleParking: true})
		defer rt.Finalize()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			th := rt.ThreadCreate(func(*argobots.Context) {})
			if err := rt.ThreadFree(th); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServeThroughput measures the request-serving subsystem on
// every registered backend under open-loop load: a fixed producer group
// submits all b.N requests without waiting for completions (arrival is
// decoupled from service, as in real traffic), then awaits every Future.
// The shards axis compares the single-pump engine against a 4-shard
// pool at a constant total executor budget (GOMAXPROCS executors split
// across shards), so the measured delta is the dispatcher bottleneck,
// not added parallelism. Besides ns/op it reports requests/second and
// the serving layer's own P50/P99 request latency, making the backends'
// serving behaviour directly comparable.
func BenchmarkServeThroughput(b *testing.B) {
	const producers = 4
	work := func() (float32, error) {
		v := make([]float32, 256)
		blas.Iota(v)
		blas.Sscal(v, 1.5) // Listing 5's kernel as the request body
		return v[len(v)-1], nil
	}
	for _, backend := range lwt.Backends() {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/shards=%d", backend, shards), func(b *testing.B) {
				threads := runtime.GOMAXPROCS(0) / shards
				if threads < 1 {
					threads = 1
				}
				srv, err := lwt.NewServer(lwt.ServeOptions{
					Backend: backend, Threads: threads, Shards: shards,
					QueueDepth: 256, Batch: 32, LatencyWindow: 1 << 16,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				sub := srv.Submitter()
				futs := make([][]*lwt.Future[float32], producers)
				b.ResetTimer()
				var wg sync.WaitGroup
				for p := 0; p < producers; p++ {
					share := b.N / producers
					if p < b.N%producers {
						share++
					}
					wg.Add(1)
					go func(p, share int) {
						defer wg.Done()
						fs := make([]*lwt.Future[float32], 0, share)
						for i := 0; i < share; i++ {
							f, err := lwt.Do(sub, context.Background(), work, lwt.Req{})
							if err != nil {
								b.Errorf("submit: %v", err)
								break
							}
							fs = append(fs, f)
						}
						futs[p] = fs
					}(p, share)
				}
				wg.Wait()
				for _, fs := range futs {
					for _, f := range fs {
						if _, err := f.Wait(context.Background()); err != nil {
							b.Fatalf("wait: %v", err)
						}
					}
				}
				b.StopTimer()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "req/s")
				}
				if m := srv.Metrics(); m.Latency.Reps > 0 {
					b.ReportMetric(float64(m.Latency.P50)/1e3, "p50-µs")
					b.ReportMetric(float64(m.Latency.P99)/1e3, "p99-µs")
				}
			})
		}
	}
}

// BenchmarkServeDeadlineThroughput measures what carrying an
// end-to-end deadline costs the serving hot path: the same open-loop
// producer group as BenchmarkServeThroughput, but every request is
// submitted through SubmitDeadline with a budget that never fires
// (30s), so the measured delta against the plain mode is pure deadline
// bookkeeping — the per-request expiry check at launch and the
// deadline plumbing through the queue — not any shedding. The modes
// share one process so the comparison is same-machine, same-state;
// the robustness acceptance gate is deadline/plain < 2% on the go
// backend at shards=4.
func BenchmarkServeDeadlineThroughput(b *testing.B) {
	const producers = 4
	work := func() (float32, error) {
		v := make([]float32, 256)
		blas.Iota(v)
		blas.Sscal(v, 1.5)
		return v[len(v)-1], nil
	}
	for _, backend := range lwt.Backends() {
		for _, mode := range []string{"plain", "deadline"} {
			mode := mode
			b.Run(fmt.Sprintf("%s/%s", backend, mode), func(b *testing.B) {
				const shards = 4
				threads := runtime.GOMAXPROCS(0) / shards
				if threads < 1 {
					threads = 1
				}
				srv, err := lwt.NewServer(lwt.ServeOptions{
					Backend: backend, Threads: threads, Shards: shards,
					QueueDepth: 256, Batch: 32, LatencyWindow: 1 << 16,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				sub := srv.Submitter()
				futs := make([][]*lwt.Future[float32], producers)
				b.ResetTimer()
				var wg sync.WaitGroup
				for p := 0; p < producers; p++ {
					share := b.N / producers
					if p < b.N%producers {
						share++
					}
					wg.Add(1)
					go func(p, share int) {
						defer wg.Done()
						fs := make([]*lwt.Future[float32], 0, share)
						for i := 0; i < share; i++ {
							var f *lwt.Future[float32]
							var err error
							if mode == "deadline" {
								f, err = lwt.Do(sub, context.Background(), work, lwt.Req{Deadline: time.Now().Add(30 * time.Second)})
							} else {
								f, err = lwt.Do(sub, context.Background(), work, lwt.Req{})
							}
							if err != nil {
								b.Errorf("submit: %v", err)
								break
							}
							fs = append(fs, f)
						}
						futs[p] = fs
					}(p, share)
				}
				wg.Wait()
				for _, fs := range futs {
					for _, f := range fs {
						if _, err := f.Wait(context.Background()); err != nil {
							b.Fatalf("wait: %v", err)
						}
					}
				}
				b.StopTimer()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "req/s")
				}
			})
		}
	}
}

// BenchmarkServeIOThroughput measures what the async-I/O reactor buys
// the serving layer: every request simulates a 10ms downstream call,
// either blocking its executor for the duration (time.Sleep in the
// handler — the pre-reactor behaviour) or parking on the reactor
// (lwt.Sleep — the handler holds no executor while it waits). The
// executor budget is fixed at 4 split across the shard axis, so
// blocking throughput is capped near executors/10ms = 400 req/s while
// reactor throughput is capped by MaxInFlight — the measured gap is the
// executor occupancy the reactor reclaims, not added parallelism.
//
// With LWT_BENCH_IO_JSON set, the best (minimum ns/op) cell per
// backend/mode/shards lands in BENCH_fig-io.json for cmd/benchgate —
// series "backend/mode" over the shards axis, figure number 10 (the
// paper's figures end at 8; 10 is this repo's serving extension). The
// emission is opt-in so a -benchtime=1x smoke run cannot overwrite a
// properly measured baseline cell with a single-shot sample.
func BenchmarkServeIOThroughput(b *testing.B) {
	const ioWait = 10 * time.Millisecond
	const producers = 32
	const totalExecutors = 4
	modes := []string{"blocking", "reactor"}
	shardAxis := []int{1, 4}
	type ioCell struct {
		system string
		shards int
	}
	best := map[ioCell]int64{}
	for _, backend := range lwt.Backends() {
		for _, mode := range modes {
			for _, shards := range shardAxis {
				mode := mode
				b.Run(fmt.Sprintf("%s/%s/shards=%d", backend, mode, shards), func(b *testing.B) {
					threads := totalExecutors / shards
					if threads < 1 {
						threads = 1
					}
					srv, err := lwt.NewServer(lwt.ServeOptions{
						Backend: backend, Threads: threads, Shards: shards,
						QueueDepth: 256, Batch: 32, LatencyWindow: 1 << 14,
					})
					if err != nil {
						b.Fatal(err)
					}
					defer srv.Close()
					sub := srv.Submitter()
					body := func(c lwt.Ctx) (float64, error) {
						if mode == "blocking" {
							time.Sleep(ioWait)
						} else {
							lwt.Sleep(c, ioWait)
						}
						return 1, nil
					}
					futs := make([][]*lwt.Future[float64], producers)
					b.ResetTimer()
					var wg sync.WaitGroup
					for p := 0; p < producers; p++ {
						share := b.N / producers
						if p < b.N%producers {
							share++
						}
						wg.Add(1)
						go func(p, share int) {
							defer wg.Done()
							fs := make([]*lwt.Future[float64], 0, share)
							for i := 0; i < share; i++ {
								f, err := lwt.DoULT(sub, context.Background(), body, lwt.Req{})
								if err != nil {
									b.Errorf("submit: %v", err)
									break
								}
								fs = append(fs, f)
							}
							futs[p] = fs
						}(p, share)
					}
					wg.Wait()
					for _, fs := range futs {
						for _, f := range fs {
							if _, err := f.Wait(context.Background()); err != nil {
								b.Fatalf("wait: %v", err)
							}
						}
					}
					b.StopTimer()
					if secs := b.Elapsed().Seconds(); secs > 0 {
						b.ReportMetric(float64(b.N)/secs, "req/s")
					}
					nsop := b.Elapsed().Nanoseconds() / int64(b.N)
					key := ioCell{system: backend + "/" + mode, shards: shards}
					if prev, ok := best[key]; !ok || nsop < prev {
						best[key] = nsop
					}
				})
			}
		}
	}
	if os.Getenv("LWT_BENCH_IO_JSON") == "" {
		return
	}
	fig := microbench.FigureJSON{
		Figure:  10,
		Pattern: "fig-io",
		Title:   "Serve throughput under 10ms simulated I/O: blocking vs reactor handlers",
		Env: microbench.EnvJSON{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
	}
	for _, backend := range lwt.Backends() {
		for _, mode := range modes {
			s := microbench.SeriesJSON{System: backend + "/" + mode}
			for _, shards := range shardAxis {
				nsop, ok := best[ioCell{system: s.System, shards: shards}]
				if !ok {
					continue
				}
				s.Points = append(s.Points, microbench.PointJSON{
					Threads: shards, MeanNs: nsop, MinNs: nsop, MaxNs: nsop, Reps: 1,
				})
			}
			if len(s.Points) > 0 {
				fig.Series = append(fig.Series, s)
			}
		}
	}
	if len(fig.Series) > 0 {
		if err := microbench.WriteFigureJSON("BENCH_fig-io.json", fig); err != nil {
			b.Fatalf("write BENCH_fig-io.json: %v", err)
		}
	}
}

// BenchmarkServeAdaptive measures what the adaptive shard runtime buys
// under the workload it was built for: skewed session traffic. Sixteen
// producers drive a zipf-keyed/unkeyed mix of 2ms blocking handlers
// into a 4-shard pool, once with the pool static and once adaptive
// (idle-shard stealing on, autoscaler armed to twice the base shards).
// The handlers sleep, so executors — not the CPU — are the scarce
// resource: the adaptive pool's extra shards add real capacity, and
// stealing drains the unkeyed backlog skew piles onto hot shards. Both
// throughput (req/s) and the serving layer's own end-to-end P99
// (p99-ms, submission call to completion, backpressure included) are
// reported; the adaptive pool must win on both.
//
// With LWT_BENCH_ADAPTIVE_JSON set, the best (minimum ns/op) cell per
// backend/mode lands in BENCH_fig-adaptive.json for cmd/benchgate —
// series "backend/mode" at the base shard count, figure number 11
// (this repo's serving extension, after fig-io's 10), with the P99 of
// the best rep in p99_ns. Opt-in so a -benchtime=1x smoke run cannot
// overwrite a properly measured baseline cell.
func BenchmarkServeAdaptive(b *testing.B) {
	const (
		baseShards = 4
		maxShards  = 8
		producers  = 16
		workMs     = 2 * time.Millisecond
		hotKeys    = 64
	)
	backends := []string{"go", "argobots"}
	modes := []string{"static", "adaptive"}
	type cell struct{ system string }
	type sample struct {
		nsop int64
		p99  time.Duration
	}
	best := map[cell]sample{}
	for _, backend := range backends {
		for _, mode := range modes {
			mode := mode
			b.Run(fmt.Sprintf("%s/%s", backend, mode), func(b *testing.B) {
				opts := lwt.ServeOptions{
					Backend: backend, Threads: 1, Shards: baseShards,
					QueueDepth: 64, MaxInFlight: 2, Batch: 8,
					LatencyWindow: 1 << 14,
				}
				if mode == "adaptive" {
					opts.Steal = true
					opts.Scale = lwt.AutoScale{MaxShards: maxShards, Interval: 20 * time.Millisecond}
				}
				srv, err := lwt.NewServer(opts)
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				sub := srv.Submitter()
				body := func() (float64, error) {
					time.Sleep(workMs)
					return 1, nil
				}
				futs := make([][]*lwt.Future[float64], producers)
				b.ResetTimer()
				var wg sync.WaitGroup
				for p := 0; p < producers; p++ {
					share := b.N / producers
					if p < b.N%producers {
						share++
					}
					wg.Add(1)
					go func(p, share int) {
						defer wg.Done()
						rng := rand.New(rand.NewSource(int64(p) + 1))
						zipf := rand.NewZipf(rng, 1.4, 1, hotKeys-1)
						fs := make([]*lwt.Future[float64], 0, share)
						for i := 0; i < share; i++ {
							req := lwt.Req{}
							if i%2 == 0 {
								// Session-keyed half: zipf-skewed, so a
								// few hot keys concentrate on few shards.
								req.Key = fmt.Sprintf("sess-%d", zipf.Uint64())
							}
							f, err := lwt.Do(sub, context.Background(), body, req)
							if err != nil {
								b.Errorf("submit: %v", err)
								break
							}
							fs = append(fs, f)
						}
						futs[p] = fs
					}(p, share)
				}
				wg.Wait()
				for _, fs := range futs {
					for _, f := range fs {
						if _, err := f.Wait(context.Background()); err != nil {
							b.Fatalf("wait: %v", err)
						}
					}
				}
				b.StopTimer()
				m := srv.Metrics()
				if secs := b.Elapsed().Seconds(); secs > 0 {
					b.ReportMetric(float64(b.N)/secs, "req/s")
				}
				b.ReportMetric(float64(m.Latency.P99)/1e6, "p99-ms")
				if mode == "adaptive" {
					b.ReportMetric(float64(m.Steals), "steals")
					b.ReportMetric(float64(m.ScaleUps), "scaleups")
				}
				nsop := b.Elapsed().Nanoseconds() / int64(b.N)
				key := cell{system: backend + "/" + mode}
				if prev, ok := best[key]; !ok || nsop < prev.nsop {
					best[key] = sample{nsop: nsop, p99: m.Latency.P99}
				}
			})
		}
	}
	if os.Getenv("LWT_BENCH_ADAPTIVE_JSON") == "" {
		return
	}
	fig := microbench.FigureJSON{
		Figure:  11,
		Pattern: "fig-adaptive",
		Title:   "Adaptive shard pool under zipf-skewed load: static vs steal+autoscale",
		Env: microbench.EnvJSON{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
	}
	for _, backend := range backends {
		for _, mode := range modes {
			sm, ok := best[cell{system: backend + "/" + mode}]
			if !ok {
				continue
			}
			fig.Series = append(fig.Series, microbench.SeriesJSON{
				System: backend + "/" + mode,
				Points: []microbench.PointJSON{{
					Threads: baseShards,
					MeanNs:  sm.nsop, MinNs: sm.nsop, MaxNs: sm.nsop,
					P99Ns: sm.p99.Nanoseconds(), Reps: 1,
				}},
			})
		}
	}
	if len(fig.Series) > 0 {
		if err := microbench.WriteFigureJSON("BENCH_fig-adaptive.json", fig); err != nil {
			b.Fatalf("write BENCH_fig-adaptive.json: %v", err)
		}
	}
}

// BenchmarkAblationRawGoroutines compares the 2016 global-queue Go model
// against the real Go scheduler on the same pattern, quantifying what the
// single shared queue costs.
func BenchmarkAblationRawGoroutines(b *testing.B) {
	prm := benchParams()
	for _, cfg := range []struct {
		name string
		mk   func() microbench.System
	}{
		{"global-queue-model", func() microbench.System { return microbench.NewLWT("go", false, "model") }},
		{"native-goroutines", microbench.NewNativeGo},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			benchOne(b, cfg.mk(), 4,
				func(sys microbench.System) { sys.TaskSingle(prm.Tasks) })
		})
	}
}
