// Package chaos is the fault-injection layer behind the chaos smoke
// harness (cmd/chaossmoke): a reverse proxy that sits between the gate
// and one worker and injects the failure modes the robustness tier
// must contain — added latency, connection resets, 503 bursts, and
// blackholes (accepted connections that never answer) — plus a
// SIGSTOP/SIGCONT driver for freezing a whole worker process, the
// failure active health checks alone cannot distinguish from slowness.
//
// Faults are switched at runtime (Proxy.Inject / Proxy.Clear) so a
// scenario can inject each mode mid-load and watch the gate's
// circuit breaker open, contain, and recover. The proxy is transparent
// when no fault is armed; Spare-listed paths (the health endpoint)
// bypass injection so a scenario can fail the data path while probes
// stay green — isolating breaker containment from health ejection.
package chaos

import (
	"fmt"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Fault is an injectable failure mode.
type Fault int32

const (
	// None passes traffic through untouched.
	None Fault = iota
	// Latency delays each response by the configured duration before
	// forwarding (a slow-but-correct worker).
	Latency
	// Reset closes the client connection without an HTTP response (a
	// crashing or RST-happy worker).
	Reset
	// Burst503 answers 503 + Retry-After directly without forwarding
	// (a worker shedding under backpressure).
	Burst503
	// Blackhole accepts the request and never answers — the connection
	// hangs until the client gives up (a frozen worker; the proxy-level
	// twin of SIGSTOP).
	Blackhole
)

// String names the fault for logs.
func (f Fault) String() string {
	switch f {
	case None:
		return "none"
	case Latency:
		return "latency"
	case Reset:
		return "reset"
	case Burst503:
		return "burst503"
	case Blackhole:
		return "blackhole"
	default:
		return fmt.Sprintf("fault(%d)", int32(f))
	}
}

// Options configures a Proxy.
type Options struct {
	// Spare lists URL paths that always pass through unfaulted
	// (typically "/healthz", so active probes stay green while the data
	// path burns).
	Spare []string
}

// Proxy is a fault-injecting reverse proxy in front of one worker.
// Start it with NewProxy, point the gate at Addr(), and flip faults
// with Inject/Clear while load flows.
type Proxy struct {
	target *url.URL
	ln     net.Listener
	srv    *http.Server
	rp     *httputil.ReverseProxy
	spare  map[string]bool

	mu      sync.Mutex
	fault   Fault
	latency time.Duration

	injected  atomic.Uint64 // requests that hit an armed fault
	forwarded atomic.Uint64 // requests passed through to the worker
}

// NewProxy listens on an ephemeral localhost port and forwards to
// target ("host:port").
func NewProxy(target string, opts Options) (*Proxy, error) {
	u, err := url.Parse("http://" + target)
	if err != nil {
		return nil, fmt.Errorf("chaos: target %q: %w", target, err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{target: u, ln: ln, spare: map[string]bool{}}
	for _, path := range opts.Spare {
		p.spare[path] = true
	}
	p.rp = httputil.NewSingleHostReverseProxy(u)
	// The default error handler logs to stderr; a chaos run produces
	// these by design, so answer 502 quietly.
	p.rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		w.WriteHeader(http.StatusBadGateway)
	}
	p.srv = &http.Server{Handler: http.HandlerFunc(p.handle)}
	go func() { _ = p.srv.Serve(ln) }()
	return p, nil
}

// Addr is the proxy's listen address — what the gate should route to
// instead of the worker itself.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Inject arms fault f; latency configures the delay for Latency and is
// ignored otherwise. The fault stays armed until Clear or the next
// Inject.
func (p *Proxy) Inject(f Fault, latency time.Duration) {
	p.mu.Lock()
	p.fault, p.latency = f, latency
	p.mu.Unlock()
}

// Clear disarms any fault: traffic passes through again.
func (p *Proxy) Clear() { p.Inject(None, 0) }

// Injected counts requests that hit an armed fault; Forwarded counts
// requests relayed to the worker.
func (p *Proxy) Injected() uint64  { return p.injected.Load() }
func (p *Proxy) Forwarded() uint64 { return p.forwarded.Load() }

// Close stops the listener; in-flight blackholed requests unblock.
func (p *Proxy) Close() error { return p.srv.Close() }

func (p *Proxy) handle(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	fault, latency := p.fault, p.latency
	p.mu.Unlock()
	if fault == None || p.spare[r.URL.Path] {
		p.forwarded.Add(1)
		p.rp.ServeHTTP(w, r)
		return
	}
	p.injected.Add(1)
	switch fault {
	case Latency:
		select {
		case <-time.After(latency):
		case <-r.Context().Done():
			return
		}
		p.forwarded.Add(1)
		p.rp.ServeHTTP(w, r)
	case Reset:
		hj, ok := w.(http.Hijacker)
		if !ok {
			// Fall back to an abrupt empty 500; ResponseWriter always
			// hijacks on net/http servers, so this path is theoretical.
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		if conn, _, err := hj.Hijack(); err == nil {
			_ = conn.Close()
		}
	case Burst503:
		w.Header().Set("Retry-After", "2")
		http.Error(w, "chaos: injected backpressure", http.StatusServiceUnavailable)
	case Blackhole:
		// Hold the request open until the client (or an attempt
		// timeout upstream) abandons it. Never answer.
		<-r.Context().Done()
	}
}

// Pause freezes a process with SIGSTOP — the whole-process fault a
// proxy cannot model: the worker's sockets stay open and accepting at
// the kernel level while nothing in userspace runs.
func Pause(pid int) error { return syscall.Kill(pid, syscall.SIGSTOP) }

// Resume thaws a Paused process with SIGCONT.
func Resume(pid int) error { return syscall.Kill(pid, syscall.SIGCONT) }
