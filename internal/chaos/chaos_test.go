package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// fixture boots a trivial worker and a chaos proxy in front of it.
func fixture(t *testing.T, opts Options) (*Proxy, *httptest.Server) {
	t.Helper()
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("pong:" + r.URL.Path))
	}))
	t.Cleanup(backend.Close)
	p, err := NewProxy(backend.Listener.Addr().String(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, backend
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, string, error) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp, string(body), nil
}

func TestProxyPassthrough(t *testing.T) {
	p, _ := fixture(t, Options{})
	resp, body, err := get(t, http.DefaultClient, "http://"+p.Addr()+"/x")
	if err != nil || resp.StatusCode != http.StatusOK || body != "pong:/x" {
		t.Fatalf("passthrough: err=%v status=%v body=%q", err, resp, body)
	}
	if p.Forwarded() != 1 || p.Injected() != 0 {
		t.Fatalf("counters forwarded=%d injected=%d, want 1/0", p.Forwarded(), p.Injected())
	}
}

func TestProxyLatency(t *testing.T) {
	p, _ := fixture(t, Options{})
	p.Inject(Latency, 80*time.Millisecond)
	t0 := time.Now()
	resp, body, err := get(t, http.DefaultClient, "http://"+p.Addr()+"/x")
	if err != nil || resp.StatusCode != http.StatusOK || body != "pong:/x" {
		t.Fatalf("latency fault must still answer: err=%v body=%q", err, body)
	}
	if d := time.Since(t0); d < 80*time.Millisecond {
		t.Fatalf("answered in %v, want >= 80ms injected delay", d)
	}
	if p.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", p.Injected())
	}
}

func TestProxyReset(t *testing.T) {
	p, _ := fixture(t, Options{})
	p.Inject(Reset, 0)
	if _, _, err := get(t, http.DefaultClient, "http://"+p.Addr()+"/x"); err == nil {
		t.Fatal("reset fault produced a response, want transport error")
	}
	p.Clear()
	if resp, _, err := get(t, http.DefaultClient, "http://"+p.Addr()+"/x"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("Clear did not restore passthrough: err=%v", err)
	}
}

func TestProxyBurst503(t *testing.T) {
	p, backend := fixture(t, Options{})
	p.Inject(Burst503, 0)
	resp, body, err := get(t, http.DefaultClient, "http://"+p.Addr()+"/x")
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("burst503: err=%v status=%v", err, resp)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("injected 503 missing Retry-After")
	}
	if !strings.Contains(body, "chaos") {
		t.Fatalf("injected 503 body = %q, want the chaos envelope", body)
	}
	// The worker itself never saw the request.
	_ = backend
	if p.Forwarded() != 0 {
		t.Fatalf("503 burst forwarded %d requests, want 0", p.Forwarded())
	}
}

func TestProxyBlackholeHangsUntilClientQuits(t *testing.T) {
	p, _ := fixture(t, Options{})
	p.Inject(Blackhole, 0)
	client := &http.Client{Timeout: 100 * time.Millisecond}
	t0 := time.Now()
	_, _, err := get(t, client, "http://"+p.Addr()+"/x")
	if err == nil {
		t.Fatal("blackholed request answered, want client timeout")
	}
	if d := time.Since(t0); d < 100*time.Millisecond {
		t.Fatalf("client gave up in %v, before its own 100ms timeout — the proxy answered", d)
	}
}

func TestProxySparesListedPaths(t *testing.T) {
	p, _ := fixture(t, Options{Spare: []string{"/healthz"}})
	p.Inject(Reset, 0)
	// The data path resets...
	if _, _, err := get(t, http.DefaultClient, "http://"+p.Addr()+"/x"); err == nil {
		t.Fatal("data path not faulted")
	}
	// ...while the spared path stays green.
	resp, _, err := get(t, http.DefaultClient, "http://"+p.Addr()+"/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("spared /healthz faulted: err=%v", err)
	}
}

// procState reads the single-letter state from /proc/<pid>/stat
// (field 3): "T" is stopped, "S"/"R" running.
func procState(t *testing.T, pid int) string {
	t.Helper()
	b, err := os.ReadFile("/proc/" + itoa(pid) + "/stat")
	if err != nil {
		t.Fatalf("read proc stat: %v", err)
	}
	// Fields: pid (comm) state ... — comm may contain spaces, so split
	// after the closing paren.
	s := string(b)
	i := strings.LastIndexByte(s, ')')
	fields := strings.Fields(s[i+1:])
	return fields[0]
}

func itoa(n int) string {
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestPauseResume(t *testing.T) {
	cmd := exec.Command("sleep", "60")
	if err := cmd.Start(); err != nil {
		t.Skipf("cannot start sleep: %v", err)
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()
	pid := cmd.Process.Pid
	if err := Pause(pid); err != nil {
		t.Fatalf("Pause: %v", err)
	}
	waitState := func(want string) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if procState(t, pid) == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("pid %d state = %s, want %s", pid, procState(t, pid), want)
	}
	waitState("T")
	if err := Resume(pid); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if got := procState(t, pid); got == "T" {
		t.Fatalf("state after Resume still %s", got)
	}
}
