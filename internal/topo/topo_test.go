package topo

import (
	"testing"
	"testing/quick"
)

func TestPaperTopology(t *testing.T) {
	p := Paper()
	if got := p.Count(LevelPU); got != 72 {
		t.Fatalf("paper machine PUs = %d, want 72", got)
	}
	if got := p.Count(LevelCore); got != 36 {
		t.Fatalf("paper machine cores = %d, want 36", got)
	}
	if got := p.Count(LevelSocket); got != 2 {
		t.Fatalf("paper machine sockets = %d, want 2", got)
	}
	if got := p.Count(LevelNode); got != 1 {
		t.Fatalf("nodes = %d, want 1", got)
	}
	if got := p.String(); got != "2 sockets x 18 cores x 2 PUs (72 PUs)" {
		t.Fatalf("String = %q", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 1); err == nil {
		t.Fatal("accepted zero sockets")
	}
	if _, err := New(1, 0, 1); err == nil {
		t.Fatal("accepted zero cores")
	}
	if _, err := New(1, 4, 0); err == nil {
		t.Fatal("accepted zero PUs")
	}
	tp, err := New(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Count(LevelPU) != 16 {
		t.Fatalf("PUs = %d, want 16", tp.Count(LevelPU))
	}
}

func TestDetectIsUsable(t *testing.T) {
	tp := Detect()
	if tp.Count(LevelPU) < 1 {
		t.Fatal("detected topology has no PUs")
	}
	if tp.Sockets != 1 {
		t.Fatalf("Detect sockets = %d, want 1", tp.Sockets)
	}
}

func TestPUsPer(t *testing.T) {
	p := Paper()
	if got := p.PUsPer(LevelNode); got != 72 {
		t.Fatalf("PUs per node = %d, want 72", got)
	}
	if got := p.PUsPer(LevelSocket); got != 36 {
		t.Fatalf("PUs per socket = %d, want 36", got)
	}
	if got := p.PUsPer(LevelCore); got != 2 {
		t.Fatalf("PUs per core = %d, want 2", got)
	}
	if got := p.PUsPer(LevelPU); got != 1 {
		t.Fatalf("PUs per PU = %d, want 1", got)
	}
}

func TestDomainsAndPURange(t *testing.T) {
	p := Paper()
	sockets := p.Domains(LevelSocket)
	if len(sockets) != 2 {
		t.Fatalf("socket domains = %d, want 2", len(sockets))
	}
	lo, hi, err := p.PURange(sockets[1])
	if err != nil {
		t.Fatal(err)
	}
	if lo != 36 || hi != 72 {
		t.Fatalf("socket[1] PU range = [%d,%d), want [36,72)", lo, hi)
	}
	if _, _, err := p.PURange(Domain{LevelSocket, 2}); err == nil {
		t.Fatal("out-of-range domain accepted")
	}
	if s := sockets[1].String(); s != "socket[1]" {
		t.Fatalf("Domain.String = %q", s)
	}
}

func TestSocketAndCoreOf(t *testing.T) {
	p := Paper()
	if got := p.SocketOf(0); got != 0 {
		t.Fatalf("SocketOf(0) = %d", got)
	}
	if got := p.SocketOf(35); got != 0 {
		t.Fatalf("SocketOf(35) = %d, want 0", got)
	}
	if got := p.SocketOf(36); got != 1 {
		t.Fatalf("SocketOf(36) = %d, want 1", got)
	}
	if got := p.CoreOf(0); got != 0 {
		t.Fatalf("CoreOf(0) = %d", got)
	}
	if got := p.CoreOf(1); got != 0 {
		t.Fatalf("CoreOf(1) = %d, want 0 (HT sibling)", got)
	}
	if got := p.CoreOf(2); got != 1 {
		t.Fatalf("CoreOf(2) = %d, want 1", got)
	}
}

func TestLevelStrings(t *testing.T) {
	want := map[Level]string{
		LevelNode: "node", LevelSocket: "socket", LevelCore: "core", LevelPU: "pu",
		Level(9): "level(9)",
	}
	for l, w := range want {
		if l.String() != w {
			t.Fatalf("Level(%d).String() = %q, want %q", l, l.String(), w)
		}
	}
	var bad Topology
	if bad.Count(Level(9)) != 0 {
		t.Fatal("unknown level should count 0 domains")
	}
}

// Property: domain PU ranges at any level tile [0, totalPUs) exactly.
func TestPURangesTileProperty(t *testing.T) {
	f := func(s, c, p uint8) bool {
		tp, err := New(int(s%4)+1, int(c%16)+1, int(p%4)+1)
		if err != nil {
			return false
		}
		for _, level := range []Level{LevelNode, LevelSocket, LevelCore, LevelPU} {
			next := 0
			for _, d := range tp.Domains(level) {
				lo, hi, err := tp.PURange(d)
				if err != nil || lo != next || hi <= lo {
					return false
				}
				next = hi
			}
			if next != tp.Count(LevelPU) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
