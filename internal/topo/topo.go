// Package topo models the hardware topology the paper's runtimes bind to:
// a node contains sockets, sockets contain cores, cores contain processing
// units (hardware threads). Qthreads binds Shepherds and Workers to one of
// these levels (§III-D, §VIII-B3: one Shepherd per node / per socket /
// per CPU), and the evaluation machine — two 18-core sockets with
// 2 hardware threads per core — is expressible as New(2, 18, 2).
package topo

import (
	"fmt"
	"runtime"
)

// Level names a binding granularity in the topology tree.
type Level int

// Binding levels, coarsest to finest.
const (
	// LevelNode is the whole machine.
	LevelNode Level = iota
	// LevelSocket is one CPU package.
	LevelSocket
	// LevelCore is one physical core.
	LevelCore
	// LevelPU is one processing unit (hardware thread).
	LevelPU
)

// String returns the level name.
func (l Level) String() string {
	switch l {
	case LevelNode:
		return "node"
	case LevelSocket:
		return "socket"
	case LevelCore:
		return "core"
	case LevelPU:
		return "pu"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Topology describes a single-node machine.
type Topology struct {
	// Sockets is the number of CPU packages.
	Sockets int
	// CoresPerSocket is the number of physical cores per package.
	CoresPerSocket int
	// PUsPerCore is the number of hardware threads per core.
	PUsPerCore int
}

// New builds a topology and validates its shape.
func New(sockets, coresPerSocket, pusPerCore int) (Topology, error) {
	t := Topology{Sockets: sockets, CoresPerSocket: coresPerSocket, PUsPerCore: pusPerCore}
	if sockets < 1 || coresPerSocket < 1 || pusPerCore < 1 {
		return Topology{}, fmt.Errorf("topo: invalid shape %dx%dx%d", sockets, coresPerSocket, pusPerCore)
	}
	return t, nil
}

// Paper returns the evaluation machine of §V: two Intel Xeon E5-2699 v3
// sockets, 18 cores each, 2 hardware threads per core (36 cores / 72 HT).
func Paper() Topology {
	return Topology{Sockets: 2, CoresPerSocket: 18, PUsPerCore: 2}
}

// Detect synthesizes a plausible topology for the running machine from
// runtime.NumCPU: hyperthread pairs when the PU count is even and at
// least 4, one socket otherwise. It is a stand-in for hwloc-style
// detection, which the stdlib cannot do portably.
func Detect() Topology {
	n := runtime.NumCPU()
	if n < 1 {
		n = 1
	}
	pus := 1
	cores := n
	if n >= 4 && n%2 == 0 {
		pus = 2
		cores = n / 2
	}
	return Topology{Sockets: 1, CoresPerSocket: cores, PUsPerCore: pus}
}

// Count reports how many domains exist at the given level.
func (t Topology) Count(l Level) int {
	switch l {
	case LevelNode:
		return 1
	case LevelSocket:
		return t.Sockets
	case LevelCore:
		return t.Sockets * t.CoresPerSocket
	case LevelPU:
		return t.Sockets * t.CoresPerSocket * t.PUsPerCore
	default:
		return 0
	}
}

// PUsPer reports how many processing units one domain at the given level
// contains.
func (t Topology) PUsPer(l Level) int {
	total := t.Count(LevelPU)
	n := t.Count(l)
	if n == 0 {
		return 0
	}
	return total / n
}

// Domain identifies one domain instance at a level, e.g. socket 1.
type Domain struct {
	Level Level
	Index int
}

// String renders the domain as "socket[1]".
func (d Domain) String() string { return fmt.Sprintf("%s[%d]", d.Level, d.Index) }

// Domains enumerates all domains at a level.
func (t Topology) Domains(l Level) []Domain {
	n := t.Count(l)
	out := make([]Domain, n)
	for i := range out {
		out[i] = Domain{Level: l, Index: i}
	}
	return out
}

// PURange reports the half-open range [lo, hi) of processing-unit indices
// covered by the domain, or an error if the domain is out of range.
func (t Topology) PURange(d Domain) (lo, hi int, err error) {
	n := t.Count(d.Level)
	if d.Index < 0 || d.Index >= n {
		return 0, 0, fmt.Errorf("topo: domain %v out of range (level has %d)", d, n)
	}
	per := t.PUsPer(d.Level)
	return d.Index * per, (d.Index + 1) * per, nil
}

// SocketOf reports which socket a processing unit belongs to.
func (t Topology) SocketOf(pu int) int {
	perSocket := t.CoresPerSocket * t.PUsPerCore
	return pu / perSocket
}

// CoreOf reports which physical core a processing unit belongs to.
func (t Topology) CoreOf(pu int) int {
	return pu / t.PUsPerCore
}

// String renders the topology as "2 sockets x 18 cores x 2 PUs (72 PUs)".
func (t Topology) String() string {
	return fmt.Sprintf("%d sockets x %d cores x %d PUs (%d PUs)",
		t.Sockets, t.CoresPerSocket, t.PUsPerCore, t.Count(LevelPU))
}
