package ult

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSuspendResumeRaceStress reproduces the hand-off race fixed by
// carrying the disposition inside the hand-back message: a suspended ULT
// may be resumed and re-dispatched on another executor before the
// original executor has classified the hand-off. Classifying from the
// unit's live status panicked ("dispatched unit returned in state
// running"); the message-borne status must stay correct under arbitrary
// interleavings.
func TestSuspendResumeRaceStress(t *testing.T) {
	const rounds = 300
	for r := 0; r < rounds; r++ {
		e1 := NewExecutor(1)
		e2 := NewExecutor(2)

		var stage atomic.Int32
		u := New(func(self *ULT) {
			stage.Store(1)
			self.Suspend()
			stage.Store(2)
		})
		MarkReady(u)

		// The resumer hammers Resume so it lands as close as possible
		// to the Blocked store inside Suspend.
		var wg sync.WaitGroup
		wg.Add(2)
		redispatched := make(chan DispatchResult, 1)
		go func() {
			defer wg.Done()
			for !u.Resume() {
				if u.Done() {
					return
				}
				runtime.Gosched()
			}
			// Immediately re-dispatch on the other executor.
			redispatched <- e2.Dispatch(u)
		}()
		go func() {
			defer wg.Done()
			res := e1.Dispatch(u)
			if res != DispatchBlocked {
				t.Errorf("round %d: first dispatch = %v, want blocked", r, res)
			}
		}()
		wg.Wait()
		if res := <-redispatched; res != DispatchDone {
			t.Fatalf("round %d: re-dispatch = %v, want done", r, res)
		}
		if stage.Load() != 2 {
			t.Fatalf("round %d: body did not complete (stage=%d)", r, stage.Load())
		}
	}
}

// TestYieldWithStalePoolEntryStress exercises the other half of the
// claim protocol: a unit dispatched through a YieldTo hint leaves a stale
// pool entry behind; when the unit later yields, a racing executor may
// claim the stale entry while the original owner is still processing the
// hand-off. The single-runner invariant must hold throughout.
func TestYieldWithStalePoolEntryStress(t *testing.T) {
	const rounds = 200
	for r := 0; r < rounds; r++ {
		e1 := NewExecutor(1)
		e2 := NewExecutor(2)

		var running atomic.Int32
		var maxConcurrent atomic.Int32
		body := func(self *ULT) {
			n := running.Add(1)
			if m := maxConcurrent.Load(); n > m {
				maxConcurrent.CompareAndSwap(m, n)
			}
			self.Yield()
			running.Add(-1)
		}
		u := New(body)
		MarkReady(u)

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for {
				res := e1.Dispatch(u)
				if res == DispatchDone || u.Done() {
					return
				}
				runtime.Gosched()
			}
		}()
		go func() {
			defer wg.Done()
			for {
				res := e2.Dispatch(u)
				if res == DispatchDone || u.Done() {
					return
				}
				runtime.Gosched()
			}
		}()
		wg.Wait()
		if got := maxConcurrent.Load(); got > 1 {
			t.Fatalf("round %d: %d concurrent executions of one ULT", r, got)
		}
	}
}
