package ult

import (
	"testing"
	"testing/quick"
)

// Property: for any random schedule of yields and suspend/resume cycles,
// a ULT runs its body segments exactly once, in order, and every
// dispatch result matches the operation the body performed.
func TestLifecyclePropertyRandomSchedules(t *testing.T) {
	f := func(ops []uint8) bool {
		// Trim to a sane length; each op is one park point.
		if len(ops) > 16 {
			ops = ops[:16]
		}
		e := NewExecutor(0)
		var trace []int
		u := New(func(self *ULT) {
			for i, op := range ops {
				trace = append(trace, i)
				if op%2 == 0 {
					self.Yield()
				} else {
					self.Suspend()
				}
			}
			trace = append(trace, len(ops))
		})
		MarkReady(u)
		for i, op := range ops {
			var want DispatchResult
			if op%2 == 0 {
				want = DispatchYielded
			} else {
				want = DispatchBlocked
			}
			if got := e.Dispatch(u); got != want {
				t.Logf("op %d: dispatch = %v, want %v", i, got, want)
				return false
			}
			if op%2 == 1 && !u.Resume() {
				t.Logf("op %d: resume failed", i)
				return false
			}
		}
		if got := e.Dispatch(u); got != DispatchDone {
			t.Logf("final dispatch = %v", got)
			return false
		}
		// Segments executed exactly once, in order.
		if len(trace) != len(ops)+1 {
			return false
		}
		for i, v := range trace {
			if v != i {
				return false
			}
		}
		return u.Done() && u.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: tasklets are exactly-once regardless of how many executors
// race to run them.
func TestTaskletExactlyOnceProperty(t *testing.T) {
	f := func(nExec8 uint8) bool {
		n := int(nExec8%4) + 2
		execs := make([]*Executor, n)
		for i := range execs {
			execs[i] = NewExecutor(i)
		}
		runs := 0
		tk := NewTasklet(func() { runs++ })
		MarkReady(tk)
		done := make(chan bool, n)
		for _, e := range execs {
			e := e
			go func() { done <- e.RunTasklet(tk) }()
		}
		winners := 0
		for range execs {
			if <-done {
				winners++
			}
		}
		return winners == 1 && runs == 1 && tk.Done()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
