// Package ult implements the user-level-thread (ULT) substrate on which
// every runtime emulation in this repository is built.
//
// A ULT is a cooperatively scheduled unit of work with its own private
// stack. In this implementation each ULT is backed by a parked goroutine
// and control is transferred with a strict channel hand-off: at any moment
// an execution stream (Executor) runs at most one ULT, exactly like the C
// libraries studied in the paper (Argobots, Qthreads, MassiveThreads,
// Converse Threads). The hand-off gives the substrate real cooperative
// semantics — Yield, YieldTo, Suspend/Resume and migration between
// executors — rather than relying on the Go scheduler's preemption.
//
// The backing goroutine is a pooled *trampoline*: it binds to a pooled
// descriptor for the life of one incarnation and parks in a central idle
// pool at completion instead of exiting, so a steady-state create/join
// cycle (the paper's Figures 2–3 hot path) spawns no goroutines and
// performs no allocations at the descriptor level.
//
// A Tasklet is the second work-unit type of the paper (Argobots Tasklets,
// Converse Messages): an atomic, stackless unit executed inline by the
// executor. Tasklets cannot yield, block, or migrate once started, and are
// correspondingly much cheaper to create and run.
package ult

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Status describes the lifecycle state of a work unit.
type Status int32

// Work-unit lifecycle states. Transitions:
//
//	Created → Ready → Running → {Ready, Blocked, Done}
//	Blocked → Ready (via Resume)
const (
	// StatusCreated means the unit exists but was never made runnable.
	StatusCreated Status = iota
	// StatusReady means the unit is runnable and (normally) sitting in a
	// pool waiting for an executor.
	StatusReady
	// StatusRunning means an executor currently owns the unit.
	StatusRunning
	// StatusBlocked means the unit suspended itself and must be resumed
	// explicitly before it can run again.
	StatusBlocked
	// StatusDone means the unit finished executing.
	StatusDone
)

// String returns a human-readable state name.
func (s Status) String() string {
	switch s {
	case StatusCreated:
		return "created"
	case StatusReady:
		return "ready"
	case StatusRunning:
		return "running"
	case StatusBlocked:
		return "blocked"
	case StatusDone:
		return "done"
	default:
		return fmt.Sprintf("status(%d)", int32(s))
	}
}

// Kind discriminates the two work-unit types of the paper.
type Kind int

const (
	// KindULT is a yieldable, migratable unit with a private stack.
	KindULT Kind = iota
	// KindTasklet is an atomic, stackless unit.
	KindTasklet
)

// String returns the work-unit kind name.
func (k Kind) String() string {
	if k == KindTasklet {
		return "tasklet"
	}
	return "ult"
}

// Unit is the common interface of ULTs and Tasklets so pools can hold both.
type Unit interface {
	// Kind reports whether the unit is a ULT or a Tasklet.
	Kind() Kind
	// Status reports the unit's current lifecycle state.
	Status() Status
	// ID returns the unit's process-unique identifier.
	ID() uint64
}

// Errors reported by the substrate.
var (
	// ErrNotMigratable is returned when migrating a pinned ULT.
	ErrNotMigratable = errors.New("ult: work unit is not migratable")
	// ErrFreed is returned when operating on an already-freed unit.
	ErrFreed = errors.New("ult: work unit already freed")
	// ErrNotDone is returned when freeing a unit that has not completed.
	ErrNotDone = errors.New("ult: work unit has not completed")
)

var idCounter atomic.Uint64

func nextID() uint64 { return idCounter.Add(1) }

// Descriptor and goroutine pooling. Freeing a work unit (the Argobots
// join-and-free discipline) returns its descriptor to a reuse pool, and
// the backing *trampoline* goroutine — bound to the descriptor only for
// the life of one incarnation — parks in a central idle pool at
// completion, so steady-state create/free cycles neither allocate nor
// spawn: the paper's create/join hot path (Figures 2–3) recycles the
// descriptor, the resume channel, and the goroutine.
//
// The goroutine pool is central rather than per-descriptor on purpose: a
// goroutine parked *inside* a dropped descriptor would leak forever (a
// blocked goroutine pins itself; finalizers never run), so completed
// units that are never freed — fire-and-forget handles — must leave
// nothing parked behind. With the binding released at completion, an
// unfreed descriptor is plain garbage.
//
// A descriptor may only be recycled once *both* parties are finished with
// it: the caller of Free, and the unit's own final act (the trampoline's
// terminal hand-back, or the tasklet's completion publication), which can
// still be in flight when a status-polling joiner observes Done and frees.
// Each side calls release; the second release performs the recycle. The
// pooling contract for callers is the same use-after-free rule the C
// libraries have: a handle must not be touched after the unit was freed
// (for the unified API: after Join returned).
var taskletPool sync.Pool

// ultFreeCap bounds the descriptor freelist; descriptors beyond the
// high-water mark fall to the garbage collector.
const ultFreeCap = 8192

// ultFree is the ULT descriptor freelist. A channel rather than a stack:
// sends and receives are allocation-free, safe from any goroutine, and
// immune to the ABA problem a CAS-linked freelist of recycled nodes has.
var ultFree = make(chan *ULT, ultFreeCap)

// trampolineIdle hands a first-dispatched incarnation to a parked
// trampoline goroutine; unbuffered, so a successful send IS an idle
// goroutine. When no goroutine is parked the dispatcher spawns one.
var trampolineIdle = make(chan *ULT)

// idleTrampolines counts parked trampoline goroutines; the cap bounds
// what an idle process retains after a burst (excess exit at completion).
var idleTrampolines atomic.Int64

const maxIdleTrampolines = 1024

// releaseParties is the number of release calls that must land before a
// descriptor can be recycled.
const releaseParties = 2

// closedChan is the pre-closed channel completed units hand to DoneChan
// callers; its address doubles as the waitCh "completion published" seal.
var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// DoneWaiter is the single-waiter park slot's entry: a callback the
// finishing work unit runs when it completes. Register one with SetWaiter.
//
// Fn runs on the finishing unit's goroutine *before* the terminal
// hand-off, so the owning executor's control token is still held: the
// callback may therefore perform owner-side pool operations for that
// executor (it receives the executor), but it must not block, yield, or
// re-enter a scheduler. The intended use is exactly one thing: resume a
// joiner that parked with Suspend and hand it back to a ready pool (see
// ResumeAndRequeue).
//
// A DoneWaiter may be reused across joins (the runtimes cache one for
// their primary ULT), but only after its previous Fn call has returned.
type DoneWaiter struct {
	// Fn receives the executor whose control token the finishing unit
	// holds (for tasklets: the executor running the tasklet inline).
	Fn func(owner *Executor)
}

// sealedWaiter marks a hook slot whose unit has published completion.
var sealedWaiter DoneWaiter

// Func is the body of a ULT. The self argument is the running ULT and is
// only valid for the duration of the call; it provides the cooperative
// operations (Yield, YieldTo, Suspend, ...).
type Func func(self *ULT)

// BodyFunc is the closure-free body form: a package-level function plus an
// explicit argument, so runtimes can run per-unit state through a handle
// they allocate anyway instead of a fresh closure per create (NewWith).
type BodyFunc func(self *ULT, arg any)

// ULT is a user-level thread: an independent, yieldable, migratable work
// unit with its own private stack (the stack of the trampoline goroutine
// bound to it for this incarnation).
//
// The zero value is not usable; create ULTs with New or NewWith.
type ULT struct {
	id uint64

	// fn, or bodyFn+bodyArg, is the incarnation's body; exactly one form
	// is set per incarnation.
	fn      Func
	bodyFn  BodyFunc
	bodyArg any

	status atomic.Int32

	// resume carries the control token from an executor to the ULT while
	// a trampoline goroutine is bound to it (every dispatch after the
	// first; the first dispatch binds a goroutine via trampolineIdle).
	resume chan struct{}
	// bound records that a trampoline goroutine is bound to this
	// incarnation (parked on resume or running the body). Set by the
	// executor on the incarnation's first dispatch, reset by acquire;
	// adopted primaries are born bound (the caller's goroutine is the
	// body). Dispatch-side only: the claim CAS chain orders all access.
	bound bool
	// owner is the executor currently running the ULT. It is written by
	// Dispatch before the control token is handed over and read only by
	// the ULT goroutine while running, so it needs no extra locking.
	owner *Executor

	// comp is the generation-counted completion word: the number of
	// incarnations of this descriptor that have published completion. It
	// replaces the per-create done channel — Done is one load, and unlike
	// the status word it is never reset by the next incarnation, so a
	// joiner racing a recycle can never observe completion un-published.
	comp atomic.Uint64

	// waitCh is the lazily allocated waiter channel behind DoneChan: only
	// select-based joiners (the go-model backend) pay for a channel.
	// Sealed with &closedChan once completion is published.
	waitCh atomic.Pointer[chan struct{}]

	// hook is the single-waiter park slot: the parking join's registered
	// waiter, run by the finishing incarnation. Sealed with &sealedWaiter.
	hook atomic.Pointer[DoneWaiter]

	freed      atomic.Bool
	migratable bool

	// err records a panic recovered from the body; read after Done.
	err error

	// label is an optional debugging name set by the emulations.
	label string

	// gen counts descriptor reuses. YieldTo hints capture it so a hint
	// that outlives its target's free+recycle is discarded instead of
	// hijacking the descriptor's next incarnation onto the wrong stream;
	// comp counts against it so completion is per-incarnation.
	gen atomic.Uint64

	// releases counts the parties (terminal hand-back, Free) that have
	// finished with the descriptor; the second one recycles it.
	releases atomic.Int32

	// noRecycle exempts the descriptor from pooling for the rest of this
	// incarnation's life. Set when a *pooled* unit is dispatched through a
	// YieldTo hint: that dispatch leaves the unit's pool entry stale, and
	// the scheduler that later pops the stale pointer depends on claim()
	// failing against *this* incarnation — reusing the descriptor would
	// let the stale entry claim (and misplace) the next one. The
	// descriptor falls to the garbage collector instead.
	noRecycle atomic.Bool

	// unpooled, when true, promises that this incarnation has never been
	// inserted into a scheduler pool (and will not be before its first
	// dispatch), so a YieldTo hint dispatch leaves no stale entry behind
	// and need not poison recycling. Set via MarkUnpooled by creators that
	// hand the fresh unit straight to an executor (MassiveThreads'
	// work-first creation); cleared the moment the unit yields or
	// suspends, because the requeue that follows is a pool insertion.
	unpooled bool
}

// New creates a ULT in the Created state. On a recycled descriptor this is
// a freelist pop, a field reset and a generation bump, and the first
// dispatch binds a parked trampoline goroutine from the central idle
// pool — so the steady-state create/dispatch cycle spawns nothing and
// allocates nothing. Only a cold start pays for a fresh descriptor, its
// resume channel and a goroutine spawn — deliberately still heavier than
// a Tasklet, as in the paper.
func New(fn Func) *ULT {
	t := acquire()
	t.fn = fn
	return t
}

// NewWith creates a ULT whose body is the package-level body applied to
// arg, avoiding the per-create closure allocation of New. Runtimes thread
// their per-unit state through the handle they return to the caller
// anyway; arg is typically that handle (a pointer conversion to any does
// not allocate).
func NewWith(body BodyFunc, arg any) *ULT {
	t := acquire()
	t.bodyFn = body
	t.bodyArg = arg
	return t
}

// acquire pops a recycled descriptor from the freelist, or builds a
// fresh one. No goroutine is involved until the first dispatch.
func acquire() *ULT {
	var t *ULT
	select {
	case t = <-ultFree:
		t.gen.Add(1)
		t.releases.Store(0)
		t.freed.Store(false)
		t.owner = nil
		t.err = nil
		t.label = ""
		t.fn = nil
		t.bodyFn = nil
		t.bodyArg = nil
		t.unpooled = false
		t.bound = false
		t.waitCh.Store(nil)
		t.hook.Store(nil)
	default:
		t = &ULT{resume: make(chan struct{})}
	}
	t.id = nextID()
	t.migratable = true
	t.status.Store(int32(StatusCreated))
	return t
}

// NewPinned creates a ULT that refuses migration between executors.
func NewPinned(fn Func) *ULT {
	t := New(fn)
	t.migratable = false
	return t
}

// bind hands a first-dispatched incarnation to a trampoline goroutine:
// a parked one from the central idle pool when available, a fresh spawn
// otherwise. Called by the dispatching executor with the claim won.
func bind(t *ULT) {
	select {
	case trampolineIdle <- t:
	default:
		go trampoline(t)
	}
}

// trampoline is a pooled worker goroutine: run the assigned incarnation's
// body, publish completion, hand the control token back, release the
// descriptor, then park in the central idle pool for the next assignment.
// The goroutine is the incarnation's stack for exactly one binding —
// yields and suspends park it on the descriptor's resume channel
// mid-body — and at completion the binding dissolves, so a descriptor
// that is never freed (a dropped fire-and-forget handle) is plain
// garbage, not a parked-goroutine leak. Idle goroutines beyond the cap
// exit instead of parking.
func trampoline(t *ULT) {
	for {
		t.runBody()
		t.finish()
		t.release()
		if idleTrampolines.Add(1) > maxIdleTrampolines {
			idleTrampolines.Add(-1)
			return
		}
		t = <-trampolineIdle
		idleTrampolines.Add(-1)
	}
}

// runBody executes the ULT body with panic containment: a panicking work
// unit must not take down the executor or the process; it completes with
// the panic recorded as its error. (Note: a panic thrown while the ULT
// is parked in Yield/Suspend cannot happen — the body only runs while it
// holds the control token.)
func (t *ULT) runBody() {
	defer func() {
		if r := recover(); r != nil {
			t.err = fmt.Errorf("ult: work unit %d panicked: %v", t.id, r)
		}
	}()
	if t.bodyFn != nil {
		t.bodyFn(t, t.bodyArg)
		return
	}
	t.fn(t)
}

// finish publishes completion and returns control to the owning executor:
// the status and the generation-counted completion word are stored, the
// lazy waiter channel is closed, the parked joiner (if any) is woken, and
// only then does the terminal hand-back release the executor. The release
// that makes the descriptor recyclable is the trampoline's next step
// after finish returns, so a joiner that observes Done and frees cannot
// recycle the descriptor out from under this sequence.
func (t *ULT) finish() {
	owner := t.owner
	t.status.Store(int32(StatusDone))
	t.comp.Store(t.gen.Load() + 1)
	t.sealWaiters(owner)
	owner.handback <- handoff{t: t, st: StatusDone}
}

// sealWaiters publishes completion to both waiter slots: the lazy DoneChan
// channel is closed (and the slot sealed so later DoneChan calls get the
// shared pre-closed channel), and the registered park-slot waiter is run
// while the executor's control token is still held.
func (t *ULT) sealWaiters(owner *Executor) {
	if w := t.waitCh.Swap(&closedChan); w != nil && w != &closedChan {
		close(*w)
	}
	if h := t.hook.Swap(&sealedWaiter); h != nil && h != &sealedWaiter {
		h.Fn(owner)
	}
}

// release records that one of the two parties (the trampoline's terminal
// step, Free) is finished with the descriptor; the second one recycles
// it. A descriptor that cannot be recycled — hint-poisoned incarnation,
// full freelist, or a Free that never comes — is simply garbage: no
// goroutine is parked inside it.
func (t *ULT) release() {
	if t.releases.Add(1) != releaseParties {
		return
	}
	if t.noRecycle.Load() {
		return
	}
	select {
	case ultFree <- t:
	default:
	}
}

// Kind implements Unit.
func (t *ULT) Kind() Kind { return KindULT }

// ID implements Unit.
func (t *ULT) ID() uint64 { return t.id }

// Status implements Unit.
func (t *ULT) Status() Status { return Status(t.status.Load()) }

// Done reports whether this incarnation's body has returned. It reads the
// generation-counted completion word, which — unlike the status word — is
// never reset when the descriptor is recycled, so completion once
// observed stays observed.
func (t *ULT) Done() bool { return t.comp.Load() > t.gen.Load() }

// Gen returns the descriptor's incarnation number. Handles that can
// outlive their unit's free-and-recycle capture it at creation and poll
// completion with DoneAt instead of Done.
func (t *ULT) Gen() uint64 { return t.gen.Load() }

// DoneAt reports whether incarnation gen has published completion. The
// completion word only grows, so — unlike every other method — DoneAt
// stays correct even after the descriptor was freed and recycled: a stale
// handle keeps reading true forever. This is what lets runtimes without
// an explicit user-facing free (the join releases the descriptor) answer
// Done from old handles safely.
func (t *ULT) DoneAt(gen uint64) bool { return t.comp.Load() > gen }

// Closed returns the shared pre-closed channel, for handle-level DoneChan
// wrappers that must answer after their descriptor was freed.
func Closed() <-chan struct{} { return closedChan }

// DoneChan exposes a channel closed on completion for select-based joins
// (the mechanism the Go runtime model uses). The channel is allocated
// lazily on first call — status- and park-based joiners never pay for it —
// and completed units share one pre-closed channel.
func (t *ULT) DoneChan() <-chan struct{} {
	if w := t.waitCh.Load(); w != nil {
		return *w
	}
	nc := make(chan struct{})
	if t.waitCh.CompareAndSwap(nil, &nc) {
		// finish had not sealed at the CAS, so it will observe nc in the
		// slot and close it.
		return nc
	}
	return *t.waitCh.Load()
}

// SetWaiter registers w in the unit's single-waiter park slot. It returns
// true when the registration won the slot — w.Fn will then run exactly
// once, on the finishing unit's goroutine — and false when completion was
// already published or another waiter holds the slot (callers fall back
// to a polling join). After a successful SetWaiter the joiner must park
// (Suspend), unconditionally: the waiter's wake spin-waits for it.
func (t *ULT) SetWaiter(w *DoneWaiter) bool {
	return t.hook.CompareAndSwap(nil, w)
}

// ResumeAndRequeue is the wake half of the parking join: it transitions a
// joiner that parked (or is about to park) via Suspend back to Ready —
// spinning out the tiny window between the joiner's SetWaiter and the
// Blocked store inside its Suspend — and then hands it to requeue for
// pool reinsertion. Intended to be called from a DoneWaiter.Fn.
func ResumeAndRequeue(j *ULT, requeue func(*ULT)) {
	for !j.Resume() {
		if j.Done() {
			return
		}
		runtime.Gosched()
	}
	requeue(j)
}

// WaiterSlot is the park-slot surface shared by ULT and Tasklet
// descriptors.
type WaiterSlot interface {
	SetWaiter(*DoneWaiter) bool
}

// ParkJoinStep performs one wait step of a parking join: it registers
// joiner in slot and suspends it, reporting true; when the slot is
// unavailable (completion already published, or another waiter holds it)
// it reports false and the caller polls instead. On resume, the finishing
// unit has handed the joiner to requeue together with the executor whose
// control token it held — backends that need an owner-side pool insertion
// (the Chase–Lev deques) use that executor, everyone else ignores it.
//
// Safety: the caller must hold the handle-level right to free the target
// (a join claim) before parking — its own pending free is what keeps the
// descriptor out of the reuse pool while the registration is in flight.
func ParkJoinStep(joiner *ULT, slot WaiterSlot, requeue func(j *ULT, owner *Executor)) bool {
	w := &DoneWaiter{Fn: func(owner *Executor) {
		ResumeAndRequeue(joiner, func(j *ULT) { requeue(j, owner) })
	}}
	if slot.SetWaiter(w) {
		joiner.Suspend()
		return true
	}
	return false
}

// Err returns the panic recovered from the body, or nil. Only meaningful
// once the ULT is Done.
func (t *ULT) Err() error { return t.err }

// Migratable reports whether the ULT may move between executors.
func (t *ULT) Migratable() bool { return t.migratable }

// Owner returns the executor currently running the ULT. It is only
// meaningful while the ULT is Running (the value is stable between the
// dispatch and the next hand-back); runtimes use it to find the worker a
// spawning ULT is executing on.
func (t *ULT) Owner() *Executor { return t.owner }

// SetLabel attaches a debugging name to the ULT.
func (t *ULT) SetLabel(s string) { t.label = s }

// Label returns the debugging name (may be empty).
func (t *ULT) Label() string { return t.label }

// MarkUnpooled promises that this unit will reach its first dispatch
// without ever being inserted into a scheduler pool — the creator hands it
// to an executor directly (a work-first YieldTo). A hint dispatch of an
// unpooled unit leaves no stale pool entry behind, so the descriptor stays
// recyclable. Must be called before the unit is made Ready.
func (t *ULT) MarkUnpooled() { t.unpooled = true }

// Freed reports whether Free has been called on the ULT.
func (t *ULT) Freed() bool { return t.freed.Load() }

// Free releases the ULT's resources. It mirrors the join-and-free step of
// Argobots' ABT_thread_free: the paper attributes part of Argobots' join
// cost to this extra bookkeeping, so emulations call it explicitly.
// Freeing a unit twice or freeing an unfinished unit is an error.
//
// Free returns the descriptor to the reuse pool (once the backing
// goroutine's terminal hand-back has also completed). The caller must
// not touch the ULT — not even Status or DoneChan — after Free returns:
// the descriptor may already be serving a new work unit.
func (t *ULT) Free() error {
	if !t.Done() {
		return ErrNotDone
	}
	if !t.freed.CompareAndSwap(false, true) {
		return ErrFreed
	}
	t.fn = nil
	t.bodyFn = nil
	t.bodyArg = nil
	t.release()
	return nil
}

// markReady transitions the unit to Ready. Valid from Created (first
// scheduling), Running (self-yield) and Blocked (resume).
func (t *ULT) markReady() { t.status.Store(int32(StatusReady)) }

// claim atomically takes a Ready unit for execution. It is the only
// Ready→Running transition, so a unit that is reachable from two places
// (a pool entry and a YieldTo hint) is dispatched exactly once.
func (t *ULT) claim() bool {
	return t.status.CompareAndSwap(int32(StatusReady), int32(StatusRunning))
}

// Yield cooperatively returns control to the owning executor and re-enters
// the Ready state. The executor decides where the ULT goes next (usually
// back into a pool). Must be called from inside the ULT body.
//
// The owner is captured before the status store: the moment the unit is
// Ready (or Blocked) a third party may claim/resume it and overwrite
// owner, and the hand-off must go to the executor that dispatched us.
func (t *ULT) Yield() {
	owner := t.owner
	t.unpooled = false // the requeue that follows is a pool insertion
	t.status.Store(int32(StatusReady))
	owner.handback <- handoff{t: t, st: StatusReady}
	<-t.resume
}

// YieldTo yields and asks the executor to dispatch target next, bypassing
// the scheduler — the Argobots yield_to operation of Table I. If the
// target cannot be claimed (already running or done) the hint is dropped
// and the executor falls back to its scheduler.
func (t *ULT) YieldTo(target *ULT) {
	owner := t.owner
	owner.setHint(target)
	t.Yield()
}

// Suspend blocks the ULT: it returns control to the executor without
// becoming Ready. Another thread of control must call Resume (and
// re-enqueue the ULT) before it can run again. Must be called from inside
// the ULT body.
func (t *ULT) Suspend() {
	owner := t.owner
	t.unpooled = false // the eventual requeue is a pool insertion
	t.status.Store(int32(StatusBlocked))
	owner.handback <- handoff{t: t, st: StatusBlocked}
	<-t.resume
}

// Resume transitions a Blocked ULT back to Ready so it can be re-enqueued.
// It reports whether the transition happened (false if the ULT was not
// blocked). The caller is responsible for putting the ULT back in a pool.
func (t *ULT) Resume() bool {
	return t.status.CompareAndSwap(int32(StatusBlocked), int32(StatusReady))
}

// TaskletFunc is the body of a Tasklet. It receives no self handle: a
// tasklet has no stack of its own and cannot yield or block.
type TaskletFunc func()

// Tasklet is an atomic, stackless work unit (Argobots Tasklet, Converse
// Message). It is executed inline by the executor's scheduling loop.
type Tasklet struct {
	id     uint64
	fn     TaskletFunc
	status atomic.Int32
	freed  atomic.Bool
	// err records a panic recovered from the body; read after Done.
	err error
	// doneCh is allocated eagerly by NewTaskletWithDone for callers that
	// join on a channel; plain status polling does not pay for it.
	doneCh chan struct{}
	// hook is the single-waiter park slot (see ULT.SetWaiter).
	hook atomic.Pointer[DoneWaiter]
	// releases counts the parties (completion publication, Free) done
	// with the descriptor; the second one recycles it.
	releases atomic.Int32
}

// NewTasklet creates a tasklet in the Created state. Creation is at most
// one small allocation — the "lightest work unit available" of §VI — and
// none at all in steady state: freed tasklet descriptors are reused from
// a pool, so a create/free cycle (the Figure 2/5 hot path) does not touch
// the allocator.
func NewTasklet(fn TaskletFunc) *Tasklet {
	t, _ := taskletPool.Get().(*Tasklet)
	if t == nil {
		t = &Tasklet{}
	} else {
		t.releases.Store(0)
		t.freed.Store(false)
		t.err = nil
		t.doneCh = nil
		t.hook.Store(nil)
	}
	t.id = nextID()
	t.fn = fn
	t.status.Store(int32(StatusCreated))
	return t
}

// NewTaskletBulk creates one tasklet per body, in body order. Descriptor
// acquisition is inherently per-unit (one pool hit each, allocation-free
// in steady state); the batching win of a bulk create is on the enqueue
// side — pair this with queue.FIFO.PushBatch or
// queue.Deque.PushBottomBatch and a single executor wake, as the runtime
// bulk creators do. The returned tasklets still need MarkReady plus pool
// insertion.
func NewTaskletBulk(fns []func()) []*Tasklet {
	out := make([]*Tasklet, len(fns))
	for i, fn := range fns {
		out[i] = NewTasklet(fn)
	}
	return out
}

// NewTaskletWithDone creates a tasklet whose completion can be awaited on
// a channel. Slightly heavier than NewTasklet (one channel allocation).
func NewTaskletWithDone(fn TaskletFunc) *Tasklet {
	t := NewTasklet(fn)
	t.doneCh = make(chan struct{})
	return t
}

// Kind implements Unit.
func (t *Tasklet) Kind() Kind { return KindTasklet }

// ID implements Unit.
func (t *Tasklet) ID() uint64 { return t.id }

// Status implements Unit.
func (t *Tasklet) Status() Status { return Status(t.status.Load()) }

// Done reports whether the tasklet has executed.
func (t *Tasklet) Done() bool { return t.Status() == StatusDone }

// DoneChan returns a channel closed on completion. Only valid for tasklets
// created with NewTaskletWithDone; otherwise it returns nil.
func (t *Tasklet) DoneChan() <-chan struct{} { return t.doneCh }

// SetWaiter registers w in the tasklet's single-waiter park slot, with
// exactly the ULT.SetWaiter contract: true means w.Fn runs once on the
// executor that runs the tasklet inline, and the caller must park.
func (t *Tasklet) SetWaiter(w *DoneWaiter) bool {
	return t.hook.CompareAndSwap(nil, w)
}

// markReady transitions the tasklet to Ready (pool insertion).
func (t *Tasklet) markReady() { t.status.Store(int32(StatusReady)) }

// claim atomically takes a Ready tasklet for execution.
func (t *Tasklet) claim() bool {
	return t.status.CompareAndSwap(int32(StatusReady), int32(StatusRunning))
}

// run executes the tasklet body inline on executor e, with the same panic
// containment as ULT bodies.
func (t *Tasklet) run(e *Executor) {
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.err = fmt.Errorf("ult: tasklet %d panicked: %v", t.id, r)
			}
		}()
		t.fn()
	}()
	t.status.Store(int32(StatusDone))
	if t.doneCh != nil {
		close(t.doneCh)
	}
	if h := t.hook.Swap(&sealedWaiter); h != nil && h != &sealedWaiter {
		h.Fn(e)
	}
	t.release()
}

// release records that one of the two parties (completion, Free) is done
// with the descriptor; the second one recycles it. The executor-side
// release is the last statement of run, so a freer racing a
// status-polling join cannot recycle the descriptor out from under the
// completion publication.
func (t *Tasklet) release() {
	if t.releases.Add(1) == releaseParties {
		taskletPool.Put(t)
	}
}

// Err returns the panic recovered from the body, or nil. Only meaningful
// once the tasklet is Done.
func (t *Tasklet) Err() error { return t.err }

// Freed reports whether Free has been called.
func (t *Tasklet) Freed() bool { return t.freed.Load() }

// Free releases the tasklet, returning the descriptor to the reuse pool
// (once the completion publication has also finished). The caller must
// not touch the tasklet after Free returns: the descriptor may already be
// serving a new work unit.
func (t *Tasklet) Free() error {
	if t.Status() != StatusDone {
		return ErrNotDone
	}
	if !t.freed.CompareAndSwap(false, true) {
		return ErrFreed
	}
	t.fn = nil
	t.release()
	return nil
}

// MarkReady makes a freshly created unit eligible for dispatch. Emulations
// call it when inserting the unit into a pool.
func MarkReady(u Unit) {
	switch v := u.(type) {
	case *ULT:
		v.markReady()
	case *Tasklet:
		v.markReady()
	default:
		panic(fmt.Sprintf("ult: unknown unit type %T", u))
	}
}
