// Package ult implements the user-level-thread (ULT) substrate on which
// every runtime emulation in this repository is built.
//
// A ULT is a cooperatively scheduled unit of work with its own private
// stack. In this implementation each ULT is backed by a parked goroutine
// and control is transferred with a strict channel hand-off: at any moment
// an execution stream (Executor) runs at most one ULT, exactly like the C
// libraries studied in the paper (Argobots, Qthreads, MassiveThreads,
// Converse Threads). The hand-off gives the substrate real cooperative
// semantics — Yield, YieldTo, Suspend/Resume and migration between
// executors — rather than relying on the Go scheduler's preemption.
//
// A Tasklet is the second work-unit type of the paper (Argobots Tasklets,
// Converse Messages): an atomic, stackless unit executed inline by the
// executor. Tasklets cannot yield, block, or migrate once started, and are
// correspondingly much cheaper to create and run.
package ult

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Status describes the lifecycle state of a work unit.
type Status int32

// Work-unit lifecycle states. Transitions:
//
//	Created → Ready → Running → {Ready, Blocked, Done}
//	Blocked → Ready (via Resume)
const (
	// StatusCreated means the unit exists but was never made runnable.
	StatusCreated Status = iota
	// StatusReady means the unit is runnable and (normally) sitting in a
	// pool waiting for an executor.
	StatusReady
	// StatusRunning means an executor currently owns the unit.
	StatusRunning
	// StatusBlocked means the unit suspended itself and must be resumed
	// explicitly before it can run again.
	StatusBlocked
	// StatusDone means the unit finished executing.
	StatusDone
)

// String returns a human-readable state name.
func (s Status) String() string {
	switch s {
	case StatusCreated:
		return "created"
	case StatusReady:
		return "ready"
	case StatusRunning:
		return "running"
	case StatusBlocked:
		return "blocked"
	case StatusDone:
		return "done"
	default:
		return fmt.Sprintf("status(%d)", int32(s))
	}
}

// Kind discriminates the two work-unit types of the paper.
type Kind int

const (
	// KindULT is a yieldable, migratable unit with a private stack.
	KindULT Kind = iota
	// KindTasklet is an atomic, stackless unit.
	KindTasklet
)

// String returns the work-unit kind name.
func (k Kind) String() string {
	if k == KindTasklet {
		return "tasklet"
	}
	return "ult"
}

// Unit is the common interface of ULTs and Tasklets so pools can hold both.
type Unit interface {
	// Kind reports whether the unit is a ULT or a Tasklet.
	Kind() Kind
	// Status reports the unit's current lifecycle state.
	Status() Status
	// ID returns the unit's process-unique identifier.
	ID() uint64
}

// Errors reported by the substrate.
var (
	// ErrNotMigratable is returned when migrating a pinned ULT.
	ErrNotMigratable = errors.New("ult: work unit is not migratable")
	// ErrFreed is returned when operating on an already-freed unit.
	ErrFreed = errors.New("ult: work unit already freed")
	// ErrNotDone is returned when freeing a unit that has not completed.
	ErrNotDone = errors.New("ult: work unit has not completed")
)

var idCounter atomic.Uint64

func nextID() uint64 { return idCounter.Add(1) }

// Descriptor pooling. Freeing a work unit (the Argobots join-and-free
// discipline) returns its descriptor to a sync.Pool, so steady-state
// create/free cycles reuse descriptors instead of allocating — the
// paper's create/join hot path (Figures 2–3) runs allocation-free at the
// descriptor level.
//
// A descriptor may only be recycled once *both* parties are finished with
// it: the caller of Free, and the unit's own final act (the ULT
// goroutine's hand-back send, or the tasklet's completion publication),
// which can still be in flight when a status-polling joiner observes Done
// and frees. Each side calls release(); the second release performs the
// pool put. The pooling contract for callers is the same use-after-free
// rule the C libraries have: a handle must not be touched after the unit
// was freed (for the unified API: after Join returned).
var (
	ultPool     sync.Pool
	taskletPool sync.Pool
)

// releaseParties is the number of release() calls that must land before a
// descriptor can be recycled.
const releaseParties = 2

// Func is the body of a ULT. The self argument is the running ULT and is
// only valid for the duration of the call; it provides the cooperative
// operations (Yield, YieldTo, Suspend, ...).
type Func func(self *ULT)

// ULT is a user-level thread: an independent, yieldable, migratable work
// unit with its own private stack (the backing goroutine's stack).
//
// The zero value is not usable; create ULTs with New.
type ULT struct {
	id     uint64
	fn     Func
	status atomic.Int32

	// resume carries the control token from an executor to the ULT.
	resume chan struct{}
	// owner is the executor currently running the ULT. It is written by
	// Dispatch before the control token is handed over and read only by
	// the ULT goroutine while running, so it needs no extra locking.
	owner *Executor

	// done is closed when the body returns; non-ULT contexts join on it.
	done chan struct{}

	// started records whether the backing goroutine was launched.
	started bool

	freed      atomic.Bool
	migratable bool

	// err records a panic recovered from the body; read after Done.
	err error

	// label is an optional debugging name set by the emulations.
	label string

	// gen counts descriptor reuses. YieldTo hints capture it so a hint
	// that outlives its target's free+recycle is discarded instead of
	// hijacking the descriptor's next incarnation onto the wrong stream.
	gen atomic.Uint64

	// releases counts the parties (terminal hand-back, Free) that have
	// finished with the descriptor; the second one recycles it.
	releases atomic.Int32

	// noRecycle permanently exempts the descriptor from pooling. Set
	// when the unit is dispatched through a YieldTo hint: that dispatch
	// leaves the unit's pool entry stale, and the scheduler that later
	// pops the stale pointer depends on claim() failing against *this*
	// incarnation — reusing the descriptor would let the stale entry
	// claim (and misplace) the next one.
	noRecycle atomic.Bool
}

// New creates a ULT in the Created state. The backing goroutine is spawned
// immediately but stays parked until the first dispatch, so creation cost
// is one goroutine spawn plus channel allocations — deliberately heavier
// than a Tasklet, as in the paper. Descriptors of freed ULTs are reused
// from a pool (the resume channel rides along; the done channel is closed
// on completion and must be fresh).
func New(fn Func) *ULT {
	t, _ := ultPool.Get().(*ULT)
	if t == nil {
		t = &ULT{resume: make(chan struct{})}
	} else {
		t.gen.Add(1)
		t.releases.Store(0)
		t.freed.Store(false)
		t.owner = nil
		t.err = nil
		t.label = ""
	}
	t.id = nextID()
	t.fn = fn
	t.done = make(chan struct{})
	t.migratable = true
	t.status.Store(int32(StatusCreated))
	go t.main()
	t.started = true
	return t
}

// NewPinned creates a ULT that refuses migration between executors.
func NewPinned(fn Func) *ULT {
	t := New(fn)
	t.migratable = false
	return t
}

func (t *ULT) main() {
	<-t.resume
	t.runBody()
	t.finish()
}

// runBody executes the ULT body with panic containment: a panicking work
// unit must not take down the executor or the process; it completes with
// the panic recorded as its error. (Note: a panic thrown while the ULT
// is parked in Yield/Suspend cannot happen — the body only runs while it
// holds the control token.)
func (t *ULT) runBody() {
	defer func() {
		if r := recover(); r != nil {
			t.err = fmt.Errorf("ult: work unit %d panicked: %v", t.id, r)
		}
	}()
	t.fn(t)
}

// finish marks the ULT done and returns control to the owning executor.
// The release is the goroutine's last act: a joiner can observe Done and
// call Free while the hand-back send is still in flight, so the
// descriptor must not be recyclable before the send has completed.
func (t *ULT) finish() {
	owner := t.owner
	t.status.Store(int32(StatusDone))
	close(t.done)
	owner.handback <- handoff{t: t, st: StatusDone}
	t.release()
}

// release records that one of the two parties (terminal hand-back, Free)
// is done with the descriptor; the second one recycles it, unless the
// descriptor was hint-dispatched (see DispatchHint) and must die with
// its stale pool entry.
func (t *ULT) release() {
	if t.releases.Add(1) == releaseParties && !t.noRecycle.Load() {
		ultPool.Put(t)
	}
}

// Kind implements Unit.
func (t *ULT) Kind() Kind { return KindULT }

// ID implements Unit.
func (t *ULT) ID() uint64 { return t.id }

// Status implements Unit.
func (t *ULT) Status() Status { return Status(t.status.Load()) }

// Done reports whether the ULT body has returned.
func (t *ULT) Done() bool { return t.Status() == StatusDone }

// DoneChan exposes the completion channel for select-based joins (the
// mechanism the Go runtime model uses).
func (t *ULT) DoneChan() <-chan struct{} { return t.done }

// Err returns the panic recovered from the body, or nil. Only meaningful
// once the ULT is Done.
func (t *ULT) Err() error { return t.err }

// Migratable reports whether the ULT may move between executors.
func (t *ULT) Migratable() bool { return t.migratable }

// Owner returns the executor currently running the ULT. It is only
// meaningful while the ULT is Running (the value is stable between the
// dispatch and the next hand-back); runtimes use it to find the worker a
// spawning ULT is executing on.
func (t *ULT) Owner() *Executor { return t.owner }

// SetLabel attaches a debugging name to the ULT.
func (t *ULT) SetLabel(s string) { t.label = s }

// Label returns the debugging name (may be empty).
func (t *ULT) Label() string { return t.label }

// Freed reports whether Free has been called on the ULT.
func (t *ULT) Freed() bool { return t.freed.Load() }

// Free releases the ULT's resources. It mirrors the join-and-free step of
// Argobots' ABT_thread_free: the paper attributes part of Argobots' join
// cost to this extra bookkeeping, so emulations call it explicitly.
// Freeing a unit twice or freeing an unfinished unit is an error.
//
// Free returns the descriptor to the reuse pool (once the backing
// goroutine's hand-back has also completed). The caller must not touch
// the ULT — not even Status or DoneChan — after Free returns: the
// descriptor may already be serving a new work unit.
func (t *ULT) Free() error {
	if t.Status() != StatusDone {
		return ErrNotDone
	}
	if !t.freed.CompareAndSwap(false, true) {
		return ErrFreed
	}
	t.fn = nil
	t.release()
	return nil
}

// markReady transitions the unit to Ready. Valid from Created (first
// scheduling), Running (self-yield) and Blocked (resume).
func (t *ULT) markReady() { t.status.Store(int32(StatusReady)) }

// claim atomically takes a Ready unit for execution. It is the only
// Ready→Running transition, so a unit that is reachable from two places
// (a pool entry and a YieldTo hint) is dispatched exactly once.
func (t *ULT) claim() bool {
	return t.status.CompareAndSwap(int32(StatusReady), int32(StatusRunning))
}

// Yield cooperatively returns control to the owning executor and re-enters
// the Ready state. The executor decides where the ULT goes next (usually
// back into a pool). Must be called from inside the ULT body.
//
// The owner is captured before the status store: the moment the unit is
// Ready (or Blocked) a third party may claim/resume it and overwrite
// owner, and the hand-off must go to the executor that dispatched us.
func (t *ULT) Yield() {
	owner := t.owner
	t.status.Store(int32(StatusReady))
	owner.handback <- handoff{t: t, st: StatusReady}
	<-t.resume
}

// YieldTo yields and asks the executor to dispatch target next, bypassing
// the scheduler — the Argobots yield_to operation of Table I. If the
// target cannot be claimed (already running or done) the hint is dropped
// and the executor falls back to its scheduler.
func (t *ULT) YieldTo(target *ULT) {
	owner := t.owner
	owner.setHint(target)
	t.Yield()
}

// Suspend blocks the ULT: it returns control to the executor without
// becoming Ready. Another thread of control must call Resume (and
// re-enqueue the ULT) before it can run again. Must be called from inside
// the ULT body.
func (t *ULT) Suspend() {
	owner := t.owner
	t.status.Store(int32(StatusBlocked))
	owner.handback <- handoff{t: t, st: StatusBlocked}
	<-t.resume
}

// Resume transitions a Blocked ULT back to Ready so it can be re-enqueued.
// It reports whether the transition happened (false if the ULT was not
// blocked). The caller is responsible for putting the ULT back in a pool.
func (t *ULT) Resume() bool {
	return t.status.CompareAndSwap(int32(StatusBlocked), int32(StatusReady))
}

// TaskletFunc is the body of a Tasklet. It receives no self handle: a
// tasklet has no stack of its own and cannot yield or block.
type TaskletFunc func()

// Tasklet is an atomic, stackless work unit (Argobots Tasklet, Converse
// Message). It is executed inline by the executor's scheduling loop.
type Tasklet struct {
	id     uint64
	fn     TaskletFunc
	status atomic.Int32
	freed  atomic.Bool
	// err records a panic recovered from the body; read after Done.
	err error
	// doneCh is allocated lazily by DoneChan for callers that join on a
	// channel; plain status polling does not pay for it.
	doneCh chan struct{}
	// releases counts the parties (completion publication, Free) done
	// with the descriptor; the second one recycles it.
	releases atomic.Int32
}

// NewTasklet creates a tasklet in the Created state. Creation is at most
// one small allocation — the "lightest work unit available" of §VI — and
// none at all in steady state: freed tasklet descriptors are reused from
// a pool, so a create/free cycle (the Figure 2/5 hot path) does not touch
// the allocator.
func NewTasklet(fn TaskletFunc) *Tasklet {
	t, _ := taskletPool.Get().(*Tasklet)
	if t == nil {
		t = &Tasklet{}
	} else {
		t.releases.Store(0)
		t.freed.Store(false)
		t.err = nil
		t.doneCh = nil
	}
	t.id = nextID()
	t.fn = fn
	t.status.Store(int32(StatusCreated))
	return t
}

// NewTaskletWithDone creates a tasklet whose completion can be awaited on
// a channel. Slightly heavier than NewTasklet (one channel allocation).
func NewTaskletWithDone(fn TaskletFunc) *Tasklet {
	t := NewTasklet(fn)
	t.doneCh = make(chan struct{})
	return t
}

// Kind implements Unit.
func (t *Tasklet) Kind() Kind { return KindTasklet }

// ID implements Unit.
func (t *Tasklet) ID() uint64 { return t.id }

// Status implements Unit.
func (t *Tasklet) Status() Status { return Status(t.status.Load()) }

// Done reports whether the tasklet has executed.
func (t *Tasklet) Done() bool { return t.Status() == StatusDone }

// DoneChan returns a channel closed on completion. Only valid for tasklets
// created with NewTaskletWithDone; otherwise it returns nil.
func (t *Tasklet) DoneChan() <-chan struct{} { return t.doneCh }

// markReady transitions the tasklet to Ready (pool insertion).
func (t *Tasklet) markReady() { t.status.Store(int32(StatusReady)) }

// claim atomically takes a Ready tasklet for execution.
func (t *Tasklet) claim() bool {
	return t.status.CompareAndSwap(int32(StatusReady), int32(StatusRunning))
}

// run executes the tasklet body inline, with the same panic containment
// as ULT bodies.
func (t *Tasklet) run() {
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.err = fmt.Errorf("ult: tasklet %d panicked: %v", t.id, r)
			}
		}()
		t.fn()
	}()
	t.status.Store(int32(StatusDone))
	if t.doneCh != nil {
		close(t.doneCh)
	}
	t.release()
}

// release records that one of the two parties (completion, Free) is done
// with the descriptor; the second one recycles it. The executor-side
// release is the last statement of run, so a freer racing a
// status-polling join cannot recycle the descriptor out from under the
// completion publication.
func (t *Tasklet) release() {
	if t.releases.Add(1) == releaseParties {
		taskletPool.Put(t)
	}
}

// Err returns the panic recovered from the body, or nil. Only meaningful
// once the tasklet is Done.
func (t *Tasklet) Err() error { return t.err }

// Freed reports whether Free has been called.
func (t *Tasklet) Freed() bool { return t.freed.Load() }

// Free releases the tasklet, returning the descriptor to the reuse pool
// (once the completion publication has also finished). The caller must
// not touch the tasklet after Free returns: the descriptor may already be
// serving a new work unit.
func (t *Tasklet) Free() error {
	if t.Status() != StatusDone {
		return ErrNotDone
	}
	if !t.freed.CompareAndSwap(false, true) {
		return ErrFreed
	}
	t.fn = nil
	t.release()
	return nil
}

// MarkReady makes a freshly created unit eligible for dispatch. Emulations
// call it when inserting the unit into a pool.
func MarkReady(u Unit) {
	switch v := u.(type) {
	case *ULT:
		v.markReady()
	case *Tasklet:
		v.markReady()
	default:
		panic(fmt.Sprintf("ult: unknown unit type %T", u))
	}
}
