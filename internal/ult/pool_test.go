package ult

import (
	"runtime"
	"sync"
	"testing"
)

// Freed descriptors are recycled; a recycled descriptor must behave
// exactly like a fresh one (new ID, clean error, working lifecycle).
func TestTaskletDescriptorReuseStress(t *testing.T) {
	e := NewExecutor(0)
	var lastID uint64
	for i := 0; i < 10_000; i++ {
		tk := NewTasklet(func() {})
		if tk.ID() <= lastID {
			t.Fatalf("iteration %d: ID %d not fresh (last %d)", i, tk.ID(), lastID)
		}
		lastID = tk.ID()
		MarkReady(tk)
		if !e.RunTasklet(tk) {
			t.Fatalf("iteration %d: tasklet not claimable", i)
		}
		if tk.Err() != nil {
			t.Fatalf("iteration %d: stale error %v", i, tk.Err())
		}
		if err := tk.Free(); err != nil {
			t.Fatalf("iteration %d: Free: %v", i, err)
		}
	}
}

// ULT descriptors go through the full dispatch protocol before reuse; the
// release handshake must make the recycle safe even when the freeing side
// races the backing goroutine's final hand-back.
func TestULTDescriptorReuseStress(t *testing.T) {
	e := NewExecutor(0)
	for i := 0; i < 2_000; i++ {
		u := New(func(self *ULT) {})
		MarkReady(u)
		if res := e.Dispatch(u); res != DispatchDone {
			t.Fatalf("iteration %d: dispatch result %v", i, res)
		}
		if err := u.Free(); err != nil {
			t.Fatalf("iteration %d: Free: %v", i, err)
		}
	}
}

// Concurrent create/run/free cycles across goroutines share the pools;
// run under -race this shakes out unsynchronized descriptor resets.
func TestDescriptorPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := NewExecutor(w)
			for i := 0; i < 2_000; i++ {
				tk := NewTasklet(func() {})
				MarkReady(tk)
				e.RunTasklet(tk)
				if err := tk.Free(); err != nil {
					t.Errorf("tasklet free: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// A YieldTo hint set before its target was freed must not dispatch the
// descriptor's next incarnation: the generation check drops it.
func TestStaleHintDroppedAfterRecycle(t *testing.T) {
	runner := NewExecutor(0)
	target := NewExecutor(1)

	old := New(func(self *ULT) {})
	MarkReady(old)
	runner.Dispatch(old)
	// Hint at the completed unit, then free it so the descriptor enters
	// the pool.
	target.setHint(old)
	if err := old.Free(); err != nil {
		t.Fatalf("Free: %v", err)
	}

	// Hunt for the recycled descriptor: the pool is per-P, so a handful
	// of creations from this goroutine should hand it back.
	var recycled *ULT
	for i := 0; i < 100 && recycled == nil; i++ {
		u := New(func(self *ULT) {})
		if u == old {
			recycled = u
		}
		runtime.Gosched()
	}
	if recycled == nil {
		t.Skip("descriptor not recycled to this goroutine; nothing to check")
	}

	// The next incarnation is Ready in some pool; the stale hint must not
	// claim it.
	MarkReady(recycled)
	if _, _, ok := target.DispatchHint(); ok {
		t.Fatal("stale hint dispatched a recycled descriptor")
	}
	if recycled.Status() != StatusReady {
		t.Fatalf("recycled unit status %v, want Ready", recycled.Status())
	}
}
