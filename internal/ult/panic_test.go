package ult

import (
	"strings"
	"testing"
)

// Failure injection: panicking work units must complete with a recorded
// error instead of killing the executor or the process.

func TestPanickingULTIsContained(t *testing.T) {
	e := NewExecutor(0)
	bad := New(func(self *ULT) { panic("injected failure") })
	MarkReady(bad)
	if res := e.Dispatch(bad); res != DispatchDone {
		t.Fatalf("dispatch of panicking ULT = %v, want done", res)
	}
	if !bad.Done() {
		t.Fatal("panicking ULT not marked done")
	}
	if err := bad.Err(); err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("Err = %v, want recorded panic", err)
	}
	// The executor must still work.
	ok := New(func(self *ULT) {})
	MarkReady(ok)
	if res := e.Dispatch(ok); res != DispatchDone {
		t.Fatalf("executor broken after contained panic: %v", res)
	}
	if ok.Err() != nil {
		t.Fatalf("healthy ULT reports error %v", ok.Err())
	}
}

func TestPanickingULTAfterYield(t *testing.T) {
	e := NewExecutor(0)
	u := New(func(self *ULT) {
		self.Yield()
		panic("late failure")
	})
	MarkReady(u)
	if res := e.Dispatch(u); res != DispatchYielded {
		t.Fatalf("first dispatch = %v", res)
	}
	if res := e.Dispatch(u); res != DispatchDone {
		t.Fatalf("second dispatch = %v, want done", res)
	}
	if u.Err() == nil {
		t.Fatal("late panic not recorded")
	}
	// DoneChan closes even for failed units.
	select {
	case <-u.DoneChan():
	default:
		t.Fatal("DoneChan not closed after panic")
	}
}

func TestPanickingTaskletIsContained(t *testing.T) {
	e := NewExecutor(0)
	bad := NewTasklet(func() { panic(42) })
	MarkReady(bad)
	if !e.RunTasklet(bad) {
		t.Fatal("RunTasklet refused the tasklet")
	}
	if !bad.Done() {
		t.Fatal("panicking tasklet not done")
	}
	if err := bad.Err(); err == nil || !strings.Contains(err.Error(), "42") {
		t.Fatalf("Err = %v", err)
	}
	ok := NewTasklet(func() {})
	MarkReady(ok)
	if !e.RunTasklet(ok) {
		t.Fatal("executor broken after tasklet panic")
	}
}

func TestPanickingTaskletWithDoneChan(t *testing.T) {
	e := NewExecutor(0)
	tk := NewTaskletWithDone(func() { panic("boom") })
	MarkReady(tk)
	e.RunTasklet(tk)
	select {
	case <-tk.DoneChan():
	default:
		t.Fatal("DoneChan not closed after tasklet panic")
	}
}

func TestJoinersSeePanickedCompletion(t *testing.T) {
	// A joiner polling Done must be released by a panicked unit exactly
	// as by a successful one.
	e := NewExecutor(0)
	bad := New(func(self *ULT) { panic("x") })
	MarkReady(bad)
	joiner := New(func(self *ULT) {
		for !bad.Done() {
			self.Yield()
		}
	})
	MarkReady(joiner)
	for !joiner.Done() {
		e.Dispatch(joiner)
		e.Dispatch(bad)
	}
}
