package ult

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Executor is an execution stream: the OS-thread-like entity that runs work
// units one at a time. It corresponds to an Argobots Execution Stream, a
// Qthreads Worker, a MassiveThreads Worker, a Converse Processor, and a
// Go runtime "M"/thread in the paper's terminology (Table I).
//
// An Executor only provides the dispatch mechanics; the scheduling loop
// itself belongs to each runtime emulation, which decides where ready work
// comes from (private pool, shared pool, stealing, messages, ...).
type Executor struct {
	id int

	// handback receives control tokens from the ULT that is currently
	// running on this executor (on yield, suspend, or completion). The
	// message carries the disposition the ULT had at hand-off time:
	// classifying from the ULT's live status instead would race with a
	// third party that resumes and re-dispatches the unit before this
	// executor reads it.
	handback chan handoff

	// hintT/hintGen name the ULT that YieldTo requested to run next,
	// bypassing the scheduler, qualified by the target's descriptor
	// generation: descriptors are pooled and reused after Free, so a
	// stale hint must be discarded rather than claim the descriptor's
	// next incarnation onto this executor.
	//
	// Plain fields, not atomics: setHint is only called by the work unit
	// currently holding this executor's control token, and TakeHint only
	// by the scheduling loop after that unit handed the token back, so
	// the hand-off channel already orders every access.
	hintT   *ULT
	hintGen uint64

	// lockOSThread makes the executor goroutine bind to an OS thread,
	// used by the OpenMP emulation to make execution streams genuinely
	// heavy.
	lockOSThread bool

	stats ExecStats
}

// ExecStats counts scheduling events on one executor. All counters are
// monotonically increasing and safe to read concurrently.
type ExecStats struct {
	// Dispatches counts ULT dispatches (including re-dispatches after a
	// yield).
	Dispatches atomic.Uint64
	// TaskletRuns counts tasklets executed inline.
	TaskletRuns atomic.Uint64
	// Yields counts hand-backs where the ULT stayed Ready.
	Yields atomic.Uint64
	// Suspensions counts hand-backs where the ULT blocked.
	Suspensions atomic.Uint64
	// Completions counts ULTs that finished on this executor.
	Completions atomic.Uint64
	// HintHits counts YieldTo hints that were dispatched directly.
	HintHits atomic.Uint64
	// IdleSpins counts scheduler iterations that found no work.
	IdleSpins atomic.Uint64
	// Steals counts successful work steals performed by this executor.
	Steals atomic.Uint64
}

// handoff is the message a ULT sends its executor when returning control.
type handoff struct {
	t  *ULT
	st Status
}

// NewExecutor creates an execution stream identified by id. The identifier
// is only used for reporting; uniqueness is the caller's concern.
func NewExecutor(id int) *Executor {
	return &Executor{id: id, handback: make(chan handoff)}
}

// NewOSExecutor creates an executor that will pin its scheduling loop to an
// OS thread (used to emulate Pthreads-backed runtimes).
func NewOSExecutor(id int) *Executor {
	e := NewExecutor(id)
	e.lockOSThread = true
	return e
}

// ID returns the executor's identifier.
func (e *Executor) ID() int { return e.id }

// Stats exposes the executor's event counters.
func (e *Executor) Stats() *ExecStats { return &e.stats }

// PinIfRequested binds the calling goroutine to its OS thread when the
// executor was created with NewOSExecutor. Emulation loops call it first.
func (e *Executor) PinIfRequested() {
	if e.lockOSThread {
		runtime.LockOSThread()
	}
}

// setHint records a YieldTo target. A second YieldTo before the executor
// consumes the first simply overwrites it; the skipped target is still in
// its pool and loses nothing. Must be called while holding the
// executor's control token (YieldTo does).
func (e *Executor) setHint(t *ULT) {
	e.hintT = t
	e.hintGen = t.gen.Load()
}

// TakeHint removes and returns the pending YieldTo target, or nil. A hint
// whose target descriptor has been freed and recycled since the hint was
// set is dropped: the claim that follows would otherwise dispatch the
// descriptor's next incarnation here, bypassing any placement it was
// created with.
func (e *Executor) TakeHint() *ULT {
	t := e.hintT
	if t == nil {
		return nil
	}
	e.hintT = nil
	if t.gen.Load() != e.hintGen {
		return nil
	}
	return t
}

// DispatchResult describes how a dispatched ULT returned control.
type DispatchResult int

const (
	// DispatchDone means the ULT finished.
	DispatchDone DispatchResult = iota
	// DispatchYielded means the ULT yielded and is Ready; the caller
	// should put it back in a pool.
	DispatchYielded
	// DispatchBlocked means the ULT suspended itself; something else
	// will Resume and re-enqueue it.
	DispatchBlocked
	// DispatchSkipped means the unit could not be claimed (it was
	// already running elsewhere via a YieldTo hint, or already done).
	DispatchSkipped
)

// Dispatch claims and runs a ULT until it hands control back, and reports
// how it returned. A unit that cannot be claimed is skipped — this is how
// stale pool entries left behind by YieldTo are discarded.
func (e *Executor) Dispatch(t *ULT) DispatchResult {
	if !t.claim() {
		return DispatchSkipped
	}
	return e.dispatchClaimed(t)
}

// DispatchClaimed runs a ULT the caller has already claimed (via a
// successful Resume+claim or TakeHint+claim path). The incarnation's
// first dispatch binds a trampoline goroutine from the central idle pool
// (which starts the body directly); later dispatches hand the control
// token to the already-bound goroutine parked in Yield/Suspend.
func (e *Executor) dispatchClaimed(t *ULT) DispatchResult {
	t.owner = e
	e.stats.Dispatches.Add(1)
	if !t.bound {
		t.bound = true
		bind(t)
	} else {
		t.resume <- struct{}{}
	}
	back := <-e.handback
	if back.t != t {
		// The hand-off protocol guarantees the token returns from the
		// dispatched ULT; anything else is substrate corruption.
		panic("ult: hand-off protocol violation")
	}
	return e.classifyHandoff(back)
}

// classifyHandoff converts a hand-off message into a DispatchResult and
// updates the counters. The message status is authoritative: the ULT's
// live status may already have moved on (a blocked unit can be resumed
// and re-dispatched elsewhere before this executor processes the
// hand-off).
func (e *Executor) classifyHandoff(h handoff) DispatchResult {
	switch h.st {
	case StatusDone:
		e.stats.Completions.Add(1)
		return DispatchDone
	case StatusReady:
		e.stats.Yields.Add(1)
		return DispatchYielded
	case StatusBlocked:
		e.stats.Suspensions.Add(1)
		return DispatchBlocked
	default:
		panic("ult: hand-off in state " + h.st.String())
	}
}

// DispatchHint runs the pending YieldTo hint if there is one and it can be
// claimed. It returns the dispatched ULT's result and true, or false if no
// hint was runnable.
//
// A hint-claimed unit's pool entry (if it had one) goes stale: some
// scheduler will pop the same pointer later and rely on claim() failing
// to skip it. That skip is only sound while the pointer still refers to
// this incarnation, so the descriptor is marked non-recyclable — Free
// will release it to the garbage collector instead of the reuse pool.
// Units whose creator promised they never entered a pool (MarkUnpooled —
// the work-first creation hand-off) leave no stale entry and stay
// recyclable.
func (e *Executor) DispatchHint() (DispatchResult, *ULT, bool) {
	h := e.TakeHint()
	if h == nil {
		return 0, nil, false
	}
	if !h.claim() {
		return 0, nil, false
	}
	if !h.unpooled {
		h.noRecycle.Store(true)
	}
	e.stats.HintHits.Add(1)
	return e.dispatchClaimed(h), h, true
}

// RunTasklet executes a tasklet inline. Unclaimable tasklets are skipped.
func (e *Executor) RunTasklet(t *Tasklet) bool {
	if !t.claim() {
		return false
	}
	t.run(e)
	e.stats.TaskletRuns.Add(1)
	return true
}

// RunUnit dispatches a unit of either kind, putting yielded ULTs back via
// requeue. It returns the dispatch result (tasklets always report Done or
// Skipped).
func (e *Executor) RunUnit(u Unit, requeue func(*ULT)) DispatchResult {
	switch v := u.(type) {
	case *ULT:
		res := e.Dispatch(v)
		if res == DispatchYielded && requeue != nil {
			requeue(v)
		}
		return res
	case *Tasklet:
		if e.RunTasklet(v) {
			return DispatchDone
		}
		return DispatchSkipped
	default:
		panic("ult: unknown unit type")
	}
}

// NoteIdle records an empty scheduler iteration and yields the underlying
// OS thread so sibling executors can make progress.
func (e *Executor) NoteIdle() {
	e.stats.IdleSpins.Add(1)
	runtime.Gosched()
}

// Parker blocks idle executors until work arrives, replacing busy spinning
// for runtimes whose wait policy is passive (OMP_WAIT_POLICY=passive in
// §IX-B). The zero value is ready to use.
type Parker struct {
	mu     sync.Mutex
	cond   *sync.Cond
	seq    uint64
	closed bool
}

// NewParker returns an initialized Parker.
func NewParker() *Parker {
	p := &Parker{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Wake unblocks all currently parked executors.
func (p *Parker) Wake() {
	p.mu.Lock()
	p.seq++
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Close permanently wakes all waiters (shutdown).
func (p *Parker) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// Park blocks until the next Wake or Close after the call. It returns
// false if the parker is closed.
func (p *Parker) Park() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	seq := p.seq
	for seq == p.seq && !p.closed {
		p.cond.Wait()
	}
	return !p.closed
}

// Epoch returns the current wake generation. Capture it *before* checking
// for work, then ParkIf: a Wake that lands between the check and the park
// advances the generation and makes ParkIf return immediately, closing
// the lost-wakeup window.
func (p *Parker) Epoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq
}

// ParkIf blocks until a Wake newer than epoch (or Close). It returns
// false if the parker is closed.
func (p *Parker) ParkIf(epoch uint64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.seq == epoch && !p.closed {
		p.cond.Wait()
	}
	return !p.closed
}
