package ult

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestULTRunsToCompletion(t *testing.T) {
	e := NewExecutor(0)
	ran := false
	u := New(func(self *ULT) { ran = true })
	MarkReady(u)
	if res := e.Dispatch(u); res != DispatchDone {
		t.Fatalf("Dispatch = %v, want DispatchDone", res)
	}
	if !ran {
		t.Fatal("ULT body did not run")
	}
	if !u.Done() {
		t.Fatalf("status = %v, want done", u.Status())
	}
	select {
	case <-u.DoneChan():
	default:
		t.Fatal("DoneChan not closed after completion")
	}
}

func TestULTStatusLifecycle(t *testing.T) {
	u := New(func(self *ULT) {})
	if got := u.Status(); got != StatusCreated {
		t.Fatalf("fresh ULT status = %v, want created", got)
	}
	MarkReady(u)
	if got := u.Status(); got != StatusReady {
		t.Fatalf("after MarkReady status = %v, want ready", got)
	}
	e := NewExecutor(0)
	e.Dispatch(u)
	if got := u.Status(); got != StatusDone {
		t.Fatalf("after dispatch status = %v, want done", got)
	}
}

func TestDispatchSkipsUnclaimable(t *testing.T) {
	e := NewExecutor(0)
	u := New(func(self *ULT) {})
	// Never marked ready: claim must fail.
	if res := e.Dispatch(u); res != DispatchSkipped {
		t.Fatalf("Dispatch of created-only ULT = %v, want skipped", res)
	}
	MarkReady(u)
	if res := e.Dispatch(u); res != DispatchDone {
		t.Fatalf("Dispatch = %v, want done", res)
	}
	// Done units are also unclaimable.
	if res := e.Dispatch(u); res != DispatchSkipped {
		t.Fatalf("re-Dispatch of done ULT = %v, want skipped", res)
	}
}

func TestYieldReturnsControl(t *testing.T) {
	e := NewExecutor(0)
	steps := 0
	u := New(func(self *ULT) {
		steps++
		self.Yield()
		steps++
		self.Yield()
		steps++
	})
	MarkReady(u)
	for i := 0; i < 2; i++ {
		if res := e.Dispatch(u); res != DispatchYielded {
			t.Fatalf("dispatch %d = %v, want yielded", i, res)
		}
		if got := u.Status(); got != StatusReady {
			t.Fatalf("after yield status = %v, want ready", got)
		}
	}
	if res := e.Dispatch(u); res != DispatchDone {
		t.Fatalf("final dispatch = %v, want done", res)
	}
	if steps != 3 {
		t.Fatalf("steps = %d, want 3", steps)
	}
	if got := e.Stats().Yields.Load(); got != 2 {
		t.Fatalf("yield count = %d, want 2", got)
	}
}

func TestSuspendResume(t *testing.T) {
	e := NewExecutor(0)
	var phase atomic.Int32
	u := New(func(self *ULT) {
		phase.Store(1)
		self.Suspend()
		phase.Store(2)
	})
	MarkReady(u)
	if res := e.Dispatch(u); res != DispatchBlocked {
		t.Fatalf("Dispatch = %v, want blocked", res)
	}
	if got := phase.Load(); got != 1 {
		t.Fatalf("phase = %d, want 1", got)
	}
	if u.Status() != StatusBlocked {
		t.Fatalf("status = %v, want blocked", u.Status())
	}
	// A blocked unit cannot be claimed.
	if res := e.Dispatch(u); res != DispatchSkipped {
		t.Fatalf("Dispatch of blocked ULT = %v, want skipped", res)
	}
	if !u.Resume() {
		t.Fatal("Resume returned false on a blocked ULT")
	}
	if u.Resume() {
		t.Fatal("second Resume returned true")
	}
	if res := e.Dispatch(u); res != DispatchDone {
		t.Fatalf("post-resume dispatch = %v, want done", res)
	}
	if got := phase.Load(); got != 2 {
		t.Fatalf("phase = %d, want 2", got)
	}
}

func TestResumeOnRunnableIsNoop(t *testing.T) {
	u := New(func(self *ULT) {})
	if u.Resume() {
		t.Fatal("Resume on created ULT returned true")
	}
	MarkReady(u)
	if u.Resume() {
		t.Fatal("Resume on ready ULT returned true")
	}
}

func TestYieldToDispatchesTargetNext(t *testing.T) {
	e := NewExecutor(0)
	var order []string
	var b *ULT
	a := New(func(self *ULT) {
		order = append(order, "a1")
		self.YieldTo(b)
		order = append(order, "a2")
	})
	b = New(func(self *ULT) {
		order = append(order, "b")
	})
	MarkReady(a)
	MarkReady(b)

	if res := e.Dispatch(a); res != DispatchYielded {
		t.Fatalf("dispatch a = %v, want yielded", res)
	}
	res, got, ok := e.DispatchHint()
	if !ok {
		t.Fatal("DispatchHint found no hint after YieldTo")
	}
	if got != b {
		t.Fatalf("hint dispatched %v, want b", got.ID())
	}
	if res != DispatchDone {
		t.Fatalf("hint dispatch = %v, want done", res)
	}
	// The stale pool entry for b is now unclaimable.
	if res := e.Dispatch(b); res != DispatchSkipped {
		t.Fatalf("stale dispatch of b = %v, want skipped", res)
	}
	if res := e.Dispatch(a); res != DispatchDone {
		t.Fatalf("final dispatch of a = %v, want done", res)
	}
	want := []string{"a1", "b", "a2"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Stats().HintHits.Load() != 1 {
		t.Fatalf("hint hits = %d, want 1", e.Stats().HintHits.Load())
	}
}

func TestDispatchHintEmpty(t *testing.T) {
	e := NewExecutor(0)
	if _, _, ok := e.DispatchHint(); ok {
		t.Fatal("DispatchHint reported a hint on a fresh executor")
	}
}

func TestHintOnDoneTargetFallsThrough(t *testing.T) {
	e := NewExecutor(0)
	b := New(func(self *ULT) {})
	MarkReady(b)
	e.Dispatch(b) // b is done
	a := New(func(self *ULT) { self.YieldTo(b) })
	MarkReady(a)
	e.Dispatch(a)
	if _, _, ok := e.DispatchHint(); ok {
		t.Fatal("DispatchHint dispatched a done target")
	}
}

func TestMigrationBetweenExecutors(t *testing.T) {
	e1 := NewExecutor(1)
	e2 := NewExecutor(2)
	var owners []int
	u := New(func(self *ULT) {
		owners = append(owners, self.owner.ID())
		self.Yield()
		owners = append(owners, self.owner.ID())
	})
	MarkReady(u)
	if res := e1.Dispatch(u); res != DispatchYielded {
		t.Fatalf("dispatch on e1 = %v, want yielded", res)
	}
	if res := e2.Dispatch(u); res != DispatchDone {
		t.Fatalf("dispatch on e2 = %v, want done", res)
	}
	if owners[0] != 1 || owners[1] != 2 {
		t.Fatalf("owner sequence = %v, want [1 2]", owners)
	}
	if !u.Migratable() {
		t.Fatal("default ULT should be migratable")
	}
}

func TestNewPinned(t *testing.T) {
	u := NewPinned(func(self *ULT) {})
	if u.Migratable() {
		t.Fatal("pinned ULT reports migratable")
	}
	MarkReady(u)
	NewExecutor(0).Dispatch(u)
}

func TestFreeSemantics(t *testing.T) {
	e := NewExecutor(0)
	u := New(func(self *ULT) {})
	if err := u.Free(); err != ErrNotDone {
		t.Fatalf("Free before completion = %v, want ErrNotDone", err)
	}
	MarkReady(u)
	e.Dispatch(u)
	if err := u.Free(); err != nil {
		t.Fatalf("Free after completion = %v, want nil", err)
	}
	if !u.Freed() {
		t.Fatal("Freed() = false after Free")
	}
	if err := u.Free(); err != ErrFreed {
		t.Fatalf("double Free = %v, want ErrFreed", err)
	}
}

func TestTaskletRunsInline(t *testing.T) {
	e := NewExecutor(0)
	n := 0
	tk := NewTasklet(func() { n++ })
	if tk.Kind() != KindTasklet {
		t.Fatalf("kind = %v, want tasklet", tk.Kind())
	}
	// Not ready yet: must be skipped.
	if e.RunTasklet(tk) {
		t.Fatal("RunTasklet executed a created-only tasklet")
	}
	MarkReady(tk)
	if !e.RunTasklet(tk) {
		t.Fatal("RunTasklet failed on a ready tasklet")
	}
	if n != 1 {
		t.Fatalf("body ran %d times, want 1", n)
	}
	if !tk.Done() {
		t.Fatal("tasklet not done after run")
	}
	if e.RunTasklet(tk) {
		t.Fatal("RunTasklet re-executed a done tasklet")
	}
	if got := e.Stats().TaskletRuns.Load(); got != 1 {
		t.Fatalf("tasklet run count = %d, want 1", got)
	}
}

func TestTaskletWithDoneChannel(t *testing.T) {
	e := NewExecutor(0)
	tk := NewTaskletWithDone(func() {})
	MarkReady(tk)
	done := make(chan struct{})
	go func() {
		<-tk.DoneChan()
		close(done)
	}()
	e.RunTasklet(tk)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("DoneChan never closed")
	}
}

func TestTaskletWithoutDoneChannelIsNil(t *testing.T) {
	tk := NewTasklet(func() {})
	if tk.DoneChan() != nil {
		t.Fatal("plain tasklet allocated a done channel")
	}
}

func TestTaskletFree(t *testing.T) {
	e := NewExecutor(0)
	tk := NewTasklet(func() {})
	if err := tk.Free(); err != ErrNotDone {
		t.Fatalf("Free before run = %v, want ErrNotDone", err)
	}
	MarkReady(tk)
	e.RunTasklet(tk)
	if err := tk.Free(); err != nil {
		t.Fatalf("Free = %v, want nil", err)
	}
	if err := tk.Free(); err != ErrFreed {
		t.Fatalf("double Free = %v, want ErrFreed", err)
	}
}

func TestRunUnitRequeuesYielded(t *testing.T) {
	e := NewExecutor(0)
	var requeued []*ULT
	u := New(func(self *ULT) { self.Yield() })
	MarkReady(u)
	res := e.RunUnit(u, func(t *ULT) { requeued = append(requeued, t) })
	if res != DispatchYielded {
		t.Fatalf("RunUnit = %v, want yielded", res)
	}
	if len(requeued) != 1 || requeued[0] != u {
		t.Fatalf("requeued = %v, want [u]", requeued)
	}
	tk := NewTasklet(func() {})
	MarkReady(tk)
	if res := e.RunUnit(tk, nil); res != DispatchDone {
		t.Fatalf("RunUnit(tasklet) = %v, want done", res)
	}
}

func TestUnitIDsAreUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		var u Unit
		if i%2 == 0 {
			u = New(func(self *ULT) {})
		} else {
			u = NewTasklet(func() {})
		}
		if seen[u.ID()] {
			t.Fatalf("duplicate unit ID %d", u.ID())
		}
		seen[u.ID()] = true
	}
	// Drain the spawned goroutines.
	e := NewExecutor(0)
	for id := range seen {
		_ = id
	}
	_ = e
}

func TestStatusAndKindStrings(t *testing.T) {
	cases := map[Status]string{
		StatusCreated: "created",
		StatusReady:   "ready",
		StatusRunning: "running",
		StatusBlocked: "blocked",
		StatusDone:    "done",
		Status(99):    "status(99)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("Status(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
	if KindULT.String() != "ult" || KindTasklet.String() != "tasklet" {
		t.Fatal("Kind strings wrong")
	}
}

func TestLabel(t *testing.T) {
	u := New(func(self *ULT) {})
	u.SetLabel("worker-3")
	if u.Label() != "worker-3" {
		t.Fatalf("label = %q", u.Label())
	}
	MarkReady(u)
	NewExecutor(0).Dispatch(u)
}

func TestAdoptedPrimaryYieldAndDetach(t *testing.T) {
	e := NewExecutor(0)
	p := Adopt(e)
	if p.Status() != StatusRunning {
		t.Fatalf("adopted status = %v, want running", p.Status())
	}

	var mu sync.Mutex
	var order []string
	note := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }

	w := New(func(self *ULT) { note("worker") })
	MarkReady(w)

	queue := make(chan *ULT, 4)
	queue <- w
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		for {
			back, res := e.AwaitHandback()
			if res == DispatchDone {
				return // primary detached
			}
			if res == DispatchYielded {
				queue <- back
			}
			// Drain everything currently queued, ending by
			// redispatching whatever comes out (including the
			// primary, which unparks the test goroutine).
			for {
				next := <-queue
				if r := e.Dispatch(next); r == DispatchYielded {
					queue <- next
				} else if next == back && r == DispatchDone {
					return
				}
				if next == back {
					break
				}
			}
		}
	}()

	note("before-yield")
	p.Yield() // parks until the loop redispatches the primary
	note("after-yield")
	p.Detach()
	<-loopDone

	mu.Lock()
	defer mu.Unlock()
	want := []string{"before-yield", "worker", "after-yield"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if !p.Done() {
		t.Fatal("primary not done after Detach")
	}
}

func TestDetachPanicsWhenNotRunning(t *testing.T) {
	e := NewExecutor(0)
	p := Adopt(e)
	go func() {
		// Consume the handback so Detach in the main flow can finish.
		e.AwaitHandback()
	}()
	p.Detach()
	defer func() {
		if recover() == nil {
			t.Fatal("second Detach did not panic")
		}
	}()
	p.Detach()
}

func TestParkerWake(t *testing.T) {
	p := NewParker()
	released := make(chan bool, 1)
	go func() { released <- p.Park() }()
	// Give the goroutine time to park, then wake it.
	time.Sleep(10 * time.Millisecond)
	p.Wake()
	select {
	case ok := <-released:
		if !ok {
			t.Fatal("Park returned false on Wake")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Park never released")
	}
}

func TestParkerClose(t *testing.T) {
	p := NewParker()
	released := make(chan bool, 1)
	go func() { released <- p.Park() }()
	time.Sleep(10 * time.Millisecond)
	p.Close()
	select {
	case ok := <-released:
		if ok {
			t.Fatal("Park returned true on Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Park never released on Close")
	}
	// Parking after close returns immediately.
	if p.Park() {
		t.Fatal("Park after Close returned true")
	}
}

func TestConcurrentExecutorsIndependent(t *testing.T) {
	const n = 8
	var wg sync.WaitGroup
	var total atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			e := NewExecutor(id)
			for j := 0; j < 50; j++ {
				u := New(func(self *ULT) {
					total.Add(1)
					self.Yield()
					total.Add(1)
				})
				MarkReady(u)
				if res := e.Dispatch(u); res != DispatchYielded {
					t.Errorf("dispatch = %v, want yielded", res)
					return
				}
				if res := e.Dispatch(u); res != DispatchDone {
					t.Errorf("dispatch = %v, want done", res)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if got := total.Load(); got != n*50*2 {
		t.Fatalf("total = %d, want %d", got, n*50*2)
	}
}

func TestDispatchCountsStats(t *testing.T) {
	e := NewExecutor(0)
	u := New(func(self *ULT) {
		self.Yield()
		self.Suspend()
	})
	MarkReady(u)
	e.Dispatch(u) // yield
	e.Dispatch(u) // suspend
	u.Resume()
	e.Dispatch(u) // done
	s := e.Stats()
	if s.Dispatches.Load() != 3 {
		t.Fatalf("dispatches = %d, want 3", s.Dispatches.Load())
	}
	if s.Yields.Load() != 1 || s.Suspensions.Load() != 1 || s.Completions.Load() != 1 {
		t.Fatalf("yields/suspends/completions = %d/%d/%d, want 1/1/1",
			s.Yields.Load(), s.Suspensions.Load(), s.Completions.Load())
	}
}

func TestNoteIdleCounts(t *testing.T) {
	e := NewExecutor(0)
	e.NoteIdle()
	e.NoteIdle()
	if got := e.Stats().IdleSpins.Load(); got != 2 {
		t.Fatalf("idle spins = %d, want 2", got)
	}
}
