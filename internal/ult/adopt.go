package ult

// Adoption turns the calling goroutine into the *primary ULT* of an
// executor. This mirrors how the C libraries treat main(): in Argobots the
// caller of ABT_init becomes the primary ULT of Execution Stream 0, in
// MassiveThreads main runs as a ULT of worker 0 (which is what makes the
// work-first creation policy act on the main flow, §VI), and in Converse
// the main Processor runs the user code. Once adopted, the caller can
// Yield/YieldTo like any other ULT and the executor's scheduling loop runs
// whenever the caller is parked.

// Adopt converts the calling goroutine into the primary ULT of executor e
// and returns its handle. The executor's scheduling loop must begin with
// AwaitHandback, which blocks until the primary (or a later dispatch)
// hands control back.
//
// The returned ULT is pinned: runtimes never migrate the main flow unless
// they explicitly steal it (MassiveThreads work-first does; it then uses
// the normal dispatch path).
func Adopt(e *Executor) *ULT {
	p := &ULT{
		id:         nextID(),
		resume:     make(chan struct{}),
		migratable: true, // work-first runtimes move the main flow
		label:      "primary",
		// The adopted goroutine IS the body: every dispatch after a
		// yield must hand the token to it, never bind a pool goroutine.
		bound: true,
	}
	p.status.Store(int32(StatusRunning))
	p.owner = e
	return p
}

// AwaitHandback blocks until the currently running (adopted or dispatched)
// ULT hands control back and classifies the hand-off exactly like
// Dispatch. The executor loop of an adopted executor starts with this
// call: conceptually the primary ULT was "dispatched" by the runtime's
// initialization.
func (e *Executor) AwaitHandback() (*ULT, DispatchResult) {
	h := <-e.handback
	return h.t, e.classifyHandoff(h)
}

// Detach ends the adopted primary ULT's participation in the runtime: it
// marks the primary Done and returns control to the executor loop one last
// time, without parking the caller. The caller's goroutine continues as a
// plain goroutine; the executor loop observes a completed unit and can then
// act on its shutdown flag. Must be called from the adopted goroutine while
// it holds the control token (i.e., while it is Running).
//
// An adopted descriptor has no trampoline and never enters the reuse
// pool: Detach publishes completion exactly like finish but leaves the
// release protocol untouched.
func (t *ULT) Detach() {
	if t.Status() != StatusRunning {
		panic("ult: Detach on a ULT that is not running")
	}
	owner := t.owner
	t.status.Store(int32(StatusDone))
	t.comp.Store(t.gen.Load() + 1)
	t.sealWaiters(owner)
	owner.handback <- handoff{t: t, st: StatusDone}
}
