package ult

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// drainRecycle runs create→dispatch→free cycles until the descriptor
// economy reaches steady state, then reports the goroutine count.
func settledGoroutines() int {
	runtime.GC()
	runtime.Gosched()
	return runtime.NumGoroutine()
}

// The tentpole invariant: a steady-state create/dispatch/free cycle
// reuses the parked trampoline goroutine instead of spawning. The count
// may wobble by the handful of descriptors whose terminal release lags a
// beat behind Free, but it must not grow with the cycle count.
func TestTrampolineReuseKeepsGoroutinesFlat(t *testing.T) {
	e := NewExecutor(0)
	// Warm the freelist so the loop below runs recycled.
	for i := 0; i < 100; i++ {
		u := New(func(self *ULT) {})
		MarkReady(u)
		e.Dispatch(u)
		if err := u.Free(); err != nil {
			t.Fatalf("warmup free: %v", err)
		}
	}
	base := settledGoroutines()
	const cycles = 10_000
	for i := 0; i < cycles; i++ {
		u := New(func(self *ULT) {})
		MarkReady(u)
		if res := e.Dispatch(u); res != DispatchDone {
			t.Fatalf("cycle %d: dispatch = %v", i, res)
		}
		if err := u.Free(); err != nil {
			t.Fatalf("cycle %d: free: %v", i, err)
		}
	}
	after := settledGoroutines()
	if after > base+50 {
		t.Fatalf("goroutines grew from %d to %d across %d cycles", base, after, cycles)
	}
}

// A recycled descriptor's generation-counted completion word must answer
// for the new incarnation, not the old one.
func TestCompletionWordPerIncarnation(t *testing.T) {
	e := NewExecutor(0)
	u := New(func(self *ULT) {})
	MarkReady(u)
	e.Dispatch(u)
	if !u.Done() {
		t.Fatal("completed unit not Done")
	}
	if err := u.Free(); err != nil {
		t.Fatal(err)
	}
	// Hunt the descriptor out of the freelist.
	var recycled *ULT
	for i := 0; i < 100 && recycled == nil; i++ {
		v := New(func(self *ULT) {})
		if v == u {
			recycled = v
		}
		runtime.Gosched()
	}
	if recycled == nil {
		t.Skip("descriptor not recycled; nothing to check")
	}
	if recycled.Done() {
		t.Fatal("fresh incarnation reports Done from the previous one")
	}
	MarkReady(recycled)
	e.Dispatch(recycled)
	if !recycled.Done() {
		t.Fatal("second incarnation never published completion")
	}
}

// NewWith must run the package-level body with its argument, without the
// closure New would need.
func TestNewWithBody(t *testing.T) {
	e := NewExecutor(0)
	type payload struct{ hits int }
	p := &payload{}
	u := NewWith(func(self *ULT, arg any) {
		arg.(*payload).hits++
	}, p)
	MarkReady(u)
	if res := e.Dispatch(u); res != DispatchDone {
		t.Fatalf("dispatch = %v", res)
	}
	if p.hits != 1 {
		t.Fatalf("body ran %d times, want 1", p.hits)
	}
	if err := u.Free(); err != nil {
		t.Fatal(err)
	}
}

// SetWaiter's contract: a successful registration runs the waiter exactly
// once on completion; registration after completion fails; a second
// waiter is refused.
func TestSetWaiterLifecycle(t *testing.T) {
	e := NewExecutor(0)
	var fired atomic.Int32
	u := New(func(self *ULT) {})
	w := &DoneWaiter{Fn: func(owner *Executor) {
		if owner != e {
			panic("waiter ran with the wrong executor")
		}
		fired.Add(1)
	}}
	if !u.SetWaiter(w) {
		t.Fatal("SetWaiter failed on a fresh unit")
	}
	if u.SetWaiter(&DoneWaiter{Fn: func(*Executor) {}}) {
		t.Fatal("second SetWaiter won an occupied slot")
	}
	MarkReady(u)
	e.Dispatch(u)
	if fired.Load() != 1 {
		t.Fatalf("waiter fired %d times, want 1", fired.Load())
	}
	if u.SetWaiter(w) {
		t.Fatal("SetWaiter succeeded after completion")
	}
}

// The parking join end to end: a joiner suspends in the target's slot and
// the finishing unit resumes it.
func TestParkingJoinResumesJoiner(t *testing.T) {
	e := NewExecutor(0)
	queue := make(chan *ULT, 4)

	target := New(func(self *ULT) {})
	var joined atomic.Bool
	joiner := New(func(self *ULT) {
		if target.Done() {
			joined.Store(true)
			return
		}
		w := &DoneWaiter{Fn: func(*Executor) {
			ResumeAndRequeue(self, func(j *ULT) { queue <- j })
		}}
		if target.SetWaiter(w) {
			self.Suspend()
		}
		if !target.Done() {
			panic("resumed before target completion")
		}
		joined.Store(true)
	})
	MarkReady(joiner)
	MarkReady(target)

	if res := e.Dispatch(joiner); res != DispatchBlocked {
		t.Fatalf("joiner dispatch = %v, want blocked", res)
	}
	if res := e.Dispatch(target); res != DispatchDone {
		t.Fatalf("target dispatch = %v, want done", res)
	}
	select {
	case j := <-queue:
		if res := e.Dispatch(j); res != DispatchDone {
			t.Fatalf("redispatch = %v, want done", res)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("finishing unit never requeued the joiner")
	}
	if !joined.Load() {
		t.Fatal("joiner did not complete")
	}
}

// Tasklets carry the same park slot; the waiter runs on the executor that
// runs the tasklet inline.
func TestTaskletSetWaiter(t *testing.T) {
	e := NewExecutor(7)
	var fired atomic.Int32
	tk := NewTasklet(func() {})
	if !tk.SetWaiter(&DoneWaiter{Fn: func(owner *Executor) {
		if owner.ID() != 7 {
			panic("wrong executor")
		}
		fired.Add(1)
	}}) {
		t.Fatal("SetWaiter failed on a fresh tasklet")
	}
	MarkReady(tk)
	if !e.RunTasklet(tk) {
		t.Fatal("tasklet refused to run")
	}
	if fired.Load() != 1 {
		t.Fatalf("waiter fired %d times, want 1", fired.Load())
	}
}

// DoneChan after completion returns the shared pre-closed channel without
// allocating; before completion it allocates one channel that finish
// closes.
func TestDoneChanLazyAllocation(t *testing.T) {
	e := NewExecutor(0)
	u := New(func(self *ULT) {})
	ch := u.DoneChan()
	select {
	case <-ch:
		t.Fatal("waiter channel closed before completion")
	default:
	}
	MarkReady(u)
	e.Dispatch(u)
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter channel never closed")
	}
	// Post-completion calls share the sealed channel.
	if u.DoneChan() != u.DoneChan() {
		t.Fatal("post-completion DoneChan not stable")
	}
}

// An unpooled unit dispatched through a YieldTo hint must stay in the
// recycling economy: the hint leaves no stale pool entry behind, so the
// work-first creation pattern remains spawn-free.
func TestUnpooledHintKeepsDescriptorRecyclable(t *testing.T) {
	e := NewExecutor(0)
	for i := 0; i < 50; i++ {
		var target *ULT
		creator := New(func(self *ULT) {
			target = New(func(*ULT) {})
			target.MarkUnpooled()
			MarkReady(target)
			self.YieldTo(target)
		})
		MarkReady(creator)
		if res := e.Dispatch(creator); res != DispatchYielded {
			t.Fatalf("creator dispatch = %v", res)
		}
		if _, h, ok := e.DispatchHint(); !ok || h != target {
			t.Fatal("hint did not dispatch the unpooled target")
		}
		if target.noRecycle.Load() {
			t.Fatal("unpooled hint dispatch poisoned recycling")
		}
		e.Dispatch(creator) // run the creator to completion
		if err := target.Free(); err != nil {
			t.Fatalf("target free: %v", err)
		}
		if err := creator.Free(); err != nil {
			t.Fatalf("creator free: %v", err)
		}
	}
}

// A pooled unit dispatched through a hint must still be poisoned: its
// stale pool entry relies on claim() failing against this incarnation
// forever.
func TestPooledHintStillPoisonsRecycling(t *testing.T) {
	e := NewExecutor(0)
	var target *ULT
	creator := New(func(self *ULT) {
		target = New(func(*ULT) {})
		MarkReady(target) // conceptually pooled: no MarkUnpooled promise
		self.YieldTo(target)
	})
	MarkReady(creator)
	e.Dispatch(creator)
	if _, _, ok := e.DispatchHint(); !ok {
		t.Fatal("hint not dispatched")
	}
	if !target.noRecycle.Load() {
		t.Fatal("pooled hint dispatch did not poison recycling")
	}
	e.Dispatch(creator)
}
