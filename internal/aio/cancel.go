package aio

import (
	"errors"
	"runtime"
	"time"
)

// ErrCanceled is the early-wake sentinel of the cancelable waits:
// SleepCancel and AwaitCancel return it when the cancel signal fires
// before the wait's own completion. The serving layer maps it to a
// request's deadline/cancellation signal, so a parked handler stops
// waiting the moment its client's budget is gone instead of sleeping
// past it.
var ErrCanceled = errors.New("aio: wait canceled")

// SleepCancel is Sleep with cooperative cancellation: the calling work
// unit parks on the reactor's timer heap as usual, but if cancel closes
// before the timer fires it wakes immediately with ErrCanceled instead
// of sleeping out its budget. A nil cancel is exactly Sleep.
//
// Cancelable timers use a fresh, never-pooled descriptor. The cancel
// watcher is a second potential completer whose CAS can land
// arbitrarily late — after the waiter has observed the first
// completion and returned. On a pooled descriptor that stale CAS could
// land on a recycled incarnation (acquire resets the election word)
// and corrupt it; on a GC-owned one it is harmless. The timer heap's
// reference keeps the descriptor alive until its deadline pops or the
// watcher removes it, whichever is first.
func SleepCancel(p Parker, d time.Duration, cancel <-chan struct{}) error {
	if cancel == nil {
		Sleep(p, d)
		return nil
	}
	select {
	case <-cancel:
		return ErrCanceled
	default:
	}
	if d <= 0 {
		return nil
	}
	parker, yield := splitParker(p)
	o := &op{parker: parker, gen: 1, hidx: -1}
	g := o.gen
	Default().addTimer(o, time.Now().Add(d))
	stop := make(chan struct{})
	go func() {
		select {
		case <-cancel:
			o.complete(0, ErrCanceled)
			// Best-effort heap hygiene: if the timer is still queued,
			// drop it now rather than letting a long-deadline entry
			// linger. A timer already popped by the reactor completes
			// through the normal CAS election and loses.
			Default().removeTimer(o)
		case <-stop:
		}
	}()
	wait(o, g, yield)
	close(stop)
	return o.err
}

// AwaitCancel is Await with cooperative cancellation: it returns nil
// once done closes, ErrCanceled if cancel closes first. The parking
// path costs one watcher goroutine selecting over both signals — a
// single completer, so the pooled-descriptor protocol holds unchanged;
// poll mode selects inline. A nil cancel is exactly Await.
func AwaitCancel(p Parker, done, cancel <-chan struct{}) error {
	if cancel == nil {
		Await(p, done)
		return nil
	}
	select {
	case <-done:
		return nil
	default:
	}
	select {
	case <-cancel:
		return ErrCanceled
	default:
	}
	parker, yield := splitParker(p)
	if parker == nil {
		for {
			select {
			case <-done:
				return nil
			case <-cancel:
				return ErrCanceled
			default:
				if yield != nil {
					yield()
				} else {
					runtime.Gosched()
				}
			}
		}
	}
	o := acquire(parker)
	g := o.gen
	go func() {
		select {
		case <-done:
			o.complete(0, nil)
		case <-cancel:
			o.complete(0, ErrCanceled)
		}
	}()
	wait(o, g, nil)
	err := o.err
	release(o)
	return err
}
