//go:build !aio_epoll

package aio

import "time"

// Without a readiness engine the reactor retries pending I/O on a short
// tick: cheap enough to stay invisible next to real I/O latencies, tight
// enough that a ready descriptor waits at most half a millisecond.
const defaultPollEvery = 500 * time.Microsecond

// newPoller returns nil: the portable build has no readiness engine and
// relies on the deadline-attempt tick alone.
func newPoller(r *Reactor) poller { return nil }
