package aio

import (
	"container/heap"
	"sync"
	"time"
)

// Reactor is the poller: one goroutine owning a timer heap (sleeps,
// deadlines) and — when a readiness engine is compiled in — a set of
// pending I/O operations it attempts when their descriptors signal
// ready. Attempts are bounded by a short deadline budget, so a spurious
// readiness event costs at most that budget; one reactor serves every
// runtime in the process. Without a readiness engine the ios set stays
// empty (Read/Write use completer goroutines instead; see the package
// doc) and the reactor is purely a timer wheel.
//
// The reactor goroutine is started lazily by Default and runs for the
// life of the process: operations are rare enough at idle (the loop
// blocks on its wake channel when there is nothing pending) that tearing
// it down would only complicate the goroutine-leak story.
type Reactor struct {
	mu     sync.Mutex
	timers timerHeap
	ios    map[*op]struct{}
	wake   chan struct{}

	// pollEvery is the safety-net re-attempt period while I/O is pending
	// on the reactor: oneshot readiness engines can drop events across
	// re-arm races, so the loop re-attempts on this tick regardless.
	pollEvery time.Duration

	poller poller // readiness engine; nil without -tags aio_epoll
}

// poller is the optional readiness engine behind the portable tick: the
// epoll build registers descriptors and turns readiness events into
// reactor wakeups.
type poller interface {
	// arm registers interest in o's descriptor; returning false leaves
	// the op on the tick-based retry path.
	arm(o *op) bool
	// disarm drops a registration after the op completed.
	disarm(o *op)
}

var (
	defaultOnce    sync.Once
	defaultReactor *Reactor
)

// Default returns the process-wide reactor, starting it on first use.
func Default() *Reactor {
	defaultOnce.Do(func() {
		defaultReactor = newReactor()
		go defaultReactor.loop()
	})
	return defaultReactor
}

func newReactor() *Reactor {
	r := &Reactor{
		ios:       make(map[*op]struct{}),
		wake:      make(chan struct{}, 1),
		pollEvery: defaultPollEvery,
	}
	r.poller = newPoller(r)
	return r
}

// wakeup nudges the loop out of its wait; duplicate nudges coalesce.
func (r *Reactor) wakeup() {
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

// addTimer schedules o to complete at when.
func (r *Reactor) addTimer(o *op, when time.Time) {
	o.when = when
	r.mu.Lock()
	heap.Push(&r.timers, o)
	r.mu.Unlock()
	r.wakeup()
}

// removeTimer drops o from the heap if it is still queued — the
// cancel path's cleanup. Best-effort: an op the loop already popped
// (hidx == -1) is completing concurrently through the CAS election and
// needs no removal.
func (r *Reactor) removeTimer(o *op) {
	r.mu.Lock()
	if o.hidx >= 0 {
		heap.Remove(&r.timers, o.hidx)
	}
	r.mu.Unlock()
}

// reactorBudget bounds each attempt the reactor loop makes on a
// readiness-armed op: a descriptor epoll reported ready completes well
// inside it, a spurious event blocks the loop for at most this long.
const reactorBudget = time.Millisecond

// addIO schedules o's attempt on the reactor's readiness engine and
// reports whether it took ownership. The first attempt happens on the
// reactor (not inline here) so the issuing unit can park immediately;
// the fast-path cost of an already-ready descriptor is one reactor
// round-trip, which is what buys the executor back. false — no engine
// compiled in, or the descriptor could not be armed — means the caller
// must drive the op itself (a completer goroutine).
func (r *Reactor) addIO(o *op) bool {
	if r.poller == nil {
		return false
	}
	r.mu.Lock()
	r.ios[o] = struct{}{}
	r.mu.Unlock()
	if !r.poller.arm(o) {
		r.mu.Lock()
		delete(r.ios, o)
		r.mu.Unlock()
		return false
	}
	r.wakeup()
	return true
}

// loop is the reactor body: expire timers, attempt pending I/O, sleep
// until the next deadline / poll tick / wakeup.
func (r *Reactor) loop() {
	tm := time.NewTimer(time.Hour)
	defer tm.Stop()
	for {
		now := time.Now()
		r.expireTimers(now)
		r.attemptIO()

		d, block := r.nextWait(time.Now())
		if block {
			<-r.wake
			continue
		}
		if d <= 0 {
			continue
		}
		if !tm.Stop() {
			select {
			case <-tm.C:
			default:
			}
		}
		tm.Reset(d)
		select {
		case <-tm.C:
		case <-r.wake:
		}
	}
}

// nextWait computes how long the loop may sleep: until the next timer,
// capped by the poll tick when I/O is pending; block=true means nothing
// is pending at all and the loop should wait for a wakeup.
func (r *Reactor) nextWait(now time.Time) (d time.Duration, block bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	hasTimer := len(r.timers) > 0
	hasIO := len(r.ios) > 0
	if !hasTimer && !hasIO {
		return 0, true
	}
	if hasTimer {
		d = r.timers[0].when.Sub(now)
	}
	if hasIO {
		if !hasTimer || r.pollEvery < d {
			d = r.pollEvery
		}
	}
	if d < time.Microsecond {
		d = time.Microsecond
	}
	return d, false
}

// expireTimers completes every timer whose deadline has passed.
// Completion runs outside the lock: Unpark may spin briefly until the
// resumed-into pool's unit has parked, and the resumed unit may
// immediately issue another operation against this reactor.
func (r *Reactor) expireTimers(now time.Time) {
	var due []*op
	r.mu.Lock()
	for len(r.timers) > 0 && !r.timers[0].when.After(now) {
		due = append(due, heap.Pop(&r.timers).(*op))
	}
	r.mu.Unlock()
	for _, o := range due {
		o.complete(0, nil)
	}
}

// attemptIO retries every pending I/O op once; completed ops leave the
// set. Attempts run outside the lock for the same re-entrancy reason as
// timer completion.
func (r *Reactor) attemptIO() {
	r.mu.Lock()
	if len(r.ios) == 0 {
		r.mu.Unlock()
		return
	}
	pending := make([]*op, 0, len(r.ios))
	for o := range r.ios {
		pending = append(pending, o)
	}
	r.mu.Unlock()
	for _, o := range pending {
		done, n, err := o.attempt(reactorBudget)
		if !done {
			// Oneshot readiness engines need re-arming after a
			// still-not-ready attempt.
			r.poller.arm(o)
			continue
		}
		r.mu.Lock()
		delete(r.ios, o)
		r.mu.Unlock()
		r.poller.disarm(o)
		o.complete(n, err)
	}
}
