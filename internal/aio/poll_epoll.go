//go:build aio_epoll && linux

package aio

import (
	"sync"
	"syscall"
	"time"
)

// With epoll readiness events driving wakeups, the safety tick only
// backstops descriptors epoll could not register (no syscall.Conn, e.g.
// net.Pipe) and lost-event paranoia.
const defaultPollEvery = 2 * time.Millisecond

// epollPoller turns kernel readiness events into reactor wakeups. It is
// deliberately a hint engine, not a completion engine: events wake the
// reactor, which runs the same non-blocking deadline attempts as the
// portable build. That keeps every correctness property (single
// completer, generation counting, park/unpark ordering) identical across
// builds — the tag only changes how promptly the reactor notices
// readiness.
//
// Registrations are EPOLLONESHOT: each armed descriptor reports once,
// and a failed attempt re-arms it, so a persistently-ready-but-short
// descriptor cannot spin the event loop.
type epollPoller struct {
	r    *Reactor
	epfd int

	mu   sync.Mutex
	byFD map[int32]*op
	fds  map[*op]int32
}

// newPoller starts the epoll event loop, or returns nil (falling back to
// the tick) if epoll is unavailable.
func newPoller(r *Reactor) poller {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return nil
	}
	p := &epollPoller{
		r:    r,
		epfd: epfd,
		byFD: make(map[int32]*op),
		fds:  make(map[*op]int32),
	}
	go p.loop()
	return p
}

// arm registers interest in o's descriptor. Descriptors that cannot be
// reached (not a syscall.Conn, raw-control failure, or an fd already
// armed for another op) stay on the tick path.
func (p *epollPoller) arm(o *op) bool {
	sc, ok := o.conn.(syscall.Conn)
	if !ok {
		return false
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return false
	}
	var fd int32 = -1
	if err := rc.Control(func(u uintptr) { fd = int32(u) }); err != nil || fd < 0 {
		return false
	}

	events := uint32(syscall.EPOLLIN | syscall.EPOLLRDHUP)
	if o.mode == waitWrite {
		events = syscall.EPOLLOUT
	}
	ev := syscall.EpollEvent{Events: events | syscall.EPOLLONESHOT, Fd: fd}

	p.mu.Lock()
	defer p.mu.Unlock()
	if owner, busy := p.byFD[fd]; busy && owner != o {
		return false
	}
	ctl := syscall.EPOLL_CTL_ADD
	if _, rearm := p.fds[o]; rearm {
		ctl = syscall.EPOLL_CTL_MOD
	}
	if err := syscall.EpollCtl(p.epfd, ctl, int(fd), &ev); err != nil {
		if err != syscall.EEXIST {
			return false
		}
		if err := syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_MOD, int(fd), &ev); err != nil {
			return false
		}
	}
	p.byFD[fd] = o
	p.fds[o] = fd
	return true
}

// disarm drops o's registration after completion.
func (p *epollPoller) disarm(o *op) {
	p.mu.Lock()
	fd, ok := p.fds[o]
	if ok {
		delete(p.fds, o)
		delete(p.byFD, fd)
	}
	p.mu.Unlock()
	if ok {
		syscall.EpollCtl(p.epfd, syscall.EPOLL_CTL_DEL, int(fd), nil)
	}
}

// loop blocks in EpollWait and nudges the reactor on every event batch.
// A failed attempt re-arms in attemptIO via arm, so oneshot events never
// strand a descriptor.
func (p *epollPoller) loop() {
	events := make([]syscall.EpollEvent, 64)
	for {
		n, err := syscall.EpollWait(p.epfd, events, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return
		}
		if n > 0 {
			p.r.wakeup()
		}
	}
}
