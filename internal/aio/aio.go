package aio

import (
	"context"
	"io"
	"runtime"
	"time"
)

// Parker couples a blocking operation to the work unit that issued it.
//
// Park suspends the calling work unit until Unpark; it must be called by
// the unit itself, exactly once per issued operation, immediately after
// the operation is registered. Unpark resumes the unit into its home
// pool; the reactor calls it exactly once, after the operation's results
// are published. Unpark may be called from any goroutine and may spin
// briefly until the unit has actually parked (the ResumeAndRequeue
// contract), which is why the park must be unconditional: checking for
// completion first and skipping the park would leave the reactor
// spinning against a unit that never suspends.
type Parker interface {
	Park()
	Unpark()
}

// pollParker is the degradation for backends that cannot foreign-resume:
// Park yields the work unit once and the waiter loops on the completion
// word. Unpark is never called (ops carrying a pollParker complete
// without one).
type pollParker struct{ yield func() }

func (p pollParker) Park()   { p.yield() }
func (p pollParker) Unpark() {}

// PollParker adapts a yield function into the polling degradation: the
// waiting unit stays scheduled and yields between completion checks
// instead of parking. Use it where the backend denies resuming a unit
// from outside its scheduler.
func PollParker(yield func()) Parker { return pollParker{yield: yield} }

// wait blocks the issuing work unit until o completes. Parking mode
// parks exactly once — the reactor's completion store happens-before the
// Unpark that makes Park return, so the check afterwards is a safety
// net, not a spin. Poll mode (nil parker) yields between checks.
func wait(o *op, g uint64, yield func()) {
	if o.parker != nil {
		o.parker.Park()
		for !o.doneAt(g) {
			runtime.Gosched()
		}
		return
	}
	for !o.doneAt(g) {
		if yield != nil {
			yield()
		} else {
			runtime.Gosched()
		}
	}
}

// splitParker maps the public Parker to the op's parking field and the
// poll-mode yield: a PollParker never receives Unpark and its yield runs
// in the waiter's loop; a nil Parker polls with runtime.Gosched (callers
// outside any runtime, e.g. tests or the main thread).
func splitParker(p Parker) (parked Parker, yield func()) {
	switch v := p.(type) {
	case nil:
		return nil, nil
	case pollParker:
		return nil, v.yield
	default:
		return p, nil
	}
}

// Sleep blocks the calling work unit for at least d without occupying
// its executor: the unit parks and the reactor's timer heap resumes it.
func Sleep(p Parker, d time.Duration) {
	if d <= 0 {
		return
	}
	parker, yield := splitParker(p)
	o := acquire(parker)
	g := o.gen
	Default().addTimer(o, time.Now().Add(d))
	wait(o, g, yield)
	release(o)
}

// Deadline blocks the calling work unit until ctx is cancelled or its
// deadline passes, and returns ctx.Err(). A context that can never be
// done (Done() == nil) returns nil immediately rather than parking
// forever.
func Deadline(p Parker, ctx context.Context) error {
	if ctx.Done() == nil {
		return nil
	}
	parker, yield := splitParker(p)
	o := acquire(parker)
	g := o.gen
	stop := context.AfterFunc(ctx, func() {
		o.complete(0, ctx.Err())
	})
	defer stop()
	wait(o, g, yield)
	err := o.err
	release(o)
	return err
}

// Await blocks the calling work unit until done is closed (a Future's
// Done channel, typically). The wait costs one short-lived watcher
// goroutine in parking mode; poll mode selects inline.
func Await(p Parker, done <-chan struct{}) {
	select {
	case <-done:
		return
	default:
	}
	parker, yield := splitParker(p)
	if parker == nil {
		for {
			select {
			case <-done:
				return
			default:
				if yield != nil {
					yield()
				} else {
					runtime.Gosched()
				}
			}
		}
	}
	o := acquire(parker)
	g := o.gen
	go func() {
		<-done
		o.complete(0, nil)
	}()
	wait(o, g, nil)
	release(o)
}

// deadlineReader can be attempted in bounded quanta: with a read
// deadline a short interval out, Read returns os.ErrDeadlineExceeded
// after at most that interval instead of blocking indefinitely.
type deadlineReader interface {
	io.Reader
	SetReadDeadline(t time.Time) error
}

// deadlineWriter is the write-side twin.
type deadlineWriter interface {
	io.Writer
	SetWriteDeadline(t time.Time) error
}

// ioQuantum bounds each attempt a portable completer goroutine makes:
// long enough that a healthy descriptor almost always completes in one
// attempt, short enough that the loop re-checks the world at a human
// timescale.
const ioQuantum = 50 * time.Millisecond

// runAttempts drives o to completion from a completer goroutine — the
// portable path when no readiness engine is compiled in or the
// descriptor could not be armed. Each attempt is bounded by ioQuantum,
// so the goroutine revisits the loop instead of blocking forever in a
// single call.
func runAttempts(o *op) {
	for {
		done, n, err := o.attempt(ioQuantum)
		if done {
			o.complete(n, err)
			return
		}
	}
}

// Read reads from r into buf without occupying the calling unit's
// executor. Deadline-capable readers (net.Conn, os pipes) run on the
// epoll reactor when compiled in, otherwise on a completer goroutine
// attempting in deadline quanta; anything else is offloaded to a
// one-shot blocking goroutine. Like io.Reader, it returns after one
// successful read, which may be short.
func Read(p Parker, r io.Reader, buf []byte) (int, error) {
	parker, yield := splitParker(p)
	o := acquire(parker)
	g := o.gen
	if dr, ok := r.(deadlineReader); ok {
		o.attempt = func(budget time.Duration) (bool, int, error) {
			dr.SetReadDeadline(time.Now().Add(budget))
			n, err := dr.Read(buf)
			if n == 0 && isDeadline(err) {
				return false, 0, nil
			}
			dr.SetReadDeadline(time.Time{})
			if n > 0 && isDeadline(err) {
				err = nil
			}
			return true, n, err
		}
		o.conn = r
		o.mode = waitRead
		if !Default().addIO(o) {
			go runAttempts(o)
		}
	} else {
		go func() {
			n, err := r.Read(buf)
			o.complete(n, err)
		}()
	}
	wait(o, g, yield)
	n, err := o.n, o.err
	release(o)
	return n, err
}

// Write writes buf to w without occupying the calling unit's executor;
// it loops attempts until the whole buffer is written or an error
// surfaces, mirroring io.Writer's contract.
func Write(p Parker, w io.Writer, buf []byte) (int, error) {
	parker, yield := splitParker(p)
	o := acquire(parker)
	g := o.gen
	if dw, ok := w.(deadlineWriter); ok {
		written := 0
		o.attempt = func(budget time.Duration) (bool, int, error) {
			dw.SetWriteDeadline(time.Now().Add(budget))
			n, err := dw.Write(buf[written:])
			written += n
			if written < len(buf) && isDeadline(err) {
				return false, 0, nil
			}
			dw.SetWriteDeadline(time.Time{})
			if written == len(buf) && isDeadline(err) {
				err = nil
			}
			return true, written, err
		}
		o.conn = w
		o.mode = waitWrite
		if !Default().addIO(o) {
			go runAttempts(o)
		}
	} else {
		go func() {
			n, err := w.Write(buf)
			o.complete(n, err)
		}()
	}
	wait(o, g, yield)
	n, err := o.n, o.err
	release(o)
	return n, err
}

// isDeadline reports whether err is the deadline-exceeded sentinel (in
// either its os or net.Error clothing).
func isDeadline(err error) bool {
	if err == nil {
		return false
	}
	type timeouter interface{ Timeout() bool }
	if t, ok := err.(timeouter); ok && t.Timeout() {
		return true
	}
	return false
}
