// Package aio is a ULT-aware asynchronous I/O reactor: it lets a work
// unit sleep, await a deadline, read, write, or wait on a future by
// parking the *work unit* on a poller instead of blocking its executor.
//
// The blocking problem it solves is the one the serving layer exposes:
// the unified API makes create/join/yield cheap on every backend, but a
// handler that calls time.Sleep or a blocking Read occupies its executor
// for the full wait — one slow request caps a whole shard. aio moves the
// wait onto a single reactor goroutine: the issuing unit registers an
// operation, parks exactly like a parking join (the unit suspends and
// hands its executor back to the scheduler), and the reactor — timer
// heap for sleeps and deadlines, readiness polling over deadline-capable
// connections for I/O — completes the operation's generation-counted
// completion word and resumes the unit into its home pool through the
// same ResumeAndRequeue path the join machinery uses. Placement is
// preserved: the park/unpark pair is built by the backend at issue time
// and pushes the resumed unit to the pool it was running from.
//
// The package is substrate-agnostic: it knows nothing about executors or
// pools. A backend supplies a Parker — Park suspends the calling unit,
// Unpark (called once, from the reactor) resumes it — and everything
// else is stdlib. Backends that cannot foreign-resume a unit degrade to
// PollParker, the documented poll fallback: the unit stays scheduled and
// yields between completion-word checks, trading executor occupancy for
// correctness.
//
// Readiness detection for reads and writes is two-tier. The portable
// default drives each operation from a per-op completer goroutine that
// attempts the I/O in bounded deadline quanta (SetReadDeadline/
// SetWriteDeadline a few tens of milliseconds out, attempt, loop on
// timeout): the goroutine blocks in Go's runtime netpoller — the
// process-wide readiness engine every Go program already pays for —
// while the work unit itself stays parked off its executor, which is the
// resource the serving layer actually rations. (A deadline already in
// the past does NOT work as a non-blocking probe: both net.Pipe and the
// internal/poll fd path report deadline exceeded before attempting the
// transfer, so data is never consumed.) Build with -tags aio_epoll on
// Linux to move deadline-capable descriptors onto the reactor instead:
// epoll readiness events wake the reactor, which attempts the operation
// with a short deadline budget — a ready descriptor completes
// immediately, a spurious event costs at most the budget (see
// poll_epoll.go). Readers without deadline support (regular files,
// bytes.Buffer) are offloaded to a one-shot blocking goroutine; the
// unit still parks.
package aio

import (
	"context"
	"io"
	"runtime"
	"time"
)

// Parker couples a blocking operation to the work unit that issued it.
//
// Park suspends the calling work unit until Unpark; it must be called by
// the unit itself, exactly once per issued operation, immediately after
// the operation is registered. Unpark resumes the unit into its home
// pool; the reactor calls it exactly once, after the operation's results
// are published. Unpark may be called from any goroutine and may spin
// briefly until the unit has actually parked (the ResumeAndRequeue
// contract), which is why the park must be unconditional: checking for
// completion first and skipping the park would leave the reactor
// spinning against a unit that never suspends.
type Parker interface {
	Park()
	Unpark()
}

// pollParker is the degradation for backends that cannot foreign-resume:
// Park yields the work unit once and the waiter loops on the completion
// word. Unpark is never called (ops carrying a pollParker complete
// without one).
type pollParker struct{ yield func() }

func (p pollParker) Park()   { p.yield() }
func (p pollParker) Unpark() {}

// PollParker adapts a yield function into the polling degradation: the
// waiting unit stays scheduled and yields between completion checks
// instead of parking. Use it where the backend denies resuming a unit
// from outside its scheduler.
func PollParker(yield func()) Parker { return pollParker{yield: yield} }

// wait blocks the issuing work unit until o completes. Parking mode
// parks exactly once — the reactor's completion store happens-before the
// Unpark that makes Park return, so the check afterwards is a safety
// net, not a spin. Poll mode (nil parker) yields between checks.
func wait(o *op, g uint64, yield func()) {
	if o.parker != nil {
		o.parker.Park()
		for !o.doneAt(g) {
			runtime.Gosched()
		}
		return
	}
	for !o.doneAt(g) {
		if yield != nil {
			yield()
		} else {
			runtime.Gosched()
		}
	}
}

// splitParker maps the public Parker to the op's parking field and the
// poll-mode yield: a PollParker never receives Unpark and its yield runs
// in the waiter's loop; a nil Parker polls with runtime.Gosched (callers
// outside any runtime, e.g. tests or the main thread).
func splitParker(p Parker) (parked Parker, yield func()) {
	switch v := p.(type) {
	case nil:
		return nil, nil
	case pollParker:
		return nil, v.yield
	default:
		return p, nil
	}
}

// Sleep blocks the calling work unit for at least d without occupying
// its executor: the unit parks and the reactor's timer heap resumes it.
func Sleep(p Parker, d time.Duration) {
	if d <= 0 {
		return
	}
	parker, yield := splitParker(p)
	o := acquire(parker)
	g := o.gen
	Default().addTimer(o, time.Now().Add(d))
	wait(o, g, yield)
	release(o)
}

// Deadline blocks the calling work unit until ctx is cancelled or its
// deadline passes, and returns ctx.Err(). A context that can never be
// done (Done() == nil) returns nil immediately rather than parking
// forever.
func Deadline(p Parker, ctx context.Context) error {
	if ctx.Done() == nil {
		return nil
	}
	parker, yield := splitParker(p)
	o := acquire(parker)
	g := o.gen
	stop := context.AfterFunc(ctx, func() {
		o.complete(0, ctx.Err())
	})
	defer stop()
	wait(o, g, yield)
	err := o.err
	release(o)
	return err
}

// Await blocks the calling work unit until done is closed (a Future's
// Done channel, typically). The wait costs one short-lived watcher
// goroutine in parking mode; poll mode selects inline.
func Await(p Parker, done <-chan struct{}) {
	select {
	case <-done:
		return
	default:
	}
	parker, yield := splitParker(p)
	if parker == nil {
		for {
			select {
			case <-done:
				return
			default:
				if yield != nil {
					yield()
				} else {
					runtime.Gosched()
				}
			}
		}
	}
	o := acquire(parker)
	g := o.gen
	go func() {
		<-done
		o.complete(0, nil)
	}()
	wait(o, g, nil)
	release(o)
}

// deadlineReader can be attempted in bounded quanta: with a read
// deadline a short interval out, Read returns os.ErrDeadlineExceeded
// after at most that interval instead of blocking indefinitely.
type deadlineReader interface {
	io.Reader
	SetReadDeadline(t time.Time) error
}

// deadlineWriter is the write-side twin.
type deadlineWriter interface {
	io.Writer
	SetWriteDeadline(t time.Time) error
}

// ioQuantum bounds each attempt a portable completer goroutine makes:
// long enough that a healthy descriptor almost always completes in one
// attempt, short enough that the loop re-checks the world at a human
// timescale.
const ioQuantum = 50 * time.Millisecond

// runAttempts drives o to completion from a completer goroutine — the
// portable path when no readiness engine is compiled in or the
// descriptor could not be armed. Each attempt is bounded by ioQuantum,
// so the goroutine revisits the loop instead of blocking forever in a
// single call.
func runAttempts(o *op) {
	for {
		done, n, err := o.attempt(ioQuantum)
		if done {
			o.complete(n, err)
			return
		}
	}
}

// Read reads from r into buf without occupying the calling unit's
// executor. Deadline-capable readers (net.Conn, os pipes) run on the
// epoll reactor when compiled in, otherwise on a completer goroutine
// attempting in deadline quanta; anything else is offloaded to a
// one-shot blocking goroutine. Like io.Reader, it returns after one
// successful read, which may be short.
func Read(p Parker, r io.Reader, buf []byte) (int, error) {
	parker, yield := splitParker(p)
	o := acquire(parker)
	g := o.gen
	if dr, ok := r.(deadlineReader); ok {
		o.attempt = func(budget time.Duration) (bool, int, error) {
			dr.SetReadDeadline(time.Now().Add(budget))
			n, err := dr.Read(buf)
			if n == 0 && isDeadline(err) {
				return false, 0, nil
			}
			dr.SetReadDeadline(time.Time{})
			if n > 0 && isDeadline(err) {
				err = nil
			}
			return true, n, err
		}
		o.conn = r
		o.mode = waitRead
		if !Default().addIO(o) {
			go runAttempts(o)
		}
	} else {
		go func() {
			n, err := r.Read(buf)
			o.complete(n, err)
		}()
	}
	wait(o, g, yield)
	n, err := o.n, o.err
	release(o)
	return n, err
}

// Write writes buf to w without occupying the calling unit's executor;
// it loops attempts until the whole buffer is written or an error
// surfaces, mirroring io.Writer's contract.
func Write(p Parker, w io.Writer, buf []byte) (int, error) {
	parker, yield := splitParker(p)
	o := acquire(parker)
	g := o.gen
	if dw, ok := w.(deadlineWriter); ok {
		written := 0
		o.attempt = func(budget time.Duration) (bool, int, error) {
			dw.SetWriteDeadline(time.Now().Add(budget))
			n, err := dw.Write(buf[written:])
			written += n
			if written < len(buf) && isDeadline(err) {
				return false, 0, nil
			}
			dw.SetWriteDeadline(time.Time{})
			if written == len(buf) && isDeadline(err) {
				err = nil
			}
			return true, written, err
		}
		o.conn = w
		o.mode = waitWrite
		if !Default().addIO(o) {
			go runAttempts(o)
		}
	} else {
		go func() {
			n, err := w.Write(buf)
			o.complete(n, err)
		}()
	}
	wait(o, g, yield)
	n, err := o.n, o.err
	release(o)
	return n, err
}

// isDeadline reports whether err is the deadline-exceeded sentinel (in
// either its os or net.Error clothing).
func isDeadline(err error) bool {
	if err == nil {
		return false
	}
	type timeouter interface{ Timeout() bool }
	if t, ok := err.(timeouter); ok && t.Timeout() {
		return true
	}
	return false
}
