package aio

import (
	"bytes"
	"context"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chanParker is the test stand-in for a backend's park/unpark pair: Park
// blocks on a channel, Unpark sends into it. The unbuffered send mirrors
// the real contract — Unpark blocks until the waiter has actually
// parked.
type chanParker struct{ ch chan struct{} }

func newChanParker() *chanParker { return &chanParker{ch: make(chan struct{})} }
func (p *chanParker) Park()      { <-p.ch }
func (p *chanParker) Unpark()    { p.ch <- struct{}{} }

func TestSleepParks(t *testing.T) {
	start := time.Now()
	Sleep(newChanParker(), 5*time.Millisecond)
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want >= 5ms", d)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	Sleep(newChanParker(), 0)
	Sleep(nil, -time.Second)
}

func TestSleepNilParkerPolls(t *testing.T) {
	start := time.Now()
	Sleep(nil, 3*time.Millisecond)
	if d := time.Since(start); d < 3*time.Millisecond {
		t.Fatalf("Sleep returned after %v, want >= 3ms", d)
	}
}

func TestPollParkerYields(t *testing.T) {
	var yields atomic.Int64
	p := PollParker(func() { yields.Add(1) })
	Sleep(p, 2*time.Millisecond)
	if yields.Load() == 0 {
		t.Fatal("poll fallback never yielded")
	}
}

func TestManyConcurrentSleeps(t *testing.T) {
	const n = 64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			Sleep(newChanParker(), time.Duration(1+i%7)*time.Millisecond)
		}(i)
	}
	wg.Wait()
	// All sleeps overlap on the one reactor: far less than the 64-sleep
	// serial sum (~256ms).
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("concurrent sleeps took %v", d)
	}
}

func TestDeadlineCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(3 * time.Millisecond)
		cancel()
	}()
	if err := Deadline(newChanParker(), ctx); err != context.Canceled {
		t.Fatalf("Deadline = %v, want context.Canceled", err)
	}
}

func TestDeadlineTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	if err := Deadline(newChanParker(), ctx); err != context.DeadlineExceeded {
		t.Fatalf("Deadline = %v, want context.DeadlineExceeded", err)
	}
}

func TestDeadlineUncancellable(t *testing.T) {
	if err := Deadline(newChanParker(), context.Background()); err != nil {
		t.Fatalf("Deadline(Background) = %v, want nil immediately", err)
	}
}

func TestAwaitClosedChannel(t *testing.T) {
	done := make(chan struct{})
	close(done)
	Await(newChanParker(), done)
}

func TestAwaitParksUntilClose(t *testing.T) {
	done := make(chan struct{})
	go func() {
		time.Sleep(3 * time.Millisecond)
		close(done)
	}()
	start := time.Now()
	Await(newChanParker(), done)
	if d := time.Since(start); d < 3*time.Millisecond {
		t.Fatalf("Await returned after %v, want >= 3ms", d)
	}
}

func TestReadDeadlineConn(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		time.Sleep(3 * time.Millisecond)
		b.Write([]byte("ping"))
	}()
	buf := make([]byte, 16)
	n, err := Read(newChanParker(), a, buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("Read = %d %v %q", n, err, buf[:n])
	}
}

func TestWriteDeadlineConn(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	got := make(chan []byte, 1)
	go func() {
		time.Sleep(3 * time.Millisecond)
		buf := make([]byte, 16)
		n, _ := b.Read(buf)
		got <- buf[:n]
	}()
	n, err := Write(newChanParker(), a, []byte("pong"))
	if err != nil || n != 4 {
		t.Fatalf("Write = %d %v", n, err)
	}
	if string(<-got) != "pong" {
		t.Fatal("peer did not receive the write")
	}
}

func TestReadTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback: %v", err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		time.Sleep(3 * time.Millisecond)
		c.Write([]byte("tcp-hello"))
		c.Close()
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := make([]byte, 32)
	n, err := Read(newChanParker(), c, buf)
	if err != nil || string(buf[:n]) != "tcp-hello" {
		t.Fatalf("Read = %d %v %q", n, err, buf[:n])
	}
}

func TestReadOffloadsPlainReaders(t *testing.T) {
	buf := make([]byte, 8)
	n, err := Read(newChanParker(), strings.NewReader("plain"), buf)
	if err != nil || string(buf[:n]) != "plain" {
		t.Fatalf("Read = %d %v %q", n, err, buf[:n])
	}
}

func TestWriteOffloadsPlainWriters(t *testing.T) {
	var sink bytes.Buffer
	n, err := Write(newChanParker(), &sink, []byte("plain"))
	if err != nil || n != 5 || sink.String() != "plain" {
		t.Fatalf("Write = %d %v %q", n, err, sink.String())
	}
}

// TestOpGenerationsSurviveRecycling hammers sequential ops through the
// descriptor pool: a stale completion word from a previous incarnation
// satisfying a fresh wait would hang or mis-order the loop.
func TestOpGenerationsSurviveRecycling(t *testing.T) {
	for i := 0; i < 500; i++ {
		Sleep(newChanParker(), 10*time.Microsecond)
	}
}
