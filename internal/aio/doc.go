// Package aio is a ULT-aware asynchronous I/O reactor: it lets a work
// unit sleep, await a deadline, read, write, or wait on a future by
// parking the *work unit* on a poller instead of blocking its executor.
//
// The blocking problem it solves is the one the serving layer exposes:
// the unified API makes create/join/yield cheap on every backend, but a
// handler that calls time.Sleep or a blocking Read occupies its executor
// for the full wait — one slow request caps a whole shard. aio moves the
// wait onto a single reactor goroutine: the issuing unit registers an
// operation, parks exactly like a parking join (the unit suspends and
// hands its executor back to the scheduler), and the reactor — timer
// heap for sleeps and deadlines, readiness polling over deadline-capable
// connections for I/O — completes the operation's generation-counted
// completion word and resumes the unit into its home pool through the
// same ResumeAndRequeue path the join machinery uses. Placement is
// preserved: the park/unpark pair is built by the backend at issue time
// and pushes the resumed unit to the pool it was running from.
//
// The package is substrate-agnostic: it knows nothing about executors or
// pools. A backend supplies a Parker — Park suspends the calling unit,
// Unpark (called once, from the reactor) resumes it — and everything
// else is stdlib. Backends that cannot foreign-resume a unit degrade to
// PollParker, the documented poll fallback: the unit stays scheduled and
// yields between completion-word checks, trading executor occupancy for
// correctness.
//
// Readiness detection for reads and writes is two-tier. The portable
// default drives each operation from a per-op completer goroutine that
// attempts the I/O in bounded deadline quanta (SetReadDeadline/
// SetWriteDeadline a few tens of milliseconds out, attempt, loop on
// timeout): the goroutine blocks in Go's runtime netpoller — the
// process-wide readiness engine every Go program already pays for —
// while the work unit itself stays parked off its executor, which is the
// resource the serving layer actually rations. (A deadline already in
// the past does NOT work as a non-blocking probe: both net.Pipe and the
// internal/poll fd path report deadline exceeded before attempting the
// transfer, so data is never consumed.) Build with -tags aio_epoll on
// Linux to move deadline-capable descriptors onto the reactor instead:
// epoll readiness events wake the reactor, which attempts the operation
// with a short deadline budget — a ready descriptor completes
// immediately, a spurious event costs at most the budget (see
// poll_epoll.go). Readers without deadline support (regular files,
// bytes.Buffer) are offloaded to a one-shot blocking goroutine; the
// unit still parks.
//
// # Observability
//
// A park is invisible to the executor by design, so the serving layer
// accounts for it explicitly: a request whose handler is parked here
// still counts in the shard's InFlight gauge but is also counted in
// IOParked, and executor occupancy is their difference (see the
// admission-accounting invariant in package serve). That split is why
// graceful drain watches total InFlight rather than queue depth — a
// shard with an empty queue and ten parked sleepers is not drained —
// and why the lwt_serve_ioparked gauge exists on /metrics: queue depth
// alone cannot distinguish a saturated shard from one that is merely
// waiting on I/O. Parks also appear in the flight recorder as
// trace.KindPark intervals on the serve lanes, spanning suspension to
// resume.
package aio
