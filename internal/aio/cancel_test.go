package aio

import (
	"sync"
	"testing"
	"time"
)

func TestSleepCancelNilIsSleep(t *testing.T) {
	start := time.Now()
	if err := SleepCancel(newChanParker(), 3*time.Millisecond, nil); err != nil {
		t.Fatalf("SleepCancel(nil cancel) = %v, want nil", err)
	}
	if d := time.Since(start); d < 3*time.Millisecond {
		t.Fatalf("SleepCancel returned after %v, want >= 3ms", d)
	}
}

func TestSleepCancelWakesEarly(t *testing.T) {
	cancel := make(chan struct{})
	go func() {
		time.Sleep(2 * time.Millisecond)
		close(cancel)
	}()
	start := time.Now()
	err := SleepCancel(newChanParker(), 5*time.Second, cancel)
	if err != ErrCanceled {
		t.Fatalf("SleepCancel = %v, want ErrCanceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("SleepCancel woke after %v, want well under its 5s budget", d)
	}
}

func TestSleepCancelAlreadyCanceled(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	start := time.Now()
	if err := SleepCancel(newChanParker(), time.Second, cancel); err != ErrCanceled {
		t.Fatalf("SleepCancel = %v, want ErrCanceled", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("pre-canceled SleepCancel took %v, want immediate", d)
	}
}

func TestSleepCancelTimerWins(t *testing.T) {
	cancel := make(chan struct{})
	defer close(cancel)
	start := time.Now()
	if err := SleepCancel(newChanParker(), 3*time.Millisecond, cancel); err != nil {
		t.Fatalf("SleepCancel = %v, want nil (timer fired first)", err)
	}
	if d := time.Since(start); d < 3*time.Millisecond {
		t.Fatalf("SleepCancel returned after %v, want >= 3ms", d)
	}
}

func TestSleepCancelPollMode(t *testing.T) {
	cancel := make(chan struct{})
	go func() {
		time.Sleep(2 * time.Millisecond)
		close(cancel)
	}()
	err := SleepCancel(PollParker(func() { time.Sleep(100 * time.Microsecond) }), 5*time.Second, cancel)
	if err != ErrCanceled {
		t.Fatalf("poll-mode SleepCancel = %v, want ErrCanceled", err)
	}
}

func TestAwaitCancelDone(t *testing.T) {
	done := make(chan struct{})
	cancel := make(chan struct{})
	defer close(cancel)
	go func() {
		time.Sleep(2 * time.Millisecond)
		close(done)
	}()
	if err := AwaitCancel(newChanParker(), done, cancel); err != nil {
		t.Fatalf("AwaitCancel = %v, want nil", err)
	}
}

func TestAwaitCancelCanceled(t *testing.T) {
	done := make(chan struct{}) // never closes
	cancel := make(chan struct{})
	go func() {
		time.Sleep(2 * time.Millisecond)
		close(cancel)
	}()
	if err := AwaitCancel(newChanParker(), done, cancel); err != ErrCanceled {
		t.Fatalf("AwaitCancel = %v, want ErrCanceled", err)
	}
}

func TestAwaitCancelPollMode(t *testing.T) {
	done := make(chan struct{})
	cancel := make(chan struct{})
	go func() {
		time.Sleep(time.Millisecond)
		close(cancel)
	}()
	err := AwaitCancel(PollParker(func() {}), done, cancel)
	if err != ErrCanceled {
		t.Fatalf("poll-mode AwaitCancel = %v, want ErrCanceled", err)
	}
}

// TestSleepCancelHammer races cancellation against short timers from
// many goroutines — under -race this is the regression net for the
// unpooled-descriptor design: a stale completer from a canceled sleep
// must never corrupt another wait's pooled descriptor.
func TestSleepCancelHammer(t *testing.T) {
	const workers = 16
	const rounds = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				cancel := make(chan struct{})
				go func() {
					time.Sleep(time.Duration(i%3) * 100 * time.Microsecond)
					close(cancel)
				}()
				_ = SleepCancel(newChanParker(), time.Duration(i%5)*200*time.Microsecond, cancel)
				// Interleave pooled, non-cancelable waits so a stale
				// completer would have pooled descriptors to corrupt.
				Sleep(newChanParker(), 50*time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
}
