package aio

import (
	"sync"
	"sync/atomic"
	"time"
)

// waitMode classifies what an op is waiting for, for the readiness
// engines that need to know the direction of interest.
type waitMode uint8

const (
	waitNone waitMode = iota
	waitRead
	waitWrite
)

// op is one pending operation. Descriptors are pooled; the completion
// word is generation-counted exactly like the ult package's DoneAt so a
// recycled descriptor can never satisfy a stale wait: comp holds the
// generation at which the op completed, and each reuse bumps gen first.
//
// Ownership protocol: the issuing unit owns every plain field until the
// op is published (to the reactor under its mutex, or into a completion
// closure); after that exactly one completer calls complete() — the
// state CAS elects it — which publishes n/err, stores the completion
// word, and unparks. The issuer reclaims ownership when it observes
// doneAt(gen) and only then releases the descriptor back to the pool.
type op struct {
	parker Parker // nil in poll mode: completion without unpark

	gen  uint64        // bumped on each acquire (owner-side, pre-publication)
	comp atomic.Uint64 // == gen when this incarnation completed

	state atomic.Uint32 // 0 pending, 1 completed (single-completer election)

	// Results, published before the completion store.
	n   int
	err error

	// Timer waits: position in the reactor's heap.
	when time.Time
	hidx int

	// I/O waits: the bounded attempt (deadline set budget out) retried
	// until it reports done — by the reactor when a readiness engine is
	// armed, by a completer goroutine otherwise — plus the
	// descriptor/mode for epoll registration.
	attempt func(budget time.Duration) (done bool, n int, err error)
	conn    any
	mode    waitMode
}

// doneAt reports whether the incarnation issued at generation g has
// completed.
func (o *op) doneAt(g uint64) bool { return o.comp.Load() == g }

// complete publishes the result and wakes the waiter. The CAS elects a
// single completer; late or duplicate completions (a cancelled timer, a
// racing readiness path) are dropped. The parker is copied out before
// the completion store: after that store the waiter may observe
// completion, release the descriptor, and recycle it.
func (o *op) complete(n int, err error) {
	if !o.state.CompareAndSwap(0, 1) {
		return
	}
	p := o.parker
	o.n, o.err = n, err
	o.comp.Store(o.gen)
	if p != nil {
		p.Unpark()
	}
}

var opPool = sync.Pool{New: func() any { return new(op) }}

// acquire takes a pooled descriptor and opens a fresh incarnation.
func acquire(parker Parker) *op {
	o := opPool.Get().(*op)
	o.gen++
	o.state.Store(0)
	o.parker = parker
	o.n, o.err = 0, nil
	o.hidx = -1
	o.attempt = nil
	o.conn = nil
	o.mode = waitNone
	return o
}

// release recycles a descriptor whose completion the issuer has
// observed.
func release(o *op) {
	o.parker = nil
	o.attempt = nil
	o.conn = nil
	opPool.Put(o)
}

// timerHeap is a min-heap of timer ops ordered by deadline.
type timerHeap []*op

func (h timerHeap) Len() int           { return len(h) }
func (h timerHeap) Less(i, j int) bool { return h[i].when.Before(h[j].when) }
func (h timerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].hidx = i; h[j].hidx = j }
func (h *timerHeap) Push(x any)        { o := x.(*op); o.hidx = len(*h); *h = append(*h, o) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	o := old[n-1]
	old[n-1] = nil
	o.hidx = -1
	*h = old[:n-1]
	return o
}
