package omplwt

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// lwtBackends are the backends the directive layer is exercised on.
func lwtBackends() []string {
	return []string{"argobots", "qthreads", "massivethreads", "go"}
}

func TestNewUnknownBackend(t *testing.T) {
	if _, err := New("bogus", 2); err == nil {
		t.Fatal("New accepted an unknown backend")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew("bogus", 2)
}

func TestParallelForStaticCovers(t *testing.T) {
	for _, b := range lwtBackends() {
		b := b
		t.Run(b, func(t *testing.T) {
			rt := MustNew(b, 4)
			defer rt.Close()
			const n = 500
			hits := make([]atomic.Int32, n)
			rt.ParallelFor(n, Static, 0, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("iteration %d ran %d times", i, got)
				}
			}
		})
	}
}

func TestParallelForDynamicAndGuided(t *testing.T) {
	for _, sched := range []Schedule{Dynamic, Guided} {
		sched := sched
		t.Run(sched.String(), func(t *testing.T) {
			rt := MustNew("argobots", 4)
			defer rt.Close()
			const n = 1000
			hits := make([]atomic.Int32, n)
			rt.ParallelFor(n, sched, 16, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("%v: iteration %d ran %d times", sched, i, got)
				}
			}
		})
	}
}

func TestParallelForEmptyAndTiny(t *testing.T) {
	rt := MustNew("argobots", 4)
	defer rt.Close()
	rt.ParallelFor(0, Static, 0, func(i int) { t.Error("body ran for n=0") })
	var count atomic.Int32
	rt.ParallelFor(2, Static, 0, func(i int) { count.Add(1) }) // fewer iters than threads
	if count.Load() != 2 {
		t.Fatalf("ran %d iterations, want 2", count.Load())
	}
}

func TestParallelTeamAndSingle(t *testing.T) {
	rt := MustNew("qthreads", 3)
	defer rt.Close()
	var members atomic.Int32
	var singles atomic.Int32
	rt.Parallel(func(rg *Region, tid int) {
		members.Add(1)
		rg.Single(tid, func() { singles.Add(1) })
	})
	if members.Load() != 3 {
		t.Fatalf("members = %d, want 3", members.Load())
	}
	if singles.Load() != 1 {
		t.Fatalf("single ran %d times, want 1", singles.Load())
	}
}

func TestTasksInSingleRegion(t *testing.T) {
	for _, b := range lwtBackends() {
		b := b
		t.Run(b, func(t *testing.T) {
			rt := MustNew(b, 4)
			defer rt.Close()
			const n = 200
			var ran atomic.Int64
			rt.Parallel(func(rg *Region, tid int) {
				rg.Single(tid, func() {
					for i := 0; i < n; i++ {
						rg.Task(func() { ran.Add(1) })
					}
				})
			})
			// The region's implicit barrier drains all tasks.
			if ran.Load() != n {
				t.Fatalf("ran = %d, want %d", ran.Load(), n)
			}
		})
	}
}

func TestTaskWaitInsideRegion(t *testing.T) {
	rt := MustNew("argobots", 4)
	defer rt.Close()
	var before atomic.Int64
	var waitedOK atomic.Bool
	rt.Parallel(func(rg *Region, tid int) {
		if tid != 0 {
			return
		}
		for i := 0; i < 50; i++ {
			rg.Task(func() { before.Add(1) })
		}
		rg.TaskWait()
		waitedOK.Store(before.Load() == 50)
	})
	if !waitedOK.Load() {
		t.Fatal("TaskWait returned before all tasks completed")
	}
}

func TestNestedTasksViaTaskULT(t *testing.T) {
	rt := MustNew("argobots", 4)
	defer rt.Close()
	const parents, children = 10, 4
	var leaves atomic.Int64
	rt.Parallel(func(rg *Region, tid int) {
		rg.Single(tid, func() {
			for p := 0; p < parents; p++ {
				rg.TaskULT(func(child *Region) {
					for c := 0; c < children; c++ {
						child.Task(func() { leaves.Add(1) })
					}
				})
			}
		})
	})
	if got := leaves.Load(); got != parents*children {
		t.Fatalf("leaves = %d, want %d", got, parents*children)
	}
}

func TestNestedParallelFor(t *testing.T) {
	// Listing 3 on an LWT substrate: work units, not thread teams.
	rt := MustNew("argobots", 4)
	defer rt.Close()
	const outer, inner = 10, 20
	hits := make([]atomic.Int32, outer*inner)
	rt.Parallel(func(rg *Region, tid int) {
		lo, hi := staticChunk(outer, rt.NumThreads(), tid)
		for i := lo; i < hi; i++ {
			i := i
			rg.ParallelFor(inner, Static, 0, func(j int) {
				hits[i*inner+j].Add(1)
			})
		}
	})
	for idx := range hits {
		if got := hits[idx].Load(); got != 1 {
			t.Fatalf("cell %d ran %d times", idx, got)
		}
	}
}

func TestCriticalMutualExclusion(t *testing.T) {
	rt := MustNew("massivethreads", 4)
	defer rt.Close()
	counter := 0 // protected only by Critical
	rt.ParallelFor(400, Dynamic, 8, func(i int) {
		rg := &Region{rt: rt}
		rg.Critical(func() { counter++ })
	})
	if counter != 400 {
		t.Fatalf("counter = %d, want 400 (lost updates)", counter)
	}
}

func TestReduceSum(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		rt := MustNew("argobots", 4)
		const n = 1000
		got := rt.ReduceFloat64(n, sched, 32,
			func(a, b float64) float64 { return a + b }, 0,
			func(i int) float64 { return float64(i) })
		rt.Close()
		want := float64(n*(n-1)) / 2
		if got != want {
			t.Fatalf("%v: sum = %v, want %v", sched, got, want)
		}
	}
}

func TestReduceMax(t *testing.T) {
	rt := MustNew("go", 3)
	defer rt.Close()
	got := rt.ReduceFloat64(257, Static, 0,
		func(a, b float64) float64 {
			if a > b {
				return a
			}
			return b
		}, -1,
		func(i int) float64 { return float64((i * 37) % 257) })
	if got != 256 {
		t.Fatalf("max = %v, want 256", got)
	}
}

func TestReduceEmpty(t *testing.T) {
	rt := MustNew("argobots", 2)
	defer rt.Close()
	got := rt.ReduceFloat64(0, Static, 0,
		func(a, b float64) float64 { return a + b }, 0,
		func(i int) float64 { return 1 })
	if got != 0 {
		t.Fatalf("empty reduce = %v, want the identity", got)
	}
}

func TestTaskLoopCoversRange(t *testing.T) {
	rt := MustNew("argobots", 4)
	defer rt.Close()
	const n = 333
	hits := make([]atomic.Int32, n)
	rt.Parallel(func(rg *Region, tid int) {
		rg.Single(tid, func() {
			rg.TaskLoop(n, 16, func(i int) { hits[i].Add(1) })
		})
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("iteration %d ran %d times", i, got)
		}
	}
}

func TestTaskLoopGrainsizeFloor(t *testing.T) {
	rt := MustNew("go", 2)
	defer rt.Close()
	var count atomic.Int32
	rt.Parallel(func(rg *Region, tid int) {
		rg.Single(tid, func() {
			rg.TaskLoop(10, 0, func(i int) { count.Add(1) }) // grainsize clamps to 1
		})
	})
	if count.Load() != 10 {
		t.Fatalf("ran %d iterations, want 10", count.Load())
	}
}

func TestScheduleStrings(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Fatal("schedule strings wrong")
	}
}

func TestBackendNameExposed(t *testing.T) {
	rt := MustNew("qthreads", 2)
	defer rt.Close()
	if rt.Backend() != "qthreads" {
		t.Fatalf("Backend = %q", rt.Backend())
	}
	if rt.NumThreads() != 2 {
		t.Fatalf("NumThreads = %d", rt.NumThreads())
	}
}

// Property: for any n, threads and schedule, every iteration executes
// exactly once (the fundamental parallel-for contract).
func TestParallelForExactlyOnceProperty(t *testing.T) {
	rt := MustNew("argobots", 3)
	defer rt.Close()
	f := func(n16 uint16, sched8, chunk8 uint8) bool {
		n := int(n16 % 300)
		sched := Schedule(sched8 % 3)
		chunk := int(chunk8%16) + 1
		hits := make([]atomic.Int32, n)
		rt.ParallelFor(n, sched, chunk, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if hits[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// The directive layer and the Pthreads-style runtime agree on results:
// a cross-check that omplwt is a faithful OpenMP model.
func TestAgreesWithCore(t *testing.T) {
	rt := MustNew("argobots", 4)
	defer rt.Close()
	r := core.MustNew("qthreads", 4)
	defer r.Finalize()

	const n = 300
	a := make([]float64, n)
	rt.ParallelFor(n, Guided, 4, func(i int) { a[i] = float64(i) * 2 })

	b := make([]float64, n)
	hs := make([]core.Handle, 0, 4)
	for t2 := 0; t2 < 4; t2++ {
		lo, hi := staticChunk(n, 4, t2)
		hs = append(hs, r.ULTCreate(func(core.Ctx) {
			for i := lo; i < hi; i++ {
				b[i] = float64(i) * 2
			}
		}))
	}
	for _, h := range hs {
		r.Join(h)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("disagreement at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
