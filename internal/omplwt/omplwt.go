// Package omplwt is the paper's conclusion made code: "we plan to design
// and implement a common API for the LWT libraries. This API could be
// placed under several high-level PMs, such as OpenMP or OmpSs, that are
// currently implemented on top of Pthreads" (§X). It implements the
// OpenMP programming model's core directives — parallel for (with static,
// dynamic and guided schedules), single-region task parallelism,
// taskwait, reductions and critical sections — on top of the unified LWT
// API instead of OS threads, over any registered backend.
//
// The benchmark suite compares this layer on an LWT backend against the
// Pthreads-style OpenMP emulation (internal/openmp), reproducing the
// paper's headline: directive-level programs gain from an LWT substrate
// precisely in task and nested parallelism.
package omplwt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// Schedule selects the loop iteration-distribution policy, mirroring
// OpenMP's schedule clause.
type Schedule int

const (
	// Static divides iterations into one contiguous chunk per thread.
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks on demand.
	Dynamic
	// Guided hands out exponentially shrinking chunks on demand.
	Guided
)

// String names the schedule as the clause would.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("schedule(%d)", int(s))
	}
}

// Runtime is an OpenMP-style programming layer over one LWT backend.
type Runtime struct {
	r       *core.Runtime
	nthread int
}

// Config parameterizes Open; it is the unified API's configuration, so
// the directive layer inherits scheduler selection and capability
// negotiation. The team size of parallel constructs is the executor
// count.
type Config = core.Config

// Open builds the layer over a unified-API backend opened from the
// configuration (the v2 constructor). The team size is the resolved
// executor count — not the backend's placement-domain count, which can
// be smaller (Qthreads' per-node layout has one shepherd over many
// workers).
func Open(cfg Config) (*Runtime, error) {
	r, err := core.Open(cfg)
	if err != nil {
		return nil, err
	}
	return &Runtime{r: r, nthread: r.Config().Executors}, nil
}

// MustOpen is Open for known-good configurations; it panics on error.
func MustOpen(cfg Config) *Runtime {
	rt, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// New builds the layer over the named unified-API backend with nthreads
// executors.
//
// Deprecated: New is the v1 positional constructor kept for migration;
// use Open.
func New(backend string, nthreads int) (*Runtime, error) {
	return Open(Config{Backend: backend, Executors: nthreads})
}

// MustNew is New for known-good arguments; it panics on error.
//
// Deprecated: use MustOpen.
func MustNew(backend string, nthreads int) *Runtime {
	rt, err := New(backend, nthreads)
	if err != nil {
		panic(err)
	}
	return rt
}

// Close finalizes the underlying backend.
func (rt *Runtime) Close() { rt.r.Finalize() }

// NumThreads reports the team size used by parallel constructs.
func (rt *Runtime) NumThreads() int { return rt.nthread }

// Backend reports the underlying backend name.
func (rt *Runtime) Backend() string { return rt.r.Name() }

// taskList tracks spawned tasks for TaskWait; all members of one
// parallel region share it.
type taskList struct {
	mu sync.Mutex
	hs []core.Handle
}

func (tl *taskList) add(h core.Handle) {
	tl.mu.Lock()
	tl.hs = append(tl.hs, h)
	tl.mu.Unlock()
}

func (tl *taskList) drain() []core.Handle {
	tl.mu.Lock()
	hs := tl.hs
	tl.hs = nil
	tl.mu.Unlock()
	return hs
}

// Region is the per-construct context handed to parallel bodies; it
// plays the role TeamCtx plays in the Pthreads-style runtime, but its
// "threads" are ULTs.
type Region struct {
	rt    *Runtime
	ctx   core.Ctx // nil when the body runs on the master (outside a ULT)
	tasks *taskList
}

// addTask records a spawned task for TaskWait.
func (rg *Region) addTask(h core.Handle) {
	if rg.tasks == nil {
		rg.tasks = &taskList{}
	}
	rg.tasks.add(h)
}

// drainTasks removes and returns all recorded tasks.
func (rg *Region) drainTasks() []core.Handle {
	if rg.tasks == nil {
		return nil
	}
	return rg.tasks.drain()
}

// join waits on a handle with the right mechanism for the caller's
// context (cooperative inside a ULT, backend join on the master).
func (rg *Region) join(h core.Handle) {
	if rg.ctx != nil {
		rg.ctx.Join(h)
		return
	}
	rg.rt.r.Join(h)
}

// spawn creates a ULT from the correct context.
func (rg *Region) spawn(fn func(core.Ctx)) core.Handle {
	if rg.ctx != nil {
		return rg.ctx.ULTCreate(fn)
	}
	return rg.rt.r.ULTCreate(fn)
}

// spawnLeaf creates a tasklet (or fallback) from the correct context.
func (rg *Region) spawnLeaf(fn func()) core.Handle {
	if rg.ctx != nil {
		return rg.ctx.TaskletCreate(fn)
	}
	return rg.rt.r.TaskletCreate(fn)
}

// spawnLeafBulk creates one leaf work unit per body. From the master it
// rides the unified bulk-creation path — one batched pool insertion and
// one executor wake for the whole team — which is what removes the
// per-iteration submission cost from the loop and task figures; inside a
// ULT it degrades to a create loop (nested creations are already local
// to the running executor).
func (rg *Region) spawnLeafBulk(fns []func()) []core.Handle {
	if rg.ctx == nil {
		return rg.rt.r.TaskletCreateBulk(fns)
	}
	hs := make([]core.Handle, len(fns))
	for i, fn := range fns {
		hs[i] = rg.ctx.TaskletCreate(fn)
	}
	return hs
}

// ParallelFor is #pragma omp parallel for with the given schedule: the
// iteration space [0, n) is executed by a team of NumThreads work units.
// The call returns when every iteration has completed (the implicit
// barrier).
func (rt *Runtime) ParallelFor(n int, sched Schedule, chunkSize int, body func(i int)) {
	root := &Region{rt: rt}
	root.parallelFor(n, sched, chunkSize, body)
}

func (rg *Region) parallelFor(n int, sched Schedule, chunkSize int, body func(i int)) {
	rt := rg.rt
	k := rt.nthread
	if n <= 0 {
		return
	}
	switch sched {
	case Static:
		fns := make([]func(), 0, k)
		for t := 0; t < k; t++ {
			lo, hi := staticChunk(n, k, t)
			if lo == hi {
				continue
			}
			fns = append(fns, func() {
				for i := lo; i < hi; i++ {
					body(i)
				}
			})
		}
		for _, h := range rg.spawnLeafBulk(fns) {
			rg.join(h)
		}
	case Dynamic, Guided:
		if chunkSize < 1 {
			chunkSize = 1
		}
		var next atomic.Int64
		remaining := func() int { return n - int(next.Load()) }
		worker := func() {
			for {
				size := chunkSize
				if sched == Guided {
					// Guided: chunk ~ remaining / team, never below
					// chunkSize.
					if g := remaining() / k; g > size {
						size = g
					}
				}
				lo := int(next.Add(int64(size))) - size
				if lo >= n {
					return
				}
				hi := lo + size
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					body(i)
				}
			}
		}
		fns := make([]func(), k)
		for t := range fns {
			fns[t] = worker
		}
		for _, h := range rg.spawnLeafBulk(fns) {
			rg.join(h)
		}
	default:
		panic("omplwt: unknown schedule")
	}
}

// staticChunk computes thread t's half-open share of n items.
func staticChunk(n, k, t int) (lo, hi int) {
	base, rem := n/k, n%k
	lo = t*base + min(t, rem)
	hi = lo + base
	if t < rem {
		hi++
	}
	return
}

// Parallel is #pragma omp parallel: body runs once per team member, each
// as a ULT; tid identifies the member. The implicit barrier (join of all
// members, then of their outstanding tasks) ends the region.
func (rt *Runtime) Parallel(body func(rg *Region, tid int)) {
	shared := &taskList{}
	fns := make([]func(core.Ctx), rt.nthread)
	for t := 0; t < rt.nthread; t++ {
		t := t
		fns[t] = func(c core.Ctx) {
			body(&Region{rt: rt, ctx: c, tasks: shared}, t)
		}
	}
	// The team spawns as one bulk creation: a single batched pool
	// insertion and one executor wake open the region.
	hs := rt.r.ULTCreateBulk(fns)
	for _, h := range hs {
		rt.r.Join(h)
	}
	// Region-end task drain. Tasks may spawn further tasks into the
	// shared list, so drain until it stays empty.
	for {
		ts := shared.drain()
		if len(ts) == 0 {
			return
		}
		for _, h := range ts {
			rt.r.Join(h)
		}
	}
}

// Single is #pragma omp single: body runs only for tid 0. (The unified
// layer has no thread identity beyond the Parallel construct, so the
// caller passes its tid.)
func (rg *Region) Single(tid int, body func()) {
	if tid == 0 {
		body()
	}
}

// Task is #pragma omp task: fn becomes a tasklet on the LWT backend and
// is tracked for TaskWait. Unlike the Pthreads-style runtimes there is
// no cutoff: LWT work units are cheap enough that the paper's libraries
// queue everything (§VII-B's cutoff exists because OS-thread runtimes
// cannot afford that).
func (rg *Region) Task(fn func()) {
	rg.addTask(rg.spawnLeaf(fn))
}

// TaskULT is a task that itself needs to yield or spawn (a stackful
// task); it costs a ULT instead of a tasklet. The child region shares
// this region's task list, so tasks it spawns are covered by the same
// TaskWait/region barrier.
func (rg *Region) TaskULT(fn func(rg *Region)) {
	rt := rg.rt
	tasks := rg.tasks
	rg.addTask(rg.spawn(func(c core.Ctx) {
		fn(&Region{rt: rt, ctx: c, tasks: tasks})
	}))
}

// TaskWait is #pragma omp taskwait: joins every task spawned through
// this region so far.
func (rg *Region) TaskWait() {
	for _, h := range rg.drainTasks() {
		rg.join(h)
	}
}

// ParallelFor runs a nested parallel for from inside a region — the
// Listing 3 inner pragma, which on an LWT substrate creates work units
// rather than thread teams (the mechanism behind Figure 7's 48–130×).
func (rg *Region) ParallelFor(n int, sched Schedule, chunkSize int, body func(i int)) {
	rg.parallelFor(n, sched, chunkSize, body)
}

// TaskLoop is #pragma omp taskloop (OpenMP 4.5, the specification the
// paper cites): the iteration space is divided into grainsize-sized
// chunks, each spawned as a task, and all are joined before returning.
func (rg *Region) TaskLoop(n, grainsize int, body func(i int)) {
	if grainsize < 1 {
		grainsize = 1
	}
	fns := make([]func(), 0, (n+grainsize-1)/grainsize)
	for lo := 0; lo < n; lo += grainsize {
		lo := lo
		hi := lo + grainsize
		if hi > n {
			hi = n
		}
		fns = append(fns, func() {
			for i := lo; i < hi; i++ {
				body(i)
			}
		})
	}
	for _, h := range rg.spawnLeafBulk(fns) {
		rg.join(h)
	}
}

// Critical executes fn under the runtime's global critical-section lock
// (#pragma omp critical with the anonymous name).
type criticalState struct{ mu sync.Mutex }

var critical criticalState

// Critical runs fn in the (process-global) anonymous critical section.
func (rg *Region) Critical(fn func()) {
	critical.mu.Lock()
	defer critical.mu.Unlock()
	fn()
}

// ReduceFloat64 is a parallel-for with a float64 reduction clause
// (reduction(op:var)): each team work unit accumulates into a private
// partial; the partials are combined with op at the implicit barrier.
// op must be associative and identity its neutral element.
func (rt *Runtime) ReduceFloat64(n int, sched Schedule, chunkSize int,
	op func(a, b float64) float64, identity float64,
	body func(i int) float64) float64 {

	k := rt.nthread
	partials := make([]float64, k)
	for i := range partials {
		partials[i] = identity
	}
	rg := &Region{rt: rt}
	if n > 0 {
		switch sched {
		case Static:
			fns := make([]func(), 0, k)
			for t := 0; t < k; t++ {
				t := t
				lo, hi := staticChunk(n, k, t)
				if lo == hi {
					continue
				}
				fns = append(fns, func() {
					acc := identity
					for i := lo; i < hi; i++ {
						acc = op(acc, body(i))
					}
					partials[t] = acc
				})
			}
			for _, h := range rg.spawnLeafBulk(fns) {
				rg.join(h)
			}
		case Dynamic, Guided:
			if chunkSize < 1 {
				chunkSize = 1
			}
			var next atomic.Int64
			fns := make([]func(), k)
			for t := 0; t < k; t++ {
				t := t
				fns[t] = func() {
					acc := identity
					for {
						size := chunkSize
						if sched == Guided {
							if g := (n - int(next.Load())) / k; g > size {
								size = g
							}
						}
						lo := int(next.Add(int64(size))) - size
						if lo >= n {
							break
						}
						hi := lo + size
						if hi > n {
							hi = n
						}
						for i := lo; i < hi; i++ {
							acc = op(acc, body(i))
						}
					}
					partials[t] = acc
				}
			}
			for _, h := range rg.spawnLeafBulk(fns) {
				rg.join(h)
			}
		default:
			panic("omplwt: unknown schedule")
		}
	}
	acc := identity
	for _, p := range partials {
		acc = op(acc, p)
	}
	return acc
}
