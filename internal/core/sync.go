// Scheduler-aware synchronization objects — the unified API's promotion
// of the backend-private mechanisms (the FEB table of internal/feb, the
// barriers of internal/barrier) to public, backend-portable primitives.
//
// The defining property is that waiting *yields the work unit* instead of
// blocking the executor: a Lock, Wait or Cond.Wait that cannot proceed
// hands the processor back to the backend's scheduler, so other work
// units — including the one that will eventually release the lock — keep
// running. OS-level mutexes or condition variables would park the
// executor thread itself, which on a single-executor runtime deadlocks
// the moment a lock is held across a Yield; these objects cannot.
//
// On Qthreads the mutex word is a full/empty bit in the runtime's FEB
// table (Caps().SyncMechanism == "feb"), so lock traffic shows up in the
// table's wait counters exactly like the library's own qthread_lock. On
// every other backend the word is a CAS cell ("atomic").
package core

import (
	"runtime"
	"sync/atomic"
)

// Waiter is anything that can give up the processor while a sync object
// waits: a *Runtime (the main thread yields to the backend scheduler) or
// a Ctx (the running work unit yields to its executor). A nil Waiter
// degrades to an OS scheduling hint, for callers outside the runtime.
type Waiter interface {
	Yield()
}

// syncYield performs one wait step on behalf of w.
func syncYield(w Waiter) {
	if w != nil {
		w.Yield()
		return
	}
	runtime.Gosched()
}

// febMutexBackend is the optional Backend extension for native lock
// words: Qthreads implements it over its full/empty-bit table, so
// unified-API locks are FEB tokens with the library's own accounting.
type febMutexBackend interface {
	// NewMutexWord allocates an unlocked lock word and returns its
	// non-blocking acquire, its release, and a disposer that returns
	// the word to the table once the lock is unreachable.
	NewMutexWord() (try func() bool, unlock func(), free func())
}

// Mutex is a scheduler-aware mutual-exclusion lock: Lock yields the
// calling work unit between acquisition attempts, so holding a Mutex
// across a Yield cannot deadlock even a single-executor runtime. Create
// one with Runtime.NewMutex; a Mutex is tied to no particular work unit
// and may be locked in one ULT and unlocked in another.
type Mutex struct {
	state  atomic.Bool // generic CAS word (unused with a native word)
	try    func() bool
	unlock func()
}

// NewMutex allocates an unlocked mutex on the runtime's best
// synchronization substrate (see Capabilities.SyncMechanism).
func (r *Runtime) NewMutex() *Mutex {
	m := &Mutex{}
	if p, ok := r.b.(febMutexBackend); ok {
		var free func()
		m.try, m.unlock, free = p.NewMutexWord()
		// The native word occupies a table entry for the runtime's
		// lifetime; return it when the Mutex is collected so servers
		// creating locks per request do not grow the table unboundedly.
		runtime.AddCleanup(m, func(f func()) { f() }, free)
		return m
	}
	m.try = func() bool { return m.state.CompareAndSwap(false, true) }
	m.unlock = func() {
		if !m.state.CompareAndSwap(true, false) {
			panic("core: Unlock of unlocked Mutex")
		}
	}
	return m
}

// TryLock attempts the acquisition without waiting.
func (m *Mutex) TryLock() bool { return m.try() }

// Lock acquires the mutex, yielding w between attempts.
func (m *Mutex) Lock(w Waiter) {
	for !m.try() {
		syncYield(w)
	}
}

// Unlock releases the mutex. With the generic word, unlocking an
// unlocked mutex panics; the FEB word follows Fill semantics (it becomes
// full regardless).
func (m *Mutex) Unlock() { m.unlock() }

// Barrier is a scheduler-aware, reusable rendezvous for a fixed number
// of participants: a sense-reversing barrier whose arrivals yield their
// work unit while waiting, so all parties can rendezvous on a single
// executor. Create one with Runtime.NewBarrier.
type Barrier struct {
	parties int32
	count   atomic.Int32
	sense   atomic.Uint32
}

// NewBarrier returns a barrier for n participants. It panics if n < 1.
func (r *Runtime) NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("core: NewBarrier needs at least one participant")
	}
	b := &Barrier{parties: int32(n)}
	b.count.Store(int32(n))
	return b
}

// Parties reports the number of participants.
func (b *Barrier) Parties() int { return int(b.parties) }

// Wait blocks (cooperatively, yielding w) until all participants have
// arrived, then releases them; the barrier resets for the next round.
func (b *Barrier) Wait(w Waiter) {
	sense := b.sense.Load()
	if b.count.Add(-1) == 0 {
		b.count.Store(b.parties)
		b.sense.Add(1)
		return
	}
	for b.sense.Load() == sense {
		syncYield(w)
	}
}

// Cond is a scheduler-aware condition variable bound to a Mutex. As with
// sync.Cond, callers must hold the mutex around the predicate and Wait;
// unlike sync.Cond, a waiter yields its work unit rather than parking
// the executor. Signal wakes at least one waiter (possibly more — as
// always, re-check the predicate in a loop). Create one with
// Runtime.NewCond.
type Cond struct {
	// L is the mutex guarding the condition's predicate.
	L   *Mutex
	seq atomic.Uint64
}

// NewCond returns a condition variable bound to m.
func (r *Runtime) NewCond(m *Mutex) *Cond {
	if m == nil {
		panic("core: NewCond needs a Mutex")
	}
	return &Cond{L: m}
}

// Wait atomically releases the mutex and suspends the caller until a
// later Signal or Broadcast, then re-acquires the mutex before
// returning. The suspension yields w, so the releaser can run even on
// the same executor.
func (c *Cond) Wait(w Waiter) {
	seq := c.seq.Load()
	c.L.Unlock()
	for c.seq.Load() == seq {
		syncYield(w)
	}
	c.L.Lock(w)
}

// Signal wakes at least one waiter.
func (c *Cond) Signal() { c.seq.Add(1) }

// Broadcast wakes all current waiters.
func (c *Cond) Broadcast() { c.seq.Add(1) }
