package core

import (
	"runtime"
	"sync/atomic"

	"repro/internal/argobots"
	"repro/internal/converse"
	"repro/internal/gothreads"
	"repro/internal/massivethreads"
	"repro/internal/qthreads"
	"repro/internal/queue"
	"repro/internal/sched"
)

// The registered backends. Variants the paper evaluates separately
// (MassiveThreads' two policies, Argobots' pool configurations) register
// under their own names so experiments can select them directly.
func init() {
	Register("argobots", func() Backend { return &argoBackend{pools: argobots.PrivatePools} })
	Register("argobots-shared", func() Backend { return &argoBackend{pools: argobots.SharedPool} })
	Register("qthreads", func() Backend { return &qtBackend{} })
	Register("qthreads-pernode", func() Backend { return &qtBackend{perNode: true} })
	Register("massivethreads", func() Backend { return &mtBackend{policy: massivethreads.WorkFirst} })
	Register("massivethreads-helpfirst", func() Backend { return &mtBackend{policy: massivethreads.HelpFirst} })
	Register("converse", func() Backend { return &cvBackend{} })
	Register("go", func() Backend { return &goBackend{} })
}

// taskletBulkViaULTs is the bulk form of the tasklet→ULT fallback shared
// by the backends without a stackless work unit (Table I): wrap each body
// and delegate to the backend's ULT bulk creator.
func taskletBulkViaULTs(fns []func(), ultBulk func([]func(Ctx)) []Handle) []Handle {
	wrapped := make([]func(Ctx), len(fns))
	for i, fn := range fns {
		fn := fn
		wrapped[i] = func(Ctx) { fn() }
	}
	return ultBulk(wrapped)
}

// policyFor resolves the negotiated scheduler name to a per-pool policy
// factory. Open has already validated the name, so resolution cannot
// fail; the empty name yields the FIFO default.
func policyFor(cfg Config) func() sched.Policy {
	f, ok := sched.ByName(cfg.Scheduler)
	if !ok {
		f, _ = sched.ByName(sched.DefaultPolicy)
	}
	return f
}

// modExec wraps an executor index into [0, n), the documented
// interpretation of ULTCreateTo targets (round-robin style, like
// qthread_fork_to dealing).
func modExec(executor, n int) int {
	if n <= 0 {
		return 0
	}
	executor %= n
	if executor < 0 {
		executor += n
	}
	return executor
}

// --- Argobots ---

type argoBackend struct {
	rt    *argobots.Runtime
	pools argobots.PoolKind
}

type argoULT struct {
	th *argobots.Thread
	b  *argoBackend
	// pinned is the ES this ULT was placed on with ULTCreateTo under
	// private pools (-1 when unpinned): YieldTo must not hijack it onto
	// another stream, or the Placement promise breaks.
	pinned int
	// joining elects the one unified-API joiner allowed to perform the
	// join-and-free (and so to park on the descriptor); concurrent
	// joiners that lose the claim poll Done, which stays answerable
	// after the winner freed and the descriptor recycled.
	joining atomic.Bool
	// joined latches completion at Join time: Argobots joins are
	// join-and-free, which returns the ULT descriptor to the reuse pool,
	// so Done must answer from the handle afterwards instead of reading
	// a descriptor that may already serve another work unit.
	joined atomic.Bool
}

func (h *argoULT) Done() bool { return h.joined.Load() || h.th.Done() }

type argoTasklet struct {
	tk      *argobots.Task
	joining atomic.Bool
	joined  atomic.Bool
}

func (h *argoTasklet) Done() bool { return h.joined.Load() || h.tk.Done() }

type argoCtx struct {
	b *argoBackend
	c *argobots.Context
}

func (b *argoBackend) Name() string {
	if b.pools == argobots.SharedPool {
		return "argobots-shared"
	}
	return "argobots"
}

func (b *argoBackend) Init(cfg Config) error {
	b.rt = argobots.Init(argobots.Config{
		XStreams:   cfg.Executors,
		Pools:      b.pools,
		BasePolicy: policyFor(cfg),
	})
	return nil
}

func (b *argoBackend) NumExecutors() int { return b.rt.NumXStreams() }

// SchedStats implements SchedStatsReporter from the substrate's pools.
func (b *argoBackend) SchedStats() queue.Counts { return b.rt.SchedStats() }

func (b *argoBackend) ULTCreate(fn func(Ctx)) Handle {
	return &argoULT{b: b, pinned: -1, th: b.rt.ThreadCreate(func(c *argobots.Context) {
		fn(&argoCtx{b: b, c: c})
	})}
}

// ULTCreateTo pushes the ULT into the pool of the named execution stream
// (ABT_thread_create_to). With private pools only that stream dispatches
// it; with the shared pool every push lands in the one pool, so placement
// degrades to ordinary creation (Caps().Placement is false there).
func (b *argoBackend) ULTCreateTo(executor int, fn func(Ctx)) Handle {
	es := modExec(executor, b.rt.NumXStreams())
	pinned := -1
	if b.pools == argobots.PrivatePools {
		pinned = es
	}
	return &argoULT{b: b, pinned: pinned, th: b.rt.ThreadCreateTo(func(c *argobots.Context) {
		fn(&argoCtx{b: b, c: c})
	}, es)}
}

func (b *argoBackend) TaskletCreate(fn func()) Handle {
	return &argoTasklet{tk: b.rt.TaskCreate(fn)}
}

// ULTCreateBulk implements BulkBackend over the substrate's batched
// round-robin dealing (one pool insertion per stream, one wake).
func (b *argoBackend) ULTCreateBulk(fns []func(Ctx)) []Handle {
	afns := make([]func(*argobots.Context), len(fns))
	for i, fn := range fns {
		fn := fn
		afns[i] = func(c *argobots.Context) { fn(&argoCtx{b: b, c: c}) }
	}
	ths := b.rt.ThreadCreateBulk(afns)
	hs := make([]Handle, len(ths))
	for i, th := range ths {
		hs[i] = &argoULT{b: b, pinned: -1, th: th}
	}
	return hs
}

// TaskletCreateBulk implements BulkBackend; see ULTCreateBulk.
func (b *argoBackend) TaskletCreateBulk(fns []func()) []Handle {
	tks := b.rt.TaskCreateBulk(fns)
	hs := make([]Handle, len(tks))
	for i, tk := range tks {
		hs[i] = &argoTasklet{tk: tk}
	}
	return hs
}

func (b *argoBackend) Yield() { b.rt.Yield() }

func (b *argoBackend) Join(h Handle) {
	// Argobots joins are join-and-free (ABT_thread_free / ABT_task_free).
	// The joining claim elects the one caller that performs it; losers
	// poll the handle, which answers from its own flags once freed.
	switch v := h.(type) {
	case *argoULT:
		if v.joining.CompareAndSwap(false, true) {
			_ = b.rt.ThreadFree(v.th)
			v.joined.Store(true)
			return
		}
		joinPoll(h, b.Yield)
	case *argoTasklet:
		if v.joining.CompareAndSwap(false, true) {
			_ = b.rt.TaskFree(v.tk)
			v.joined.Store(true)
			return
		}
		joinPoll(h, b.Yield)
	default:
		joinPoll(h, b.Yield)
	}
}

func (b *argoBackend) Finalize() { b.rt.Finalize() }

func (b *argoBackend) Caps() Capabilities {
	return Capabilities{
		HierarchyLevels: 2, WorkUnitTypes: 2, Tasklets: true,
		GroupControl: true, YieldTo: true,
		GlobalQueue: b.pools == argobots.SharedPool, PrivateQueues: b.pools == argobots.PrivatePools,
		PluginScheduler: true, StackableScheduler: true, Yieldable: true,
		Placement:     b.pools == argobots.PrivatePools,
		Schedulers:    sched.Names(),
		SyncMechanism: "atomic",
		AsyncIO:       true,
	}
}

func (c *argoCtx) Yield() { c.c.Yield() }

// IOPark exposes the substrate's park/unpark pair: the resumed ULT
// returns to the pool of the execution stream it was issued from, so a
// wait through aio preserves ULTCreateTo placement.
func (c *argoCtx) IOPark() (park func(), unpark func()) { return c.c.IOPark() }

// YieldTo hands control directly to the target ULT
// (ABT_thread_yield_to) — the operation only Argobots grants in Table I.
// It degrades to a plain Yield for non-ULT handles, handles of another
// runtime (a direct transfer would hijack them onto this runtime's
// executor), and ULTs pinned to a different execution stream (the
// transfer runs the target here, which would break the Placement
// promise of ULTCreateTo).
func (c *argoCtx) YieldTo(h Handle) {
	v, ok := h.(*argoULT)
	if !ok || v.b != c.b || (v.pinned >= 0 && v.pinned != c.ExecutorID()) {
		c.c.Yield()
		return
	}
	c.c.YieldTo(v.th)
}

func (c *argoCtx) ULTCreate(fn func(Ctx)) Handle {
	return &argoULT{b: c.b, pinned: -1, th: c.c.ThreadCreate(func(cc *argobots.Context) {
		fn(&argoCtx{b: c.b, c: cc})
	})}
}

func (c *argoCtx) ULTCreateTo(executor int, fn func(Ctx)) Handle {
	es := modExec(executor, c.b.rt.NumXStreams())
	pinned := -1
	if c.b.pools == argobots.PrivatePools {
		pinned = es
	}
	return &argoULT{b: c.b, pinned: pinned, th: c.c.ThreadCreateTo(func(cc *argobots.Context) {
		fn(&argoCtx{b: c.b, c: cc})
	}, es)}
}

func (c *argoCtx) TaskletCreate(fn func()) Handle {
	return &argoTasklet{tk: c.c.TaskCreate(fn)}
}

// Join from inside a ULT parks the joiner in the target's waiter slot and
// then frees the unit — the worker-side ABT_thread_free, matching the
// join-and-free the backend-level Join performs, so ULT-created work
// recycles its descriptor no matter which side joins it. The joining
// claim elects the one joiner that touches the descriptor; losers (and
// handles of other runtimes) fall back to the generic poll-yield join.
func (c *argoCtx) Join(h Handle) {
	switch v := h.(type) {
	case *argoULT:
		if v.joining.CompareAndSwap(false, true) {
			_ = c.c.JoinFree(v.th)
			v.joined.Store(true)
			return
		}
		joinPoll(h, c.c.Yield)
	case *argoTasklet:
		if v.joining.CompareAndSwap(false, true) {
			_ = c.c.JoinTaskFree(v.tk)
			v.joined.Store(true)
			return
		}
		joinPoll(h, c.c.Yield)
	default:
		joinPoll(h, c.c.Yield)
	}
}

func (c *argoCtx) ExecutorID() int { return c.c.XStreamID() }

func (c *argoCtx) NumExecutors() int { return c.b.rt.NumXStreams() }

// --- Qthreads ---

type qtBackend struct {
	rt      *qthreads.Runtime
	perNode bool
	rrNext  atomic.Uint64
	n       int
}

type qtULT struct {
	b  *qtBackend
	th *qthreads.Thread
}

func (h *qtULT) Done() bool { return h.th.Done() }

type qtCtx struct {
	b *qtBackend
	c *qthreads.Context
}

func (b *qtBackend) Name() string {
	if b.perNode {
		return "qthreads-pernode"
	}
	return "qthreads"
}

func (b *qtBackend) Init(cfg Config) error {
	b.n = cfg.Executors
	var qcfg qthreads.Config
	if b.perNode {
		qcfg = qthreads.Config{Shepherds: 1, WorkersPerShepherd: cfg.Executors}
	} else {
		qcfg = qthreads.PerCPU(cfg.Executors) // the paper's preferred layout
	}
	qcfg.Policy = policyFor(cfg)
	rt, err := qthreads.Init(qcfg)
	if err != nil {
		return err
	}
	b.rt = rt
	return nil
}

// NumExecutors reports the shepherd count — Qthreads' placement domain
// (Table I's executor for the three-level hierarchy). The per-CPU layout
// has one shepherd per configured executor; the per-node variant has a
// single shepherd serving every worker, so its one executor is rank 0.
func (b *qtBackend) NumExecutors() int { return b.rt.NumShepherds() }

// SchedStats implements SchedStatsReporter from the substrate's pools.
func (b *qtBackend) SchedStats() queue.Counts { return b.rt.SchedStats() }

func (b *qtBackend) ULTCreate(fn func(Ctx)) Handle {
	// Round-robin fork_to, the dispatch §VIII-B3 selects.
	shep := int(b.rrNext.Add(1)-1) % b.rt.NumShepherds()
	return b.forkTo(fn, shep)
}

// ULTCreateTo forks directly into the named shepherd's pool
// (qthread_fork_to). Shepherds never steal from each other, so the ULT
// runs on the targeted shepherd.
func (b *qtBackend) ULTCreateTo(executor int, fn func(Ctx)) Handle {
	return b.forkTo(fn, modExec(executor, b.rt.NumShepherds()))
}

func (b *qtBackend) forkTo(fn func(Ctx), shep int) Handle {
	return &qtULT{b: b, th: b.rt.ForkTo(func(c *qthreads.Context) {
		fn(&qtCtx{b: b, c: c})
	}, shep)}
}

// TaskletCreate falls back to a ULT: Qthreads has no stackless unit
// (Table I row "Tasklet Support").
func (b *qtBackend) TaskletCreate(fn func()) Handle {
	return b.ULTCreate(func(Ctx) { fn() })
}

// ULTCreateBulk implements BulkBackend over ForkBulk: contiguous blocks
// dealt across shepherds, one batched queue insertion per shepherd.
func (b *qtBackend) ULTCreateBulk(fns []func(Ctx)) []Handle {
	qfns := make([]func(*qthreads.Context), len(fns))
	for i, fn := range fns {
		fn := fn
		qfns[i] = func(c *qthreads.Context) { fn(&qtCtx{b: b, c: c}) }
	}
	ths := b.rt.ForkBulk(qfns)
	hs := make([]Handle, len(ths))
	for i, th := range ths {
		hs[i] = &qtULT{b: b, th: th}
	}
	return hs
}

// TaskletCreateBulk implements BulkBackend via the ULT fallback (no
// stackless unit, Table I).
func (b *qtBackend) TaskletCreateBulk(fns []func()) []Handle {
	return taskletBulkViaULTs(fns, b.ULTCreateBulk)
}

// Yield from the main thread is a no-op scheduling hint: the Qthreads
// main thread lives outside the runtime.
func (b *qtBackend) Yield() { runtime.Gosched() }

func (b *qtBackend) Join(h Handle) {
	if v, ok := h.(*qtULT); ok {
		b.rt.ReadFF(v.th) // qthread_readFF on the return-value word
		return
	}
	joinPoll(h, b.Yield)
}

func (b *qtBackend) Finalize() { b.rt.Finalize() }

// NewMutexWord implements the FEB-native lock hook: the unified Mutex on
// Qthreads is a full/empty-bit word in the runtime's table, taken by
// emptying (readFE) and released by filling — qthread_lock/unlock.
func (b *qtBackend) NewMutexWord() (func() bool, func(), func()) {
	t := b.rt.FEB()
	a := t.Alloc()
	t.Fill(a) // allocated unlocked (full = token present)
	return func() bool { return t.TryLock(a) },
		func() { t.Unlock(a) },
		func() { t.Free(a) }
}

func (b *qtBackend) Caps() Capabilities {
	return Capabilities{
		HierarchyLevels: 3, WorkUnitTypes: 1, Tasklets: false,
		GroupControl: true, YieldTo: false,
		GlobalQueue: false, PrivateQueues: true,
		PluginScheduler: true, StackableScheduler: false, Yieldable: true,
		Placement:     true,
		Schedulers:    sched.Names(),
		SyncMechanism: "feb",
		AsyncIO:       true,
	}
}

func (c *qtCtx) Yield() { c.c.Yield() }

// IOPark exposes the substrate's park/unpark pair: the resumed thread
// returns to its shepherd's pool, preserving ForkTo placement across a
// wait.
func (c *qtCtx) IOPark() (park func(), unpark func()) { return c.c.IOPark() }

// YieldTo degrades to a plain Yield: Qthreads exposes no direct control
// transfer (Table I).
func (c *qtCtx) YieldTo(Handle) { c.c.Yield() }

func (c *qtCtx) ULTCreate(fn func(Ctx)) Handle {
	return &qtULT{b: c.b, th: c.c.Fork(func(cc *qthreads.Context) {
		fn(&qtCtx{b: c.b, c: cc})
	})}
}

func (c *qtCtx) ULTCreateTo(executor int, fn func(Ctx)) Handle {
	shep := modExec(executor, c.b.rt.NumShepherds())
	return &qtULT{b: c.b, th: c.c.ForkTo(func(cc *qthreads.Context) {
		fn(&qtCtx{b: c.b, c: cc})
	}, shep)}
}

func (c *qtCtx) TaskletCreate(fn func()) Handle {
	return c.ULTCreate(func(Ctx) { fn() })
}

func (c *qtCtx) Join(h Handle) {
	if v, ok := h.(*qtULT); ok {
		c.c.ReadFF(v.th)
		return
	}
	joinPoll(h, c.c.Yield)
}

func (c *qtCtx) ExecutorID() int { return c.c.Shepherd() }

func (c *qtCtx) NumExecutors() int { return c.b.rt.NumShepherds() }

// --- MassiveThreads ---

type mtBackend struct {
	rt     *massivethreads.Runtime
	policy massivethreads.Policy
}

type mtULT struct{ th *massivethreads.Thread }

func (h *mtULT) Done() bool { return h.th.Done() }

type mtCtx struct {
	b *mtBackend
	c *massivethreads.Context
}

func (b *mtBackend) Name() string {
	if b.policy == massivethreads.HelpFirst {
		return "massivethreads-helpfirst"
	}
	return "massivethreads"
}

func (b *mtBackend) Init(cfg Config) error {
	b.rt = massivethreads.Init(cfg.Executors, b.policy)
	return nil
}

func (b *mtBackend) NumExecutors() int { return b.rt.NumWorkers() }

// SchedStats implements SchedStatsReporter from the substrate's pools.
func (b *mtBackend) SchedStats() queue.Counts { return b.rt.SchedStats() }

func (b *mtBackend) ULTCreate(fn func(Ctx)) Handle {
	return &mtULT{th: b.rt.Create(func(c *massivethreads.Context) {
		fn(&mtCtx{b: b, c: c})
	})}
}

// ULTCreateTo degrades to local creation: myth_create has no target
// argument, and random work stealing migrates units between workers, so
// MassiveThreads cannot pin (Caps().Placement is false).
func (b *mtBackend) ULTCreateTo(_ int, fn func(Ctx)) Handle {
	return b.ULTCreate(fn)
}

// TaskletCreate falls back to a ULT (no tasklet support, Table I).
func (b *mtBackend) TaskletCreate(fn func()) Handle {
	return b.ULTCreate(func(Ctx) { fn() })
}

// ULTCreateBulk implements BulkBackend: help-first batches the whole
// creation into one deque publication; work-first stays sequential by
// construction (the substrate falls back internally).
func (b *mtBackend) ULTCreateBulk(fns []func(Ctx)) []Handle {
	mfns := make([]func(*massivethreads.Context), len(fns))
	for i, fn := range fns {
		fn := fn
		mfns[i] = func(c *massivethreads.Context) { fn(&mtCtx{b: b, c: c}) }
	}
	ths := b.rt.CreateBulk(mfns)
	hs := make([]Handle, len(ths))
	for i, th := range ths {
		hs[i] = &mtULT{th: th}
	}
	return hs
}

// TaskletCreateBulk implements BulkBackend via the ULT fallback.
func (b *mtBackend) TaskletCreateBulk(fns []func()) []Handle {
	return taskletBulkViaULTs(fns, b.ULTCreateBulk)
}

func (b *mtBackend) Yield() { b.rt.Yield() }

func (b *mtBackend) Join(h Handle) {
	if v, ok := h.(*mtULT); ok {
		b.rt.Join(v.th)
		return
	}
	joinPoll(h, b.Yield)
}

func (b *mtBackend) Finalize() { b.rt.Finalize() }

func (b *mtBackend) Caps() Capabilities {
	return Capabilities{
		HierarchyLevels: 2, WorkUnitTypes: 1, Tasklets: false,
		GroupControl: true, YieldTo: false,
		GlobalQueue: false, PrivateQueues: true,
		PluginScheduler: true, StackableScheduler: false, Yieldable: true,
		Placement: false,
		// The scheduling discipline is fixed at configure time (the
		// work-first / help-first variant choice is the backend name).
		Schedulers:    []string{sched.NameFIFO},
		SyncMechanism: "atomic",
		AsyncIO:       true,
	}
}

func (c *mtCtx) Yield() { c.c.Yield() }

// IOPark exposes the substrate's park/unpark pair. MassiveThreads has
// no placement promise to preserve (Caps().Placement is false): the
// resumed thread lands on the shared injection queue and any worker may
// pick it up, exactly as a steal would move it.
func (c *mtCtx) IOPark() (park func(), unpark func()) { return c.c.IOPark() }

// YieldTo degrades to a plain Yield: Table I grants MassiveThreads no
// direct control transfer (the substrate's hand-off is reserved for the
// work-first creation path).
func (c *mtCtx) YieldTo(Handle) { c.c.Yield() }

func (c *mtCtx) ULTCreate(fn func(Ctx)) Handle {
	return &mtULT{th: c.c.Create(func(cc *massivethreads.Context) {
		fn(&mtCtx{b: c.b, c: cc})
	})}
}

func (c *mtCtx) ULTCreateTo(_ int, fn func(Ctx)) Handle {
	return c.ULTCreate(fn)
}

func (c *mtCtx) TaskletCreate(fn func()) Handle {
	return c.ULTCreate(func(Ctx) { fn() })
}

func (c *mtCtx) Join(h Handle) {
	if v, ok := h.(*mtULT); ok {
		c.c.Join(v.th)
		return
	}
	joinPoll(h, c.c.Yield)
}

func (c *mtCtx) ExecutorID() int { return c.c.WorkerID() }

func (c *mtCtx) NumExecutors() int { return c.b.rt.NumWorkers() }

// --- Converse Threads ---

type cvBackend struct {
	rt     *converse.Runtime
	rrNext atomic.Uint64
	n      int
}

type cvULT struct{ c *converse.Cth }

func (h *cvULT) Done() bool { return h.c.Done() }

// cvRemoteULT tracks a ULT created on a remote processor through a
// Message: the Cth handle does not exist until the Message executes
// there.
type cvRemoteULT struct{ inner atomic.Pointer[converse.Cth] }

func (h *cvRemoteULT) Done() bool {
	c := h.inner.Load()
	return c != nil && c.Done()
}

// cvMsg tracks a Message's completion with a flag the body sets.
type cvMsg struct{ done atomic.Bool }

func (h *cvMsg) Done() bool { return h.done.Load() }

type cvCtx struct {
	b *cvBackend
	c *converse.CthCtx
}

func (b *cvBackend) Name() string { return "converse" }

func (b *cvBackend) Init(cfg Config) error {
	b.n = cfg.Executors
	b.rt = converse.InitCfg(converse.Config{Procs: cfg.Executors, Policy: policyFor(cfg)})
	return nil
}

func (b *cvBackend) NumExecutors() int { return b.rt.NumProcs() }

// SchedStats implements SchedStatsReporter from the substrate's pools.
func (b *cvBackend) SchedStats() queue.Counts { return b.rt.SchedStats() }

// ULTCreate is restricted to the local processor: CthCreate cannot target
// remote queues (§VIII-B1's restriction on Converse in nested scenarios).
func (b *cvBackend) ULTCreate(fn func(Ctx)) Handle {
	return &cvULT{c: b.rt.CthCreate(func(cc *converse.CthCtx) {
		fn(&cvCtx{b: b, c: cc})
	})}
}

// ULTCreateTo reaches a remote processor the only way Converse allows:
// a Message (CmiSyncSend) carries the creation request, and its body
// performs the CthCreate locally on the target. ULTs never migrate
// between processors, so the new ULT runs — and stays — on the target.
// Processor 0 is the master's own, so that case is a plain local
// CthCreate with no message hop.
func (b *cvBackend) ULTCreateTo(executor int, fn func(Ctx)) Handle {
	proc := modExec(executor, b.n)
	if proc == 0 {
		return b.ULTCreate(fn)
	}
	h := &cvRemoteULT{}
	b.rt.SyncSend(proc, func(p *converse.Proc) {
		h.inner.Store(p.CthCreate(func(cc *converse.CthCtx) {
			fn(&cvCtx{b: b, c: cc})
		}))
	})
	return h
}

// TaskletCreate sends a Message round-robin — the only remote insertion
// Converse offers, and what the paper's microbenchmarks use throughout.
func (b *cvBackend) TaskletCreate(fn func()) Handle {
	h := &cvMsg{}
	proc := int(b.rrNext.Add(1)-1) % b.n
	b.rt.SyncSend(proc, func(*converse.Proc) {
		defer h.done.Store(true) // survive contained panics
		fn()
	})
	return h
}

// ULTCreateBulk implements BulkBackend: Converse ULT creation is local to
// the master's processor (the §VIII-B1 restriction), so the batch is one
// insertion into processor 0's queue.
func (b *cvBackend) ULTCreateBulk(fns []func(Ctx)) []Handle {
	cfns := make([]func(*converse.CthCtx), len(fns))
	for i, fn := range fns {
		fn := fn
		cfns[i] = func(cc *converse.CthCtx) { fn(&cvCtx{b: b, c: cc}) }
	}
	cs := b.rt.CthCreateBulk(cfns)
	hs := make([]Handle, len(cs))
	for i, c := range cs {
		hs[i] = &cvULT{c: c}
	}
	return hs
}

// TaskletCreateBulk implements BulkBackend: the batch is dealt as
// contiguous Message blocks across the processors (one CmiSyncSend burst
// per processor), continuing the round-robin cursor of TaskletCreate.
func (b *cvBackend) TaskletCreateBulk(fns []func()) []Handle {
	hs := make([]Handle, len(fns))
	if len(fns) == 0 {
		return hs
	}
	k := b.n
	per := (len(fns) + k - 1) / k
	startProc := int(b.rrNext.Add(1)-1) % k
	sends := make([]func(*converse.Proc), 0, per)
	for blk := 0; blk*per < len(fns); blk++ {
		lo := blk * per
		hi := min(lo+per, len(fns))
		sends = sends[:0]
		for i := lo; i < hi; i++ {
			h := &cvMsg{}
			hs[i] = h
			fn := fns[i]
			sends = append(sends, func(*converse.Proc) {
				defer h.done.Store(true) // survive contained panics
				fn()
			})
		}
		b.rt.SyncSendBatch((startProc+blk)%k, sends)
	}
	return hs
}

func (b *cvBackend) Yield() { b.rt.Yield() }

// Join drives the local scheduler until the unit completes: the master
// must keep processing its own queue (return mode) while remote
// processors drain theirs. Completed ULT handles are freed (CthFree) so
// their descriptors re-enter the substrate pool; Message handles carry no
// descriptor to free.
func (b *cvBackend) Join(h Handle) {
	for !h.Done() {
		if !b.rt.Yield() {
			runtime.Gosched()
		}
	}
	switch v := h.(type) {
	case *cvULT:
		v.c.Free()
	case *cvRemoteULT:
		if c := v.inner.Load(); c != nil {
			c.Free()
		}
	}
}

func (b *cvBackend) Finalize() { b.rt.Finalize() }

func (b *cvBackend) Caps() Capabilities {
	return Capabilities{
		HierarchyLevels: 2, WorkUnitTypes: 2, Tasklets: true,
		GroupControl: true, YieldTo: false,
		GlobalQueue: false, PrivateQueues: true,
		PluginScheduler: true, StackableScheduler: false, Yieldable: true,
		Placement:     true,
		Schedulers:    sched.Names(),
		SyncMechanism: "atomic",
		AsyncIO:       true,
	}
}

func (c *cvCtx) Yield() { c.c.Yield() }

// IOPark exposes the substrate's park/unpark pair: the resumed Cth
// returns to its processor's queue, preserving CthCreateTo placement
// across a wait.
func (c *cvCtx) IOPark() (park func(), unpark func()) { return c.c.IOPark() }

// YieldTo degrades to a plain Yield at the unified layer: Table I grants
// direct transfer to Argobots only (Converse's CthYieldTo stays a
// backend-private operation).
func (c *cvCtx) YieldTo(Handle) { c.c.Yield() }

func (c *cvCtx) ULTCreate(fn func(Ctx)) Handle {
	return &cvULT{c: c.c.CthCreate(func(cc *converse.CthCtx) {
		fn(&cvCtx{b: c.b, c: cc})
	})}
}

func (c *cvCtx) ULTCreateTo(executor int, fn func(Ctx)) Handle {
	proc := modExec(executor, c.b.n)
	if proc == c.c.ID() {
		return c.ULTCreate(fn) // already on the target: plain CthCreate
	}
	b := c.b
	h := &cvRemoteULT{}
	c.c.SyncSend(proc, func(p *converse.Proc) {
		h.inner.Store(p.CthCreate(func(cc *converse.CthCtx) {
			fn(&cvCtx{b: b, c: cc})
		}))
	})
	return h
}

func (c *cvCtx) TaskletCreate(fn func()) Handle {
	h := &cvMsg{}
	proc := int(c.b.rrNext.Add(1)-1) % c.b.n
	c.c.SyncSend(proc, func(*converse.Proc) {
		defer h.done.Store(true) // survive contained panics
		fn()
	})
	return h
}

// Join from inside a ULT parks on local Cth handles (CthSuspend/
// CthAwaken); Messages and remote ULTs keep the poll-yield join — their
// completion is published by a plain flag the paper's two-step patterns
// poll the same way.
func (c *cvCtx) Join(h Handle) {
	if v, ok := h.(*cvULT); ok {
		c.c.Join(v.c)
		return
	}
	joinPoll(h, c.c.Yield)
}

func (c *cvCtx) ExecutorID() int { return c.c.ID() }

func (c *cvCtx) NumExecutors() int { return c.b.rt.NumProcs() }

// --- Go model ---

type goBackend struct{ rt *gothreads.Runtime }

type goULT struct {
	b *goBackend
	g *gothreads.G
}

func (h *goULT) Done() bool { return h.g.Done() }

type goCtx struct {
	b *goBackend
	c *gothreads.Context
}

func (b *goBackend) Name() string { return "go" }

func (b *goBackend) Init(cfg Config) error {
	b.rt = gothreads.Init(cfg.Executors)
	return nil
}

func (b *goBackend) NumExecutors() int { return b.rt.NumThreads() }

// SchedStats implements SchedStatsReporter from the substrate's pools.
func (b *goBackend) SchedStats() queue.Counts { return b.rt.SchedStats() }

func (b *goBackend) ULTCreate(fn func(Ctx)) Handle {
	return &goULT{b: b, g: b.rt.Go(func(c *gothreads.Context) {
		fn(&goCtx{b: b, c: c})
	})}
}

// ULTCreateTo degrades to a plain spawn: the Go model has one global run
// queue and no placement (Caps().Placement is false) — any scheduler
// thread may pick the goroutine up.
func (b *goBackend) ULTCreateTo(_ int, fn func(Ctx)) Handle {
	return b.ULTCreate(fn)
}

// TaskletCreate falls back to a goroutine (single work-unit type).
func (b *goBackend) TaskletCreate(fn func()) Handle {
	return b.ULTCreate(func(Ctx) { fn() })
}

// ULTCreateBulk implements BulkBackend: one multi-ticket insertion into
// the global run queue for the whole batch.
func (b *goBackend) ULTCreateBulk(fns []func(Ctx)) []Handle {
	gfns := make([]func(*gothreads.Context), len(fns))
	for i, fn := range fns {
		fn := fn
		gfns[i] = func(c *gothreads.Context) { fn(&goCtx{b: b, c: c}) }
	}
	gs := b.rt.GoBulk(gfns)
	hs := make([]Handle, len(gs))
	for i, g := range gs {
		hs[i] = &goULT{b: b, g: g}
	}
	return hs
}

// TaskletCreateBulk implements BulkBackend via the goroutine fallback.
func (b *goBackend) TaskletCreateBulk(fns []func()) []Handle {
	return taskletBulkViaULTs(fns, b.ULTCreateBulk)
}

// Yield is absent from the Go model (Table I); the unified layer degrades
// it to an OS-level scheduling hint.
func (b *goBackend) Yield() { runtime.Gosched() }

func (b *goBackend) Join(h Handle) {
	if v, ok := h.(*goULT); ok {
		b.rt.Join(v.g) // channel join
		return
	}
	joinPoll(h, b.Yield)
}

func (b *goBackend) Finalize() { b.rt.Finalize() }

func (b *goBackend) Caps() Capabilities {
	return Capabilities{
		HierarchyLevels: 2, WorkUnitTypes: 1, Tasklets: false,
		GroupControl: true, YieldTo: false,
		GlobalQueue: true, PrivateQueues: false,
		PluginScheduler: false, StackableScheduler: false, Yieldable: false,
		Placement:     false,
		Schedulers:    []string{sched.NameFIFO},
		SyncMechanism: "atomic",
		AsyncIO:       true,
	}
}

// IOPark exposes the substrate's park/unpark pair: the resumed
// goroutine-model unit lands on the shared global queue (the only pool
// the model has).
func (c *goCtx) IOPark() (park func(), unpark func()) { return c.c.IOPark() }

// Yield degrades to the substrate's reschedule (the runtime.Gosched
// analogue): the modeled programming surface has no yield operation
// (Table I, Caps().Yieldable is false), but the unified layer's
// cooperative waits need the goroutine to hand its scheduler thread back
// so sibling work units can run.
func (c *goCtx) Yield() { c.c.Gosched() }

// YieldTo degrades to Yield: no direct control transfer in the Go model.
func (c *goCtx) YieldTo(Handle) { c.Yield() }

func (c *goCtx) ULTCreate(fn func(Ctx)) Handle {
	return &goULT{b: c.b, g: c.c.Go(func(cc *gothreads.Context) {
		fn(&goCtx{b: c.b, c: cc})
	})}
}

func (c *goCtx) ULTCreateTo(_ int, fn func(Ctx)) Handle {
	return c.ULTCreate(fn)
}

func (c *goCtx) TaskletCreate(fn func()) Handle {
	return c.ULTCreate(func(Ctx) { fn() })
}

func (c *goCtx) Join(h Handle) {
	if v, ok := h.(*goULT); ok {
		c.c.Join(v.g) // parks the goroutine in the target's waiter slot
		return
	}
	joinPoll(h, func() { runtime.Gosched() })
}

func (c *goCtx) ExecutorID() int { return c.c.ThreadID() }

func (c *goCtx) NumExecutors() int { return c.b.rt.NumThreads() }

// joinPoll waits for completion by polling with the given yield between
// checks — the generic cooperative join, kept as the documented fallback
// for handles whose substrate park slot is unavailable (foreign runtimes,
// occupied single-waiter slots, flag-published Converse Messages) or
// whose semantics require the caller to keep scheduling (the Converse
// master driving processor 0 in return mode).
func joinPoll(h Handle, yield func()) {
	for !h.Done() {
		yield()
	}
}
