package core

import (
	"runtime"
	"sync/atomic"

	"repro/internal/argobots"
	"repro/internal/converse"
	"repro/internal/gothreads"
	"repro/internal/massivethreads"
	"repro/internal/qthreads"
)

// The registered backends. Variants the paper evaluates separately
// (MassiveThreads' two policies, Argobots' pool configurations) register
// under their own names so experiments can select them directly.
func init() {
	Register("argobots", func() Backend { return &argoBackend{pools: argobots.PrivatePools} })
	Register("argobots-shared", func() Backend { return &argoBackend{pools: argobots.SharedPool} })
	Register("qthreads", func() Backend { return &qtBackend{} })
	Register("qthreads-pernode", func() Backend { return &qtBackend{perNode: true} })
	Register("massivethreads", func() Backend { return &mtBackend{policy: massivethreads.WorkFirst} })
	Register("massivethreads-helpfirst", func() Backend { return &mtBackend{policy: massivethreads.HelpFirst} })
	Register("converse", func() Backend { return &cvBackend{} })
	Register("go", func() Backend { return &goBackend{} })
}

// --- Argobots ---

type argoBackend struct {
	rt    *argobots.Runtime
	pools argobots.PoolKind
}

type argoULT struct{ th *argobots.Thread }

func (h *argoULT) Done() bool { return h.th.Done() }

type argoTasklet struct{ tk *argobots.Task }

func (h *argoTasklet) Done() bool { return h.tk.Done() }

type argoCtx struct {
	b *argoBackend
	c *argobots.Context
}

func (b *argoBackend) Name() string {
	if b.pools == argobots.SharedPool {
		return "argobots-shared"
	}
	return "argobots"
}

func (b *argoBackend) Init(nthreads int) error {
	b.rt = argobots.Init(argobots.Config{XStreams: nthreads, Pools: b.pools})
	return nil
}

func (b *argoBackend) ULTCreate(fn func(Ctx)) Handle {
	return &argoULT{th: b.rt.ThreadCreate(func(c *argobots.Context) {
		fn(&argoCtx{b: b, c: c})
	})}
}

func (b *argoBackend) TaskletCreate(fn func()) Handle {
	return &argoTasklet{tk: b.rt.TaskCreate(fn)}
}

func (b *argoBackend) Yield() { b.rt.Yield() }

func (b *argoBackend) Join(h Handle) {
	// Argobots joins are join-and-free (ABT_thread_free / ABT_task_free).
	switch v := h.(type) {
	case *argoULT:
		_ = b.rt.ThreadFree(v.th)
	case *argoTasklet:
		_ = b.rt.TaskFree(v.tk)
	default:
		joinPoll(h, b.Yield)
	}
}

func (b *argoBackend) Finalize() { b.rt.Finalize() }

func (b *argoBackend) Caps() Capabilities {
	return Capabilities{
		HierarchyLevels: 2, WorkUnitTypes: 2, Tasklets: true,
		GroupControl: true, YieldTo: true,
		GlobalQueue: b.pools == argobots.SharedPool, PrivateQueues: b.pools == argobots.PrivatePools,
		PluginScheduler: true, StackableScheduler: true, Yieldable: true,
	}
}

func (c *argoCtx) Yield() { c.c.Yield() }

func (c *argoCtx) ULTCreate(fn func(Ctx)) Handle {
	return &argoULT{th: c.c.ThreadCreate(func(cc *argobots.Context) {
		fn(&argoCtx{b: c.b, c: cc})
	})}
}

func (c *argoCtx) TaskletCreate(fn func()) Handle {
	return &argoTasklet{tk: c.c.TaskCreate(fn)}
}

func (c *argoCtx) Join(h Handle) { joinPoll(h, c.c.Yield) }

// --- Qthreads ---

type qtBackend struct {
	rt      *qthreads.Runtime
	perNode bool
	rrNext  atomic.Uint64
	n       int
}

type qtULT struct {
	b  *qtBackend
	th *qthreads.Thread
}

func (h *qtULT) Done() bool { return h.th.Done() }

type qtCtx struct {
	b *qtBackend
	c *qthreads.Context
}

func (b *qtBackend) Name() string {
	if b.perNode {
		return "qthreads-pernode"
	}
	return "qthreads"
}

func (b *qtBackend) Init(nthreads int) error {
	b.n = nthreads
	var cfg qthreads.Config
	if b.perNode {
		cfg = qthreads.Config{Shepherds: 1, WorkersPerShepherd: nthreads}
	} else {
		cfg = qthreads.PerCPU(nthreads) // the paper's preferred layout
	}
	rt, err := qthreads.Init(cfg)
	if err != nil {
		return err
	}
	b.rt = rt
	return nil
}

func (b *qtBackend) ULTCreate(fn func(Ctx)) Handle {
	// Round-robin fork_to, the dispatch §VIII-B3 selects.
	shep := int(b.rrNext.Add(1)-1) % b.rt.NumShepherds()
	return &qtULT{b: b, th: b.rt.ForkTo(func(c *qthreads.Context) {
		fn(&qtCtx{b: b, c: c})
	}, shep)}
}

// TaskletCreate falls back to a ULT: Qthreads has no stackless unit
// (Table I row "Tasklet Support").
func (b *qtBackend) TaskletCreate(fn func()) Handle {
	return b.ULTCreate(func(Ctx) { fn() })
}

// Yield from the main thread is a no-op scheduling hint: the Qthreads
// main thread lives outside the runtime.
func (b *qtBackend) Yield() { runtime.Gosched() }

func (b *qtBackend) Join(h Handle) {
	if v, ok := h.(*qtULT); ok {
		b.rt.ReadFF(v.th) // qthread_readFF on the return-value word
		return
	}
	joinPoll(h, b.Yield)
}

func (b *qtBackend) Finalize() { b.rt.Finalize() }

func (b *qtBackend) Caps() Capabilities {
	return Capabilities{
		HierarchyLevels: 3, WorkUnitTypes: 1, Tasklets: false,
		GroupControl: true, YieldTo: false,
		GlobalQueue: false, PrivateQueues: true,
		PluginScheduler: true, StackableScheduler: false, Yieldable: true,
	}
}

func (c *qtCtx) Yield() { c.c.Yield() }

func (c *qtCtx) ULTCreate(fn func(Ctx)) Handle {
	return &qtULT{b: c.b, th: c.c.Fork(func(cc *qthreads.Context) {
		fn(&qtCtx{b: c.b, c: cc})
	})}
}

func (c *qtCtx) TaskletCreate(fn func()) Handle {
	return c.ULTCreate(func(Ctx) { fn() })
}

func (c *qtCtx) Join(h Handle) {
	if v, ok := h.(*qtULT); ok {
		c.c.ReadFF(v.th)
		return
	}
	joinPoll(h, c.c.Yield)
}

// --- MassiveThreads ---

type mtBackend struct {
	rt     *massivethreads.Runtime
	policy massivethreads.Policy
}

type mtULT struct{ th *massivethreads.Thread }

func (h *mtULT) Done() bool { return h.th.Done() }

type mtCtx struct {
	b *mtBackend
	c *massivethreads.Context
}

func (b *mtBackend) Name() string {
	if b.policy == massivethreads.HelpFirst {
		return "massivethreads-helpfirst"
	}
	return "massivethreads"
}

func (b *mtBackend) Init(nthreads int) error {
	b.rt = massivethreads.Init(nthreads, b.policy)
	return nil
}

func (b *mtBackend) ULTCreate(fn func(Ctx)) Handle {
	return &mtULT{th: b.rt.Create(func(c *massivethreads.Context) {
		fn(&mtCtx{b: b, c: c})
	})}
}

// TaskletCreate falls back to a ULT (no tasklet support, Table I).
func (b *mtBackend) TaskletCreate(fn func()) Handle {
	return b.ULTCreate(func(Ctx) { fn() })
}

func (b *mtBackend) Yield() { b.rt.Yield() }

func (b *mtBackend) Join(h Handle) {
	if v, ok := h.(*mtULT); ok {
		b.rt.Join(v.th)
		return
	}
	joinPoll(h, b.Yield)
}

func (b *mtBackend) Finalize() { b.rt.Finalize() }

func (b *mtBackend) Caps() Capabilities {
	return Capabilities{
		HierarchyLevels: 2, WorkUnitTypes: 1, Tasklets: false,
		GroupControl: true, YieldTo: false,
		GlobalQueue: false, PrivateQueues: true,
		PluginScheduler: true, StackableScheduler: false, Yieldable: true,
	}
}

func (c *mtCtx) Yield() { c.c.Yield() }

func (c *mtCtx) ULTCreate(fn func(Ctx)) Handle {
	return &mtULT{th: c.c.Create(func(cc *massivethreads.Context) {
		fn(&mtCtx{b: c.b, c: cc})
	})}
}

func (c *mtCtx) TaskletCreate(fn func()) Handle {
	return c.ULTCreate(func(Ctx) { fn() })
}

func (c *mtCtx) Join(h Handle) {
	if v, ok := h.(*mtULT); ok {
		c.c.Join(v.th)
		return
	}
	joinPoll(h, c.c.Yield)
}

// --- Converse Threads ---

type cvBackend struct {
	rt     *converse.Runtime
	rrNext atomic.Uint64
	n      int
}

type cvULT struct{ c *converse.Cth }

func (h *cvULT) Done() bool { return h.c.Done() }

// cvMsg tracks a Message's completion with a flag the body sets.
type cvMsg struct{ done atomic.Bool }

func (h *cvMsg) Done() bool { return h.done.Load() }

type cvCtx struct {
	b *cvBackend
	c *converse.CthCtx
}

func (b *cvBackend) Name() string { return "converse" }

func (b *cvBackend) Init(nthreads int) error {
	b.n = nthreads
	b.rt = converse.Init(nthreads)
	return nil
}

// ULTCreate is restricted to the local processor: CthCreate cannot target
// remote queues (§VIII-B1's restriction on Converse in nested scenarios).
func (b *cvBackend) ULTCreate(fn func(Ctx)) Handle {
	return &cvULT{c: b.rt.CthCreate(func(cc *converse.CthCtx) {
		fn(&cvCtx{b: b, c: cc})
	})}
}

// TaskletCreate sends a Message round-robin — the only remote insertion
// Converse offers, and what the paper's microbenchmarks use throughout.
func (b *cvBackend) TaskletCreate(fn func()) Handle {
	h := &cvMsg{}
	proc := int(b.rrNext.Add(1)-1) % b.n
	b.rt.SyncSend(proc, func(*converse.Proc) {
		defer h.done.Store(true) // survive contained panics
		fn()
	})
	return h
}

func (b *cvBackend) Yield() { b.rt.Yield() }

// Join drives the local scheduler until the unit completes: the master
// must keep processing its own queue (return mode) while remote
// processors drain theirs.
func (b *cvBackend) Join(h Handle) {
	for !h.Done() {
		if !b.rt.Yield() {
			runtime.Gosched()
		}
	}
}

func (b *cvBackend) Finalize() { b.rt.Finalize() }

func (b *cvBackend) Caps() Capabilities {
	return Capabilities{
		HierarchyLevels: 2, WorkUnitTypes: 2, Tasklets: true,
		GroupControl: true, YieldTo: false,
		GlobalQueue: false, PrivateQueues: true,
		PluginScheduler: true, StackableScheduler: false, Yieldable: true,
	}
}

func (c *cvCtx) Yield() { c.c.Yield() }

func (c *cvCtx) ULTCreate(fn func(Ctx)) Handle {
	return &cvULT{c: c.c.CthCreate(func(cc *converse.CthCtx) {
		fn(&cvCtx{b: c.b, c: cc})
	})}
}

func (c *cvCtx) TaskletCreate(fn func()) Handle {
	h := &cvMsg{}
	proc := int(c.b.rrNext.Add(1)-1) % c.b.n
	c.c.SyncSend(proc, func(*converse.Proc) {
		defer h.done.Store(true) // survive contained panics
		fn()
	})
	return h
}

func (c *cvCtx) Join(h Handle) { joinPoll(h, c.c.Yield) }

// --- Go model ---

type goBackend struct{ rt *gothreads.Runtime }

type goULT struct {
	b *goBackend
	g *gothreads.G
}

func (h *goULT) Done() bool { return h.g.Done() }

type goCtx struct {
	b *goBackend
	c *gothreads.Context
}

func (b *goBackend) Name() string { return "go" }

func (b *goBackend) Init(nthreads int) error {
	b.rt = gothreads.Init(nthreads)
	return nil
}

func (b *goBackend) ULTCreate(fn func(Ctx)) Handle {
	return &goULT{b: b, g: b.rt.Go(func(c *gothreads.Context) {
		fn(&goCtx{b: b, c: c})
	})}
}

// TaskletCreate falls back to a goroutine (single work-unit type).
func (b *goBackend) TaskletCreate(fn func()) Handle {
	return b.ULTCreate(func(Ctx) { fn() })
}

// Yield is absent from the Go model (Table I); the unified layer degrades
// it to an OS-level scheduling hint.
func (b *goBackend) Yield() { runtime.Gosched() }

func (b *goBackend) Join(h Handle) {
	if v, ok := h.(*goULT); ok {
		b.rt.Join(v.g) // channel join
		return
	}
	joinPoll(h, b.Yield)
}

func (b *goBackend) Finalize() { b.rt.Finalize() }

func (b *goBackend) Caps() Capabilities {
	return Capabilities{
		HierarchyLevels: 2, WorkUnitTypes: 1, Tasklets: false,
		GroupControl: true, YieldTo: false,
		GlobalQueue: true, PrivateQueues: false,
		PluginScheduler: false, StackableScheduler: false, Yieldable: false,
	}
}

func (c *goCtx) Yield() {} // no yield in the Go model

func (c *goCtx) ULTCreate(fn func(Ctx)) Handle {
	return &goULT{b: c.b, g: c.c.Go(func(cc *gothreads.Context) {
		fn(&goCtx{b: c.b, c: cc})
	})}
}

func (c *goCtx) TaskletCreate(fn func()) Handle {
	return c.ULTCreate(func(Ctx) { fn() })
}

func (c *goCtx) Join(h Handle) {
	if v, ok := h.(*goULT); ok {
		c.c.Join(v.g) // parks the goroutine, releases the thread
		return
	}
	joinPoll(h, func() { runtime.Gosched() })
}

// joinPoll waits for completion by polling with the given yield between
// checks — the generic cooperative join.
func joinPoll(h Handle, yield func()) {
	for !h.Done() {
		yield()
	}
}
