package core

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

// The v2 (GLT-shaped) conformance suite: placement, scheduler
// negotiation, scheduler-aware synchronization and YieldTo, each pinned
// down on every registered backend so the documented degradation rules
// cannot drift from the implementations.

func TestOpenDefaults(t *testing.T) {
	r, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Finalize()
	if r.Name() != "go" {
		t.Fatalf("default backend = %q, want go", r.Name())
	}
	if got := r.Config().Executors; got != runtime.NumCPU() {
		t.Fatalf("default executors = %d, want NumCPU = %d", got, runtime.NumCPU())
	}
	if got := r.NumExecutors(); got != r.Config().Executors {
		t.Fatalf("NumExecutors = %d, want %d", got, r.Config().Executors)
	}
	if len(r.Degradations()) != 0 {
		t.Fatalf("default open degraded: %v", r.Degradations())
	}
}

func TestOpenUnknownSchedulerIsAnError(t *testing.T) {
	_, err := Open(Config{Backend: "argobots", Executors: 1, Scheduler: "no-such-policy"})
	if !errors.Is(err, ErrUnknownScheduler) {
		t.Fatalf("err = %v, want ErrUnknownScheduler", err)
	}
}

// TestSchedulerNegotiationAllBackends requests a non-default policy on
// every backend: capability-listed requests are granted verbatim, others
// degrade to the default with an explicit record, and Strict turns the
// degradation into an error.
func TestSchedulerNegotiationAllBackends(t *testing.T) {
	for _, name := range Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := MustOpen(Config{Backend: name, Executors: 2, Scheduler: sched.NameLIFO})
			caps := r.Caps()
			granted := r.Config().Scheduler
			degs := r.Degradations()
			r.Finalize()
			if caps.SupportsScheduler(sched.NameLIFO) {
				if granted != sched.NameLIFO || len(degs) != 0 {
					t.Fatalf("supported policy degraded: granted %q, degs %v", granted, degs)
				}
			} else {
				if granted != sched.DefaultPolicy {
					t.Fatalf("unsupported policy granted %q, want default", granted)
				}
				if len(degs) != 1 || degs[0].Feature != "scheduler" ||
					degs[0].Requested != sched.NameLIFO || degs[0].Granted != sched.DefaultPolicy {
					t.Fatalf("degradation not recorded: %v", degs)
				}
				// Strict mode refuses instead of degrading.
				_, err := Open(Config{Backend: name, Executors: 2, Scheduler: sched.NameLIFO, Strict: true})
				if !errors.Is(err, ErrUnsupported) {
					t.Fatalf("strict open: err = %v, want ErrUnsupported", err)
				}
			}
		})
	}
}

// TestSchedulerPoliciesRunEverywhere opens every backend under every
// policy its capabilities advertise and runs the Listing 4 shape: the
// selected ready-pool ordering must not change completion semantics.
func TestSchedulerPoliciesRunEverywhere(t *testing.T) {
	for _, name := range Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			caps := MustOpen(Config{Backend: name, Executors: 1}).alsoFinalize().Caps()
			for _, policy := range caps.Schedulers {
				r := MustOpen(Config{Backend: name, Executors: 3, Scheduler: policy, Strict: true})
				const n = 40
				var ran atomic.Int64
				hs := make([]Handle, n)
				for i := range hs {
					hs[i] = r.ULTCreate(func(Ctx) { ran.Add(1) })
				}
				r.JoinAll(hs)
				r.Finalize()
				if got := ran.Load(); got != n {
					t.Fatalf("policy %q: ran %d of %d", policy, got, n)
				}
			}
		})
	}
}

// alsoFinalize finalizes the runtime and returns it, for one-shot
// capability probes.
func (r *Runtime) alsoFinalize() *Runtime {
	r.Finalize()
	return r
}

// TestPlacementRoundTrip is the placement contract: on backends whose
// capabilities grant pinning, a ULT created with ULTCreateTo(i) must
// observe ExecutorID() == i — from the main thread and from inside a
// running ULT. On the others the creation must still complete, with the
// executor observed inside the valid range (the documented fallback to
// default dispatch).
func TestPlacementRoundTrip(t *testing.T) {
	for _, name := range Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			const executors = 3
			r := MustOpen(Config{Backend: name, Executors: executors})
			defer r.Finalize()
			caps := r.Caps()
			n := r.NumExecutors()
			if n < 1 {
				t.Fatalf("NumExecutors = %d", n)
			}

			// From the main thread.
			observed := make([]atomic.Int64, n)
			hs := make([]Handle, 0, 2*n)
			for i := 0; i < n; i++ {
				i := i
				hs = append(hs, r.ULTCreateTo(i, func(c Ctx) {
					observed[i].Store(int64(c.ExecutorID()) + 1)
				}))
			}
			// And nested, from inside a ULT.
			nested := make([]atomic.Int64, n)
			root := r.ULTCreate(func(c Ctx) {
				inner := make([]Handle, 0, n)
				for i := 0; i < n; i++ {
					i := i
					inner = append(inner, c.ULTCreateTo(i, func(cc Ctx) {
						nested[i].Store(int64(cc.ExecutorID()) + 1)
					}))
				}
				for _, h := range inner {
					c.Join(h)
				}
			})
			r.JoinAll(hs)
			r.Join(root)

			for i := 0; i < n; i++ {
				for label, got := range map[string]int64{
					"main-thread": observed[i].Load() - 1,
					"nested":      nested[i].Load() - 1,
				} {
					if got < 0 || got >= int64(n) {
						t.Fatalf("%s create-to(%d): executor %d out of range [0,%d)", label, i, got, n)
					}
					if caps.Placement && got != int64(i) {
						t.Fatalf("%s create-to(%d) observed executor %d; caps promise pinning", label, i, got)
					}
				}
			}
		})
	}
}

// TestExecutorIdentityConsistent checks NumExecutors agreement between
// Runtime and Ctx and that plain creations observe in-range executors.
func TestExecutorIdentityConsistent(t *testing.T) {
	for _, name := range Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := MustOpen(Config{Backend: name, Executors: 2})
			defer r.Finalize()
			var bad atomic.Int64
			n := r.NumExecutors()
			hs := make([]Handle, 16)
			for i := range hs {
				hs[i] = r.ULTCreate(func(c Ctx) {
					if c.NumExecutors() != n {
						bad.Add(1)
					}
					if id := c.ExecutorID(); id < 0 || id >= n {
						bad.Add(1)
					}
				})
			}
			r.JoinAll(hs)
			if bad.Load() != 0 {
				t.Fatalf("%d executor-identity violations", bad.Load())
			}
		})
	}
}

// TestMutexHeldAcrossYieldSingleExecutor is the deadlock-freedom
// contract of the scheduler-aware Mutex: with a single executor, a work
// unit that takes the lock, yields while holding it, and only then
// releases must not wedge the runtime — contending lockers yield their
// work unit instead of blocking the executor. Mutual exclusion itself is
// checked with an inside flag.
func TestMutexHeldAcrossYieldSingleExecutor(t *testing.T) {
	for _, name := range Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := MustOpen(Config{Backend: name, Executors: 1})
			defer r.Finalize()
			m := r.NewMutex()
			const n = 8
			var inside, entered, violations atomic.Int64
			hs := make([]Handle, n)
			for i := range hs {
				hs[i] = r.ULTCreate(func(c Ctx) {
					m.Lock(c)
					if inside.Add(1) != 1 {
						violations.Add(1)
					}
					c.Yield() // hold the lock across a reschedule
					entered.Add(1)
					inside.Add(-1)
					m.Unlock()
				})
			}
			r.JoinAll(hs)
			if entered.Load() != n {
				t.Fatalf("critical section entered %d times, want %d", entered.Load(), n)
			}
			if violations.Load() != 0 {
				t.Fatalf("%d mutual-exclusion violations", violations.Load())
			}
		})
	}
}

// TestMutexContended drives the Mutex from many ULTs on several
// executors; the guarded counter must come out exact (and race-clean
// under -race).
func TestMutexContended(t *testing.T) {
	for _, name := range Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := MustOpen(Config{Backend: name, Executors: 4})
			defer r.Finalize()
			m := r.NewMutex()
			counter := 0 // protected by m; not atomic, so -race audits the lock
			const units, reps = 16, 25
			hs := make([]Handle, units)
			for i := range hs {
				hs[i] = r.ULTCreate(func(c Ctx) {
					for k := 0; k < reps; k++ {
						m.Lock(c)
						counter++
						m.Unlock()
					}
				})
			}
			r.JoinAll(hs)
			m.Lock(r) // main thread is a Waiter too
			got := counter
			m.Unlock()
			if got != units*reps {
				t.Fatalf("counter = %d, want %d", got, units*reps)
			}
		})
	}
}

// TestMutexMechanismMatchesCaps: Qthreads locks must live in the FEB
// table (SyncMechanism "feb"); a double unlock there follows Fill
// semantics while the generic word panics.
func TestMutexMechanismMatchesCaps(t *testing.T) {
	r := MustOpen(Config{Backend: "qthreads", Executors: 2})
	defer r.Finalize()
	if got := r.Caps().SyncMechanism; got != "feb" {
		t.Fatalf("qthreads SyncMechanism = %q, want feb", got)
	}
	m := r.NewMutex()
	if !m.TryLock() {
		t.Fatal("fresh FEB mutex not lockable")
	}
	if m.TryLock() {
		t.Fatal("locked FEB mutex lockable twice")
	}
	m.Unlock()

	rg := MustOpen(Config{Backend: "go", Executors: 1})
	defer rg.Finalize()
	if got := rg.Caps().SyncMechanism; got != "atomic" {
		t.Fatalf("go SyncMechanism = %q, want atomic", got)
	}
}

// TestBarrierSingleExecutor: all parties must be able to rendezvous on
// one executor — every arrival before the last yields its work unit, so
// the remaining parties can reach the barrier at all.
func TestBarrierSingleExecutor(t *testing.T) {
	for _, name := range Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := MustOpen(Config{Backend: name, Executors: 1})
			defer r.Finalize()
			const k, rounds = 5, 3
			bar := r.NewBarrier(k)
			var before, violations atomic.Int64
			hs := make([]Handle, k)
			for i := range hs {
				hs[i] = r.ULTCreate(func(c Ctx) {
					for round := 0; round < rounds; round++ {
						before.Add(1)
						bar.Wait(c)
						// Everyone must have arrived at this round's
						// barrier before anyone proceeds.
						if before.Load() < int64((round+1)*k) {
							violations.Add(1)
						}
						bar.Wait(c) // separate rounds
					}
				})
			}
			r.JoinAll(hs)
			if violations.Load() != 0 {
				t.Fatalf("%d barrier-ordering violations", violations.Load())
			}
			if before.Load() != k*rounds {
				t.Fatalf("arrivals = %d, want %d", before.Load(), k*rounds)
			}
		})
	}
}

// TestCondSingleExecutor: a waiter and its signaler sharing one executor
// must hand off — Cond.Wait releases the lock and yields the work unit,
// so the producer can run, flip the predicate and signal.
func TestCondSingleExecutor(t *testing.T) {
	for _, name := range Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := MustOpen(Config{Backend: name, Executors: 1})
			defer r.Finalize()
			m := r.NewMutex()
			cond := r.NewCond(m)
			ready := false // protected by m
			var woke atomic.Int64
			const waiters = 3
			hs := make([]Handle, 0, waiters+1)
			for i := 0; i < waiters; i++ {
				hs = append(hs, r.ULTCreate(func(c Ctx) {
					m.Lock(c)
					for !ready {
						cond.Wait(c)
					}
					m.Unlock()
					woke.Add(1)
				}))
			}
			hs = append(hs, r.ULTCreate(func(c Ctx) {
				c.Yield() // let the waiters block first
				m.Lock(c)
				ready = true
				m.Unlock()
				cond.Broadcast()
			}))
			r.JoinAll(hs)
			if woke.Load() != waiters {
				t.Fatalf("woke = %d, want %d", woke.Load(), waiters)
			}
		})
	}
}

// TestYieldToRespectsPlacement: a direct transfer must not hijack a ULT
// pinned to another executor — YieldTo degrades to Yield instead, and
// the pinned target still observes its own executor.
func TestYieldToRespectsPlacement(t *testing.T) {
	r := MustOpen(Config{Backend: "argobots", Executors: 2})
	defer r.Finalize()
	var observed atomic.Int64
	root := r.ULTCreateTo(0, func(c Ctx) {
		h := c.ULTCreateTo(1, func(cc Ctx) {
			observed.Store(int64(cc.ExecutorID()) + 1)
		})
		c.YieldTo(h) // pinned elsewhere: must not run here
		c.Join(h)
	})
	r.Join(root)
	if got := observed.Load() - 1; got != 1 {
		t.Fatalf("pinned target observed executor %d, want 1", got)
	}
}

// TestYieldToTransfersOrDegrades: where capabilities grant YieldTo, the
// target must have run by the time the call returns (single executor:
// control really was handed over); everywhere else the call must behave
// like a plain Yield and complete.
func TestYieldToTransfersOrDegrades(t *testing.T) {
	for _, name := range Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := MustOpen(Config{Backend: name, Executors: 1})
			defer r.Finalize()
			yieldTo := r.Caps().YieldTo
			var violations atomic.Int64
			root := r.ULTCreate(func(c Ctx) {
				var ran atomic.Bool
				h := c.ULTCreate(func(Ctx) { ran.Store(true) })
				c.YieldTo(h)
				if yieldTo && !ran.Load() {
					violations.Add(1)
				}
				c.Join(h)
			})
			r.Join(root)
			if violations.Load() != 0 {
				t.Fatalf("YieldTo returned before the target ran (caps promise direct transfer)")
			}
		})
	}
}
