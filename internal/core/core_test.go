package core

import (
	"strings"
	"sync/atomic"
	"testing"
)

// allBackends are the registered names; each conformance test runs on all
// of them, demonstrating the paper's claim that the reduced function set
// of Table II covers every backend.
func allBackends() []string { return Backends() }

func TestRegistryLists(t *testing.T) {
	names := Backends()
	want := []string{
		"argobots", "argobots-shared", "converse", "go",
		"massivethreads", "massivethreads-helpfirst",
		"qthreads", "qthreads-pernode",
	}
	if len(names) != len(want) {
		t.Fatalf("Backends() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Backends() = %v, want %v", names, want)
		}
	}
}

func TestUnknownBackend(t *testing.T) {
	_, err := New("no-such-runtime", 2)
	if err == nil {
		t.Fatal("New accepted an unknown backend")
	}
	if !strings.Contains(err.Error(), "no-such-runtime") {
		t.Fatalf("error %q does not name the backend", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("argobots", func() Backend { return nil })
}

func TestMustNewPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew("bogus", 1)
}

// TestListing4Shape runs the exact program shape of Listing 4 on every
// backend: init, N ULT creations, a yield, N joins, finalize.
func TestListing4Shape(t *testing.T) {
	for _, name := range allBackends() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := MustNew(name, 4)
			if r.Name() != name {
				t.Fatalf("Name = %q, want %q", r.Name(), name)
			}
			const n = 100
			var ran atomic.Int64
			hs := make([]Handle, n)
			for i := 0; i < n; i++ {
				hs[i] = r.ULTCreate(func(Ctx) { ran.Add(1) })
			}
			r.Yield()
			r.JoinAll(hs)
			r.Finalize()
			if got := ran.Load(); got != n {
				t.Fatalf("ran = %d, want %d", got, n)
			}
		})
	}
}

func TestTaskletCreateAllBackends(t *testing.T) {
	for _, name := range allBackends() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := MustNew(name, 3)
			defer r.Finalize()
			const n = 60
			var ran atomic.Int64
			hs := make([]Handle, n)
			for i := 0; i < n; i++ {
				hs[i] = r.TaskletCreate(func() { ran.Add(1) })
			}
			r.JoinAll(hs)
			if got := ran.Load(); got != n {
				t.Fatalf("ran = %d, want %d", got, n)
			}
		})
	}
}

func TestNestedCreationAllBackends(t *testing.T) {
	for _, name := range allBackends() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := MustNew(name, 4)
			defer r.Finalize()
			const parents, children = 8, 4
			var leaves atomic.Int64
			hs := make([]Handle, parents)
			for i := 0; i < parents; i++ {
				hs[i] = r.ULTCreate(func(c Ctx) {
					kids := make([]Handle, children)
					for j := range kids {
						kids[j] = c.ULTCreate(func(Ctx) { leaves.Add(1) })
					}
					for _, k := range kids {
						c.Join(k)
					}
				})
			}
			r.JoinAll(hs)
			if got := leaves.Load(); got != parents*children {
				t.Fatalf("leaves = %d, want %d", got, parents*children)
			}
		})
	}
}

func TestNestedTaskletsAllBackends(t *testing.T) {
	for _, name := range allBackends() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := MustNew(name, 4)
			defer r.Finalize()
			const parents, children = 6, 5
			var leaves atomic.Int64
			hs := make([]Handle, parents)
			for i := 0; i < parents; i++ {
				hs[i] = r.ULTCreate(func(c Ctx) {
					kids := make([]Handle, children)
					for j := range kids {
						kids[j] = c.TaskletCreate(func() { leaves.Add(1) })
					}
					for _, k := range kids {
						c.Join(k)
					}
				})
			}
			r.JoinAll(hs)
			if got := leaves.Load(); got != parents*children {
				t.Fatalf("leaves = %d, want %d", got, parents*children)
			}
		})
	}
}

func TestYieldInsideULTAllBackends(t *testing.T) {
	for _, name := range allBackends() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := MustNew(name, 2)
			defer r.Finalize()
			var steps atomic.Int64
			h := r.ULTCreate(func(c Ctx) {
				steps.Add(1)
				c.Yield()
				steps.Add(1)
			})
			r.Join(h)
			if steps.Load() != 2 {
				t.Fatalf("steps = %d, want 2", steps.Load())
			}
		})
	}
}

func TestCapabilitiesMatchTableI(t *testing.T) {
	// Spot-check the rows of Table I through the unified API.
	cases := map[string]func(Capabilities) bool{
		"argobots": func(c Capabilities) bool {
			return c.HierarchyLevels == 2 && c.WorkUnitTypes == 2 &&
				c.Tasklets && c.YieldTo && c.StackableScheduler && c.PrivateQueues
		},
		"qthreads": func(c Capabilities) bool {
			return c.HierarchyLevels == 3 && c.WorkUnitTypes == 1 &&
				!c.Tasklets && !c.YieldTo && c.PrivateQueues
		},
		"massivethreads": func(c Capabilities) bool {
			return c.HierarchyLevels == 2 && !c.Tasklets && c.PrivateQueues
		},
		"converse": func(c Capabilities) bool {
			return c.WorkUnitTypes == 2 && c.Tasklets && c.PrivateQueues
		},
		"go": func(c Capabilities) bool {
			return c.GlobalQueue && !c.PrivateQueues && !c.Yieldable &&
				!c.PluginScheduler
		},
	}
	for name, check := range cases {
		r := MustNew(name, 2)
		caps := r.Caps()
		r.Finalize()
		if !check(caps) {
			t.Fatalf("%s capabilities do not match Table I: %+v", name, caps)
		}
	}
}

func TestJoinOnCompletedHandle(t *testing.T) {
	for _, name := range allBackends() {
		r := MustNew(name, 2)
		h := r.ULTCreate(func(Ctx) {})
		r.Join(h)
		if !h.Done() {
			t.Fatalf("%s: handle not done after join", name)
		}
		r.Finalize()
	}
}
