package core

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// Random spawn-tree property test: for any randomly shaped tree of ULT
// and tasklet spawns with interior joins, every node must execute exactly
// once and the root join must not return before all descendants finished.
// This is the structural invariant every pattern in the paper relies on,
// checked across every backend.

// treeSpec describes a random spawn tree.
type treeSpec struct {
	fanout  []int // fanout per level; len = depth
	tasklet []bool
}

func genTree(rng *rand.Rand) treeSpec {
	depth := 1 + rng.Intn(3)
	ts := treeSpec{}
	for d := 0; d < depth; d++ {
		ts.fanout = append(ts.fanout, 1+rng.Intn(4))
		ts.tasklet = append(ts.tasklet, rng.Intn(2) == 0)
	}
	return ts
}

// nodes computes the expected execution count (all nodes below the root).
func (ts treeSpec) nodes() int64 {
	total := int64(0)
	width := int64(1)
	for d := range ts.fanout {
		width *= int64(ts.fanout[d])
		total += width
	}
	return total
}

// spawnLevel recursively builds the tree from inside a ULT context.
func spawnLevel(c Ctx, ts treeSpec, depth int, executed *atomic.Int64) {
	if depth >= len(ts.fanout) {
		return
	}
	hs := make([]Handle, 0, ts.fanout[depth])
	for i := 0; i < ts.fanout[depth]; i++ {
		if ts.tasklet[depth] && depth == len(ts.fanout)-1 {
			// Leaves may be tasklets (they cannot spawn further).
			hs = append(hs, c.TaskletCreate(func() { executed.Add(1) }))
			continue
		}
		hs = append(hs, c.ULTCreate(func(cc Ctx) {
			executed.Add(1)
			spawnLevel(cc, ts, depth+1, executed)
		}))
	}
	for _, h := range hs {
		c.Join(h)
	}
}

func TestRandomSpawnTreesAllBackends(t *testing.T) {
	for _, name := range Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			r := MustNew(name, 3)
			defer r.Finalize()
			for trial := 0; trial < 8; trial++ {
				ts := genTree(rng)
				var executed atomic.Int64
				root := r.ULTCreate(func(c Ctx) {
					spawnLevel(c, ts, 0, &executed)
				})
				r.Join(root)
				if got, want := executed.Load(), ts.nodes(); got != want {
					t.Fatalf("trial %d (%+v): executed %d nodes, want %d",
						trial, ts, got, want)
				}
			}
		})
	}
}

// TestJoinOrderIndependence joins handles in reverse and shuffled order:
// join must be order-insensitive on every backend.
func TestJoinOrderIndependence(t *testing.T) {
	for _, name := range Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := MustNew(name, 3)
			defer r.Finalize()
			const n = 60
			var ran atomic.Int64
			hs := make([]Handle, n)
			for i := range hs {
				hs[i] = r.ULTCreate(func(Ctx) { ran.Add(1) })
			}
			// Reverse order.
			for i := n - 1; i >= 0; i-- {
				r.Join(hs[i])
			}
			if ran.Load() != n {
				t.Fatalf("ran = %d, want %d", ran.Load(), n)
			}
			// Joining already-joined handles is idempotent.
			for _, h := range hs {
				r.Join(h)
			}
		})
	}
}

// TestPanickedUnitsStillJoinable: failure injection through the unified
// API — a panicking work unit completes (with its error contained by the
// substrate) and joins normally on every backend.
func TestPanickedUnitsStillJoinable(t *testing.T) {
	for _, name := range Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			r := MustNew(name, 2)
			defer r.Finalize()
			bad := r.ULTCreate(func(Ctx) { panic("injected") })
			good := r.ULTCreate(func(Ctx) {})
			r.Join(bad)
			r.Join(good)
			if !bad.Done() || !good.Done() {
				t.Fatal("handles not done after join")
			}
			// The backend must remain usable after a contained panic.
			again := r.TaskletCreate(func() {})
			r.Join(again)
		})
	}
}
