// Package core implements the unified lightweight-thread API that the
// paper identifies as its forward path: §VIII-C and Listing 4 show that a
// reduced set of functions — initialization, ULT creation, tasklet
// creation, yield, join, finalization (Table II) — suffices to implement
// every parallel pattern studied, and §X announces "a common API for the
// LWT libraries" as future work (the authors later shipped it as GLT).
//
// This package is that common API, at its second (GLT-shaped) revision:
// one Runtime type constructed from a Config (Open), over a pluggable
// Backend implemented by each of the emulated libraries. Beyond the
// Table II rows, v2 adds the three capability groups GLT standardized:
//
//   - Placement: NumExecutors, ULTCreateTo and Ctx.ExecutorID map work
//     units onto named executors (execution streams, shepherds, workers,
//     processors, threads).
//   - Scheduler selection: Config.Scheduler picks an internal/sched
//     policy by name for the backend's ready pools.
//   - Synchronization objects: Mutex, Barrier and Cond (sync.go) that
//     are scheduler-aware — waiting yields the work unit instead of
//     blocking the executor.
//
// Every feature degrades the way the paper's own microbenchmarks
// degrade it (tasklets fall back to ULTs, remote creation falls back to
// local, yield falls back to a scheduler hint), and every degradation
// is explicit: Config-level requests are negotiated against the
// backend's Capabilities at Open — recorded on the Runtime, queryable
// via Degradations, fatal under Config.Strict — while the per-call
// operations (ULTCreateTo, YieldTo) degrade statically per the
// capability flags (Placement, YieldTo).
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/queue"
	"repro/internal/sched"
)

// Handle is a joinable reference to a created work unit.
type Handle interface {
	// Done reports completion without blocking.
	Done() bool
}

// Ctx is the execution context passed to ULT bodies: the cooperative
// operations of the unified API that are valid only inside a running
// work unit.
type Ctx interface {
	// Yield re-enters the backend's scheduler.
	Yield()
	// YieldTo hands control directly to the target work unit where the
	// backend supports it (Caps().YieldTo); elsewhere it degrades to a
	// plain Yield. Handles from other runtimes degrade likewise.
	YieldTo(h Handle)
	// ULTCreate spawns a child ULT wherever the backend's dispatch
	// prefers.
	ULTCreate(fn func(Ctx)) Handle
	// ULTCreateTo spawns a child ULT pinned to the named executor where
	// the backend supports placement (Caps().Placement); elsewhere it
	// degrades to local creation. The executor index is taken modulo
	// NumExecutors.
	ULTCreateTo(executor int, fn func(Ctx)) Handle
	// TaskletCreate spawns a child tasklet (or the backend's closest
	// equivalent).
	TaskletCreate(fn func()) Handle
	// Join waits for a work unit created by this or any context.
	Join(h Handle)
	// ExecutorID reports the executor currently running this work unit.
	ExecutorID() int
	// NumExecutors reports the backend's executor-group size.
	NumExecutors() int
}

// Capabilities describes a backend in the vocabulary of the paper's
// Table I, extended with the v2 (GLT-shaped) capability columns.
type Capabilities struct {
	// HierarchyLevels counts the execution hierarchy depth (Pthreads 1,
	// Qthreads 3, the rest 2).
	HierarchyLevels int
	// WorkUnitTypes counts the distinct work-unit kinds.
	WorkUnitTypes int
	// Tasklets reports native stackless-work-unit support.
	Tasklets bool
	// GroupControl reports user control over the executor group size.
	GroupControl bool
	// YieldTo reports direct control transfer between ULTs.
	YieldTo bool
	// GlobalQueue reports a single shared work-unit queue.
	GlobalQueue bool
	// PrivateQueues reports per-executor work-unit queues.
	PrivateQueues bool
	// PluginScheduler reports user-replaceable scheduling policies.
	PluginScheduler bool
	// StackableScheduler reports run-time scheduler stacking.
	StackableScheduler bool
	// Yieldable reports whether any yield operation is exposed at all
	// (Go's model exposes none).
	Yieldable bool

	// --- v2 extensions ---

	// Placement reports that ULTCreateTo pins work to the named
	// executor: a ULT created toward executor i is dispatched only by
	// executor i, so its body observes ExecutorID() == i. Backends
	// without it (shared pools, work stealing, global queues) fall back
	// to their default dispatch.
	Placement bool
	// Schedulers lists the ready-pool policies Open can select on this
	// backend (Config.Scheduler), default first. An empty or absent
	// request always succeeds; a listed name is honored; anything else
	// degrades to the default.
	Schedulers []string
	// SyncMechanism names the substrate behind the unified sync objects
	// on this backend: "feb" (full/empty-bit words in the runtime's
	// table, Qthreads) or "atomic" (CAS words polled with cooperative
	// yields).
	SyncMechanism string
	// AsyncIO reports that a blocking wait issued through the aio
	// surface (Sleep, Deadline, Read, Write, Await) parks the work unit
	// on the reactor and frees its executor, resuming into the unit's
	// home pool when the operation completes. Backends without it (or
	// call sites without a ULT context, e.g. tasklets) degrade
	// explicitly: the wait still completes, but by yield-polling on the
	// executor — or plain blocking where not even a yield is available —
	// rather than parking.
	AsyncIO bool
}

// SupportsScheduler reports whether the named policy is in the
// capability's scheduler list (the empty name is the default and always
// supported).
func (c Capabilities) SupportsScheduler(name string) bool {
	if name == "" || name == sched.DefaultPolicy {
		return true
	}
	for _, s := range c.Schedulers {
		if s == name {
			return true
		}
	}
	return false
}

// Backend is one LWT library behind the unified API.
type Backend interface {
	// Name returns the backend's registry key (e.g. "argobots").
	Name() string
	// Init starts the backend. The Config it receives has been
	// negotiated: Executors is resolved (>= 1) and Scheduler names a
	// policy the backend's Capabilities advertise.
	Init(cfg Config) error
	// NumExecutors reports the executor-group size (execution streams,
	// shepherds, workers, processors, threads).
	NumExecutors() int
	// ULTCreate creates a ULT from the main thread.
	ULTCreate(fn func(Ctx)) Handle
	// ULTCreateTo creates a ULT pinned to the named executor from the
	// main thread, degrading per Caps().Placement.
	ULTCreateTo(executor int, fn func(Ctx)) Handle
	// TaskletCreate creates a tasklet (or fallback) from the main thread.
	TaskletCreate(fn func()) Handle
	// Yield yields the main thread to the backend's scheduler.
	Yield()
	// Join waits, from the main thread, for a unit created on this
	// backend.
	Join(h Handle)
	// Finalize stops the backend.
	Finalize()
	// Caps describes the backend per Table I plus the v2 columns. It
	// must be callable before Init (Open negotiates against it).
	Caps() Capabilities
}

// BulkBackend is an optional Backend extension for bulk creation: one
// call creates a whole batch of work units with the backend's cheapest
// distribution — batched pool insertions (one multi-ticket reservation on
// the lock-free queues, one lock acquisition on the mutex pools) and a
// single idle-executor wake. Backends without it are served by a create
// loop in Runtime.ULTCreateBulk / Runtime.TaskletCreateBulk.
type BulkBackend interface {
	// ULTCreateBulk creates one ULT per body, in order.
	ULTCreateBulk(fns []func(Ctx)) []Handle
	// TaskletCreateBulk creates one tasklet (or fallback) per body.
	TaskletCreateBulk(fns []func()) []Handle
}

// Factory constructs an uninitialized backend.
type Factory func() Backend

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register installs a backend factory under its name. Emulation adapters
// call it from init; re-registration panics to catch name collisions.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: backend %q registered twice", name))
	}
	registry[name] = f
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Errors reported by Open.
var (
	// ErrUnknownBackend is returned for unregistered backend names.
	ErrUnknownBackend = errors.New("core: unknown backend")
	// ErrUnknownScheduler is returned when Config.Scheduler names no
	// policy at all (a typo, not a capability gap; see sched.Names).
	ErrUnknownScheduler = errors.New("core: unknown scheduler policy")
	// ErrUnsupported is returned under Config.Strict when the backend
	// cannot honor a requested capability that would otherwise degrade.
	ErrUnsupported = errors.New("core: backend does not support requested capability")
)

// Config parameterizes Open — the v2 constructor, replacing the v1
// positional New(name, nthreads).
type Config struct {
	// Backend is the registered backend name (see Backends); empty
	// selects "go".
	Backend string
	// Executors is the executor-group size — execution streams
	// (Argobots), shepherds (Qthreads), workers (MassiveThreads),
	// processors (Converse), scheduler threads (Go); <= 0 selects
	// runtime.NumCPU().
	Executors int
	// Scheduler names the ready-pool ordering policy: "fifo" (the
	// default), "lifo", "priority" or "random" (sched.Names). Backends
	// whose Capabilities do not list the request degrade to their
	// default policy and record a Degradation.
	Scheduler string
	// Strict makes Open fail with ErrUnsupported instead of degrading.
	Strict bool
}

// Degradation records one capability request Open could not honor; the
// runtime fell back the way the paper's own microbenchmarks do.
type Degradation struct {
	// Feature is the capability group ("scheduler", ...).
	Feature string
	// Requested is what the Config asked for.
	Requested string
	// Granted is what the runtime actually provides.
	Granted string
	// Reason explains the gap in the backend's own terms.
	Reason string
}

// String renders the degradation for logs and errors.
func (d Degradation) String() string {
	return fmt.Sprintf("%s: requested %q, granted %q (%s)", d.Feature, d.Requested, d.Granted, d.Reason)
}

// Runtime is an initialized unified-API instance (Listing 4's program
// shape: initialization_function .. finalize_function).
type Runtime struct {
	b    Backend
	cfg  Config // granted configuration, after negotiation
	degs []Degradation
}

// Open initializes a backend from the configuration, negotiating every
// requested capability against the backend's Capabilities. Requests the
// backend cannot honor degrade explicitly — recorded and queryable via
// Degradations — unless cfg.Strict, which turns them into ErrUnsupported.
func Open(cfg Config) (*Runtime, error) {
	if cfg.Backend == "" {
		cfg.Backend = "go"
	}
	if cfg.Executors <= 0 {
		cfg.Executors = runtime.NumCPU()
	}
	registryMu.RLock()
	f, ok := registry[cfg.Backend]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownBackend, cfg.Backend, Backends())
	}
	b := f()
	caps := b.Caps()

	var degs []Degradation
	if cfg.Scheduler != "" {
		if _, known := sched.ByName(cfg.Scheduler); !known {
			return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownScheduler, cfg.Scheduler, sched.Names())
		}
		if !caps.SupportsScheduler(cfg.Scheduler) {
			degs = append(degs, Degradation{
				Feature:   "scheduler",
				Requested: cfg.Scheduler,
				Granted:   sched.DefaultPolicy,
				Reason:    schedulerGapReason(caps),
			})
			cfg.Scheduler = sched.DefaultPolicy
		}
	}
	if cfg.Strict && len(degs) > 0 {
		return nil, fmt.Errorf("%w: %q: %v", ErrUnsupported, cfg.Backend, degs)
	}
	if err := b.Init(cfg); err != nil {
		return nil, fmt.Errorf("core: init %q: %w", cfg.Backend, err)
	}
	return &Runtime{b: b, cfg: cfg, degs: degs}, nil
}

// schedulerGapReason words the scheduler degradation per Table I.
func schedulerGapReason(caps Capabilities) string {
	if !caps.PluginScheduler {
		return "backend has no plug-in scheduler (Table I)"
	}
	return "policy selectable only at configure time (Table I)"
}

// MustOpen is Open for known-good configurations; it panics on error.
func MustOpen(cfg Config) *Runtime {
	r, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return r
}

// New initializes backend name with nthreads executors.
//
// Deprecated: New is the v1 positional constructor kept for migration;
// use Open, which adds scheduler selection and capability negotiation.
func New(name string, nthreads int) (*Runtime, error) {
	return Open(Config{Backend: name, Executors: nthreads})
}

// MustNew is New for known-good arguments; it panics on error.
//
// Deprecated: use MustOpen.
func MustNew(name string, nthreads int) *Runtime {
	r, err := New(name, nthreads)
	if err != nil {
		panic(err)
	}
	return r
}

// Backend exposes the underlying backend.
func (r *Runtime) Backend() Backend { return r.b }

// Name returns the backend name.
func (r *Runtime) Name() string { return r.b.Name() }

// Caps returns the backend's Table I feature set plus the v2 columns.
func (r *Runtime) Caps() Capabilities { return r.b.Caps() }

// Config returns the granted configuration: what the runtime actually
// provides after negotiation (e.g. Scheduler is the effective policy).
func (r *Runtime) Config() Config { return r.cfg }

// Degradations lists the capability requests Open could not honor on
// this backend, in request order. Empty means everything asked for was
// granted.
func (r *Runtime) Degradations() []Degradation {
	out := make([]Degradation, len(r.degs))
	copy(out, r.degs)
	return out
}

// NumExecutors reports the executor-group size (the placement domain
// count for ULTCreateTo).
func (r *Runtime) NumExecutors() int { return r.b.NumExecutors() }

// SchedStatsReporter is the optional Backend extension exposing the
// summed ready-pool counters (queue.Stats snapshots) of the substrate's
// schedulers. Every bundled backend implements it; the serving tier's
// /metrics export reads it.
type SchedStatsReporter interface {
	// SchedStats reports the aggregated pool counters.
	SchedStats() queue.Counts
}

// SchedStats reports the backend's aggregated ready-pool counters —
// pushes, pops, steals, contention, empty polls — or zeros when the
// backend does not keep them.
func (r *Runtime) SchedStats() queue.Counts {
	if sr, ok := r.b.(SchedStatsReporter); ok {
		return sr.SchedStats()
	}
	return queue.Counts{}
}

// ULTCreate creates a ULT (Table II row "ULT creation").
func (r *Runtime) ULTCreate(fn func(Ctx)) Handle { return r.b.ULTCreate(fn) }

// ULTCreateTo creates a ULT pinned to the named executor on backends
// whose Caps().Placement allows it, and falls back to the backend's
// default dispatch elsewhere. The executor index is taken modulo
// NumExecutors.
func (r *Runtime) ULTCreateTo(executor int, fn func(Ctx)) Handle {
	return r.b.ULTCreateTo(executor, fn)
}

// TaskletCreate creates a tasklet or the backend's closest work unit
// (Table II row "Tasklet creation").
func (r *Runtime) TaskletCreate(fn func()) Handle { return r.b.TaskletCreate(fn) }

// ULTCreateBulk creates one ULT per body in a single submission: on
// backends with native bulk support the batch pays the pool
// synchronization and the idle-executor wake once, which is what lets
// the loop and task patterns (Figures 4–8) stop paying per-iteration
// submission overhead. Elsewhere it degrades to a create loop.
func (r *Runtime) ULTCreateBulk(fns []func(Ctx)) []Handle {
	if bb, ok := r.b.(BulkBackend); ok {
		return bb.ULTCreateBulk(fns)
	}
	hs := make([]Handle, len(fns))
	for i, fn := range fns {
		hs[i] = r.b.ULTCreate(fn)
	}
	return hs
}

// TaskletCreateBulk creates one tasklet (or the backend's fallback work
// unit) per body in a single submission; see ULTCreateBulk.
func (r *Runtime) TaskletCreateBulk(fns []func()) []Handle {
	if bb, ok := r.b.(BulkBackend); ok {
		return bb.TaskletCreateBulk(fns)
	}
	hs := make([]Handle, len(fns))
	for i, fn := range fns {
		hs[i] = r.b.TaskletCreate(fn)
	}
	return hs
}

// Yield yields the main thread (Table II row "Yield").
func (r *Runtime) Yield() { r.b.Yield() }

// Join waits for one work unit (Table II row "Join").
func (r *Runtime) Join(h Handle) { r.b.Join(h) }

// JoinAll joins a batch of work units in order — the join loop of
// Listing 4.
func (r *Runtime) JoinAll(hs []Handle) {
	for _, h := range hs {
		r.b.Join(h)
	}
}

// Finalize stops the backend (Table II row "Finalization").
func (r *Runtime) Finalize() { r.b.Finalize() }
