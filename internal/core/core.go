// Package core implements the unified lightweight-thread API that the
// paper identifies as its forward path: §VIII-C and Listing 4 show that a
// reduced set of functions — initialization, ULT creation, tasklet
// creation, yield, join, finalization (Table II) — suffices to implement
// every parallel pattern studied, and §X announces "a common API for the
// LWT libraries" as future work (the authors later shipped it as GLT).
//
// This package is that common API: one Runtime type whose operations are
// the Table II rows, over a pluggable Backend implemented by each of the
// emulated libraries. Features a backend lacks degrade the way the paper's
// own microbenchmarks degrade them (tasklets fall back to ULTs, remote
// creation falls back to local, yield falls back to a scheduler hint).
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Handle is a joinable reference to a created work unit.
type Handle interface {
	// Done reports completion without blocking.
	Done() bool
}

// Ctx is the execution context passed to ULT bodies: the cooperative
// operations of Table II that are valid only inside a running work unit.
type Ctx interface {
	// Yield re-enters the backend's scheduler.
	Yield()
	// ULTCreate spawns a child ULT.
	ULTCreate(fn func(Ctx)) Handle
	// TaskletCreate spawns a child tasklet (or the backend's closest
	// equivalent).
	TaskletCreate(fn func()) Handle
	// Join waits for a work unit created by this or any context.
	Join(h Handle)
}

// Capabilities describes a backend in the vocabulary of Table I.
type Capabilities struct {
	// HierarchyLevels counts the execution hierarchy depth (Pthreads 1,
	// Qthreads 3, the rest 2).
	HierarchyLevels int
	// WorkUnitTypes counts the distinct work-unit kinds.
	WorkUnitTypes int
	// Tasklets reports native stackless-work-unit support.
	Tasklets bool
	// GroupControl reports user control over the executor group size.
	GroupControl bool
	// YieldTo reports direct control transfer between ULTs.
	YieldTo bool
	// GlobalQueue reports a single shared work-unit queue.
	GlobalQueue bool
	// PrivateQueues reports per-executor work-unit queues.
	PrivateQueues bool
	// PluginScheduler reports user-replaceable scheduling policies.
	PluginScheduler bool
	// StackableScheduler reports run-time scheduler stacking.
	StackableScheduler bool
	// Yieldable reports whether any yield operation is exposed at all
	// (Go's model exposes none).
	Yieldable bool
}

// Backend is one LWT library behind the unified API.
type Backend interface {
	// Name returns the backend's registry key (e.g. "argobots").
	Name() string
	// Init starts the backend with nthreads executors.
	Init(nthreads int) error
	// ULTCreate creates a ULT from the main thread.
	ULTCreate(fn func(Ctx)) Handle
	// TaskletCreate creates a tasklet (or fallback) from the main thread.
	TaskletCreate(fn func()) Handle
	// Yield yields the main thread to the backend's scheduler.
	Yield()
	// Join waits, from the main thread, for a unit created on this
	// backend.
	Join(h Handle)
	// Finalize stops the backend.
	Finalize()
	// Caps describes the backend per Table I.
	Caps() Capabilities
}

// Factory constructs an uninitialized backend.
type Factory func() Backend

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register installs a backend factory under its name. Emulation adapters
// call it from init; re-registration panics to catch name collisions.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("core: backend %q registered twice", name))
	}
	registry[name] = f
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ErrUnknownBackend is returned by New for unregistered names.
var ErrUnknownBackend = errors.New("core: unknown backend")

// Runtime is an initialized unified-API instance (Listing 4's program
// shape: initialization_function .. finalize_function).
type Runtime struct {
	b Backend
}

// New initializes backend name with nthreads executors.
func New(name string, nthreads int) (*Runtime, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q (have %v)", ErrUnknownBackend, name, Backends())
	}
	b := f()
	if err := b.Init(nthreads); err != nil {
		return nil, fmt.Errorf("core: init %q: %w", name, err)
	}
	return &Runtime{b: b}, nil
}

// MustNew is New for known-good arguments; it panics on error.
func MustNew(name string, nthreads int) *Runtime {
	r, err := New(name, nthreads)
	if err != nil {
		panic(err)
	}
	return r
}

// Backend exposes the underlying backend.
func (r *Runtime) Backend() Backend { return r.b }

// Name returns the backend name.
func (r *Runtime) Name() string { return r.b.Name() }

// Caps returns the backend's Table I feature set.
func (r *Runtime) Caps() Capabilities { return r.b.Caps() }

// ULTCreate creates a ULT (Table II row "ULT creation").
func (r *Runtime) ULTCreate(fn func(Ctx)) Handle { return r.b.ULTCreate(fn) }

// TaskletCreate creates a tasklet or the backend's closest work unit
// (Table II row "Tasklet creation").
func (r *Runtime) TaskletCreate(fn func()) Handle { return r.b.TaskletCreate(fn) }

// Yield yields the main thread (Table II row "Yield").
func (r *Runtime) Yield() { r.b.Yield() }

// Join waits for one work unit (Table II row "Join").
func (r *Runtime) Join(h Handle) { r.b.Join(h) }

// JoinAll joins a batch of work units in order — the join loop of
// Listing 4.
func (r *Runtime) JoinAll(hs []Handle) {
	for _, h := range hs {
		r.b.Join(h)
	}
}

// Finalize stops the backend (Table II row "Finalization").
func (r *Runtime) Finalize() { r.b.Finalize() }
