package core

import (
	"context"
	"io"
	"time"

	"repro/internal/aio"
)

// This file is the unified API's async-I/O surface: package-level waits
// that free the calling work unit's executor instead of blocking it.
// Each call resolves the strongest waiting mechanism the call site
// supports and degrades explicitly from there:
//
//  1. A ULT context whose backend can foreign-resume (the context
//     implements ioParkable) parks the unit on the aio reactor; the
//     reactor resumes it into its home pool when the operation
//     completes. This is the Capabilities.AsyncIO promise.
//  2. A context without IOPark stays scheduled and yield-polls the
//     completion word (aio.PollParker over Ctx.Yield) — correct
//     everywhere, but the wait occupies the executor.
//  3. A nil context (tasklet bodies, plain goroutines, the main thread)
//     blocks in the ordinary Go way: time.Sleep, a blocking Read, a
//     channel receive. There is no unit to park and no scheduler to
//     yield to.

// ErrCanceled is the early-wake sentinel a cancelable wait returns
// when the request's cancellation signal fires before the wait's own
// completion (re-exported from the aio reactor so call sites need only
// this package).
var ErrCanceled = aio.ErrCanceled

// Canceler is implemented by serving-layer contexts that carry a
// cooperative cancellation signal. CancelCh returns a channel that is
// closed when the request's deadline has passed or its client has gone
// away — nil when the request carries neither. Sleep and AwaitIO
// consult it automatically (a parked wait wakes early with
// ErrCanceled); handler bodies can select on Canceled(c) at their own
// safe points.
type Canceler interface {
	CancelCh() <-chan struct{}
}

// cancelOf extracts c's cancellation signal, nil when c carries none.
func cancelOf(c Ctx) <-chan struct{} {
	if cc, ok := c.(Canceler); ok {
		return cc.CancelCh()
	}
	return nil
}

// Canceled returns the cooperative cancellation signal attached to c —
// closed when the request's deadline passed or its submission context
// was cancelled — or nil when c carries none (including nil c), which
// blocks forever in a select exactly like context.Context.Done.
func Canceled(c Ctx) <-chan struct{} {
	if c == nil {
		return nil
	}
	return cancelOf(c)
}

// ioParkable is implemented by backend contexts whose substrate can
// suspend the running work unit and later resume it from an arbitrary
// goroutine (the reactor). IOPark returns a fresh park/unpark pair
// bound to the unit's current placement: park suspends the calling
// unit, unpark resumes it into the pool it was issued from. The pair is
// valid for exactly one operation — placement is captured at issue
// time, so a new pair must be minted per wait.
type ioParkable interface {
	IOPark() (park func(), unpark func())
}

// funcParker adapts an IOPark pair to the aio.Parker contract.
type funcParker struct {
	park   func()
	unpark func()
}

func (f funcParker) Park()   { f.park() }
func (f funcParker) Unpark() { f.unpark() }

// parkerFor maps a non-nil context to its strongest aio waiting
// mechanism: a real parker when the backend can foreign-resume, the
// yield-polling degradation otherwise.
func parkerFor(c Ctx) aio.Parker {
	if p, ok := c.(ioParkable); ok {
		park, unpark := p.IOPark()
		return funcParker{park: park, unpark: unpark}
	}
	return aio.PollParker(c.Yield)
}

// Sleep blocks the calling work unit for at least d. On an AsyncIO
// backend the unit parks on the reactor's timer heap and its executor
// runs other work for the duration; degradations per the file comment.
// On a context carrying a cancellation signal (Canceler) the wait ends
// early with ErrCanceled when the signal fires; otherwise Sleep always
// returns nil.
func Sleep(c Ctx, d time.Duration) error {
	if c == nil {
		time.Sleep(d)
		return nil
	}
	if cancel := cancelOf(c); cancel != nil {
		return aio.SleepCancel(parkerFor(c), d, cancel)
	}
	aio.Sleep(parkerFor(c), d)
	return nil
}

// Deadline blocks the calling work unit until ctx is cancelled or its
// deadline passes, returning ctx.Err(). A context that can never be
// done returns nil immediately.
func Deadline(c Ctx, ctx context.Context) error {
	if c == nil {
		if ctx.Done() == nil {
			return nil
		}
		<-ctx.Done()
		return ctx.Err()
	}
	return aio.Deadline(parkerFor(c), ctx)
}

// AwaitIO blocks the calling work unit until done is closed — a
// future's completion channel in whatever shape the caller has one
// (context.Context.Done(), a close-on-finish signal). On a context
// carrying a cancellation signal (Canceler) the wait ends early with
// ErrCanceled when the signal fires; otherwise AwaitIO always returns
// nil.
func AwaitIO(c Ctx, done <-chan struct{}) error {
	if c == nil {
		<-done
		return nil
	}
	if cancel := cancelOf(c); cancel != nil {
		return aio.AwaitCancel(parkerFor(c), done, cancel)
	}
	aio.Await(parkerFor(c), done)
	return nil
}

// ReadIO reads from r into buf without occupying the calling unit's
// executor while the data is in flight. Like io.Reader, one successful
// read may be short.
func ReadIO(c Ctx, r io.Reader, buf []byte) (int, error) {
	if c == nil {
		return r.Read(buf)
	}
	return aio.Read(parkerFor(c), r, buf)
}

// WriteIO writes all of buf to w without occupying the calling unit's
// executor while the bytes drain.
func WriteIO(c Ctx, w io.Writer, buf []byte) (int, error) {
	if c == nil {
		return w.Write(buf)
	}
	return aio.Write(parkerFor(c), w, buf)
}
