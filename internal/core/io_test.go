package core_test

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestAsyncIOCapability pins the promise the README's fallback matrix
// documents: every backend advertises AsyncIO.
func TestAsyncIOCapability(t *testing.T) {
	for _, name := range core.Backends() {
		r := core.MustNew(name, 2)
		if !r.Caps().AsyncIO {
			t.Errorf("%s: AsyncIO capability not set", name)
		}
		r.Finalize()
	}
}

// TestSleepInULT drives core.Sleep from inside a work unit on every
// backend: the unit must block at least the requested duration and the
// join must complete (the unit resumed after parking).
func TestSleepInULT(t *testing.T) {
	for _, name := range core.Backends() {
		t.Run(name, func(t *testing.T) {
			r := core.MustNew(name, 2)
			defer r.Finalize()
			var elapsed atomic.Int64
			h := r.ULTCreate(func(c core.Ctx) {
				start := time.Now()
				core.Sleep(c, 10*time.Millisecond)
				elapsed.Store(int64(time.Since(start)))
			})
			r.Join(h)
			if got := time.Duration(elapsed.Load()); got < 10*time.Millisecond {
				t.Fatalf("slept %v, want >= 10ms", got)
			}
		})
	}
}

// TestSleepResumeNotStarvedByYieldSpin pins scheduling fairness for
// resumed units: with a single executor and a main flow that yield-spins
// waiting for the result (the serve pump's exact shape), the parked
// unit's resume must still get dispatched. A scheduler that only serves
// externally-resumed work when its local queue is empty livelocks here —
// the spinning main flow's continuation keeps the local queue non-empty
// forever (caught live on massivethreads: the benchmark's first request
// never completed).
func TestSleepResumeNotStarvedByYieldSpin(t *testing.T) {
	for _, name := range core.Backends() {
		t.Run(name, func(t *testing.T) {
			r := core.MustNew(name, 1)
			defer r.Finalize()
			var done atomic.Bool
			h := r.ULTCreate(func(c core.Ctx) {
				core.Sleep(c, 5*time.Millisecond)
				done.Store(true)
			})
			deadline := time.Now().Add(10 * time.Second)
			for !done.Load() && time.Now().Before(deadline) {
				r.Yield()
			}
			if !done.Load() {
				t.Fatal("parked unit never resumed while the main flow yield-spun")
			}
			r.Join(h)
		})
	}
}

// TestSleepFreesExecutor is the tentpole's contract in miniature: with a
// single executor, a sleeping unit must hand the executor to its
// sibling instead of occupying it — the sibling finishes while the
// sleeper is still parked.
func TestSleepFreesExecutor(t *testing.T) {
	for _, name := range core.Backends() {
		t.Run(name, func(t *testing.T) {
			r := core.MustNew(name, 1)
			defer r.Finalize()
			var siblingDone atomic.Bool
			var sawSibling atomic.Bool
			sleeper := r.ULTCreate(func(c core.Ctx) {
				core.Sleep(c, 50*time.Millisecond)
				sawSibling.Store(siblingDone.Load())
			})
			sibling := r.ULTCreate(func(c core.Ctx) {
				siblingDone.Store(true)
			})
			r.Join(sibling)
			r.Join(sleeper)
			if !sawSibling.Load() {
				t.Fatalf("sibling did not run while the sleeper was parked")
			}
		})
	}
}

// TestSleepNilCtx covers degradation tier 3: no work unit, plain
// time.Sleep semantics.
func TestSleepNilCtx(t *testing.T) {
	start := time.Now()
	core.Sleep(nil, 5*time.Millisecond)
	if got := time.Since(start); got < 5*time.Millisecond {
		t.Fatalf("slept %v, want >= 5ms", got)
	}
}

// TestDeadlineInULT checks cancellation propagation through the parked
// wait on a parking backend and on the nil-context fallback.
func TestDeadlineInULT(t *testing.T) {
	r := core.MustNew("argobots", 2)
	defer r.Finalize()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	var err atomic.Value
	h := r.ULTCreate(func(c core.Ctx) {
		err.Store(core.Deadline(c, ctx))
	})
	r.Join(h)
	if got := err.Load(); got != context.DeadlineExceeded {
		t.Fatalf("Deadline = %v, want DeadlineExceeded", got)
	}
	if core.Deadline(nil, context.Background()) != nil {
		t.Fatalf("uncancellable context should return nil immediately")
	}
}

// TestAwaitIOInULT parks a unit on a future-shaped channel and closes
// it from outside the runtime.
func TestAwaitIOInULT(t *testing.T) {
	r := core.MustNew("qthreads", 2)
	defer r.Finalize()
	done := make(chan struct{})
	var woke atomic.Bool
	h := r.ULTCreate(func(c core.Ctx) {
		core.AwaitIO(c, done)
		woke.Store(true)
	})
	time.AfterFunc(5*time.Millisecond, func() { close(done) })
	r.Join(h)
	if !woke.Load() {
		t.Fatalf("AwaitIO did not return after close")
	}
}

// TestReadWriteIOInULT moves bytes through a net.Pipe from inside work
// units: the reader parks until the writer's bytes arrive.
func TestReadWriteIOInULT(t *testing.T) {
	r := core.MustNew("go", 2)
	defer r.Finalize()
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	var got atomic.Value
	reader := r.ULTCreate(func(c core.Ctx) {
		buf := make([]byte, 16)
		n, err := core.ReadIO(c, server, buf)
		if err != nil {
			got.Store(err.Error())
			return
		}
		got.Store(string(buf[:n]))
	})
	writer := r.ULTCreate(func(c core.Ctx) {
		core.WriteIO(c, client, []byte("ping"))
	})
	r.Join(writer)
	r.Join(reader)
	if got.Load() != "ping" {
		t.Fatalf("ReadIO got %v, want ping", got.Load())
	}
}
