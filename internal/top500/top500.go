// Package top500 reproduces Figure 1: the share of Top500 supercomputers
// by cores-per-socket, for each November list from 2001 to 2015. The
// paper reads the published Top500 lists; this package embeds a compact
// historical snapshot of the cores-per-socket distribution (derived from
// the public lists' well-known progression: single-core dominance through
// 2005, dual/quad-core transition 2006–2009, and the many-core climb
// afterward) and reimplements the bucketing/percentage pipeline so the
// figure can be regenerated, re-bucketed, and tested.
package top500

import (
	"fmt"
	"sort"
	"strings"
)

// Bucket is one cores-per-socket class of Figure 1's legend.
type Bucket int

// Figure 1's buckets, in legend order.
const (
	B1 Bucket = iota
	B2
	B4
	B6
	B8
	B9to10
	B12to14
	B16plus
)

// Buckets lists the Figure 1 classes in legend order.
func Buckets() []Bucket {
	return []Bucket{B1, B2, B4, B6, B8, B9to10, B12to14, B16plus}
}

// String returns the legend label.
func (b Bucket) String() string {
	switch b {
	case B1:
		return "1"
	case B2:
		return "2"
	case B4:
		return "4"
	case B6:
		return "6"
	case B8:
		return "8"
	case B9to10:
		return "9-10"
	case B12to14:
		return "12-14"
	case B16plus:
		return "16-"
	default:
		return fmt.Sprintf("bucket(%d)", int(b))
	}
}

// Classify maps a cores-per-socket count to its Figure 1 bucket.
// Counts that fall between classes (3, 5, 7, 11, 15) are assigned to the
// nearest lower class the figure would absorb them into.
func Classify(coresPerSocket int) Bucket {
	switch {
	case coresPerSocket <= 1:
		return B1
	case coresPerSocket <= 3:
		return B2
	case coresPerSocket <= 5:
		return B4
	case coresPerSocket <= 7:
		return B6
	case coresPerSocket == 8:
		return B8
	case coresPerSocket <= 10:
		return B9to10
	case coresPerSocket <= 15:
		return B12to14
	default:
		return B16plus
	}
}

// Entry is one machine on a November list.
type Entry struct {
	// Year of the November list.
	Year int
	// CoresPerSocket of the machine's dominant processor.
	CoresPerSocket int
	// Count of systems with this configuration on that list.
	Count int
}

// Dataset is a collection of list entries spanning multiple years.
type Dataset []Entry

// Years returns the distinct years present, ascending.
func (d Dataset) Years() []int {
	seen := map[int]bool{}
	for _, e := range d {
		seen[e.Year] = true
	}
	ys := make([]int, 0, len(seen))
	for y := range seen {
		ys = append(ys, y)
	}
	sort.Ints(ys)
	return ys
}

// Shares computes, for one year, the percentage of systems in each
// bucket. Percentages sum to 100 (within rounding) when the year has any
// systems.
func (d Dataset) Shares(year int) map[Bucket]float64 {
	counts := map[Bucket]int{}
	total := 0
	for _, e := range d {
		if e.Year != year {
			continue
		}
		counts[Classify(e.CoresPerSocket)] += e.Count
		total += e.Count
	}
	out := map[Bucket]float64{}
	if total == 0 {
		return out
	}
	for b, c := range counts {
		out[b] = 100 * float64(c) / float64(total)
	}
	return out
}

// Historical returns the embedded snapshot of the November lists
// 2001–2015, 500 systems per year, distributed over cores-per-socket
// classes following the published progression the paper plots.
func Historical() Dataset {
	// Each row: year, then systems per cores-per-socket class.
	rows := []struct {
		year int
		dist map[int]int // coresPerSocket -> systems
	}{
		{2001, map[int]int{1: 500}},
		{2002, map[int]int{1: 495, 2: 5}},
		{2003, map[int]int{1: 485, 2: 15}},
		{2004, map[int]int{1: 460, 2: 40}},
		{2005, map[int]int{1: 380, 2: 120}},
		{2006, map[int]int{1: 150, 2: 315, 4: 35}},
		{2007, map[int]int{1: 50, 2: 280, 4: 170}},
		{2008, map[int]int{1: 10, 2: 120, 4: 370}},
		{2009, map[int]int{2: 55, 4: 390, 6: 55}},
		{2010, map[int]int{2: 20, 4: 280, 6: 165, 8: 25, 12: 10}},
		{2011, map[int]int{2: 10, 4: 160, 6: 220, 8: 75, 10: 20, 12: 15}},
		{2012, map[int]int{4: 80, 6: 190, 8: 170, 10: 30, 12: 20, 16: 10}},
		{2013, map[int]int{4: 40, 6: 130, 8: 220, 10: 55, 12: 35, 16: 20}},
		{2014, map[int]int{4: 20, 6: 80, 8: 230, 10: 80, 12: 60, 16: 30}},
		{2015, map[int]int{4: 10, 6: 45, 8: 210, 10: 105, 12: 85, 16: 45}},
	}
	var d Dataset
	for _, r := range rows {
		for cps, n := range r.dist {
			d = append(d, Entry{Year: r.year, CoresPerSocket: cps, Count: n})
		}
	}
	return d
}

// Render formats the figure as a per-year percentage table, one row per
// year, one column per bucket — the data behind Figure 1's stacked bars.
func Render(d Dataset) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "Year")
	for _, bk := range Buckets() {
		fmt.Fprintf(&b, "%8s", bk)
	}
	b.WriteByte('\n')
	for _, y := range d.Years() {
		shares := d.Shares(y)
		fmt.Fprintf(&b, "%-6d", y)
		for _, bk := range Buckets() {
			fmt.Fprintf(&b, "%7.1f%%", shares[bk])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
