package top500

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestClassifyBoundaries(t *testing.T) {
	cases := map[int]Bucket{
		0: B1, 1: B1, 2: B2, 3: B2, 4: B4, 5: B4, 6: B6, 7: B6,
		8: B8, 9: B9to10, 10: B9to10, 11: B12to14, 12: B12to14,
		14: B12to14, 15: B12to14, 16: B16plus, 18: B16plus, 64: B16plus,
	}
	for cps, want := range cases {
		if got := Classify(cps); got != want {
			t.Fatalf("Classify(%d) = %v, want %v", cps, got, want)
		}
	}
}

func TestBucketLabels(t *testing.T) {
	want := []string{"1", "2", "4", "6", "8", "9-10", "12-14", "16-"}
	bs := Buckets()
	if len(bs) != len(want) {
		t.Fatalf("buckets = %v", bs)
	}
	for i, b := range bs {
		if b.String() != want[i] {
			t.Fatalf("bucket %d = %q, want %q", i, b, want[i])
		}
	}
}

func TestHistoricalCoversAllYears(t *testing.T) {
	d := Historical()
	years := d.Years()
	if len(years) != 15 || years[0] != 2001 || years[14] != 2015 {
		t.Fatalf("years = %v, want 2001..2015", years)
	}
	// Every year lists exactly 500 systems.
	for _, y := range years {
		total := 0
		for _, e := range d {
			if e.Year == y {
				total += e.Count
			}
		}
		if total != 500 {
			t.Fatalf("year %d has %d systems, want 500", y, total)
		}
	}
}

func TestSharesSumTo100(t *testing.T) {
	d := Historical()
	for _, y := range d.Years() {
		sum := 0.0
		for _, v := range d.Shares(y) {
			if v < 0 {
				t.Fatalf("negative share in %d", y)
			}
			sum += v
		}
		if math.Abs(sum-100) > 1e-9 {
			t.Fatalf("year %d shares sum to %v", y, sum)
		}
	}
}

func TestSharesEmptyYear(t *testing.T) {
	d := Historical()
	if got := d.Shares(1999); len(got) != 0 {
		t.Fatalf("Shares(1999) = %v, want empty", got)
	}
}

// TestFigure1Trend asserts the trend the paper's Figure 1 illustrates:
// single-core sockets dominate the early lists and disappear, while the
// many-core share (>= 8 cores per socket) grows monotonically-ish to
// dominate by 2015.
func TestFigure1Trend(t *testing.T) {
	d := Historical()
	s2001 := d.Shares(2001)
	if s2001[B1] != 100 {
		t.Fatalf("2001 single-core share = %v, want 100", s2001[B1])
	}
	s2015 := d.Shares(2015)
	if s2015[B1] != 0 {
		t.Fatalf("2015 single-core share = %v, want 0", s2015[B1])
	}
	many2015 := s2015[B8] + s2015[B9to10] + s2015[B12to14] + s2015[B16plus]
	if many2015 < 80 {
		t.Fatalf("2015 many-core share = %v, want >= 80", many2015)
	}
	// Single-core share never increases year over year.
	prev := 101.0
	for _, y := range d.Years() {
		cur := d.Shares(y)[B1]
		if cur > prev {
			t.Fatalf("single-core share rose in %d (%v -> %v)", y, prev, cur)
		}
		prev = cur
	}
}

func TestRenderContainsAllYearsAndBuckets(t *testing.T) {
	out := Render(Historical())
	for _, want := range []string{"2001", "2015", "16-", "9-10", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 16 {
		t.Fatalf("rendering has %d lines, want 16", lines)
	}
}

// Property: shares are invariant under splitting an entry into two with
// the same year and class.
func TestSharesSplitInvariance(t *testing.T) {
	f := func(cps8, count8 uint8) bool {
		cps := int(cps8%20) + 1
		count := int(count8%100) + 2
		single := Dataset{{Year: 2010, CoresPerSocket: cps, Count: count}, {Year: 2010, CoresPerSocket: 1, Count: 50}}
		split := Dataset{
			{Year: 2010, CoresPerSocket: cps, Count: count / 2},
			{Year: 2010, CoresPerSocket: cps, Count: count - count/2},
			{Year: 2010, CoresPerSocket: 1, Count: 50},
		}
		a, b := single.Shares(2010), split.Shares(2010)
		for _, bk := range Buckets() {
			if math.Abs(a[bk]-b[bk]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
