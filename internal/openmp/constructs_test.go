package openmp

import (
	"sync/atomic"
	"testing"
)

func TestMasterRunsOnThreadZeroOnly(t *testing.T) {
	rt := New(Config{Flavor: GCC, NumThreads: 4, WaitPolicy: Passive})
	defer rt.Close()
	var runs atomic.Int32
	rt.Parallel(func(tc *TeamCtx) {
		tc.Master(func() { runs.Add(1) })
	})
	if runs.Load() != 1 {
		t.Fatalf("master body ran %d times, want 1", runs.Load())
	}
}

func TestExplicitBarrierSynchronizes(t *testing.T) {
	rt := New(Config{Flavor: ICC, NumThreads: 4, WaitPolicy: Passive})
	defer rt.Close()
	var before, violations atomic.Int32
	rt.Parallel(func(tc *TeamCtx) {
		before.Add(1)
		tc.Barrier()
		// After the barrier every member must observe all arrivals.
		if before.Load() != 4 {
			violations.Add(1)
		}
	})
	if violations.Load() != 0 {
		t.Fatalf("%d members escaped the barrier early", violations.Load())
	}
}

func TestCriticalSerializesTeam(t *testing.T) {
	rt := New(Config{Flavor: GCC, NumThreads: 4, WaitPolicy: Passive})
	defer rt.Close()
	counter := 0 // protected only by Critical
	rt.Parallel(func(tc *TeamCtx) {
		for i := 0; i < 200; i++ {
			tc.Critical(func() { counter++ })
		}
	})
	if counter != 800 {
		t.Fatalf("counter = %d, want 800 (lost updates)", counter)
	}
}

func TestSectionsEachRunOnce(t *testing.T) {
	rt := New(Config{Flavor: ICC, NumThreads: 3, WaitPolicy: Passive})
	defer rt.Close()
	var runs [5]atomic.Int32
	rt.Parallel(func(tc *TeamCtx) {
		tc.Sections(
			func() { runs[0].Add(1) },
			func() { runs[1].Add(1) },
			func() { runs[2].Add(1) },
			func() { runs[3].Add(1) },
			func() { runs[4].Add(1) },
		)
	})
	for i := range runs {
		if got := runs[i].Load(); got != 1 {
			t.Fatalf("section %d ran %d times, want 1", i, got)
		}
	}
}

func TestSectionsMoreThreadsThanSections(t *testing.T) {
	rt := New(Config{Flavor: GCC, NumThreads: 6, WaitPolicy: Passive})
	defer rt.Close()
	var runs [2]atomic.Int32
	rt.Parallel(func(tc *TeamCtx) {
		tc.Sections(
			func() { runs[0].Add(1) },
			func() { runs[1].Add(1) },
		)
	})
	if runs[0].Load() != 1 || runs[1].Load() != 1 {
		t.Fatalf("sections ran %d/%d times", runs[0].Load(), runs[1].Load())
	}
}

func TestForDynamicCoversRange(t *testing.T) {
	rt := New(Config{Flavor: ICC, NumThreads: 4, WaitPolicy: Passive})
	defer rt.Close()
	const n = 1000
	hits := make([]atomic.Int32, n)
	rt.Parallel(func(tc *TeamCtx) {
		tc.ForDynamic(n, 16, func(i int) { hits[i].Add(1) })
	})
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("iteration %d ran %d times", i, got)
		}
	}
}

func TestConsecutiveWorkshareWithReset(t *testing.T) {
	rt := New(Config{Flavor: GCC, NumThreads: 3, WaitPolicy: Passive})
	defer rt.Close()
	const n = 90
	var first, second atomic.Int32
	rt.Parallel(func(tc *TeamCtx) {
		tc.ForDynamic(n, 8, func(i int) { first.Add(1) })
		tc.Barrier()
		tc.Master(func() { tc.ResetWorkshare() })
		tc.Barrier()
		tc.ForDynamic(n, 8, func(i int) { second.Add(1) })
	})
	if first.Load() != n || second.Load() != n {
		t.Fatalf("workshares ran %d/%d iterations, want %d each", first.Load(), second.Load(), n)
	}
}
