package openmp

import (
	"sync"
	"sync/atomic"

	"repro/internal/barrier"
)

// Additional OpenMP constructs beyond the patterns the paper benchmarks:
// sections, master, explicit barrier, critical and a dynamic-schedule
// parallel for. They complete the directive surface so the emulation can
// host realistic OpenMP programs, not just the microbenchmarks.

// Master runs fn only on thread 0, with no implied synchronization
// (#pragma omp master).
func (tc *TeamCtx) Master(fn func()) {
	if tc.tid == 0 {
		fn()
	}
}

// Barrier synchronizes all team members (#pragma omp barrier). Each
// call lazily allocates one rendezvous per barrier "slot": members must
// reach the same textual barrier, as in OpenMP.
func (tc *TeamCtx) Barrier() {
	tm := tc.tm
	tm.userBarMu.Lock()
	if tm.userBar == nil {
		tm.userBar = barrier.NewCentral(tm.size)
	}
	b := tm.userBar
	tm.userBarMu.Unlock()
	b.Wait()
}

// Critical runs fn under the team's critical-section lock (#pragma omp
// critical). All team members serialize on one mutex, like the anonymous
// critical section.
func (tc *TeamCtx) Critical(fn func()) {
	tc.tm.critMu.Lock()
	defer tc.tm.critMu.Unlock()
	fn()
}

// Sections distributes the given section bodies over the team
// (#pragma omp sections): each section runs exactly once, claimed
// dynamically by whichever thread gets there first, followed by an
// implicit barrier realized through the region-end join.
func (tc *TeamCtx) Sections(sections ...func()) {
	tm := tc.tm
	for {
		i := tm.nextSection.Add(1) - 1
		idx := int(i) % maxInt(len(sections), 1)
		if int(i) >= len(sections) {
			return
		}
		sections[idx]()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ForDynamic executes the loop with a dynamic schedule inside an existing
// region (#pragma omp for schedule(dynamic, chunk)): team members claim
// fixed-size chunks on demand; the caller is responsible for the final
// Barrier if it needs one (the nowait form is the default here).
func (tc *TeamCtx) ForDynamic(n, chunk int, body func(i int)) {
	if chunk < 1 {
		chunk = 1
	}
	tm := tc.tm
	for {
		lo := int(tm.dynNext.Add(int64(chunk))) - chunk
		if lo >= n {
			return
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			body(i)
		}
	}
}

// ResetWorkshare rearms the team's dynamic-for and sections counters so
// a region can contain several consecutive work-sharing constructs.
// Must be called between constructs by a single thread with a Barrier on
// each side.
func (tc *TeamCtx) ResetWorkshare() {
	tc.tm.dynNext.Store(0)
	tc.tm.nextSection.Store(0)
}

// team fields backing the extra constructs (declared here to keep the
// construct implementations together).
type teamExtras struct {
	userBarMu   sync.Mutex
	userBar     *barrier.Central
	critMu      sync.Mutex
	nextSection atomic.Int64
	dynNext     atomic.Int64
}
