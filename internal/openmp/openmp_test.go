package openmp

import (
	"runtime"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func flavors() []Config {
	return []Config{
		{Flavor: GCC, NumThreads: 4, WaitPolicy: Passive},
		{Flavor: GCC, NumThreads: 4, WaitPolicy: Active},
		{Flavor: ICC, NumThreads: 4, WaitPolicy: Passive},
		{Flavor: ICC, NumThreads: 4, WaitPolicy: Active},
	}
}

func TestNewPanicsOnZeroThreads(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0 threads) did not panic")
		}
	}()
	New(Config{Flavor: GCC})
}

func TestParallelForCoversRange(t *testing.T) {
	for _, cfg := range flavors() {
		cfg := cfg
		t.Run(cfg.Flavor.String()+"/"+cfg.WaitPolicy.String(), func(t *testing.T) {
			rt := New(cfg)
			defer rt.Close()
			const n = 1000
			hits := make([]atomic.Int32, n)
			rt.ParallelFor(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("iteration %d executed %d times", i, got)
				}
			}
		})
	}
}

func TestParallelForFewerIterationsThanThreads(t *testing.T) {
	rt := New(Config{Flavor: GCC, NumThreads: 8, WaitPolicy: Passive})
	var count atomic.Int32
	rt.ParallelFor(3, func(i int) { count.Add(1) })
	if count.Load() != 3 {
		t.Fatalf("executed %d iterations, want 3", count.Load())
	}
}

func TestChunkRangePartitions(t *testing.T) {
	f := func(n16 uint16, k8 uint8) bool {
		n := int(n16 % 2000)
		k := int(k8%32) + 1
		covered := 0
		prevHi := 0
		for tid := 0; tid < k; tid++ {
			lo, hi := ChunkRange(n, k, tid)
			if lo != prevHi || hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTeamCtxBasics(t *testing.T) {
	rt := New(Config{Flavor: ICC, NumThreads: 3, WaitPolicy: Passive})
	defer rt.Close()
	var seen [3]atomic.Int32
	rt.Parallel(func(tc *TeamCtx) {
		if tc.NumThreads() != 3 {
			t.Errorf("NumThreads = %d", tc.NumThreads())
		}
		if tc.Runtime() != rt {
			t.Error("Runtime() mismatch")
		}
		seen[tc.TID()].Add(1)
	})
	for tid := range seen {
		if got := seen[tid].Load(); got != 1 {
			t.Fatalf("tid %d ran body %d times", tid, got)
		}
	}
}

func TestSingleRunsOnce(t *testing.T) {
	for _, cfg := range flavors() {
		rt := New(cfg)
		var count atomic.Int32
		rt.Parallel(func(tc *TeamCtx) {
			tc.Single(func() { count.Add(1) })
		})
		rt.Close()
		if count.Load() != 1 {
			t.Fatalf("%v: single body ran %d times", cfg.Flavor, count.Load())
		}
	}
}

func TestTasksSingleRegionAllExecute(t *testing.T) {
	for _, cfg := range flavors() {
		cfg := cfg
		t.Run(cfg.Flavor.String()+"/"+cfg.WaitPolicy.String(), func(t *testing.T) {
			rt := New(cfg)
			defer rt.Close()
			const n = 500
			var ran atomic.Int64
			rt.Parallel(func(tc *TeamCtx) {
				tc.Single(func() {
					for i := 0; i < n; i++ {
						tc.Task(func() { ran.Add(1) })
					}
				})
			})
			if ran.Load() != n {
				t.Fatalf("ran = %d, want %d", ran.Load(), n)
			}
		})
	}
}

func TestTasksParallelRegionAllExecute(t *testing.T) {
	for _, cfg := range flavors() {
		cfg := cfg
		t.Run(cfg.Flavor.String(), func(t *testing.T) {
			rt := New(cfg)
			defer rt.Close()
			const perThread = 100
			var ran atomic.Int64
			rt.Parallel(func(tc *TeamCtx) {
				for i := 0; i < perThread; i++ {
					tc.Task(func() { ran.Add(1) })
				}
			})
			want := int64(perThread * cfg.NumThreads)
			if ran.Load() != want {
				t.Fatalf("ran = %d, want %d", ran.Load(), want)
			}
		})
	}
}

func TestGCCCutoffTriggers(t *testing.T) {
	rt := New(Config{Flavor: GCC, NumThreads: 2, WaitPolicy: Passive})
	defer rt.Close()
	// 2 threads → cutoff at 128 outstanding. Creating many tasks from a
	// single region with slow consumers must inline some.
	const n = 2000
	var ran atomic.Int64
	rt.Parallel(func(tc *TeamCtx) {
		tc.Single(func() {
			for i := 0; i < n; i++ {
				tc.Task(func() { ran.Add(1) })
			}
		})
	})
	if ran.Load() != n {
		t.Fatalf("ran = %d, want %d", ran.Load(), n)
	}
	if rt.TasksInlined() == 0 {
		t.Fatal("gcc cutoff never triggered with 2000 tasks on 2 threads")
	}
}

func TestICCCutoffTriggers(t *testing.T) {
	rt := New(Config{Flavor: ICC, NumThreads: 2, WaitPolicy: Passive})
	defer rt.Close()
	const n = 2000
	var ran atomic.Int64
	rt.Parallel(func(tc *TeamCtx) {
		tc.Single(func() {
			for i := 0; i < n; i++ {
				tc.Task(func() { ran.Add(1) })
			}
		})
	})
	if ran.Load() != n {
		t.Fatalf("ran = %d, want %d", ran.Load(), n)
	}
	if rt.TasksInlined() == 0 {
		t.Fatal("icc cutoff never triggered with 2000 tasks in one queue")
	}
}

func TestDisableCutoffQueuesEverything(t *testing.T) {
	rt := New(Config{Flavor: GCC, NumThreads: 2, WaitPolicy: Passive, DisableCutoff: true})
	defer rt.Close()
	const n = 1000
	var ran atomic.Int64
	rt.Parallel(func(tc *TeamCtx) {
		tc.Single(func() {
			for i := 0; i < n; i++ {
				tc.Task(func() { ran.Add(1) })
			}
		})
	})
	if ran.Load() != n {
		t.Fatalf("ran = %d, want %d", ran.Load(), n)
	}
	if rt.TasksInlined() != 0 {
		t.Fatalf("cutoff inlined %d tasks while disabled", rt.TasksInlined())
	}
	if rt.TasksQueued() != n {
		t.Fatalf("queued = %d, want %d", rt.TasksQueued(), n)
	}
}

func TestICCStealsFromSingleCreator(t *testing.T) {
	rt := New(Config{Flavor: ICC, NumThreads: 4, WaitPolicy: Passive})
	defer rt.Close()
	const n = 400
	var ran atomic.Int64
	var ready atomic.Int32
	rt.Parallel(func(tc *TeamCtx) {
		if tc.TID() != 0 {
			// Workers fall through to the region-end task barrier, where
			// they poll the deques for work to steal.
			ready.Add(1)
			return
		}
		tc.Single(func() {
			// Force the racy window deterministically: hold production
			// until every thief is live inside the region, so the single
			// creator fills its deque while the others are polling. A
			// 400-task region is otherwise short enough that the master
			// can drain its own deque before the worker goroutines are
			// ever scheduled.
			for ready.Load() != 3 {
				runtime.Gosched()
			}
			for i := 0; i < n; i++ {
				// The body yields so that on a single-P machine
				// (GOMAXPROCS=1) the polling thieves are guaranteed a
				// scheduling slot while the creator's deque is non-empty;
				// without it the master would pop its whole deque in one
				// unpreempted burst and the thieves could never win.
				tc.Task(func() { runtime.Gosched(); ran.Add(1) })
			}
		})
	})
	if ran.Load() != n {
		t.Fatalf("ran = %d, want %d", ran.Load(), n)
	}
	// All tasks land in thread 0's deque; others can only steal.
	if rt.Steals() == 0 {
		t.Fatal("no steals in icc single-region pattern")
	}
}

func TestNestedParallelGCCSpawnsFreshTeams(t *testing.T) {
	rt := New(Config{Flavor: GCC, NumThreads: 3, WaitPolicy: Passive})
	defer rt.Close()
	var inner atomic.Int64
	rt.Parallel(func(tc *TeamCtx) {
		// Nested pragma: a fresh team per encountering thread.
		tc.ParallelFor(3, func(i int) { inner.Add(1) })
	})
	if got := inner.Load(); got != 9 {
		t.Fatalf("inner iterations = %d, want 9", got)
	}
	// Outer region: 2 workers (fresh pool). Each of 3 threads spawns a
	// nested team with 2 more fresh workers: 2 + 3*2 = 8, no nested
	// reuse.
	if got := rt.ThreadsCreated(); got != 8 {
		t.Fatalf("gcc ThreadsCreated = %d, want 8 (no nested reuse)", got)
	}
}

func TestNestedParallelGCCThreadCountGrowsPerRegion(t *testing.T) {
	rt := New(Config{Flavor: GCC, NumThreads: 2, WaitPolicy: Passive})
	defer rt.Close()
	// Each round's nested pragmas spawn fresh threads even though idle
	// ones exist — the §IX-C explosion (35,036 threads at 36 threads).
	for round := 0; round < 5; round++ {
		rt.Parallel(func(tc *TeamCtx) {
			tc.ParallelFor(2, func(i int) {})
		})
	}
	// Top-level workers are reused (1 created in round 1); nested teams
	// create 2 fresh threads per round: >= 1 + 5*2.
	if got := rt.ThreadsCreated(); got < 11 {
		t.Fatalf("gcc ThreadsCreated = %d, want >= 11", got)
	}
}

func TestNestedParallelICCReusesThreads(t *testing.T) {
	rt := New(Config{Flavor: ICC, NumThreads: 2, WaitPolicy: Passive})
	defer rt.Close()
	var inner atomic.Int64
	// Run the same nested structure several times: the pool bounds
	// thread creation, unlike gcc.
	for round := 0; round < 5; round++ {
		rt.Parallel(func(tc *TeamCtx) {
			tc.ParallelFor(2, func(i int) { inner.Add(1) })
		})
	}
	if got := inner.Load(); got != 20 {
		t.Fatalf("inner iterations = %d, want 20", got)
	}
	// Without reuse 5 rounds × (1 + 2×1) = 15 threads; the pool must
	// keep the count strictly lower.
	if got := rt.ThreadsCreated(); got >= 15 {
		t.Fatalf("icc ThreadsCreated = %d, want < 15 (pool reuse)", got)
	}
}

func TestParallelTimedPhases(t *testing.T) {
	rt := New(Config{Flavor: GCC, NumThreads: 3, WaitPolicy: Passive})
	defer rt.Close()
	var ran atomic.Int64
	create, join := rt.ParallelTimed(func(tc *TeamCtx) { ran.Add(1) })
	if ran.Load() != 3 {
		t.Fatalf("body ran %d times, want 3", ran.Load())
	}
	if create < 0 || join < 0 {
		t.Fatalf("negative phase times: create=%v join=%v", create, join)
	}
}

func TestTaskWaitDrains(t *testing.T) {
	rt := New(Config{Flavor: ICC, NumThreads: 2, WaitPolicy: Passive})
	defer rt.Close()
	var before atomic.Int64
	var orderOK atomic.Bool
	rt.Parallel(func(tc *TeamCtx) {
		tc.Single(func() {
			for i := 0; i < 50; i++ {
				tc.Task(func() { before.Add(1) })
			}
			tc.TaskWait()
			orderOK.Store(before.Load() == 50)
		})
	})
	if !orderOK.Load() {
		t.Fatal("TaskWait returned before all tasks ran")
	}
}

func TestHeavyModeRuns(t *testing.T) {
	rt := New(Config{Flavor: GCC, NumThreads: 2, WaitPolicy: Passive, Heavy: true})
	defer rt.Close()
	var n atomic.Int64
	rt.ParallelFor(10, func(i int) { n.Add(1) })
	if n.Load() != 10 {
		t.Fatalf("heavy-mode ran %d iterations, want 10", n.Load())
	}
}

func TestCloseIdempotent(t *testing.T) {
	rt := New(Config{Flavor: ICC, NumThreads: 2})
	rt.ParallelFor(4, func(i int) {})
	rt.Close()
	rt.Close()
}

func TestFlavorAndPolicyStrings(t *testing.T) {
	if GCC.String() != "gcc" || ICC.String() != "icc" {
		t.Fatal("flavor strings wrong")
	}
	if Active.String() != "active" || Passive.String() != "passive" {
		t.Fatal("policy strings wrong")
	}
}

func TestNestedTaskPattern(t *testing.T) {
	// §VII-D: a single thread creates parent tasks; each parent creates
	// child tasks.
	for _, f := range []Flavor{GCC, ICC} {
		rt := New(Config{Flavor: f, NumThreads: 4, WaitPolicy: Passive})
		const parents, children = 20, 4
		var leaves atomic.Int64
		rt.Parallel(func(tc *TeamCtx) {
			tc.Single(func() {
				for p := 0; p < parents; p++ {
					tc.Task(func() {
						for c := 0; c < children; c++ {
							tc.Task(func() { leaves.Add(1) })
						}
					})
				}
			})
		})
		rt.Close()
		if got := leaves.Load(); got != parents*children {
			t.Fatalf("%v: leaves = %d, want %d", f, got, parents*children)
		}
	}
}
