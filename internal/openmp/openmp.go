// Package openmp emulates the two OpenMP runtimes the paper benchmarks
// against (§III-A, §VII): the GNU (gcc/libgomp) and Intel (icc) runtimes,
// both built on OS threads. The emulation reproduces the mechanisms the
// paper uses to explain every OpenMP curve:
//
//   - team-based parallel regions whose worker threads are created at
//     region entry and joined at region exit;
//   - gcc: one shared task queue per team protected by a mutex, a task
//     cutoff of 64×nthreads, a barrier join, and no idle-thread reuse in
//     nested regions (each nested pragma spawns a brand-new team — the
//     source of the 35,036 threads of §IX-C);
//   - icc: a private task deque per thread with work stealing, a cutoff
//     of 256 tasks per queue, a status-word join, and idle-thread reuse
//     through a thread pool in nested regions;
//   - OMP_WAIT_POLICY active/passive, which §IX-B had to set to passive
//     for gcc to tame task-queue contention.
//
// Team threads are goroutines; with Config.Heavy they are pinned to OS
// threads (runtime.LockOSThread) so thread creation and residency carry
// true OS-thread weight.
package openmp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/barrier"
	"repro/internal/queue"
	"repro/internal/ult"
)

// Flavor selects which vendor runtime's mechanisms are emulated.
type Flavor int

const (
	// GCC is the GNU libgomp model.
	GCC Flavor = iota
	// ICC is the Intel runtime model.
	ICC
)

// String names the flavor as the paper's figure legends do.
func (f Flavor) String() string {
	if f == ICC {
		return "icc"
	}
	return "gcc"
}

// WaitPolicy is OMP_WAIT_POLICY.
type WaitPolicy int

const (
	// Active busy-waits on the task queues and barriers.
	Active WaitPolicy = iota
	// Passive yields the processor between queue polls — the setting
	// §IX-B uses to reduce gcc's shared-queue contention.
	Passive
)

// String names the wait policy.
func (w WaitPolicy) String() string {
	if w == Passive {
		return "passive"
	}
	return "active"
}

// Cutoff thresholds of §VII-B: once reached, new tasks execute inline
// ("sequentially instead of being pushed into the queues").
const (
	// GCCCutoffPerThread: gcc cuts off at 64 × nthreads outstanding.
	GCCCutoffPerThread = 64
	// ICCCutoffPerQueue: icc cuts off at 256 tasks in a thread's queue.
	ICCCutoffPerQueue = 256
)

// Config parameterizes the runtime.
type Config struct {
	// Flavor selects GCC or ICC mechanisms.
	Flavor Flavor
	// NumThreads is the team size for parallel regions (OMP_NUM_THREADS).
	NumThreads int
	// WaitPolicy is OMP_WAIT_POLICY.
	WaitPolicy WaitPolicy
	// Heavy pins every team thread to an OS thread.
	Heavy bool
	// DisableCutoff turns the task cutoff off (ablation; the real
	// runtimes' cutoffs are non-configurable, §VII-B).
	DisableCutoff bool
}

// Runtime is an OpenMP-like runtime instance.
type Runtime struct {
	cfg Config

	// pool reuses idle threads: icc for all regions; gcc only for
	// top-level teams (libgomp keeps a thread pool for the outermost
	// team but spawns fresh threads for every nested one, §VII-C).
	pool chan *pooledWorker

	threadsCreated atomic.Uint64 // workers ever spawned
	tasksInlined   atomic.Uint64 // cutoff-triggered inline executions
	tasksQueued    atomic.Uint64
	steals         atomic.Uint64
	closed         atomic.Bool
}

// pooledWorker is an icc pool thread parked between regions.
type pooledWorker struct {
	jobs chan func()
}

// New creates a runtime. It panics if cfg.NumThreads < 1.
func New(cfg Config) *Runtime {
	if cfg.NumThreads < 1 {
		panic(fmt.Sprintf("openmp: NumThreads = %d, need >= 1", cfg.NumThreads))
	}
	rt := &Runtime{cfg: cfg}
	rt.pool = make(chan *pooledWorker, 16384)
	return rt
}

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// ThreadsCreated reports how many worker threads were ever spawned —
// gcc's lack of nested reuse makes this grow with every nested pragma
// (35,036 in the paper's 36-thread nested run, §IX-C).
func (rt *Runtime) ThreadsCreated() uint64 { return rt.threadsCreated.Load() }

// TasksInlined reports how many tasks the cutoff executed sequentially.
func (rt *Runtime) TasksInlined() uint64 { return rt.tasksInlined.Load() }

// TasksQueued reports how many tasks entered a queue.
func (rt *Runtime) TasksQueued() uint64 { return rt.tasksQueued.Load() }

// Steals reports successful task steals (icc only).
func (rt *Runtime) Steals() uint64 { return rt.steals.Load() }

// Close releases pooled threads (icc). Regions must not be in flight.
func (rt *Runtime) Close() {
	if !rt.closed.CompareAndSwap(false, true) {
		return
	}
	if rt.pool == nil {
		return
	}
	for {
		select {
		case w := <-rt.pool:
			close(w.jobs)
		default:
			return
		}
	}
}

// team is one parallel region's thread team and task state.
type team struct {
	rt   *Runtime
	size int

	// shared is the gcc task queue (lock-free MPMC; the gcc model's
	// single-queue contention shows up as CAS failures on its head).
	shared *queue.Shared
	// deques are the icc per-thread task deques. They stay on the mutex
	// deque rather than the lock-free Chase–Lev one: a nested task body
	// captures its creator's TeamCtx, so when a stolen parent spawns
	// children, the *stealing* member pushes to the creator's deque —
	// every member is a potential bottom-end producer of every deque,
	// which violates the Chase–Lev single-owner discipline (and matches
	// the real icc runtime, whose queues are locked).
	deques      []*queue.MutexDeque
	outstanding atomic.Int64 // queued-but-unfinished tasks
	arrived     atomic.Int64 // members that reached the region end

	bar       *barrier.Central // gcc join
	spin      *barrier.Spin    // gcc join under active policy
	doneFlags []atomic.Bool    // icc join: master checks each word
	execs     []*ult.Executor  // per-member executors (tasklet running)

	teamExtras // state for the constructs in constructs.go
}

// TeamCtx is the per-thread view of a parallel region, passed to region
// bodies.
type TeamCtx struct {
	tm  *team
	tid int
}

// TID reports the calling thread's rank in the team.
func (tc *TeamCtx) TID() int { return tc.tid }

// NumThreads reports the team size.
func (tc *TeamCtx) NumThreads() int { return tc.tm.size }

// Runtime returns the owning runtime (for nested regions).
func (tc *TeamCtx) Runtime() *Runtime { return tc.tm.rt }

// Parallel executes body on a team of cfg.NumThreads threads: the caller
// runs as thread 0, workers are drawn from the thread pool or spawned.
// The region ends with an implicit task drain and join. For nested teams
// use TeamCtx.Parallel, which applies the flavor-specific thread
// management of §VII-C (gcc: always fresh threads; icc: pool reuse).
func (rt *Runtime) Parallel(body func(*TeamCtx)) {
	rt.parallel(body, false, nil)
}

// ParallelTimed runs a top-level region and reports the master's two
// phases separately: create is the time to hand work to every team member
// (the function-pointer setup of §VII-A) and join is the time from the
// master finishing its own share until the region's join completes — the
// quantities of Figures 2 and 3.
func (rt *Runtime) ParallelTimed(body func(*TeamCtx)) (create, join time.Duration) {
	var t0, t1, t2 time.Time
	rt.parallel(body, false, func(phase int) {
		switch phase {
		case 0:
			t0 = time.Now()
		case 1:
			t1 = time.Now()
		case 2:
			t2 = time.Now()
		}
	})
	return t1.Sub(t0), t2.Sub(t1)
}

// parallel implements Parallel; mark receives phase callbacks for
// ParallelTimed (0 = before dispatch, 1 = after dispatch, 2 = after
// join).
func (rt *Runtime) parallel(body func(*TeamCtx), nested bool, mark func(int)) {
	n := rt.cfg.NumThreads
	tm := &team{rt: rt, size: n}
	tm.execs = make([]*ult.Executor, n)
	for i := range tm.execs {
		tm.execs[i] = ult.NewExecutor(i)
	}
	if rt.cfg.Flavor == GCC {
		tm.shared = queue.NewShared(256)
		if rt.cfg.WaitPolicy == Active {
			tm.spin = barrier.NewSpin(n)
		} else {
			tm.bar = barrier.NewCentral(n)
		}
	} else {
		tm.deques = make([]*queue.MutexDeque, n)
		for i := range tm.deques {
			tm.deques[i] = queue.NewMutexDeque(64)
		}
		tm.doneFlags = make([]atomic.Bool, n)
	}

	var wg sync.WaitGroup
	if mark != nil {
		mark(0)
	}
	for tid := 1; tid < n; tid++ {
		wg.Add(1)
		rt.spawnMember(tm, tid, body, &wg, nested)
	}
	if mark != nil {
		// Create phase ends once the master has handed work to every
		// member; its own share and the join follow.
		mark(1)
	}
	tm.member(0, body)
	// Master-side join: gcc already joined at the team barrier inside
	// member; icc's master checks every worker's status word —
	// "a sequential approach that checks a memory word value" (§VI).
	if rt.cfg.Flavor == ICC {
		for tid := 1; tid < n; tid++ {
			for !tm.doneFlags[tid].Load() {
				if rt.cfg.WaitPolicy == Passive {
					runtime.Gosched()
				}
			}
		}
	}
	wg.Wait()
	if mark != nil {
		mark(2)
	}
}

// spawnMember starts team member tid. icc reuses pooled threads for every
// region; gcc reuses them only for top-level regions and always creates
// fresh threads for nested teams (the §IX-C thread explosion).
func (rt *Runtime) spawnMember(tm *team, tid int, body func(*TeamCtx), wg *sync.WaitGroup, nested bool) {
	run := func() {
		defer wg.Done()
		tm.member(tid, body)
	}
	reuse := rt.cfg.Flavor == ICC || !nested
	if reuse {
		select {
		case w := <-rt.pool:
			w.jobs <- run
			return
		default:
		}
	}
	rt.threadsCreated.Add(1)
	w := &pooledWorker{jobs: make(chan func(), 1)}
	go func() {
		if rt.cfg.Heavy {
			runtime.LockOSThread()
		}
		for job := range w.jobs {
			job()
			select {
			case rt.pool <- w:
			default:
				return // pool full; let the thread exit
			}
		}
	}()
	w.jobs <- run
}

// member runs one thread's share of the region: the body, then the
// implicit region-end task drain and join.
func (tm *team) member(tid int, body func(*TeamCtx)) {
	tc := &TeamCtx{tm: tm, tid: tid}
	body(tc)
	// Implicit region-end barrier with task execution: a member that
	// finishes its body keeps pulling tasks until the whole team has
	// arrived AND none remain outstanding. Both real runtimes execute
	// tasks from inside the barrier wait; without this, an idle worker
	// whose queue view is momentarily empty would leave the region while
	// the single-region creator (§VII-B1) is still producing tasks, and
	// icc's thieves would never get anything to steal.
	tm.arrived.Add(1)
	tm.drainRegionEnd(tid)
	// Region-end join.
	if tm.rt.cfg.Flavor == GCC {
		if tm.spin != nil {
			tm.spin.Wait()
		} else {
			tm.bar.Wait()
		}
	} else if tid != 0 {
		tm.doneFlags[tid].Store(true)
	}
}

// Task creates an explicit task from thread tid (#pragma omp task). The
// cutoff executes it inline instead once the flavor's threshold is
// reached (§VII-B).
func (tc *TeamCtx) Task(fn func()) {
	tm, rt := tc.tm, tc.tm.rt
	if !rt.cfg.DisableCutoff {
		if rt.cfg.Flavor == GCC {
			if tm.outstanding.Load() >= int64(GCCCutoffPerThread*tm.size) {
				rt.tasksInlined.Add(1)
				fn()
				return
			}
		} else if tm.deques[tc.tid].Len() >= ICCCutoffPerQueue {
			rt.tasksInlined.Add(1)
			fn()
			return
		}
	}
	tm.outstanding.Add(1)
	rt.tasksQueued.Add(1)
	tk := ult.NewTasklet(fn)
	ult.MarkReady(tk)
	if rt.cfg.Flavor == GCC {
		tm.shared.Push(tk)
	} else {
		tm.deques[tc.tid].PushBottom(tk)
	}
}

// Single runs fn on exactly one thread (#pragma omp single): thread 0
// executes it while the others fall through to the implicit task drain,
// executing tasks as they appear — the single-region task pattern of
// §VII-B1.
func (tc *TeamCtx) Single(fn func()) {
	if tc.tid == 0 {
		fn()
	}
}

// TaskWait drains tasks until none remain in flight for this team
// (#pragma omp taskwait, collapsed to team scope in this model).
func (tc *TeamCtx) TaskWait() { tc.tm.drainTasks(tc.tid) }

// nextTask fetches one runnable task for thread tid under the flavor's
// scheduling rules.
func (tm *team) nextTask(tid int) *ult.Tasklet {
	if tm.rt.cfg.Flavor == GCC {
		if u := tm.shared.Pop(); u != nil {
			return u.(*ult.Tasklet)
		}
		return nil
	}
	if u := tm.deques[tid].PopBottom(); u != nil {
		return u.(*ult.Tasklet)
	}
	// Work stealing: triggered "once a thread's task queue is empty and
	// the thread is idle" (§III-A).
	for off := 1; off < tm.size; off++ {
		victim := (tid + off) % tm.size
		if u := tm.deques[victim].StealTop(); u != nil {
			tm.rt.steals.Add(1)
			return u.(*ult.Tasklet)
		}
	}
	return nil
}

// drainRegionEnd executes tasks until every member has arrived at the
// region end and no tasks remain — the task-executing implicit barrier.
func (tm *team) drainRegionEnd(tid int) {
	idle := 0
	for {
		tk := tm.nextTask(tid)
		if tk == nil {
			if tm.arrived.Load() == int64(tm.size) && tm.outstanding.Load() == 0 {
				return
			}
			if tm.rt.cfg.WaitPolicy == Passive {
				// While tasks are outstanding, poll hot so thieves keep
				// their steal window. With none outstanding this is a
				// pure barrier wait on slower siblings' bodies; back off
				// to a short sleep so early finishers of an imbalanced
				// region do not burn a core each (Active keeps the
				// faithful busy-wait).
				if tm.outstanding.Load() == 0 {
					if idle++; idle > 64 {
						time.Sleep(20 * time.Microsecond)
						continue
					}
				}
				runtime.Gosched()
			}
			continue
		}
		idle = 0
		tm.execs[tid].RunTasklet(tk)
		tm.outstanding.Add(-1)
	}
}

// drainTasks executes tasks until the team has none outstanding
// (#pragma omp taskwait semantics; see TaskWait).
func (tm *team) drainTasks(tid int) {
	for {
		tk := tm.nextTask(tid)
		if tk == nil {
			if tm.outstanding.Load() == 0 {
				return
			}
			// Tasks in flight elsewhere: wait according to policy.
			if tm.rt.cfg.WaitPolicy == Passive {
				runtime.Gosched()
			}
			continue
		}
		tm.execs[tid].RunTasklet(tk)
		tm.outstanding.Add(-1)
	}
}

// Parallel creates a nested team from inside a region (#pragma omp
// parallel encountered by a team thread, §VII-C): gcc spawns a brand-new
// set of threads and parks the old ones idle; icc reuses pooled threads.
func (tc *TeamCtx) Parallel(body func(*TeamCtx)) {
	tc.tm.rt.parallel(body, true, nil)
}

// ParallelFor runs a nested statically chunked parallel loop from inside
// a region (Listing 3's inner pragma).
func (tc *TeamCtx) ParallelFor(n int, body func(i int)) {
	tc.Parallel(func(inner *TeamCtx) {
		lo, hi := ChunkRange(n, inner.tm.size, inner.tid)
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ParallelFor runs a statically chunked parallel loop (#pragma omp
// parallel for): each thread executes a contiguous iteration range, with
// the implicit barrier at the end (§VII-A).
func (rt *Runtime) ParallelFor(n int, body func(i int)) {
	rt.Parallel(func(tc *TeamCtx) {
		lo, hi := ChunkRange(n, tc.tm.size, tc.tid)
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ChunkRange computes thread tid's half-open static chunk of n iterations
// over nthreads threads.
func ChunkRange(n, nthreads, tid int) (lo, hi int) {
	base := n / nthreads
	rem := n % nthreads
	lo = tid*base + min(tid, rem)
	hi = lo + base
	if tid < rem {
		hi++
	}
	return lo, hi
}
