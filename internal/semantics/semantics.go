// Package semantics encodes the paper's semantic analysis as data: the
// execution/scheduling feature matrix of Table I and the most-used
// function mapping of Table II. cmd/lwtinfo renders both tables, and the
// package's tests cross-check Table I against the live Capabilities
// reported by the unified-API backends, so the documented semantics and
// the implemented semantics cannot drift apart.
package semantics

import (
	"fmt"
	"strings"
)

// Library identifies one threading solution in the tables. Pthreads is
// included for reference, as in the paper.
type Library int

// The studied libraries, in Table I's column order.
const (
	Pthreads Library = iota
	Argobots
	Qthreads
	MassiveThreads
	ConverseThreads
	Go
)

// Libraries lists the Table I columns in order.
func Libraries() []Library {
	return []Library{Pthreads, Argobots, Qthreads, MassiveThreads, ConverseThreads, Go}
}

// String returns the library's display name.
func (l Library) String() string {
	switch l {
	case Pthreads:
		return "Pthreads"
	case Argobots:
		return "Argobots"
	case Qthreads:
		return "Qthreads"
	case MassiveThreads:
		return "MassiveThreads"
	case ConverseThreads:
		return "Converse Threads"
	case Go:
		return "Go"
	default:
		return fmt.Sprintf("Library(%d)", int(l))
	}
}

// BackendName maps a library to its unified-API backend registry key
// (empty for Pthreads, which has no LWT backend).
func (l Library) BackendName() string {
	switch l {
	case Argobots:
		return "argobots"
	case Qthreads:
		return "qthreads"
	case MassiveThreads:
		return "massivethreads"
	case ConverseThreads:
		return "converse"
	case Go:
		return "go"
	default:
		return ""
	}
}

// ExecutorName returns what the library calls its OS-thread-level entity
// (§IV: Execution Stream, Shepherd, Worker, Processor, Thread).
func (l Library) ExecutorName() string {
	switch l {
	case Pthreads:
		return "Pthread"
	case Argobots:
		return "Execution Stream"
	case Qthreads:
		return "Shepherd"
	case MassiveThreads:
		return "Worker"
	case ConverseThreads:
		return "Processor"
	case Go:
		return "Thread"
	default:
		return ""
	}
}

// Features is one column of Table I.
type Features struct {
	HierarchyLevels    int
	WorkUnitTypes      int
	ThreadSupport      bool
	TaskletSupport     bool
	GroupControl       bool
	YieldTo            bool
	GlobalQueue        bool
	PrivateQueue       bool
	PluginScheduler    bool
	ConfigureScheduler bool // MassiveThreads: plug-in only at configure time
	StackableScheduler bool
	GroupScheduler     bool
}

// TableI returns the feature matrix exactly as the paper states it.
func TableI() map[Library]Features {
	return map[Library]Features{
		Pthreads: {
			HierarchyLevels: 1, WorkUnitTypes: 1, ThreadSupport: true,
			GroupControl: false, GlobalQueue: true, PrivateQueue: true,
			PluginScheduler: true,
		},
		Argobots: {
			HierarchyLevels: 2, WorkUnitTypes: 2, ThreadSupport: true,
			TaskletSupport: true, GroupControl: true, YieldTo: true,
			GlobalQueue: true, PrivateQueue: true, PluginScheduler: true,
			StackableScheduler: true, GroupScheduler: true,
		},
		Qthreads: {
			HierarchyLevels: 3, WorkUnitTypes: 1, ThreadSupport: true,
			GroupControl: true, PrivateQueue: true, PluginScheduler: true,
		},
		MassiveThreads: {
			HierarchyLevels: 2, WorkUnitTypes: 1, ThreadSupport: true,
			GroupControl: true, PrivateQueue: true,
			PluginScheduler: true, ConfigureScheduler: true,
		},
		ConverseThreads: {
			HierarchyLevels: 2, WorkUnitTypes: 2, ThreadSupport: true,
			TaskletSupport: true, GroupControl: true, PrivateQueue: true,
			PluginScheduler: true,
		},
		Go: {
			HierarchyLevels: 2, WorkUnitTypes: 1, ThreadSupport: true,
			GroupControl: true, GlobalQueue: true,
		},
	}
}

// Operation identifies a row of Table II.
type Operation int

// The Table II rows.
const (
	OpInit Operation = iota
	OpULTCreate
	OpTaskletCreate
	OpYield
	OpJoin
	OpFinalize
)

// Operations lists the Table II rows in order.
func Operations() []Operation {
	return []Operation{OpInit, OpULTCreate, OpTaskletCreate, OpYield, OpJoin, OpFinalize}
}

// String returns the row label.
func (o Operation) String() string {
	switch o {
	case OpInit:
		return "Initialization"
	case OpULTCreate:
		return "ULT creation"
	case OpTaskletCreate:
		return "Tasklet creation"
	case OpYield:
		return "Yield"
	case OpJoin:
		return "Join"
	case OpFinalize:
		return "Finalization"
	default:
		return fmt.Sprintf("Operation(%d)", int(o))
	}
}

// TableII returns the function-name mapping of Table II: for each
// operation, what each library calls it (empty string = unsupported).
func TableII() map[Operation]map[Library]string {
	return map[Operation]map[Library]string{
		OpInit: {
			Argobots: "ABT_init", Qthreads: "qthread_initialize",
			MassiveThreads: "myth_init", ConverseThreads: "ConverseInit",
			Go: "",
		},
		OpULTCreate: {
			Argobots: "ABT_thread_create", Qthreads: "qthread_fork",
			MassiveThreads: "myth_create", ConverseThreads: "CthCreate",
			Go: "go function",
		},
		OpTaskletCreate: {
			Argobots: "ABT_task_create", ConverseThreads: "CmiSyncSend",
		},
		OpYield: {
			Argobots: "ABT_thread_yield", Qthreads: "qthread_yield",
			MassiveThreads: "myth_yield", ConverseThreads: "CthYield",
			Go: "",
		},
		OpJoin: {
			Argobots: "ABT_thread_free", Qthreads: "qthread_readFF",
			MassiveThreads: "myth_join", ConverseThreads: "",
			Go: "channel",
		},
		OpFinalize: {
			Argobots: "ABT_finalize", Qthreads: "qthread_finalize",
			MassiveThreads: "myth_fini", ConverseThreads: "ConverseExit",
			Go: "",
		},
	}
}

// mark renders a boolean as the paper's check mark.
func mark(b bool) string {
	if b {
		return "X"
	}
	return ""
}

// RenderTableI formats Table I as aligned text.
func RenderTableI() string {
	libs := Libraries()
	tab := TableI()
	rows := []struct {
		label string
		cell  func(Features) string
	}{
		{"Levels of Hierarchy", func(f Features) string { return fmt.Sprintf("%d", f.HierarchyLevels) }},
		{"# of Work Unit Types", func(f Features) string { return fmt.Sprintf("%d", f.WorkUnitTypes) }},
		{"Thread Support", func(f Features) string { return mark(f.ThreadSupport) }},
		{"Tasklet Support", func(f Features) string { return mark(f.TaskletSupport) }},
		{"Group Control", func(f Features) string { return mark(f.GroupControl) }},
		{"Yield To", func(f Features) string { return mark(f.YieldTo) }},
		{"Global Work Unit Queue", func(f Features) string { return mark(f.GlobalQueue) }},
		{"Private Work Unit Queue", func(f Features) string { return mark(f.PrivateQueue) }},
		{"Plug-in Scheduler", func(f Features) string {
			if f.ConfigureScheduler {
				return "X(configure)"
			}
			return mark(f.PluginScheduler)
		}},
		{"Stackable Scheduler", func(f Features) string { return mark(f.StackableScheduler) }},
		{"Group Scheduler", func(f Features) string { return mark(f.GroupScheduler) }},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s", "Concept")
	for _, l := range libs {
		fmt.Fprintf(&b, "%-18s", l)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s", r.label)
		for _, l := range libs {
			fmt.Fprintf(&b, "%-18s", r.cell(tab[l]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTableII formats Table II as aligned text.
func RenderTableII() string {
	libs := []Library{Argobots, Qthreads, MassiveThreads, ConverseThreads, Go}
	tab := TableII()
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s", "Function")
	for _, l := range libs {
		fmt.Fprintf(&b, "%-22s", l)
	}
	b.WriteByte('\n')
	for _, op := range Operations() {
		fmt.Fprintf(&b, "%-18s", op)
		for _, l := range libs {
			fmt.Fprintf(&b, "%-22s", tab[op][l])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
