package semantics

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestSleepPreservesPlacement is the async-I/O placement contract: on
// backends whose capabilities grant pinning, a ULT created with
// ULTCreateTo(i) that parks on the reactor mid-body must resume on
// executor i — the unpark half of the park pair pushes the unit back to
// the pool it was issued from, not to whichever executor the reactor
// happened to run near. Backends without the Placement promise only
// guarantee an in-range executor after the wait (MassiveThreads
// documents that a resumed unit may migrate, exactly as a steal would
// move it).
func TestSleepPreservesPlacement(t *testing.T) {
	for _, name := range core.Backends() {
		name := name
		t.Run(name, func(t *testing.T) {
			const executors = 3
			r := core.MustNew(name, executors)
			defer r.Finalize()
			caps := r.Caps()
			n := r.NumExecutors()
			before := make([]atomic.Int64, n)
			after := make([]atomic.Int64, n)
			hs := make([]core.Handle, 0, n)
			for i := 0; i < n; i++ {
				i := i
				hs = append(hs, r.ULTCreateTo(i, func(c core.Ctx) {
					before[i].Store(int64(c.ExecutorID()) + 1)
					core.Sleep(c, 5*time.Millisecond)
					after[i].Store(int64(c.ExecutorID()) + 1)
				}))
			}
			r.JoinAll(hs)
			for i := 0; i < n; i++ {
				b, a := before[i].Load()-1, after[i].Load()-1
				if b < 0 || b >= int64(n) || a < 0 || a >= int64(n) {
					t.Fatalf("create-to(%d): executors %d -> %d out of range [0,%d)", i, b, a, n)
				}
				if caps.Placement && (b != int64(i) || a != int64(i)) {
					t.Fatalf("create-to(%d): executors %d -> %d across Sleep; caps promise pinning", i, b, a)
				}
			}
		})
	}
}
