package semantics

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestLibrariesOrderedAsTableI(t *testing.T) {
	libs := Libraries()
	want := []string{"Pthreads", "Argobots", "Qthreads", "MassiveThreads", "Converse Threads", "Go"}
	if len(libs) != len(want) {
		t.Fatalf("libraries = %v", libs)
	}
	for i, l := range libs {
		if l.String() != want[i] {
			t.Fatalf("library %d = %q, want %q", i, l, want[i])
		}
	}
}

func TestExecutorNames(t *testing.T) {
	want := map[Library]string{
		Pthreads:        "Pthread",
		Argobots:        "Execution Stream",
		Qthreads:        "Shepherd",
		MassiveThreads:  "Worker",
		ConverseThreads: "Processor",
		Go:              "Thread",
	}
	for l, w := range want {
		if got := l.ExecutorName(); got != w {
			t.Fatalf("%v executor = %q, want %q", l, got, w)
		}
	}
}

// TestTableIMatchesImplementations cross-checks the documented Table I
// against the live capabilities of the unified-API backends: the paper's
// semantic analysis must describe what this repository actually built.
func TestTableIMatchesImplementations(t *testing.T) {
	tab := TableI()
	for _, lib := range Libraries() {
		name := lib.BackendName()
		if name == "" {
			continue // Pthreads: reference only
		}
		r := core.MustNew(name, 2)
		caps := r.Caps()
		r.Finalize()
		f := tab[lib]
		if caps.HierarchyLevels != f.HierarchyLevels {
			t.Errorf("%v: hierarchy levels impl=%d table=%d", lib, caps.HierarchyLevels, f.HierarchyLevels)
		}
		if caps.WorkUnitTypes != f.WorkUnitTypes {
			t.Errorf("%v: work unit types impl=%d table=%d", lib, caps.WorkUnitTypes, f.WorkUnitTypes)
		}
		if caps.Tasklets != f.TaskletSupport {
			t.Errorf("%v: tasklet support impl=%v table=%v", lib, caps.Tasklets, f.TaskletSupport)
		}
		if caps.YieldTo != f.YieldTo {
			t.Errorf("%v: yield-to impl=%v table=%v", lib, caps.YieldTo, f.YieldTo)
		}
		if caps.StackableScheduler != f.StackableScheduler {
			t.Errorf("%v: stackable sched impl=%v table=%v", lib, caps.StackableScheduler, f.StackableScheduler)
		}
		// Queue shape: the default backend configuration must agree
		// with the table's private-queue column for the LWT libraries
		// that have one, and Go's global queue.
		if lib == Go && !caps.GlobalQueue {
			t.Errorf("Go backend lost its global queue")
		}
		if lib != Go && lib != Pthreads && !caps.PrivateQueues {
			t.Errorf("%v backend lost its private queues", lib)
		}
	}
}

func TestTableIIRowsComplete(t *testing.T) {
	tab := TableII()
	if len(tab) != len(Operations()) {
		t.Fatalf("Table II has %d rows, want %d", len(tab), len(Operations()))
	}
	// Spot-check the exact cells of the paper.
	checks := []struct {
		op   Operation
		lib  Library
		want string
	}{
		{OpInit, Argobots, "ABT_init"},
		{OpULTCreate, Qthreads, "qthread_fork"},
		{OpULTCreate, Go, "go function"},
		{OpTaskletCreate, ConverseThreads, "CmiSyncSend"},
		{OpTaskletCreate, Qthreads, ""},
		{OpYield, MassiveThreads, "myth_yield"},
		{OpYield, Go, ""},
		{OpJoin, Argobots, "ABT_thread_free"},
		{OpJoin, Qthreads, "qthread_readFF"},
		{OpJoin, Go, "channel"},
		{OpFinalize, ConverseThreads, "ConverseExit"},
	}
	for _, c := range checks {
		if got := tab[c.op][c.lib]; got != c.want {
			t.Errorf("TableII[%v][%v] = %q, want %q", c.op, c.lib, got, c.want)
		}
	}
}

func TestTaskletRowsConsistent(t *testing.T) {
	// A library has a Tasklet-creation function iff Table I grants it
	// tasklet support.
	tabI, tabII := TableI(), TableII()
	for _, lib := range Libraries() {
		if lib == Pthreads {
			continue
		}
		hasFn := tabII[OpTaskletCreate][lib] != ""
		if hasFn != tabI[lib].TaskletSupport {
			t.Errorf("%v: tasklet function %v but support %v", lib, hasFn, tabI[lib].TaskletSupport)
		}
	}
}

func TestRenderTableI(t *testing.T) {
	out := RenderTableI()
	for _, want := range []string{
		"Levels of Hierarchy", "Stackable Scheduler", "Argobots",
		"Converse Threads", "X(configure)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I rendering missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 12 {
		t.Fatalf("Table I has %d lines, want 12 (header + 11 rows)", lines)
	}
}

func TestRenderTableII(t *testing.T) {
	out := RenderTableII()
	for _, want := range []string{
		"Initialization", "qthread_readFF", "CmiSyncSend", "go function", "myth_fini",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II rendering missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 7 {
		t.Fatalf("Table II has %d lines, want 7 (header + 6 rows)", lines)
	}
}

func TestBackendNameRoundTrip(t *testing.T) {
	for _, lib := range Libraries() {
		name := lib.BackendName()
		if lib == Pthreads {
			if name != "" {
				t.Fatal("Pthreads must have no backend")
			}
			continue
		}
		found := false
		for _, b := range core.Backends() {
			if b == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("%v backend %q not registered", lib, name)
		}
	}
}
