package argobots

import (
	"sync/atomic"
	"testing"
)

func TestMutexMutualExclusionAcrossULTs(t *testing.T) {
	rt := Init(Config{XStreams: 4})
	defer rt.Finalize()
	var m Mutex
	counter := 0 // protected by m only
	const ults, iters = 16, 200
	ths := make([]*Thread, ults)
	for i := range ths {
		ths[i] = rt.ThreadCreate(func(c *Context) {
			for j := 0; j < iters; j++ {
				m.Lock(c)
				counter++
				m.Unlock()
			}
		})
	}
	for _, th := range ths {
		rt.ThreadFree(th)
	}
	if counter != ults*iters {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, ults*iters)
	}
	t.Logf("contended acquisitions: %d", m.Contended())
}

func TestMutexTryLock(t *testing.T) {
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock failed on an unlocked mutex")
	}
	if m.TryLock() {
		t.Fatal("TryLock succeeded on a locked mutex")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock failed after Unlock")
	}
	m.Unlock()
}

func TestMutexUnlockOfUnlockedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Unlock of unlocked mutex did not panic")
		}
	}()
	var m Mutex
	m.Unlock()
}

func TestCondWaitSignal(t *testing.T) {
	rt := Init(Config{XStreams: 2})
	defer rt.Finalize()
	var m Mutex
	var c Cond
	ready := false

	waiter := rt.ThreadCreate(func(ctx *Context) {
		m.Lock(ctx)
		for !ready {
			c.Wait(&m, ctx)
		}
		m.Unlock()
	})
	setter := rt.ThreadCreate(func(ctx *Context) {
		m.Lock(ctx)
		ready = true
		m.Unlock()
		c.Signal()
	})
	rt.ThreadFree(setter)
	rt.ThreadFree(waiter)
}

func TestCondBroadcastWakesAll(t *testing.T) {
	rt := Init(Config{XStreams: 4})
	defer rt.Finalize()
	var m Mutex
	var c Cond
	released := 0
	go4 := false

	const waiters = 8
	ths := make([]*Thread, waiters)
	for i := range ths {
		ths[i] = rt.ThreadCreate(func(ctx *Context) {
			m.Lock(ctx)
			for !go4 {
				c.Wait(&m, ctx)
			}
			released++
			m.Unlock()
		})
	}
	setter := rt.ThreadCreate(func(ctx *Context) {
		m.Lock(ctx)
		go4 = true
		m.Unlock()
		c.Broadcast()
	})
	rt.ThreadFree(setter)
	for _, th := range ths {
		rt.ThreadFree(th)
	}
	if released != waiters {
		t.Fatalf("released = %d, want %d", released, waiters)
	}
}

func TestEventualFuture(t *testing.T) {
	rt := Init(Config{XStreams: 2})
	defer rt.Finalize()
	var ev Eventual
	if ev.Ready() {
		t.Fatal("fresh eventual is ready")
	}
	var got atomic.Int64
	consumer := rt.ThreadCreate(func(c *Context) {
		got.Store(int64(ev.Wait(c).(int)))
	})
	producer := rt.ThreadCreate(func(c *Context) {
		ev.Set(42)
	})
	rt.ThreadFree(producer)
	rt.ThreadFree(consumer)
	if got.Load() != 42 {
		t.Fatalf("eventual delivered %d, want 42", got.Load())
	}
	// Waiting again returns immediately with the same value.
	if v := ev.Wait(rt).(int); v != 42 {
		t.Fatalf("re-wait = %d", v)
	}
}

func TestEventualDoubleSetPanics(t *testing.T) {
	var ev Eventual
	ev.Set(1)
	defer func() {
		if recover() == nil {
			t.Fatal("double Set did not panic")
		}
	}()
	ev.Set(2)
}

func TestULTBarrierRendezvous(t *testing.T) {
	rt := Init(Config{XStreams: 4})
	defer rt.Finalize()
	const parties, rounds = 6, 10
	b := NewBarrier(parties)
	if b.Parties() != parties {
		t.Fatalf("Parties = %d", b.Parties())
	}
	var phase atomic.Int32
	var violations atomic.Int32
	ths := make([]*Thread, parties)
	for i := range ths {
		ths[i] = rt.ThreadCreate(func(c *Context) {
			for r := 0; r < rounds; r++ {
				if int(phase.Load()) > r {
					violations.Add(1)
				}
				b.Wait(c)
				phase.CompareAndSwap(int32(r), int32(r+1))
				b.Wait(c)
			}
		})
	}
	for _, th := range ths {
		rt.ThreadFree(th)
	}
	if violations.Load() != 0 {
		t.Fatalf("%d barrier phase violations", violations.Load())
	}
	if phase.Load() != rounds {
		t.Fatalf("phases = %d, want %d", phase.Load(), rounds)
	}
}

func TestBarrierPanicsOnZeroParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestPrimaryParticipatesInSync(t *testing.T) {
	// The primary ULT (via *Runtime as Yielder) can share primitives
	// with worker ULTs.
	rt := Init(Config{XStreams: 2})
	defer rt.Finalize()
	var ev Eventual
	rt.ThreadCreate(func(c *Context) { ev.Set("from-worker") })
	if got := ev.Wait(rt).(string); got != "from-worker" {
		t.Fatalf("primary received %q", got)
	}
}
