package argobots

import (
	"sync"
	"sync/atomic"
)

// ULT-aware synchronization primitives, mirroring the Argobots API
// surface (ABT_mutex, ABT_cond, ABT_eventual, ABT_barrier). Unlike
// OS-level primitives, these must never block the executor an ULT runs
// on — a blocked executor would stall every queued work unit behind it —
// so every wait is cooperative: the caller yields between polls. Any
// context with a Yield method participates: both *Context (inside a ULT)
// and *Runtime (the primary ULT) qualify.

// Yielder is anything that can cooperatively give up control: *Context
// inside a ULT, *Runtime for the primary.
type Yielder interface {
	// Yield returns control to the scheduler.
	Yield()
}

var (
	_ Yielder = (*Context)(nil)
	_ Yielder = (*Runtime)(nil)
)

// Mutex is a ULT-level mutual-exclusion lock (ABT_mutex). Contended
// lockers yield rather than block the executor.
//
// The zero value is an unlocked mutex.
type Mutex struct {
	locked atomic.Bool
	// Contended counts lock acquisitions that had to yield at least
	// once.
	contended atomic.Uint64
}

// Lock acquires the mutex, yielding through y while contended.
func (m *Mutex) Lock(y Yielder) {
	if m.locked.CompareAndSwap(false, true) {
		return
	}
	m.contended.Add(1)
	for !m.locked.CompareAndSwap(false, true) {
		y.Yield()
	}
}

// TryLock acquires the mutex without waiting; it reports success.
func (m *Mutex) TryLock() bool {
	return m.locked.CompareAndSwap(false, true)
}

// Unlock releases the mutex. Unlocking an unlocked mutex panics, as the
// misuse it signals is always a bug.
func (m *Mutex) Unlock() {
	if !m.locked.CompareAndSwap(true, false) {
		panic("argobots: Unlock of unlocked Mutex")
	}
}

// Contended reports how many Lock calls had to wait.
func (m *Mutex) Contended() uint64 { return m.contended.Load() }

// Cond is a ULT-level condition variable (ABT_cond) built on a
// generation counter: waiters observe the generation, release the mutex,
// and yield until the generation moves. Signal and Broadcast both
// advance the generation, so Signal may wake more than one waiter —
// waiters must re-check their predicate, as with any condition variable.
type Cond struct {
	gen atomic.Uint64
}

// Wait atomically releases m, waits for a signal, and reacquires m.
// Must be called with m held.
func (c *Cond) Wait(m *Mutex, y Yielder) {
	gen := c.gen.Load()
	m.Unlock()
	for c.gen.Load() == gen {
		y.Yield()
	}
	m.Lock(y)
}

// Signal wakes waiting ULTs (at least one; possibly all — re-check the
// predicate).
func (c *Cond) Signal() { c.gen.Add(1) }

// Broadcast wakes all waiting ULTs.
func (c *Cond) Broadcast() { c.gen.Add(1) }

// Eventual is a write-once value ULTs can wait on (ABT_eventual) — the
// LWT analogue of a future.
type Eventual struct {
	mu    sync.Mutex
	val   any
	ready atomic.Bool
}

// Set publishes the value. Setting twice panics: an eventual is
// write-once.
func (e *Eventual) Set(v any) {
	e.mu.Lock()
	if e.ready.Load() {
		e.mu.Unlock()
		panic("argobots: Eventual set twice")
	}
	e.val = v
	e.mu.Unlock()
	e.ready.Store(true)
}

// Ready reports whether the value has been published.
func (e *Eventual) Ready() bool { return e.ready.Load() }

// Wait yields until the value is published and returns it.
func (e *Eventual) Wait(y Yielder) any {
	for !e.ready.Load() {
		y.Yield()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.val
}

// Barrier is a ULT-level rendezvous (ABT_barrier): parties ULTs meet,
// yielding while they wait, then all proceed. It is reusable
// (sense-reversing).
type Barrier struct {
	parties int32
	count   atomic.Int32
	sense   atomic.Uint32
}

// NewBarrier creates a barrier for n parties. It panics if n < 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("argobots: barrier needs at least one party")
	}
	b := &Barrier{parties: int32(n)}
	b.count.Store(int32(n))
	return b
}

// Wait blocks (cooperatively) until all parties arrive.
func (b *Barrier) Wait(y Yielder) {
	sense := b.sense.Load()
	if b.count.Add(-1) == 0 {
		b.count.Store(b.parties)
		b.sense.Add(1)
		return
	}
	for b.sense.Load() == sense {
		y.Yield()
	}
}

// Parties reports the number of participants.
func (b *Barrier) Parties() int { return int(b.parties) }
