package argobots

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sched"
)

func TestInitFinalizeEmpty(t *testing.T) {
	rt := Init(Config{XStreams: 2})
	if rt.NumXStreams() != 2 {
		t.Fatalf("NumXStreams = %d, want 2", rt.NumXStreams())
	}
	rt.Finalize()
}

func TestFinalizeIdempotent(t *testing.T) {
	rt := Init(Config{XStreams: 1})
	rt.Finalize()
	rt.Finalize() // must not panic or hang
}

func TestInitPanicsOnZeroStreams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Init(0 streams) did not panic")
		}
	}()
	Init(Config{XStreams: 0})
}

func TestULTCreateJoinFree(t *testing.T) {
	rt := Init(Config{XStreams: 4})
	defer rt.Finalize()
	const n = 100
	var ran atomic.Int64
	ths := make([]*Thread, n)
	for i := range ths {
		ths[i] = rt.ThreadCreate(func(c *Context) { ran.Add(1) })
	}
	for _, th := range ths {
		if err := rt.ThreadFree(th); err != nil {
			t.Fatalf("ThreadFree: %v", err)
		}
	}
	if got := ran.Load(); got != n {
		t.Fatalf("ran = %d, want %d", got, n)
	}
}

func TestTaskletCreateJoinFree(t *testing.T) {
	rt := Init(Config{XStreams: 4})
	defer rt.Finalize()
	const n = 100
	var ran atomic.Int64
	tks := make([]*Task, n)
	for i := range tks {
		tks[i] = rt.TaskCreate(func() { ran.Add(1) })
	}
	for _, tk := range tks {
		if err := rt.TaskFree(tk); err != nil {
			t.Fatalf("TaskFree: %v", err)
		}
	}
	if got := ran.Load(); got != n {
		t.Fatalf("ran = %d, want %d", got, n)
	}
}

func TestDoubleThreadFreeReportsError(t *testing.T) {
	rt := Init(Config{XStreams: 1})
	defer rt.Finalize()
	th := rt.ThreadCreate(func(c *Context) {})
	if err := rt.ThreadFree(th); err != nil {
		t.Fatalf("first free: %v", err)
	}
	if err := rt.ThreadFree(th); err == nil {
		t.Fatal("second free succeeded")
	}
}

func TestPrivatePoolsSpreadWork(t *testing.T) {
	rt := Init(Config{XStreams: 4, Pools: PrivatePools})
	defer rt.Finalize()
	const n = 400
	// Join through the runtime (TaskFree yields the primary): blocking
	// the primary on an OS-level wait instead would stall ES 0 — the
	// same hazard real Argobots has when main() blocks without
	// yielding.
	tks := make([]*Task, n)
	for i := 0; i < n; i++ {
		tks[i] = rt.TaskCreate(func() {})
	}
	for _, tk := range tks {
		if err := rt.TaskFree(tk); err != nil {
			t.Fatal(err)
		}
	}
	// Round-robin dealing: every stream must have executed some units.
	for i := 0; i < 4; i++ {
		if got := rt.xstream(i).Stats().TaskletRuns.Load(); got == 0 {
			t.Fatalf("ES %d ran no tasklets under private pools", i)
		}
	}
}

func TestSharedPoolMode(t *testing.T) {
	rt := Init(Config{XStreams: 4, Pools: SharedPool})
	defer rt.Finalize()
	const n = 200
	var ran atomic.Int64
	ths := make([]*Thread, n)
	for i := range ths {
		ths[i] = rt.ThreadCreate(func(c *Context) { ran.Add(1) })
	}
	for _, th := range ths {
		if err := rt.ThreadFree(th); err != nil {
			t.Fatalf("ThreadFree: %v", err)
		}
	}
	if ran.Load() != n {
		t.Fatalf("ran = %d, want %d", ran.Load(), n)
	}
}

func TestCreateToTargetsNamedStream(t *testing.T) {
	rt := Init(Config{XStreams: 3, Pools: PrivatePools})
	defer rt.Finalize()
	const n = 30
	var onTwo atomic.Int64
	tks := make([]*Task, n)
	for i := 0; i < n; i++ {
		tks[i] = rt.TaskCreateTo(func() { onTwo.Add(1) }, 2)
	}
	for _, tk := range tks {
		rt.TaskFree(tk)
	}
	if got := rt.xstream(2).Stats().TaskletRuns.Load(); got != n {
		t.Fatalf("ES2 ran %d tasklets, want %d", got, n)
	}
}

func TestYieldToTransfersDirectly(t *testing.T) {
	// Both ULTs forced onto ES 1 so the hand-off is observable. The
	// creator spawns the target itself: while it runs it holds ES 1's
	// executor, so the target cannot be scheduler-popped before the
	// YieldTo hint lands — the hand-off is deterministic.
	rt := Init(Config{XStreams: 2, Pools: PrivatePools})
	defer rt.Finalize()
	var mu sync.Mutex
	var order []string
	note := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }

	var b *Thread
	a := rt.ThreadCreateTo(func(c *Context) {
		note("a1")
		b = c.ThreadCreateTo(func(*Context) { note("b") }, 1)
		c.YieldTo(b)
		note("a2")
	}, 1)
	rt.ThreadFree(a)
	rt.ThreadFree(b)

	mu.Lock()
	defer mu.Unlock()
	// The paper's yield_to semantics: control reaches b before a resumes.
	idxA2, idxB := -1, -1
	for i, s := range order {
		switch s {
		case "a2":
			idxA2 = i
		case "b":
			idxB = i
		}
	}
	if idxB == -1 || idxA2 == -1 || idxB > idxA2 {
		t.Fatalf("yield_to order = %v, want b before a2", order)
	}
	if got := rt.xstream(1).Stats().HintHits.Load(); got == 0 {
		t.Fatal("yield_to did not bypass the scheduler (no hint hits)")
	}
}

func TestNestedCreationFromULT(t *testing.T) {
	rt := Init(Config{XStreams: 4})
	defer rt.Finalize()
	var leaves atomic.Int64
	const parents, children = 10, 7
	ths := make([]*Thread, parents)
	for i := 0; i < parents; i++ {
		ths[i] = rt.ThreadCreate(func(c *Context) {
			kids := make([]*Thread, children)
			for j := range kids {
				kids[j] = c.ThreadCreate(func(c2 *Context) { leaves.Add(1) })
			}
			for _, k := range kids {
				c.Join(k)
			}
		})
	}
	for _, th := range ths {
		if err := rt.ThreadFree(th); err != nil {
			t.Fatal(err)
		}
	}
	if got := leaves.Load(); got != parents*children {
		t.Fatalf("leaves = %d, want %d", got, parents*children)
	}
}

func TestContextJoinFreeAndTasklets(t *testing.T) {
	rt := Init(Config{XStreams: 2})
	defer rt.Finalize()
	var sum atomic.Int64
	parent := rt.ThreadCreate(func(c *Context) {
		child := c.ThreadCreate(func(*Context) { sum.Add(1) })
		if err := c.JoinFree(child); err != nil {
			t.Errorf("JoinFree: %v", err)
		}
		tk := c.TaskCreate(func() { sum.Add(10) })
		c.JoinTask(tk)
		tk2 := c.TaskCreateTo(func() { sum.Add(100) }, 0)
		c.JoinTask(tk2)
	})
	rt.ThreadFree(parent)
	if got := sum.Load(); got != 111 {
		t.Fatalf("sum = %d, want 111", got)
	}
}

func TestDynamicXStreamCreation(t *testing.T) {
	rt := Init(Config{XStreams: 1})
	defer rt.Finalize()
	id, err := rt.XStreamCreate()
	if err != nil {
		t.Fatal(err)
	}
	if id != 1 {
		t.Fatalf("new ES id = %d, want 1", id)
	}
	if rt.NumXStreams() != 2 {
		t.Fatalf("NumXStreams = %d, want 2", rt.NumXStreams())
	}
	var ran atomic.Int64
	const n = 20
	tks := make([]*Task, n)
	for i := 0; i < n; i++ {
		tks[i] = rt.TaskCreateTo(func() { ran.Add(1) }, id)
	}
	for _, tk := range tks {
		rt.TaskFree(tk)
	}
	if ran.Load() != n {
		t.Fatalf("ran = %d, want %d", ran.Load(), n)
	}
	if got := rt.xstream(id).Stats().TaskletRuns.Load(); got != n {
		t.Fatalf("dynamic ES ran %d units, want %d", got, n)
	}
}

func TestXStreamCreateAfterFinalize(t *testing.T) {
	rt := Init(Config{XStreams: 1})
	rt.Finalize()
	if _, err := rt.XStreamCreate(); err != ErrFinalized {
		t.Fatalf("err = %v, want ErrFinalized", err)
	}
}

func TestStackableSchedulerPrioritizes(t *testing.T) {
	rt := Init(Config{XStreams: 2, Pools: PrivatePools})
	defer rt.Finalize()

	// Park ES 1 behind a gate so we can queue units before any run.
	gate := make(chan struct{})
	gateTh := rt.ThreadCreateTo(func(c *Context) { <-gate }, 1)

	var mu sync.Mutex
	var order []int
	mk := func(tag int) func() {
		return func() { mu.Lock(); order = append(order, tag); mu.Unlock() }
	}

	low := rt.TaskCreateTo(mk(1), 1)
	// Stack a priority policy on ES 1: units created now go through it.
	prio := sched.NewPriority(2)
	rt.PushScheduler(1, prio)
	high := rt.TaskCreateTo(mk(2), 1)

	close(gate)
	rt.TaskFree(high)
	rt.TaskFree(low)
	rt.ThreadFree(gateTh)

	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != 2 {
		t.Fatalf("order = %v, want stacked-scheduler unit (2) first", order)
	}

	// Popping with queued units must not lose them.
	rt.PushScheduler(1, sched.NewFIFO())
	tk := rt.TaskCreateTo(func() {}, 1)
	rt.PopScheduler(1)
	rt.TaskFree(tk) // completes only if the unit survived the pop
}

func TestPopSchedulerBasePolicy(t *testing.T) {
	rt := Init(Config{XStreams: 1})
	defer rt.Finalize()
	if p := rt.PopScheduler(0); p != nil {
		t.Fatal("popped the base policy")
	}
}

func TestPrimaryYieldLetsWorkersRun(t *testing.T) {
	rt := Init(Config{XStreams: 1})
	defer rt.Finalize()
	var ran atomic.Bool
	rt.ThreadCreateTo(func(c *Context) { ran.Store(true) }, 0)
	// Only one ES: the worker can only run when the primary yields.
	for !ran.Load() {
		rt.Yield()
	}
}

func TestManyYieldingULTsStress(t *testing.T) {
	rt := Init(Config{XStreams: 4})
	defer rt.Finalize()
	const n, yields = 200, 5
	var total atomic.Int64
	ths := make([]*Thread, n)
	for i := range ths {
		ths[i] = rt.ThreadCreate(func(c *Context) {
			for y := 0; y < yields; y++ {
				total.Add(1)
				c.Yield()
			}
		})
	}
	for _, th := range ths {
		if err := rt.ThreadFree(th); err != nil {
			t.Fatal(err)
		}
	}
	if got := total.Load(); got != n*yields {
		t.Fatalf("total = %d, want %d", got, n*yields)
	}
}

func TestPoolKindString(t *testing.T) {
	if PrivatePools.String() != "private" || SharedPool.String() != "shared" {
		t.Fatal("PoolKind strings wrong")
	}
}
