package argobots

import (
	"sync/atomic"
	"testing"

	"repro/internal/ult"
)

func TestIdleParkingCompletesWork(t *testing.T) {
	rt := Init(Config{XStreams: 4, IdleParking: true})
	defer rt.Finalize()
	const n = 200
	var ran atomic.Int64
	tks := make([]*Task, n)
	for i := 0; i < n; i++ {
		tks[i] = rt.TaskCreate(func() { ran.Add(1) })
	}
	for _, tk := range tks {
		if err := rt.TaskFree(tk); err != nil {
			t.Fatal(err)
		}
	}
	if ran.Load() != n {
		t.Fatalf("ran = %d, want %d", ran.Load(), n)
	}
}

func TestIdleParkingWithULTsAndYields(t *testing.T) {
	rt := Init(Config{XStreams: 3, IdleParking: true})
	defer rt.Finalize()
	var total atomic.Int64
	ths := make([]*Thread, 60)
	for i := range ths {
		ths[i] = rt.ThreadCreate(func(c *Context) {
			total.Add(1)
			c.Yield()
			total.Add(1)
		})
	}
	for _, th := range ths {
		if err := rt.ThreadFree(th); err != nil {
			t.Fatal(err)
		}
	}
	if got := total.Load(); got != 120 {
		t.Fatalf("total = %d, want 120", got)
	}
}

func TestIdleParkingBurstsAndQuiescence(t *testing.T) {
	// Alternating bursts and quiet phases: parked streams must wake for
	// each burst (no lost wakeups) and the runtime must finalize from a
	// fully parked state.
	rt := Init(Config{XStreams: 4, IdleParking: true})
	defer rt.Finalize()
	for burst := 0; burst < 10; burst++ {
		var ran atomic.Int64
		tks := make([]*Task, 40)
		for i := range tks {
			tks[i] = rt.TaskCreate(func() { ran.Add(1) })
		}
		for _, tk := range tks {
			rt.TaskFree(tk)
		}
		if ran.Load() != 40 {
			t.Fatalf("burst %d: ran = %d, want 40", burst, ran.Load())
		}
		// Let the streams drain into the parked state between bursts.
		for s := 0; s < 100; s++ {
			rt.Yield()
		}
	}
}

func TestIdleParkingReducesIdleSpins(t *testing.T) {
	run := func(parking bool) uint64 {
		rt := Init(Config{XStreams: 4, IdleParking: parking})
		defer rt.Finalize()
		tks := make([]*Task, 100)
		for i := range tks {
			tks[i] = rt.TaskCreate(func() {})
		}
		for _, tk := range tks {
			rt.TaskFree(tk)
		}
		var spins uint64
		for i := 0; i < rt.NumXStreams(); i++ {
			spins += rt.xstream(i).Stats().IdleSpins.Load()
		}
		return spins
	}
	parked := run(true)
	busy := run(false)
	// Busy-wait streams spin thousands of times during create/join;
	// parked streams sleep instead. The exact numbers are scheduling-
	// dependent, but parking must cut spins dramatically.
	if parked*10 > busy {
		t.Fatalf("idle spins: parked=%d busy=%d; parking did not reduce spinning", parked, busy)
	}
}

func TestParkerEpochNoLostWakeup(t *testing.T) {
	p := ult.NewParker()
	// A wake that lands after Epoch but before ParkIf must make ParkIf
	// return immediately.
	e := p.Epoch()
	p.Wake()
	done := make(chan bool, 1)
	go func() { done <- p.ParkIf(e) }()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("ParkIf returned closed")
		}
	default:
		// Give it a moment; it must not block.
		if ok := <-done; !ok {
			t.Fatal("ParkIf returned closed")
		}
	}
	p.Close()
	if p.ParkIf(p.Epoch()) {
		t.Fatal("ParkIf after Close returned true")
	}
}
