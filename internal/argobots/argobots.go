// Package argobots emulates the Argobots programming model (§III-E of the
// paper): execution streams (ES) that can be created dynamically, two work
// unit types (ULTs and Tasklets), per-ES private pools or shared pools
// chosen by the user, stackable schedulers, and the yield_to operation
// that hands control to a named ULT without consulting the scheduler.
//
// The caller of Init becomes the primary ULT of ES 0, exactly as
// ABT_init makes main() the primary ULT. Joins follow the Argobots
// join-and-free discipline (ABT_thread_free in Table II): the joiner polls
// the work unit's status — yielding between polls when it is itself a
// ULT — and releases the unit's resources when done. The paper attributes
// Argobots' best-in-class Figures 2–4 behaviour to the cheap status-check
// join plus tasklets; both are reproduced here.
package argobots

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/queue"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/ult"
)

// PoolKind selects how work-unit pools map to execution streams
// (§VIII-B4: "the work unit pools can be private for each thread or shared
// among all of them").
type PoolKind int

const (
	// PrivatePools gives each ES its own pool; creators deal work units
	// round-robin into the target pools. This is the configuration the
	// paper's evaluation selects for every test (§IX-E).
	PrivatePools PoolKind = iota
	// SharedPool uses one pool for all ESs, serializing every push and
	// pop on its lock.
	SharedPool
)

// String names the pool configuration.
func (k PoolKind) String() string {
	if k == SharedPool {
		return "shared"
	}
	return "private"
}

// Config parameterizes Init.
type Config struct {
	// XStreams is the initial number of execution streams (≥ 1). ES 0
	// hosts the primary ULT.
	XStreams int
	// Pools selects private-per-ES or shared pools.
	Pools PoolKind
	// Tracer records scheduling events (dispatches, tasklet executions,
	// steals, idle episodes) into per-stream flight-recorder rings. Nil
	// selects the process-global recorder (trace.Default), which is what
	// production deployments run; tests inject their own.
	Tracer *trace.Recorder
	// BasePolicy, when non-nil, constructs the base scheduling policy of
	// each pool (the bottom of every stream's stackable scheduler, or of
	// the one shared pool). Nil means FIFO, the library default. The
	// factory is called once per pool so instances are never shared
	// between private pools.
	BasePolicy func() sched.Policy
	// IdleParking makes idle execution streams park on a condition
	// variable instead of busy-yielding — the passive analogue of
	// OMP_WAIT_POLICY for LWT executors. Busy-wait (the default,
	// matching the C library) wins when streams ≤ cores; parking avoids
	// the oversubscription collapse when streams exceed cores (see
	// EXPERIMENTS.md "Known divergences" and
	// BenchmarkAblationIdlePolicy).
	IdleParking bool
}

// Runtime is an initialized Argobots instance.
type Runtime struct {
	cfg      Config
	mu       sync.Mutex // guards xstreams growth (dynamic ES creation)
	xstreams []*XStream
	shared   *sched.Stack // non-nil in SharedPool mode
	rr       atomic.Pointer[sched.RoundRobin]
	primary  *ult.ULT
	// pWaiter is the primary ULT's reusable park-slot entry: main-thread
	// joins are serial, so one waiter serves every ThreadFree/TaskFree
	// without a per-join allocation.
	pWaiter  *ult.DoneWaiter
	parker   *ult.Parker // non-nil when IdleParking is on
	shutdown atomic.Bool
	wg       sync.WaitGroup
	finished atomic.Bool
}

// XStream is one execution stream: an executor plus its (stackable)
// scheduler over a pool.
type XStream struct {
	rt    *Runtime
	exec  *ult.Executor
	sched *sched.Stack
}

// ID returns the execution stream's rank.
func (x *XStream) ID() int { return x.exec.ID() }

// Stats exposes the stream's executor counters.
func (x *XStream) Stats() *ult.ExecStats { return x.exec.Stats() }

// Thread is a handle on an Argobots ULT. The freed flag keeps the handle
// itself answerable after ThreadFree: the descriptor behind u is pooled
// and may already serve another work unit, so no method may touch it
// once freed is set.
//
// The handle also carries the ULT's body and context so creation needs no
// per-create closure: the substrate runs threadBody with the handle as
// argument (ult.NewWith), and the create/join cycle's only allocation is
// the handle itself.
type Thread struct {
	u     *ult.ULT
	rt    *Runtime
	fn    func(*Context)
	gen   uint64
	ctx   Context
	freed atomic.Bool
}

// threadBody is the closure-free ULT body: the handle carries the user
// function and the per-run context.
func threadBody(self *ult.ULT, arg any) {
	th := arg.(*Thread)
	th.ctx = Context{rt: th.rt, self: self}
	th.fn(&th.ctx)
}

// Task is a handle on an Argobots Tasklet, with the same post-free
// discipline as Thread.
type Task struct {
	t     *ult.Tasklet
	rt    *Runtime
	freed atomic.Bool
}

// Context is passed to ULT bodies; it exposes the cooperative operations
// valid only while the ULT runs.
type Context struct {
	rt   *Runtime
	self *ult.ULT
}

// Errors reported by the runtime.
var (
	// ErrFinalized is returned by operations on a finalized runtime.
	ErrFinalized = errors.New("argobots: runtime finalized")
)

// Init starts the runtime with the given configuration and adopts the
// calling goroutine as the primary ULT of ES 0 (ABT_init). It panics if
// cfg.XStreams < 1.
func Init(cfg Config) *Runtime {
	if cfg.XStreams < 1 {
		panic(fmt.Sprintf("argobots: XStreams = %d, need >= 1", cfg.XStreams))
	}
	rt := &Runtime{cfg: cfg}
	if cfg.IdleParking {
		rt.parker = ult.NewParker()
	}
	if cfg.Pools == SharedPool {
		rt.shared = sched.NewStack(rt.basePolicy())
	}
	rt.rr.Store(sched.NewRoundRobin(cfg.XStreams))
	for i := 0; i < cfg.XStreams; i++ {
		rt.addXStream(i)
	}
	rt.primary = ult.Adopt(rt.xstreams[0].exec)
	rt.pWaiter = &ult.DoneWaiter{Fn: func(*ult.Executor) {
		ult.ResumeAndRequeue(rt.primary, func(j *ult.ULT) { rt.pushTo(j, 0) })
	}}
	for i, x := range rt.xstreams {
		rt.wg.Add(1)
		go x.loop(i == 0)
	}
	return rt
}

// basePolicy constructs one pool's bottom policy per the configuration.
func (rt *Runtime) basePolicy() sched.Policy {
	if rt.cfg.BasePolicy != nil {
		return rt.cfg.BasePolicy()
	}
	return sched.Default()
}

// addXStream creates the ES structure without starting its loop.
func (rt *Runtime) addXStream(id int) *XStream {
	x := &XStream{rt: rt, exec: ult.NewExecutor(id)}
	if rt.shared != nil {
		x.sched = rt.shared
	} else {
		x.sched = sched.NewStack(rt.basePolicy())
	}
	rt.mu.Lock()
	rt.xstreams = append(rt.xstreams, x)
	rt.mu.Unlock()
	return x
}

// XStreamCreate adds a new execution stream at run time — the dynamic
// group control unique to Argobots in Table I — and starts it immediately.
// It returns the new stream's rank.
func (rt *Runtime) XStreamCreate() (int, error) {
	if rt.finished.Load() {
		return 0, ErrFinalized
	}
	rt.mu.Lock()
	id := len(rt.xstreams)
	rt.mu.Unlock()
	x := rt.addXStream(id)
	rt.rr.Store(sched.NewRoundRobin(id + 1))
	rt.wg.Add(1)
	go x.loop(false)
	return id, nil
}

// NumXStreams reports the current number of execution streams.
func (rt *Runtime) NumXStreams() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.xstreams)
}

// xstream returns the ES with the given rank.
func (rt *Runtime) xstream(i int) *XStream {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.xstreams[i]
}

// pushTo inserts a ready unit into the pool serving ES es and wakes any
// parked streams.
func (rt *Runtime) pushTo(u ult.Unit, es int) {
	ult.MarkReady(u)
	if rt.shared != nil {
		rt.shared.Push(u)
	} else {
		rt.xstream(es).sched.Push(u)
	}
	if rt.parker != nil {
		rt.parker.Wake()
	}
}

// nextES picks the round-robin target for a new unit.
func (rt *Runtime) nextES() int {
	if rt.shared != nil {
		return 0
	}
	return rt.rr.Load().Next()
}

// ThreadCreate creates a ULT and makes it runnable (ABT_thread_create).
// With private pools the unit is dealt round-robin across streams, as the
// paper's microbenchmarks do.
func (rt *Runtime) ThreadCreate(fn func(*Context)) *Thread {
	return rt.ThreadCreateTo(fn, rt.nextES())
}

// ThreadCreateTo creates a ULT directly in the pool of ES es. In steady
// state this is allocation-free beyond the returned handle: the handle
// doubles as the body argument (ult.NewWith), and the descriptor — parked
// trampoline goroutine included — comes from the substrate's reuse pool.
func (rt *Runtime) ThreadCreateTo(fn func(*Context), es int) *Thread {
	th := &Thread{rt: rt, fn: fn}
	th.u = ult.NewWith(threadBody, th)
	th.gen = th.u.Gen()
	rt.pushTo(th.u, es)
	return th
}

// TaskCreate creates a Tasklet and makes it runnable (ABT_task_create).
// Tasklets are stackless and atomic: cheaper to create and run, but unable
// to yield — the trade quantified in Figures 2 and 5.
func (rt *Runtime) TaskCreate(fn func()) *Task {
	return rt.TaskCreateTo(fn, rt.nextES())
}

// TaskCreateTo creates a Tasklet directly in the pool of ES es.
func (rt *Runtime) TaskCreateTo(fn func(), es int) *Task {
	tk := &Task{rt: rt, t: ult.NewTasklet(fn)}
	rt.pushTo(tk.t, es)
	return tk
}

// ThreadCreateBulk creates one ULT per body and deals the batch across
// the execution streams in contiguous blocks — one batched pool insertion
// per stream and a single parker wake, instead of a push and a wake per
// unit. The distribution set matches the round-robin dealing of
// ThreadCreate; only the interleaving differs.
func (rt *Runtime) ThreadCreateBulk(fns []func(*Context)) []*Thread {
	ths := make([]*Thread, len(fns))
	units := make([]ult.Unit, len(fns))
	for i, fn := range fns {
		th := &Thread{rt: rt, fn: fn}
		th.u = ult.NewWith(threadBody, th)
		th.gen = th.u.Gen()
		ths[i] = th
		units[i] = th.u
	}
	rt.pushBulk(units)
	return ths
}

// TaskCreateBulk creates one Tasklet per body with the same batched
// dealing as ThreadCreateBulk.
func (rt *Runtime) TaskCreateBulk(fns []func()) []*Task {
	ts := ult.NewTaskletBulk(fns)
	tks := make([]*Task, len(ts))
	units := make([]ult.Unit, len(ts))
	for i, t := range ts {
		tks[i] = &Task{rt: rt, t: t}
		units[i] = t
	}
	rt.pushBulk(units)
	return tks
}

// pushBulk marks the units ready and distributes them: one PushBatch into
// the shared pool, or contiguous blocks across the private pools starting
// at the round-robin cursor, followed by a single wake.
func (rt *Runtime) pushBulk(units []ult.Unit) {
	if len(units) == 0 {
		return
	}
	for _, u := range units {
		ult.MarkReady(u)
	}
	if rt.shared != nil {
		rt.shared.PushBatch(units)
	} else {
		rt.mu.Lock()
		xs := rt.xstreams
		rt.mu.Unlock()
		k := len(xs)
		start := rt.rr.Load().Next()
		per := (len(units) + k - 1) / k
		for i := 0; i*per < len(units); i++ {
			lo := i * per
			hi := min(lo+per, len(units))
			xs[(start+i)%k].sched.PushBatch(units[lo:hi])
		}
	}
	if rt.parker != nil {
		rt.parker.Wake()
	}
}

// Yield yields the primary ULT (ABT_thread_yield from main). Must be
// called from the goroutine that called Init.
func (rt *Runtime) Yield() { rt.primary.Yield() }

// parkPrimary performs one wait step of a main-thread join: the primary
// parks in u's single-waiter slot and is resumed directly by the
// finishing unit (re-entering ES 0's pool) — no polling in the common
// case. It reports whether the park happened; when the slot is already
// taken by another joiner it yields once instead (the poll-yield join the
// C library's status-check join corresponds to) and the caller re-checks
// completion.
func (rt *Runtime) parkPrimary(u ult.WaiterSlot) bool {
	if u.SetWaiter(rt.pWaiter) {
		rt.primary.Suspend()
		return true
	}
	rt.primary.Yield()
	return false
}

// ThreadFree joins the ULT and releases it (ABT_thread_free). The paper
// singles out this join-and-free as the reason Argobots' Figure 6 join is
// costlier than Qthreads' readFF while remaining the best in Figure 3;
// the join itself now parks the primary in the unit's waiter slot instead
// of poll-yielding.
func (rt *Runtime) ThreadFree(th *Thread) error {
	if th.freed.Load() {
		return ult.ErrFreed
	}
	if !th.Done() {
		// One cooperative poll first: a short-lived unit completes while
		// the primary is parked in this yield, and the join never pays
		// the suspend/resume machinery. Units still running after that
		// park the primary in their waiter slot.
		rt.primary.Yield()
		for !th.Done() {
			if rt.parkPrimary(th.u) {
				break
			}
		}
	}
	return th.free()
}

// TaskFree joins a tasklet and releases it (ABT_task_free).
func (rt *Runtime) TaskFree(tk *Task) error {
	if tk.freed.Load() {
		return ult.ErrFreed
	}
	if !tk.Done() {
		rt.primary.Yield() // cooperative poll; see ThreadFree
		for !tk.Done() {
			if rt.parkPrimary(tk.t) {
				break
			}
		}
	}
	return tk.free()
}

// free claims the handle's one free and releases the descriptor. The
// claim makes a double free answer ErrFreed from the handle alone,
// without touching the (possibly recycled) descriptor.
func (th *Thread) free() error {
	if !th.freed.CompareAndSwap(false, true) {
		return ult.ErrFreed
	}
	th.fn = nil
	return th.u.Free()
}

func (tk *Task) free() error {
	if !tk.freed.CompareAndSwap(false, true) {
		return ult.ErrFreed
	}
	return tk.t.Free()
}

// Done reports whether the ULT has completed, without joining it. The
// generation-counted completion word keeps the answer correct — and
// monotonic — even when a concurrent ThreadFree recycles the descriptor
// between the two loads.
func (th *Thread) Done() bool { return th.freed.Load() || th.u.DoneAt(th.gen) }

// Done reports whether the tasklet has completed. The descriptor is read
// before the freed flag: a recycled descriptor (whose status word the
// next incarnation reset) implies the free already happened, so the
// second load then answers true — Done never transiently reports an
// already-completed tasklet as pending.
func (tk *Task) Done() bool { return tk.t.Done() || tk.freed.Load() }

// PushScheduler stacks policy p on top of ES es's scheduler (Argobots
// stackable schedulers, Table I). New work created toward that ES flows
// through p until PopScheduler.
func (rt *Runtime) PushScheduler(es int, p sched.Policy) {
	rt.xstream(es).sched.PushScheduler(p)
}

// PopScheduler removes the topmost stacked policy from ES es and returns
// it (nil if only the base policy remains). Units still queued in the
// popped policy are migrated back to the stream's scheduler so no work is
// lost.
func (rt *Runtime) PopScheduler(es int) sched.Policy {
	x := rt.xstream(es)
	p := x.sched.PopScheduler()
	if p == nil {
		return nil
	}
	for u := p.Pop(); u != nil; u = p.Pop() {
		x.sched.Push(u)
	}
	return p
}

// Finalize shuts the runtime down (ABT_finalize). All created work units
// must have been joined; Finalize stops the streams and returns when their
// loops exit. The calling goroutine ceases to be the primary ULT.
func (rt *Runtime) Finalize() {
	if !rt.finished.CompareAndSwap(false, true) {
		return
	}
	rt.shutdown.Store(true)
	if rt.parker != nil {
		rt.parker.Close()
	}
	rt.primary.Detach()
	rt.wg.Wait()
}

// loop is the scheduling loop of one execution stream.
func (x *XStream) loop(adopted bool) {
	defer x.rt.wg.Done()
	x.exec.PinIfRequested()
	requeue := func(t *ult.ULT) {
		sched.Requeue(x.sched, t)
		if x.rt.parker != nil {
			x.rt.parker.Wake()
		}
	}
	if adopted {
		// Conceptually the primary ULT was dispatched by Init; wait
		// for it to yield or detach before scheduling anything else.
		if t, res := x.exec.AwaitHandback(); res == ult.DispatchYielded {
			requeue(t)
		}
	}
	rec := x.rt.cfg.Tracer
	if rec == nil {
		rec = trace.Default()
	}
	bat := rec.Ring(fmt.Sprintf("argobots/es%d", x.exec.ID()), x.exec.ID()).Batcher()
	defer bat.Close()
	for {
		// A YieldTo hint bypasses the scheduler entirely.
		if res, h, ok := x.exec.DispatchHint(); ok {
			if res == ult.DispatchYielded {
				requeue(h)
			}
			continue
		}
		// Capture the wake epoch before the pop: a push that lands
		// after an empty pop advances it, so ParkIf cannot sleep
		// through work (no lost wakeups).
		var epoch uint64
		if x.rt.parker != nil {
			epoch = x.rt.parker.Epoch()
		}
		u := x.sched.Pop()
		if u == nil {
			if x.rt.shutdown.Load() {
				return
			}
			if x.rt.parker != nil {
				// Passive idle policy: about to sleep until work is
				// pushed, a known-genuine idle transition.
				bat.IdleNow()
				x.rt.parker.ParkIf(epoch)
				continue
			}
			// One idle interval per episode (sustained empty polling to
			// next dispatch), so an idle stream cannot flood its ring
			// with per-poll events.
			bat.Idle()
			x.exec.NoteIdle()
			continue
		}
		kind := trace.KindDispatch
		if u.Kind() == ult.KindTasklet {
			kind = trace.KindTasklet
		}
		bat.Begin()
		x.exec.RunUnit(u, requeue)
		bat.Note(kind, 1)
	}
}

// SchedStats sums the pool counters across the runtime's schedulers —
// one shared pool or every stream's private stack.
func (rt *Runtime) SchedStats() queue.Counts {
	if rt.shared != nil {
		return rt.shared.Counts()
	}
	rt.mu.Lock()
	xs := make([]*XStream, len(rt.xstreams))
	copy(xs, rt.xstreams)
	rt.mu.Unlock()
	var c queue.Counts
	for _, x := range xs {
		c = c.Plus(x.sched.Counts())
	}
	return c
}

// --- Context: operations valid inside a running ULT ---

// Runtime returns the owning runtime.
func (c *Context) Runtime() *Runtime { return c.rt }

// Yield returns control to the stream's scheduler (ABT_thread_yield).
func (c *Context) Yield() { c.self.Yield() }

// YieldTo hands control directly to the target ULT, skipping the
// scheduler (ABT_thread_yield_to) — the operation only Argobots offers in
// Table I. If the target is not runnable the call degrades to Yield.
func (c *Context) YieldTo(target *Thread) { c.self.YieldTo(target.u) }

// parkSelf performs one wait step of a worker-side join: the running ULT
// parks in u's waiter slot, and the finishing unit resumes it straight
// back into the pool it was running from (preserving ThreadCreateTo
// placement). It reports whether the park happened; an occupied slot
// yields once instead and the caller re-checks completion.
func (c *Context) parkSelf(u ult.WaiterSlot) bool {
	rt := c.rt
	es := c.self.Owner().ID()
	if ult.ParkJoinStep(c.self, u, func(j *ult.ULT, _ *ult.Executor) { rt.pushTo(j, es) }) {
		return true
	}
	c.self.Yield()
	return false
}

// Join waits for the target ULT, parking in its waiter slot (falling back
// to a status-poll-plus-yield when another joiner holds the slot).
func (c *Context) Join(th *Thread) {
	for !th.Done() {
		if c.parkSelf(th.u) {
			return
		}
	}
}

// JoinFree joins the target and frees it (worker-side ABT_thread_free).
func (c *Context) JoinFree(th *Thread) error {
	c.Join(th)
	return th.free()
}

// JoinTaskFree joins the tasklet and frees it (worker-side ABT_task_free).
func (c *Context) JoinTaskFree(tk *Task) error {
	c.JoinTask(tk)
	return tk.free()
}

// JoinTask waits for a tasklet, parking in its waiter slot.
func (c *Context) JoinTask(tk *Task) {
	for !tk.Done() {
		if c.parkSelf(tk.t) {
			return
		}
	}
}

// ThreadCreate creates a ULT from inside a ULT (nested parallelism).
func (c *Context) ThreadCreate(fn func(*Context)) *Thread {
	return c.rt.ThreadCreate(fn)
}

// ThreadCreateTo creates a ULT into the pool of ES es from inside a ULT.
func (c *Context) ThreadCreateTo(fn func(*Context), es int) *Thread {
	return c.rt.ThreadCreateTo(fn, es)
}

// TaskCreate creates a tasklet from inside a ULT.
func (c *Context) TaskCreate(fn func()) *Task { return c.rt.TaskCreate(fn) }

// TaskCreateTo creates a tasklet into the pool of ES es from inside a ULT.
func (c *Context) TaskCreateTo(fn func(), es int) *Task {
	return c.rt.TaskCreateTo(fn, es)
}

// SelfID returns the running ULT's unit ID.
func (c *Context) SelfID() uint64 { return c.self.ID() }

// XStreamID reports the rank of the execution stream currently running
// the ULT (ABT_xstream_self_rank). With private pools a ULT created with
// ThreadCreateTo(es) is only ever dispatched by ES es, so the value is
// stable; with the shared pool it reflects whichever stream popped the
// unit last.
func (c *Context) XStreamID() int { return c.self.Owner().ID() }

// IOPark builds the park/unpark pair the aio reactor blocks this ULT
// with: park suspends the ULT (the ES hands control back to its
// scheduler and serves other units), and unpark — callable from any
// goroutine — resumes it into the pool of the ES it was running on when
// the pair was built, preserving ThreadCreateTo placement across the
// wait. Build a fresh pair per operation: the home ES is captured at
// issue time.
func (c *Context) IOPark() (park func(), unpark func()) {
	self, rt := c.self, c.rt
	es := self.Owner().ID()
	return func() { self.Suspend() }, func() {
		ult.ResumeAndRequeue(self, func(j *ult.ULT) { rt.pushTo(j, es) })
	}
}
