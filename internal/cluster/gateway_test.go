package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// gateFixture boots a gateway over n stub workers behind an httptest
// front server.
type gateFixture struct {
	gw      *Gateway
	front   *httptest.Server
	stubs   []*stubWorker
	workers []*Worker
}

func newGateFixture(t *testing.T, n int, opts Options) *gateFixture {
	t.Helper()
	f := &gateFixture{}
	if opts.Table == nil {
		opts.Table = NewTable(64, HealthPolicy{FailThreshold: 2, OKThreshold: 2})
	}
	for i := 0; i < n; i++ {
		s := newStubWorker(t, fmt.Sprintf("w%d", i))
		w, err := opts.Table.Add(s.addr())
		if err != nil {
			t.Fatal(err)
		}
		f.stubs = append(f.stubs, s)
		f.workers = append(f.workers, w)
	}
	f.gw = New(opts)
	f.front = httptest.NewServer(f.gw)
	t.Cleanup(f.front.Close)
	return f
}

// get issues one request through the gate and returns status, the
// serving worker id, and the body.
func (f *gateFixture) get(t *testing.T, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(f.front.URL + path)
	if err != nil {
		t.Fatalf("GET %s through gate: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get(WorkerHeader), string(body)
}

func TestGatewayKeyedAffinityMatchesRing(t *testing.T) {
	f := newGateFixture(t, 3, Options{})
	ring := f.gw.Table().Ring()
	for k := 0; k < 60; k++ {
		key := fmt.Sprintf("sess-%d", k)
		want := ring.Lookup(key)
		var first string
		for rep := 0; rep < 3; rep++ {
			status, worker, body := f.get(t, "/fib?n=10&key="+key)
			if status != http.StatusOK {
				t.Fatalf("key %q rep %d: status %d (%s)", key, rep, status, body)
			}
			if worker != want {
				t.Fatalf("key %q served by %q, ring owner is %q", key, worker, want)
			}
			if rep == 0 {
				first = worker
			} else if worker != first {
				t.Fatalf("key %q moved %q -> %q across repeats", key, first, worker)
			}
		}
	}
}

func TestGatewayUnkeyedSpreadsAcrossWorkers(t *testing.T) {
	f := newGateFixture(t, 3, Options{})
	for i := 0; i < 300; i++ {
		if status, _, body := f.get(t, "/fib?n=10"); status != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, status, body)
		}
	}
	for i, s := range f.stubs {
		if s.hits.Load() == 0 {
			t.Errorf("worker %d got no unkeyed traffic", i)
		}
	}
}

// TestGatewayUnkeyed503Reroutes pins the backpressure contract: a
// worker answering 503 sheds unkeyed traffic to its peers (the request
// still succeeds from the client's view), and the 503s raise the
// worker's load penalty so p2c stops picking it.
func TestGatewayUnkeyed503Reroutes(t *testing.T) {
	f := newGateFixture(t, 2, Options{})
	f.stubs[0].status.Store(http.StatusServiceUnavailable)
	for i := 0; i < 100; i++ {
		status, worker, body := f.get(t, "/fib?n=10")
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d (%s) — 503 should have re-routed", i, status, body)
		}
		if worker != f.workers[1].ID {
			t.Fatalf("request %d: served by %q, only %q is answering", i, worker, f.workers[1].ID)
		}
	}
	m := f.gw.Snapshot()
	if m.Reroutes503 == 0 {
		t.Fatal("no 503 re-routes recorded")
	}
	if p := f.workers[0].penalty.Load(); p == 0 {
		t.Fatal("503s did not raise the worker's load penalty")
	}
	// With the penalty in place, p2c should now strongly prefer the
	// healthy worker: the saturated one sees far fewer attempts than a
	// blind 50/50 split would send it.
	saturatedHits := f.stubs[0].hits.Load()
	healthyHits := f.stubs[1].hits.Load()
	if saturatedHits >= healthyHits {
		t.Fatalf("saturated worker got %d hits vs healthy %d — backpressure not steering",
			saturatedHits, healthyHits)
	}
}

// TestGatewayKeyed503IsTerminal pins the affinity contract: a keyed
// request is never traded to another worker on backpressure — the
// client sees the 503 and its Retry-After.
func TestGatewayKeyed503IsTerminal(t *testing.T) {
	f := newGateFixture(t, 3, Options{})
	ring := f.gw.Table().Ring()
	// Find a key owned by worker 0 and saturate worker 0.
	key := ""
	for k := 0; k < 10000; k++ {
		cand := fmt.Sprintf("sess-%d", k)
		if ring.Lookup(cand) == f.workers[0].ID {
			key = cand
			break
		}
	}
	if key == "" {
		t.Fatal("no key maps to worker 0")
	}
	f.stubs[0].status.Store(http.StatusServiceUnavailable)
	status, worker, _ := f.get(t, "/fib?n=10&key="+key)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("keyed request to saturated worker: status %d, want 503", status)
	}
	if worker != f.workers[0].ID {
		t.Fatalf("keyed 503 relayed from %q, want pinned worker %q", worker, f.workers[0].ID)
	}
	others := f.stubs[1].hits.Load() + f.stubs[2].hits.Load()
	if others != 0 {
		t.Fatalf("keyed 503 leaked %d attempts to non-pinned workers", others)
	}
}

// TestGatewayKeyedFailsOverDeadWorker kills a key's pinned worker and
// asserts the request is retried down the ring's failover order,
// succeeding on the successor, and that the conn failures eject the
// dead worker passively.
func TestGatewayKeyedFailsOverDeadWorker(t *testing.T) {
	f := newGateFixture(t, 3, Options{})
	ring := f.gw.Table().Ring()
	key := ""
	for k := 0; k < 10000; k++ {
		cand := fmt.Sprintf("sess-%d", k)
		if ring.Lookup(cand) == f.workers[0].ID {
			key = cand
			break
		}
	}
	if key == "" {
		t.Fatal("no key maps to worker 0")
	}
	successor := ring.LookupN(key, 2)[1]
	f.stubs[0].srv.Close() // hard kill: connections now refused

	for i := 0; i < 2; i++ { // FailThreshold 2 → second conn failure ejects
		status, worker, body := f.get(t, "/fib?n=10&key="+key)
		if status != http.StatusOK {
			t.Fatalf("keyed request with dead pinned worker: status %d (%s)", status, body)
		}
		if worker != successor {
			t.Fatalf("failover served by %q, ring successor is %q", worker, successor)
		}
	}
	if f.workers[0].Healthy() {
		t.Fatal("dead worker not passively ejected after conn failures")
	}
	// Once ejected, the successor leads the candidate list — no
	// doomed first attempt, no retry spent.
	before := f.gw.Snapshot().Retried
	if status, worker, _ := f.get(t, "/fib?n=10&key="+key); status != http.StatusOK || worker != successor {
		t.Fatalf("post-ejection keyed request: status %d worker %q", status, worker)
	}
	if after := f.gw.Snapshot().Retried; after != before {
		t.Fatalf("post-ejection keyed request spent %d retries, want 0", after-before)
	}
}

// TestGatewayUnkeyedSurvivesDeadWorker: with one of three workers
// dead, every unkeyed request still gets a terminal 200 via retry.
func TestGatewayUnkeyedSurvivesDeadWorker(t *testing.T) {
	f := newGateFixture(t, 3, Options{})
	f.stubs[2].srv.Close()
	for i := 0; i < 100; i++ {
		status, worker, body := f.get(t, "/fib?n=10")
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, status, body)
		}
		if worker == f.workers[2].ID {
			t.Fatalf("request %d: served by dead worker", i)
		}
	}
	if f.workers[2].Healthy() {
		t.Fatal("dead worker not passively ejected under load")
	}
}

// TestGatewayNonIdempotentNeverRetries: a POST that hits a dead worker
// is answered 502 after exactly one attempt — replaying a
// possibly-processed mutation is not the gateway's call to make.
func TestGatewayNonIdempotentNeverRetries(t *testing.T) {
	table := NewTable(64, HealthPolicy{FailThreshold: 100, OKThreshold: 2})
	f := newGateFixture(t, 2, Options{Table: table})
	f.stubs[0].srv.Close()
	f.stubs[1].srv.Close()
	var sawBadGateway bool
	for i := 0; i < 8; i++ {
		resp, err := http.Post(f.front.URL+"/fib?n=10", "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatalf("POST through gate: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("POST to dead fleet: status %d, want 502", resp.StatusCode)
		}
		sawBadGateway = true
	}
	if !sawBadGateway {
		t.Fatal("no terminal response observed")
	}
	if got := f.gw.Snapshot().Retried; got != 0 {
		t.Fatalf("non-idempotent requests spent %d retries, want 0", got)
	}
}

// TestGatewayDrainStopsAdmission: after StartDrain every new request
// is refused 503 with the draining envelope, and the snapshot reports
// the drain.
func TestGatewayDrainStopsAdmission(t *testing.T) {
	f := newGateFixture(t, 2, Options{})
	if status, _, _ := f.get(t, "/fib?n=10"); status != http.StatusOK {
		t.Fatalf("pre-drain status %d", status)
	}
	f.gw.StartDrain()
	status, _, body := f.get(t, "/fib?n=10")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "gate draining") {
		t.Fatalf("draining gate answered %d (%s), want 503 gate draining", status, body)
	}
	m := f.gw.Snapshot()
	if !m.Draining || m.RejectedDraining == 0 {
		t.Fatalf("snapshot after drain = draining:%v rejected:%d", m.Draining, m.RejectedDraining)
	}
	if f.stubs[0].hits.Load()+f.stubs[1].hits.Load() != 1 {
		t.Fatal("draining gate leaked traffic to workers")
	}
}

// TestGatewayEmptyTable: no workers at all is an explicit 503, not a
// hang or a panic.
func TestGatewayEmptyTable(t *testing.T) {
	table := NewTable(64, HealthPolicy{})
	gw := New(Options{Table: table})
	front := httptest.NewServer(gw)
	defer front.Close()
	resp, err := http.Get(front.URL + "/fib?n=10")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty table answered %d, want 503", resp.StatusCode)
	}
}

// TestGatewayMetricsHandlers exercises the control endpoints end to
// end through a mux laid out the way cmd/lwtgate mounts them.
func TestGatewayMetricsHandlers(t *testing.T) {
	f := newGateFixture(t, 2, Options{})
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/metrics", f.gw.MetricsHandler())
	mux.HandleFunc("/cluster/workers", f.gw.WorkersHandler())
	mux.Handle("/", f.gw)
	front := httptest.NewServer(mux)
	defer front.Close()
	for i := 0; i < 10; i++ {
		resp, err := http.Get(front.URL + "/compute")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(front.URL + "/cluster/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{`"Proxied": 10`, `"Members": 2`, f.workers[0].ID} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics body missing %q:\n%s", want, body)
		}
	}
	resp, err = http.Get(front.URL + "/cluster/workers")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"State": "healthy"`) {
		t.Fatalf("workers body missing state:\n%s", body)
	}
}

// TestGatewayConcurrentLoadWithKill is the in-package miniature of the
// cluster-smoke scenario: concurrent keyed+unkeyed load, one worker
// killed mid-stream, zero lost requests (every request gets a terminal
// response) and keyed traffic to survivors keeps its assignment.
func TestGatewayConcurrentLoadWithKill(t *testing.T) {
	f := newGateFixture(t, 3, Options{})
	ring := f.gw.Table().Ring()

	// Keys pinned to the two survivors.
	var survivorKeys []string
	for k := 0; len(survivorKeys) < 20 && k < 20000; k++ {
		key := fmt.Sprintf("sess-%d", k)
		if owner := ring.Lookup(key); owner != f.workers[2].ID {
			survivorKeys = append(survivorKeys, key)
		}
	}
	owners := make(map[string]string, len(survivorKeys))
	for _, key := range survivorKeys {
		owners[key] = ring.Lookup(key)
	}

	const goroutines = 8
	const perG = 60
	errs := make(chan error, goroutines)
	kill := make(chan struct{})
	for gi := 0; gi < goroutines; gi++ {
		go func(gi int) {
			var err error
			for i := 0; i < perG; i++ {
				if gi == 0 && i == perG/2 {
					close(kill)
				}
				path := "/fib?n=10"
				wantWorker := ""
				if i%2 == 0 {
					key := survivorKeys[(gi*perG+i)%len(survivorKeys)]
					path += "&key=" + key
					wantWorker = owners[key]
				}
				status, worker, body := 0, "", ""
				func() {
					resp, gerr := http.Get(f.front.URL + path)
					if gerr != nil {
						err = fmt.Errorf("g%d req %d: lost (no terminal response): %w", gi, i, gerr)
						return
					}
					defer resp.Body.Close()
					b, _ := io.ReadAll(resp.Body)
					status, worker, body = resp.StatusCode, resp.Header.Get(WorkerHeader), string(b)
				}()
				if err != nil {
					break
				}
				if status != http.StatusOK {
					err = fmt.Errorf("g%d req %d: status %d (%s)", gi, i, status, body)
					break
				}
				if wantWorker != "" && worker != wantWorker {
					err = fmt.Errorf("g%d req %d: key moved to %q, pinned to %q", gi, i, worker, wantWorker)
					break
				}
			}
			errs <- err
		}(gi)
	}
	<-kill
	f.stubs[2].srv.Close()
	for gi := 0; gi < goroutines; gi++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestGatewayEWMATracksLatency sanity-checks the estimate plumbing: a
// slow worker's score rises above a fast one's.
func TestGatewayEWMATracksLatency(t *testing.T) {
	w := &Worker{}
	for i := 0; i < 32; i++ {
		w.observe(10 * time.Millisecond)
	}
	fast := &Worker{}
	for i := 0; i < 32; i++ {
		fast.observe(100 * time.Microsecond)
	}
	if w.score() <= fast.score() {
		t.Fatalf("slow worker score %d <= fast worker score %d", w.score(), fast.score())
	}
}
