package cluster

import (
	"sort"
	"strconv"
	"sync"
)

// DefaultVnodes is the virtual-node count per worker. 384 points per
// worker keeps the key-spread max/min ratio under ~1.3 for 3-16
// workers (measured over 10k keys across several address schemes);
// fewer vnodes make the per-worker arc lengths visibly lumpy.
const DefaultVnodes = 384

// fnv1aOffset and fnv1aPrime are the 64-bit FNV-1a parameters — the
// same hash family internal/serve's keyShard uses for shard affinity,
// so the cluster tier and the in-process tier hash keys identically.
const (
	fnv1aOffset = 14695981039346656037
	fnv1aPrime  = 1099511628211
)

// fnv1a is the 64-bit FNV-1a hash of s.
func fnv1a(s string) uint64 {
	h := uint64(fnv1aOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnv1aPrime
	}
	return h
}

// fmix64 is the MurmurHash3 64-bit finalizer. FNV-1a alone places the
// points of similar short strings ("10.0.0.2:8080#17") in clusters on
// the ring — badly enough that a 16-worker ring at 128 vnodes leaves
// workers with zero keys; the finalizer's avalanche spreads them
// uniformly.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// hashKey maps an affinity key onto the ring's coordinate space.
func hashKey(key string) uint64 { return fmix64(fnv1a(key)) }

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	hash uint64
	id   string
}

// Ring is a consistent-hash ring with virtual nodes. Lookup(key) walks
// clockwise from the key's hash to the first virtual node; with V
// vnodes per member each member owns V arcs spread over the circle, so
// removing one of N members remaps only that member's ~1/N share of
// the key space (every other key keeps its owner), and adding it back
// restores the exact original assignment. All methods are safe for
// concurrent use.
type Ring struct {
	mu      sync.RWMutex
	vnodes  int
	points  []point // sorted by hash
	members map[string]struct{}
}

// NewRing returns an empty ring with the given virtual-node count per
// member (<= 0 means DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// Add inserts a member's virtual nodes. Adding an existing member is a
// no-op, so membership churn can be replayed idempotently.
func (r *Ring) Add(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; ok {
		return
	}
	r.members[id] = struct{}{}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, point{hash: fmix64(fnv1a(id + "#" + strconv.Itoa(v))), id: id})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member and its virtual nodes; unknown members are a
// no-op. The surviving members' points are untouched, which is what
// bounds the reshuffle to the removed member's own arcs.
func (r *Ring) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; !ok {
		return
	}
	delete(r.members, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the member ids in sorted order.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for id := range r.members {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Size reports the member count.
func (r *Ring) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Lookup returns the member owning key — the first virtual node
// clockwise from the key's hash — or "" on an empty ring. The answer
// is stable across lookups and across add/remove of *other* members.
func (r *Ring) Lookup(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(hashKey(key))].id
}

// LookupN returns up to n distinct members in ring order starting at
// the key's owner — the deterministic failover sequence for a keyed
// request: successive entries are the owners the key would fall to if
// every earlier one were removed, so retrying down this list keeps the
// eventual assignment consistent with membership changes.
func (r *Ring) LookupN(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	start := r.search(hashKey(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.id]; dup {
			continue
		}
		seen[p.id] = struct{}{}
		out = append(out, p.id)
	}
	return out
}

// search finds the index of the first point at or clockwise of h.
// Callers hold r.mu.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}
