package cluster

import (
	"net/http"
	"time"

	"repro/internal/prom"
)

// WorkerMetrics is one worker's point-in-time routing view.
type WorkerMetrics struct {
	// ID is the worker's host:port (the ring member id).
	ID string
	// State is "healthy" or "ejected".
	State string
	// InFlight is the number of proxied requests outstanding on this
	// worker right now.
	InFlight int64
	// EWMAMicros is the recent-latency estimate feeding p2c, in
	// microseconds.
	EWMAMicros int64
	// Penalty is the current 503-backpressure surcharge on the load
	// score (decays on success).
	Penalty int64
	// Score is the combined p2c load estimate routing compares:
	// (InFlight + Penalty + 1) × (latency EWMA + 1ms floor), in
	// nanosecond-scaled units — lower routes sooner.
	Score int64
	// Requests counts proxied attempts sent to this worker (retries
	// included).
	Requests uint64
	// ConnFailures counts transport-level failures against this worker.
	ConnFailures uint64
	// Responses503 counts 503s this worker answered.
	Responses503 uint64
	// Ejections and Readmissions count health-state transitions.
	Ejections    uint64
	Readmissions uint64
	// Breaker is the circuit-breaker state: "closed", "half-open", or
	// "open".
	Breaker string
	// BreakerState is the numeric breaker state (0 closed, 1 half-open,
	// 2 open), matching the lwt_gate_breaker_state gauge.
	BreakerState int32
	// BreakerOpens counts closed/half-open -> open transitions.
	BreakerOpens uint64
}

// Metrics is the gateway's operational snapshot.
type Metrics struct {
	// Workers is the per-worker breakdown, in addition order.
	Workers []WorkerMetrics
	// Members is the current ring membership size.
	Members int
	// Healthy is how many members routing currently considers.
	Healthy int
	// Draining reports whether admission has stopped.
	Draining bool
	// InFlight is the number of requests inside the proxy path now.
	InFlight int64
	// Proxied counts requests that entered the proxy path.
	Proxied uint64
	// Retried counts extra attempts spent (connection-failure and
	// 503 re-routes combined).
	Retried uint64
	// Reroutes503 counts unkeyed re-routes taken after a worker 503.
	Reroutes503 uint64
	// Failed counts requests answered with the gateway's own terminal
	// error (502/503) after exhausting candidates.
	Failed uint64
	// RejectedDraining counts requests refused because the gate was
	// draining.
	RejectedDraining uint64
	// Hedges counts extra hedged attempts launched after the P99 delay.
	Hedges uint64
	// DeadlineExhausted counts requests answered 504 because the
	// client's end-to-end budget ran out at the gate.
	DeadlineExhausted uint64
}

// Snapshot reads the gateway and worker counters once.
func (g *Gateway) Snapshot() Metrics {
	workers := g.table.Workers()
	m := Metrics{
		Workers:           make([]WorkerMetrics, 0, len(workers)),
		Members:           len(workers),
		Draining:          g.draining.Load(),
		InFlight:          g.inflight.Load(),
		Proxied:           g.proxied.Load(),
		Retried:           g.retried.Load(),
		Reroutes503:       g.reroute503.Load(),
		Failed:            g.failedConn.Load(),
		RejectedDraining:  g.rejectedGon.Load(),
		Hedges:            g.hedges.Load(),
		DeadlineExhausted: g.expired504.Load(),
	}
	for _, w := range workers {
		state := "healthy"
		if !w.Healthy() {
			state = "ejected"
		} else {
			m.Healthy++
		}
		bs := w.BreakerState()
		m.Workers = append(m.Workers, WorkerMetrics{
			ID:           w.ID,
			State:        state,
			InFlight:     w.inflight.Load(),
			EWMAMicros:   time.Duration(w.ewma.Load()).Microseconds(),
			Penalty:      w.penalty.Load(),
			Score:        w.score(),
			Requests:     w.requests.Load(),
			ConnFailures: w.conns.Load(),
			Responses503: w.resp503.Load(),
			Ejections:    w.ejections.Load(),
			Readmissions: w.readmissions.Load(),
			Breaker:      breakerStateName(bs),
			BreakerState: bs,
			BreakerOpens: w.breakerOpens.Load(),
		})
	}
	return m
}

// MetricsHandler serves the gateway snapshot — indented JSON by
// default, Prometheus text exposition with ?format=prom. Mount it on a
// control path (lwtgate uses /cluster/metrics) ahead of the proxy
// catch-all.
func (g *Gateway) MetricsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prom" {
			g.PromHandler()(w, r)
			return
		}
		writeJSON(w, http.StatusOK, g.Snapshot())
	}
}

// PromHandler serves the snapshot as a Prometheus scrape page (lwtgate
// also mounts it directly at /metrics).
func (g *Gateway) PromHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", prom.ContentType)
		_, _ = g.Snapshot().WriteProm(w)
	}
}

// WorkersHandler serves just the per-worker rows (lwtgate mounts it at
// /cluster/workers) — the view the smoke harness polls to watch an
// ejection land.
func (g *Gateway) WorkersHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, g.Snapshot().Workers)
	}
}
