package cluster

import (
	"sync"
	"time"
)

// Breaker states, exported for metrics (lwt_gate_breaker_state encodes
// them numerically: 0 closed, 1 half-open, 2 open).
const (
	// BreakerClosed routes normally while recording outcomes.
	BreakerClosed int32 = iota
	// BreakerHalfOpen admits exactly one probe request; its outcome
	// closes or re-opens the breaker.
	BreakerHalfOpen
	// BreakerOpen fails fast: no attempts reach the worker until the
	// cooldown elapses, when the next attempt becomes the half-open
	// probe.
	BreakerOpen
)

// breakerStateName names a breaker state for JSON metrics.
func breakerStateName(s int32) string {
	switch s {
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "closed"
	}
}

// BreakerPolicy configures the per-worker circuit breaker that
// composes with health ejection: ejection reacts to consecutive hard
// failures (dead process), the breaker to a failure *rate* over recent
// attempts (sick process — timeouts, hung connections — that still
// intermittently answers and so never trips a consecutive counter).
type BreakerPolicy struct {
	// Window is the sliding outcome window length, in attempts
	// (<= 0 means 20).
	Window int
	// MinSamples is the fewest outcomes in the window before the
	// failure ratio is considered (<= 0 means 10) — a single failed
	// first request must not open the breaker.
	MinSamples int
	// FailureRatio opens the breaker when failures/outcomes in the
	// window reaches it (<= 0 means 0.5).
	FailureRatio float64
	// Cooldown is how long an open breaker fails fast before admitting
	// the half-open probe (<= 0 means 2s).
	Cooldown time.Duration
	// Disabled turns the breaker off entirely (always closed).
	Disabled bool
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Window <= 0 {
		p.Window = 20
	}
	if p.MinSamples <= 0 {
		p.MinSamples = 10
	}
	if p.MinSamples > p.Window {
		// A threshold the window can never fill would disable the
		// breaker silently.
		p.MinSamples = p.Window
	}
	if p.FailureRatio <= 0 {
		p.FailureRatio = 0.5
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 2 * time.Second
	}
	return p
}

// breaker is one worker's circuit state machine:
//
//	closed --[failure ratio over window]--> open
//	open --[cooldown elapsed; next attempt is the probe]--> half-open
//	half-open --[probe succeeds]--> closed (window reset)
//	half-open --[probe fails]--> open (cooldown restarts)
//
// All transitions happen under mu on the attempt path; state is
// additionally mirrored in an atomic on the Worker for lock-free
// metric reads.
type breaker struct {
	pol BreakerPolicy

	mu       sync.Mutex
	state    int32
	outcomes []bool // ring of recent attempt outcomes, true = failure
	next     int
	filled   int
	fails    int
	openedAt time.Time
	probing  bool // half-open: a probe is in flight

	onTransition func(from, to int32) // called under mu; may be nil
}

func newBreaker(pol BreakerPolicy) *breaker {
	pol = pol.withDefaults()
	return &breaker{pol: pol, outcomes: make([]bool, pol.Window)}
}

// canRoute is the read-only routing filter: would an attempt be
// admitted right now? Used to order candidates without claiming the
// half-open probe slot.
func (b *breaker) canRoute(now time.Time) bool {
	if b == nil || b.pol.Disabled {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return now.Sub(b.openedAt) >= b.pol.Cooldown
	default: // half-open
		return !b.probing
	}
}

// allow is the attempt-time gate. Closed admits; open admits only once
// the cooldown has elapsed — that admission IS the transition to
// half-open, and the caller becomes the probe; half-open admits no one
// while the probe is outstanding. Every admitted attempt must be
// settled with ok or fail.
func (b *breaker) allow(now time.Time) bool {
	if b == nil || b.pol.Disabled {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.pol.Cooldown {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// ok settles one admitted attempt that succeeded.
func (b *breaker) ok(now time.Time) {
	if b == nil || b.pol.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		// The probe came back: the worker is serving again. Reset the
		// window so stale failures cannot immediately re-open.
		b.reset()
		b.transition(BreakerClosed)
		return
	}
	b.record(false)
}

// fail settles one admitted attempt that failed (transport error or
// attempt timeout — a worker 503 is backpressure, not breaker fodder).
func (b *breaker) fail(now time.Time) {
	if b == nil || b.pol.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		// The probe failed: back to open, cooldown restarts.
		b.probing = false
		b.openedAt = now
		b.transition(BreakerOpen)
		return
	}
	b.record(true)
	if b.state == BreakerClosed && b.filled >= b.pol.MinSamples &&
		float64(b.fails) >= b.pol.FailureRatio*float64(b.filled) {
		b.openedAt = now
		b.transition(BreakerOpen)
	}
}

// drop settles an admitted attempt whose outcome says nothing about
// the worker — the client vanished mid-attempt, or a hedge race
// cancelled it. Nothing is recorded; a half-open probe slot is
// released so the next attempt re-probes.
func (b *breaker) drop() {
	if b == nil || b.pol.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// record pushes one outcome into the sliding window. Called under mu.
func (b *breaker) record(failed bool) {
	if b.filled == len(b.outcomes) {
		if b.outcomes[b.next] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.outcomes[b.next] = failed
	if failed {
		b.fails++
	}
	b.next = (b.next + 1) % len(b.outcomes)
}

// reset clears the window. Called under mu.
func (b *breaker) reset() {
	for i := range b.outcomes {
		b.outcomes[i] = false
	}
	b.next, b.filled, b.fails = 0, 0, 0
	b.probing = false
}

// transition flips the state and notifies. Called under mu.
func (b *breaker) transition(to int32) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// State reads the current breaker state.
func (b *breaker) State() int32 {
	if b == nil || b.pol.Disabled {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// retryAfter reports how long until an open breaker would admit the
// probe — the Retry-After hint for a fail-fast response. Zero when not
// open.
func (b *breaker) retryAfter(now time.Time) time.Duration {
	if b == nil || b.pol.Disabled {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	if d := b.pol.Cooldown - now.Sub(b.openedAt); d > 0 {
		return d
	}
	return 0
}
