package cluster

import (
	"fmt"
	"testing"
)

// workerID is the address scheme the balance tests hash — shaped like
// real worker addresses so the test exercises the same string space
// production does.
func workerID(i int) string { return fmt.Sprintf("10.0.0.%d:8080", i) }

// assign maps sampled keys to their owners.
func assign(r *Ring, keys int) map[string]string {
	out := make(map[string]string, keys)
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("sess-%d", k)
		out[key] = r.Lookup(key)
	}
	return out
}

func TestRingBalanceAcrossFleetSizes(t *testing.T) {
	const keys = 10000
	for n := 3; n <= 16; n++ {
		r := NewRing(DefaultVnodes)
		for i := 0; i < n; i++ {
			r.Add(workerID(i))
		}
		counts := make(map[string]int, n)
		for key, owner := range assign(r, keys) {
			if owner == "" {
				t.Fatalf("n=%d: key %q unassigned", n, key)
			}
			counts[owner]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d workers own keys", n, len(counts))
		}
		mn, mx := keys, 0
		for _, c := range counts {
			if c < mn {
				mn = c
			}
			if c > mx {
				mx = c
			}
		}
		ratio := float64(mx) / float64(mn)
		if ratio > 1.3 {
			t.Errorf("n=%d: key spread max/min = %d/%d = %.3f, want <= 1.3", n, mx, mn, ratio)
		}
	}
}

// TestRingBoundedReshuffle pins the consistent-hashing contract:
// removing one of N workers remaps only that worker's ~K/N share of K
// sampled keys (every key owned by a survivor keeps its owner), and
// adding the worker back restores the original assignment exactly.
func TestRingBoundedReshuffle(t *testing.T) {
	const keys = 8000
	for _, n := range []int{3, 8, 16} {
		r := NewRing(DefaultVnodes)
		for i := 0; i < n; i++ {
			r.Add(workerID(i))
		}
		before := assign(r, keys)
		removed := workerID(1)
		r.Remove(removed)
		after := assign(r, keys)
		moved := 0
		for key, owner := range before {
			switch {
			case owner == removed:
				moved++
				if after[key] == removed {
					t.Fatalf("n=%d: key %q still maps to removed worker", n, key)
				}
			case after[key] != owner:
				t.Fatalf("n=%d: key %q owned by survivor %q remapped to %q", n, key, owner, after[key])
			}
		}
		// The moved share is exactly the removed worker's share, which
		// balance bounds near K/N.
		lo, hi := keys/(2*n), (16*keys)/(10*n)
		if moved < lo || moved > hi {
			t.Errorf("n=%d: removing one worker moved %d/%d keys, want within [%d, %d] (~K/N = %d)",
				n, moved, keys, lo, hi, keys/n)
		}
		r.Add(removed)
		restored := assign(r, keys)
		for key, owner := range before {
			if restored[key] != owner {
				t.Fatalf("n=%d: add-back did not restore key %q: %q != %q", n, key, restored[key], owner)
			}
		}
	}
}

func TestRingLookupNFailoverOrder(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 5; i++ {
		r.Add(workerID(i))
	}
	for k := 0; k < 200; k++ {
		key := fmt.Sprintf("sess-%d", k)
		order := r.LookupN(key, 5)
		if len(order) != 5 {
			t.Fatalf("LookupN(%q) returned %d members, want 5", key, len(order))
		}
		if order[0] != r.Lookup(key) {
			t.Fatalf("LookupN(%q)[0] = %q, Lookup = %q", key, order[0], r.Lookup(key))
		}
		seen := map[string]bool{}
		for _, id := range order {
			if seen[id] {
				t.Fatalf("LookupN(%q) repeats %q", key, id)
			}
			seen[id] = true
		}
		// The failover contract: entry i+1 is where the key lands if
		// the first i+1 owners are removed.
		probe := NewRing(64)
		for i := 0; i < 5; i++ {
			probe.Add(workerID(i))
		}
		for i := 0; i < 4; i++ {
			probe.Remove(order[i])
			if got := probe.Lookup(key); got != order[i+1] {
				t.Fatalf("key %q after removing %v: owner %q, LookupN predicted %q",
					key, order[:i+1], got, order[i+1])
			}
		}
	}
}

func TestRingEmptyAndIdempotentOps(t *testing.T) {
	r := NewRing(0)
	if got := r.Lookup("k"); got != "" {
		t.Fatalf("empty ring Lookup = %q, want empty", got)
	}
	if got := r.LookupN("k", 3); got != nil {
		t.Fatalf("empty ring LookupN = %v, want nil", got)
	}
	r.Remove("absent")
	r.Add("a:1")
	r.Add("a:1") // duplicate add must not double the vnodes
	if len(r.points) != DefaultVnodes {
		t.Fatalf("duplicate Add produced %d points, want %d", len(r.points), DefaultVnodes)
	}
	if got := r.Lookup("k"); got != "a:1" {
		t.Fatalf("singleton ring Lookup = %q, want a:1", got)
	}
	if got := r.Members(); len(got) != 1 || got[0] != "a:1" {
		t.Fatalf("Members = %v", got)
	}
}
