package cluster

import (
	"io"
	"time"

	"repro/internal/prom"
)

// WriteProm renders the gateway snapshot as a Prometheus text
// exposition page: gate-wide gauges and counters, then the per-worker
// routing view — health, in-flight, the p2c load score and its latency
// EWMA, and the ejection/retry counters — labeled {worker} with the
// ring member id. This is the scrape-side twin of the JSON
// /cluster/metrics view.
func (m Metrics) WriteProm(w io.Writer) (int64, error) {
	pw := prom.NewWriter()

	b01 := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	pw.Family("lwt_gate_members", "Workers on the consistent-hash ring.", prom.Gauge)
	pw.Sample("lwt_gate_members", float64(m.Members))
	pw.Family("lwt_gate_healthy", "Ring members routing currently considers.", prom.Gauge)
	pw.Sample("lwt_gate_healthy", float64(m.Healthy))
	pw.Family("lwt_gate_draining", "1 while admission is stopped for shutdown.", prom.Gauge)
	pw.Sample("lwt_gate_draining", b01(m.Draining))
	pw.Family("lwt_gate_inflight", "Requests inside the proxy path right now.", prom.Gauge)
	pw.Sample("lwt_gate_inflight", float64(m.InFlight))

	gateCounters := []struct {
		name, help string
		v          uint64
	}{
		{"lwt_gate_proxied_total", "Requests that entered the proxy path.", m.Proxied},
		{"lwt_gate_retried_total", "Extra attempts spent on connection failures and 503 re-routes.", m.Retried},
		{"lwt_gate_reroutes503_total", "Unkeyed re-routes taken after a worker 503.", m.Reroutes503},
		{"lwt_gate_failed_total", "Requests answered with the gate's own terminal error.", m.Failed},
		{"lwt_gate_rejected_draining_total", "Requests refused because the gate was draining.", m.RejectedDraining},
		{"lwt_gate_hedges_total", "Extra hedged attempts launched after the P99 delay.", m.Hedges},
		{"lwt_gate_deadline_exhausted_total", "Requests answered 504 because the end-to-end budget ran out at the gate.", m.DeadlineExhausted},
	}
	for _, c := range gateCounters {
		pw.Family(c.name, c.help, prom.Counter)
		pw.Sample(c.name, float64(c.v))
	}

	pw.Family("lwt_gate_worker_healthy", "1 while the worker is routable, 0 while ejected.", prom.Gauge)
	for _, wm := range m.Workers {
		pw.Sample("lwt_gate_worker_healthy", b01(wm.State == "healthy"), "worker", wm.ID)
	}
	pw.Family("lwt_gate_worker_inflight", "Proxied requests outstanding on the worker.", prom.Gauge)
	for _, wm := range m.Workers {
		pw.Sample("lwt_gate_worker_inflight", float64(wm.InFlight), "worker", wm.ID)
	}
	pw.Family("lwt_gate_worker_score", "p2c load estimate: (inflight+penalty+1) x (latency EWMA + 1ms); lower routes sooner.", prom.Gauge)
	for _, wm := range m.Workers {
		pw.Sample("lwt_gate_worker_score", float64(wm.Score), "worker", wm.ID)
	}
	pw.Family("lwt_gate_worker_ewma_seconds", "Recent-latency estimate feeding the load score.", prom.Gauge)
	for _, wm := range m.Workers {
		pw.Sample("lwt_gate_worker_ewma_seconds",
			(time.Duration(wm.EWMAMicros) * time.Microsecond).Seconds(), "worker", wm.ID)
	}
	pw.Family("lwt_gate_worker_penalty", "Current 503-backpressure surcharge on the load score.", prom.Gauge)
	for _, wm := range m.Workers {
		pw.Sample("lwt_gate_worker_penalty", float64(wm.Penalty), "worker", wm.ID)
	}
	pw.Family("lwt_gate_breaker_state", "Circuit-breaker state: 0 closed, 1 half-open, 2 open.", prom.Gauge)
	for _, wm := range m.Workers {
		pw.Sample("lwt_gate_breaker_state", float64(wm.BreakerState), "worker", wm.ID)
	}

	workerCounters := []struct {
		name, help string
		get        func(WorkerMetrics) uint64
	}{
		{"lwt_gate_worker_requests_total", "Proxied attempts sent to the worker, retries included.", func(w WorkerMetrics) uint64 { return w.Requests }},
		{"lwt_gate_worker_conn_failures_total", "Transport-level failures against the worker.", func(w WorkerMetrics) uint64 { return w.ConnFailures }},
		{"lwt_gate_worker_responses503_total", "503 responses the worker answered.", func(w WorkerMetrics) uint64 { return w.Responses503 }},
		{"lwt_gate_worker_ejections_total", "Health-check ejections of the worker.", func(w WorkerMetrics) uint64 { return w.Ejections }},
		{"lwt_gate_worker_readmissions_total", "Re-admissions after recovery.", func(w WorkerMetrics) uint64 { return w.Readmissions }},
		{"lwt_gate_worker_breaker_opens_total", "Circuit-breaker open transitions for the worker.", func(w WorkerMetrics) uint64 { return w.BreakerOpens }},
	}
	for _, c := range workerCounters {
		pw.Family(c.name, c.help, prom.Counter)
		for _, wm := range m.Workers {
			pw.Sample(c.name, float64(c.get(wm)), "worker", wm.ID)
		}
	}
	return pw.WriteTo(w)
}
