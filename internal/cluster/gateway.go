package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"time"
)

// WorkerHeader is set on every proxied response to the id of the
// worker that produced it — the observable a client (or the smoke
// harness) uses to verify keyed affinity.
const WorkerHeader = "X-LWT-Worker"

// DefaultRetries is the bounded retry budget: extra attempts after the
// first, spent only on idempotent requests whose failure is safe to
// replay (connection failures, or worker 503s on unkeyed requests).
const DefaultRetries = 2

// Options configures a Gateway.
type Options struct {
	// Table is the worker membership and routing state (required).
	Table *Table
	// Retries is the extra-attempt budget per request; 0 means
	// DefaultRetries, negative means no retries.
	Retries int
	// Client issues proxied requests; nil means a dedicated client
	// with keep-alive pooling sized for a worker fleet. Redirects are
	// never followed — the gateway relays the worker's response as-is.
	Client *http.Client
}

// Gateway is the cluster front proxy: an http.Handler that forwards
// each request to a worker picked by key affinity (consistent hash)
// or load (p2c), with bounded retry and backpressure-aware estimates.
// Mount the gateway's own control endpoints (health, metrics) on a mux
// *before* the gateway itself — it proxies every path it is given.
type Gateway struct {
	table   *Table
	retries int
	client  *http.Client

	draining atomic.Bool
	inflight atomic.Int64

	proxied     atomic.Uint64 // requests entering the proxy path
	retried     atomic.Uint64 // extra attempts spent
	reroute503  atomic.Uint64 // unkeyed re-routes after a worker 503
	failedConn  atomic.Uint64 // requests answered 502 (every candidate failed)
	rejectedGon atomic.Uint64 // requests answered 503 while draining
}

// New returns a gateway over the table.
func New(opts Options) *Gateway {
	if opts.Table == nil {
		panic("cluster: Options.Table is required")
	}
	retries := opts.Retries
	if retries == 0 {
		retries = DefaultRetries
	}
	if retries < 0 {
		retries = 0
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        512,
				MaxIdleConnsPerHost: 128,
				IdleConnTimeout:     90 * time.Second,
			},
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		}
	}
	return &Gateway{table: opts.Table, retries: retries, client: client}
}

// Table returns the gateway's routing table.
func (g *Gateway) Table() *Table { return g.table }

// Draining reports whether StartDrain has been called.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// StartDrain stops admission: subsequent requests are rejected with
// 503 (and /readyz built on Draining flips), while requests already
// being proxied run to completion — the same stop-admission/flush
// contract the in-process Server.Close drain keeps, applied at the
// process boundary. The HTTP server's Shutdown then waits out the
// in-flight connections.
func (g *Gateway) StartDrain() { g.draining.Store(true) }

// InFlight reports requests currently being proxied.
func (g *Gateway) InFlight() int64 { return g.inflight.Load() }

// ServeHTTP implements the proxy: candidate selection, bounded retry,
// response relay.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		g.rejectedGon.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "gate draining")
		return
	}
	g.inflight.Add(1)
	defer g.inflight.Add(-1)
	g.proxied.Add(1)

	key := r.URL.Query().Get("key")
	// Replaying a request is safe only when the method is idempotent
	// and there is no body to re-send.
	retryable := (r.Method == http.MethodGet || r.Method == http.MethodHead) && r.ContentLength == 0

	attempts := 1 + g.retries
	var keyed []*Worker
	tried := make(map[*Worker]bool, attempts)
	if key != "" {
		keyed = g.table.KeyedCandidates(key)
		if len(keyed) < attempts {
			attempts = len(keyed)
		}
	}

	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		var wk *Worker
		if key != "" {
			wk = keyed[attempt]
		} else {
			wk = g.table.PickUnkeyed(tried)
		}
		if wk == nil {
			break
		}
		tried[wk] = true
		if attempt > 0 {
			g.retried.Add(1)
		}
		wk.requests.Add(1)

		resp, err := g.forward(wk, r)
		if err != nil {
			// Transport failure: the request never produced a response.
			// Feed the health thresholds (a dead worker ejects after a
			// few of these without waiting for the next probe round)
			// and move to the next candidate if replay is safe.
			wk.conns.Add(1)
			g.table.NoteFailure(wk)
			lastErr = err
			if !retryable {
				writeError(w, http.StatusBadGateway, fmt.Sprintf("worker %s: %v", wk.ID, err))
				return
			}
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Worker backpressure: feed the load estimate. Unkeyed
			// requests re-route to another worker (the cluster-level
			// mirror of the in-process re-route-once before
			// ErrSaturated); keyed requests relay the 503 — affinity is
			// never traded for an emptier worker.
			wk.observe503()
			if key == "" && retryable && attempt+1 < attempts {
				g.reroute503.Add(1)
				drainBody(resp)
				continue
			}
		}
		relay(w, resp, wk.ID)
		return
	}
	if lastErr != nil {
		g.failedConn.Add(1)
		writeError(w, http.StatusBadGateway, fmt.Sprintf("no worker reachable: %v", lastErr))
		return
	}
	// No candidates at all (empty table) — explicit terminal error.
	g.failedConn.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "no worker available")
}

// forward sends one attempt to wk, tracking in-flight and latency.
func (g *Gateway) forward(wk *Worker, r *http.Request) (*http.Response, error) {
	u := *wk.URL
	u.Path = r.URL.Path
	u.RawPath = r.URL.RawPath
	u.RawQuery = r.URL.RawQuery
	var body io.Reader
	if r.ContentLength != 0 {
		body = r.Body
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), body)
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, r.Header)
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		req.Header.Set("X-Forwarded-For", host)
	}
	wk.inflight.Add(1)
	t0 := time.Now()
	resp, err := g.client.Do(req)
	wk.inflight.Add(-1)
	if err != nil {
		return nil, err
	}
	// Latency feeds the estimate only for responses that did work;
	// 503s go through the penalty instead (a fast shed must not look
	// like a fast worker).
	if resp.StatusCode != http.StatusServiceUnavailable {
		wk.observe(time.Since(t0))
	}
	return resp, nil
}

// relay copies the worker's response to the client, stamping the
// serving worker's id.
func relay(w http.ResponseWriter, resp *http.Response, workerID string) {
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.Header().Set(WorkerHeader, workerID)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// drainBody discards a response being retried so its connection is
// reusable.
func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	resp.Body.Close()
}

// hopHeaders are the RFC 9110 hop-by-hop headers a proxy must not
// relay.
var hopHeaders = []string{
	"Connection", "Proxy-Connection", "Keep-Alive", "Proxy-Authenticate",
	"Proxy-Authorization", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// copyHeaders copies everything but hop-by-hop headers into dst.
func copyHeaders(dst, src http.Header) {
	for k, vv := range src {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
	for _, h := range hopHeaders {
		dst.Del(h)
	}
}

// writeJSON renders v as indented JSON.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders the gateway's own JSON error envelope (matching
// the workers' error shape, so clients parse one format).
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
