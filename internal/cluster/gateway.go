package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// WorkerHeader is set on every proxied response to the id of the
// worker that produced it — the observable a client (or the smoke
// harness) uses to verify keyed affinity.
const WorkerHeader = "X-LWT-Worker"

// DeadlineHeader carries a request's remaining end-to-end budget as
// integer milliseconds. Clients set it (or ?deadline_ms=) on the way
// into the gate; the gateway decrements it by time already spent before
// each forwarded attempt, so retries never let a worker see more budget
// than the client has left; workers turn it into a serving-layer
// deadline that sheds the request if it cannot launch in time.
const DeadlineHeader = "X-LWT-Deadline-Ms"

// DefaultRetries is the bounded retry budget: extra attempts after the
// first, spent only on idempotent requests whose failure is safe to
// replay (connection failures, or worker 503s on unkeyed requests).
const DefaultRetries = 2

// Options configures a Gateway.
type Options struct {
	// Table is the worker membership and routing state (required).
	Table *Table
	// Retries is the extra-attempt budget per request; 0 means
	// DefaultRetries, negative means no retries.
	Retries int
	// Client issues proxied requests; nil means a dedicated client
	// with keep-alive pooling sized for a worker fleet. Redirects are
	// never followed — the gateway relays the worker's response as-is.
	Client *http.Client
	// AttemptTimeout bounds each forwarded attempt. Each attempt's
	// effective ceiling is min(AttemptTimeout, remaining deadline
	// budget); 0 means only the deadline budget applies — a request
	// carrying neither hangs as long as the worker does.
	AttemptTimeout time.Duration
	// Hedge enables hedged second attempts: an idempotent unkeyed
	// request whose first attempt is still unanswered after the
	// P99-derived hedge delay fires one extra attempt on another
	// worker, first response wins. Off by default (hedges spend worker
	// capacity to cut tail latency).
	Hedge bool
	// Tracer records breaker state transitions (KindBreaker events);
	// nil means the process-global trace.Default().
	Tracer *trace.Recorder
}

// Gateway is the cluster front proxy: an http.Handler that forwards
// each request to a worker picked by key affinity (consistent hash)
// or load (p2c), with bounded retry and backpressure-aware estimates.
// Mount the gateway's own control endpoints (health, metrics) on a mux
// *before* the gateway itself — it proxies every path it is given.
type Gateway struct {
	table          *Table
	retries        int
	client         *http.Client
	attemptTimeout time.Duration
	hedge          bool
	ring           *trace.Ring

	draining atomic.Bool
	inflight atomic.Int64

	proxied     atomic.Uint64 // requests entering the proxy path
	retried     atomic.Uint64 // extra attempts spent
	reroute503  atomic.Uint64 // unkeyed re-routes after a worker 503
	failedConn  atomic.Uint64 // requests answered 502 (every candidate failed)
	rejectedGon atomic.Uint64 // requests answered 503 while draining
	hedges      atomic.Uint64 // hedged second attempts fired
	expired504  atomic.Uint64 // requests answered 504 (deadline budget exhausted)

	// lats is a ring of recent successful proxy latencies feeding the
	// P99-derived hedge delay.
	latmu   sync.Mutex
	lats    [256]time.Duration
	latNext int
	latFull bool
}

// New returns a gateway over the table.
func New(opts Options) *Gateway {
	if opts.Table == nil {
		panic("cluster: Options.Table is required")
	}
	retries := opts.Retries
	if retries == 0 {
		retries = DefaultRetries
	}
	if retries < 0 {
		retries = 0
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        512,
				MaxIdleConnsPerHost: 128,
				IdleConnTimeout:     90 * time.Second,
			},
			CheckRedirect: func(*http.Request, []*http.Request) error {
				return http.ErrUseLastResponse
			},
		}
	}
	rec := opts.Tracer
	if rec == nil {
		rec = trace.Default()
	}
	g := &Gateway{
		table: opts.Table, retries: retries, client: client,
		attemptTimeout: opts.AttemptTimeout, hedge: opts.Hedge,
		ring: rec.SharedRing("gate", 0),
	}
	// Breaker transitions are rare and load-bearing for post-incident
	// analysis: every one lands in the flight recorder (Unit = new
	// state: 0 closed, 1 half-open, 2 open).
	opts.Table.OnBreakerTransition(func(w *Worker, from, to int32) {
		g.ring.Instant(trace.KindBreaker, uint64(to))
	})
	return g
}

// Table returns the gateway's routing table.
func (g *Gateway) Table() *Table { return g.table }

// Draining reports whether StartDrain has been called.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// StartDrain stops admission: subsequent requests are rejected with
// 503 (and /readyz built on Draining flips), while requests already
// being proxied run to completion — the same stop-admission/flush
// contract the in-process Server.Close drain keeps, applied at the
// process boundary. The HTTP server's Shutdown then waits out the
// in-flight connections.
func (g *Gateway) StartDrain() { g.draining.Store(true) }

// InFlight reports requests currently being proxied.
func (g *Gateway) InFlight() int64 { return g.inflight.Load() }

// requestDeadline extracts the client's end-to-end budget: the
// DeadlineHeader (already decremented by upstream hops) or the
// ?deadline_ms= query parameter, in integer milliseconds from now.
// Zero time means none.
func requestDeadline(r *http.Request) time.Time {
	v := r.Header.Get(DeadlineHeader)
	if v == "" {
		v = r.URL.Query().Get("deadline_ms")
	}
	if v == "" {
		return time.Time{}
	}
	ms, err := strconv.ParseInt(v, 10, 64)
	if err != nil || ms <= 0 {
		return time.Time{}
	}
	return time.Now().Add(time.Duration(ms) * time.Millisecond)
}

// ServeHTTP implements the proxy: candidate selection, per-attempt
// deadline budgeting, circuit-breaker gating, bounded retry, optional
// hedging, response relay.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() {
		g.rejectedGon.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "gate draining")
		return
	}
	g.inflight.Add(1)
	defer g.inflight.Add(-1)
	g.proxied.Add(1)

	key := r.URL.Query().Get("key")
	deadline := requestDeadline(r)
	// Replaying a request is safe only when the method is idempotent
	// and there is no body to re-send.
	retryable := (r.Method == http.MethodGet || r.Method == http.MethodHead) && r.ContentLength == 0

	attempts := 1 + g.retries
	var keyed []*Worker
	tried := make(map[*Worker]bool, attempts)
	if key != "" {
		keyed = g.table.KeyedCandidates(key)
		if len(keyed) < attempts {
			attempts = len(keyed)
		}
	}

	var lastErr error
	var breakerRA time.Duration // longest cooldown among breaker-skipped candidates
	breakerSkips := 0
	for attempt := 0; attempt < attempts; attempt++ {
		now := time.Now()
		if !deadline.IsZero() && !now.Before(deadline) {
			// The client's budget is gone: answering anything later
			// than this would arrive after the client stopped caring.
			// Retries never outlive the ceiling.
			g.expired504.Add(1)
			writeError(w, http.StatusGatewayTimeout, "deadline budget exhausted at the gate")
			return
		}
		var wk *Worker
		if key != "" {
			wk = keyed[attempt]
		} else {
			wk = g.table.PickUnkeyed(tried)
		}
		if wk == nil {
			break
		}
		tried[wk] = true
		if !wk.breaker.allow(now) {
			// The breaker is resting this worker: fail fast past it —
			// the attempt slot moves to the next candidate without
			// waiting out a timeout against a known-sick process.
			breakerSkips++
			if ra := wk.breaker.retryAfter(now); ra > breakerRA {
				breakerRA = ra
			}
			continue
		}
		if attempt > 0 {
			g.retried.Add(1)
		}
		wk.requests.Add(1)

		resp, rwk, finish, err := g.attempt(wk, r, deadline, retryable, tried)
		wk = rwk
		if err != nil {
			finish()
			lastErr = err
			if !retryable {
				writeError(w, http.StatusBadGateway, fmt.Sprintf("worker %s: %v", wk.ID, err))
				return
			}
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Worker backpressure: feed the load estimate. Unkeyed
			// requests re-route to another worker (the cluster-level
			// mirror of the in-process re-route-once before
			// ErrSaturated); keyed requests relay the 503 — affinity is
			// never traded for an emptier worker. Either way the
			// worker's own Retry-After survives the relay: the worker
			// knows its drain state better than the gate does.
			wk.observe503()
			if key == "" && retryable && attempt+1 < attempts {
				g.reroute503.Add(1)
				drainBody(resp)
				finish()
				continue
			}
		}
		relay(w, resp, wk.ID)
		finish()
		return
	}
	if lastErr != nil {
		g.failedConn.Add(1)
		writeError(w, http.StatusBadGateway, fmt.Sprintf("no worker reachable: %v", lastErr))
		return
	}
	if breakerSkips > 0 {
		// Every candidate was breaker-open: fail fast with the honest
		// wait — the longest remaining cooldown — instead of a
		// hardcoded hint.
		g.failedConn.Add(1)
		secs := int(breakerRA/time.Second) + 1
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeError(w, http.StatusServiceUnavailable, "all candidates breaker-open")
		return
	}
	// No candidates at all (empty table) — explicit terminal error.
	g.failedConn.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "no worker available")
}

// attempt runs one admitted attempt against wk — hedged with a second
// worker when enabled and safe — settling every launched attempt's
// breaker and health state. It returns the winning response, the
// worker that produced it, and a finish func the caller must invoke
// once done with the response (it releases the attempt's context).
func (g *Gateway) attempt(wk *Worker, r *http.Request, deadline time.Time, retryable bool, tried map[*Worker]bool) (*http.Response, *Worker, func(), error) {
	if g.hedge && retryable && r.URL.Query().Get("key") == "" {
		return g.hedgedAttempt(wk, r, deadline, tried)
	}
	ctx, cancel := g.attemptCtx(r, deadline)
	resp, err := g.forward(ctx, wk, r, deadline)
	g.settle(wk, ctx, err)
	return resp, wk, cancel, err
}

// attemptCtx derives one attempt's context: the request's own context
// bounded by min(AttemptTimeout, remaining deadline budget).
func (g *Gateway) attemptCtx(r *http.Request, deadline time.Time) (context.Context, context.CancelFunc) {
	var dl time.Time
	if g.attemptTimeout > 0 {
		dl = time.Now().Add(g.attemptTimeout)
	}
	if !deadline.IsZero() && (dl.IsZero() || deadline.Before(dl)) {
		dl = deadline
	}
	if dl.IsZero() {
		return context.WithCancel(r.Context())
	}
	return context.WithDeadline(r.Context(), dl)
}

// settle feeds one finished attempt into the worker's breaker and
// health state. A plain cancellation (the client vanished, or a hedge
// race aborted the loser) says nothing about the worker and is
// dropped; an attempt timeout or transport failure charges both the
// breaker window and the consecutive-failure health counter.
func (g *Gateway) settle(wk *Worker, ctx context.Context, err error) {
	now := time.Now()
	if err == nil {
		wk.breaker.ok(now)
		return
	}
	if ctx.Err() == context.Canceled {
		wk.breaker.drop()
		return
	}
	wk.conns.Add(1)
	g.table.NoteFailure(wk)
	wk.breaker.fail(now)
}

// hedgedAttempt fires the primary attempt and, if no response has
// arrived after the P99-derived hedge delay, one extra attempt on
// another breaker-admitting worker; the first useful response wins and
// the loser is cancelled. Only reached for idempotent, unkeyed,
// body-less requests.
func (g *Gateway) hedgedAttempt(primary *Worker, r *http.Request, deadline time.Time, tried map[*Worker]bool) (*http.Response, *Worker, func(), error) {
	type outcome struct {
		resp *http.Response
		err  error
		wk   *Worker
	}
	ch := make(chan outcome, 2)
	cancels := make(map[*Worker]context.CancelFunc, 2)
	launch := func(wk *Worker) {
		ctx, cancel := g.attemptCtx(r, deadline)
		cancels[wk] = cancel
		go func() {
			resp, err := g.forward(ctx, wk, r, deadline)
			g.settle(wk, ctx, err)
			ch <- outcome{resp, err, wk}
		}()
	}
	launch(primary)
	launched := 1
	timer := time.NewTimer(g.hedgeDelay())
	var first outcome
	select {
	case first = <-ch:
		timer.Stop()
	case <-timer.C:
		if second := g.table.PickUnkeyed(tried); second != nil && second.breaker.allow(time.Now()) {
			tried[second] = true
			second.requests.Add(1)
			g.hedges.Add(1)
			launched = 2
			launch(second)
		}
		first = <-ch
	}
	win := first
	if launched == 2 {
		lost := func(o outcome) bool {
			return o.err != nil || o.resp.StatusCode == http.StatusServiceUnavailable
		}
		if lost(win) {
			// First responder was useless; give the straggler its
			// chance before judging.
			other := <-ch
			if !lost(other) || (win.err != nil && other.err == nil) {
				if win.resp != nil {
					drainBody(win.resp)
				}
				cancels[win.wk]()
				win = other
			} else {
				if other.resp != nil {
					drainBody(other.resp)
				}
				cancels[other.wk]()
			}
		} else {
			// Winner in hand: abort the straggler now and reap it in
			// the background so its connection is reusable.
			for wk, cancel := range cancels {
				if wk != win.wk {
					cancel()
				}
			}
			go func() {
				o := <-ch
				if o.resp != nil {
					drainBody(o.resp)
				}
			}()
		}
	}
	return win.resp, win.wk, cancels[win.wk], win.err
}

// hedgeDelay derives the hedge trigger from the recent latency
// distribution: P99, clamped to [1ms, 1s] — an attempt slower than
// that is in the tail the hedge exists to cut. With no samples yet the
// delay is a conservative 25ms.
func (g *Gateway) hedgeDelay() time.Duration {
	g.latmu.Lock()
	n := g.latNext
	if g.latFull {
		n = len(g.lats)
	}
	window := make([]time.Duration, n)
	copy(window, g.lats[:n])
	g.latmu.Unlock()
	if len(window) == 0 {
		return 25 * time.Millisecond
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	p99 := window[len(window)*99/100]
	if p99 < time.Millisecond {
		return time.Millisecond
	}
	if p99 > time.Second {
		return time.Second
	}
	return p99
}

// observeLatency feeds one successful proxy latency into the hedge
// window.
func (g *Gateway) observeLatency(d time.Duration) {
	g.latmu.Lock()
	g.lats[g.latNext] = d
	g.latNext++
	if g.latNext == len(g.lats) {
		g.latNext = 0
		g.latFull = true
	}
	g.latmu.Unlock()
}

// forward sends one attempt to wk under ctx, tracking in-flight and
// latency, and stamps the remaining deadline budget onto the forwarded
// request so the worker (and any retry after this one) never sees more
// time than the client has left.
func (g *Gateway) forward(ctx context.Context, wk *Worker, r *http.Request, deadline time.Time) (*http.Response, error) {
	u := *wk.URL
	u.Path = r.URL.Path
	u.RawPath = r.URL.RawPath
	u.RawQuery = r.URL.RawQuery
	var body io.Reader
	if r.ContentLength != 0 {
		body = r.Body
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, u.String(), body)
	if err != nil {
		return nil, err
	}
	copyHeaders(req.Header, r.Header)
	if !deadline.IsZero() {
		ms := time.Until(deadline).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(DeadlineHeader, strconv.FormatInt(ms, 10))
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		req.Header.Set("X-Forwarded-For", host)
	}
	wk.inflight.Add(1)
	t0 := time.Now()
	resp, err := g.client.Do(req)
	wk.inflight.Add(-1)
	if err != nil {
		return nil, err
	}
	// Latency feeds the estimate only for responses that did work;
	// 503s go through the penalty instead (a fast shed must not look
	// like a fast worker).
	if resp.StatusCode != http.StatusServiceUnavailable {
		lat := time.Since(t0)
		wk.observe(lat)
		g.observeLatency(lat)
	}
	return resp, nil
}

// relay copies the worker's response to the client, stamping the
// serving worker's id.
func relay(w http.ResponseWriter, resp *http.Response, workerID string) {
	defer resp.Body.Close()
	copyHeaders(w.Header(), resp.Header)
	w.Header().Set(WorkerHeader, workerID)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// drainBody discards a response being retried so its connection is
// reusable.
func drainBody(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	resp.Body.Close()
}

// hopHeaders are the RFC 9110 hop-by-hop headers a proxy must not
// relay.
var hopHeaders = []string{
	"Connection", "Proxy-Connection", "Keep-Alive", "Proxy-Authenticate",
	"Proxy-Authorization", "Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// copyHeaders copies everything but hop-by-hop headers into dst.
func copyHeaders(dst, src http.Header) {
	for k, vv := range src {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
	for _, h := range hopHeaders {
		dst.Del(h)
	}
}

// writeJSON renders v as indented JSON.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError renders the gateway's own JSON error envelope (matching
// the workers' error shape, so clients parse one format).
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
