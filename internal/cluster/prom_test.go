package cluster

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/prom"
)

// TestGatewayPromExposition proxies real requests through the fixture,
// scrapes the Prometheus view the way lwtgate mounts it (both /metrics
// and /cluster/metrics?format=prom), and checks the page against the
// line-format linter and the counters it must carry.
func TestGatewayPromExposition(t *testing.T) {
	f := newGateFixture(t, 2, Options{})
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/metrics", f.gw.MetricsHandler())
	mux.HandleFunc("/metrics", f.gw.PromHandler())
	mux.Handle("/", f.gw)
	front := httptest.NewServer(mux)
	defer front.Close()

	const n = 10
	for i := 0; i < n; i++ {
		resp, err := http.Get(front.URL + "/compute")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	for _, path := range []string{"/metrics", "/cluster/metrics?format=prom"} {
		resp, err := http.Get(front.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != prom.ContentType {
			t.Fatalf("%s Content-Type = %q, want %q", path, ct, prom.ContentType)
		}
		page := string(body)
		if err := prom.Lint(strings.NewReader(page)); err != nil {
			t.Fatalf("%s fails lint: %v\npage:\n%s", path, err, page)
		}
		for _, fam := range []string{
			"lwt_gate_members", "lwt_gate_healthy", "lwt_gate_inflight",
			"lwt_gate_proxied_total", "lwt_gate_worker_score",
			"lwt_gate_worker_healthy", "lwt_gate_worker_requests_total",
			"lwt_gate_worker_ejections_total", "lwt_gate_breaker_state",
			"lwt_gate_hedges_total", "lwt_gate_deadline_exhausted_total",
			"lwt_gate_worker_breaker_opens_total",
		} {
			if !strings.Contains(page, "# TYPE "+fam+" ") {
				t.Errorf("%s: family %s missing", path, fam)
			}
		}
		if v, ok := prom.Value(page, "lwt_gate_proxied_total", nil); !ok || v != n {
			t.Fatalf("%s: proxied_total = %v ok=%v, want %d", path, v, ok, n)
		}
		if v, ok := prom.Value(page, "lwt_gate_members", nil); !ok || v != 2 {
			t.Fatalf("%s: members = %v ok=%v, want 2", path, v, ok)
		}
		// Healthy workers with no failures expose a closed breaker.
		for _, w := range f.workers {
			v, ok := prom.Value(page, "lwt_gate_breaker_state", map[string]string{"worker": w.ID})
			if !ok || v != float64(BreakerClosed) {
				t.Fatalf("%s: worker %s breaker_state = %v ok=%v, want closed (0)", path, w.ID, v, ok)
			}
		}
		// Both workers expose a positive p2c score (idle floor is 1ms).
		for _, w := range f.workers {
			v, ok := prom.Value(page, "lwt_gate_worker_score", map[string]string{"worker": w.ID})
			if !ok || v <= 0 {
				t.Fatalf("%s: worker %s score = %v ok=%v, want > 0", path, w.ID, v, ok)
			}
		}
		// Requests spread across the pair must sum to the proxied total.
		var reqs float64
		for _, w := range f.workers {
			v, ok := prom.Value(page, "lwt_gate_worker_requests_total", map[string]string{"worker": w.ID})
			if !ok {
				t.Fatalf("%s: worker %s has no requests_total", path, w.ID)
			}
			reqs += v
		}
		if reqs != n {
			t.Fatalf("%s: worker requests sum = %v, want %d", path, reqs, n)
		}
	}
}

// TestWorkerMetricsScore pins that the exported Score matches the
// routing-internal estimate feeding p2c.
func TestWorkerMetricsScore(t *testing.T) {
	f := newGateFixture(t, 1, Options{})
	for _, wm := range f.gw.Snapshot().Workers {
		if wm.Score <= 0 {
			t.Fatalf("worker %s Score = %d, want > 0 (idle floor)", wm.ID, wm.Score)
		}
	}
}
