package cluster

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// stubWorker is an httptest-backed fake lwtserved: it answers /healthz
// by a toggleable flag and everything else with a canned body naming
// itself.
type stubWorker struct {
	srv    *httptest.Server
	alive  atomic.Bool
	status atomic.Int32  // non-health response status; 0 means 200
	hits   atomic.Uint64 // non-health requests served
}

func newStubWorker(t *testing.T, name string) *stubWorker {
	t.Helper()
	w := &stubWorker{}
	w.alive.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		if !w.alive.Load() {
			http.Error(rw, "down", http.StatusServiceUnavailable)
			return
		}
		rw.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/", func(rw http.ResponseWriter, r *http.Request) {
		w.hits.Add(1)
		if s := w.status.Load(); s != 0 && s != http.StatusOK {
			if s == http.StatusServiceUnavailable {
				rw.Header().Set("Retry-After", "1")
			}
			http.Error(rw, "stub status", int(s))
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_, _ = rw.Write([]byte(`{"worker":"` + name + `"}`))
	})
	w.srv = httptest.NewServer(mux)
	t.Cleanup(w.srv.Close)
	return w
}

func (w *stubWorker) addr() string { return w.srv.Listener.Addr().String() }

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestHealthEjectionReadmissionCycle drives a full health cycle
// against stub workers: a worker failing probes is ejected after the
// fail threshold, routing stops sending it traffic, and once its
// probes pass again it is re-admitted and traffic returns.
func TestHealthEjectionReadmissionCycle(t *testing.T) {
	a, b := newStubWorker(t, "a"), newStubWorker(t, "b")
	table := NewTable(64, HealthPolicy{FailThreshold: 2, OKThreshold: 2})
	wa, err := table.Add(a.addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := table.Add(b.addr()); err != nil {
		t.Fatal(err)
	}
	checker := NewChecker(table, HealthConfig{Interval: 5 * time.Millisecond, Timeout: time.Second})
	checker.Start()
	defer checker.Stop()

	waitFor(t, 2*time.Second, "both workers healthy", func() bool {
		for _, w := range table.Workers() {
			if !w.Healthy() {
				return false
			}
		}
		return true
	})

	a.alive.Store(false)
	waitFor(t, 2*time.Second, "worker a ejected", func() bool { return !wa.Healthy() })
	if got := wa.ejections.Load(); got != 1 {
		t.Fatalf("ejections = %d, want 1", got)
	}

	// While ejected, unkeyed picks avoid a entirely.
	for i := 0; i < 50; i++ {
		if w := table.PickUnkeyed(nil); w == wa {
			t.Fatal("PickUnkeyed chose the ejected worker with a healthy one available")
		}
	}
	// Keyed candidates demote a to the back of every failover list.
	for _, key := range []string{"s1", "s2", "s3", "s4"} {
		cands := table.KeyedCandidates(key)
		if len(cands) != 2 || cands[0] == wa {
			t.Fatalf("key %q candidates lead with ejected worker: %v", key, ids(cands))
		}
	}

	a.alive.Store(true)
	waitFor(t, 2*time.Second, "worker a re-admitted", func() bool { return wa.Healthy() })
	if got := wa.readmissions.Load(); got != 1 {
		t.Fatalf("readmissions = %d, want 1", got)
	}
	// Affinity restored: keys owned by a lead with a again.
	ring := table.Ring()
	for k := 0; k < 100; k++ {
		key := "cycle-" + string(rune('a'+k%26)) + string(rune('0'+k/26))
		if ring.Lookup(key) == wa.ID {
			if cands := table.KeyedCandidates(key); cands[0] != wa {
				t.Fatalf("key %q owned by re-admitted worker leads with %q", key, cands[0].ID)
			}
		}
	}
}

// TestPassiveConnFailureEjects pins the fast path: repeated transport
// failures reported by the proxy eject a dead worker without waiting
// for the active checker.
func TestPassiveConnFailureEjects(t *testing.T) {
	table := NewTable(64, HealthPolicy{FailThreshold: 3, OKThreshold: 2})
	w, err := table.Add("127.0.0.1:9")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if table.NoteFailure(w) {
			t.Fatalf("ejected after %d failures, threshold is 3", i+1)
		}
	}
	if !table.NoteFailure(w) {
		t.Fatal("third failure did not eject")
	}
	if w.Healthy() {
		t.Fatal("worker still healthy after ejection")
	}
	// One success is not enough to re-admit at OKThreshold 2.
	if table.NoteSuccess(w) {
		t.Fatal("re-admitted after one success, threshold is 2")
	}
	if !table.NoteSuccess(w) {
		t.Fatal("second success did not re-admit")
	}
	if !w.Healthy() {
		t.Fatal("worker not healthy after re-admission")
	}
}

func ids(ws []*Worker) []string {
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.ID
	}
	return out
}
