package cluster

import (
	"testing"
	"time"
)

// bfix builds a breaker with a tight, deterministic policy and a
// transition log.
func bfix(t *testing.T) (*breaker, *[][2]int32) {
	t.Helper()
	b := newBreaker(BreakerPolicy{Window: 8, MinSamples: 4, FailureRatio: 0.5, Cooldown: 50 * time.Millisecond})
	log := &[][2]int32{}
	b.onTransition = func(from, to int32) { *log = append(*log, [2]int32{from, to}) }
	return b, log
}

// TestBreakerOpensOnFailureRatio pins the closed→open edge: the breaker
// holds through MinSamples-1 failures and opens exactly when the ratio
// is met over enough samples.
func TestBreakerOpensOnFailureRatio(t *testing.T) {
	b, log := bfix(t)
	now := time.Now()
	for i := 0; i < 3; i++ {
		if !b.allow(now) {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.fail(now)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 3 failures (< MinSamples) = %s, want closed", breakerStateName(got))
	}
	b.allow(now)
	b.fail(now) // 4th sample: 4/4 failed >= 0.5
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 4/4 failures = %s, want open", breakerStateName(got))
	}
	if len(*log) != 1 || (*log)[0] != [2]int32{BreakerClosed, BreakerOpen} {
		t.Fatalf("transition log = %v, want one closed->open", *log)
	}
	if b.allow(now) {
		t.Fatal("open breaker admitted an attempt inside the cooldown")
	}
	if ra := b.retryAfter(now); ra <= 0 || ra > 50*time.Millisecond {
		t.Fatalf("retryAfter = %v, want in (0, cooldown]", ra)
	}
}

// TestBreakerSuccessesKeepItClosed pins that a mixed window below the
// ratio never opens: alternating ok/fail stays at 50%... so use a
// window kept just under the ratio.
func TestBreakerSuccessesKeepItClosed(t *testing.T) {
	b, _ := bfix(t)
	now := time.Now()
	// 3 failures in a window of 8 filled samples = 37.5% < 50%.
	for i := 0; i < 8; i++ {
		b.allow(now)
		if i < 3 {
			b.fail(now)
		} else {
			b.ok(now)
		}
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state at 3/8 failures = %s, want closed", breakerStateName(got))
	}
}

// TestBreakerHalfOpenProbe pins the open→half-open→closed recovery
// path: after the cooldown exactly one attempt is admitted as the
// probe, concurrent attempts are refused while it is outstanding, and
// a successful probe closes the breaker with a clean window.
func TestBreakerHalfOpenProbe(t *testing.T) {
	b, log := bfix(t)
	now := time.Now()
	for i := 0; i < 4; i++ {
		b.allow(now)
		b.fail(now)
	}
	if b.State() != BreakerOpen {
		t.Fatal("setup: breaker not open")
	}
	later := now.Add(60 * time.Millisecond) // past the 50ms cooldown
	if !b.canRoute(later) {
		t.Fatal("canRoute = false after cooldown, want probe-eligible")
	}
	if !b.allow(later) {
		t.Fatal("post-cooldown attempt refused, want admitted as probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %s, want half-open", breakerStateName(b.State()))
	}
	if b.allow(later) {
		t.Fatal("second attempt admitted while probe outstanding")
	}
	b.ok(later)
	if b.State() != BreakerClosed {
		t.Fatalf("state after probe success = %s, want closed", breakerStateName(b.State()))
	}
	// The reset must forget pre-open failures: one new failure cannot
	// re-open.
	b.allow(later)
	b.fail(later)
	if b.State() != BreakerClosed {
		t.Fatal("breaker re-opened on first failure after reset — window not cleared")
	}
	want := [][2]int32{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if len(*log) != len(want) {
		t.Fatalf("transition log = %v, want %v", *log, want)
	}
	for i := range want {
		if (*log)[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, (*log)[i], want[i])
		}
	}
}

// TestBreakerProbeFailureReopens pins half-open→open: a failed probe
// restarts the cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	b, _ := bfix(t)
	now := time.Now()
	for i := 0; i < 4; i++ {
		b.allow(now)
		b.fail(now)
	}
	later := now.Add(60 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("probe refused")
	}
	b.fail(later)
	if b.State() != BreakerOpen {
		t.Fatalf("state after probe failure = %s, want open", breakerStateName(b.State()))
	}
	// Cooldown restarted from the probe failure, not the original open.
	if b.allow(later.Add(40 * time.Millisecond)) {
		t.Fatal("attempt admitted before the restarted cooldown elapsed")
	}
	if !b.allow(later.Add(60 * time.Millisecond)) {
		t.Fatal("attempt refused after the restarted cooldown elapsed")
	}
}

// TestBreakerDropReleasesProbe pins that a cancelled probe (client
// vanished, hedge abort) neither closes nor re-opens — it releases the
// slot so the next attempt re-probes.
func TestBreakerDropReleasesProbe(t *testing.T) {
	b, _ := bfix(t)
	now := time.Now()
	for i := 0; i < 4; i++ {
		b.allow(now)
		b.fail(now)
	}
	later := now.Add(60 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("probe refused")
	}
	b.drop()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after dropped probe = %s, want half-open", breakerStateName(b.State()))
	}
	if !b.allow(later) {
		t.Fatal("next attempt refused after the dropped probe released the slot")
	}
	b.ok(later)
	if b.State() != BreakerClosed {
		t.Fatal("re-probe success did not close the breaker")
	}
}

// TestBreakerDisabled pins the off switch and the nil receiver: both
// always admit and never change state.
func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerPolicy{Disabled: true})
	now := time.Now()
	for i := 0; i < 100; i++ {
		if !b.allow(now) {
			t.Fatal("disabled breaker refused an attempt")
		}
		b.fail(now)
	}
	if b.State() != BreakerClosed {
		t.Fatal("disabled breaker left closed state")
	}
	var nb *breaker
	if !nb.allow(now) || !nb.canRoute(now) {
		t.Fatal("nil breaker refused an attempt")
	}
	nb.ok(now)
	nb.fail(now)
	nb.drop()
	if nb.State() != BreakerClosed || nb.retryAfter(now) != 0 {
		t.Fatal("nil breaker reported non-closed state")
	}
}

// TestBreakerMinSamplesClampedToWindow pins the defaults footgun: a
// window smaller than the (defaulted) MinSamples must clamp, not
// silently disable the breaker.
func TestBreakerMinSamplesClampedToWindow(t *testing.T) {
	b := newBreaker(BreakerPolicy{Window: 8}) // MinSamples defaults to 10 > 8
	if b.pol.MinSamples != 8 {
		t.Fatalf("MinSamples = %d, want clamped to window 8", b.pol.MinSamples)
	}
	now := time.Now()
	for i := 0; i < 8; i++ {
		b.allow(now)
		b.fail(now)
	}
	if b.State() != BreakerOpen {
		t.Fatal("breaker with window < default MinSamples never opened")
	}
}

// TestBreakerSlidingWindowEvicts pins the ring semantics: old failures
// age out as new outcomes arrive, so a burst of long-past failures
// cannot combine with fresh ones to open.
func TestBreakerSlidingWindowEvicts(t *testing.T) {
	b, _ := bfix(t)
	now := time.Now()
	// 3 failures, then 8 successes push them all out of the window-8.
	for i := 0; i < 3; i++ {
		b.allow(now)
		b.fail(now)
	}
	for i := 0; i < 8; i++ {
		b.allow(now)
		b.ok(now)
	}
	// 3 fresh failures: window now holds 3/8 = 37.5% < 50%. Without
	// eviction the stale 3 would make it 6 and trip.
	for i := 0; i < 3; i++ {
		b.allow(now)
		b.fail(now)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %s, want closed (stale failures must age out)", breakerStateName(got))
	}
}

// TestWorkerRoutableComposes pins Routable = Healthy ∧ breaker-admitting
// and that KeyedCandidates fails open: breaker-blocked workers rank
// after routable ones but before ejected ones, and nothing disappears.
func TestWorkerRoutableComposes(t *testing.T) {
	f := newGateFixture(t, 3, Options{})
	table := f.gw.Table()
	now := time.Now()
	all := table.Workers()
	for _, w := range all {
		if !w.Routable(now) {
			t.Fatalf("worker %s not routable at start", w.ID)
		}
	}
	// Trip worker 0's breaker by hand.
	w0 := all[0]
	for i := 0; i < w0.breaker.pol.MinSamples; i++ {
		w0.breaker.allow(now)
		w0.breaker.fail(now)
	}
	if w0.Routable(now) {
		t.Fatal("breaker-open worker still Routable")
	}
	if !w0.Healthy() {
		t.Fatal("breaker must not affect health ejection")
	}
	cands := table.KeyedCandidates("somekey")
	if len(cands) != len(all) {
		t.Fatalf("KeyedCandidates dropped workers: got %d, want %d", len(cands), len(all))
	}
	// w0 must be last among the healthy (fail open: still a candidate).
	for i, c := range cands[:len(cands)-1] {
		if c == w0 {
			t.Fatalf("breaker-open worker at position %d, want last", i)
		}
	}
	if cands[len(cands)-1] != w0 {
		t.Fatal("breaker-open worker not demoted to the tail")
	}
	// PickUnkeyed avoids it while alternatives exist.
	for i := 0; i < 20; i++ {
		if wk := table.PickUnkeyed(nil); wk == w0 {
			t.Fatal("PickUnkeyed chose a breaker-open worker with routable alternatives")
		}
	}
	// ...but falls back to it when everything else was tried.
	tried := map[*Worker]bool{all[1]: true, all[2]: true}
	if wk := table.PickUnkeyed(tried); wk != w0 {
		t.Fatalf("PickUnkeyed fallback = %v, want the breaker-open worker", wk)
	}
}
