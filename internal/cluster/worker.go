package cluster

import (
	"fmt"
	"math/rand/v2"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Worker states. Ejection is a routing state, not a membership change:
// an ejected worker keeps its ring points, so its keys fail over to
// ring successors while it is out and snap back on re-admission — the
// reshuffle-bounding property only permanent Remove gives up.
const (
	// StateHealthy routes normally.
	StateHealthy int32 = iota
	// StateEjected is skipped by routing until health checks pass again.
	StateEjected
)

// ewmaShift is the EWMA decay: new = old - old/8 + sample/8, an ~8
// sample half-window that tracks latency shifts within a burst.
const ewmaShift = 3

// penaltyBump is the load-estimate surcharge one worker 503 adds. A
// saturated worker answers 503 *fast*, so a pure latency estimate
// would reward it with more traffic; the additive penalty makes
// backpressure visible to p2c instead, and successful responses decay
// it (halved per success) so the worker wins traffic back gradually.
const penaltyBump = 8

// Worker is one lwtserved process the gateway routes to.
type Worker struct {
	// ID is the worker's host:port — the ring member id and the value
	// reported in the X-LWT-Worker response header.
	ID string
	// URL is the worker's base URL (scheme + host).
	URL *url.URL

	inflight atomic.Int64 // proxied requests currently outstanding
	ewma     atomic.Int64 // recent response latency estimate, nanoseconds
	penalty  atomic.Int64 // 503-backpressure surcharge, decays on success
	state    atomic.Int32 // StateHealthy | StateEjected

	// Health transitions are threshold-counted under a mutex so the
	// active checker and passive connection-failure reports interleave
	// without losing a transition.
	hmu        sync.Mutex
	consecFail int
	consecOK   int

	// breaker is the per-worker circuit breaker, gating attempts on the
	// recent error/timeout rate; composes with (does not replace)
	// health ejection. Set by Table.Add.
	breaker *breaker

	requests     atomic.Uint64 // proxied requests sent (incl. retried attempts)
	conns        atomic.Uint64 // transport/connection failures
	resp503      atomic.Uint64 // 503 responses observed
	ejections    atomic.Uint64
	readmissions atomic.Uint64
	breakerOpens atomic.Uint64 // closed/half-open -> open transitions
}

// newWorker parses addr ("host:port" or a full http URL) into a Worker.
func newWorker(addr string) (*Worker, error) {
	raw := strings.TrimSpace(addr)
	if raw == "" {
		return nil, fmt.Errorf("cluster: empty worker address")
	}
	if !strings.Contains(raw, "://") {
		raw = "http://" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker address %q: %w", addr, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("cluster: worker address %q: unsupported scheme %q", addr, u.Scheme)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("cluster: worker address %q: no host", addr)
	}
	return &Worker{ID: u.Host, URL: &url.URL{Scheme: u.Scheme, Host: u.Host}}, nil
}

// Healthy reports whether routing should consider this worker.
func (w *Worker) Healthy() bool { return w.state.Load() == StateHealthy }

// Routable composes the two containment layers: health (consecutive
// hard failures eject) and the circuit breaker (failure *rate* opens).
// Routing prefers routable workers; the fail-open fallbacks still
// reach unroutable ones when nothing else is left.
func (w *Worker) Routable(now time.Time) bool {
	return w.Healthy() && w.breaker.canRoute(now)
}

// BreakerState reads the worker's breaker state (BreakerClosed /
// BreakerHalfOpen / BreakerOpen).
func (w *Worker) BreakerState() int32 { return w.breaker.State() }

// InFlight reports the outstanding proxied-request count.
func (w *Worker) InFlight() int64 { return w.inflight.Load() }

// score is the p2c load estimate: outstanding requests (plus the 503
// penalty, plus one so an idle worker still weighs its latency) scaled
// by recent latency. The +1ms latency floor keeps a just-started
// worker from looking infinitely fast.
func (w *Worker) score() int64 {
	return (w.inflight.Load() + w.penalty.Load() + 1) * (w.ewma.Load() + int64(time.Millisecond))
}

// observe folds one successful response's latency into the estimate
// and decays the 503 penalty. The EWMA update is load/store rather
// than CAS — a lost race drops one sample from an estimate, which is
// noise, not corruption.
func (w *Worker) observe(d time.Duration) {
	old := w.ewma.Load()
	w.ewma.Store(old - old>>ewmaShift + int64(d)>>ewmaShift)
	if p := w.penalty.Load(); p > 0 {
		w.penalty.Store(p >> 1)
	}
}

// observe503 feeds one worker 503 into the load estimate.
func (w *Worker) observe503() {
	w.resp503.Add(1)
	if p := w.penalty.Load(); p < 1<<20 {
		w.penalty.Store(p + penaltyBump)
	}
}

// noteSuccess records one passing health probe; after okThresh
// consecutive passes an ejected worker is re-admitted. Reports whether
// this call performed the re-admission.
func (w *Worker) noteSuccess(okThresh int) bool {
	w.hmu.Lock()
	defer w.hmu.Unlock()
	w.consecFail = 0
	w.consecOK++
	if w.state.Load() == StateEjected && w.consecOK >= okThresh {
		w.state.Store(StateHealthy)
		w.readmissions.Add(1)
		w.penalty.Store(0)
		return true
	}
	return false
}

// noteFailure records one failed probe or connection failure; after
// failThresh consecutive failures the worker is ejected. Reports
// whether this call performed the ejection.
func (w *Worker) noteFailure(failThresh int) bool {
	w.hmu.Lock()
	defer w.hmu.Unlock()
	w.consecOK = 0
	w.consecFail++
	if w.state.Load() == StateHealthy && w.consecFail >= failThresh {
		w.state.Store(StateEjected)
		w.ejections.Add(1)
		return true
	}
	return false
}

// HealthPolicy sets the ejection/re-admission thresholds shared by the
// active checker and the proxy's passive connection-failure reports,
// plus the per-worker circuit-breaker policy.
type HealthPolicy struct {
	// FailThreshold is the consecutive-failure count that ejects
	// (<= 0 means 3).
	FailThreshold int
	// OKThreshold is the consecutive-success count that re-admits an
	// ejected worker (<= 0 means 2).
	OKThreshold int
	// Breaker configures each worker's circuit breaker (zero value:
	// defaults; set Breaker.Disabled to turn breakers off).
	Breaker BreakerPolicy
}

func (p HealthPolicy) withDefaults() HealthPolicy {
	if p.FailThreshold <= 0 {
		p.FailThreshold = 3
	}
	if p.OKThreshold <= 0 {
		p.OKThreshold = 2
	}
	p.Breaker = p.Breaker.withDefaults()
	return p
}

// Table is the gateway's membership view: the worker set, their ring,
// and the routing picks. Safe for concurrent use.
type Table struct {
	policy HealthPolicy
	ring   *Ring

	// onBreaker, when set, observes every breaker state transition —
	// the gateway hooks its trace ring here. Read at fire time (not
	// capture time), so installing it after membership is populated
	// still covers every worker. Called with the breaker's lock held:
	// keep it cheap and never call back into the breaker or the table.
	onBreaker atomic.Value // func(w *Worker, from, to int32)

	mu      sync.RWMutex
	workers map[string]*Worker
	order   []*Worker // stable iteration order (addition order)
}

// NewTable returns an empty table routing over a fresh ring.
func NewTable(vnodes int, policy HealthPolicy) *Table {
	return &Table{
		policy:  policy.withDefaults(),
		ring:    NewRing(vnodes),
		workers: make(map[string]*Worker),
	}
}

// Ring exposes the membership ring (for tests and introspection).
func (t *Table) Ring() *Ring { return t.ring }

// OnBreakerTransition installs the breaker-transition observer. It
// covers every worker, whenever added.
func (t *Table) OnBreakerTransition(fn func(w *Worker, from, to int32)) {
	t.onBreaker.Store(fn)
}

// Add parses addr, registers the worker, and joins it to the ring.
// Re-adding a known address returns the existing worker.
func (t *Table) Add(addr string) (*Worker, error) {
	w, err := newWorker(addr)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if old, ok := t.workers[w.ID]; ok {
		t.mu.Unlock()
		return old, nil
	}
	w.breaker = newBreaker(t.policy.Breaker)
	wk := w
	w.breaker.onTransition = func(from, to int32) {
		if to == BreakerOpen {
			wk.breakerOpens.Add(1)
		}
		if fn, ok := t.onBreaker.Load().(func(w *Worker, from, to int32)); ok && fn != nil {
			fn(wk, from, to)
		}
	}
	t.workers[w.ID] = w
	t.order = append(t.order, w)
	t.mu.Unlock()
	t.ring.Add(w.ID)
	return w, nil
}

// Remove permanently drops a worker from the table and the ring,
// remapping its key share to ring successors.
func (t *Table) Remove(id string) {
	t.mu.Lock()
	if _, ok := t.workers[id]; ok {
		delete(t.workers, id)
		kept := t.order[:0]
		for _, w := range t.order {
			if w.ID != id {
				kept = append(kept, w)
			}
		}
		t.order = kept
	}
	t.mu.Unlock()
	t.ring.Remove(id)
}

// Get returns the worker with this id, or nil.
func (t *Table) Get(id string) *Worker {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.workers[id]
}

// Workers returns every worker in addition order.
func (t *Table) Workers() []*Worker {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Worker, len(t.order))
	copy(out, t.order)
	return out
}

// NoteSuccess/NoteFailure apply one health observation under the
// table's policy. They are the single entry point for both the active
// checker and the proxy's passive connection-failure signal.
func (t *Table) NoteSuccess(w *Worker) bool { return w.noteSuccess(t.policy.OKThreshold) }
func (t *Table) NoteFailure(w *Worker) bool { return w.noteFailure(t.policy.FailThreshold) }

// KeyedCandidates returns the attempt order for a keyed request: the
// ring's failover sequence with routable workers first (each group in
// ring order). The pinned owner always leads while routable — that is
// the affinity guarantee — workers held back only by an open breaker
// come next (they are alive, just being rested), and ejected workers
// are still listed last so a fully-ejected table fails open to real
// connection attempts rather than synthesizing a 503 from
// possibly-stale health state.
func (t *Table) KeyedCandidates(key string) []*Worker {
	ids := t.ring.LookupN(key, t.ring.Size())
	now := time.Now()
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]*Worker, 0, len(ids))
	for _, id := range ids {
		if w := t.workers[id]; w != nil && w.Routable(now) {
			out = append(out, w)
		}
	}
	for _, id := range ids {
		if w := t.workers[id]; w != nil && w.Healthy() && !w.Routable(now) {
			out = append(out, w)
		}
	}
	for _, id := range ids {
		if w := t.workers[id]; w != nil && !w.Healthy() {
			out = append(out, w)
		}
	}
	return out
}

// PickUnkeyed chooses a worker for an unkeyed request by
// power-of-two-choices over the load scores of routable (healthy,
// breaker-admitting) workers not in tried, mirroring the in-process
// shard router one level up. With no routable untried worker it falls
// back to any untried one (fail open, cheapest first), and returns nil
// only when every worker has been tried.
func (t *Table) PickUnkeyed(tried map[*Worker]bool) *Worker {
	now := time.Now()
	t.mu.RLock()
	candidates := make([]*Worker, 0, len(t.order))
	for _, w := range t.order {
		if w.Routable(now) && !tried[w] {
			candidates = append(candidates, w)
		}
	}
	if len(candidates) == 0 {
		for _, w := range t.order {
			if !tried[w] {
				candidates = append(candidates, w)
			}
		}
	}
	t.mu.RUnlock()
	switch len(candidates) {
	case 0:
		return nil
	case 1:
		return candidates[0]
	}
	a, b := rand.IntN(len(candidates)), rand.IntN(len(candidates))
	if candidates[b].score() < candidates[a].score() {
		return candidates[b]
	}
	return candidates[a]
}
