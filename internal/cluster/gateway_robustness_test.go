package cluster

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// faultWorker is a stub lwtserved with injectable behavior: response
// delay, forced status (with a custom Retry-After), and connection
// reset. It also records the deadline budget each request carried.
type faultWorker struct {
	srv        *httptest.Server
	delay      atomic.Int64 // response delay, ns
	status     atomic.Int32 // forced status; 0 = 200
	retryAfter atomic.Value // string; Retry-After on forced 503
	reset      atomic.Bool  // kill the connection instead of answering
	lastBudget atomic.Int64 // DeadlineHeader ms seen on the last request
	hits       atomic.Uint64
}

func newFaultWorker(t *testing.T, name string) *faultWorker {
	t.Helper()
	w := &faultWorker{}
	w.retryAfter.Store("1")
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/", func(rw http.ResponseWriter, r *http.Request) {
		w.hits.Add(1)
		if v := r.Header.Get(DeadlineHeader); v != "" {
			if ms, err := strconv.ParseInt(v, 10, 64); err == nil {
				w.lastBudget.Store(ms)
			}
		}
		if w.reset.Load() {
			hj, ok := rw.(http.Hijacker)
			if !ok {
				t.Error("response writer is not a hijacker")
				return
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		if d := time.Duration(w.delay.Load()); d > 0 {
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				return
			}
		}
		if s := w.status.Load(); s != 0 && s != http.StatusOK {
			if s == http.StatusServiceUnavailable {
				rw.Header().Set("Retry-After", w.retryAfter.Load().(string))
			}
			http.Error(rw, "fault status", int(s))
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		_, _ = rw.Write([]byte(`{"worker":"` + name + `"}`))
	})
	w.srv = httptest.NewServer(mux)
	t.Cleanup(w.srv.Close)
	return w
}

func (w *faultWorker) addr() string { return w.srv.Listener.Addr().String() }

// faultFixture boots a gateway over n fault workers.
type faultFixture struct {
	gw      *Gateway
	front   *httptest.Server
	faults  []*faultWorker
	workers []*Worker
}

func newFaultFixture(t *testing.T, n int, opts Options) *faultFixture {
	t.Helper()
	f := &faultFixture{}
	if opts.Table == nil {
		opts.Table = NewTable(64, HealthPolicy{FailThreshold: 1000, OKThreshold: 2})
	}
	for i := 0; i < n; i++ {
		s := newFaultWorker(t, fmt.Sprintf("f%d", i))
		w, err := opts.Table.Add(s.addr())
		if err != nil {
			t.Fatal(err)
		}
		f.faults = append(f.faults, s)
		f.workers = append(f.workers, w)
	}
	f.gw = New(opts)
	f.front = httptest.NewServer(f.gw)
	t.Cleanup(f.front.Close)
	return f
}

func (f *faultFixture) get(t *testing.T, path string, hdr map[string]string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, f.front.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// keyOwnedBy finds a key the ring assigns to worker id.
func keyOwnedBy(t *testing.T, gw *Gateway, id string) string {
	t.Helper()
	ring := gw.Table().Ring()
	for k := 0; k < 20000; k++ {
		key := fmt.Sprintf("sess-%d", k)
		if ring.Lookup(key) == id {
			return key
		}
	}
	t.Fatalf("no key maps to worker %s", id)
	return ""
}

// TestGatewayRelaysWorkerRetryAfter pins the backpressure contract end
// to end: a keyed 503 relays the *worker's* Retry-After hint — the
// worker knows its drain pace; the gate must not overwrite it with its
// own constant.
func TestGatewayRelaysWorkerRetryAfter(t *testing.T) {
	f := newFaultFixture(t, 2, Options{})
	key := keyOwnedBy(t, f.gw, f.workers[0].ID)
	f.faults[0].status.Store(http.StatusServiceUnavailable)
	f.faults[0].retryAfter.Store("7")
	resp := f.get(t, "/fib?n=10&key="+key, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("keyed request to saturated worker: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want the worker's own %q relayed", ra, "7")
	}
	if wk := resp.Header.Get(WorkerHeader); wk != f.workers[0].ID {
		t.Fatalf("503 relayed from %q, want pinned worker %q", wk, f.workers[0].ID)
	}
}

// TestGatewayDeadlineBudgetExhausted pins the end-to-end ceiling: when
// every attempt burns the client's budget, the gate answers 504 rather
// than retrying past the deadline, and the response lands near the
// budget, not after attempt-count × worker-latency.
func TestGatewayDeadlineBudgetExhausted(t *testing.T) {
	f := newFaultFixture(t, 2, Options{})
	for _, fw := range f.faults {
		fw.delay.Store(int64(500 * time.Millisecond))
	}
	t0 := time.Now()
	resp := f.get(t, "/fib?n=10&deadline_ms=80", nil)
	elapsed := time.Since(t0)
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("budget-exhausted request: status %d (%s), want 504", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "deadline budget exhausted") {
		t.Fatalf("504 body = %q, want the budget envelope", body)
	}
	// The ceiling must hold: one worker sleep is 500ms; an 80ms budget
	// answered in ~80ms proves the attempt context was cut, not ridden
	// out. Allow generous slack for a loaded CI box.
	if elapsed > 400*time.Millisecond {
		t.Fatalf("504 took %v, want ≈80ms (deadline must bound the attempt)", elapsed)
	}
	if got := f.gw.Snapshot().DeadlineExhausted; got == 0 {
		t.Fatal("DeadlineExhausted counter not incremented")
	}
}

// TestGatewayForwardDecrementsDeadline pins budget propagation: the
// worker sees the *remaining* budget via DeadlineHeader, strictly
// positive and no larger than what the client sent.
func TestGatewayForwardDecrementsDeadline(t *testing.T) {
	f := newFaultFixture(t, 1, Options{})
	resp := f.get(t, "/fib?n=10", map[string]string{DeadlineHeader: "5000"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	got := f.faults[0].lastBudget.Load()
	if got <= 0 || got > 5000 {
		t.Fatalf("worker saw budget %dms, want in (0, 5000]", got)
	}
	// The query form reaches the worker too (as a decremented header).
	resp = f.get(t, "/fib?n=10&deadline_ms=3000", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	got = f.faults[0].lastBudget.Load()
	if got <= 0 || got > 3000 {
		t.Fatalf("worker saw budget %dms, want in (0, 3000]", got)
	}
}

// TestGatewayBreakerOpensAndRecovers drives the full breaker cycle
// through the proxy path: connection resets open the breaker (without
// tripping health ejection — FailThreshold is out of reach), open
// workers fail fast with an honest Retry-After, the cooldown admits a
// probe, and a healthy probe closes the breaker and restores traffic.
func TestGatewayBreakerOpensAndRecovers(t *testing.T) {
	rec := trace.NewRecorder(256)
	table := NewTable(64, HealthPolicy{
		FailThreshold: 1000, OKThreshold: 2,
		Breaker: BreakerPolicy{Window: 4, MinSamples: 2, FailureRatio: 0.5, Cooldown: 100 * time.Millisecond},
	})
	f := newFaultFixture(t, 1, Options{Table: table, Tracer: rec})
	f.faults[0].reset.Store(true)

	// Each GET spends its attempts on the resetting worker; two settled
	// failures open the breaker.
	for i := 0; i < 2; i++ {
		resp := f.get(t, "/fib?n=10", nil)
		if resp.StatusCode != http.StatusBadGateway {
			t.Fatalf("request %d against resetting worker: status %d, want 502", i, resp.StatusCode)
		}
	}
	if got := f.workers[0].BreakerState(); got != BreakerOpen {
		t.Fatalf("breaker state after resets = %s, want open", breakerStateName(got))
	}
	if f.workers[0].breakerOpens.Load() == 0 {
		t.Fatal("breakerOpens counter not incremented")
	}
	if !f.workers[0].Healthy() {
		t.Fatal("breaker test leaked into health ejection")
	}

	// Open breaker: the gate fails fast without touching the worker.
	hitsBefore := f.faults[0].hits.Load()
	resp := f.get(t, "/fib?n=10", nil)
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "breaker-open") {
		t.Fatalf("open-breaker request: status %d (%s), want 503 breaker-open", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("open-breaker 503 missing Retry-After")
	}
	if f.faults[0].hits.Load() != hitsBefore {
		t.Fatal("open breaker still sent traffic to the worker")
	}

	// Snapshot mirrors the state.
	wm := f.gw.Snapshot().Workers[0]
	if wm.Breaker != "open" || wm.BreakerState != BreakerOpen || wm.BreakerOpens == 0 {
		t.Fatalf("snapshot breaker view = %+v, want open", wm)
	}

	// Recovery: heal the worker, wait out the cooldown, and the probe
	// closes the breaker.
	f.faults[0].reset.Store(false)
	time.Sleep(120 * time.Millisecond)
	resp = f.get(t, "/fib?n=10", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cooldown probe request: status %d, want 200", resp.StatusCode)
	}
	if got := f.workers[0].BreakerState(); got != BreakerClosed {
		t.Fatalf("breaker state after successful probe = %s, want closed", breakerStateName(got))
	}

	// The transitions were traced on the gate lane.
	var breakerEvents int
	for _, ev := range rec.Snapshot("test").Events {
		if ev.Kind == trace.KindBreaker {
			breakerEvents++
		}
	}
	if breakerEvents < 3 { // closed->open, open->half-open, half-open->closed
		t.Fatalf("traced %d breaker transitions, want >= 3", breakerEvents)
	}
}

// TestGatewayHedgeCutsTailLatency pins the hedge: with the primary
// stuck in a 300ms stall and the hedge delay in the tens of
// milliseconds, the second attempt answers long before the primary
// would have, the hedge counter ticks, and the cancelled loser does not
// poison its breaker.
func TestGatewayHedgeCutsTailLatency(t *testing.T) {
	f := newFaultFixture(t, 2, Options{Hedge: true})
	slow, fast := f.faults[0], f.faults[1]
	slowW, fastW := f.workers[0], f.workers[1]
	// Bias p2c toward the slow worker by inflating the fast one's
	// latency estimate, so the primary attempt is the one that stalls.
	for i := 0; i < 32; i++ {
		fastW.observe(50 * time.Millisecond)
	}
	slow.delay.Store(int64(300 * time.Millisecond))

	// p2c samples with replacement, so even with the bias a try can put
	// the primary on the fast worker (both samples land there) and
	// finish with no hedge. Retry until a try actually stalls on the
	// slow worker and hedges; the odds of 20 misses are 0.25^20.
	var resp *http.Response
	var elapsed time.Duration
	hedged := false
	for try := 0; try < 20 && !hedged; try++ {
		before := f.gw.Snapshot().Hedges
		t0 := time.Now()
		resp = f.get(t, "/fib?n=10", nil)
		elapsed = time.Since(t0)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("hedged request: status %d, want 200", resp.StatusCode)
		}
		hedged = f.gw.Snapshot().Hedges > before
	}
	if !hedged {
		t.Fatal("no try routed its primary to the slow worker — hedge never fired")
	}
	if wk := resp.Header.Get(WorkerHeader); wk != fastW.ID {
		t.Fatalf("hedged request served by %q, want the fast worker %q", wk, fastW.ID)
	}
	if elapsed >= 300*time.Millisecond {
		t.Fatalf("hedged request took %v — the hedge did not cut the stall", elapsed)
	}
	if fast.hits.Load() == 0 {
		t.Fatal("hedge attempt never reached the fast worker")
	}
	// The cancelled primary settles as a drop: no breaker damage, no
	// health note.
	waitFor(t, time.Second, "loser settle", func() bool {
		return slowW.inflight.Load() == 0
	})
	if got := slowW.BreakerState(); got != BreakerClosed {
		t.Fatalf("cancelled hedge loser moved its breaker to %s", breakerStateName(got))
	}
	if slowW.conns.Load() != 0 {
		t.Fatal("cancelled hedge loser charged a connection failure")
	}
}

// TestGatewayAttemptTimeoutRetriesWithinBudget pins the per-attempt
// cut: a stalled first worker burns only AttemptTimeout, the retry
// lands on the healthy peer, and the client still gets a 200.
func TestGatewayAttemptTimeoutRetriesWithinBudget(t *testing.T) {
	f := newFaultFixture(t, 2, Options{AttemptTimeout: 50 * time.Millisecond})
	slow := f.faults[0]
	slow.delay.Store(int64(2 * time.Second))
	// Bias routing toward the stalled worker for the first attempt.
	for i := 0; i < 32; i++ {
		f.workers[1].observe(50 * time.Millisecond)
	}
	// p2c samples with replacement, so a try can route its primary to
	// the healthy worker and return with nothing to retry. Retry until
	// the primary lands on the stalled worker.
	retried := false
	for try := 0; try < 20 && !retried; try++ {
		before := f.gw.Snapshot().Retried
		t0 := time.Now()
		resp := f.get(t, "/fib?n=10", nil)
		elapsed := time.Since(t0)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200 via retry after attempt timeout", resp.StatusCode)
		}
		if wk := resp.Header.Get(WorkerHeader); wk != f.workers[1].ID {
			t.Fatalf("served by %q, want the healthy worker %q", wk, f.workers[1].ID)
		}
		if elapsed >= 2*time.Second {
			t.Fatalf("request took %v — the attempt timeout did not cut the stall", elapsed)
		}
		retried = f.gw.Snapshot().Retried > before
	}
	if !retried {
		t.Fatal("no try routed its primary to the stalled worker — attempt timeout never exercised")
	}
}
