package cluster

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// HealthConfig configures the active checker.
type HealthConfig struct {
	// Interval between probe rounds (<= 0 means 500ms).
	Interval time.Duration
	// Timeout for one probe (<= 0 means 2s).
	Timeout time.Duration
	// Path is the liveness endpoint probed on each worker
	// (empty means "/healthz").
	Path string
	// Client issues the probes; nil means a dedicated default client.
	Client *http.Client
}

func (c HealthConfig) withDefaults() HealthConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Path == "" {
		c.Path = "/healthz"
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	return c
}

// Checker actively probes every worker's health endpoint on an
// interval, feeding the table's ejection/re-admission thresholds.
// Probes within a round run concurrently, so one hung worker cannot
// starve the others' checks; a round still joins before the next so a
// slow endpoint is probed once at a time.
//
// The checker is the recovery path: the proxy's passive connection
// failures can eject a dead worker mid-traffic, but only passing
// probes bring it back.
type Checker struct {
	table *Table
	cfg   HealthConfig

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewChecker returns an unstarted checker over the table.
func NewChecker(table *Table, cfg HealthConfig) *Checker {
	return &Checker{
		table: table,
		cfg:   cfg.withDefaults(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// Start launches the probe loop. One probe round runs immediately so a
// gateway booted against a dead worker ejects it without waiting out
// the first interval.
func (c *Checker) Start() {
	go func() {
		defer close(c.done)
		c.probeAll()
		t := time.NewTicker(c.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.probeAll()
			case <-c.stop:
				return
			}
		}
	}()
}

// Stop halts the loop and waits for the in-flight round to finish.
// Safe to call more than once.
func (c *Checker) Stop() {
	c.once.Do(func() { close(c.stop) })
	<-c.done
}

// probeAll runs one concurrent probe round over the current members.
func (c *Checker) probeAll() {
	var wg sync.WaitGroup
	for _, w := range c.table.Workers() {
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			if c.probe(w) {
				c.table.NoteSuccess(w)
			} else {
				c.table.NoteFailure(w)
			}
		}(w)
	}
	wg.Wait()
}

// probe issues one health request; any 2xx is a pass.
func (c *Checker) probe(w *Worker) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.URL.String()+c.cfg.Path, nil)
	if err != nil {
		return false
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}
