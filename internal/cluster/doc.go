// Package cluster is the distributed serving tier over the in-process
// engine: it scales the PR 5 shard pool past one Go process by routing
// HTTP requests across N lwtserved worker processes. The shape mirrors
// the in-process design one level up — what a Router does for shards
// inside one Server, the gateway does for whole workers:
//
//	clients
//	  GET /fib?key=sess-7 ──ring (FNV-1a + vnodes)──▶ worker 10.0.0.1:8080
//	  GET /fib            ──p2c (in-flight×latency)─▶ worker 10.0.0.2:8080
//	        │                                         worker 10.0.0.3:8080  (ejected)
//	        ▼                                              ▲
//	   response  ◀── bounded retry on conn failure ──  health checks
//
// Keyed requests pin to a worker by consistent hashing, so sessions
// keep hitting one process's warm runtimes and membership changes
// remap only the departed worker's share of the key space. Unkeyed
// requests spread by power-of-two-choices over live load estimates,
// with worker 503s feeding the estimate as backpressure. Active health
// checks eject dead workers and re-admit recovered ones; connection
// failures retry idempotent requests on the next candidate, bounded.
//
// # Observability
//
// Gateway.Snapshot returns a Metrics value: gateway-level gauges
// (Members, Healthy, InFlight, Draining) and counters (Proxied,
// Retried, Failed, RejectedDraining), plus one WorkerMetrics per
// member. Each worker row carries the raw load-estimate inputs —
// InFlight, the latency EWMA in microseconds, and the 503-backpressure
// Penalty — and the composed p2c score the router actually compares:
//
//	Score = (InFlight + Penalty + 1) × (EWMA + 1ms floor)
//
// Lower scores route sooner; the +1 and the floor keep a cold worker
// from scoring zero and absorbing the whole arrival burst. Ejections
// and Readmissions count health-state transitions, so a worker that
// flaps is visible as a counter pair growing in lockstep rather than as
// a gauge blinking between scrapes. Metrics.WriteProm renders the
// snapshot as a Prometheus text-0.0.4 page; Gateway.PromHandler mounts
// it (lwtgate serves it at /metrics and /cluster/metrics?format=prom),
// and MetricsHandler keeps the JSON view. See TRACING.md for the family
// list and scrape configuration.
package cluster
