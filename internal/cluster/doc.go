// Package cluster is the distributed serving tier over the in-process
// engine: it scales the PR 5 shard pool past one Go process by routing
// HTTP requests across N lwtserved worker processes. The shape mirrors
// the in-process design one level up — what a Router does for shards
// inside one Server, the gateway does for whole workers:
//
//	clients
//	  GET /fib?key=sess-7 ──ring (FNV-1a + vnodes)──▶ worker 10.0.0.1:8080
//	  GET /fib            ──p2c (in-flight×latency)─▶ worker 10.0.0.2:8080
//	        │                                         worker 10.0.0.3:8080  (ejected)
//	        ▼                                              ▲
//	   response  ◀── bounded retry on conn failure ──  health checks
//
// Keyed requests pin to a worker by consistent hashing, so sessions
// keep hitting one process's warm runtimes and membership changes
// remap only the departed worker's share of the key space. Unkeyed
// requests spread by power-of-two-choices over live load estimates,
// with worker 503s feeding the estimate as backpressure. Active health
// checks eject dead workers and re-admit recovered ones; connection
// failures retry idempotent requests on the next candidate, bounded.
//
// # Deadlines
//
// A request carrying X-LWT-Deadline-Ms (or ?deadline_ms=) is budgeted
// end to end: each proxy attempt's context is bounded by
// min(Options.AttemptTimeout, remaining budget), the forwarded header
// carries the *remaining* milliseconds so the worker's serve layer can
// shed queued work whose client stopped waiting, and when the budget
// runs out at the gate the answer is an immediate 504 — retries never
// outlive the deadline.
//
// # Circuit breaker
//
// Health ejection reacts to consecutive hard failures — a dead
// process. The per-worker circuit breaker covers the sick-but-alive
// process that still intermittently answers and so never trips a
// consecutive counter: it watches the failure *rate* (attempt timeouts
// and transport errors; a 503 is backpressure, not failure) over a
// sliding window of settled attempts, per BreakerPolicy:
//
//	closed ──[failures/window ≥ FailureRatio over ≥ MinSamples]──▶ open
//	open ──[Cooldown elapsed; next attempt admitted as probe]──▶ half-open
//	half-open ──[probe succeeds]──▶ closed (window reset)
//	half-open ──[probe fails]──▶ open (cooldown restarts)
//
// An open breaker removes the worker from first-choice routing
// (Worker.Routable = Healthy ∧ breaker-admitting) but routing fails
// open: keyed candidates demote breaker-blocked workers behind
// routable ones and ejected ones last, so a key whose whole candidate
// list is sick still reaches *something*. A request whose every
// candidate is breaker-open is answered 503 with Retry-After set to
// the longest remaining cooldown. Attempts cancelled by the client or
// by a hedge race settle as drops — they say nothing about the worker
// and never move the breaker. Transitions are traced (trace.KindBreaker,
// Unit = new state) and exported (lwt_gate_breaker_state,
// lwt_gate_worker_breaker_opens_total).
//
// Hedging (Options.Hedge) is the tail-latency complement: an
// idempotent, unkeyed, body-less request stuck past the recent P99
// launches one extra attempt on another admitted worker; the first
// useful response wins and the loser's context is cancelled.
//
// # Observability
//
// Gateway.Snapshot returns a Metrics value: gateway-level gauges
// (Members, Healthy, InFlight, Draining) and counters (Proxied,
// Retried, Failed, RejectedDraining), plus one WorkerMetrics per
// member. Each worker row carries the raw load-estimate inputs —
// InFlight, the latency EWMA in microseconds, and the 503-backpressure
// Penalty — and the composed p2c score the router actually compares:
//
//	Score = (InFlight + Penalty + 1) × (EWMA + 1ms floor)
//
// Lower scores route sooner; the +1 and the floor keep a cold worker
// from scoring zero and absorbing the whole arrival burst. Ejections
// and Readmissions count health-state transitions, so a worker that
// flaps is visible as a counter pair growing in lockstep rather than as
// a gauge blinking between scrapes. Metrics.WriteProm renders the
// snapshot as a Prometheus text-0.0.4 page; Gateway.PromHandler mounts
// it (lwtgate serves it at /metrics and /cluster/metrics?format=prom),
// and MetricsHandler keeps the JSON view. See TRACING.md for the family
// list and scrape configuration.
package cluster
