package serve

import (
	"fmt"
	"math/rand/v2"
	"sync/atomic"
)

// Router picks the shard for one unkeyed submission. Implementations
// must be safe for concurrent use from any number of producer
// goroutines and must not block or take locks — Pick sits on the submit
// fast path of every request.
//
// Pick receives the shard count and a load probe: load(i) is shard i's
// current depth (queued + in-flight requests), read from atomic
// counters. The returned index must be in [0, n).
type Router interface {
	// Name reports the router's registered name (the value accepted by
	// RouterByName and lwtserved's -router flag).
	Name() string
	// Pick selects a shard index in [0, n) for one submission.
	Pick(n int, load func(int) int) int
}

// RouterByName returns a fresh router for a registered name:
//
//	"p2c" (or "")   power-of-two-choices on shard depth — the default
//	"roundrobin"    strict rotation, load-blind ("round-robin" and "rr"
//	                are accepted aliases)
//	"random"        uniform random shard
//
// Each call returns a new instance, so two servers never share router
// state (a round-robin cursor, for example).
func RouterByName(name string) (Router, error) {
	switch name {
	case "", "p2c":
		return P2C{}, nil
	case "roundrobin", "round-robin", "rr":
		return &RoundRobin{}, nil
	case "random":
		return Random{}, nil
	}
	return nil, fmt.Errorf("serve: unknown router %q (have p2c, roundrobin, random)", name)
}

// P2C is power-of-two-choices routing: sample two shards uniformly at
// random and pick the one with the smaller depth. The classic result is
// that this one extra probe drops the expected maximum load from
// Θ(log n / log log n) to Θ(log log n) versus purely random placement,
// at the cost of two atomic loads — no global scan, no shared state,
// no locks.
type P2C struct{}

// Name implements Router.
func (P2C) Name() string { return "p2c" }

// Pick implements Router: the less-loaded of two random shards.
func (P2C) Pick(n int, load func(int) int) int {
	if n < 2 {
		return 0
	}
	a, b := rand.IntN(n), rand.IntN(n)
	if load(b) < load(a) {
		return b
	}
	return a
}

// RoundRobin rotates submissions across shards in strict order,
// ignoring load — the right choice when request costs are uniform and
// the even spread matters more than queue-depth feedback.
type RoundRobin struct {
	next atomic.Uint64
}

// Name implements Router.
func (*RoundRobin) Name() string { return "roundrobin" }

// Pick implements Router: one fetch-add, modulo the shard count.
func (r *RoundRobin) Pick(n int, _ func(int) int) int {
	return int((r.next.Add(1) - 1) % uint64(n))
}

// Random places each submission on a uniformly random shard — the
// load-blind baseline P2C is measured against.
type Random struct{}

// Name implements Router.
func (Random) Name() string { return "random" }

// Pick implements Router.
func (Random) Pick(n int, _ func(int) int) int {
	if n < 2 {
		return 0
	}
	return rand.IntN(n)
}

// fnv1aOffset and fnv1aPrime are the 64-bit FNV-1a parameters.
const (
	fnv1aOffset = 14695981039346656037
	fnv1aPrime  = 1099511628211
)

// keyShard maps an affinity key onto a shard index with FNV-1a — a
// stable, allocation-free hash, so a session's requests land on the
// same shard for the server's whole lifetime.
func keyShard(key string, n int) int {
	h := uint64(fnv1aOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnv1aPrime
	}
	return int(h % uint64(n))
}
