package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestDeadlineShedsQueuedRequest pins the tentpole's queue-shed path:
// a request whose budget runs out while it waits behind a blocked
// executor resolves ErrExpired without running, counted once in
// Expired.
func TestDeadlineShedsQueuedRequest(t *testing.T) {
	s, sub, started, release := gated(t)
	defer s.Close()
	if _, err := Do(sub, context.Background(), func() (int, error) {
		close(started)
		<-release
		return 0, nil
	}, Req{}); err != nil {
		t.Fatal(err)
	}
	<-started
	var ran atomic.Bool
	f, err := Do(sub, nil, func() (int, error) {
		ran.Store(true)
		return 7, nil
	}, Req{Deadline: time.Now().Add(20 * time.Millisecond), NonBlocking: true})
	if err != nil {
		t.Fatal(err) // queue has room: accepted, but cannot launch yet
	}
	time.Sleep(30 * time.Millisecond)
	close(release) // pump proceeds, sees the spent budget at launch
	if _, werr := f.Wait(context.Background()); !errors.Is(werr, ErrExpired) {
		t.Fatalf("expired queued request = %v, want ErrExpired", werr)
	}
	if ran.Load() {
		t.Fatal("expired request body ran anyway")
	}
	if got := s.Metrics().Expired; got != 1 {
		t.Fatalf("Expired = %d, want 1", got)
	}
}

// TestDeadlineFutureStillLaunches pins the complement: a request whose
// budget has room launches normally and Expired stays zero.
func TestDeadlineFutureStillLaunches(t *testing.T) {
	s := MustNew(Options{Backend: "go", Threads: 1, Shards: 1})
	defer s.Close()
	f, err := Do(s.Submitter(), nil, func() (int, error) { return 9, nil }, Req{Deadline: time.Now().Add(time.Minute), NonBlocking: true})
	if err != nil {
		t.Fatal(err)
	}
	if v, err := f.Wait(context.Background()); err != nil || v != 9 {
		t.Fatalf("Wait = (%v, %v), want (9, nil)", v, err)
	}
	if got := s.Metrics().Expired; got != 0 {
		t.Fatalf("Expired = %d, want 0", got)
	}
}

// TestRunningHandlerSleepCancels pins the tentpole's cooperative-
// cancellation path: a launched ULT handler parked in core.Sleep wakes
// early with ErrCanceled when its deadline passes, instead of sleeping
// out a budget nobody is waiting for.
func TestRunningHandlerSleepCancels(t *testing.T) {
	s := MustNew(Options{Backend: "go", Threads: 1, Shards: 1})
	defer s.Close()
	f, err := DoULT(s.Submitter(), context.Background(), func(c core.Ctx) (time.Duration, error) {
		t0 := time.Now()
		if err := core.Sleep(c, 30*time.Second); err != core.ErrCanceled {
			return 0, errors.New("Sleep returned without cancellation")
		}
		return time.Since(t0), nil
	}, Req{Deadline: time.Now().Add(30 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	slept, err := f.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if slept > 5*time.Second {
		t.Fatalf("handler slept %v past its 30ms budget", slept)
	}
}

// TestRunningHandlerCtxCancelWakesAwait is the same early wake driven
// by the submission context rather than a deadline, through AwaitIO.
func TestRunningHandlerCtxCancelWakesAwait(t *testing.T) {
	s := MustNew(Options{Backend: "go", Threads: 1, Shards: 1})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	never := make(chan struct{})
	f, err := DoULT(s.Submitter(), ctx, func(c core.Ctx) (int, error) {
		close(started)
		if err := core.AwaitIO(c, never); err != core.ErrCanceled {
			return 0, errors.New("AwaitIO returned without cancellation")
		}
		return 1, nil
	}, Req{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel()
	if v, err := f.Wait(context.Background()); err != nil || v != 1 {
		t.Fatalf("Wait = (%v, %v), want (1, nil)", v, err)
	}
}

// TestCanceledHelperVisible pins the handler-facing select surface:
// core.Canceled(c) returns a live channel that closes when the budget
// is gone.
func TestCanceledHelperVisible(t *testing.T) {
	s := MustNew(Options{Backend: "go", Threads: 1, Shards: 1})
	defer s.Close()
	f, err := DoULT(s.Submitter(), context.Background(), func(c core.Ctx) (bool, error) {
		ch := core.Canceled(c)
		if ch == nil {
			return false, errors.New("Canceled(c) = nil on a deadlined request")
		}
		select {
		case <-ch:
			return true, nil
		case <-time.After(30 * time.Second):
			return false, nil
		}
	}, Req{Deadline: time.Now().Add(20 * time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	if fired, err := f.Wait(context.Background()); err != nil || !fired {
		t.Fatalf("Wait = (%v, %v), want (true, nil)", fired, err)
	}
}

// TestDrainIdentityWithExpiry closes a server holding a mix of
// completed, expired, and never-launched requests, then checks the
// extended drain identity: Submitted == Completed + Rejected + Expired
// — every accepted Future resolved through exactly one of the three.
func TestDrainIdentityWithExpiry(t *testing.T) {
	s, err := New(Options{
		Backend: "go", Threads: 1, Shards: 1,
		QueueDepth: 64, MaxInFlight: 1, Batch: 4,
		DrainTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Submitter()
	started := make(chan struct{})
	release := make(chan struct{})
	if _, err := Do(sub, context.Background(), func() (int, error) {
		close(started)
		<-release
		return 0, nil
	}, Req{}); err != nil {
		t.Fatal(err)
	}
	<-started
	futures := make([]*Future[int], 0, 32)
	for i := 0; i < 32; i++ {
		var f *Future[int]
		var err error
		if i%2 == 0 {
			f, err = Do(sub, nil, func() (int, error) { return i, nil }, Req{Deadline: time.Now().Add(10 * time.Millisecond), NonBlocking: true})
		} else {
			f, err = Do(sub, nil, func() (int, error) { return i, nil }, Req{NonBlocking: true})
		}
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	time.Sleep(20 * time.Millisecond) // even-indexed budgets expire in queue
	close(release)
	s.Close()
	for _, f := range futures {
		if !f.Ready() {
			t.Fatal("drain left a Future unresolved")
		}
	}
	m := s.Metrics()
	if m.Submitted != m.Completed+m.Rejected+m.Expired {
		t.Fatalf("identity broken: Submitted=%d Completed=%d Rejected=%d Expired=%d",
			m.Submitted, m.Completed, m.Rejected, m.Expired)
	}
	if m.Expired == 0 {
		t.Fatal("no request expired; the scenario did not exercise the shed path")
	}
}

// TestAbandonedWaitLateCompletion is the -race satellite: a Future.Wait
// abandoned via context cancellation followed by the request's late
// completion must neither leak nor panic, the Future must stay
// waitable, and the expired/cancelled accounting must move exactly
// once per request. Hammer-shaped so the race detector sees many
// interleavings of abandon vs complete.
func TestAbandonedWaitLateCompletion(t *testing.T) {
	s := MustNew(Options{Backend: "go", Threads: 2, Shards: 2, QueueDepth: 256})
	defer s.Close()
	sub := s.Submitter()
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			release := make(chan struct{})
			f, err := Do(sub, context.Background(), func() (int, error) {
				<-release
				return i, nil
			}, Req{})
			if err != nil {
				t.Error(err)
				return
			}
			ctx, cancel := context.WithCancel(context.Background())
			abandoned := make(chan struct{})
			go func() {
				defer close(abandoned)
				if _, err := f.Wait(ctx); !errors.Is(err, context.Canceled) {
					t.Errorf("abandoned Wait = %v, want context.Canceled", err)
				}
			}()
			cancel()
			<-abandoned
			close(release) // late completion after the waiter left
			if v, err := f.Wait(context.Background()); err != nil || v != i {
				t.Errorf("re-Wait = (%v, %v), want (%d, nil)", v, err, i)
			}
		}(i)
	}
	wg.Wait()
	m := s.Metrics()
	if m.Submitted != uint64(n) || m.Completed != uint64(n) {
		t.Fatalf("Submitted=%d Completed=%d, want both %d", m.Submitted, m.Completed, n)
	}
	if m.Expired != 0 || m.Canceled != 0 {
		t.Fatalf("Expired=%d Canceled=%d, want 0: abandoning a Wait must not touch request accounting",
			m.Expired, m.Canceled)
	}
}
