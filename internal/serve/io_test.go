package serve

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
)

// TestIOParkedDiscountsAdmission is the serving half of the async-I/O
// contract: with MaxInFlight=1, eight handlers that each park for 50ms
// must overlap — the gate meters executor occupancy, and a parked
// handler occupies none — rather than serialize into ~400ms. The
// mid-flight snapshot also pins the IOParked metric.
func TestIOParkedDiscountsAdmission(t *testing.T) {
	s := MustNew(Options{
		Backend: "go", Threads: 2, Shards: 1,
		QueueDepth: 64, MaxInFlight: 1, Batch: 8,
	})
	defer s.Close()
	sub := s.Submitter()
	const n = 8
	const wait = 50 * time.Millisecond
	start := time.Now()
	futs := make([]*Future[int], n)
	for i := range futs {
		f, err := DoULT(sub, context.Background(), func(c core.Ctx) (int, error) {
			core.Sleep(c, wait)
			return 1, nil
		}, Req{})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	sawParked := false
	for time.Since(start) < 2*wait && !sawParked {
		m := s.Metrics()
		if m.IOParked > 1 {
			sawParked = true
		}
		time.Sleep(time.Millisecond)
	}
	for _, f := range futs {
		if _, err := f.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if !sawParked {
		t.Errorf("never observed IOParked > 1 with %d parked handlers in flight", n)
	}
	// Serialized execution would take n*wait = 400ms; allow generous
	// slack for slow CI while still ruling out serialization.
	if elapsed > 6*wait {
		t.Fatalf("8 parked 50ms waits took %v — handlers serialized on the in-flight gate", elapsed)
	}
}

// TestDrainWaitsForParkedHandlers: Close must not finalize a shard
// while a handler is parked on the reactor — the drain loop watches
// total inflight, parked included.
func TestDrainWaitsForParkedHandlers(t *testing.T) {
	s := MustNew(Options{
		Backend: "go", Threads: 2, Shards: 1,
		QueueDepth: 8, MaxInFlight: 4, Batch: 4,
	})
	sub := s.Submitter()
	f, err := DoULT(sub, context.Background(), func(c core.Ctx) (int, error) {
		core.Sleep(c, 50*time.Millisecond)
		return 7, nil
	}, Req{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let it launch and park
	s.Close()
	v, err := f.Wait(context.Background())
	if err != nil || v != 7 {
		t.Fatalf("parked handler resolved (%v, %v) across drain, want (7, nil)", v, err)
	}
}
