package serve

import (
	"strings"
	"testing"
	"time"

	"repro/internal/microbench"
)

func p99Sample(p99 time.Duration) Metrics {
	return Metrics{Latency: microbench.Stats{P99: p99}}
}

// TestAnomalyP99Spike: a stable baseline, then a 20x spike — the
// detector must stay quiet through warmup and fire exactly once.
func TestAnomalyP99Spike(t *testing.T) {
	var d anomalyDetector
	for i := 0; i < 10; i++ {
		if reason, fired := d.observe(p99Sample(5 * time.Millisecond)); fired {
			t.Fatalf("fired on steady baseline sample %d: %s", i, reason)
		}
	}
	reason, fired := d.observe(p99Sample(100 * time.Millisecond))
	if !fired || !strings.HasPrefix(reason, "p99-spike") {
		t.Fatalf("spike not detected: fired=%v reason=%q", fired, reason)
	}
	// Cooldown: the continuing spike must not re-fire immediately.
	for i := 0; i < cooldownSamples; i++ {
		if reason, fired := d.observe(p99Sample(100 * time.Millisecond)); fired {
			t.Fatalf("re-fired during cooldown sample %d: %s", i, reason)
		}
	}
}

// TestAnomalySpikeBelowFloorIgnored: a quiet server whose P99 wobbles
// in the microseconds never trips, however large the ratio.
func TestAnomalySpikeBelowFloorIgnored(t *testing.T) {
	var d anomalyDetector
	for i := 0; i < 10; i++ {
		d.observe(p99Sample(50 * time.Microsecond))
	}
	if reason, fired := d.observe(p99Sample(2 * time.Millisecond)); fired {
		t.Fatalf("fired below the absolute floor: %s", reason)
	}
}

// TestAnomalyBaselineAbsorbsDrift: latency that grows gradually is a
// regime change, not a spike — the EWMA must track it.
func TestAnomalyBaselineAbsorbsDrift(t *testing.T) {
	var d anomalyDetector
	p99 := 5 * time.Millisecond
	for i := 0; i < 200; i++ {
		if reason, fired := d.observe(p99Sample(p99)); fired {
			t.Fatalf("fired on gradual drift at sample %d (p99=%v): %s", i, p99, reason)
		}
		p99 += p99 / 50 // +2% per sample, ~50x over the run
	}
}

// TestAnomalySustainedSaturation: the Saturated counter growing for
// satRunLength consecutive samples fires; an isolated burst does not.
func TestAnomalySustainedSaturation(t *testing.T) {
	var d anomalyDetector
	// One-sample burst, then flat: no anomaly.
	d.observe(Metrics{Saturated: 10})
	for i := 0; i < 5; i++ {
		if reason, fired := d.observe(Metrics{Saturated: 10}); fired {
			t.Fatalf("fired on a one-sample burst: %s", reason)
		}
	}
	// Growth on every sample: fires once the run length is reached.
	sat := uint64(10)
	fired := false
	var reason string
	for i := 0; i < satRunLength+1 && !fired; i++ {
		sat += 5
		reason, fired = d.observe(Metrics{Saturated: sat})
	}
	if !fired || !strings.HasPrefix(reason, "sustained-saturation") {
		t.Fatalf("sustained saturation not detected: fired=%v reason=%q", fired, reason)
	}
}

// TestAnomalyWatchdogFires wires a real server with an aggressive
// interval and drives saturation through the detector's run length,
// asserting the OnAnomaly callback lands.
func TestAnomalyWatchdogFires(t *testing.T) {
	hit := make(chan string, 1)
	s := MustNew(Options{
		Backend: "go", Threads: 1, Shards: 1,
		QueueDepth: 1, MaxInFlight: 1, Batch: 1,
		AnomalyInterval: 2 * time.Millisecond,
		OnAnomaly: func(reason string, m Metrics) {
			select {
			case hit <- reason:
			default:
			}
		},
	})
	defer s.Close()

	// Hold the single execution slot so every TrySubmit below saturates,
	// growing the Saturated counter continuously across watchdog samples.
	release := make(chan struct{})
	started := make(chan struct{})
	_, err := Do(s.Submitter(), nil, func() (int, error) {
		close(started)
		<-release
		return 0, nil
	}, Req{NonBlocking: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	defer close(release)

	timeout := time.After(5 * time.Second)
	for {
		select {
		case reason := <-hit:
			if !strings.HasPrefix(reason, "sustained-saturation") {
				t.Fatalf("anomaly reason = %q, want sustained-saturation", reason)
			}
			return
		case <-timeout:
			t.Fatal("watchdog never fired under sustained saturation")
		default:
			// Keep the rejection counter growing; the first submission
			// or two may still fit the depth-1 queue, the rest saturate.
			_, _ = Do(s.Submitter(), nil, func() (int, error) { return 0, nil }, Req{NonBlocking: true})
			time.Sleep(200 * time.Microsecond)
		}
	}
}
