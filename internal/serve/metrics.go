package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/microbench"
)

// metrics is one shard's internal counter and latency-sample state.
type metrics struct {
	submitted atomic.Uint64 // accepted into the queue
	completed atomic.Uint64 // request bodies finished (incl. failed/panicked)
	saturated atomic.Uint64 // fast-rejected with ErrSaturated
	canceled  atomic.Uint64 // cancelled while queued or blocked submitting
	rejected  atomic.Uint64 // failed with ErrClosed at shutdown
	failed    atomic.Uint64 // bodies that returned an error
	panicked  atomic.Uint64 // bodies that panicked

	// lats is a ring of recent end-to-end request latencies
	// (submission to completion), the window Metrics summarizes.
	mu   sync.Mutex
	lats []time.Duration
	next int
	wrap bool
}

// observe records one completed request's latency.
func (m *metrics) observe(lat time.Duration) {
	m.completed.Add(1)
	m.mu.Lock()
	if len(m.lats) > 0 {
		m.lats[m.next] = lat
		m.next++
		if m.next == len(m.lats) {
			m.next = 0
			m.wrap = true
		}
	}
	m.mu.Unlock()
}

// window snapshots the latency ring in no particular order.
func (m *metrics) window() []time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.next
	if m.wrap {
		n = len(m.lats)
	}
	out := make([]time.Duration, n)
	copy(out, m.lats[:n])
	return out
}

// Metrics is a point-in-time snapshot of serving counters and recent
// latency distribution — the throughput/queue-depth/percentile view a
// serving deployment watches. Server.Metrics returns the aggregate
// across shards (Shard == -1); Server.ShardMetrics returns one entry
// per shard.
type Metrics struct {
	// Backend is the serving backend's registered name.
	Backend string
	// Shard is the shard index this snapshot covers, or -1 for the
	// whole-server aggregate.
	Shard int
	// Shards is the server's shard count.
	Shards int
	// Router is the name of the router spreading unkeyed submissions.
	Router string
	// Submitted counts requests accepted into the queue.
	Submitted uint64
	// Completed counts finished request bodies, including those that
	// returned errors or panicked.
	Completed uint64
	// Saturated counts submissions fast-rejected with ErrSaturated.
	Saturated uint64
	// Canceled counts submissions cancelled by their context while
	// queued or while blocked on a full queue.
	Canceled uint64
	// Rejected counts queued requests failed with ErrClosed at shutdown.
	Rejected uint64
	// Failed counts bodies that returned a non-nil error.
	Failed uint64
	// Panicked counts bodies whose panic was captured into the Future.
	Panicked uint64
	// QueueDepth is the number of requests waiting in the submission
	// queue right now.
	QueueDepth int
	// InFlight is the number of launched-but-unfinished work units.
	InFlight int
	// IOParked is how many of InFlight are currently parked on the
	// async-I/O reactor: launched, unfinished, but holding no executor.
	// The admission gate discounts them, so InFlight may legitimately
	// exceed MaxInFlight by up to IOParked.
	IOParked int
	// Uptime is the time since the server started.
	Uptime time.Duration
	// Throughput is Completed divided by Uptime, in requests/second.
	Throughput float64
	// Latency summarizes the recent latency window: mean, RSD and the
	// P50/P95/P99 percentiles (zero-valued until a request completes).
	// Latency is end-to-end — measured from the submission call, so for
	// blocking submits it includes time spent waiting out backpressure,
	// not just queued-to-completion service time.
	Latency microbench.Stats
}
