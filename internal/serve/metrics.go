package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/microbench"
	"repro/internal/queue"
)

// histBounds are the fixed exponential upper bounds of the latency
// histogram, chosen to straddle the paper's microsecond-scale work units
// and real I/O-bound request times. The histogram has one more bucket
// than bounds: the final, implicit bound is +Inf.
var histBounds = [...]time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 250 * time.Microsecond,
	500 * time.Microsecond, time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, time.Second, 2500 * time.Millisecond,
}

const numHistBuckets = len(histBounds) + 1

// HistBounds returns the latency histogram's bucket upper bounds. The
// returned slice has len(Metrics.Hist)-1 entries; the last histogram
// bucket is +Inf. Callers must not modify it.
func HistBounds() []time.Duration { return histBounds[:] }

// metrics is one shard's internal counter and latency-sample state.
type metrics struct {
	submitted atomic.Uint64 // accepted into the queue
	completed atomic.Uint64 // request bodies finished (incl. failed/panicked)
	saturated atomic.Uint64 // fast-rejected with ErrSaturated
	canceled  atomic.Uint64 // cancelled/expired while blocked submitting (never accepted)
	expired   atomic.Uint64 // shed before launch: deadline passed or ctx cancelled while queued
	rejected  atomic.Uint64 // failed with ErrClosed at shutdown
	failed    atomic.Uint64 // bodies that returned an error
	panicked  atomic.Uint64 // bodies that panicked
	steals    atomic.Uint64 // unkeyed requests this shard stole from another shard's queue

	// hist counts completed requests per latency bucket (non-cumulative
	// here; Metrics.Hist exposes the Prometheus-style cumulative form).
	// latSum accumulates every observed latency for the _sum series.
	hist   [numHistBuckets]atomic.Uint64
	latSum atomic.Int64

	// lats is a ring of recent end-to-end request latencies
	// (submission to completion), the window Metrics summarizes.
	mu   sync.Mutex
	lats []time.Duration
	next int
	wrap bool
}

// observe records one completed request's latency.
func (m *metrics) observe(lat time.Duration) {
	m.completed.Add(1)
	b := 0
	for b < len(histBounds) && lat > histBounds[b] {
		b++
	}
	m.hist[b].Add(1)
	m.latSum.Add(int64(lat))
	m.mu.Lock()
	if len(m.lats) > 0 {
		m.lats[m.next] = lat
		m.next++
		if m.next == len(m.lats) {
			m.next = 0
			m.wrap = true
		}
	}
	m.mu.Unlock()
}

// histSnapshot reads the bucket counters once and returns the cumulative
// (Prometheus "le"-style) histogram: entry i counts requests with
// latency <= histBounds[i], the final entry counts everything observed.
func (m *metrics) histSnapshot() []uint64 {
	out := make([]uint64, numHistBuckets)
	var run uint64
	for i := range m.hist {
		run += m.hist[i].Load()
		out[i] = run
	}
	return out
}

// window snapshots the latency ring in no particular order.
func (m *metrics) window() []time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.next
	if m.wrap {
		n = len(m.lats)
	}
	out := make([]time.Duration, n)
	copy(out, m.lats[:n])
	return out
}

// Metrics is a point-in-time snapshot of serving counters and recent
// latency distribution — the throughput/queue-depth/percentile view a
// serving deployment watches. Server.Metrics returns the aggregate
// across shards (Shard == -1); Server.ShardMetrics returns one entry
// per shard.
type Metrics struct {
	// Backend is the serving backend's registered name.
	Backend string
	// Shard is the shard index this snapshot covers, or -1 for the
	// whole-server aggregate.
	Shard int
	// Shards is the routing set's current size — base shards plus live
	// dynamic shards. With autoscaling armed it moves between
	// Options.Shards and AutoScale.MaxShards; the per-shard slice from
	// ShardMetrics may be longer (scaled-down shards keep reporting).
	Shards int
	// Router is the name of the router spreading unkeyed submissions.
	Router string
	// Submitted counts requests accepted into the queue.
	Submitted uint64
	// Completed counts finished request bodies, including those that
	// returned errors or panicked.
	Completed uint64
	// Saturated counts submissions fast-rejected with ErrSaturated.
	Saturated uint64
	// Canceled counts submissions that gave up while blocked on a full
	// queue — context cancelled or deadline passed before acceptance.
	// They were never accepted, so they sit outside the drain identity.
	Canceled uint64
	// Expired counts accepted requests shed from the queue before
	// launch: their deadline passed (ErrExpired) or their submission
	// context was cancelled while they waited. Together with Completed
	// and Rejected they account for every accepted request:
	// Submitted == Completed + Rejected + Expired after a drain.
	Expired uint64
	// Rejected counts queued requests failed with ErrClosed at shutdown.
	Rejected uint64
	// Failed counts bodies that returned a non-nil error.
	Failed uint64
	// Panicked counts bodies whose panic was captured into the Future.
	Panicked uint64
	// Steals counts unkeyed queued requests this shard took from
	// another shard's queue and ran itself (Options.Steal). Thief-side:
	// a stolen request stays Submitted on the shard that accepted it
	// and becomes Completed here, so per-shard Submitted and Completed
	// drift apart under stealing while the aggregate drain identity
	// holds exactly.
	Steals uint64
	// ScaleUps and ScaleDowns count autoscaler routing-set changes over
	// the server's lifetime (aggregate view only; zero per shard).
	ScaleUps   uint64
	ScaleDowns uint64
	// QueueDepth is the number of requests waiting in the submission
	// queue right now.
	QueueDepth int
	// InFlight is the number of launched-but-unfinished work units.
	InFlight int
	// IOParked is how many of InFlight are currently parked on the
	// async-I/O reactor: launched, unfinished, but holding no executor.
	// The admission gate discounts them, so InFlight may legitimately
	// exceed MaxInFlight by up to IOParked.
	IOParked int
	// Uptime is the time since the server started.
	Uptime time.Duration
	// Throughput is Completed divided by Uptime, in requests/second.
	Throughput float64
	// Latency summarizes the recent latency window: mean, RSD and the
	// P50/P95/P99 percentiles (zero-valued until a request completes).
	// Latency is end-to-end — measured from the submission call, so for
	// blocking submits it includes time spent waiting out backpressure,
	// not just queued-to-completion service time.
	Latency microbench.Stats
	// Hist is the cumulative end-to-end latency histogram over the
	// server's whole lifetime (unlike Latency, which covers only the
	// recent window): Hist[i] counts completed requests with latency
	// <= HistBounds()[i], and the final entry — the +Inf bucket — counts
	// every completion. Cumulative counts map directly onto Prometheus
	// histogram "le" series.
	Hist []uint64
	// LatencySum is the sum of every completed request's end-to-end
	// latency, the _sum companion to Hist.
	LatencySum time.Duration
	// Sched snapshots the shard runtime's scheduler pool counters —
	// pushes, pops, steals, contended operations, empty polls — summed
	// across the backend's executors (and across shards in the
	// aggregate view). Zero-valued on backends without instrumented
	// pools.
	Sched queue.Counts
}
