package serve

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/prom"
)

// TestWritePromExposition drives a real server, renders the scrape
// page, and checks it against the line-format linter plus the values
// the counters must carry — the golden contract lwtserved's /metrics
// serves.
func TestWritePromExposition(t *testing.T) {
	s := MustNew(Options{Backend: "go", Threads: 2, Shards: 2})
	defer s.Close()
	const n = 10
	for i := 0; i < n; i++ {
		f, err := Do(s.Submitter(), context.Background(), func() (int, error) { return i, nil }, Req{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	agg, per := s.Snapshot()
	var b strings.Builder
	if _, err := WriteProm(&b, View{Aggregate: agg, Shards: per}); err != nil {
		t.Fatal(err)
	}
	page := b.String()

	if err := prom.Lint(strings.NewReader(page)); err != nil {
		t.Fatalf("exposition fails lint: %v\npage:\n%s", err, page)
	}

	// Families the scrape must carry.
	for _, fam := range []string{
		"lwt_serve_info", "lwt_serve_uptime_seconds",
		"lwt_serve_shards", "lwt_serve_scale_events_total",
		"lwt_serve_submitted_total", "lwt_serve_completed_total",
		"lwt_serve_steals_total",
		"lwt_serve_queue_depth", "lwt_serve_inflight", "lwt_serve_ioparked",
		"lwt_serve_latency_seconds", "lwt_sched_pushes_total", "lwt_sched_steals_total",
		"lwt_serve_expired_total",
	} {
		if !strings.Contains(page, "# TYPE "+fam+" ") {
			t.Errorf("family %s missing from exposition", fam)
		}
	}

	// Completed across shards must sum to n.
	var completed float64
	for _, m := range per {
		v, ok := prom.Value(page, "lwt_serve_completed_total",
			map[string]string{"backend": "go", "shard": shardLabel(m.Shard)})
		if !ok {
			t.Fatalf("no completed_total sample for shard %d", m.Shard)
		}
		completed += v
	}
	if completed != n {
		t.Fatalf("completed across shards = %v, want %d", completed, n)
	}

	// Histogram +Inf bucket and _count must also account for every
	// completion, and _sum must be positive.
	var inf, cnt, sum float64
	for _, m := range per {
		labels := map[string]string{"shard": shardLabel(m.Shard)}
		if v, ok := prom.Value(page, "lwt_serve_latency_seconds_bucket",
			map[string]string{"shard": shardLabel(m.Shard), "le": "+Inf"}); ok {
			inf += v
		}
		if v, ok := prom.Value(page, "lwt_serve_latency_seconds_count", labels); ok {
			cnt += v
		}
		if v, ok := prom.Value(page, "lwt_serve_latency_seconds_sum", labels); ok {
			sum += v
		}
	}
	if inf != n || cnt != n {
		t.Fatalf("histogram +Inf=%v count=%v, want both %d", inf, cnt, n)
	}
	if sum <= 0 {
		t.Fatalf("latency sum = %v, want > 0", sum)
	}

	// The aggregate view agrees with the page.
	if agg.Completed != n {
		t.Fatalf("aggregate Completed = %d, want %d", agg.Completed, n)
	}
	if agg.Hist[len(agg.Hist)-1] != n {
		t.Fatalf("aggregate +Inf bucket = %d, want %d", agg.Hist[len(agg.Hist)-1], n)
	}
	if agg.Sched.Pushes == 0 {
		t.Fatal("aggregate Sched.Pushes = 0, want > 0 after 10 requests")
	}
}

func shardLabel(i int) string {
	if i < 0 {
		return "-1"
	}
	return string(rune('0' + i))
}

// TestHistogramBuckets pins observe()'s bucket placement: a value equal
// to a bound lands in that bound's bucket (le is <=), one past it in
// the next.
func TestHistogramBuckets(t *testing.T) {
	var m metrics
	m.lats = make([]time.Duration, 4)
	m.observe(histBounds[0])     // exactly the first bound -> bucket 0
	m.observe(histBounds[0] + 1) // just past it -> bucket 1
	m.observe(10 * time.Second)  // beyond every bound -> +Inf bucket
	h := m.histSnapshot()
	if h[0] != 1 {
		t.Fatalf("bucket 0 cumulative = %d, want 1", h[0])
	}
	if h[1] != 2 {
		t.Fatalf("bucket 1 cumulative = %d, want 2", h[1])
	}
	if got := h[len(h)-1]; got != 3 {
		t.Fatalf("+Inf cumulative = %d, want 3", got)
	}
	if m.latSum.Load() != int64(histBounds[0]+histBounds[0]+1+10*time.Second) {
		t.Fatalf("latSum = %d", m.latSum.Load())
	}
	if len(h) != len(HistBounds())+1 {
		t.Fatalf("histogram has %d buckets for %d bounds", len(h), len(HistBounds()))
	}
}
