package serve

import (
	"io"
	"strconv"

	"repro/internal/prom"
)

// View pairs one server's aggregate and per-shard metrics snapshot for
// Prometheus export — the two values Server.Snapshot returns.
type View struct {
	Aggregate Metrics
	Shards    []Metrics
}

// WriteProm renders serving metrics as one Prometheus text exposition
// page: lifetime counters, instantaneous gauges, the end-to-end latency
// histogram, and the backend scheduler-pool counters, all labeled
// {backend, shard} so PromQL can sum or break down freely. It accepts
// several views (lwtserved runs one server per backend) and keeps each
// metric family's samples in a single contiguous block across all of
// them, as the exposition format requires. Counter samples are
// per-shard only — emitting aggregates alongside would double sum()
// queries.
func WriteProm(w io.Writer, views ...View) (int64, error) {
	pw := prom.NewWriter()
	pw.Family("lwt_serve_info", "Serving pool identity; value is always 1.", prom.Gauge)
	for _, v := range views {
		pw.Sample("lwt_serve_info", 1,
			"backend", v.Aggregate.Backend, "router", v.Aggregate.Router,
			"shards", strconv.Itoa(v.Aggregate.Shards))
	}
	pw.Family("lwt_serve_uptime_seconds", "Time since the server started.", prom.Gauge)
	for _, v := range views {
		pw.Sample("lwt_serve_uptime_seconds", v.Aggregate.Uptime.Seconds(),
			"backend", v.Aggregate.Backend)
	}
	pw.Family("lwt_serve_shards", "Shards currently in the routing set (autoscaling moves it).", prom.Gauge)
	for _, v := range views {
		pw.Sample("lwt_serve_shards", float64(v.Aggregate.Shards),
			"backend", v.Aggregate.Backend)
	}
	pw.Family("lwt_serve_scale_events_total", "Autoscaler routing-set changes, by direction.", prom.Counter)
	for _, v := range views {
		pw.Sample("lwt_serve_scale_events_total", float64(v.Aggregate.ScaleUps),
			"backend", v.Aggregate.Backend, "direction", "up")
		pw.Sample("lwt_serve_scale_events_total", float64(v.Aggregate.ScaleDowns),
			"backend", v.Aggregate.Backend, "direction", "down")
	}

	counters := []struct {
		name, help string
		get        func(Metrics) uint64
	}{
		{"lwt_serve_submitted_total", "Requests accepted into a shard queue.", func(m Metrics) uint64 { return m.Submitted }},
		{"lwt_serve_completed_total", "Request bodies finished, including failures and panics.", func(m Metrics) uint64 { return m.Completed }},
		{"lwt_serve_saturated_total", "Submissions fast-rejected with ErrSaturated.", func(m Metrics) uint64 { return m.Saturated }},
		{"lwt_serve_canceled_total", "Submissions that gave up while blocked on a full queue (never accepted).", func(m Metrics) uint64 { return m.Canceled }},
		{"lwt_serve_expired_total", "Accepted requests shed before launch: deadline passed or context cancelled while queued.", func(m Metrics) uint64 { return m.Expired }},
		{"lwt_serve_rejected_total", "Queued requests failed with ErrClosed at shutdown.", func(m Metrics) uint64 { return m.Rejected }},
		{"lwt_serve_failed_total", "Request bodies that returned an error.", func(m Metrics) uint64 { return m.Failed }},
		{"lwt_serve_panicked_total", "Request bodies whose panic was captured.", func(m Metrics) uint64 { return m.Panicked }},
		{"lwt_serve_steals_total", "Unkeyed queued requests this shard stole from another shard and ran.", func(m Metrics) uint64 { return m.Steals }},
	}
	gauges := []struct {
		name, help string
		get        func(Metrics) int
	}{
		{"lwt_serve_queue_depth", "Requests waiting in the shard's submission queue.", func(m Metrics) int { return m.QueueDepth }},
		{"lwt_serve_inflight", "Launched-but-unfinished work units on the shard.", func(m Metrics) int { return m.InFlight }},
		{"lwt_serve_ioparked", "In-flight work units parked on the async-I/O reactor.", func(m Metrics) int { return m.IOParked }},
	}
	sched := []struct {
		name, help string
		get        func(Metrics) uint64
	}{
		{"lwt_sched_pushes_total", "Work units pushed into the backend's scheduler pools.", func(m Metrics) uint64 { return m.Sched.Pushes }},
		{"lwt_sched_pops_total", "Work units popped by their owning executor.", func(m Metrics) uint64 { return m.Sched.Pops }},
		{"lwt_sched_steals_total", "Work units stolen from another executor's pool.", func(m Metrics) uint64 { return m.Sched.Steals }},
		{"lwt_sched_contended_total", "Pool operations that hit contention.", func(m Metrics) uint64 { return m.Sched.Contended }},
		{"lwt_sched_empty_pops_total", "Pool polls that found nothing to run.", func(m Metrics) uint64 { return m.Sched.EmptyPops }},
	}

	shardLabels := func(m Metrics) []string {
		return []string{"backend", m.Backend, "shard", strconv.Itoa(m.Shard)}
	}
	for _, c := range counters {
		pw.Family(c.name, c.help, prom.Counter)
		for _, v := range views {
			for _, m := range v.Shards {
				pw.Sample(c.name, float64(c.get(m)), shardLabels(m)...)
			}
		}
	}
	for _, g := range gauges {
		pw.Family(g.name, g.help, prom.Gauge)
		for _, v := range views {
			for _, m := range v.Shards {
				pw.Sample(g.name, float64(g.get(m)), shardLabels(m)...)
			}
		}
	}
	for _, c := range sched {
		pw.Family(c.name, c.help, prom.Counter)
		for _, v := range views {
			for _, m := range v.Shards {
				pw.Sample(c.name, float64(c.get(m)), shardLabels(m)...)
			}
		}
	}

	pw.Family("lwt_serve_latency_seconds",
		"End-to-end request latency, submission call to completion.", prom.Histogram)
	bounds := make([]float64, len(HistBounds()))
	for i, b := range HistBounds() {
		bounds[i] = b.Seconds()
	}
	for _, v := range views {
		for _, m := range v.Shards {
			if len(m.Hist) == 0 {
				continue
			}
			pw.Histogram("lwt_serve_latency_seconds", bounds, m.Hist,
				m.LatencySum.Seconds(), shardLabels(m)...)
		}
	}
	return pw.WriteTo(w)
}
