package serve

import (
	"time"

	"repro/internal/trace"
)

// DefaultScaleInterval is the autoscaler's sample period when
// AutoScale.Interval is unset.
const DefaultScaleInterval = 500 * time.Millisecond

// scaleLaneExec is the flight-recorder lane id of the autoscaler's
// trace ring — far below the per-shard lanes at -(shard+1), so dumps
// never confuse the two.
const scaleLaneExec = -4096

// Autoscaler tuning. Like the anomaly detector's, the constants are
// deliberately deterministic — fixed run lengths, no randomness — so a
// given metrics sequence always scales the same way and the unit tests
// can drive the detector sample by sample.
const (
	// growRunLength: consecutive hot samples before the pool grows by
	// one shard. One full queue is backpressure working; several sample
	// periods of it is sustained saturation.
	growRunLength = 3
	// shrinkRunLength: consecutive cold samples before the pool sheds
	// one dynamic shard — longer than growRunLength so the pool grows
	// eagerly under pressure and shrinks reluctantly (scale-down
	// hysteresis).
	shrinkRunLength = 8
	// scaleCooldown: samples to hold after a scale event, letting the
	// depth and P99 signals absorb the new shard count before the next
	// decision.
	scaleCooldown = 4
	// scaleSpikeFactor: P99 above this multiple of its own EWMA
	// baseline marks a sample hot even before the queues back up —
	// gentler than the anomaly watchdog's spikeFactor because scaling
	// should engage before the incident, not report it.
	scaleSpikeFactor = 2
)

// AutoScale configures the shard autoscaler. The zero value leaves it
// off: the autoscaler arms only when MaxShards exceeds Options.Shards.
//
// The controller samples the aggregate Metrics every Interval and feeds
// a deterministic detector: sustained saturation — the queues' depth
// signal backing up past the per-shard in-flight cap, ErrSaturated
// rejections growing, or P99 spiking over its EWMA baseline — for
// growRunLength consecutive samples grows the routing set by one shard;
// a pool that stays cold for shrinkRunLength samples shrinks by one.
//
// Growth never remaps keys: keyed submissions hash over the base
// Options.Shards only, so dynamic shards carry unkeyed traffic. Shrink
// is a graceful routing-level drain — the shard leaves the routing set
// first, then its pump runs down whatever it had accepted; because the
// pump keeps owning its queues afterwards (parked warm, zero CPU), a
// submission that raced the scale-down is served, not stranded, and a
// later grow revives the shard instead of paying another backend
// initialization. Every shard, in the set or out, is finalized at
// Close.
type AutoScale struct {
	// MaxShards is the routing set's ceiling. <= Options.Shards means
	// autoscaling off.
	MaxShards int
	// Interval is the controller's sample period; <= 0 means
	// DefaultScaleInterval.
	Interval time.Duration
}

// scaleDetector classifies a stream of aggregate Metrics samples into
// grow/shrink decisions. Not safe for concurrent use; the controller
// goroutine owns it.
type scaleDetector struct {
	baseline      time.Duration // EWMA of recent-window P99
	warm          int           // nonzero-P99 samples seen so far
	lastSaturated uint64
	hotRun        int
	coldRun       int
	cooldown      int
}

// observe feeds one aggregate sample and returns +1 (grow), -1
// (shrink) or 0 (hold). maxInFlight is the per-shard Options value the
// depth signal is measured against.
func (d *scaleDetector) observe(m Metrics, maxInFlight int) int {
	shards := m.Shards
	if shards < 1 {
		shards = 1
	}
	// The p2c routers balance on queued+inflight depth; the controller
	// reads the same signal per shard. Queued work at or past the
	// in-flight cap means the executors cannot absorb arrivals.
	depth := float64(m.QueueDepth) / float64(shards)
	satGrew := m.Saturated > d.lastSaturated
	d.lastSaturated = m.Saturated

	p99 := m.Latency.P99
	// A high P99 with no live work behind it is a fossil: the latency
	// window only refreshes on completions, so once the pool goes idle
	// the last loaded regime's P99 freezes in place. Treating it as a
	// spike would wedge the detector — spiking samples skip the baseline
	// update, so the baseline could never catch up and cold (which
	// requires !spiking) could never accumulate.
	idle := m.QueueDepth == 0 && m.InFlight == 0
	spiking := !idle && d.warm >= spikeWarmup && d.baseline > 0 && p99 > scaleSpikeFactor*d.baseline
	// Baseline update mirrors the anomaly detector: skip the spiking
	// sample itself, absorb everything else, so a regime change stops
	// looking hot once the pool has scaled to it.
	if p99 > 0 && !spiking {
		d.warm++
		if d.baseline == 0 {
			d.baseline = p99
		} else {
			d.baseline += (p99 - d.baseline) >> ewmaShift
		}
	}

	hot := satGrew || depth >= float64(maxInFlight) || (spiking && m.QueueDepth > 0)
	cold := m.QueueDepth == 0 && !satGrew && !spiking &&
		float64(m.InFlight)/float64(shards) < float64(maxInFlight)/2
	switch {
	case hot:
		d.hotRun++
		d.coldRun = 0
	case cold:
		d.coldRun++
		d.hotRun = 0
	default:
		d.hotRun, d.coldRun = 0, 0
	}

	if d.cooldown > 0 {
		d.cooldown--
		return 0
	}
	switch {
	case d.hotRun >= growRunLength:
		d.hotRun = 0
		d.cooldown = scaleCooldown
		return 1
	case d.coldRun >= shrinkRunLength:
		d.coldRun = 0
		d.cooldown = scaleCooldown
		return -1
	}
	return 0
}

// watchScale is the autoscaler's controller goroutine: it samples the
// aggregate Metrics every Scale.Interval, feeds the detector, and
// applies its verdicts. Started by New only when Scale.MaxShards >
// Shards; exits when the server shuts down.
func (s *Server) watchScale() {
	tick := time.NewTicker(s.opts.Scale.Interval)
	defer tick.Stop()
	var det scaleDetector
	for {
		select {
		case <-s.quit:
			return
		case <-tick.C:
			switch det.observe(s.Metrics(), s.opts.MaxInFlight) {
			case 1:
				s.grow()
			case -1:
				s.shrink()
			}
		}
	}
}

// grow adds one shard to the routing set: a previously scaled-down
// shard is revived in place (its runtime stayed warm), otherwise a new
// shard and backend runtime are started. Reports whether the set grew.
func (s *Server) grow() bool {
	s.scaleMu.Lock()
	defer s.scaleMu.Unlock()
	if s.closed.Load() {
		return false
	}
	cur := *s.set.Load()
	if len(cur) >= s.opts.Scale.MaxShards {
		return false
	}
	var sh *shard
	for _, c := range s.all {
		if !inSet(cur, c) {
			sh = c // revive: drained earlier, runtime still live
			break
		}
	}
	if sh == nil {
		sh = s.newShard(len(s.all))
		ready := make(chan error, 1)
		go sh.pump(ready)
		if err := <-ready; err != nil {
			// The pump closed sh.done and the ring on its error path;
			// the shard was never published anywhere.
			return false
		}
		s.all = append(s.all, sh)
	}
	next := append(append(make([]*shard, 0, len(cur)+1), cur...), sh)
	s.set.Store(&next)
	s.scaleUps.Add(1)
	s.scaleRing.Instant(trace.KindUser, uint64(len(next)))
	return true
}

// shrink removes the newest dynamic shard from the routing set. Base
// shards never leave — they are the keyed-affinity domain. The removed
// shard's pump is not told anything: with no new traffic routed to it,
// it runs down its queues and parks; see AutoScale for why it stays
// warm. Reports whether the set shrank.
func (s *Server) shrink() bool {
	s.scaleMu.Lock()
	defer s.scaleMu.Unlock()
	if s.closed.Load() {
		return false
	}
	cur := *s.set.Load()
	if len(cur) <= s.base {
		return false
	}
	i := len(cur) - 1
	if cur[i].id < s.base {
		return false // base shard at the tail; routing set never reorders, so this cannot happen
	}
	next := append(make([]*shard, 0, i), cur[:i]...)
	s.set.Store(&next)
	s.scaleDowns.Add(1)
	s.scaleRing.Instant(trace.KindUser, uint64(len(next)))
	return true
}

func inSet(set []*shard, sh *shard) bool {
	for _, v := range set {
		if v == sh {
			return true
		}
	}
	return false
}
