package serve

import (
	"context"
	"fmt"
)

// PanicError is the error a Future resolves to when the request body
// panicked on a backend executor. The panic is contained inside the work
// unit — it never unwinds into the backend's scheduler — and surfaces to
// the submitter as a value instead.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error renders the panic value.
func (e *PanicError) Error() string {
	return fmt.Sprintf("serve: request panicked: %v", e.Value)
}

// Future is the result handle returned by a submission: the Table II API
// has join (completion) but no way to return a value from a work unit,
// so the serving layer adds one. A Future resolves exactly once, to a
// value, an application error, or a *PanicError; rejected submissions
// never produce a Future.
type Future[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// newFuture returns an unresolved Future.
func newFuture[T any]() *Future[T] {
	return &Future[T]{done: make(chan struct{})}
}

// complete resolves the Future. It must be called exactly once; the
// channel close publishes val and err to waiters.
func (f *Future[T]) complete(val T, err error) {
	f.val, f.err = val, err
	close(f.done)
}

// Done returns a channel that is closed once the result is available,
// for use in select loops.
func (f *Future[T]) Done() <-chan struct{} { return f.done }

// Ready reports, without blocking, whether the result is available.
func (f *Future[T]) Ready() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Wait blocks until the result is available or ctx is cancelled. On
// cancellation it returns ctx.Err(); the request itself keeps running
// and the Future can be waited on again.
func (f *Future[T]) Wait(ctx context.Context) (T, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// MustWait blocks until the result is available and panics on error —
// the examples' shorthand.
func (f *Future[T]) MustWait() T {
	<-f.done
	if f.err != nil {
		panic(f.err)
	}
	return f.val
}
