package serve

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// keyFor finds an affinity key that ShardOf pins to the wanted shard.
func keyFor(t *testing.T, s *Server, shard int) string {
	t.Helper()
	for i := 0; i < 1<<16; i++ {
		k := fmt.Sprintf("key-%d", i)
		if s.ShardOf(k) == shard {
			return k
		}
	}
	t.Fatalf("no key hashes to shard %d", shard)
	return ""
}

// TestStealRescuesUnkeyedBacklog is the steal contract, deterministically:
// shard 0's single executor is blocked by a keyed gate request, unkeyed
// requests forced onto shard 0 pile up behind it, and the idle shard 1
// must steal and complete that backlog — while the keyed requests queued
// behind the same gate provably never move: they cannot complete until
// the gate releases shard 0's executor, because no other shard may touch
// them.
func TestStealRescuesUnkeyedBacklog(t *testing.T) {
	s := MustNew(Options{
		Backend: "go", Threads: 1, Shards: 2,
		Router: fixedRouter(0), QueueDepth: 64, MaxInFlight: 1, Batch: 4,
		Steal: true, StealInterval: 100 * time.Microsecond,
	})
	sub := s.Submitter()
	key := keyFor(t, s, 0)

	started := make(chan struct{})
	release := make(chan struct{})
	gate, err := Do(sub, context.Background(), func() (int, error) {
		close(started)
		<-release
		return -1, nil
	}, Req{Key: key}) // keyed: unstealable, so it pins shard 0's executor
	if err != nil {
		t.Fatal(err)
	}
	<-started // shard 0's only in-flight slot is now occupied

	// Keyed requests behind the gate: same key, same shard, and only
	// shard 0's pump may launch them.
	var keyed []*Future[int]
	for i := 0; i < 3; i++ {
		f, err := Do(sub, nil, func() (int, error) { return i, nil },
			Req{Key: key, NonBlocking: true})
		if err != nil {
			t.Fatalf("keyed %d: %v", i, err)
		}
		keyed = append(keyed, f)
	}
	// Unkeyed backlog, all routed onto the blocked shard 0.
	const backlog = 8
	var unkeyed []*Future[int]
	for i := 0; i < backlog; i++ {
		f, err := Do(sub, nil, func() (int, error) { return i, nil },
			Req{NonBlocking: true})
		if err != nil {
			t.Fatalf("unkeyed %d: %v", i, err)
		}
		unkeyed = append(unkeyed, f)
	}

	// With shard 0 blocked, only stealing can complete the unkeyed
	// backlog.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, f := range unkeyed {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatalf("unkeyed %d not rescued by steal: %v", i, err)
		}
	}
	// The keyed requests must still be waiting: the gate still holds
	// shard 0's executor, and no thief may drain a keyed queue.
	for i, f := range keyed {
		if f.Ready() {
			t.Fatalf("keyed request %d completed while its shard was blocked — affinity violated", i)
		}
	}
	for _, m := range s.ShardMetrics() {
		if m.Shard == 1 && m.Steals == 0 {
			t.Fatal("shard 1 reports zero steals after rescuing the backlog")
		}
	}

	close(release)
	if v, err := gate.Wait(ctx); err != nil || v != -1 {
		t.Fatalf("gate = %v, %v", v, err)
	}
	for i, f := range keyed {
		if _, err := f.Wait(ctx); err != nil {
			t.Fatalf("keyed %d after release: %v", i, err)
		}
	}
	s.Close()

	agg, per := s.Snapshot()
	// Stolen requests count Submitted at the accepting shard and
	// Completed at the thief, so shard 1 — which accepted nothing — must
	// show exactly its steals as completions.
	for _, m := range per {
		if m.Shard != 1 {
			continue
		}
		if m.Submitted != 0 {
			t.Fatalf("shard 1 Submitted = %d, want 0 (fixed router + keyed pin)", m.Submitted)
		}
		if m.Steals != backlog {
			t.Fatalf("shard 1 Steals = %d, want %d", m.Steals, backlog)
		}
		if m.Completed != m.Steals {
			t.Fatalf("shard 1 Completed = %d, want its %d steals", m.Completed, m.Steals)
		}
	}
	if agg.Steals != backlog {
		t.Fatalf("aggregate Steals = %d, want %d", agg.Steals, backlog)
	}
	if agg.Submitted != agg.Completed+agg.Rejected+agg.Expired {
		t.Fatalf("drain identity broken under stealing: submitted=%d completed=%d rejected=%d expired=%d",
			agg.Submitted, agg.Completed, agg.Rejected, agg.Expired)
	}
}

// TestStealZipfSkewDrainIdentity hammers a stealing pool with the
// skewed open-loop shape the adaptive runtime exists for — zipf-keyed
// session traffic concentrating on a few hot shards, unkeyed traffic
// forced onto shard 0 — from concurrent producers, and checks that the
// drain identity holds exactly across the whole pool afterwards. Run
// under -race this is the steal path's memory-model test.
func TestStealZipfSkewDrainIdentity(t *testing.T) {
	s := MustNew(Options{
		Backend: "go", Threads: 1, Shards: 4,
		Router: fixedRouter(0), QueueDepth: 128, MaxInFlight: 2,
		Steal: true, StealInterval: 50 * time.Microsecond,
	})
	sub := s.Submitter()

	const producers = 4
	const perProducer = 250
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			zipf := rand.NewZipf(rng, 1.5, 1, 63)
			for i := 0; i < perProducer; i++ {
				req := Req{}
				if i%2 == 0 {
					req.Key = fmt.Sprintf("sess-%d", zipf.Uint64())
				}
				f, err := Do(sub, context.Background(), func() (int, error) {
					time.Sleep(50 * time.Microsecond)
					return i, nil
				}, req)
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if i%16 == 0 { // occasionally close the loop
					f.MustWait()
				}
			}
		}(int64(p))
	}
	wg.Wait()
	s.Close()

	agg, _ := s.Snapshot()
	if want := uint64(producers * perProducer); agg.Submitted != want {
		t.Fatalf("Submitted = %d, want %d", agg.Submitted, want)
	}
	if agg.Submitted != agg.Completed+agg.Rejected+agg.Expired {
		t.Fatalf("drain identity broken: submitted=%d completed=%d rejected=%d expired=%d",
			agg.Submitted, agg.Completed, agg.Rejected, agg.Expired)
	}
	// All unkeyed traffic targets shard 0 while its executor sleeps, so
	// the other shards had both the reason and the idle time to steal.
	if agg.Steals == 0 {
		t.Fatal("no steals under maximally skewed unkeyed load")
	}
}
