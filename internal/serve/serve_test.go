package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// gated returns a single-shard server sized so that exactly one request
// can be in flight, a request body that blocks on the gate, and the gate
// itself — the deterministic setup for saturation and cancellation
// tests.
func gated(t *testing.T) (*Server, *Submitter, chan struct{}, chan struct{}) {
	t.Helper()
	s, err := New(Options{
		Backend: "go", Threads: 1, Shards: 1,
		QueueDepth: 2, MaxInFlight: 1, Batch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	release := make(chan struct{})
	return s, s.Submitter(), started, release
}

func TestSubmitReturnsValue(t *testing.T) {
	s := MustNew(Options{Backend: "go", Threads: 2})
	defer s.Close()
	f, err := Do(s.Submitter(), context.Background(), func() (int, error) { return 41 + 1, nil }, Req{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.Wait(context.Background())
	if err != nil || v != 42 {
		t.Fatalf("Wait = (%v, %v), want (42, nil)", v, err)
	}
	if !f.Ready() {
		t.Fatal("resolved future not Ready")
	}
}

func TestSubmitPropagatesError(t *testing.T) {
	s := MustNew(Options{Backend: "go", Threads: 2})
	defer s.Close()
	boom := errors.New("boom")
	f, err := Do(s.Submitter(), context.Background(), func() (int, error) { return 0, boom }, Req{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Wait(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Wait err = %v, want boom", err)
	}
	if got := s.Metrics().Failed; got != 1 {
		t.Fatalf("Failed = %d, want 1", got)
	}
}

func TestSubmitCapturesPanic(t *testing.T) {
	s := MustNew(Options{Backend: "go", Threads: 2})
	defer s.Close()
	f, err := Do(s.Submitter(), context.Background(), func() (int, error) { panic("kaboom") }, Req{})
	if err != nil {
		t.Fatal(err)
	}
	_, werr := f.Wait(context.Background())
	var pe *PanicError
	if !errors.As(werr, &pe) {
		t.Fatalf("Wait err = %v, want *PanicError", werr)
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("PanicError = {%v, %d bytes of stack}", pe.Value, len(pe.Stack))
	}
	if got := s.Metrics().Panicked; got != 1 {
		t.Fatalf("Panicked = %d, want 1", got)
	}
	// The server must keep serving after a panic.
	f2, err := Do(s.Submitter(), context.Background(), func() (string, error) { return "alive", nil }, Req{})
	if err != nil {
		t.Fatal(err)
	}
	if v := f2.MustWait(); v != "alive" {
		t.Fatalf("after panic: %q", v)
	}
}

func TestTrySubmitSaturates(t *testing.T) {
	s, sub, started, release := gated(t)
	defer func() { close(release); s.Close() }()
	// Occupy the single in-flight slot.
	if _, err := Do(sub, context.Background(), func() (int, error) {
		close(started)
		<-release
		return 0, nil
	}, Req{}); err != nil {
		t.Fatal(err)
	}
	<-started // pump has launched it; nothing else will launch now
	// Fill the depth-2 queue.
	for i := 0; i < 2; i++ {
		if _, err := Do(sub, nil, func() (int, error) { return i, nil }, Req{NonBlocking: true}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	// Saturation must fast-reject, not block or deadlock.
	if _, err := Do(sub, nil, func() (int, error) { return 0, nil }, Req{NonBlocking: true}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("TrySubmit on full queue = %v, want ErrSaturated", err)
	}
	if got := s.Metrics().Saturated; got == 0 {
		t.Fatal("Saturated counter not bumped")
	}
}

func TestBlockingSubmitHonorsContext(t *testing.T) {
	s, sub, started, release := gated(t)
	defer func() { close(release); s.Close() }()
	if _, err := Do(sub, context.Background(), func() (int, error) {
		close(started)
		<-release
		return 0, nil
	}, Req{}); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 2; i++ {
		if _, err := Do(sub, nil, func() (int, error) { return 0, nil }, Req{NonBlocking: true}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := Do(sub, ctx, func() (int, error) { return 0, nil }, Req{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked Submit = %v, want DeadlineExceeded", err)
	}
}

func TestQueuedRequestCancelled(t *testing.T) {
	s, sub, started, release := gated(t)
	defer s.Close()
	if _, err := Do(sub, context.Background(), func() (int, error) {
		close(started)
		<-release
		return 0, nil
	}, Req{}); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	f, err := Do(sub, ctx, func() (int, error) { return 7, nil }, Req{})
	if err != nil {
		t.Fatal(err) // queue has room: accepted, but cannot launch yet
	}
	cancel()
	close(release) // pump proceeds, sees the dead context at launch
	if _, werr := f.Wait(context.Background()); !errors.Is(werr, context.Canceled) {
		t.Fatalf("cancelled queued request = %v, want context.Canceled", werr)
	}
}

func TestSubmitULTSpawnsChildren(t *testing.T) {
	s := MustNew(Options{Backend: "go", Threads: 2})
	defer s.Close()
	f, err := DoULT(s.Submitter(), context.Background(), func(c core.Ctx) (int, error) {
		var left, right int
		h := c.ULTCreate(func(core.Ctx) { left = 20 })
		right = 22
		c.Join(h)
		return left + right, nil
	}, Req{})
	if err != nil {
		t.Fatal(err)
	}
	if v := f.MustWait(); v != 42 {
		t.Fatalf("nested result = %d, want 42", v)
	}
}

func TestCloseRunsAcceptedWork(t *testing.T) {
	s := MustNew(Options{Backend: "go", Threads: 2})
	var ran atomic.Int64
	futs := make([]*Future[int], 50)
	for i := range futs {
		f, err := Do(s.Submitter(), context.Background(), func() (int, error) {
			ran.Add(1)
			return i, nil
		}, Req{})
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = f
	}
	s.Close()
	for i, f := range futs {
		if v, err := f.Wait(context.Background()); err != nil || v != i {
			t.Fatalf("future %d after Close = (%v, %v)", i, v, err)
		}
	}
	if ran.Load() != 50 {
		t.Fatalf("ran = %d, want 50", ran.Load())
	}
	// Closed server rejects immediately.
	if _, err := Do(s.Submitter(), context.Background(), func() (int, error) { return 0, nil }, Req{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if _, err := Do(s.Submitter(), nil, func() (int, error) { return 0, nil }, Req{NonBlocking: true}); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmit after Close = %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestConcurrentProducers(t *testing.T) {
	s := MustNew(Options{Backend: "go", Threads: 4, QueueDepth: 64, MaxInFlight: 32})
	defer s.Close()
	sub := s.Submitter()
	const producers, per = 8, 100
	var sum atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f, err := Do(sub, context.Background(), func() (int, error) {
					sum.Add(1)
					return i, nil
				}, Req{})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if v, err := f.Wait(context.Background()); err != nil || v != i {
					t.Errorf("wait = (%v, %v), want (%d, nil)", v, err, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if sum.Load() != producers*per {
		t.Fatalf("sum = %d, want %d", sum.Load(), producers*per)
	}
	m := s.Metrics()
	if m.Completed != producers*per {
		t.Fatalf("Completed = %d, want %d", m.Completed, producers*per)
	}
	if m.Latency.Reps == 0 || m.Latency.P50 <= 0 || m.Latency.P99 < m.Latency.P50 {
		t.Fatalf("latency summary implausible: %+v", m.Latency)
	}
	if m.Throughput <= 0 {
		t.Fatalf("Throughput = %v", m.Throughput)
	}
}

func TestTracerRecordsRequestIntervals(t *testing.T) {
	rec := trace.NewRecorder(128)
	// TraceSample 1 defeats the request sampler: every interval emits.
	s := MustNew(Options{Backend: "go", Threads: 2, Tracer: rec, TraceSample: 1})
	for i := 0; i < 5; i++ {
		f, err := Do(s.Submitter(), context.Background(), func() (int, error) { return i, nil }, Req{})
		if err != nil {
			t.Fatal(err)
		}
		f.MustWait()
	}
	s.Close()
	sum := trace.Summarize(rec.Events())
	if got := sum.Counts[trace.KindUser]; got != 5 {
		t.Fatalf("KindUser events = %d, want 5", got)
	}
}

func TestUnknownBackendFailsFast(t *testing.T) {
	if _, err := New(Options{Backend: "no-such-runtime"}); !errors.Is(err, core.ErrUnknownBackend) {
		t.Fatalf("New = %v, want ErrUnknownBackend", err)
	}
}

func TestMetricsString(t *testing.T) {
	s := MustNew(Options{Backend: "go", Threads: 1})
	defer s.Close()
	f, _ := Do(s.Submitter(), context.Background(), func() (int, error) { return 1, nil }, Req{})
	f.MustWait()
	m := s.Metrics()
	if m.Backend != "go" || m.Submitted != 1 || m.Completed != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if s.Backend() != "go" {
		t.Fatalf("Backend() = %q", s.Backend())
	}
	_ = fmt.Sprintf("%+v", m)
}
