package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fixedRouter always picks one shard — the deterministic stand-in for
// re-route and spread tests.
type fixedRouter int

func (fixedRouter) Name() string                  { return "fixed" }
func (f fixedRouter) Pick(int, func(int) int) int { return int(f) }

func TestShardedServerSpreadsRoundRobin(t *testing.T) {
	s := MustNew(Options{
		Backend: "go", Threads: 1, Shards: 2,
		Router: &RoundRobin{}, QueueDepth: 256,
	})
	defer s.Close()
	sub := s.Submitter()
	const n = 100
	futs := make([]*Future[int], 0, n)
	for i := 0; i < n; i++ {
		f, err := Do(sub, context.Background(), func() (int, error) { return i, nil }, Req{})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for i, f := range futs {
		if v, err := f.Wait(context.Background()); err != nil || v != i {
			t.Fatalf("future %d = (%v, %v)", i, v, err)
		}
	}
	sm := s.ShardMetrics()
	if len(sm) != 2 {
		t.Fatalf("ShardMetrics len = %d, want 2", len(sm))
	}
	// Round-robin with never-full queues is an exact 50/50 split.
	if sm[0].Submitted != n/2 || sm[1].Submitted != n/2 {
		t.Fatalf("round-robin split = %d/%d, want %d/%d",
			sm[0].Submitted, sm[1].Submitted, n/2, n/2)
	}
	for i, m := range sm {
		if m.Shard != i || m.Shards != 2 || m.Router != "roundrobin" {
			t.Fatalf("shard %d metrics labels = %+v", i, m)
		}
	}
	agg := s.Metrics()
	if agg.Shard != -1 || agg.Submitted != n || agg.Completed != n {
		t.Fatalf("aggregate = shard %d, submitted %d, completed %d", agg.Shard, agg.Submitted, agg.Completed)
	}
}

// TestAggregateSumsShards pins Metrics() == sum over ShardMetrics() for
// every counter.
func TestAggregateSumsShards(t *testing.T) {
	s := MustNew(Options{
		Backend: "go", Threads: 1, Shards: 4,
		Router: &RoundRobin{}, QueueDepth: 64,
	})
	defer s.Close()
	sub := s.Submitter()
	boom := errors.New("boom")
	for i := 0; i < 40; i++ {
		var f *Future[int]
		var err error
		switch i % 3 {
		case 0:
			f, err = Do(sub, context.Background(), func() (int, error) { return i, nil }, Req{})
		case 1:
			f, err = Do(sub, context.Background(), func() (int, error) { return 0, boom }, Req{})
		default:
			f, err = Do(sub, context.Background(), func() (int, error) { panic("pow") }, Req{})
		}
		if err != nil {
			t.Fatal(err)
		}
		f.Wait(context.Background())
	}
	agg := s.Metrics()
	var sub2, comp, fail, pan uint64
	for _, m := range s.ShardMetrics() {
		sub2 += m.Submitted
		comp += m.Completed
		fail += m.Failed
		pan += m.Panicked
	}
	if agg.Submitted != sub2 || agg.Completed != comp || agg.Failed != fail || agg.Panicked != pan {
		t.Fatalf("aggregate %+v != shard sums (%d, %d, %d, %d)", agg, sub2, comp, fail, pan)
	}
	if agg.Submitted != 40 || agg.Failed != 13 || agg.Panicked != 13 {
		t.Fatalf("counters = %d submitted, %d failed, %d panicked", agg.Submitted, agg.Failed, agg.Panicked)
	}
}

// TestKeyedAffinityStable hammers SubmitKeyed with 10k requests over a
// handful of keys and verifies every one of them landed on the shard
// the key hashes to — per-shard submitted counters must match the
// per-key totals exactly.
func TestKeyedAffinityStable(t *testing.T) {
	const shards = 4
	s := MustNew(Options{
		Backend: "go", Threads: 1, Shards: shards, QueueDepth: 1024,
	})
	defer s.Close()
	sub := s.Submitter()
	keys := []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}
	want := make([]uint64, shards)
	const total = 10_000
	futs := make([]*Future[int], 0, total)
	for i := 0; i < total; i++ {
		key := keys[i%len(keys)]
		want[s.ShardOf(key)]++
		f, err := Do(sub, context.Background(), func() (int, error) { return i, nil }, Req{Key: key})
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, f)
	}
	for i, f := range futs {
		if v, err := f.Wait(context.Background()); err != nil || v != i {
			t.Fatalf("keyed future %d = (%v, %v)", i, v, err)
		}
	}
	for i, m := range s.ShardMetrics() {
		if m.Submitted != want[i] {
			t.Fatalf("shard %d saw %d keyed submissions, want %d", i, m.Submitted, want[i])
		}
	}
}

// TestReRouteOnSaturation is the two-level admission contract: when the
// router's pick is full, one unkeyed TrySubmit re-routes to the
// least-loaded shard before ErrSaturated surfaces — and a keyed
// TrySubmit never does.
func TestReRouteOnSaturation(t *testing.T) {
	// The router always targets shard 0; shard 1 stays empty.
	s := MustNew(Options{
		Backend: "go", Threads: 1, Shards: 2,
		Router: fixedRouter(0), QueueDepth: 1, MaxInFlight: 1, Batch: 1,
	})
	sub := s.Submitter()
	started := make(chan struct{})
	release := make(chan struct{})
	defer func() { s.Close() }()
	// Occupy shard 0's in-flight slot, then its single queue slot.
	if _, err := Do(sub, context.Background(), func() (int, error) {
		close(started)
		<-release
		return 0, nil
	}, Req{}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := Do(sub, nil, func() (int, error) { return 0, nil }, Req{NonBlocking: true}); err != nil {
		t.Fatalf("fill shard 0 queue: %v", err)
	}
	// Shard 0 is saturated; the re-route must land this one on shard 1.
	f, err := Do(sub, nil, func() (int, error) { return 42, nil }, Req{NonBlocking: true})
	if err != nil {
		t.Fatalf("TrySubmit with shard 0 full = %v, want re-route to shard 1", err)
	}
	if v := f.MustWait(); v != 42 {
		t.Fatalf("re-routed result = %d", v)
	}
	if sm := s.ShardMetrics(); sm[1].Submitted == 0 {
		t.Fatal("re-routed request did not land on shard 1")
	}
	// A keyed submission pinned to the saturated shard must NOT
	// re-route: affinity is the contract.
	pinned := ""
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		if s.ShardOf(k) == 0 {
			pinned = k
			break
		}
	}
	if pinned == "" {
		t.Fatal("no test key hashes to shard 0")
	}
	if _, err := Do(sub, nil, func() (int, error) { return 0, nil }, Req{Key: pinned, NonBlocking: true}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("keyed TrySubmit on full pinned shard = %v, want ErrSaturated", err)
	}
	// Saturate shard 1 as well: now the re-route is exhausted too.
	occupied := make(chan struct{})
	release2 := make(chan struct{})
	defer close(release2)
	if _, err := Do(sub, nil, func() (int, error) {
		close(occupied)
		<-release2
		return 0, nil
	}, Req{NonBlocking: true}); err != nil {
		t.Fatalf("occupy shard 1: %v", err)
	}
	<-occupied
	if _, err := Do(sub, nil, func() (int, error) { return 0, nil }, Req{NonBlocking: true}); err != nil {
		t.Fatalf("fill shard 1 queue: %v", err)
	}
	if _, err := Do(sub, nil, func() (int, error) { return 0, nil }, Req{NonBlocking: true}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("TrySubmit with every shard full = %v, want ErrSaturated", err)
	}
	if s.Metrics().Saturated == 0 {
		t.Fatal("Saturated counter not bumped")
	}
	close(release)
}

// TestCloseVsSubmitRace is the regression for the drain rewrite: Close
// racing concurrent blocking and non-blocking submits must leave no
// accepted Future unresolved and no producer blocked — every submission
// either errors at the call or resolves. Run under -race in CI.
func TestCloseVsSubmitRace(t *testing.T) {
	for round := 0; round < 25; round++ {
		s := MustNew(Options{
			Backend: "go", Threads: 1, Shards: 2,
			QueueDepth: 8, MaxInFlight: 4, Batch: 2,
		})
		sub := s.Submitter()
		var mu sync.Mutex
		var accepted []*Future[int]
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					var f *Future[int]
					var err error
					switch i % 3 {
					case 0:
						f, err = Do(sub, nil, func() (int, error) { return i, nil }, Req{NonBlocking: true})
					case 1:
						f, err = Do(sub, context.Background(), func() (int, error) { return i, nil }, Req{})
					default:
						f, err = Do(sub, context.Background(), func() (int, error) { return i, nil }, Req{Key: "key"})
					}
					if err != nil {
						if errors.Is(err, ErrClosed) {
							return // server closed mid-race: the expected exit
						}
						if errors.Is(err, ErrSaturated) {
							continue
						}
						t.Errorf("submit: %v", err)
						return
					}
					mu.Lock()
					accepted = append(accepted, f)
					mu.Unlock()
				}
			}(p)
		}
		// Let the producers get going, then slam the door.
		time.Sleep(time.Duration(round%5) * 100 * time.Microsecond)
		s.Close()
		close(stop)
		wg.Wait()
		// Every accepted Future must resolve — to a value or ErrClosed —
		// without hanging.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		for i, f := range accepted {
			if _, err := f.Wait(ctx); err != nil && !errors.Is(err, ErrClosed) {
				t.Fatalf("round %d: future %d resolved to %v", round, i, err)
			}
			if !f.Ready() {
				t.Fatalf("round %d: future %d not resolved after Close", round, i)
			}
		}
		cancel()
	}
}

// TestDrainTimeout: past the deadline, queued-but-unlaunched requests
// resolve to ErrClosed instead of running, while launched work still
// completes.
func TestDrainTimeout(t *testing.T) {
	s := MustNew(Options{
		Backend: "go", Threads: 1, Shards: 1,
		QueueDepth: 16, MaxInFlight: 1, Batch: 1,
		DrainTimeout: 30 * time.Millisecond,
	})
	sub := s.Submitter()
	started := make(chan struct{})
	release := make(chan struct{})
	running, err := Do(sub, context.Background(), func() (int, error) {
		close(started)
		<-release
		return 7, nil
	}, Req{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// These five sit in the queue behind the blocked in-flight slot.
	queued := make([]*Future[int], 5)
	for i := range queued {
		f, err := Do(sub, nil, func() (int, error) { return i, nil }, Req{NonBlocking: true})
		if err != nil {
			t.Fatal(err)
		}
		queued[i] = f
	}
	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	// The drain deadline passes while the gate is held: the queued
	// requests must resolve to ErrClosed without running.
	for i, f := range queued {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		_, werr := f.Wait(ctx)
		cancel()
		if !errors.Is(werr, ErrClosed) {
			t.Fatalf("queued future %d past drain deadline = %v, want ErrClosed", i, werr)
		}
	}
	// The in-flight request always runs to completion.
	close(release)
	if v := running.MustWait(); v != 7 {
		t.Fatalf("in-flight result = %d", v)
	}
	<-closed
	if m := s.Metrics(); m.Rejected != 5 || m.Completed != 1 {
		t.Fatalf("rejected=%d completed=%d, want 5/1", m.Rejected, m.Completed)
	}
}

// TestKeyedBlockingParksOnPinnedShard: a blocking keyed submit waits on
// its pinned shard rather than escaping to an emptier one, and
// completes once the shard frees up.
func TestKeyedBlockingParksOnPinnedShard(t *testing.T) {
	s := MustNew(Options{
		Backend: "go", Threads: 1, Shards: 2,
		Router: fixedRouter(0), QueueDepth: 1, MaxInFlight: 1, Batch: 1,
	})
	defer s.Close()
	sub := s.Submitter()
	key := ""
	for _, k := range []string{"a", "b", "c", "d", "e", "f"} {
		if s.ShardOf(k) == 0 {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no test key hashes to shard 0")
	}
	started := make(chan struct{})
	release := make(chan struct{})
	if _, err := Do(sub, context.Background(), func() (int, error) {
		close(started)
		<-release
		return 0, nil
	}, Req{Key: key}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := Do(sub, nil, func() (int, error) { return 0, nil }, Req{Key: key, NonBlocking: true}); err != nil {
		t.Fatalf("fill pinned queue: %v", err)
	}
	// Blocking keyed submit must park (shard 1 is empty and must not be
	// used) until the pinned shard drains.
	done := make(chan *Future[int], 1)
	go func() {
		f, err := Do(sub, context.Background(), func() (int, error) { return 5, nil }, Req{Key: key})
		if err != nil {
			t.Errorf("blocking keyed submit: %v", err)
			done <- nil
			return
		}
		done <- f
	}()
	select {
	case <-done:
		t.Fatal("blocking keyed submit returned while pinned shard was full")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	f := <-done
	if f == nil {
		t.FailNow()
	}
	if v := f.MustWait(); v != 5 {
		t.Fatalf("parked keyed result = %d", v)
	}
	if sm := s.ShardMetrics(); sm[1].Submitted != 0 {
		t.Fatalf("keyed traffic leaked to shard 1: %d submissions", sm[1].Submitted)
	}
}
