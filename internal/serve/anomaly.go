package serve

import (
	"fmt"
	"time"
)

// DefaultAnomalyInterval is the watchdog's sample period when
// Options.AnomalyInterval is unset.
const DefaultAnomalyInterval = time.Second

// Anomaly detector tuning. The detector is deliberately deterministic —
// fixed factors and run lengths, no randomness — so that a given metrics
// sequence always classifies the same way and the unit tests can drive
// it sample by sample.
const (
	// spikeFactor: P99 must exceed the EWMA baseline by this multiple.
	spikeFactor = 4
	// spikeFloor: and must also exceed this absolute floor, so a quiet
	// server whose P99 wobbles between 40µs and 200µs never trips.
	spikeFloor = 10 * time.Millisecond
	// spikeWarmup: samples with a nonzero P99 needed to seed the
	// baseline before spike detection arms.
	spikeWarmup = 5
	// ewmaShift: baseline += (p99 - baseline) >> ewmaShift. Shift 3
	// (alpha 1/8) makes the baseline track minutes-scale drift while
	// staying far behind a seconds-scale spike.
	ewmaShift = 3
	// satRunLength: consecutive samples in which the Saturated counter
	// grew before sustained saturation fires. One full queue is
	// backpressure working; three sample periods of it is an incident.
	satRunLength = 3
	// cooldownSamples: samples to stay quiet after firing, so one
	// incident produces one dump, not one per tick.
	cooldownSamples = 30
)

// anomalyDetector classifies a stream of Metrics samples into discrete
// anomaly events. Two triggers:
//
//   - P99 spike: the recent-window P99 exceeds spikeFactor times its
//     own EWMA baseline and the absolute spikeFloor.
//   - Sustained saturation: ErrSaturated rejections grew in each of
//     satRunLength consecutive samples.
//
// After either fires the detector holds a cooldown before it can fire
// again, and the baseline keeps updating throughout so a regime change
// (permanently slower requests) stops looking anomalous once absorbed.
// Not safe for concurrent use; the watchdog goroutine owns it.
type anomalyDetector struct {
	baseline      time.Duration // EWMA of recent-window P99
	warm          int           // nonzero-P99 samples seen so far
	lastSaturated uint64
	satRun        int
	cooldown      int
}

// observe feeds one Metrics sample and reports whether it completes an
// anomaly, with a short machine-greppable reason.
func (d *anomalyDetector) observe(m Metrics) (reason string, fired bool) {
	p99 := m.Latency.P99

	// Saturation run-length accounting happens every sample, cooldown
	// or not, so a rejection burst that spans the cooldown boundary is
	// judged on its full length.
	growing := m.Saturated > d.lastSaturated
	d.lastSaturated = m.Saturated
	if growing {
		d.satRun++
	} else {
		d.satRun = 0
	}

	spiking := d.warm >= spikeWarmup && d.baseline > 0 &&
		p99 > spikeFloor && p99 > spikeFactor*d.baseline

	// Baseline update: skip the sample that is itself a spike (it would
	// drag the baseline toward the anomaly), absorb everything else.
	if p99 > 0 && !spiking {
		d.warm++
		if d.baseline == 0 {
			d.baseline = p99
		} else {
			d.baseline += (p99 - d.baseline) >> ewmaShift
		}
	}

	if d.cooldown > 0 {
		d.cooldown--
		return "", false
	}
	switch {
	case spiking:
		d.cooldown = cooldownSamples
		return fmt.Sprintf("p99-spike: %v against baseline %v", p99, d.baseline), true
	case d.satRun >= satRunLength:
		d.cooldown = cooldownSamples
		d.satRun = 0
		return fmt.Sprintf("sustained-saturation: rejections grew %d samples running (total %d)",
			satRunLength, m.Saturated), true
	}
	return "", false
}

// watchAnomalies is the watchdog goroutine: it samples the aggregate
// Metrics every AnomalyInterval, feeds the detector, and invokes
// Options.OnAnomaly when an anomaly fires. Started by New only when
// OnAnomaly is set; exits when the server shuts down.
func (s *Server) watchAnomalies() {
	iv := s.opts.AnomalyInterval
	if iv <= 0 {
		iv = DefaultAnomalyInterval
	}
	tick := time.NewTicker(iv)
	defer tick.Stop()
	var det anomalyDetector
	for {
		select {
		case <-s.quit:
			return
		case <-tick.C:
			m := s.Metrics()
			if reason, ok := det.observe(m); ok {
				s.opts.OnAnomaly(reason, m)
			}
		}
	}
}
