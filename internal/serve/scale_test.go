package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/microbench"
	"repro/internal/topo"
)

// TestScaleDetectorVerdicts drives the autoscale detector sample by
// sample — it is deterministic by design — through its three regimes:
// sustained depth pressure grows, sustained cold shrinks, and the
// cooldown separates consecutive decisions.
func TestScaleDetectorVerdicts(t *testing.T) {
	var d scaleDetector
	const maxInFlight = 2
	hot := Metrics{Shards: 1, QueueDepth: 10, InFlight: maxInFlight}
	cold := Metrics{Shards: 2, QueueDepth: 0, InFlight: 0}

	for i := 1; i < growRunLength; i++ {
		if v := d.observe(hot, maxInFlight); v != 0 {
			t.Fatalf("hot sample %d: verdict %d, want 0 (run not complete)", i, v)
		}
	}
	if v := d.observe(hot, maxInFlight); v != 1 {
		t.Fatalf("hot sample %d: verdict %d, want grow", growRunLength, v)
	}
	// Cooldown absorbs the next scaleCooldown samples even though the
	// pressure persists.
	for i := 0; i < scaleCooldown; i++ {
		if v := d.observe(hot, maxInFlight); v != 0 {
			t.Fatalf("cooldown sample %d: verdict %d, want 0", i, v)
		}
	}
	// Hot run kept accumulating through the cooldown, so the next hot
	// sample may fire again.
	if v := d.observe(hot, maxInFlight); v != 1 {
		t.Fatalf("post-cooldown hot sample: verdict %d, want grow", v)
	}

	d = scaleDetector{}
	for i := 1; i < shrinkRunLength; i++ {
		if v := d.observe(cold, maxInFlight); v != 0 {
			t.Fatalf("cold sample %d: verdict %d, want 0", i, v)
		}
	}
	if v := d.observe(cold, maxInFlight); v != -1 {
		t.Fatalf("cold sample %d: verdict %d, want shrink", shrinkRunLength, v)
	}
}

// TestScaleDetectorP99Spike pins the latency trigger: a P99 blowing past
// its own EWMA baseline marks samples hot even while the queues are
// shallower than the in-flight cap.
func TestScaleDetectorP99Spike(t *testing.T) {
	var d scaleDetector
	const maxInFlight = 100 // depth signal never trips in this test
	calm := Metrics{Shards: 1, QueueDepth: 0, InFlight: maxInFlight,
		Latency: microbench.Stats{P99: time.Millisecond}}
	spike := Metrics{Shards: 1, QueueDepth: 1, InFlight: maxInFlight,
		Latency: microbench.Stats{P99: 10 * time.Millisecond}}

	for i := 0; i < spikeWarmup+1; i++ {
		if v := d.observe(calm, maxInFlight); v != 0 {
			t.Fatalf("warmup sample %d: verdict %d, want 0", i, v)
		}
	}
	for i := 1; i < growRunLength; i++ {
		if v := d.observe(spike, maxInFlight); v != 0 {
			t.Fatalf("spike sample %d: verdict %d, want 0", i, v)
		}
	}
	if v := d.observe(spike, maxInFlight); v != 1 {
		t.Fatalf("spike sample %d: verdict %d, want grow", growRunLength, v)
	}
}

// TestScaleDetectorStaleP99ShrinksIdlePool pins the fossil-P99 rule: when
// load stops, the latency window freezes at the loaded regime's P99 —
// often more than spike-factor over the lagging EWMA baseline. An idle
// pool (empty queues, nothing in flight) must read as cold anyway, or
// the detector wedges: spiking samples skip the baseline update, so the
// baseline would never catch up and the pool would never shrink.
func TestScaleDetectorStaleP99ShrinksIdlePool(t *testing.T) {
	var d scaleDetector
	const maxInFlight = 1
	calm := Metrics{Shards: 2, QueueDepth: 0, InFlight: 1,
		Latency: microbench.Stats{P99: time.Millisecond}}
	for i := 0; i < spikeWarmup+1; i++ {
		if v := d.observe(calm, maxInFlight); v != 0 {
			t.Fatalf("warmup sample %d: verdict %d, want 0", i, v)
		}
	}
	// Load gone, but the frozen window still reports a P99 far over the
	// baseline the calm samples built.
	stale := Metrics{Shards: 2, QueueDepth: 0, InFlight: 0,
		Latency: microbench.Stats{P99: 100 * time.Millisecond}}
	for i := 1; i < shrinkRunLength; i++ {
		if v := d.observe(stale, maxInFlight); v != 0 {
			t.Fatalf("idle sample %d: verdict %d, want 0", i, v)
		}
	}
	if v := d.observe(stale, maxInFlight); v != -1 {
		t.Fatalf("idle sample %d: verdict %d, want shrink despite the stale P99", shrinkRunLength, v)
	}
}

// TestGrowShrinkRevive exercises the scaling mechanics directly: grow to
// the ceiling, serve through the widened set, shrink to the base floor,
// and grow again — which must revive the warm-parked shard rather than
// start another runtime. Drain accounting must balance across every
// shard ever started.
func TestGrowShrinkRevive(t *testing.T) {
	s := MustNew(Options{
		Backend: "go", Threads: 1, Shards: 2, QueueDepth: 64,
		// Interval is an hour: the controller exists but never acts, the
		// test drives grow/shrink itself.
		Scale: AutoScale{MaxShards: 4, Interval: time.Hour},
	})
	sub := s.Submitter()
	serve := func(n int) {
		var futs []*Future[int]
		for i := 0; i < n; i++ {
			f, err := Do(sub, context.Background(), func() (int, error) { return i, nil }, Req{})
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, f)
		}
		for _, f := range futs {
			f.MustWait()
		}
	}

	if got := s.NumShards(); got != 2 {
		t.Fatalf("base NumShards = %d, want 2", got)
	}
	if !s.grow() || !s.grow() {
		t.Fatal("grow to ceiling failed")
	}
	if s.grow() {
		t.Fatal("grow past MaxShards succeeded")
	}
	if got := s.NumShards(); got != 4 {
		t.Fatalf("NumShards after grow = %d, want 4", got)
	}
	serve(200) // traffic lands on dynamic shards too

	if !s.shrink() || !s.shrink() {
		t.Fatal("shrink to base failed")
	}
	if s.shrink() {
		t.Fatal("shrink below base succeeded — base shards are the keyed domain")
	}
	if got := s.NumShards(); got != 2 {
		t.Fatalf("NumShards after shrink = %d, want 2", got)
	}
	serve(100) // scaled-down shards must not strand anything

	if !s.grow() {
		t.Fatal("regrow failed")
	}
	s.scaleMu.Lock()
	started := len(s.all)
	s.scaleMu.Unlock()
	if started != 4 {
		t.Fatalf("%d shards ever started, want 4 — regrow must revive, not respawn", started)
	}
	serve(100)
	s.Close()

	agg, per := s.Snapshot()
	if agg.ScaleUps != 3 || agg.ScaleDowns != 2 {
		t.Fatalf("ScaleUps/Downs = %d/%d, want 3/2", agg.ScaleUps, agg.ScaleDowns)
	}
	if len(per) != 4 {
		t.Fatalf("per-shard metrics cover %d shards, want all 4 ever started", len(per))
	}
	if agg.Submitted != 400 {
		t.Fatalf("Submitted = %d, want 400", agg.Submitted)
	}
	if agg.Submitted != agg.Completed+agg.Rejected+agg.Expired {
		t.Fatalf("drain identity broken across scale cycle: submitted=%d completed=%d rejected=%d expired=%d",
			agg.Submitted, agg.Completed, agg.Rejected, agg.Expired)
	}
}

// TestAutoscaleGrowShrinkCycle is the controller end to end: sustained
// saturation of a one-shard pool must widen the routing set, and the
// load falling away must return it to the base — with the drain
// identity intact through the whole cycle. Run under -race this is the
// autoscaler's memory-model test.
func TestAutoscaleGrowShrinkCycle(t *testing.T) {
	s := MustNew(Options{
		Backend: "go", Threads: 1, Shards: 1,
		QueueDepth: 8, MaxInFlight: 1, Batch: 1,
		Steal: true, StealInterval: 100 * time.Microsecond,
		Scale: AutoScale{MaxShards: 3, Interval: 5 * time.Millisecond},
	})
	sub := s.Submitter()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := Do(sub, context.Background(), func() (int, error) {
					time.Sleep(time.Millisecond)
					return 0, nil
				}, Req{})
				if err != nil {
					return
				}
			}
		}()
	}

	waitFor := func(what string, timeout time.Duration, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (NumShards=%d)", what, s.NumShards())
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitFor("autoscaler to grow", 30*time.Second, func() bool { return s.NumShards() > 1 })
	close(stop)
	wg.Wait()
	waitFor("autoscaler to shrink back", 30*time.Second, func() bool { return s.NumShards() == 1 })
	s.Close()

	agg, _ := s.Snapshot()
	if agg.ScaleUps == 0 || agg.ScaleDowns == 0 {
		t.Fatalf("ScaleUps/Downs = %d/%d, want both > 0", agg.ScaleUps, agg.ScaleDowns)
	}
	if agg.Submitted != agg.Completed+agg.Rejected+agg.Expired {
		t.Fatalf("drain identity broken across autoscale cycle: submitted=%d completed=%d rejected=%d expired=%d",
			agg.Submitted, agg.Completed, agg.Rejected, agg.Expired)
	}
}

// TestTopoLayoutDerivesPoolShape pins the topology-to-pool mapping: one
// shard per physical core, one executor per hardware thread, with
// explicit Options winning over the derivation.
func TestTopoLayoutDerivesPoolShape(t *testing.T) {
	tp := topo.Topology{Sockets: 2, CoresPerSocket: 3, PUsPerCore: 2}
	if sh, th := TopoLayout(tp); sh != 6 || th != 2 {
		t.Fatalf("TopoLayout = %d shards x %d threads, want 6 x 2", sh, th)
	}

	s := MustNew(Options{Backend: "go", Topo: &tp, QueueDepth: 8})
	if got := s.NumShards(); got != 6 {
		t.Fatalf("NumShards = %d, want 6 from topology", got)
	}
	if lay := s.Layout(); lay == "" {
		t.Fatal("Layout() empty with Topo set")
	}
	s.Close()

	// Explicit fields override the derivation per field.
	s = MustNew(Options{Backend: "go", Topo: &tp, Shards: 2, QueueDepth: 8})
	defer s.Close()
	if got := s.NumShards(); got != 2 {
		t.Fatalf("NumShards = %d, want explicit 2 over topology's 6", got)
	}
}
