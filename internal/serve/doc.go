// Package serve is the request-serving subsystem over the unified LWT
// API: it turns any registered backend into a concurrent task-submission
// engine that arbitrary goroutines can drive, which the paper's reduced
// function set (Table II, Listing 4) cannot do on its own — work may only
// be created from the backend's main thread or from inside a running work
// unit, joins return no values, and nothing pushes back when producers
// outrun the runtime.
//
// The engine is a pool of shards. Each shard is an independent backend
// runtime behind its own bounded multi-producer queue and pump goroutine
// (the backend's main thread); a pluggable Router spreads unkeyed
// submissions across shards, and keyed submissions pin to one shard by
// hash so backend-local state stays warm:
//
//	producers (any goroutine)
//	  Submit / TrySubmit ──Router──▶ shard 0: queue ──▶ pump ──▶ runtime 0
//	  SubmitKeyed(key)   ──FNV-1a──▶ shard 1: queue ──▶ pump ──▶ runtime 1
//	        │                        …
//	        ▼                        shard N-1: queue ─▶ pump ──▶ runtime N-1
//	   Future[T]  ◀── complete(value, err, panic) ◀── any shard's executor
//
// Every runtime interaction — creation, yielding, finalization — happens
// on the owning shard's pump goroutine, so backends whose master must
// drive its own scheduler (Converse's return mode, §VIII-B1) serve
// traffic exactly like preemptive ones. Admission control is two-level:
// a full shard re-routes one submission once (to the least-loaded shard)
// before TrySubmit surfaces ErrSaturated, blocking Submit parks on the
// least-loaded shard, and Close is a graceful drain — admission stops,
// every shard runs down its queue (bounded by Options.DrainTimeout),
// and every accepted Future resolves.
//
// # Observability
//
// Server.Metrics returns one Metrics snapshot per shard plus an
// aggregate. The counters (Submitted, Completed, Saturated, Canceled,
// Rejected, Failed, Panicked) are monotonic over the Server's lifetime;
// the gauges (QueueDepth, InFlight, IOParked) are instantaneous.
// Invariants the fields keep:
//
//   - Admission accounting: InFlight counts requests that were accepted
//     and have not yet resolved their Future, including requests parked
//     on the async-I/O reactor (internal/aio). IOParked is the parked
//     subset, so InFlight - IOParked is the work actually occupying the
//     shard's runtime — the number the router's load estimate and the
//     saturation checks are really about.
//   - Drain accounting: after Close, Submitted stops growing, launched
//     work always runs to completion, and every queued-but-unlaunched
//     request past the drain deadline resolves its Future with
//     ErrClosed. When drain returns, InFlight is zero and Submitted ==
//     Completed + Canceled + Failed + Panicked + the ErrClosed
//     remainder.
//   - Deadline accounting: every accepted request resolves exactly once
//     — Submitted == Completed + Rejected + Expired after drain.
//     Expired counts requests shed at launch because their deadline
//     passed (or their context was cancelled) while queued; the handler
//     body never ran. Canceled counts blocking Submits that gave up
//     while parked waiting for queue space — those were never accepted,
//     so they sit outside the identity. A request whose deadline
//     expires after launch is *not* shed: launched work runs to
//     completion, but its Ctx's cancellation channel (core.Canceled)
//     fires so handlers — and any aio park they are blocked in — can
//     return core.ErrCanceled early. Cancellation is strictly
//     cooperative: a handler that ignores the channel runs to the end
//     and counts as Completed.
//   - Latency is recorded per completion into both a bounded window
//     (Latency, for P50/P99 quantiles) and a fixed-bound cumulative
//     histogram (Hist over HistBounds, with LatencySum/Completed as the
//     mean) — the histogram is what /metrics exports, since quantiles
//     over a window cannot be aggregated across scrapes.
//   - Sched carries the shard queue's cumulative queue.Counts (pushes,
//     pops, steals, contended CAS retries, empty polls), surfaced so
//     scheduler-level contention is visible next to request-level load.
//
// WriteProm renders any set of View snapshots as a Prometheus text-0.0.4
// page (families contiguous across backends, as the format requires);
// lwtserved mounts it at /metrics. Options.OnAnomaly arms a watchdog
// that samples Metrics every AnomalyInterval and fires on a P99 spike or
// sustained saturation — lwtserved uses it to dump the always-on flight
// recorder (internal/trace) while the anomaly is still inside the ring
// window. Request intervals are traced with 1-in-Options.TraceSample
// sampling, plus every slow request. See TRACING.md for the operator
// view of both surfaces.
package serve
