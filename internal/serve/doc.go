// Package serve is the request-serving subsystem over the unified LWT
// API: it turns any registered backend into a concurrent task-submission
// engine that arbitrary goroutines can drive, which the paper's reduced
// function set (Table II, Listing 4) cannot do on its own — work may only
// be created from the backend's main thread or from inside a running work
// unit, joins return no values, and nothing pushes back when producers
// outrun the runtime.
//
// The engine is a pool of shards. Each shard is an independent backend
// runtime behind its own bounded multi-producer queues and pump
// goroutine (the backend's main thread); a pluggable Router spreads
// unkeyed submissions across shards, and keyed submissions pin to one
// shard by hash so backend-local state stays warm. All submissions
// enter through Do (tasklet bodies) and DoULT (stackful bodies), with
// the per-request options — affinity key, deadline, non-blocking
// admission — carried in a Req:
//
//	producers (any goroutine)
//	  Do / DoULT          ──Router──▶ shard 0: queues ──▶ pump ──▶ runtime 0
//	  Do{Req.Key}         ──FNV-1a──▶ shard 1: queues ──▶ pump ──▶ runtime 1
//	        │                         …
//	        ▼                         shard N-1: queues ─▶ pump ──▶ runtime N-1
//	   Future[T]  ◀── complete(value, err, panic) ◀── any shard's executor
//
// Every runtime interaction — creation, yielding, finalization — happens
// on the owning shard's pump goroutine, so backends whose master must
// drive its own scheduler (Converse's return mode, §VIII-B1) serve
// traffic exactly like preemptive ones. Admission control is two-level:
// a full shard re-routes one submission once (to the least-loaded shard)
// before a non-blocking Do surfaces ErrSaturated, a blocking Do parks on
// the least-loaded shard, and Close is a graceful drain — admission
// stops, every shard runs down its queues (bounded by
// Options.DrainTimeout), and every accepted Future resolves.
//
// # Adaptive pool
//
// The pool reshapes itself around the offered load; three independent
// mechanisms, all off by default:
//
//   - Work stealing (Options.Steal): a shard whose own queues are empty
//     and whose executors have spare capacity takes queued unkeyed
//     requests from the shard with the deepest unkeyed backlog and runs
//     them itself. Stealing never moves keyed work: each shard buffers
//     keyed and unkeyed requests separately, and only the owning pump
//     ever receives from the keyed queue, so the affinity contract —
//     same key, same runtime, for the server's lifetime — holds by
//     construction, not by policy. A stolen request stays Submitted on
//     the shard that accepted it and becomes Completed (and Steals) on
//     the thief, so per-shard Submitted/Completed drift under stealing
//     while every aggregate identity below holds exactly.
//   - Autoscaling (Options.Scale): a controller samples the aggregate
//     Metrics and grows the routing set by one shard after sustained
//     saturation (queue depth at the in-flight cap, ErrSaturated growth,
//     or P99 over its EWMA baseline), up to AutoScale.MaxShards; a pool
//     that stays cold longer shrinks by one. Keyed submissions hash over
//     the base Options.Shards only, so scaling never remaps a key; the
//     dynamic shards carry unkeyed traffic. Scale-down drains before
//     removal: the shard leaves the routing set first (no new traffic),
//     its pump runs down everything it had accepted, and the shard then
//     parks warm — still owning its queues, so a submission that raced
//     the scale-down is served, not stranded — until a later grow
//     revives it or Close finalizes it.
//   - Topology-aware layout (Options.Topo): the pool shape defaults to
//     one shard per physical core with one executor per hardware thread
//     (internal/topo), the way Qthreads binds one Shepherd per core
//     (§III-D). See Server.Layout.
//
// # Observability
//
// Server.Metrics returns one Metrics snapshot per shard plus an
// aggregate. The counters (Submitted, Completed, Saturated, Canceled,
// Rejected, Failed, Panicked, Steals, ScaleUps/ScaleDowns) are monotonic
// over the Server's lifetime — a shard scaled out of the routing set
// keeps reporting, so the per-shard slice never loses history; the
// gauges (QueueDepth, InFlight, IOParked) are instantaneous.
// Invariants the fields keep:
//
//   - Admission accounting: InFlight counts requests that were accepted
//     and have not yet resolved their Future, including requests parked
//     on the async-I/O reactor (internal/aio). IOParked is the parked
//     subset, so InFlight - IOParked is the work actually occupying the
//     shard's runtime — the number the router's load estimate and the
//     saturation checks are really about.
//   - Drain accounting: after Close, Submitted stops growing, launched
//     work always runs to completion, and every queued-but-unlaunched
//     request past the drain deadline resolves its Future with
//     ErrClosed. When drain returns, InFlight is zero and Submitted ==
//     Completed + Canceled + Failed + Panicked + the ErrClosed
//     remainder.
//   - Deadline accounting: every accepted request resolves exactly once
//     — Submitted == Completed + Rejected + Expired after drain, summed
//     across shards. With stealing on, the identity holds in the
//     aggregate only: Submitted counts at the accepting shard, the
//     resolution counts at the shard that ran (or shed) the request.
//     Expired counts requests shed at launch because their deadline
//     passed (or their context was cancelled) while queued; the handler
//     body never ran. Canceled counts blocking Submits that gave up
//     while parked waiting for queue space — those were never accepted,
//     so they sit outside the identity. A request whose deadline
//     expires after launch is *not* shed: launched work runs to
//     completion, but its Ctx's cancellation channel (core.Canceled)
//     fires so handlers — and any aio park they are blocked in — can
//     return core.ErrCanceled early. Cancellation is strictly
//     cooperative: a handler that ignores the channel runs to the end
//     and counts as Completed.
//   - Latency is recorded per completion into both a bounded window
//     (Latency, for P50/P99 quantiles) and a fixed-bound cumulative
//     histogram (Hist over HistBounds, with LatencySum/Completed as the
//     mean) — the histogram is what /metrics exports, since quantiles
//     over a window cannot be aggregated across scrapes.
//   - Sched carries the shard queue's cumulative queue.Counts (pushes,
//     pops, steals, contended CAS retries, empty polls), surfaced so
//     scheduler-level contention is visible next to request-level load.
//
// WriteProm renders any set of View snapshots as a Prometheus text-0.0.4
// page (families contiguous across backends, as the format requires);
// lwtserved mounts it at /metrics. Options.OnAnomaly arms a watchdog
// that samples Metrics every AnomalyInterval and fires on a P99 spike or
// sustained saturation — lwtserved uses it to dump the always-on flight
// recorder (internal/trace) while the anomaly is still inside the ring
// window. Request intervals are traced with 1-in-Options.TraceSample
// sampling, plus every slow request. See TRACING.md for the operator
// view of both surfaces.
package serve
