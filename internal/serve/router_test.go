package serve

import (
	"fmt"
	"testing"
)

func TestRouterByName(t *testing.T) {
	for _, tc := range []struct {
		arg, want string
	}{
		{"", "p2c"},
		{"p2c", "p2c"},
		{"roundrobin", "roundrobin"},
		{"round-robin", "roundrobin"},
		{"rr", "roundrobin"},
		{"random", "random"},
	} {
		r, err := RouterByName(tc.arg)
		if err != nil {
			t.Fatalf("RouterByName(%q): %v", tc.arg, err)
		}
		if r.Name() != tc.want {
			t.Fatalf("RouterByName(%q).Name() = %q, want %q", tc.arg, r.Name(), tc.want)
		}
	}
	if _, err := RouterByName("no-such-router"); err == nil {
		t.Fatal("unknown router name accepted")
	}
	// Each call returns fresh state: two round-robins must not share a
	// cursor.
	a, _ := RouterByName("rr")
	b, _ := RouterByName("rr")
	if a == b {
		t.Fatal("RouterByName returned a shared round-robin instance")
	}
	if got := a.Pick(4, nil); got != b.Pick(4, nil) {
		t.Fatalf("fresh round-robins disagree on first pick: %d", got)
	}
}

// TestP2CPicksEmptierUnderSkew is the power-of-two-choices property:
// with one shard heavily loaded, the emptier shard must win whenever it
// is sampled — 3 of the 4 equally likely pairs for two shards, so well
// over half the picks.
func TestP2CPicksEmptierUnderSkew(t *testing.T) {
	load := func(i int) int {
		if i == 0 {
			return 1000
		}
		return 0
	}
	var r P2C
	const trials = 4000
	empty := 0
	for i := 0; i < trials; i++ {
		switch p := r.Pick(2, load); p {
		case 1:
			empty++
		case 0:
		default:
			t.Fatalf("Pick out of range: %d", p)
		}
	}
	// Expectation is 3/4; even a badly unlucky run stays far above 1/2.
	if empty < trials*60/100 {
		t.Fatalf("p2c picked the empty shard only %d/%d times", empty, trials)
	}
	if got := r.Pick(1, load); got != 0 {
		t.Fatalf("Pick(1) = %d, want 0", got)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	var r RoundRobin
	for round := 0; round < 3; round++ {
		for want := 0; want < 4; want++ {
			if got := r.Pick(4, nil); got != want {
				t.Fatalf("round %d: Pick = %d, want %d", round, got, want)
			}
		}
	}
}

func TestRandomStaysInRange(t *testing.T) {
	var r Random
	seen := make(map[int]bool)
	for i := 0; i < 2000; i++ {
		p := r.Pick(4, nil)
		if p < 0 || p >= 4 {
			t.Fatalf("Pick out of range: %d", p)
		}
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Fatalf("random router hit only %d of 4 shards in 2000 picks", len(seen))
	}
	if got := r.Pick(1, nil); got != 0 {
		t.Fatalf("Pick(1) = %d, want 0", got)
	}
}

// TestKeyShard pins the affinity hash: deterministic, in range, and
// spreading distinct keys across shards.
func TestKeyShard(t *testing.T) {
	for _, key := range []string{"", "session-1", "user/42", "🔑"} {
		first := keyShard(key, 4)
		for i := 0; i < 100; i++ {
			if got := keyShard(key, 4); got != first {
				t.Fatalf("keyShard(%q) unstable: %d then %d", key, first, got)
			}
		}
		if first < 0 || first >= 4 {
			t.Fatalf("keyShard(%q) out of range: %d", key, first)
		}
	}
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		seen[keyShard(fmt.Sprintf("key-%d", i), 4)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("256 distinct keys hit only %d of 4 shards", len(seen))
	}
}
