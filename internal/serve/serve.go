// Package serve is the request-serving subsystem over the unified LWT
// API: it turns any registered backend into a concurrent task-submission
// engine that arbitrary goroutines can drive, which the paper's reduced
// function set (Table II, Listing 4) cannot do on its own — work may only
// be created from the backend's main thread or from inside a running work
// unit, joins return no values, and nothing pushes back when producers
// outrun the runtime.
//
// The design is a bounded multi-producer queue feeding a pump that owns
// the backend's main thread:
//
//	producers (any goroutine)          pump goroutine (backend main thread)
//	  Submit / TrySubmit  ──▶  bounded MPSC queue  ──▶  batch: TaskletCreate /
//	        │                                            ULTCreate, then Yield
//	        ▼                                                   │
//	   Future[T]  ◀──────── complete(value, err, panic) ◀───────┘
//
// Every runtime interaction — creation, yielding, finalization — happens
// on the pump goroutine, so backends whose master must drive its own
// scheduler (Converse's return mode, §VIII-B1) serve traffic exactly like
// preemptive ones. Admission control is explicit: TrySubmit fast-rejects
// with ErrSaturated when the queue is full, Submit blocks with context
// cancellation, and Close drains accepted work before finalizing the
// backend.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/microbench"
	"repro/internal/trace"
)

var (
	// ErrSaturated is the fast-reject returned when the submission
	// queue is at QueueDepth — the backpressure signal, returned
	// instead of blocking or deadlocking.
	ErrSaturated = errors.New("serve: submission queue saturated")
	// ErrClosed is returned for submissions to a closed server, and
	// resolves Futures of requests still queued at shutdown.
	ErrClosed = errors.New("serve: server closed")
)

// Defaults for Options fields left zero.
const (
	// DefaultQueueDepth bounds the submission queue.
	DefaultQueueDepth = 1024
	// DefaultBatch is the largest request group launched per pump
	// wakeup.
	DefaultBatch = 64
	// DefaultLatencyWindow is the number of recent latency samples the
	// metrics keep.
	DefaultLatencyWindow = 4096
)

// Options configures a Server.
type Options struct {
	// Backend is the registered backend name (see core.Backends);
	// empty means "go".
	Backend string
	// Threads is the executor count; <= 0 means runtime.NumCPU().
	Threads int
	// Scheduler names the backend's ready-pool policy (core.Config.
	// Scheduler); empty means the backend default. Requests the backend
	// cannot honor degrade per the unified API's negotiation rules.
	Scheduler string
	// QueueDepth bounds the submission queue; <= 0 means
	// DefaultQueueDepth. A full queue fast-rejects TrySubmit with
	// ErrSaturated and blocks Submit.
	QueueDepth int
	// Batch caps the number of requests launched per pump wakeup —
	// queued requests are turned into work units in groups, amortizing
	// the pump's scheduling step; <= 0 means DefaultBatch.
	Batch int
	// MaxInFlight caps launched-but-unfinished work units. At the cap
	// the pump stops launching, so the submission queue fills and
	// admission control engages; without it every burst would pour
	// straight into the backend's unbounded pools. <= 0 means
	// QueueDepth.
	MaxInFlight int
	// LatencyWindow is the recent-sample count kept for percentile
	// metrics; <= 0 means DefaultLatencyWindow.
	LatencyWindow int
	// Tracer, when non-nil, records one KindUser interval per request
	// (submission to completion, Unit = request id).
	Tracer *trace.Recorder
}

// request is one queued submission.
type request struct {
	id  uint64
	ctx context.Context // submission context; nil means background
	ult bool            // needs a stackful ULT (body takes a Ctx)
	enq time.Time
	// run executes the body and resolves the Future; the Ctx is nil
	// for tasklet-shaped bodies.
	run func(core.Ctx)
	// fail resolves the Future with an error without running the body
	// (cancellation and shutdown paths).
	fail func(error)
}

// Server is a request-serving engine over one backend runtime. Create
// one with New, submit through Submitter, stop with Close.
type Server struct {
	opts Options
	reqs chan *request
	quit chan struct{}
	done chan struct{}

	closed   atomic.Bool
	active   atomic.Int64 // producers currently inside a submit call
	inflight atomic.Int64 // launched-but-unfinished work units
	nextID   atomic.Uint64
	m        metrics
}

// New starts a server: it spawns the pump goroutine, initializes the
// named backend on it, and returns once the backend is serving (or its
// initialization failed).
func New(opts Options) (*Server, error) {
	if opts.Backend == "" {
		opts.Backend = "go"
	}
	if opts.Threads <= 0 {
		opts.Threads = runtime.NumCPU()
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.Batch <= 0 {
		opts.Batch = DefaultBatch
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = opts.QueueDepth
	}
	if opts.LatencyWindow <= 0 {
		opts.LatencyWindow = DefaultLatencyWindow
	}
	s := &Server{
		opts: opts,
		reqs: make(chan *request, opts.QueueDepth),
		quit: make(chan struct{}),
		done: make(chan struct{}),
	}
	s.m.lats = make([]time.Duration, opts.LatencyWindow)
	s.m.start = time.Now()
	ready := make(chan error)
	go s.pump(ready)
	if err := <-ready; err != nil {
		return nil, fmt.Errorf("serve: start %q: %w", opts.Backend, err)
	}
	return s, nil
}

// MustNew is New for known-good options; it panics on error.
func MustNew(opts Options) *Server {
	s, err := New(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Backend reports the serving backend's name.
func (s *Server) Backend() string { return s.opts.Backend }

// Submitter returns the server's injection front-end. It is safe for any
// number of goroutines and can be handed to producers that should not be
// able to Close the server.
func (s *Server) Submitter() *Submitter { return &Submitter{s: s} }

// Metrics snapshots the server's counters and recent latency window.
func (s *Server) Metrics() Metrics {
	up := time.Since(s.m.start)
	mt := Metrics{
		Backend:    s.opts.Backend,
		Submitted:  s.m.submitted.Load(),
		Completed:  s.m.completed.Load(),
		Saturated:  s.m.saturated.Load(),
		Canceled:   s.m.canceled.Load(),
		Rejected:   s.m.rejected.Load(),
		Failed:     s.m.failed.Load(),
		Panicked:   s.m.panicked.Load(),
		QueueDepth: len(s.reqs),
		InFlight:   int(s.inflight.Load()),
		Uptime:     up,
	}
	if secs := up.Seconds(); secs > 0 {
		mt.Throughput = float64(mt.Completed) / secs
	}
	if w := s.m.window(); len(w) > 0 {
		mt.Latency = microbench.Summarize(w)
	}
	return mt
}

// Close stops the server: new submissions are rejected with ErrClosed,
// requests accepted before Close are run to completion, requests racing
// with Close resolve to ErrClosed, and the backend is finalized. It
// blocks until the pump has exited and is idempotent.
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.quit)
	}
	<-s.done
}

// pump is the backend's main thread: it owns the runtime end to end and
// is the only goroutine that touches it.
func (s *Server) pump(ready chan<- error) {
	rt, err := core.Open(core.Config{
		Backend:   s.opts.Backend,
		Executors: s.opts.Threads,
		Scheduler: s.opts.Scheduler,
	})
	if err != nil {
		ready <- err
		close(s.done)
		return
	}
	ready <- nil
	batch := make([]*request, 0, s.opts.Batch)
	for {
		batch = batch[:0]
		if s.inflight.Load() == 0 {
			// Fully idle: park until traffic or shutdown arrives.
			select {
			case r := <-s.reqs:
				batch = append(batch, r)
			case <-s.quit:
				s.shutdown(rt)
				return
			}
		} else {
			// Work in flight: drive the backend's scheduler. For
			// cooperative masters this is load-bearing — Converse's
			// processor 0 and the adopted primaries of Argobots and
			// MassiveThreads execute their local queues only inside
			// the main thread's Yield, so the pump cannot park on a
			// completion signal without stalling those backends; it
			// polls instead. For autonomous backends (go, qthreads)
			// Yield degrades to runtime.Gosched, which donates the
			// processor to the executors rather than spinning past
			// them; the pump still parks fully whenever inflight
			// drops to zero (the branch above).
			rt.Yield()
		}
		// Batch drain: group up to Batch queued requests into work
		// units per wakeup, so one scheduler step admits many requests.
		// The MaxInFlight cap leaves the excess queued, which is what
		// lets the bounded queue fill and reject.
		for len(batch) < s.opts.Batch && int(s.inflight.Load())+len(batch) < s.opts.MaxInFlight {
			select {
			case r := <-s.reqs:
				batch = append(batch, r)
			default:
				goto collected
			}
		}
	collected:
		for _, r := range batch {
			s.launch(rt, r)
		}
		select {
		case <-s.quit:
			s.shutdown(rt)
			return
		default:
		}
	}
}

// launch turns one accepted request into a backend work unit, dropping
// it instead if its submission context was cancelled while queued.
func (s *Server) launch(rt *core.Runtime, r *request) {
	if r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			s.m.canceled.Add(1)
			r.fail(err)
			return
		}
	}
	s.inflight.Add(1)
	if r.ult {
		rt.ULTCreate(r.run)
	} else {
		rt.TaskletCreate(func() { r.run(nil) })
	}
}

// shutdown drains the server on the pump goroutine: accepted requests
// run to completion, in-flight work is driven until done, straggling
// producers are waited out and anything they enqueued is rejected, then
// the backend is finalized.
func (s *Server) shutdown(rt *core.Runtime) {
	defer close(s.done)
	// Run everything accepted before Close.
	for {
		select {
		case r := <-s.reqs:
			s.launch(rt, r)
			continue
		default:
		}
		break
	}
	for s.inflight.Load() > 0 {
		rt.Yield()
		runtime.Gosched()
	}
	// Producers that passed the closed check concurrently with Close
	// are counted in active; drain-reject until they are gone so no
	// Future is left unresolved and no producer is left blocked.
	for s.active.Load() > 0 {
		select {
		case r := <-s.reqs:
			s.m.rejected.Add(1)
			r.fail(ErrClosed)
		default:
			runtime.Gosched()
		}
	}
	for {
		select {
		case r := <-s.reqs:
			s.m.rejected.Add(1)
			r.fail(ErrClosed)
			continue
		default:
		}
		break
	}
	rt.Finalize()
}

// finish settles one completed request's accounting and trace.
func (s *Server) finish(r *request) {
	lat := time.Since(r.enq)
	s.inflight.Add(-1)
	s.m.observe(lat)
	if s.opts.Tracer != nil {
		// Exec -1 is the synthetic "requests" lane: the work ran on
		// some backend executor, but the interval belongs to the
		// request, submission to completion.
		s.opts.Tracer.Record(trace.Event{
			Exec: -1, Kind: trace.KindUser, Unit: r.id,
			Start: r.enq, Dur: lat, Label: "request",
		})
	}
}

// Submitter is the multi-producer, thread-safe injection front-end: the
// missing external-submission path of the Table II API. All methods may
// be called from any goroutine, concurrently.
type Submitter struct {
	s *Server
}

// Server returns the owning server (for metrics access from handlers).
func (sub *Submitter) Server() *Server { return sub.s }

// makeRequest builds the queue entry and Future for one submission.
// The latency clock (enq) starts here, before admission: for a blocking
// Submit the time spent waiting on a full queue is part of the request's
// end-to-end latency. That is deliberate — measuring from intended
// arrival rather than from admission is what keeps open-loop percentiles
// honest under backpressure (no coordinated omission).
func makeRequest[T any](s *Server, ctx context.Context, ult bool, fn func(core.Ctx) (T, error)) (*request, *Future[T]) {
	f := newFuture[T]()
	r := &request{
		id:  s.nextID.Add(1),
		ctx: ctx,
		ult: ult,
		enq: time.Now(),
	}
	r.fail = func(err error) {
		var zero T
		f.complete(zero, err)
	}
	r.run = func(c core.Ctx) {
		defer func() {
			if p := recover(); p != nil {
				s.m.panicked.Add(1)
				var zero T
				f.complete(zero, &PanicError{Value: p, Stack: debug.Stack()})
			}
			s.finish(r)
		}()
		v, err := fn(c)
		if err != nil {
			s.m.failed.Add(1)
		}
		f.complete(v, err)
	}
	return r, f
}

// trySubmit is the non-blocking admission path.
func trySubmit[T any](sub *Submitter, ult bool, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	s := sub.s
	s.active.Add(1)
	defer s.active.Add(-1)
	if s.closed.Load() {
		return nil, ErrClosed
	}
	r, f := makeRequest(s, nil, ult, fn)
	select {
	case s.reqs <- r:
		s.m.submitted.Add(1)
		return f, nil
	default:
		s.m.saturated.Add(1)
		return nil, ErrSaturated
	}
}

// submit is the blocking admission path with context cancellation.
func submit[T any](sub *Submitter, ctx context.Context, ult bool, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	s := sub.s
	s.active.Add(1)
	defer s.active.Add(-1)
	if s.closed.Load() {
		return nil, ErrClosed
	}
	r, f := makeRequest(s, ctx, ult, fn)
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	select {
	case s.reqs <- r:
		s.m.submitted.Add(1)
		return f, nil
	case <-cancel:
		s.m.canceled.Add(1)
		return nil, ctx.Err()
	case <-s.quit:
		return nil, ErrClosed
	}
}

// Submit queues fn as a tasklet-shaped request (stackless body, no
// cooperative context), blocking while the queue is full until space
// frees, ctx is cancelled, or the server closes.
func Submit[T any](sub *Submitter, ctx context.Context, fn func() (T, error)) (*Future[T], error) {
	return submit(sub, ctx, false, func(core.Ctx) (T, error) { return fn() })
}

// TrySubmit is Submit without blocking: a full queue returns
// ErrSaturated immediately — the admission-control fast path.
func TrySubmit[T any](sub *Submitter, fn func() (T, error)) (*Future[T], error) {
	return trySubmit(sub, false, func(core.Ctx) (T, error) { return fn() })
}

// SubmitULT queues fn as a stackful ULT whose body receives the
// cooperative context — for requests that spawn and join child work
// units (nested parallelism on the serving runtime).
func SubmitULT[T any](sub *Submitter, ctx context.Context, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	return submit(sub, ctx, true, fn)
}

// TrySubmitULT is SubmitULT with ErrSaturated fast-reject.
func TrySubmitULT[T any](sub *Submitter, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	return trySubmit(sub, true, fn)
}
