package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/microbench"
	"repro/internal/trace"
)

var (
	// ErrSaturated is the fast-reject returned when the submission
	// queues are at QueueDepth — the backpressure signal, returned
	// instead of blocking or deadlocking. Unkeyed submissions are
	// re-routed once before it surfaces; keyed submissions surface it
	// directly (re-routing would break affinity).
	ErrSaturated = errors.New("serve: submission queue saturated")
	// ErrClosed is returned for submissions to a closed server, and
	// resolves Futures of requests still queued when the drain deadline
	// expires at shutdown.
	ErrClosed = errors.New("serve: server closed")
	// ErrExpired resolves the Future of a deadline-carrying request
	// whose budget ran out before launch: the pump sheds it from the
	// queue instead of spending an executor on an answer nobody is
	// waiting for. Counted in Metrics.Expired.
	ErrExpired = errors.New("serve: request deadline expired before launch")
)

// Defaults for Options fields left zero.
const (
	// DefaultQueueDepth bounds each shard's submission queue.
	DefaultQueueDepth = 1024
	// DefaultBatch is the largest request group launched per pump
	// wakeup.
	DefaultBatch = 64
	// DefaultLatencyWindow is the number of recent latency samples each
	// shard's metrics keep.
	DefaultLatencyWindow = 4096
	// DefaultTraceSample is the request-trace sampling interval: one
	// request in every DefaultTraceSample emits its KindUser interval.
	DefaultTraceSample = 8
	// slowTraceCutoff bypasses sampling: any request at least this slow
	// is always traced, so the flight recorder never misses a tail-
	// latency outlier between samples.
	slowTraceCutoff = 25 * time.Millisecond
)

// Options configures a Server.
type Options struct {
	// Backend is the registered backend name (see core.Backends);
	// empty means "go".
	Backend string
	// Threads is the executor count per shard; <= 0 means
	// runtime.NumCPU() divided by the shard count (at least 1), so a
	// zero-value Options keeps the pool's total executor budget at one
	// per CPU rather than multiplying shards by CPUs.
	Threads int
	// Scheduler names the backend's ready-pool policy (core.Config.
	// Scheduler); empty means the backend default. Requests the backend
	// cannot honor degrade per the unified API's negotiation rules.
	Scheduler string
	// Shards is the number of independent backend runtimes the server
	// runs, each behind its own queue and pump; <= 0 means
	// runtime.NumCPU(). One shard reproduces the unsharded engine.
	Shards int
	// Router spreads unkeyed submissions across shards; nil means
	// power-of-two-choices on shard depth (P2C). See RouterByName.
	Router Router
	// QueueDepth bounds each shard's submission queue; <= 0 means
	// DefaultQueueDepth. With every candidate shard's queue full,
	// TrySubmit fast-rejects with ErrSaturated and Submit blocks.
	QueueDepth int
	// Batch caps the number of requests launched per pump wakeup —
	// queued requests are turned into work units in groups, amortizing
	// the pump's scheduling step; <= 0 means DefaultBatch.
	Batch int
	// MaxInFlight caps launched-but-unfinished work units per shard. At
	// the cap the shard's pump stops launching, so its queue fills and
	// admission control engages; without it every burst would pour
	// straight into the backend's unbounded pools. <= 0 means
	// QueueDepth.
	MaxInFlight int
	// LatencyWindow is the recent-sample count kept per shard for
	// percentile metrics; <= 0 means DefaultLatencyWindow.
	LatencyWindow int
	// DrainTimeout bounds how long Close lets each shard keep launching
	// queued requests. Work already launched always runs to completion;
	// once the deadline passes, requests still queued resolve their
	// Futures with ErrClosed instead of running. Zero means drain
	// without a deadline.
	DrainTimeout time.Duration
	// Tracer records one KindUser interval per request (submission to
	// completion, Unit = request id) into a per-shard flight-recorder
	// lane (Exec = -(shard+1): the work ran on some backend executor,
	// but the interval belongs to the request). Nil selects the
	// process-global recorder (trace.Default) — tracing is always on
	// unless LWT_TRACE_OFF disables the recorder itself.
	Tracer *trace.Recorder
	// TraceSample traces one request in every TraceSample (rounded up
	// to a power of two; <= 0 means DefaultTraceSample, 1 means every
	// request). Requests slower than 25ms are always traced regardless
	// of sampling, so tail outliers never slip between samples.
	TraceSample int
	// OnAnomaly, when non-nil, arms the anomaly watchdog: Metrics() is
	// sampled every AnomalyInterval and the callback fires when the
	// detector sees a P99 spike against its EWMA baseline or sustained
	// saturation growth (see anomalyDetector). The callback runs on the
	// watchdog goroutine — lwtserved uses it to write a flight-recorder
	// dump, which is the point: the trace window still holds the anomaly
	// when the callback fires.
	OnAnomaly func(reason string, m Metrics)
	// AnomalyInterval is the watchdog sample period; <= 0 means
	// DefaultAnomalyInterval. Ignored without OnAnomaly.
	AnomalyInterval time.Duration
}

// request is one queued submission.
type request struct {
	id    uint64
	shard *shard          // owning shard, set before enqueue
	ctx   context.Context // submission context; nil means background
	ult   bool            // needs a stackful ULT (body takes a Ctx)
	enq   time.Time
	// deadline is the request's completion budget (zero: none). The
	// pump sheds queued requests whose deadline has passed (one time
	// comparison — no timer), and running handlers see it through the
	// lazily built cancellation signal below.
	deadline time.Time
	// cancelOnce/cancelCh/stopCancel materialize the handler-visible
	// cancellation signal (core.Canceler) on first use only: the hot
	// path of an undeadlined — or deadlined but never-waiting — request
	// never allocates a timer or context for it.
	cancelOnce sync.Once
	cancelCh   <-chan struct{}
	stopCancel func()
	// run executes the body and resolves the Future; the Ctx is nil
	// for tasklet-shaped bodies.
	run func(core.Ctx)
	// fail resolves the Future with an error without running the body
	// (cancellation and shutdown paths).
	fail func(error)
}

// cancelSignal lazily builds the channel handlers and aio waits watch:
// the submission context's Done when there is no deadline, a
// deadline-armed derivation of it otherwise. Built at most once, on
// the handler's own goroutine; finish releases the timer.
func (r *request) cancelSignal() <-chan struct{} {
	r.cancelOnce.Do(func() {
		base := r.ctx
		if base == nil {
			base = context.Background()
		}
		if r.deadline.IsZero() {
			r.cancelCh = base.Done()
			return
		}
		dctx, stop := context.WithDeadline(base, r.deadline)
		r.cancelCh = dctx.Done()
		r.stopCancel = stop
	})
	return r.cancelCh
}

// shard is one independent serving lane: a backend runtime, its bounded
// queue, its pump goroutine, and its slice of the metrics.
type shard struct {
	s        *Server
	id       int
	reqs     chan *request
	inflight atomic.Int64 // launched-but-unfinished work units
	// ioparked counts the subset of inflight currently parked on the
	// async-I/O reactor (lwt.Sleep, ReadIO, ...): launched and
	// unfinished, but holding no executor. The pump's admission gate and
	// the shutdown pacer meter true CPU occupancy — inflight minus
	// ioparked — so handlers waiting on I/O do not cap the shard's
	// concurrency; the drain loop keeps watching total inflight, because
	// a parked handler still owes a completion.
	ioparked atomic.Int64
	queued   atomic.Int64 // accepted-but-unlaunched requests
	m        metrics
	done     chan struct{} // pump exited, runtime finalized
	// ring is the shard's request lane in the flight recorder. It is
	// multi-writer — finish runs on whichever backend executor completed
	// the request — which the ring's claim protocol handles.
	ring *trace.Ring
	// rt publishes the shard's runtime to metrics scrapes (SchedStats);
	// only the pump goroutine stores it.
	rt atomic.Pointer[core.Runtime]
}

// load is the routing signal: accepted-but-unlaunched plus in-flight
// requests, two atomic loads.
func (sh *shard) load() int {
	return int(sh.queued.Load() + sh.inflight.Load())
}

// commit settles the admission accounting for a request that just
// entered this shard's queue — the single place the accepted-submission
// counters are bumped, shared by the non-blocking and parked paths.
func (sh *shard) commit() {
	sh.queued.Add(1)
	sh.m.submitted.Add(1)
}

// tryEnqueue is the non-blocking admission step onto this shard.
func (sh *shard) tryEnqueue(r *request) bool {
	r.shard = sh
	select {
	case sh.reqs <- r:
		sh.commit()
		return true
	default:
		return false
	}
}

// Server is a request-serving engine over a pool of backend runtimes.
// Create one with New, submit through Submitter, stop with Close.
type Server struct {
	opts   Options
	router Router
	shards []*shard
	quit   chan struct{}

	closed atomic.Bool
	active atomic.Int64 // producers currently inside a submit call
	nextID atomic.Uint64
	start  time.Time
	// drainBy is the shutdown deadline in unix nanoseconds (0 = none).
	// It is written before quit closes, so pumps that observed the
	// close see it.
	drainBy atomic.Int64
	// traceMask samples request traces: id&traceMask == 0 emits.
	// TraceSample rounded up to a power of two, minus one.
	traceMask uint64
}

// New starts a server: it spawns one pump goroutine per shard, each
// initializing its own instance of the named backend, and returns once
// every shard is serving (or any initialization failed, in which case
// the shards that did start are torn down).
func New(opts Options) (*Server, error) {
	if opts.Backend == "" {
		opts.Backend = "go"
	}
	if opts.Shards <= 0 {
		opts.Shards = runtime.NumCPU()
	}
	if opts.Threads <= 0 {
		// Split the CPU budget across the pool: defaulting both fields
		// yields NumCPU total executors, not Shards x NumCPU.
		opts.Threads = runtime.NumCPU() / opts.Shards
		if opts.Threads < 1 {
			opts.Threads = 1
		}
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.Batch <= 0 {
		opts.Batch = DefaultBatch
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = opts.QueueDepth
	}
	if opts.LatencyWindow <= 0 {
		opts.LatencyWindow = DefaultLatencyWindow
	}
	if opts.TraceSample <= 0 {
		opts.TraceSample = DefaultTraceSample
	}
	router := opts.Router
	if router == nil {
		router = P2C{}
	}
	s := &Server{
		opts:   opts,
		router: router,
		shards: make([]*shard, opts.Shards),
		quit:   make(chan struct{}),
		start:  time.Now(),
	}
	mask := uint64(1)
	for int(mask) < opts.TraceSample {
		mask <<= 1
	}
	s.traceMask = mask - 1
	rec := opts.Tracer
	if rec == nil {
		rec = trace.Default()
	}
	ready := make(chan error, opts.Shards)
	for i := range s.shards {
		sh := &shard{
			s:    s,
			id:   i,
			reqs: make(chan *request, opts.QueueDepth),
			done: make(chan struct{}),
			ring: rec.SharedRing(fmt.Sprintf("serve/%s/shard%d", opts.Backend, i), -(i + 1)),
		}
		sh.m.lats = make([]time.Duration, opts.LatencyWindow)
		s.shards[i] = sh
		go sh.pump(ready)
	}
	var firstErr error
	for range s.shards {
		if err := <-ready; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		// Tear down the shards that did start.
		s.closed.Store(true)
		close(s.quit)
		for _, sh := range s.shards {
			<-sh.done
		}
		return nil, fmt.Errorf("serve: start %q: %w", opts.Backend, firstErr)
	}
	if opts.OnAnomaly != nil {
		go s.watchAnomalies()
	}
	return s, nil
}

// MustNew is New for known-good options; it panics on error.
func MustNew(opts Options) *Server {
	s, err := New(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Backend reports the serving backend's name.
func (s *Server) Backend() string { return s.opts.Backend }

// NumShards reports the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// Router reports the router spreading unkeyed submissions.
func (s *Server) Router() Router { return s.router }

// ShardOf reports the shard index keyed submissions with this affinity
// key pin to — stable for the server's whole lifetime.
func (s *Server) ShardOf(key string) int { return keyShard(key, len(s.shards)) }

// loadOf is the Router's load probe.
func (s *Server) loadOf(i int) int { return s.shards[i].load() }

// leastLoaded scans for the shard with the smallest depth — the
// re-route target and the blocking submit's parking spot. The scan is
// O(shards) of atomic loads, off the fast path (it runs only after the
// router's pick saturated).
func (s *Server) leastLoaded() *shard {
	best := s.shards[0]
	bestLoad := best.load()
	for _, sh := range s.shards[1:] {
		if l := sh.load(); l < bestLoad {
			best, bestLoad = sh, l
		}
	}
	return best
}

// Submitter returns the server's injection front-end. It is safe for any
// number of goroutines and can be handed to producers that should not be
// able to Close the server.
func (s *Server) Submitter() *Submitter { return &Submitter{s: s} }

// Close stops the server with a graceful drain: new submissions are
// rejected with ErrClosed, every shard runs the requests accepted before
// Close to completion (bounded by Options.DrainTimeout — past the
// deadline, still-queued requests resolve to ErrClosed instead of
// running), requests racing with Close resolve to ErrClosed, and each
// shard's backend is finalized once its pump has drained. No accepted
// Future is left unresolved. Close blocks until every pump has exited
// and is idempotent.
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		if s.opts.DrainTimeout > 0 {
			// Written before close(quit): the channel close publishes
			// it to every pump.
			s.drainBy.Store(time.Now().Add(s.opts.DrainTimeout).UnixNano())
		}
		close(s.quit)
	}
	for _, sh := range s.shards {
		<-sh.done
	}
}

// pump is one shard's backend main thread: it owns that shard's runtime
// end to end and is the only goroutine that touches it.
func (sh *shard) pump(ready chan<- error) {
	s := sh.s
	rt, err := core.Open(core.Config{
		Backend:   s.opts.Backend,
		Executors: s.opts.Threads,
		Scheduler: s.opts.Scheduler,
	})
	if err != nil {
		ready <- err
		sh.ring.Close()
		close(sh.done)
		return
	}
	sh.rt.Store(rt)
	ready <- nil
	batch := make([]*request, 0, s.opts.Batch)
	for {
		batch = batch[:0]
		if sh.inflight.Load() == 0 {
			// Fully idle: park until traffic or shutdown arrives.
			select {
			case r := <-sh.reqs:
				sh.queued.Add(-1)
				batch = append(batch, r)
			case <-s.quit:
				sh.shutdown(rt)
				return
			}
		} else {
			// Work in flight: drive the backend's scheduler. For
			// cooperative masters this is load-bearing — Converse's
			// processor 0 and the adopted primaries of Argobots and
			// MassiveThreads execute their local queues only inside
			// the main thread's Yield, so the pump cannot park on a
			// completion signal without stalling those backends; it
			// polls instead. For autonomous backends (go, qthreads)
			// Yield degrades to runtime.Gosched, which donates the
			// processor to the executors rather than spinning past
			// them; the pump still parks fully whenever inflight
			// drops to zero (the branch above).
			rt.Yield()
		}
		// Batch drain: group up to Batch queued requests into work
		// units per wakeup, so one scheduler step admits many requests.
		// The MaxInFlight cap leaves the excess queued, which is what
		// lets the bounded queue fill and reject.
		// The gate meters executor occupancy, not liveness: work units
		// parked on the async-I/O reactor hold no executor, so they are
		// discounted and the shard keeps admitting while they wait.
		for len(batch) < s.opts.Batch && int(sh.inflight.Load()-sh.ioparked.Load())+len(batch) < s.opts.MaxInFlight {
			select {
			case r := <-sh.reqs:
				sh.queued.Add(-1)
				batch = append(batch, r)
			default:
				goto collected
			}
		}
	collected:
		for _, r := range batch {
			sh.launch(rt, r)
		}
		select {
		case <-s.quit:
			sh.shutdown(rt)
			return
		default:
		}
	}
}

// launch turns one accepted request into a backend work unit — or
// sheds it, exactly once, if its budget is already spent: a submission
// context cancelled while queued or a deadline that passed fails the
// Future (ctx.Err() / ErrExpired) without occupying an executor, and
// counts as Expired in the drain identity
// (Submitted == Completed + Rejected + Expired).
func (sh *shard) launch(rt *core.Runtime, r *request) {
	if r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			sh.m.expired.Add(1)
			sh.ring.Instant(trace.KindCancel, r.id)
			r.fail(err)
			return
		}
	}
	if !r.deadline.IsZero() && !time.Now().Before(r.deadline) {
		sh.m.expired.Add(1)
		sh.ring.Instant(trace.KindCancel, r.id)
		r.fail(ErrExpired)
		return
	}
	sh.inflight.Add(1)
	if r.ult {
		rt.ULTCreate(r.run)
	} else {
		rt.TaskletCreate(func() { r.run(nil) })
	}
}

// shutdown drains one shard on its pump goroutine: accepted requests
// run to completion (until the drain deadline, after which they resolve
// to ErrClosed unrun), in-flight work is driven until done, straggling
// producers are waited out and anything they enqueued is rejected, then
// the shard's backend is finalized. Every accepted Future resolves.
func (sh *shard) shutdown(rt *core.Runtime) {
	defer close(sh.done)
	s := sh.s
	deadline := s.drainBy.Load()
	expired := func() bool {
		return deadline != 0 && time.Now().UnixNano() >= deadline
	}
	// Run everything accepted before Close, paced at MaxInFlight so the
	// drain cannot overload the backend. Past the deadline, requests
	// still queued resolve to ErrClosed instead of running.
drain:
	for {
		if expired() {
			for {
				select {
				case r := <-sh.reqs:
					sh.queued.Add(-1)
					sh.m.rejected.Add(1)
					r.fail(ErrClosed)
					continue
				default:
				}
				break drain
			}
		}
		if int(sh.inflight.Load()-sh.ioparked.Load()) >= s.opts.MaxInFlight {
			rt.Yield()
			runtime.Gosched()
			continue
		}
		select {
		case r := <-sh.reqs:
			sh.queued.Add(-1)
			sh.launch(rt, r)
		default:
			break drain
		}
	}
	// Launched work always runs to completion — a live work unit cannot
	// be abandoned without corrupting the backend — so the deadline
	// bounds queue drain, not execution.
	for sh.inflight.Load() > 0 {
		rt.Yield()
		runtime.Gosched()
	}
	// Producers that passed the closed check concurrently with Close
	// are counted in active; drain-reject until they are gone so no
	// Future is left unresolved and no producer is left blocked. The
	// counter is server-wide (a straggler may target any shard), so
	// every shard holds its queue open until the last producer exits.
	for s.active.Load() > 0 {
		select {
		case r := <-sh.reqs:
			sh.queued.Add(-1)
			sh.m.rejected.Add(1)
			r.fail(ErrClosed)
		default:
			runtime.Gosched()
		}
	}
	// A straggler's enqueue happens before its active-counter
	// decrement, so once active reached zero everything it sent is
	// already buffered; one final sweep resolves it.
	for {
		select {
		case r := <-sh.reqs:
			sh.queued.Add(-1)
			sh.m.rejected.Add(1)
			r.fail(ErrClosed)
			continue
		default:
		}
		break
	}
	rt.Finalize()
	sh.ring.Close()
}

// finish settles one completed request's accounting and trace. The
// trace emission costs no extra clock read — the latency measurement's
// endpoints are reused (EmitAt) — and is sampled (Options.TraceSample)
// so the always-on recorder charges the hot path one mask compare per
// untraced request. Slow requests bypass the sampler: the window always
// holds the outliers a post-incident dump is taken for.
func (sh *shard) finish(r *request) {
	lat := time.Since(r.enq)
	sh.inflight.Add(-1)
	sh.m.observe(lat)
	if r.stopCancel != nil {
		// Release the deadline timer armed by cancelSignal. Same
		// goroutine that built it (the handler's work unit), so the
		// read is ordered after any Do.
		r.stopCancel()
	}
	if r.id&sh.s.traceMask == 0 || lat >= slowTraceCutoff {
		sh.ring.EmitAt(trace.KindUser, r.id, r.enq, lat)
	}
}

// ioParkable mirrors the async-I/O layer's park hook: a backend context
// implementing it can suspend its work unit off the executor and be
// resumed from the reactor.
type ioParkable interface {
	IOPark() (park func(), unpark func())
}

// requestCtx wraps every handler's backend context with the request's
// cooperative cancellation signal: CancelCh (core.Canceler) is what
// lets a running handler — and the aio waits it issues — observe that
// its deadline passed or its client went away. The signal is built
// lazily, so handlers that never look pay nothing.
type requestCtx struct {
	core.Ctx
	r *request
}

func (c requestCtx) CancelCh() <-chan struct{} { return c.r.cancelSignal() }

// parkRequestCtx is requestCtx on AsyncIO backends, adding the
// park-counting IOPark so the shard can tell which in-flight work
// units are parked on the reactor. Struct embedding (not interface
// embedding) is load-bearing: embedding the Ctx interface would not
// promote the concrete backend value's IOPark method, so the wrapper
// re-mints it here. The park half of every minted pair brackets the
// suspension with the ioparked counter — both adjustments run on the
// work unit's own goroutine (before suspending, after resuming), so
// the accounting is exact, not sampled.
type parkRequestCtx struct {
	requestCtx
	sh *shard
}

func (c parkRequestCtx) IOPark() (func(), func()) {
	park, unpark := c.Ctx.(ioParkable).IOPark()
	sh := c.sh
	counted := func() {
		sh.ioparked.Add(1)
		start := sh.ring.Now()
		park()
		sh.ring.Interval(trace.KindPark, 0, start)
		sh.ioparked.Add(-1)
	}
	return counted, unpark
}

// Submitter is the multi-producer, thread-safe injection front-end: the
// missing external-submission path of the Table II API. All methods may
// be called from any goroutine, concurrently.
type Submitter struct {
	s *Server
}

// Server returns the owning server (for metrics access from handlers).
func (sub *Submitter) Server() *Server { return sub.s }

// makeRequest builds the queue entry and Future for one submission.
// The latency clock (enq) starts here, before admission: for a blocking
// Submit the time spent waiting on a full queue is part of the request's
// end-to-end latency. That is deliberate — measuring from intended
// arrival rather than from admission is what keeps open-loop percentiles
// honest under backpressure (no coordinated omission).
func makeRequest[T any](s *Server, ctx context.Context, deadline time.Time, ult bool, fn func(core.Ctx) (T, error)) (*request, *Future[T]) {
	f := newFuture[T]()
	r := &request{
		id:       s.nextID.Add(1),
		ctx:      ctx,
		ult:      ult,
		enq:      time.Now(),
		deadline: deadline,
	}
	r.fail = func(err error) {
		var zero T
		f.complete(zero, err)
	}
	r.run = func(c core.Ctx) {
		sh := r.shard
		if c != nil {
			rc := requestCtx{Ctx: c, r: r}
			if _, ok := c.(ioParkable); ok {
				c = parkRequestCtx{requestCtx: rc, sh: sh}
			} else {
				c = rc
			}
		}
		defer func() {
			if p := recover(); p != nil {
				sh.m.panicked.Add(1)
				var zero T
				f.complete(zero, &PanicError{Value: p, Stack: debug.Stack()})
			}
			sh.finish(r)
		}()
		v, err := fn(c)
		if err != nil {
			sh.m.failed.Add(1)
		}
		f.complete(v, err)
	}
	return r, f
}

// trySubmit is the non-blocking admission path with two-level admission:
// the router's pick is tried first; if that shard's queue is full the
// request is re-routed once to the least-loaded shard before
// ErrSaturated surfaces. pin >= 0 bypasses the router and disables the
// re-route (keyed affinity).
func trySubmit[T any](sub *Submitter, deadline time.Time, pin int, ult bool, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	s := sub.s
	s.active.Add(1)
	defer s.active.Add(-1)
	if s.closed.Load() {
		return nil, ErrClosed
	}
	r, f := makeRequest(s, nil, deadline, ult, fn)
	if pin >= 0 {
		sh := s.shards[pin%len(s.shards)]
		if sh.tryEnqueue(r) {
			return f, nil
		}
		sh.m.saturated.Add(1)
		return nil, ErrSaturated
	}
	sh := s.shards[s.router.Pick(len(s.shards), s.loadOf)]
	if sh.tryEnqueue(r) {
		return f, nil
	}
	if alt := s.leastLoaded(); alt != sh && alt.tryEnqueue(r) {
		return f, nil
	}
	sh.m.saturated.Add(1)
	return nil, ErrSaturated
}

// submit is the blocking admission path with context cancellation: it
// first tries the router's pick without blocking, then parks on the
// least-loaded shard. pin >= 0 pins both attempts to one shard (keyed
// affinity). A deadline — explicit, or adopted from the submission
// context — bounds the park too: a request that cannot even enqueue
// inside its budget returns ErrExpired instead of blocking past it.
func submit[T any](sub *Submitter, ctx context.Context, deadline time.Time, pin int, ult bool, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	s := sub.s
	s.active.Add(1)
	defer s.active.Add(-1)
	if s.closed.Load() {
		return nil, ErrClosed
	}
	adopted := false // deadline came from ctx, whose Done covers the park
	if ctx != nil {
		if dl, ok := ctx.Deadline(); ok && (deadline.IsZero() || dl.Before(deadline)) {
			deadline = dl
			adopted = true
		}
	}
	r, f := makeRequest(s, ctx, deadline, ult, fn)
	var sh *shard
	if pin >= 0 {
		sh = s.shards[pin%len(s.shards)]
	} else {
		sh = s.shards[s.router.Pick(len(s.shards), s.loadOf)]
	}
	if sh.tryEnqueue(r) {
		return f, nil
	}
	if pin < 0 {
		sh = s.leastLoaded()
	}
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	var expire <-chan time.Time
	if !deadline.IsZero() && !adopted {
		// The timer arms only on the blocked path — a queue with room
		// never pays for it — and only for an explicit deadline: one
		// adopted from ctx is already enforced by ctx.Done, and racing
		// a second timer against the context's own would surface
		// ErrExpired where callers armed DeadlineExceeded. Either way
		// the submission was never accepted, so it counts as
		// canceled-at-submit, outside the drain identity.
		tm := time.NewTimer(time.Until(deadline))
		defer tm.Stop()
		expire = tm.C
	}
	r.shard = sh
	select {
	case sh.reqs <- r:
		sh.commit()
		return f, nil
	case <-cancel:
		sh.m.canceled.Add(1)
		return nil, ctx.Err()
	case <-expire:
		sh.m.canceled.Add(1)
		// A deadline adopted from ctx races ctx.Done here; surface the
		// context's own error so callers see the sentinel they armed.
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, ErrExpired
	case <-s.quit:
		return nil, ErrClosed
	}
}

// Submit queues fn as a tasklet-shaped request (stackless body, no
// cooperative context), blocking while the queues are full until space
// frees, ctx is cancelled, or the server closes. A deadline on ctx is
// adopted as the request's completion budget (see SubmitDeadline).
func Submit[T any](sub *Submitter, ctx context.Context, fn func() (T, error)) (*Future[T], error) {
	return submit(sub, ctx, time.Time{}, -1, false, func(core.Ctx) (T, error) { return fn() })
}

// SubmitDeadline is Submit with an explicit completion budget: a
// request still queued when deadline passes is shed before launch
// (its Future resolves to ErrExpired, counted in Metrics.Expired), a
// blocked submission gives up at the deadline, and a launched handler
// sees the budget through its context's cancellation signal
// (core.Canceled; parked aio waits wake early with ErrCanceled). When
// ctx also carries a deadline the earlier one wins.
func SubmitDeadline[T any](sub *Submitter, ctx context.Context, deadline time.Time, fn func() (T, error)) (*Future[T], error) {
	return submit(sub, ctx, deadline, -1, false, func(core.Ctx) (T, error) { return fn() })
}

// TrySubmit is Submit without blocking: with the routed shard full and
// one re-route exhausted it returns ErrSaturated immediately — the
// admission-control fast path.
func TrySubmit[T any](sub *Submitter, fn func() (T, error)) (*Future[T], error) {
	return trySubmit(sub, time.Time{}, -1, false, func(core.Ctx) (T, error) { return fn() })
}

// TrySubmitDeadline is TrySubmit carrying a completion budget (the
// non-blocking half of SubmitDeadline's contract).
func TrySubmitDeadline[T any](sub *Submitter, deadline time.Time, fn func() (T, error)) (*Future[T], error) {
	return trySubmit(sub, deadline, -1, false, func(core.Ctx) (T, error) { return fn() })
}

// SubmitULT queues fn as a stackful ULT whose body receives the
// cooperative context — for requests that spawn and join child work
// units (nested parallelism on the serving runtime).
func SubmitULT[T any](sub *Submitter, ctx context.Context, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	return submit(sub, ctx, time.Time{}, -1, true, fn)
}

// SubmitULTDeadline is SubmitULT with an explicit completion budget;
// see SubmitDeadline for the budget's semantics.
func SubmitULTDeadline[T any](sub *Submitter, ctx context.Context, deadline time.Time, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	return submit(sub, ctx, deadline, -1, true, fn)
}

// TrySubmitULT is SubmitULT with ErrSaturated fast-reject.
func TrySubmitULT[T any](sub *Submitter, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	return trySubmit(sub, time.Time{}, -1, true, fn)
}

// TrySubmitULTDeadline is TrySubmitULT carrying a completion budget.
func TrySubmitULTDeadline[T any](sub *Submitter, deadline time.Time, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	return trySubmit(sub, deadline, -1, true, fn)
}

// SubmitKeyed is Submit with shard affinity: every submission carrying
// the same key lands on the same shard (FNV-1a of the key), so a
// session's requests keep hitting one backend runtime and its warm
// local state — FEBs, placement hints, pool caches. A blocked keyed
// submission parks on its pinned shard (affinity is never traded for
// an emptier queue).
func SubmitKeyed[T any](sub *Submitter, ctx context.Context, key string, fn func() (T, error)) (*Future[T], error) {
	return submit(sub, ctx, time.Time{}, sub.s.ShardOf(key), false, func(core.Ctx) (T, error) { return fn() })
}

// TrySubmitKeyed is SubmitKeyed without blocking: a full pinned shard
// returns ErrSaturated directly — no re-route, affinity is the
// contract.
func TrySubmitKeyed[T any](sub *Submitter, key string, fn func() (T, error)) (*Future[T], error) {
	return trySubmit(sub, time.Time{}, sub.s.ShardOf(key), false, func(core.Ctx) (T, error) { return fn() })
}

// TrySubmitKeyedDeadline is TrySubmitKeyed carrying a completion
// budget.
func TrySubmitKeyedDeadline[T any](sub *Submitter, key string, deadline time.Time, fn func() (T, error)) (*Future[T], error) {
	return trySubmit(sub, deadline, sub.s.ShardOf(key), false, func(core.Ctx) (T, error) { return fn() })
}

// SubmitKeyedDeadline is SubmitKeyed carrying a completion budget.
func SubmitKeyedDeadline[T any](sub *Submitter, ctx context.Context, key string, deadline time.Time, fn func() (T, error)) (*Future[T], error) {
	return submit(sub, ctx, deadline, sub.s.ShardOf(key), false, func(core.Ctx) (T, error) { return fn() })
}

// SubmitULTKeyed is SubmitKeyed for stackful request bodies that spawn
// and join children on the pinned shard's runtime.
func SubmitULTKeyed[T any](sub *Submitter, ctx context.Context, key string, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	return submit(sub, ctx, time.Time{}, sub.s.ShardOf(key), true, fn)
}

// TrySubmitULTKeyed is SubmitULTKeyed with ErrSaturated fast-reject on
// the pinned shard.
func TrySubmitULTKeyed[T any](sub *Submitter, key string, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	return trySubmit(sub, time.Time{}, sub.s.ShardOf(key), true, fn)
}

// TrySubmitULTKeyedDeadline is TrySubmitULTKeyed carrying a completion
// budget.
func TrySubmitULTKeyedDeadline[T any](sub *Submitter, key string, deadline time.Time, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	return trySubmit(sub, deadline, sub.s.ShardOf(key), true, fn)
}

// SubmitULTKeyedDeadline is SubmitULTKeyed carrying a completion
// budget.
func SubmitULTKeyedDeadline[T any](sub *Submitter, ctx context.Context, key string, deadline time.Time, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	return submit(sub, ctx, deadline, sub.s.ShardOf(key), true, fn)
}

// Snapshot reads the server's counters and latency windows once and
// returns both views: the cross-shard aggregate (Metrics.Shard == -1)
// and the per-shard breakdown (entry i is shard i). Each shard's
// latency ring is locked and copied a single time, shared by both
// views — the form a metrics scrape that wants aggregate and
// breakdown together should use.
func (s *Server) Snapshot() (Metrics, []Metrics) {
	up := time.Since(s.start)
	agg := Metrics{
		Backend: s.opts.Backend,
		Shard:   -1,
		Shards:  len(s.shards),
		Router:  s.router.Name(),
		Uptime:  up,
	}
	per := make([]Metrics, len(s.shards))
	var window []time.Duration
	for i, sh := range s.shards {
		mt := Metrics{
			Backend:    s.opts.Backend,
			Shard:      i,
			Shards:     len(s.shards),
			Router:     s.router.Name(),
			Submitted:  sh.m.submitted.Load(),
			Completed:  sh.m.completed.Load(),
			Saturated:  sh.m.saturated.Load(),
			Canceled:   sh.m.canceled.Load(),
			Expired:    sh.m.expired.Load(),
			Rejected:   sh.m.rejected.Load(),
			Failed:     sh.m.failed.Load(),
			Panicked:   sh.m.panicked.Load(),
			QueueDepth: len(sh.reqs),
			InFlight:   int(sh.inflight.Load()),
			IOParked:   int(sh.ioparked.Load()),
			Uptime:     up,
			Hist:       sh.m.histSnapshot(),
			LatencySum: time.Duration(sh.m.latSum.Load()),
		}
		if rt := sh.rt.Load(); rt != nil {
			mt.Sched = rt.SchedStats()
		}
		w := sh.m.window()
		if secs := up.Seconds(); secs > 0 {
			mt.Throughput = float64(mt.Completed) / secs
		}
		if len(w) > 0 {
			mt.Latency = microbench.Summarize(w)
		}
		per[i] = mt
		window = append(window, w...)
		agg.Submitted += mt.Submitted
		agg.Completed += mt.Completed
		agg.Saturated += mt.Saturated
		agg.Canceled += mt.Canceled
		agg.Expired += mt.Expired
		agg.Rejected += mt.Rejected
		agg.Failed += mt.Failed
		agg.Panicked += mt.Panicked
		agg.QueueDepth += mt.QueueDepth
		agg.InFlight += mt.InFlight
		agg.IOParked += mt.IOParked
		agg.LatencySum += mt.LatencySum
		agg.Sched = agg.Sched.Plus(mt.Sched)
		if agg.Hist == nil {
			agg.Hist = make([]uint64, len(mt.Hist))
		}
		for b, v := range mt.Hist {
			agg.Hist[b] += v
		}
	}
	if secs := up.Seconds(); secs > 0 {
		agg.Throughput = float64(agg.Completed) / secs
	}
	if len(window) > 0 {
		agg.Latency = microbench.Summarize(window)
	}
	return agg, per
}

// Metrics snapshots the server's counters and recent latency windows,
// aggregated across every shard (Metrics.Shard is -1). Use ShardMetrics
// for the per-shard breakdown, or Snapshot for both in one pass.
func (s *Server) Metrics() Metrics {
	agg, _ := s.Snapshot()
	return agg
}

// ShardMetrics snapshots each shard's own counters and latency window;
// entry i is shard i (Metrics.Shard = i). The sum over entries is
// Metrics().
func (s *Server) ShardMetrics() []Metrics {
	_, per := s.Snapshot()
	return per
}
