package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/microbench"
	"repro/internal/topo"
	"repro/internal/trace"
)

var (
	// ErrSaturated is the fast-reject returned when the submission
	// queues are at QueueDepth — the backpressure signal, returned
	// instead of blocking or deadlocking. Unkeyed submissions are
	// re-routed once before it surfaces; keyed submissions surface it
	// directly (re-routing would break affinity).
	ErrSaturated = errors.New("serve: submission queue saturated")
	// ErrClosed is returned for submissions to a closed server, and
	// resolves Futures of requests still queued when the drain deadline
	// expires at shutdown.
	ErrClosed = errors.New("serve: server closed")
	// ErrExpired resolves the Future of a deadline-carrying request
	// whose budget ran out before launch: the pump sheds it from the
	// queue instead of spending an executor on an answer nobody is
	// waiting for. Counted in Metrics.Expired.
	ErrExpired = errors.New("serve: request deadline expired before launch")
)

// Defaults for Options fields left zero.
const (
	// DefaultQueueDepth bounds each shard's submission queue.
	DefaultQueueDepth = 1024
	// DefaultBatch is the largest request group launched per pump
	// wakeup.
	DefaultBatch = 64
	// DefaultLatencyWindow is the number of recent latency samples each
	// shard's metrics keep.
	DefaultLatencyWindow = 4096
	// DefaultTraceSample is the request-trace sampling interval: one
	// request in every DefaultTraceSample emits its KindUser interval.
	DefaultTraceSample = 8
	// DefaultStealInterval is how often an idle shard re-scans the pool
	// for a steal victim while parked (Options.Steal).
	DefaultStealInterval = time.Millisecond
	// slowTraceCutoff bypasses sampling: any request at least this slow
	// is always traced, so the flight recorder never misses a tail-
	// latency outlier between samples.
	slowTraceCutoff = 25 * time.Millisecond
)

// Options configures a Server.
type Options struct {
	// Backend is the registered backend name (see core.Backends);
	// empty means "go".
	Backend string
	// Threads is the executor count per shard; <= 0 means
	// runtime.NumCPU() divided by the shard count (at least 1), so a
	// zero-value Options keeps the pool's total executor budget at one
	// per CPU rather than multiplying shards by CPUs. With Topo set,
	// <= 0 means the topology's hardware threads per core instead.
	Threads int
	// Scheduler names the backend's ready-pool policy (core.Config.
	// Scheduler); empty means the backend default. Requests the backend
	// cannot honor degrade per the unified API's negotiation rules.
	Scheduler string
	// Shards is the number of independent backend runtimes the server
	// starts, each behind its own queue and pump; <= 0 means
	// runtime.NumCPU(), or the topology's physical core count when Topo
	// is set. One shard reproduces the unsharded engine. This is also
	// the keyed-affinity domain and the autoscaler's floor: keyed
	// submissions hash over these base shards only, so growing or
	// shrinking the pool never remaps a key.
	Shards int
	// Router spreads unkeyed submissions across shards; nil means
	// power-of-two-choices on shard depth (P2C). See RouterByName.
	Router Router
	// QueueDepth bounds each shard's submission queue; <= 0 means
	// DefaultQueueDepth. With every candidate shard's queue full,
	// a non-blocking Do fast-rejects with ErrSaturated and a blocking
	// Do parks.
	QueueDepth int
	// Batch caps the number of requests launched per pump wakeup —
	// queued requests are turned into work units in groups, amortizing
	// the pump's scheduling step; <= 0 means DefaultBatch.
	Batch int
	// MaxInFlight caps launched-but-unfinished work units per shard. At
	// the cap the shard's pump stops launching, so its queue fills and
	// admission control engages; without it every burst would pour
	// straight into the backend's unbounded pools. <= 0 means
	// QueueDepth.
	MaxInFlight int
	// LatencyWindow is the recent-sample count kept per shard for
	// percentile metrics; <= 0 means DefaultLatencyWindow.
	LatencyWindow int
	// DrainTimeout bounds how long Close lets each shard keep launching
	// queued requests. Work already launched always runs to completion;
	// once the deadline passes, requests still queued resolve their
	// Futures with ErrClosed instead of running. Zero means drain
	// without a deadline.
	DrainTimeout time.Duration
	// Steal enables idle-shard work stealing: a shard whose own queues
	// are empty and whose executors have spare capacity takes unkeyed
	// queued requests from the most-loaded shard and runs them itself.
	// Keyed requests are never stolen — they sit in a queue only their
	// pinned shard's pump drains — so the affinity contract holds
	// verbatim. Stolen requests count as Submitted on the shard that
	// accepted them and Completed on the shard that ran them; the
	// aggregate drain identity is unaffected.
	Steal bool
	// StealInterval is how often an idle shard wakes from its park to
	// re-scan for steal victims; <= 0 means DefaultStealInterval.
	// Ignored without Steal.
	StealInterval time.Duration
	// Scale arms the shard autoscaler when Scale.MaxShards exceeds
	// Shards; see AutoScale.
	Scale AutoScale
	// Topo, when set, derives the pool layout from the machine
	// topology: Shards defaults to the physical core count and Threads
	// to the hardware threads per core, so one shard's queue, pump and
	// executors align with one core the way Qthreads binds one Shepherd
	// per core (§III-D). Explicit Shards/Threads override it field by
	// field. See Server.Layout.
	Topo *topo.Topology
	// Tracer records one KindUser interval per request (submission to
	// completion, Unit = request id) into a per-shard flight-recorder
	// lane (Exec = -(shard+1): the work ran on some backend executor,
	// but the interval belongs to the request). Nil selects the
	// process-global recorder (trace.Default) — tracing is always on
	// unless LWT_TRACE_OFF disables the recorder itself.
	Tracer *trace.Recorder
	// TraceSample traces one request in every TraceSample (rounded up
	// to a power of two; <= 0 means DefaultTraceSample, 1 means every
	// request). Requests slower than 25ms are always traced regardless
	// of sampling, so tail outliers never slip between samples.
	TraceSample int
	// OnAnomaly, when non-nil, arms the anomaly watchdog: Metrics() is
	// sampled every AnomalyInterval and the callback fires when the
	// detector sees a P99 spike against its EWMA baseline or sustained
	// saturation growth (see anomalyDetector). The callback runs on the
	// watchdog goroutine — lwtserved uses it to write a flight-recorder
	// dump, which is the point: the trace window still holds the anomaly
	// when the callback fires.
	OnAnomaly func(reason string, m Metrics)
	// AnomalyInterval is the watchdog sample period; <= 0 means
	// DefaultAnomalyInterval. Ignored without OnAnomaly.
	AnomalyInterval time.Duration
}

// Req carries the per-submission options of one Do/DoULT call — the
// attributes the legacy Submit* permutations encoded in their names.
// The zero value is a plain submission: unkeyed, no deadline, blocking.
type Req struct {
	// Key, when non-empty, pins the request to one base shard by
	// FNV-1a hash: every submission carrying the same key lands on the
	// same backend runtime for the server's whole lifetime, keeping
	// shard-local state warm. Keyed requests never re-route, never
	// autoscale onto dynamic shards, and are never stolen.
	Key string
	// Deadline is the request's end-to-end completion budget (zero:
	// none). A request still queued when it passes is shed before
	// launch (Future resolves ErrExpired); a launched handler sees it
	// through its cooperative cancellation signal. A blocking
	// submission gives up at the deadline with ErrExpired. When ctx
	// also carries a deadline the earlier one wins.
	Deadline time.Time
	// NonBlocking selects fast-reject admission: with the routed
	// shard's queue full (and, for unkeyed requests, one re-route
	// exhausted) Do returns ErrSaturated immediately instead of
	// parking.
	NonBlocking bool
}

// request is one queued submission.
type request struct {
	id    uint64
	shard *shard          // shard accountable for the request; thief overwrites at steal
	ctx   context.Context // submission context; nil means background
	ult   bool            // needs a stackful ULT (body takes a Ctx)
	keyed bool            // pinned by affinity key: never re-routed, never stolen
	enq   time.Time
	// deadline is the request's completion budget (zero: none). The
	// pump sheds queued requests whose deadline has passed (one time
	// comparison — no timer), and running handlers see it through the
	// lazily built cancellation signal below.
	deadline time.Time
	// cancelOnce/cancelCh/stopCancel materialize the handler-visible
	// cancellation signal (core.Canceler) on first use only: the hot
	// path of an undeadlined — or deadlined but never-waiting — request
	// never allocates a timer or context for it.
	cancelOnce sync.Once
	cancelCh   <-chan struct{}
	stopCancel func()
	// run executes the body and resolves the Future; the Ctx is nil
	// for tasklet-shaped bodies.
	run func(core.Ctx)
	// fail resolves the Future with an error without running the body
	// (cancellation and shutdown paths).
	fail func(error)
}

// cancelSignal lazily builds the channel handlers and aio waits watch:
// the submission context's Done when there is no deadline, a
// deadline-armed derivation of it otherwise. Built at most once, on
// the handler's own goroutine; finish releases the timer.
func (r *request) cancelSignal() <-chan struct{} {
	r.cancelOnce.Do(func() {
		base := r.ctx
		if base == nil {
			base = context.Background()
		}
		if r.deadline.IsZero() {
			r.cancelCh = base.Done()
			return
		}
		dctx, stop := context.WithDeadline(base, r.deadline)
		r.cancelCh = dctx.Done()
		r.stopCancel = stop
	})
	return r.cancelCh
}

// shard is one independent serving lane: a backend runtime, its bounded
// queues, its pump goroutine, and its slice of the metrics.
//
// Admission is a token semaphore over two channels: slots caps the
// shard's total accepted-but-unlaunched requests at QueueDepth, and a
// holder of a token pushes into keyed or unkeyed, each sized to the
// full depth so the post-token send can never block. The split is what
// makes stealing safe by construction — Go channels are MPMC, so any
// idle pump may receive from another shard's unkeyed channel, while
// the keyed channel has exactly one consumer: the owning pump.
type shard struct {
	s       *Server
	id      int
	keyed   chan *request // drained only by the owning pump — affinity
	unkeyed chan *request // drained by the owner and by stealing pumps
	slots   chan struct{} // admission tokens; cap = QueueDepth over both queues

	inflight atomic.Int64 // launched-but-unfinished work units
	// ioparked counts the subset of inflight currently parked on the
	// async-I/O reactor (lwt.Sleep, ReadIO, ...): launched and
	// unfinished, but holding no executor. The pump's admission gate and
	// the shutdown pacer meter true CPU occupancy — inflight minus
	// ioparked — so handlers waiting on I/O do not cap the shard's
	// concurrency; the drain loop keeps watching total inflight, because
	// a parked handler still owes a completion.
	ioparked atomic.Int64
	queued   atomic.Int64 // accepted-but-unlaunched requests, both queues
	m        metrics
	done     chan struct{} // pump exited, runtime finalized
	// ring is the shard's request lane in the flight recorder. It is
	// multi-writer — finish runs on whichever backend executor completed
	// the request — which the ring's claim protocol handles.
	ring *trace.Ring
	// rt publishes the shard's runtime to metrics scrapes (SchedStats);
	// only the pump goroutine stores it.
	rt atomic.Pointer[core.Runtime]
}

// load is the routing signal: accepted-but-unlaunched plus in-flight
// requests, two atomic loads.
func (sh *shard) load() int {
	return int(sh.queued.Load() + sh.inflight.Load())
}

// queueFor picks the request's admission channel by affinity.
func (sh *shard) queueFor(r *request) chan *request {
	if r.keyed {
		return sh.keyed
	}
	return sh.unkeyed
}

// push settles the admission accounting and buffers one request whose
// token the caller already holds — the single place the accepted-
// submission counters are bumped, shared by the non-blocking and
// parked paths. The channel send cannot block: each queue's capacity
// matches the token count.
func (sh *shard) push(r *request) {
	r.shard = sh
	sh.queued.Add(1)
	sh.m.submitted.Add(1)
	sh.queueFor(r) <- r
}

// pop settles the dequeue side: one queued-counter decrement and one
// token release per request received from either channel, whether by
// the owning pump or a stealing one.
func (sh *shard) pop() {
	sh.queued.Add(-1)
	<-sh.slots
}

// tryEnqueue is the non-blocking admission step onto this shard.
func (sh *shard) tryEnqueue(r *request) bool {
	select {
	case sh.slots <- struct{}{}:
	default:
		return false
	}
	sh.push(r)
	return true
}

// Server is a request-serving engine over a pool of backend runtimes.
// Create one with New, submit through Submitter, stop with Close.
type Server struct {
	opts   Options
	router Router
	// base is the configured shard count: the keyed-affinity hash
	// domain and the autoscaler's floor. Base shards are never removed
	// from the routing set.
	base int
	// set is the routing set — the shards unkeyed submissions may land
	// on, read lock-free on the submit fast path and swapped whole by
	// the autoscaler under scaleMu. Base shards are always members;
	// dynamic shards come and go.
	set atomic.Pointer[[]*shard]
	// all is every shard ever started, base and dynamic, in id order —
	// the metrics domain. A scaled-down shard leaves the routing set
	// but stays here: its counters remain visible (and monotonic) and
	// its parked pump still owns its queues, so a submission that raced
	// the scale-down is served, not stranded. Guarded by scaleMu.
	all     []*shard
	scaleMu sync.Mutex
	// baseShards is the immutable prefix of all — the shards New
	// created, the keyed-affinity domain. Never appended to after New,
	// so keyed admission reads it without scaleMu.
	baseShards []*shard
	rec        *trace.Recorder
	// scaleRing is the autoscaler's trace lane: one KindUser instant
	// per scale event, Unit = the new routing-set size.
	scaleRing            *trace.Ring
	scaleUps, scaleDowns atomic.Uint64
	layout               string // topology-derived layout, "" without Topo

	quit   chan struct{}
	closed atomic.Bool
	active atomic.Int64 // producers currently inside a submit call
	nextID atomic.Uint64
	start  time.Time
	// drainBy is the shutdown deadline in unix nanoseconds (0 = none).
	// It is written before quit closes, so pumps that observed the
	// close see it.
	drainBy atomic.Int64
	// traceMask samples request traces: id&traceMask == 0 emits.
	// TraceSample rounded up to a power of two, minus one.
	traceMask uint64
}

// TopoLayout maps a machine topology onto a shard-pool layout: one
// shard per physical core — each core's queue, pump and executors stay
// local, the way Qthreads binds one Shepherd per core — with one
// executor per hardware thread of that core.
func TopoLayout(t topo.Topology) (shards, threads int) {
	shards = t.Count(topo.LevelCore)
	threads = t.PUsPerCore
	if shards < 1 {
		shards = 1
	}
	if threads < 1 {
		threads = 1
	}
	return shards, threads
}

// New starts a server: it spawns one pump goroutine per shard, each
// initializing its own instance of the named backend, and returns once
// every shard is serving (or any initialization failed, in which case
// the shards that did start are torn down).
func New(opts Options) (*Server, error) {
	if opts.Backend == "" {
		opts.Backend = "go"
	}
	layout := ""
	if opts.Topo != nil {
		ts, tt := TopoLayout(*opts.Topo)
		if opts.Shards <= 0 {
			opts.Shards = ts
		}
		if opts.Threads <= 0 {
			opts.Threads = tt
		}
		layout = fmt.Sprintf("%s -> %d shards x %d executors", opts.Topo, opts.Shards, opts.Threads)
	}
	if opts.Shards <= 0 {
		opts.Shards = runtime.NumCPU()
	}
	if opts.Threads <= 0 {
		// Split the CPU budget across the pool: defaulting both fields
		// yields NumCPU total executors, not Shards x NumCPU.
		opts.Threads = runtime.NumCPU() / opts.Shards
		if opts.Threads < 1 {
			opts.Threads = 1
		}
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.Batch <= 0 {
		opts.Batch = DefaultBatch
	}
	if opts.MaxInFlight <= 0 {
		opts.MaxInFlight = opts.QueueDepth
	}
	if opts.LatencyWindow <= 0 {
		opts.LatencyWindow = DefaultLatencyWindow
	}
	if opts.TraceSample <= 0 {
		opts.TraceSample = DefaultTraceSample
	}
	if opts.StealInterval <= 0 {
		opts.StealInterval = DefaultStealInterval
	}
	if opts.Scale.MaxShards < opts.Shards {
		opts.Scale.MaxShards = opts.Shards // autoscaling off
	}
	if opts.Scale.Interval <= 0 {
		opts.Scale.Interval = DefaultScaleInterval
	}
	router := opts.Router
	if router == nil {
		router = P2C{}
	}
	s := &Server{
		opts:   opts,
		router: router,
		base:   opts.Shards,
		quit:   make(chan struct{}),
		start:  time.Now(),
		layout: layout,
	}
	mask := uint64(1)
	for int(mask) < opts.TraceSample {
		mask <<= 1
	}
	s.traceMask = mask - 1
	s.rec = opts.Tracer
	if s.rec == nil {
		s.rec = trace.Default()
	}
	s.all = make([]*shard, opts.Shards)
	for i := range s.all {
		s.all[i] = s.newShard(i)
	}
	// Publish the routing set before any pump starts: an idle stealing
	// pump scans it immediately.
	s.baseShards = s.all
	set := append([]*shard(nil), s.all...)
	s.set.Store(&set)
	ready := make(chan error, opts.Shards)
	for _, sh := range s.all {
		go sh.pump(ready)
	}
	var firstErr error
	for range s.all {
		if err := <-ready; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		// Tear down the shards that did start.
		s.closed.Store(true)
		close(s.quit)
		for _, sh := range s.all {
			<-sh.done
		}
		return nil, fmt.Errorf("serve: start %q: %w", opts.Backend, firstErr)
	}
	if opts.Scale.MaxShards > opts.Shards {
		s.scaleRing = s.rec.SharedRing(fmt.Sprintf("serve/%s/scale", opts.Backend), scaleLaneExec)
		go s.watchScale()
	}
	if opts.OnAnomaly != nil {
		go s.watchAnomalies()
	}
	return s, nil
}

// newShard builds one shard's queues, token pool and trace lane; the
// caller starts its pump. Used by New for the base shards and by the
// autoscaler for dynamic ones.
func (s *Server) newShard(id int) *shard {
	sh := &shard{
		s:       s,
		id:      id,
		keyed:   make(chan *request, s.opts.QueueDepth),
		unkeyed: make(chan *request, s.opts.QueueDepth),
		slots:   make(chan struct{}, s.opts.QueueDepth),
		done:    make(chan struct{}),
		ring:    s.rec.SharedRing(fmt.Sprintf("serve/%s/shard%d", s.opts.Backend, id), -(id + 1)),
	}
	sh.m.lats = make([]time.Duration, s.opts.LatencyWindow)
	return sh
}

// MustNew is New for known-good options; it panics on error.
func MustNew(opts Options) *Server {
	s, err := New(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Backend reports the serving backend's name.
func (s *Server) Backend() string { return s.opts.Backend }

// NumShards reports the routing set's current size: base shards plus
// live dynamic shards. It changes over time when autoscaling is armed.
func (s *Server) NumShards() int { return len(*s.set.Load()) }

// Router reports the router spreading unkeyed submissions.
func (s *Server) Router() Router { return s.router }

// Layout reports the topology-derived pool layout ("" when Options.Topo
// was not set), e.g. "1 sockets x 4 cores x 2 PUs (8 PUs) -> 4 shards x
// 2 executors".
func (s *Server) Layout() string { return s.layout }

// ShardOf reports the shard index keyed submissions with this affinity
// key pin to — stable for the server's whole lifetime. Keys hash over
// the base shard count only, so autoscaling never remaps them.
func (s *Server) ShardOf(key string) int { return keyShard(key, s.base) }

// shards returns the current routing set, one atomic load.
func (s *Server) shards() []*shard { return *s.set.Load() }

// leastLoaded scans the routing set for the shard with the smallest
// depth — the re-route target and the blocking submit's parking spot.
// The scan is O(shards) of atomic loads, off the fast path (it runs
// only after the router's pick saturated).
func leastLoaded(set []*shard) *shard {
	best := set[0]
	bestLoad := best.load()
	for _, sh := range set[1:] {
		if l := sh.load(); l < bestLoad {
			best, bestLoad = sh, l
		}
	}
	return best
}

// Submitter returns the server's injection front-end. It is safe for any
// number of goroutines and can be handed to producers that should not be
// able to Close the server.
func (s *Server) Submitter() *Submitter { return &Submitter{s: s} }

// Close stops the server with a graceful drain: new submissions are
// rejected with ErrClosed, every shard runs the requests accepted before
// Close to completion (bounded by Options.DrainTimeout — past the
// deadline, still-queued requests resolve to ErrClosed instead of
// running), requests racing with Close resolve to ErrClosed, and each
// shard's backend is finalized once its pump has drained — scaled-down
// shards included. No accepted Future is left unresolved. Close blocks
// until every pump has exited and is idempotent.
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		if s.opts.DrainTimeout > 0 {
			// Written before close(quit): the channel close publishes
			// it to every pump.
			s.drainBy.Store(time.Now().Add(s.opts.DrainTimeout).UnixNano())
		}
		close(s.quit)
	}
	s.scaleMu.Lock()
	all := append([]*shard(nil), s.all...)
	s.scaleMu.Unlock()
	for _, sh := range all {
		<-sh.done
	}
}

// pump is one shard's backend main thread: it owns that shard's runtime
// end to end and is the only goroutine that touches it (stealing moves
// queued requests, never runtime access).
func (sh *shard) pump(ready chan<- error) {
	s := sh.s
	rt, err := core.Open(core.Config{
		Backend:   s.opts.Backend,
		Executors: s.opts.Threads,
		Scheduler: s.opts.Scheduler,
	})
	if err != nil {
		ready <- err
		sh.ring.Close()
		close(sh.done)
		return
	}
	sh.rt.Store(rt)
	ready <- nil
	batch := make([]*request, 0, s.opts.Batch)
	// wake re-arms before each idle park when stealing is on, so a
	// parked shard periodically re-scans the pool for backlog to steal.
	var wake *time.Timer
	for {
		batch = batch[:0]
		// Batch drain: group up to Batch queued requests into work
		// units per wakeup, so one scheduler step admits many requests.
		// The MaxInFlight cap leaves the excess queued, which is what
		// lets the bounded queue fill and reject.
		// The gate meters executor occupancy, not liveness: work units
		// parked on the async-I/O reactor hold no executor, so they are
		// discounted and the shard keeps admitting while they wait.
		// Keyed requests drain first — only this pump can serve them,
		// while queued unkeyed work may still be rescued by a thief.
		for len(batch) < s.opts.Batch && int(sh.inflight.Load()-sh.ioparked.Load())+len(batch) < s.opts.MaxInFlight {
			select {
			case r := <-sh.keyed:
				sh.pop()
				batch = append(batch, r)
			default:
				select {
				case r := <-sh.unkeyed:
					sh.pop()
					batch = append(batch, r)
				default:
					goto collected
				}
			}
		}
	collected:
		if len(batch) == 0 && s.opts.Steal {
			// Own queues empty (or occupancy at cap — the steal helper
			// rechecks capacity): be a thief before being idle.
			sh.stealInto(&batch)
		}
		if len(batch) == 0 {
			if sh.inflight.Load() > 0 {
				// Work in flight: drive the backend's scheduler. For
				// cooperative masters this is load-bearing — Converse's
				// processor 0 and the adopted primaries of Argobots and
				// MassiveThreads execute their local queues only inside
				// the main thread's Yield, so the pump cannot park on a
				// completion signal without stalling those backends; it
				// polls instead. For autonomous backends (go, qthreads)
				// Yield degrades to runtime.Gosched, which donates the
				// processor to the executors rather than spinning past
				// them; the pump still parks fully whenever inflight
				// drops to zero (the branch below).
				rt.Yield()
			} else {
				// Fully idle: park until traffic or shutdown arrives —
				// or, with stealing on, until the next victim scan.
				var wakeC <-chan time.Time
				if s.opts.Steal {
					if wake == nil {
						wake = time.NewTimer(s.opts.StealInterval)
					} else {
						wake.Reset(s.opts.StealInterval)
					}
					wakeC = wake.C
				}
				select {
				case r := <-sh.keyed:
					sh.pop()
					batch = append(batch, r)
				case r := <-sh.unkeyed:
					sh.pop()
					batch = append(batch, r)
				case <-wakeC:
				case <-s.quit:
					sh.shutdown(rt)
					return
				}
				if wake != nil && !wake.Stop() {
					select {
					case <-wake.C:
					default:
					}
				}
			}
		}
		for _, r := range batch {
			sh.launch(rt, r)
		}
		select {
		case <-s.quit:
			sh.shutdown(rt)
			return
		default:
		}
	}
}

// stealInto is the idle-shard steal: scan the routing set for the shard
// with the deepest unkeyed backlog and take up to half of it (bounded
// by Batch and this shard's spare executor capacity). Only unkeyed
// requests are reachable — the keyed channel has no consumer but its
// owner — so affinity survives by construction. A shard that has been
// scaled out of the routing set neither steals nor is stolen from.
func (sh *shard) stealInto(batch *[]*request) {
	s := sh.s
	room := s.opts.MaxInFlight - int(sh.inflight.Load()-sh.ioparked.Load()) - len(*batch)
	if room <= 0 {
		return
	}
	set := s.shards()
	var victim *shard
	best, member := 0, false
	for _, v := range set {
		if v == sh {
			member = true
			continue
		}
		if n := len(v.unkeyed); n > best {
			victim, best = v, n
		}
	}
	if victim == nil || !member {
		return
	}
	max := (best + 1) / 2
	if max > room {
		max = room
	}
	if max > s.opts.Batch-len(*batch) {
		max = s.opts.Batch - len(*batch)
	}
	for i := 0; i < max; i++ {
		select {
		case r := <-victim.unkeyed:
			victim.pop()
			r.shard = sh
			sh.m.steals.Add(1)
			sh.ring.Instant(trace.KindSteal, r.id)
			*batch = append(*batch, r)
		default:
			return
		}
	}
}

// launch turns one accepted request into a backend work unit — or
// sheds it, exactly once, if its budget is already spent: a submission
// context cancelled while queued or a deadline that passed fails the
// Future (ctx.Err() / ErrExpired) without occupying an executor, and
// counts as Expired in the drain identity
// (Submitted == Completed + Rejected + Expired).
func (sh *shard) launch(rt *core.Runtime, r *request) {
	if r.ctx != nil {
		if err := r.ctx.Err(); err != nil {
			sh.m.expired.Add(1)
			sh.ring.Instant(trace.KindCancel, r.id)
			r.fail(err)
			return
		}
	}
	if !r.deadline.IsZero() && !time.Now().Before(r.deadline) {
		sh.m.expired.Add(1)
		sh.ring.Instant(trace.KindCancel, r.id)
		r.fail(ErrExpired)
		return
	}
	sh.inflight.Add(1)
	if r.ult {
		rt.ULTCreate(r.run)
	} else {
		rt.TaskletCreate(func() { r.run(nil) })
	}
}

// shutdown drains one shard on its pump goroutine: accepted requests
// run to completion (until the drain deadline, after which they resolve
// to ErrClosed unrun), in-flight work is driven until done, straggling
// producers are waited out and anything they enqueued is rejected, then
// the shard's backend is finalized. Every accepted Future resolves.
func (sh *shard) shutdown(rt *core.Runtime) {
	defer close(sh.done)
	s := sh.s
	deadline := s.drainBy.Load()
	expired := func() bool {
		return deadline != 0 && time.Now().UnixNano() >= deadline
	}
	reject := func(r *request) {
		sh.pop()
		sh.m.rejected.Add(1)
		r.fail(ErrClosed)
	}
	// Run everything accepted before Close, paced at MaxInFlight so the
	// drain cannot overload the backend. Past the deadline, requests
	// still queued resolve to ErrClosed instead of running.
drain:
	for {
		if expired() {
			for {
				select {
				case r := <-sh.keyed:
					reject(r)
					continue
				case r := <-sh.unkeyed:
					reject(r)
					continue
				default:
				}
				break drain
			}
		}
		if int(sh.inflight.Load()-sh.ioparked.Load()) >= s.opts.MaxInFlight {
			rt.Yield()
			runtime.Gosched()
			continue
		}
		select {
		case r := <-sh.keyed:
			sh.pop()
			sh.launch(rt, r)
		case r := <-sh.unkeyed:
			sh.pop()
			sh.launch(rt, r)
		default:
			break drain
		}
	}
	// Launched work always runs to completion — a live work unit cannot
	// be abandoned without corrupting the backend — so the deadline
	// bounds queue drain, not execution.
	for sh.inflight.Load() > 0 {
		rt.Yield()
		runtime.Gosched()
	}
	// Producers that passed the closed check concurrently with Close
	// are counted in active; drain-reject until they are gone so no
	// Future is left unresolved and no producer is left blocked. The
	// counter is server-wide (a straggler may target any shard), so
	// every shard holds its queues open until the last producer exits.
	for s.active.Load() > 0 {
		select {
		case r := <-sh.keyed:
			reject(r)
		case r := <-sh.unkeyed:
			reject(r)
		default:
			runtime.Gosched()
		}
	}
	// A straggler's enqueue happens before its active-counter
	// decrement, so once active reached zero everything it sent is
	// already buffered; one final sweep resolves it.
	for {
		select {
		case r := <-sh.keyed:
			reject(r)
			continue
		case r := <-sh.unkeyed:
			reject(r)
			continue
		default:
		}
		break
	}
	rt.Finalize()
	sh.ring.Close()
}

// finish settles one completed request's accounting and trace. The
// trace emission costs no extra clock read — the latency measurement's
// endpoints are reused (EmitAt) — and is sampled (Options.TraceSample)
// so the always-on recorder charges the hot path one mask compare per
// untraced request. Slow requests bypass the sampler: the window always
// holds the outliers a post-incident dump is taken for.
func (sh *shard) finish(r *request) {
	lat := time.Since(r.enq)
	sh.inflight.Add(-1)
	sh.m.observe(lat)
	if r.stopCancel != nil {
		// Release the deadline timer armed by cancelSignal. Same
		// goroutine that built it (the handler's work unit), so the
		// read is ordered after any Do.
		r.stopCancel()
	}
	if r.id&sh.s.traceMask == 0 || lat >= slowTraceCutoff {
		sh.ring.EmitAt(trace.KindUser, r.id, r.enq, lat)
	}
}

// ioParkable mirrors the async-I/O layer's park hook: a backend context
// implementing it can suspend its work unit off the executor and be
// resumed from the reactor.
type ioParkable interface {
	IOPark() (park func(), unpark func())
}

// requestCtx wraps every handler's backend context with the request's
// cooperative cancellation signal: CancelCh (core.Canceler) is what
// lets a running handler — and the aio waits it issues — observe that
// its deadline passed or its client went away. The signal is built
// lazily, so handlers that never look pay nothing.
type requestCtx struct {
	core.Ctx
	r *request
}

func (c requestCtx) CancelCh() <-chan struct{} { return c.r.cancelSignal() }

// parkRequestCtx is requestCtx on AsyncIO backends, adding the
// park-counting IOPark so the shard can tell which in-flight work
// units are parked on the reactor. Struct embedding (not interface
// embedding) is load-bearing: embedding the Ctx interface would not
// promote the concrete backend value's IOPark method, so the wrapper
// re-mints it here. The park half of every minted pair brackets the
// suspension with the ioparked counter — both adjustments run on the
// work unit's own goroutine (before suspending, after resuming), so
// the accounting is exact, not sampled.
type parkRequestCtx struct {
	requestCtx
	sh *shard
}

func (c parkRequestCtx) IOPark() (func(), func()) {
	park, unpark := c.Ctx.(ioParkable).IOPark()
	sh := c.sh
	counted := func() {
		sh.ioparked.Add(1)
		start := sh.ring.Now()
		park()
		sh.ring.Interval(trace.KindPark, 0, start)
		sh.ioparked.Add(-1)
	}
	return counted, unpark
}

// Submitter is the multi-producer, thread-safe injection front-end: the
// missing external-submission path of the Table II API. All methods may
// be called from any goroutine, concurrently.
type Submitter struct {
	s *Server
}

// Server returns the owning server (for metrics access from handlers).
func (sub *Submitter) Server() *Server { return sub.s }

// makeRequest builds the queue entry and Future for one submission.
// The latency clock (enq) starts here, before admission: for a blocking
// Do the time spent waiting on a full queue is part of the request's
// end-to-end latency. That is deliberate — measuring from intended
// arrival rather than from admission is what keeps open-loop percentiles
// honest under backpressure (no coordinated omission).
func makeRequest[T any](s *Server, ctx context.Context, deadline time.Time, ult bool, fn func(core.Ctx) (T, error)) (*request, *Future[T]) {
	f := newFuture[T]()
	r := &request{
		id:       s.nextID.Add(1),
		ctx:      ctx,
		ult:      ult,
		enq:      time.Now(),
		deadline: deadline,
	}
	r.fail = func(err error) {
		var zero T
		f.complete(zero, err)
	}
	r.run = func(c core.Ctx) {
		sh := r.shard
		if c != nil {
			rc := requestCtx{Ctx: c, r: r}
			if _, ok := c.(ioParkable); ok {
				c = parkRequestCtx{requestCtx: rc, sh: sh}
			} else {
				c = rc
			}
		}
		defer func() {
			if p := recover(); p != nil {
				sh.m.panicked.Add(1)
				var zero T
				f.complete(zero, &PanicError{Value: p, Stack: debug.Stack()})
			}
			sh.finish(r)
		}()
		v, err := fn(c)
		if err != nil {
			sh.m.failed.Add(1)
		}
		f.complete(v, err)
	}
	return r, f
}

// Do submits fn as a tasklet-shaped request (stackless body, no
// cooperative context) with the options in req — the single entry
// point the legacy Submit*/TrySubmit* permutations collapse into.
//
// With the zero Req, Do blocks while the queues are full until space
// frees, ctx is cancelled, or the server closes; a deadline on ctx is
// adopted as the request's completion budget. Req.Key pins the request
// to its key's base shard, Req.Deadline sets an explicit budget, and
// Req.NonBlocking turns a full queue into an immediate ErrSaturated.
func Do[T any](sub *Submitter, ctx context.Context, fn func() (T, error), req Req) (*Future[T], error) {
	return do(sub, ctx, false, func(core.Ctx) (T, error) { return fn() }, req)
}

// DoULT is Do for stackful request bodies: fn receives the cooperative
// context, so it can spawn and join child work units (nested
// parallelism on the serving runtime) and issue cancelable aio waits.
func DoULT[T any](sub *Submitter, ctx context.Context, fn func(core.Ctx) (T, error), req Req) (*Future[T], error) {
	return do(sub, ctx, true, fn, req)
}

// do resolves Req into the admission path: key to pin, NonBlocking to
// fast-reject versus park.
func do[T any](sub *Submitter, ctx context.Context, ult bool, fn func(core.Ctx) (T, error), req Req) (*Future[T], error) {
	pin := -1
	if req.Key != "" {
		pin = sub.s.ShardOf(req.Key)
	}
	if req.NonBlocking {
		return trySubmit(sub, ctx, req.Deadline, pin, ult, fn)
	}
	return submit(sub, ctx, req.Deadline, pin, ult, fn)
}

// trySubmit is the non-blocking admission path with two-level admission:
// the router's pick is tried first; if that shard's queue is full the
// request is re-routed once to the least-loaded shard before
// ErrSaturated surfaces. pin >= 0 bypasses the router and disables the
// re-route (keyed affinity).
func trySubmit[T any](sub *Submitter, ctx context.Context, deadline time.Time, pin int, ult bool, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	s := sub.s
	s.active.Add(1)
	defer s.active.Add(-1)
	if s.closed.Load() {
		return nil, ErrClosed
	}
	r, f := makeRequest(s, ctx, deadline, ult, fn)
	if pin >= 0 {
		r.keyed = true
		sh := s.keyedShard(pin)
		if sh.tryEnqueue(r) {
			return f, nil
		}
		sh.m.saturated.Add(1)
		return nil, ErrSaturated
	}
	set := s.shards()
	sh := set[s.router.Pick(len(set), func(i int) int { return set[i].load() })]
	if sh.tryEnqueue(r) {
		return f, nil
	}
	if alt := leastLoaded(set); alt != sh && alt.tryEnqueue(r) {
		return f, nil
	}
	sh.m.saturated.Add(1)
	return nil, ErrSaturated
}

// keyedShard resolves a keyed pin onto its base shard. baseShards is
// immutable after New (the autoscaler appends to all, never here), so
// the read needs no lock.
func (s *Server) keyedShard(pin int) *shard {
	return s.baseShards[pin%s.base]
}

// submit is the blocking admission path with context cancellation: it
// first tries the router's pick without blocking, then parks on the
// least-loaded shard. pin >= 0 pins both attempts to one shard (keyed
// affinity). A deadline — explicit, or adopted from the submission
// context — bounds the park too: a request that cannot even enqueue
// inside its budget returns ErrExpired instead of blocking past it.
func submit[T any](sub *Submitter, ctx context.Context, deadline time.Time, pin int, ult bool, fn func(core.Ctx) (T, error)) (*Future[T], error) {
	s := sub.s
	s.active.Add(1)
	defer s.active.Add(-1)
	if s.closed.Load() {
		return nil, ErrClosed
	}
	adopted := false // deadline came from ctx, whose Done covers the park
	if ctx != nil {
		if dl, ok := ctx.Deadline(); ok && (deadline.IsZero() || dl.Before(deadline)) {
			deadline = dl
			adopted = true
		}
	}
	r, f := makeRequest(s, ctx, deadline, ult, fn)
	var sh *shard
	if pin >= 0 {
		r.keyed = true
		sh = s.keyedShard(pin)
	} else {
		set := s.shards()
		sh = set[s.router.Pick(len(set), func(i int) int { return set[i].load() })]
	}
	if sh.tryEnqueue(r) {
		return f, nil
	}
	if pin < 0 {
		sh = leastLoaded(s.shards())
	}
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	var expire <-chan time.Time
	if !deadline.IsZero() && !adopted {
		// The timer arms only on the blocked path — a queue with room
		// never pays for it — and only for an explicit deadline: one
		// adopted from ctx is already enforced by ctx.Done, and racing
		// a second timer against the context's own would surface
		// ErrExpired where callers armed DeadlineExceeded. Either way
		// the submission was never accepted, so it counts as
		// canceled-at-submit, outside the drain identity.
		tm := time.NewTimer(time.Until(deadline))
		defer tm.Stop()
		expire = tm.C
	}
	select {
	case sh.slots <- struct{}{}:
		sh.push(r)
		return f, nil
	case <-cancel:
		sh.m.canceled.Add(1)
		return nil, ctx.Err()
	case <-expire:
		sh.m.canceled.Add(1)
		// A deadline adopted from ctx races ctx.Done here; surface the
		// context's own error so callers see the sentinel they armed.
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, ErrExpired
	case <-s.quit:
		return nil, ErrClosed
	}
}

// Snapshot reads the server's counters and latency windows once and
// returns both views: the cross-shard aggregate (Metrics.Shard == -1)
// and the per-shard breakdown (entry i is shard i, including shards
// currently scaled out of the routing set — their counters stay
// visible and monotonic). Each shard's latency ring is locked and
// copied a single time, shared by both views — the form a metrics
// scrape that wants aggregate and breakdown together should use.
func (s *Server) Snapshot() (Metrics, []Metrics) {
	up := time.Since(s.start)
	s.scaleMu.Lock()
	all := append([]*shard(nil), s.all...)
	s.scaleMu.Unlock()
	shards := s.NumShards()
	agg := Metrics{
		Backend:    s.opts.Backend,
		Shard:      -1,
		Shards:     shards,
		Router:     s.router.Name(),
		Uptime:     up,
		ScaleUps:   s.scaleUps.Load(),
		ScaleDowns: s.scaleDowns.Load(),
	}
	per := make([]Metrics, len(all))
	var window []time.Duration
	for i, sh := range all {
		mt := Metrics{
			Backend:    s.opts.Backend,
			Shard:      sh.id,
			Shards:     shards,
			Router:     s.router.Name(),
			Submitted:  sh.m.submitted.Load(),
			Completed:  sh.m.completed.Load(),
			Saturated:  sh.m.saturated.Load(),
			Canceled:   sh.m.canceled.Load(),
			Expired:    sh.m.expired.Load(),
			Rejected:   sh.m.rejected.Load(),
			Failed:     sh.m.failed.Load(),
			Panicked:   sh.m.panicked.Load(),
			Steals:     sh.m.steals.Load(),
			QueueDepth: int(sh.queued.Load()),
			InFlight:   int(sh.inflight.Load()),
			IOParked:   int(sh.ioparked.Load()),
			Uptime:     up,
			Hist:       sh.m.histSnapshot(),
			LatencySum: time.Duration(sh.m.latSum.Load()),
		}
		if mt.QueueDepth < 0 {
			mt.QueueDepth = 0 // transient: pop decrements before a racing push's increment lands
		}
		if rt := sh.rt.Load(); rt != nil {
			mt.Sched = rt.SchedStats()
		}
		w := sh.m.window()
		if secs := up.Seconds(); secs > 0 {
			mt.Throughput = float64(mt.Completed) / secs
		}
		if len(w) > 0 {
			mt.Latency = microbench.Summarize(w)
		}
		per[i] = mt
		window = append(window, w...)
		agg.Submitted += mt.Submitted
		agg.Completed += mt.Completed
		agg.Saturated += mt.Saturated
		agg.Canceled += mt.Canceled
		agg.Expired += mt.Expired
		agg.Rejected += mt.Rejected
		agg.Failed += mt.Failed
		agg.Panicked += mt.Panicked
		agg.Steals += mt.Steals
		agg.QueueDepth += mt.QueueDepth
		agg.InFlight += mt.InFlight
		agg.IOParked += mt.IOParked
		agg.LatencySum += mt.LatencySum
		agg.Sched = agg.Sched.Plus(mt.Sched)
		if agg.Hist == nil {
			agg.Hist = make([]uint64, len(mt.Hist))
		}
		for b, v := range mt.Hist {
			agg.Hist[b] += v
		}
	}
	if secs := up.Seconds(); secs > 0 {
		agg.Throughput = float64(agg.Completed) / secs
	}
	if len(window) > 0 {
		agg.Latency = microbench.Summarize(window)
	}
	return agg, per
}

// Metrics snapshots the server's counters and recent latency windows,
// aggregated across every shard (Metrics.Shard is -1). Use ShardMetrics
// for the per-shard breakdown, or Snapshot for both in one pass.
func (s *Server) Metrics() Metrics {
	agg, _ := s.Snapshot()
	return agg
}

// ShardMetrics snapshots each shard's own counters and latency window;
// entry i is shard i (Metrics.Shard = i). The sum over entries is
// Metrics().
func (s *Server) ShardMetrics() []Metrics {
	_, per := s.Snapshot()
	return per
}
