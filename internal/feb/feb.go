// Package feb implements full/empty-bit (FEB) memory synchronization, the
// distinctive mechanism of Qthreads (§III-D): every synchronization word
// carries a full/empty bit, and reads/writes can condition on and change
// that bit atomically. Qthreads builds both its join operation
// (qthread_readFF on the return-value word, Table II) and its mutexes out
// of FEBs; the paper notes this "free access to memory requires hidden
// synchronization, which may severely impact performance" — the hidden
// synchronization is the sharded word table implemented here.
package feb

import (
	"sync"
	"sync/atomic"
)

// Addr identifies a synchronization word in a Table. Addresses are opaque
// and process-unique, standing in for the C library's machine addresses.
type Addr uint64

// word is one full/empty synchronized cell.
type word struct {
	full bool
	val  uint64
	cond *sync.Cond
}

const shardCount = 64

type shard struct {
	mu    sync.Mutex
	words map[Addr]*word
}

// Table is a sharded map of FEB words. The sharding models the hashed
// lock tables real FEB implementations use to cover arbitrary memory.
type Table struct {
	shards  [shardCount]shard
	nextID  atomic.Uint64
	waits   atomic.Uint64
	wakeups atomic.Uint64
}

// NewTable returns an empty FEB table.
func NewTable() *Table {
	t := &Table{}
	for i := range t.shards {
		t.shards[i].words = make(map[Addr]*word)
	}
	return t
}

// Alloc creates a fresh word in the empty state and returns its address.
func (t *Table) Alloc() Addr {
	a := Addr(t.nextID.Add(1))
	s := t.shard(a)
	s.mu.Lock()
	s.words[a] = &word{cond: sync.NewCond(&s.mu)}
	s.mu.Unlock()
	return a
}

func (t *Table) shard(a Addr) *shard { return &t.shards[uint64(a)%shardCount] }

// get returns the word for a, creating it empty on first touch (FEB
// semantics cover all of memory; untouched words are empty).
func (t *Table) get(s *shard, a Addr) *word {
	w := s.words[a]
	if w == nil {
		w = &word{cond: sync.NewCond(&s.mu)}
		s.words[a] = w
	}
	return w
}

// Free removes the word from the table, releasing its entry. Long-lived
// tables (a runtime's lifetime) would otherwise grow by one entry per
// Alloc forever. Freeing a word that still has waiters is a caller
// error; a later touch of the address recreates it empty.
func (t *Table) Free(a Addr) {
	s := t.shard(a)
	s.mu.Lock()
	delete(s.words, a)
	s.mu.Unlock()
}

// Waits reports how many blocking FEB operations had to wait — the
// "hidden synchronization" cost of §III-D made observable.
func (t *Table) Waits() uint64 { return t.waits.Load() }

// Fill sets the word full without changing its value, waking waiters.
func (t *Table) Fill(a Addr) {
	s := t.shard(a)
	s.mu.Lock()
	w := t.get(s, a)
	w.full = true
	s.mu.Unlock()
	w.cond.Broadcast()
	t.wakeups.Add(1)
}

// Empty marks the word empty without changing its value.
func (t *Table) Empty(a Addr) {
	s := t.shard(a)
	s.mu.Lock()
	t.get(s, a).full = false
	s.mu.Unlock()
}

// IsFull reports the word's current state.
func (t *Table) IsFull(a Addr) bool {
	s := t.shard(a)
	s.mu.Lock()
	defer s.mu.Unlock()
	return t.get(s, a).full
}

// WriteF writes the value and sets the word full regardless of its
// previous state (qthread_writeF).
func (t *Table) WriteF(a Addr, v uint64) {
	s := t.shard(a)
	s.mu.Lock()
	w := t.get(s, a)
	w.val = v
	w.full = true
	s.mu.Unlock()
	w.cond.Broadcast()
	t.wakeups.Add(1)
}

// WriteEF blocks until the word is empty, then writes the value and sets
// it full (qthread_writeEF) — the producer half of an FEB hand-off.
func (t *Table) WriteEF(a Addr, v uint64) {
	s := t.shard(a)
	s.mu.Lock()
	w := t.get(s, a)
	for w.full {
		t.waits.Add(1)
		w.cond.Wait()
	}
	w.val = v
	w.full = true
	s.mu.Unlock()
	w.cond.Broadcast()
	t.wakeups.Add(1)
}

// ReadFF blocks until the word is full, then returns its value leaving it
// full (qthread_readFF) — the join operation in Table II.
func (t *Table) ReadFF(a Addr) uint64 {
	s := t.shard(a)
	s.mu.Lock()
	w := t.get(s, a)
	for !w.full {
		t.waits.Add(1)
		w.cond.Wait()
	}
	v := w.val
	s.mu.Unlock()
	return v
}

// TryReadFF returns the value and true if the word is full, without
// blocking — the polling form used from inside cooperative ULTs.
func (t *Table) TryReadFF(a Addr) (uint64, bool) {
	s := t.shard(a)
	s.mu.Lock()
	defer s.mu.Unlock()
	w := t.get(s, a)
	if !w.full {
		return 0, false
	}
	return w.val, true
}

// TryReadFE returns the value and marks the word empty if it is full,
// without blocking — the polling form of ReadFE, used by cooperative
// ULTs that must yield between attempts instead of parking the executor.
func (t *Table) TryReadFE(a Addr) (uint64, bool) {
	s := t.shard(a)
	s.mu.Lock()
	w := t.get(s, a)
	if !w.full {
		s.mu.Unlock()
		return 0, false
	}
	v := w.val
	w.full = false
	s.mu.Unlock()
	w.cond.Broadcast()
	t.wakeups.Add(1)
	return v, true
}

// ReadFE blocks until the word is full, then returns its value and marks
// it empty (qthread_readFE) — the consumer half of an FEB hand-off.
func (t *Table) ReadFE(a Addr) uint64 {
	s := t.shard(a)
	s.mu.Lock()
	w := t.get(s, a)
	for !w.full {
		t.waits.Add(1)
		w.cond.Wait()
	}
	v := w.val
	w.full = false
	s.mu.Unlock()
	w.cond.Broadcast()
	t.wakeups.Add(1)
	return v
}

// IncrFF blocks until the word is full, adds delta, and returns the new
// value, leaving the word full — the FEB fetch-and-add Qthreads exposes
// for counters over synchronized memory.
func (t *Table) IncrFF(a Addr, delta uint64) uint64 {
	s := t.shard(a)
	s.mu.Lock()
	w := t.get(s, a)
	for !w.full {
		t.waits.Add(1)
		w.cond.Wait()
	}
	w.val += delta
	v := w.val
	s.mu.Unlock()
	return v
}

// SwapFF blocks until the word is full, stores v, and returns the
// previous value, leaving the word full.
func (t *Table) SwapFF(a Addr, v uint64) uint64 {
	s := t.shard(a)
	s.mu.Lock()
	w := t.get(s, a)
	for !w.full {
		t.waits.Add(1)
		w.cond.Wait()
	}
	old := w.val
	w.val = v
	s.mu.Unlock()
	return old
}

// Lock acquires a FEB-based mutex on the word: it waits for full and
// takes the token by emptying it. Unlock refills the word. This is how
// Qthreads exposes mutexes over arbitrary memory words.
func (t *Table) Lock(a Addr) { t.ReadFE(a) }

// TryLock attempts to take the FEB mutex token without blocking and
// reports whether it succeeded. Cooperative callers poll it and yield
// their work unit between attempts, so a held lock never parks an
// executor thread.
func (t *Table) TryLock(a Addr) bool {
	_, ok := t.TryReadFE(a)
	return ok
}

// Unlock releases a FEB-based mutex acquired with Lock.
func (t *Table) Unlock(a Addr) { t.Fill(a) }

// Mutex wraps a FEB word as a ready-to-use lock (allocated full, i.e.,
// unlocked).
type Mutex struct {
	t *Table
	a Addr
}

// NewMutex allocates an unlocked FEB mutex in t.
func NewMutex(t *Table) *Mutex {
	m := &Mutex{t: t, a: t.Alloc()}
	t.Fill(m.a)
	return m
}

// Lock acquires the mutex.
func (m *Mutex) Lock() { m.t.Lock(m.a) }

// TryLock attempts the acquisition without blocking.
func (m *Mutex) TryLock() bool { return m.t.TryLock(m.a) }

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.t.Unlock(m.a) }
