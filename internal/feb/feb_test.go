package feb

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestAllocStartsEmpty(t *testing.T) {
	tb := NewTable()
	a := tb.Alloc()
	if tb.IsFull(a) {
		t.Fatal("fresh word is full")
	}
	if _, ok := tb.TryReadFF(a); ok {
		t.Fatal("TryReadFF succeeded on empty word")
	}
}

func TestUntouchedAddressIsEmpty(t *testing.T) {
	tb := NewTable()
	// FEB semantics cover all of memory: an address never Alloc'd is a
	// valid empty word.
	a := Addr(0xdeadbeef)
	if tb.IsFull(a) {
		t.Fatal("untouched address reports full")
	}
	tb.WriteF(a, 7)
	if v := tb.ReadFF(a); v != 7 {
		t.Fatalf("ReadFF = %d, want 7", v)
	}
}

func TestWriteFReadFF(t *testing.T) {
	tb := NewTable()
	a := tb.Alloc()
	tb.WriteF(a, 42)
	if !tb.IsFull(a) {
		t.Fatal("word empty after WriteF")
	}
	if v := tb.ReadFF(a); v != 42 {
		t.Fatalf("ReadFF = %d, want 42", v)
	}
	// ReadFF leaves the word full.
	if !tb.IsFull(a) {
		t.Fatal("ReadFF emptied the word")
	}
	if v, ok := tb.TryReadFF(a); !ok || v != 42 {
		t.Fatalf("TryReadFF = %d,%v want 42,true", v, ok)
	}
}

func TestReadFEEmptiesWord(t *testing.T) {
	tb := NewTable()
	a := tb.Alloc()
	tb.WriteF(a, 9)
	if v := tb.ReadFE(a); v != 9 {
		t.Fatalf("ReadFE = %d, want 9", v)
	}
	if tb.IsFull(a) {
		t.Fatal("word still full after ReadFE")
	}
}

func TestReadFFBlocksUntilFill(t *testing.T) {
	tb := NewTable()
	a := tb.Alloc()
	got := make(chan uint64, 1)
	go func() { got <- tb.ReadFF(a) }()
	select {
	case <-got:
		t.Fatal("ReadFF returned on an empty word")
	case <-time.After(20 * time.Millisecond):
	}
	tb.WriteF(a, 5)
	select {
	case v := <-got:
		if v != 5 {
			t.Fatalf("ReadFF = %d, want 5", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ReadFF never woke")
	}
	if tb.Waits() == 0 {
		t.Fatal("blocking read did not count a wait")
	}
}

func TestWriteEFBlocksUntilEmpty(t *testing.T) {
	tb := NewTable()
	a := tb.Alloc()
	tb.WriteF(a, 1)
	wrote := make(chan struct{})
	go func() {
		tb.WriteEF(a, 2)
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("WriteEF returned on a full word")
	case <-time.After(20 * time.Millisecond):
	}
	if v := tb.ReadFE(a); v != 1 {
		t.Fatalf("ReadFE = %d, want 1", v)
	}
	select {
	case <-wrote:
	case <-time.After(2 * time.Second):
		t.Fatal("WriteEF never completed")
	}
	if v := tb.ReadFF(a); v != 2 {
		t.Fatalf("ReadFF = %d, want 2", v)
	}
}

func TestFillAndEmpty(t *testing.T) {
	tb := NewTable()
	a := tb.Alloc()
	tb.Fill(a)
	if !tb.IsFull(a) {
		t.Fatal("Fill did not set full")
	}
	tb.Empty(a)
	if tb.IsFull(a) {
		t.Fatal("Empty did not clear full")
	}
}

// Producer/consumer hand-off through one word: WriteEF/ReadFE alternate
// strictly, so every value is seen exactly once, in order.
func TestFEBHandoffSequence(t *testing.T) {
	tb := NewTable()
	a := tb.Alloc()
	const n = 200
	var got []uint64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			tb.WriteEF(a, uint64(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			got = append(got, tb.ReadFE(a))
		}
	}()
	wg.Wait()
	for i := 0; i < n; i++ {
		if got[i] != uint64(i) {
			t.Fatalf("hand-off out of order at %d: %d", i, got[i])
		}
	}
}

func TestFEBMutexMutualExclusion(t *testing.T) {
	tb := NewTable()
	m := NewMutex(tb)
	const workers, iters = 8, 500
	counter := 0
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != workers*iters {
		t.Fatalf("counter = %d, want %d (lost updates)", counter, workers*iters)
	}
}

func TestManyWaitersAllWake(t *testing.T) {
	tb := NewTable()
	a := tb.Alloc()
	const waiters = 32
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v := tb.ReadFF(a); v != 77 {
				t.Errorf("ReadFF = %d, want 77", v)
			}
		}()
	}
	time.Sleep(10 * time.Millisecond)
	tb.WriteF(a, 77)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("not all ReadFF waiters woke")
	}
}

func TestShardingIsolation(t *testing.T) {
	tb := NewTable()
	// Words in different shards are independent.
	addrs := make([]Addr, 200)
	for i := range addrs {
		addrs[i] = tb.Alloc()
		tb.WriteF(addrs[i], uint64(i))
	}
	for i, a := range addrs {
		if v := tb.ReadFF(a); v != uint64(i) {
			t.Fatalf("word %d holds %d", i, v)
		}
	}
}

func TestIncrFFCountsAtomically(t *testing.T) {
	tb := NewTable()
	a := tb.Alloc()
	tb.WriteF(a, 0)
	const workers, iters = 8, 200
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				tb.IncrFF(a, 1)
			}
		}()
	}
	wg.Wait()
	if v := tb.ReadFF(a); v != workers*iters {
		t.Fatalf("counter = %d, want %d", v, workers*iters)
	}
}

func TestIncrFFBlocksOnEmpty(t *testing.T) {
	tb := NewTable()
	a := tb.Alloc()
	got := make(chan uint64, 1)
	go func() { got <- tb.IncrFF(a, 5) }()
	select {
	case <-got:
		t.Fatal("IncrFF returned on an empty word")
	case <-time.After(20 * time.Millisecond):
	}
	tb.WriteF(a, 10)
	select {
	case v := <-got:
		if v != 15 {
			t.Fatalf("IncrFF = %d, want 15", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("IncrFF never woke")
	}
}

func TestSwapFF(t *testing.T) {
	tb := NewTable()
	a := tb.Alloc()
	tb.WriteF(a, 3)
	if old := tb.SwapFF(a, 9); old != 3 {
		t.Fatalf("SwapFF old = %d, want 3", old)
	}
	if v := tb.ReadFF(a); v != 9 {
		t.Fatalf("value after swap = %d, want 9", v)
	}
	if !tb.IsFull(a) {
		t.Fatal("SwapFF emptied the word")
	}
}

// Property: WriteF then ReadFF round-trips any value at any address.
func TestWriteReadRoundTripProperty(t *testing.T) {
	tb := NewTable()
	f := func(addr uint64, v uint64) bool {
		a := Addr(addr)
		tb.WriteF(a, v)
		return tb.ReadFF(a) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeReleasesWord(t *testing.T) {
	tb := NewTable()
	a := tb.Alloc()
	tb.WriteF(a, 42)
	if !tb.IsFull(a) {
		t.Fatal("word not full after WriteF")
	}
	tb.Free(a)
	// A freed address behaves like untouched memory: recreated empty.
	if tb.IsFull(a) {
		t.Fatal("freed word still full")
	}
	if _, ok := tb.TryReadFF(a); ok {
		t.Fatal("freed word still readable")
	}
}
