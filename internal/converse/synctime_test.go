package converse

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestTwoStepSyncOverheadDominates validates §IX-B/§IX-D quantitatively:
// in two-step patterns (work distributed as Messages, joined through the
// barrier with extra yields) the master spends the majority of the total
// wall time inside synchronization operations — the paper reports 70 %
// (task parallel region) to 75 % (nested tasks) for Converse Threads.
func TestTwoStepSyncOverheadDominates(t *testing.T) {
	rt := Init(4)
	defer rt.Finalize()

	var ran atomic.Int64
	const outer, inner = 40, 10
	t0 := time.Now()
	// Step 1: distribute outer Messages that create the inner ones.
	for i := 0; i < outer; i++ {
		rt.SyncSend(i%4, func(pc *Proc) {
			for j := 0; j < inner; j++ {
				pc.SyncSend((pc.ID()+1)%4, func(*Proc) { ran.Add(1) })
			}
		})
	}
	// Extra yields so locally queued work progresses (the two-step
	// algorithm's hallmark), then the barrier join.
	for ran.Load() < outer*inner {
		rt.Yield()
	}
	rt.Barrier()
	total := time.Since(t0)

	if ran.Load() != outer*inner {
		t.Fatalf("ran = %d, want %d", ran.Load(), outer*inner)
	}
	sync := rt.SyncTime()
	if sync <= 0 || sync > total {
		t.Fatalf("sync time %v outside (0, %v]", sync, total)
	}
	frac := float64(sync) / float64(total)
	// The paper's 70-75 % is machine-specific; assert the qualitative
	// claim: synchronization dominates (> 50 %).
	if frac < 0.5 {
		t.Fatalf("sync fraction = %.2f, want > 0.5 (paper: 0.70-0.75)", frac)
	}
	t.Logf("sync fraction = %.2f (paper reports 0.70-0.75)", frac)
}

func TestSyncTimeMonotonic(t *testing.T) {
	rt := Init(2)
	defer rt.Finalize()
	before := rt.SyncTime()
	rt.SyncSend(1, func(*Proc) {})
	rt.Barrier()
	after := rt.SyncTime()
	if after < before {
		t.Fatalf("SyncTime went backwards: %v -> %v", before, after)
	}
	if after == 0 {
		t.Fatal("Barrier recorded no sync time")
	}
}
