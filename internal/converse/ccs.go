package converse

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Converse client-server (CCS) module. §III-B notes that "several
// Converse Threads modules (e.g., client-server) have been implemented"
// for the Charm++ interaction; this file reproduces that module's shape:
// named handlers registered on the runtime, invoked on a chosen processor
// by request Messages, with replies the client can wait on while driving
// its own scheduler (return mode).

// Handler is a registered client-server entry point. It runs as a
// Message on the target processor and returns the reply payload.
type Handler func(pc *Proc, payload []byte) []byte

// Reply is a pending CCS response.
type Reply struct {
	mu   sync.Mutex
	data []byte
	done atomic.Bool
}

// Done reports whether the reply has arrived.
func (r *Reply) Done() bool { return r.done.Load() }

// payload returns the reply data once done.
func (r *Reply) payload() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.data
}

// complete stores the reply and marks it done.
func (r *Reply) complete(data []byte) {
	r.mu.Lock()
	r.data = data
	r.mu.Unlock()
	r.done.Store(true)
}

// RegisterHandler installs a named handler. Registering the same name
// twice panics (handler tables are static in CCS).
func (rt *Runtime) RegisterHandler(name string, h Handler) {
	rt.handlersMu.Lock()
	defer rt.handlersMu.Unlock()
	if rt.handlers == nil {
		rt.handlers = make(map[string]Handler)
	}
	if _, dup := rt.handlers[name]; dup {
		panic(fmt.Sprintf("converse: handler %q registered twice", name))
	}
	rt.handlers[name] = h
}

// handler looks a handler up.
func (rt *Runtime) handler(name string) (Handler, bool) {
	rt.handlersMu.Lock()
	defer rt.handlersMu.Unlock()
	h, ok := rt.handlers[name]
	return h, ok
}

// SendRequest sends a CCS request to the named handler on processor
// proc. The handler runs as a Message there; the returned Reply
// completes with its result. An unknown handler completes the reply with
// nil immediately.
func (rt *Runtime) SendRequest(proc int, name string, payload []byte) *Reply {
	r := &Reply{}
	h, ok := rt.handler(name)
	if !ok {
		r.complete(nil)
		return r
	}
	rt.SyncSend(proc, func(pc *Proc) {
		// A panicking handler (contained by the substrate) must still
		// release the client: complete with nil on abnormal exit.
		defer func() {
			if !r.Done() {
				r.complete(nil)
			}
		}()
		r.complete(h(pc, payload))
	})
	return r
}

// WaitReply blocks the master on a reply, driving processor 0's queue in
// return mode while waiting (the master may itself be the target).
func (rt *Runtime) WaitReply(r *Reply) []byte {
	for !r.Done() {
		if !rt.Yield() {
			osYield()
		}
	}
	return r.payload()
}

// Broadcast sends the request to every processor and returns the replies
// indexed by processor rank, waiting for all of them.
func (rt *Runtime) Broadcast(name string, payload []byte) [][]byte {
	replies := make([]*Reply, rt.NumProcs())
	for p := range replies {
		replies[p] = rt.SendRequest(p, name, payload)
	}
	out := make([][]byte, len(replies))
	for p, r := range replies {
		out[p] = rt.WaitReply(r)
	}
	return out
}
