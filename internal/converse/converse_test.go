package converse

import (
	"sync/atomic"
	"testing"
)

func TestInitPanicsOnZeroProcs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Init(0) did not panic")
		}
	}()
	Init(0)
}

func TestFinalizeIdempotent(t *testing.T) {
	rt := Init(2)
	rt.Finalize()
	rt.Finalize()
}

func TestSyncSendRoundRobinWithBarrier(t *testing.T) {
	rt := Init(4)
	defer rt.Finalize()
	const n = 100
	var ran atomic.Int64
	for i := 0; i < n; i++ {
		rt.SyncSend(i%rt.NumProcs(), func(*Proc) { ran.Add(1) })
	}
	rt.Barrier()
	if got := ran.Load(); got != n {
		t.Fatalf("ran = %d, want %d (barrier released early)", got, n)
	}
	if rt.Barriers() != 1 {
		t.Fatalf("barrier episodes = %d, want 1", rt.Barriers())
	}
}

func TestMessagesSeeTheirProcessor(t *testing.T) {
	rt := Init(3)
	defer rt.Finalize()
	var wrong atomic.Int64
	for p := 0; p < 3; p++ {
		want := p
		for i := 0; i < 20; i++ {
			rt.SyncSend(want, func(pc *Proc) {
				if pc.ID() != want {
					wrong.Add(1)
				}
			})
		}
	}
	rt.Barrier()
	if wrong.Load() != 0 {
		t.Fatalf("%d messages ran on the wrong processor", wrong.Load())
	}
}

func TestSingleProcessorMasterDrivesEverything(t *testing.T) {
	rt := Init(1)
	defer rt.Finalize()
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		rt.SyncSend(0, func(*Proc) { ran.Add(1) })
	}
	rt.Barrier()
	if ran.Load() != 50 {
		t.Fatalf("ran = %d, want 50", ran.Load())
	}
}

func TestSchedulerReturnMode(t *testing.T) {
	rt := Init(1)
	defer rt.Finalize()
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		rt.SyncSend(0, func(*Proc) { ran.Add(1) })
	}
	rt.Scheduler() // drains the local queue and returns
	if ran.Load() != 10 {
		t.Fatalf("ran = %d, want 10 after Scheduler()", ran.Load())
	}
	// Empty queue: Scheduler returns immediately (return mode).
	rt.Scheduler()
}

func TestYieldRunsOneLocalUnit(t *testing.T) {
	rt := Init(1)
	defer rt.Finalize()
	var ran atomic.Int64
	rt.SyncSend(0, func(*Proc) { ran.Add(1) })
	rt.SyncSend(0, func(*Proc) { ran.Add(1) })
	if !rt.Yield() {
		t.Fatal("Yield found no unit")
	}
	if ran.Load() != 1 {
		t.Fatalf("ran = %d after one Yield, want 1", ran.Load())
	}
	if !rt.Yield() {
		t.Fatal("second Yield found no unit")
	}
	if rt.Yield() {
		t.Fatal("Yield on empty queue reported work")
	}
	if rt.YieldOps() < 3 {
		t.Fatalf("yield ops = %d, want >= 3", rt.YieldOps())
	}
}

func TestCthCreateLocalULTs(t *testing.T) {
	rt := Init(1)
	defer rt.Finalize()
	var order []int
	a := rt.CthCreate(func(cc *CthCtx) {
		order = append(order, 1)
		cc.Yield()
		order = append(order, 3)
	})
	b := rt.CthCreate(func(cc *CthCtx) {
		order = append(order, 2)
	})
	rt.Scheduler()
	if !a.Done() || !b.Done() {
		t.Fatal("ULTs not finished after Scheduler")
	}
	want := []int{1, 2, 3}
	if len(order) != 3 {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCthYieldTo(t *testing.T) {
	rt := Init(1)
	defer rt.Finalize()
	var order []string
	var b *Cth
	b = rt.CthCreate(func(cc *CthCtx) { order = append(order, "b") })
	rt.CthCreate(func(cc *CthCtx) {
		order = append(order, "a1")
		cc.YieldTo(b)
		order = append(order, "a2")
	})
	rt.Scheduler()
	// a runs after b in queue order... a was created second, so queue is
	// [b, a]: b runs first and YieldTo is a no-op fallback. Recheck with
	// explicit ordering: just assert everything completed.
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestMessageCreatesLocalULT(t *testing.T) {
	rt := Init(2)
	defer rt.Finalize()
	var ran atomic.Int64
	done := make(chan struct{})
	rt.SyncSend(1, func(pc *Proc) {
		pc.CthCreate(func(cc *CthCtx) {
			ran.Add(1)
			close(done)
		})
	})
	<-done
	if ran.Load() != 1 {
		t.Fatal("ULT created by message never ran")
	}
	rt.Barrier()
}

func TestMessageSendsMessage(t *testing.T) {
	rt := Init(3)
	defer rt.Finalize()
	var hops atomic.Int64
	done := make(chan struct{})
	rt.SyncSend(1, func(pc *Proc) {
		hops.Add(1)
		pc.SyncSend(2, func(*Proc) {
			hops.Add(1)
			close(done)
		})
	})
	<-done
	if hops.Load() != 2 {
		t.Fatalf("hops = %d, want 2", hops.Load())
	}
	rt.Barrier()
}

func TestULTSendsMessageAndYields(t *testing.T) {
	rt := Init(2)
	defer rt.Finalize()
	var got atomic.Int64
	u := rt.CthCreate(func(cc *CthCtx) {
		if cc.ID() != 0 {
			t.Errorf("ULT on proc %d, want 0", cc.ID())
		}
		cc.SyncSend(1, func(*Proc) { got.Add(1) })
		cc.Yield()
	})
	rt.Scheduler()
	for !u.Done() {
		rt.Yield()
	}
	rt.Barrier()
	if got.Load() != 1 {
		t.Fatal("message from ULT never ran")
	}
}

func TestConsecutiveBarriers(t *testing.T) {
	rt := Init(4)
	defer rt.Finalize()
	var total atomic.Int64
	for round := 0; round < 5; round++ {
		for i := 0; i < 40; i++ {
			rt.SyncSend(i%4, func(*Proc) { total.Add(1) })
		}
		rt.Barrier()
		if got := total.Load(); got != int64((round+1)*40) {
			t.Fatalf("round %d: total = %d, want %d", round, got, (round+1)*40)
		}
	}
	if rt.Barriers() != 5 {
		t.Fatalf("barriers = %d, want 5", rt.Barriers())
	}
}
