package converse

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCCSRequestReply(t *testing.T) {
	rt := Init(3)
	defer rt.Finalize()
	rt.RegisterHandler("echo", func(pc *Proc, payload []byte) []byte {
		return append([]byte("proc-says:"), payload...)
	})
	r := rt.SendRequest(1, "echo", []byte("hi"))
	got := rt.WaitReply(r)
	if !bytes.Equal(got, []byte("proc-says:hi")) {
		t.Fatalf("reply = %q", got)
	}
}

func TestCCSRequestToMasterProcessor(t *testing.T) {
	// The master drives processor 0 itself; WaitReply must process the
	// local queue so a request addressed to proc 0 completes.
	rt := Init(2)
	defer rt.Finalize()
	rt.RegisterHandler("id", func(pc *Proc, payload []byte) []byte {
		return []byte{byte(pc.ID())}
	})
	r := rt.SendRequest(0, "id", nil)
	got := rt.WaitReply(r)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("reply = %v, want [0]", got)
	}
}

func TestCCSHandlerSeesProcessor(t *testing.T) {
	rt := Init(4)
	defer rt.Finalize()
	rt.RegisterHandler("rank", func(pc *Proc, payload []byte) []byte {
		return []byte{byte(pc.ID())}
	})
	for p := 0; p < 4; p++ {
		got := rt.WaitReply(rt.SendRequest(p, "rank", nil))
		if len(got) != 1 || int(got[0]) != p {
			t.Fatalf("proc %d replied %v", p, got)
		}
	}
}

func TestCCSUnknownHandler(t *testing.T) {
	rt := Init(2)
	defer rt.Finalize()
	r := rt.SendRequest(1, "nope", nil)
	if got := rt.WaitReply(r); got != nil {
		t.Fatalf("unknown handler replied %v", got)
	}
}

func TestCCSDuplicateRegistrationPanics(t *testing.T) {
	rt := Init(1)
	defer rt.Finalize()
	rt.RegisterHandler("h", func(pc *Proc, p []byte) []byte { return nil })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate handler registration did not panic")
		}
	}()
	rt.RegisterHandler("h", func(pc *Proc, p []byte) []byte { return nil })
}

func TestCCSBroadcastCollectsAll(t *testing.T) {
	rt := Init(5)
	defer rt.Finalize()
	rt.RegisterHandler("double", func(pc *Proc, payload []byte) []byte {
		return []byte(fmt.Sprintf("%d:%s", pc.ID(), payload))
	})
	replies := rt.Broadcast("double", []byte("x"))
	if len(replies) != 5 {
		t.Fatalf("replies = %d, want 5", len(replies))
	}
	for p, r := range replies {
		want := fmt.Sprintf("%d:x", p)
		if string(r) != want {
			t.Fatalf("proc %d replied %q, want %q", p, r, want)
		}
	}
}

func TestCCSHandlerCanSpawnWork(t *testing.T) {
	// A handler is a Message: it can create local ULTs and send further
	// Messages, like any Converse module.
	rt := Init(3)
	defer rt.Finalize()
	rt.RegisterHandler("fanout", func(pc *Proc, payload []byte) []byte {
		pc.SyncSend((pc.ID()+1)%3, func(*Proc) {})
		return []byte("ok")
	})
	got := rt.WaitReply(rt.SendRequest(1, "fanout", nil))
	if string(got) != "ok" {
		t.Fatalf("reply = %q", got)
	}
	rt.Barrier() // drain the fan-out messages before finalize
}
