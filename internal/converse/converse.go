// Package converse emulates the Converse Threads programming model
// (§III-B): Processors with private work-unit queues, two work-unit types
// — ULTs (CthThread: migratable, yieldable, own stack) and Messages
// (stackless, atomic) — where only Messages may be pushed into *other*
// processors' queues, and a barrier-based join whose cost grows linearly
// with the processor count (Figure 3).
//
// The master (the goroutine that called Init) drives processor 0 itself,
// in Converse's "return mode": scheduling calls process the local queue
// and return to the caller, which is the only mode that matches the
// OpenMP master-thread pattern (§VIII-B1). Work distribution from the
// master therefore uses SyncSend (CmiSyncSend) in round-robin, and joining
// uses a broadcast barrier that the master reaches by draining its own
// queue — reproducing both the linear join and the "extra yield calls"
// overhead the paper measures in two-step scenarios (§IX-B, §IX-D).
package converse

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/barrier"
	"repro/internal/queue"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/ult"
)

// Runtime is an initialized Converse instance.
type Runtime struct {
	procs    []*Processor
	shutdown atomic.Bool
	wg       sync.WaitGroup
	finished atomic.Bool
	// yieldOps counts master scheduling steps taken outside barriers —
	// the "extra yield calls" the paper attributes 70–75 % of Converse's
	// time to in two-step patterns.
	yieldOps atomic.Uint64
	// barriers counts completed barrier episodes.
	barriers atomic.Uint64
	// syncNanos accumulates wall time the master spends inside Barrier
	// and Yield — the synchronization share §IX-B/§IX-D quantify.
	syncNanos atomic.Int64

	// handlers is the CCS handler table (see ccs.go).
	handlersMu sync.Mutex
	handlers   map[string]Handler

	// masterRing is the flight-recorder lane of the master's barrier and
	// yield operations — the sync share §IX-D quantifies. Only the
	// master goroutine writes it.
	masterRing *trace.Ring
}

// SetTracer points the runtime's master-side operations (Barrier,
// Yield) at a different recorder — tests inject their own; the default
// is the process-global recorder. Pass nil to disable. Must be called
// from the master goroutine with no barrier in flight.
func (rt *Runtime) SetTracer(r *trace.Recorder) {
	rt.masterRing.Close()
	rt.masterRing = r.Ring("converse/master", 0)
}

// osYield gives the OS scheduler a chance while the master busy-waits.
func osYield() { runtime.Gosched() }

// Processor is one Converse processor: an executor plus its private queue.
// Processor 0 has no scheduling goroutine; the master drives it. The
// queue's ordering is the configured scheduling policy (FIFO unless
// Config.Policy overrides it — the plug-in scheduler slot of Table I).
type Processor struct {
	id   int
	rt   *Runtime
	exec *ult.Executor
	q    sched.Policy
	// bat batches the processor's flight-recorder dispatch events:
	// written only by the goroutine driving the processor (its
	// scheduler goroutine, or the master for processor 0).
	bat *trace.Batcher
}

// ID returns the processor's rank.
func (p *Processor) ID() int { return p.id }

// QueueStats exposes the processor queue's counters when the configured
// policy keeps them (FIFO and LIFO do); other policies return nil.
func (p *Processor) QueueStats() *queue.Stats {
	if s, ok := p.q.(interface{ Stats() *queue.Stats }); ok {
		return s.Stats()
	}
	return nil
}

// Cth is a handle on a Converse ULT (CthThread). It carries the body and
// per-run context so creation allocates only the handle (ult.NewWith),
// plus the descriptor generation so Done stays answerable after Free
// released the descriptor.
type Cth struct {
	u   *ult.ULT
	p   *Processor
	fn  func(*CthCtx)
	gen uint64
	// claim elects the one joiner (or Free caller) allowed to touch the
	// descriptor and obliged to free it; freed records that the free
	// happened. Joiners that lost the claim poll the recycle-safe Done.
	claim atomic.Bool
	freed atomic.Bool
	ctx   CthCtx
}

// cthBody is the closure-free ULT body.
func cthBody(self *ult.ULT, arg any) {
	c := arg.(*Cth)
	c.ctx = CthCtx{p: c.p, self: self}
	c.fn(&c.ctx)
}

// Done reports whether the ULT completed; the generation-counted
// completion word keeps the answer correct after free-and-recycle.
func (c *Cth) Done() bool { return c.freed.Load() || c.u.DoneAt(c.gen) }

// Free releases a completed ULT's descriptor back to the substrate pool
// (CthFree). Idempotent; callers that joined through CthCtx.Join need not
// call it — the join frees. A parked joiner holding the handle's claim
// frees instead (Free then no-ops). Unfreed handles are reclaimed by the
// garbage collector at the cost of their descriptor's reuse.
func (c *Cth) Free() {
	if c.Done() && c.claim.CompareAndSwap(false, true) {
		c.release()
	}
}

// release returns the descriptor to the pool; claim-winner only. The
// body closure is dropped too: handles may be retained after the join
// (for Done), and must not pin what the body captured.
func (c *Cth) release() {
	if c.freed.CompareAndSwap(false, true) {
		c.fn = nil
		_ = c.u.Free()
	}
}

// Proc is the processor context passed to Message bodies: Messages are
// atomic (no yield), but they may create local ULTs and send further
// Messages.
type Proc struct {
	p *Processor
}

// CthCtx is the context passed to ULT bodies.
type CthCtx struct {
	p    *Processor
	self *ult.ULT
}

// Config parameterizes InitCfg.
type Config struct {
	// Procs is the processor count (>= 1).
	Procs int
	// Policy, when non-nil, constructs each processor's queue ordering.
	// Nil means FIFO, the library default. The factory runs once per
	// processor, so queues are never shared.
	Policy func() sched.Policy
}

// Init starts nprocs processors (ConverseInit). Processors 1..nprocs-1
// get scheduler goroutines; processor 0 is driven by the caller. It
// panics if nprocs < 1.
func Init(nprocs int) *Runtime { return InitCfg(Config{Procs: nprocs}) }

// InitCfg is Init with the full configuration.
func InitCfg(cfg Config) *Runtime {
	if cfg.Procs < 1 {
		panic(fmt.Sprintf("converse: nprocs = %d, need >= 1", cfg.Procs))
	}
	pool := cfg.Policy
	if pool == nil {
		pool = sched.Default
	}
	rt := &Runtime{}
	rt.masterRing = trace.Default().Ring("converse/master", 0)
	for i := 0; i < cfg.Procs; i++ {
		rt.procs = append(rt.procs, &Processor{
			id:   i,
			rt:   rt,
			exec: ult.NewExecutor(i),
			q:    pool(),
		})
	}
	// Processor 0 is driven by the master goroutine, so its dispatch
	// lane is acquired here; the scheduler goroutines acquire theirs.
	rt.procs[0].bat = trace.Default().Ring("converse/p0", 0).Batcher()
	for _, p := range rt.procs[1:] {
		rt.wg.Add(1)
		go p.loop()
	}
	return rt
}

// NumProcs reports the processor count.
func (rt *Runtime) NumProcs() int { return len(rt.procs) }

// YieldOps reports how many master scheduling steps ran outside barriers.
func (rt *Runtime) YieldOps() uint64 { return rt.yieldOps.Load() }

// Barriers reports how many barrier episodes completed.
func (rt *Runtime) Barriers() uint64 { return rt.barriers.Load() }

// SyncSend enqueues a Message into the named processor's queue
// (CmiSyncSend) — the only remote insertion Converse allows, and the
// mechanism the master uses to distribute work round-robin (§VIII-B1).
// The Message body receives its processor context.
func (rt *Runtime) SyncSend(proc int, fn func(*Proc)) {
	p := rt.procs[proc]
	m := ult.NewTasklet(func() { fn(&Proc{p: p}) })
	ult.MarkReady(m)
	p.q.Push(m)
}

// CthCreate creates a ULT in processor 0's queue — from the master, the
// local processor (CthCreate cannot target remote processors).
func (rt *Runtime) CthCreate(fn func(*CthCtx)) *Cth {
	return rt.procs[0].cthCreate(fn)
}

func (p *Processor) cthCreate(fn func(*CthCtx)) *Cth {
	c := &Cth{p: p, fn: fn}
	c.u = ult.NewWith(cthBody, c)
	c.gen = c.u.Gen()
	ult.MarkReady(c.u)
	p.q.Push(c.u)
	return c
}

// SyncSendBatch enqueues one Message per body into the named processor's
// queue with a single batched insertion — a CmiSyncSend burst paying the
// queue synchronization once.
func (rt *Runtime) SyncSendBatch(proc int, fns []func(*Proc)) {
	p := rt.procs[proc]
	bodies := make([]func(), len(fns))
	for i, fn := range fns {
		fn := fn
		bodies[i] = func() { fn(&Proc{p: p}) }
	}
	ms := ult.NewTaskletBulk(bodies)
	units := make([]ult.Unit, len(ms))
	for i, m := range ms {
		ult.MarkReady(m)
		units[i] = m
	}
	sched.PushAll(p.q, units)
}

// CthCreateBulk creates one local ULT per body in processor 0's queue
// with a single batched insertion (CthCreate cannot target remote
// processors, so bulk creation is local like the single-unit form).
func (rt *Runtime) CthCreateBulk(fns []func(*CthCtx)) []*Cth {
	return rt.procs[0].cthCreateBulk(fns)
}

func (p *Processor) cthCreateBulk(fns []func(*CthCtx)) []*Cth {
	cs := make([]*Cth, len(fns))
	units := make([]ult.Unit, len(fns))
	for i, fn := range fns {
		c := &Cth{p: p, fn: fn}
		c.u = ult.NewWith(cthBody, c)
		c.gen = c.u.Gen()
		ult.MarkReady(c.u)
		cs[i] = c
		units[i] = c.u
	}
	sched.PushAll(p.q, units)
	return cs
}

// Yield runs one unit from processor 0's queue if there is one (CthYield
// from the master in return mode). It reports whether a unit ran. These
// are the "extra yield calls" of §IX-B: two-step algorithms need them so
// the master's own Messages make progress.
func (rt *Runtime) Yield() bool {
	rt.yieldOps.Add(1)
	t0 := time.Now()
	ran := rt.procs[0].runOne()
	if !ran {
		// An empty poll is pure synchronization: the master found no
		// local unit and is waiting for remote processors to make
		// progress. Hand the OS thread over inside the measured window
		// so that wait is attributed to sync time — the paper charges
		// exactly this master-side waiting ("extra yield calls") with
		// 70-75 % of two-step execution time (§IX-B, §IX-D). It also
		// lets the remote schedulers run at all on a single-P machine.
		osYield()
	}
	d := time.Since(t0)
	rt.syncNanos.Add(int64(d))
	rt.masterRing.EmitAt(trace.KindYield, 0, t0, d)
	return ran
}

// SyncTime reports the cumulative wall time the master has spent inside
// Barrier and Yield. Comparing it against total execution time reproduces
// the paper's observation that Converse spends 70–75 % of two-step
// patterns in synchronization.
func (rt *Runtime) SyncTime() time.Duration {
	return time.Duration(rt.syncNanos.Load())
}

// Scheduler drains processor 0's queue and returns when it is empty —
// Converse's return mode (CsdScheduler in return mode, §VIII-B1).
func (rt *Runtime) Scheduler() {
	p := rt.procs[0]
	for p.runOne() {
		rt.yieldOps.Add(1)
	}
}

// Barrier broadcasts a barrier Message to every processor and drives
// processor 0 until the barrier completes. Every processor must execute
// its barrier Message before anyone proceeds, so the cost is linear in
// the processor count — the join behaviour Figure 3 shows for Converse.
func (rt *Runtime) Barrier() {
	t0 := time.Now()
	defer func() {
		d := time.Since(t0)
		rt.syncNanos.Add(int64(d))
		rt.masterRing.EmitAt(trace.KindBarrier, 0, t0, d)
	}()
	n := len(rt.procs)
	bar := barrier.NewCentral(n)
	for i := 1; i < n; i++ {
		rt.SyncSend(i, func(*Proc) { bar.Wait() })
	}
	// The master reaches the barrier through its own queue: everything
	// queued locally before the barrier runs first (queue flush).
	p := rt.procs[0]
	for p.runOne() {
	}
	bar.Wait()
	rt.barriers.Add(1)
}

// Finalize stops the remote processors (ConverseExit).
func (rt *Runtime) Finalize() {
	if !rt.finished.CompareAndSwap(false, true) {
		return
	}
	rt.shutdown.Store(true)
	rt.wg.Wait()
	rt.masterRing.Close()
	rt.procs[0].bat.Close()
}

// runOne executes a single unit from the processor's queue, requeueing a
// yielded ULT behind the current tail. It reports whether a unit ran.
func (p *Processor) runOne() bool {
	if res, h, ok := p.exec.DispatchHint(); ok {
		if res == ult.DispatchYielded {
			sched.Requeue(p.q, h)
		}
		return true
	}
	u := p.q.Pop()
	if u == nil {
		p.bat.Flush()
		return false
	}
	kind := trace.KindDispatch
	if u.Kind() == ult.KindTasklet {
		kind = trace.KindTasklet
	}
	p.bat.Begin()
	res := p.exec.RunUnit(u, func(t *ult.ULT) { sched.Requeue(p.q, t) })
	p.bat.Note(kind, 1)
	return res != ult.DispatchSkipped
}

// loop is the scheduling goroutine of processors 1..n-1.
func (p *Processor) loop() {
	p.bat = trace.Default().Ring(fmt.Sprintf("converse/p%d", p.id), p.id).Batcher()
	defer p.bat.Close()
	defer p.rt.wg.Done()
	for {
		if p.runOne() {
			continue
		}
		if p.rt.shutdown.Load() {
			return
		}
		p.bat.Idle()
		p.exec.NoteIdle()
	}
}

// SchedStats sums the queue counters across every processor.
func (rt *Runtime) SchedStats() queue.Counts {
	var c queue.Counts
	for _, p := range rt.procs {
		c = c.Plus(sched.CountsOf(p.q))
	}
	return c
}

// --- Proc: operations valid inside a Message body ---

// ID reports the processor executing the Message.
func (pc *Proc) ID() int { return pc.p.id }

// CthCreate creates a local ULT from inside a Message.
func (pc *Proc) CthCreate(fn func(*CthCtx)) *Cth { return pc.p.cthCreate(fn) }

// SyncSend sends a Message to another processor from inside a Message.
func (pc *Proc) SyncSend(proc int, fn func(*Proc)) { pc.p.rt.SyncSend(proc, fn) }

// --- CthCtx: operations valid inside a ULT body ---

// ID reports the processor executing the ULT.
func (cc *CthCtx) ID() int { return cc.p.id }

// Yield re-enters the local scheduler (CthYield).
func (cc *CthCtx) Yield() { cc.self.Yield() }

// Join waits for another ULT from inside a ULT. The joiner parks in the
// target's single-waiter slot (CthSuspend) and the finishing unit awakens
// it back into the joiner's own processor queue (CthAwaken) — ULTs never
// migrate between processors, so the requeue target is always the
// processor the joiner was created on. Falls back to poll-yield when the
// slot is held by another joiner.
func (cc *CthCtx) Join(target *Cth) {
	if !target.claim.CompareAndSwap(false, true) {
		// Another joiner owns (and will free) the descriptor; poll the
		// recycle-safe completion word only.
		for !target.Done() {
			cc.self.Yield()
		}
		return
	}
	q := cc.p.q
	for !target.u.Done() {
		if ult.ParkJoinStep(cc.self, target.u, func(j *ult.ULT, _ *ult.Executor) { q.Push(j) }) {
			break
		}
		cc.self.Yield()
	}
	target.release()
}

// IOPark builds the park/unpark pair the aio reactor blocks this ULT
// with: park suspends it (CthSuspend), and unpark — callable from any
// goroutine — awakens it back into its own processor's queue
// (CthAwaken; SyncSend already proves foreign pushes into processor
// queues are safe). ULTs never migrate between processors, so placement
// is preserved by construction. On processor 0 the resumed unit runs
// only when the master next drives Yield — the return-mode caveat the
// serving layer's pump already accommodates by yielding while requests
// are in flight.
func (cc *CthCtx) IOPark() (park func(), unpark func()) {
	self, q := cc.self, cc.p.q
	return func() { self.Suspend() }, func() {
		ult.ResumeAndRequeue(self, func(j *ult.ULT) { q.Push(j) })
	}
}

// YieldTo hands control directly to another local ULT (CthYieldTo).
func (cc *CthCtx) YieldTo(target *Cth) { cc.self.YieldTo(target.u) }

// CthCreate creates another local ULT from inside a ULT.
func (cc *CthCtx) CthCreate(fn func(*CthCtx)) *Cth { return cc.p.cthCreate(fn) }

// SyncSend sends a Message to another processor from inside a ULT.
func (cc *CthCtx) SyncSend(proc int, fn func(*Proc)) { cc.p.rt.SyncSend(proc, fn) }
