// Package prom implements the minimal subset of the Prometheus text
// exposition format (version 0.0.4) that the daemons need to publish
// metrics without depending on a client library: HELP/TYPE family
// headers, escaped labels, and counter/gauge/histogram samples. It also
// ships a strict line-format linter (Lint) used by the tests and CI to
// keep the handcrafted output scrape-compatible — the linter is the
// contract that stands in for a real Prometheus server in this
// dependency-free repo.
//
// A Writer is not safe for concurrent use; build one per scrape.
// Label pairs are emitted in the order given, which keeps output
// byte-stable for golden tests (Prometheus itself is order-agnostic).
package prom

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// Metric family types accepted by TYPE lines.
const (
	Counter   = "counter"
	Gauge     = "gauge"
	Histogram = "histogram"
	Untyped   = "untyped"
)

// Writer accumulates one exposition page. Families must be declared
// before their samples; redeclaring a family is a no-op so helpers can
// defensively re-announce.
type Writer struct {
	b        strings.Builder
	declared map[string]string // family name -> type
}

// NewWriter returns an empty exposition page builder.
func NewWriter() *Writer {
	return &Writer{declared: make(map[string]string)}
}

// Family writes the # HELP and # TYPE header for a metric family once.
// For histograms, name is the family base name (without _bucket/_sum/
// _count).
func (w *Writer) Family(name, help, typ string) {
	if _, ok := w.declared[name]; ok {
		return
	}
	w.declared[name] = typ
	fmt.Fprintf(&w.b, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(&w.b, "# TYPE %s %s\n", name, typ)
}

// Sample writes one sample line. Labels are alternating key, value
// pairs, emitted in the order given; a stray odd key is ignored.
func (w *Writer) Sample(name string, value float64, labels ...string) {
	w.b.WriteString(name)
	if len(labels) >= 2 {
		w.b.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				w.b.WriteByte(',')
			}
			fmt.Fprintf(&w.b, "%s=%q", labels[i], escapeLabel(labels[i+1]))
		}
		w.b.WriteByte('}')
	}
	w.b.WriteByte(' ')
	w.b.WriteString(formatValue(value))
	w.b.WriteByte('\n')
}

// Histogram writes a full histogram — cumulative _bucket series with
// "le" labels (bounds in seconds, final bucket +Inf), then _sum and
// _count. cum[i] is the cumulative count of observations <= bounds[i];
// len(cum) must be len(bounds)+1, with the final entry the total count.
// The family must have been declared with type Histogram.
func (w *Writer) Histogram(name string, bounds []float64, cum []uint64, sum float64, labels ...string) {
	for i, c := range cum {
		le := "+Inf"
		if i < len(bounds) {
			le = formatValue(bounds[i])
		}
		w.Sample(name+"_bucket", float64(c), append(append([]string{}, labels...), "le", le)...)
	}
	w.Sample(name+"_sum", sum, labels...)
	var total uint64
	if len(cum) > 0 {
		total = cum[len(cum)-1]
	}
	w.Sample(name+"_count", float64(total), labels...)
}

// String returns the page built so far.
func (w *Writer) String() string { return w.b.String() }

// WriteTo writes the page to wr.
func (w *Writer) WriteTo(wr io.Writer) (int64, error) {
	n, err := io.WriteString(wr, w.b.String())
	return int64(n), err
}

// ContentType is the value to send in the Content-Type header.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	return strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(s)
}

func escapeLabel(s string) string {
	// %q handles quote and backslash; fold newlines first so the line
	// structure survives.
	return strings.ReplaceAll(s, "\n", `\n`)
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	lineRe  = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)( [0-9-]+)?$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Lint checks a text exposition page against the 0.0.4 line format:
// every non-comment line must be a well-formed sample whose name is
// legal, whose labels parse, and whose value is a float; TYPE lines
// must use a known type, appear at most once per family, and precede
// that family's samples; histogram families must expose _bucket series
// carrying an "le" label plus _sum and _count. Returns the first
// violation with its line number, or nil for a clean page.
func Lint(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	typed := make(map[string]string)  // family -> declared type
	sampled := make(map[string]bool)  // family base -> has samples
	bucketLE := make(map[string]bool) // histogram family -> saw le label
	sumSeen := make(map[string]bool)
	countSeen := make(map[string]bool)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.SplitN(line, " ", 4)
			if len(f) < 3 || (f[1] != "HELP" && f[1] != "TYPE") {
				return fmt.Errorf("line %d: malformed comment %q", ln, line)
			}
			if !nameRe.MatchString(f[2]) {
				return fmt.Errorf("line %d: bad metric name %q", ln, f[2])
			}
			if f[1] == "TYPE" {
				if len(f) < 4 {
					return fmt.Errorf("line %d: TYPE without a type", ln)
				}
				switch f[3] {
				case Counter, Gauge, Histogram, Untyped, "summary":
				default:
					return fmt.Errorf("line %d: unknown type %q", ln, f[3])
				}
				if _, dup := typed[f[2]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", ln, f[2])
				}
				if sampled[f[2]] {
					return fmt.Errorf("line %d: TYPE for %q after its samples", ln, f[2])
				}
				typed[f[2]] = f[3]
			}
			continue
		}
		m := lineRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", ln, line)
		}
		name, labels, value := m[1], m[3], m[4]
		if _, err := strconv.ParseFloat(strings.TrimPrefix(value, "+"), 64); err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", ln, value, err)
		}
		hasLE := false
		if labels != "" {
			for _, kv := range splitLabels(labels) {
				eq := strings.Index(kv, "=")
				if eq < 0 {
					return fmt.Errorf("line %d: malformed label %q", ln, kv)
				}
				k, v := kv[:eq], kv[eq+1:]
				if !labelRe.MatchString(k) {
					return fmt.Errorf("line %d: bad label name %q", ln, k)
				}
				if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
					return fmt.Errorf("line %d: unquoted label value %q", ln, v)
				}
				if k == "le" {
					hasLE = true
				}
			}
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b := strings.TrimSuffix(name, suf); b != name && typed[b] == Histogram {
				base = b
				switch suf {
				case "_bucket":
					if !hasLE {
						return fmt.Errorf("line %d: histogram bucket %q without le label", ln, name)
					}
					bucketLE[b] = true
				case "_sum":
					sumSeen[b] = true
				case "_count":
					countSeen[b] = true
				}
			}
		}
		sampled[base] = true
		if t, ok := typed[base]; !ok && base == name {
			// Untyped samples are legal in the format; allow them.
			_ = t
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for fam, t := range typed {
		if t == Histogram && sampled[fam] {
			if !bucketLE[fam] {
				return fmt.Errorf("histogram %q has no _bucket series with le", fam)
			}
			if !sumSeen[fam] || !countSeen[fam] {
				return fmt.Errorf("histogram %q missing _sum or _count", fam)
			}
		}
	}
	return nil
}

// splitLabels splits a label body on commas that are outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// Value extracts one sample's value from an exposition page: name is
// the full sample name (including any _bucket/_sum suffix) and want is
// a label subset that must all match. Returns the first matching
// sample. Intended for tests and smoke checks, not for scraping.
func Value(page, name string, want map[string]string) (float64, bool) {
	for _, line := range strings.Split(page, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := lineRe.FindStringSubmatch(line)
		if m == nil || m[1] != name {
			continue
		}
		got := make(map[string]string)
		if m[3] != "" {
			for _, kv := range splitLabels(m[3]) {
				if eq := strings.Index(kv, "="); eq >= 0 {
					v := kv[eq+1:]
					if uq, err := strconv.Unquote(v); err == nil {
						v = uq
					}
					got[kv[:eq]] = v
				}
			}
		}
		ok := true
		for k, v := range want {
			if got[k] != v {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(m[4], "+"), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}
