package prom

import (
	"math"
	"strings"
	"testing"
)

// TestWriterGolden pins the exact page a small Writer produces — the
// byte-stable contract the daemons' handcrafted exposition relies on.
func TestWriterGolden(t *testing.T) {
	w := NewWriter()
	w.Family("demo_requests_total", "Requests seen.", Counter)
	w.Sample("demo_requests_total", 42, "shard", "0")
	w.Sample("demo_requests_total", 7, "shard", "1")
	w.Family("demo_depth", "Queue depth.", Gauge)
	w.Sample("demo_depth", 3)

	want := `# HELP demo_requests_total Requests seen.
# TYPE demo_requests_total counter
demo_requests_total{shard="0"} 42
demo_requests_total{shard="1"} 7
# HELP demo_depth Queue depth.
# TYPE demo_depth gauge
demo_depth 3
`
	if got := w.String(); got != want {
		t.Fatalf("golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := Lint(strings.NewReader(w.String())); err != nil {
		t.Fatalf("golden page fails lint: %v", err)
	}
}

func TestWriterFamilyDeclaredOnce(t *testing.T) {
	w := NewWriter()
	w.Family("f_total", "x", Counter)
	w.Family("f_total", "x", Counter)
	if n := strings.Count(w.String(), "# TYPE f_total"); n != 1 {
		t.Fatalf("TYPE emitted %d times, want 1", n)
	}
}

func TestWriterHistogram(t *testing.T) {
	w := NewWriter()
	w.Family("lat_seconds", "Latency.", Histogram)
	w.Histogram("lat_seconds", []float64{0.001, 0.01}, []uint64{2, 5, 9}, 0.123, "shard", "0")
	page := w.String()
	if err := Lint(strings.NewReader(page)); err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, want := range []struct {
		le string
		v  float64
	}{{"0.001", 2}, {"0.01", 5}, {"+Inf", 9}} {
		v, ok := Value(page, "lat_seconds_bucket", map[string]string{"shard": "0", "le": want.le})
		if !ok || v != want.v {
			t.Fatalf("bucket le=%s: got %v ok=%v, want %v", want.le, v, ok, want.v)
		}
	}
	if v, ok := Value(page, "lat_seconds_count", nil); !ok || v != 9 {
		t.Fatalf("count: got %v ok=%v, want 9", v, ok)
	}
	if v, ok := Value(page, "lat_seconds_sum", nil); !ok || math.Abs(v-0.123) > 1e-9 {
		t.Fatalf("sum: got %v ok=%v", v, ok)
	}
}

func TestWriterEscaping(t *testing.T) {
	w := NewWriter()
	w.Family("esc", "help with \\ and\nnewline", Gauge)
	w.Sample("esc", 1, "l", "va\"l\nue")
	if err := Lint(strings.NewReader(w.String())); err != nil {
		t.Fatalf("escaped page fails lint: %v\n%s", err, w.String())
	}
}

// TestLintRejects feeds the linter the malformations it exists to catch.
func TestLintRejects(t *testing.T) {
	cases := map[string]string{
		"bad name":           "2bad_name 1\n",
		"bad value":          "ok_name one\n",
		"unquoted label":     "ok_name{l=3} 1\n",
		"bad label name":     "ok_name{2l=\"x\"} 1\n",
		"unknown type":       "# TYPE t gaugex\n",
		"duplicate type":     "# TYPE t gauge\n# TYPE t gauge\n",
		"type after samples": "t 1\n# TYPE t gauge\n",
		"bucket without le":  "# TYPE h histogram\nh_bucket 1\nh_sum 0\nh_count 1\n",
		"histogram no sum":   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"malformed comment":  "# NOPE x y\n",
		"garbage line":       "!!!\n",
	}
	for name, page := range cases {
		if err := Lint(strings.NewReader(page)); err == nil {
			t.Errorf("%s: lint accepted %q", name, page)
		}
	}
}

func TestLintAcceptsInfAndTimestamps(t *testing.T) {
	page := "# TYPE g gauge\ng +Inf\ng2 1 1712345678\n"
	if err := Lint(strings.NewReader(page)); err != nil {
		t.Fatalf("lint: %v", err)
	}
}

func TestValueLabelSubset(t *testing.T) {
	page := "m{a=\"1\",b=\"2\"} 5\nm{a=\"1\",b=\"3\"} 7\n"
	if v, ok := Value(page, "m", map[string]string{"b": "3"}); !ok || v != 7 {
		t.Fatalf("got %v ok=%v, want 7", v, ok)
	}
	if _, ok := Value(page, "m", map[string]string{"b": "9"}); ok {
		t.Fatal("matched nonexistent label value")
	}
}
