package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/ult"
)

func mkUnits(n int) []ult.Unit {
	out := make([]ult.Unit, n)
	for i := range out {
		out[i] = ult.NewTasklet(func() {})
	}
	return out
}

func TestFIFOPolicyOrder(t *testing.T) {
	p := NewFIFO()
	us := mkUnits(5)
	for _, u := range us {
		p.Push(u)
	}
	for i := range us {
		if got := p.Pop(); got != us[i] {
			t.Fatalf("pop %d out of order", i)
		}
	}
	if p.Pop() != nil {
		t.Fatal("empty FIFO returned a unit")
	}
}

func TestLIFOPolicyOrder(t *testing.T) {
	p := NewLIFO()
	us := mkUnits(5)
	for _, u := range us {
		p.Push(u)
	}
	for i := len(us) - 1; i >= 0; i-- {
		if got := p.Pop(); got != us[i] {
			t.Fatalf("LIFO pop: want unit %d, got %d", us[i].ID(), got.ID())
		}
	}
}

func TestLIFOStealTakesOldest(t *testing.T) {
	p := NewLIFO()
	us := mkUnits(3)
	for _, u := range us {
		p.Push(u)
	}
	if got := p.Steal(); got != us[0] {
		t.Fatalf("Steal = %d, want oldest %d", got.ID(), us[0].ID())
	}
	if got := p.Pop(); got != us[2] {
		t.Fatalf("Pop after steal = %d, want newest %d", got.ID(), us[2].ID())
	}
}

func TestPriorityPolicyClasses(t *testing.T) {
	p := NewPriority(3)
	if p.Classes() != 3 {
		t.Fatalf("Classes = %d, want 3", p.Classes())
	}
	low := mkUnits(2)
	high := mkUnits(2)
	mid := mkUnits(1)
	p.PushPriority(low[0], 0)
	p.PushPriority(high[0], 2)
	p.PushPriority(mid[0], 1)
	p.PushPriority(high[1], 2)
	p.PushPriority(low[1], 0)
	want := []ult.Unit{high[0], high[1], mid[0], low[0], low[1]}
	for i, w := range want {
		if got := p.Pop(); got != w {
			t.Fatalf("priority pop %d: got %d, want %d", i, got.ID(), w.ID())
		}
	}
}

func TestPriorityClampsOutOfRange(t *testing.T) {
	p := NewPriority(2)
	a, b := mkUnits(1)[0], mkUnits(1)[0]
	p.PushPriority(a, -5) // clamps to 0
	p.PushPriority(b, 99) // clamps to 1
	if got := p.Pop(); got != b {
		t.Fatal("clamped high priority not served first")
	}
	if got := p.Pop(); got != a {
		t.Fatal("clamped low priority lost")
	}
}

func TestPriorityMinimumOneClass(t *testing.T) {
	p := NewPriority(0)
	if p.Classes() != 1 {
		t.Fatalf("Classes = %d, want 1", p.Classes())
	}
	u := mkUnits(1)[0]
	p.Push(u)
	if p.Pop() != u {
		t.Fatal("single-class priority lost the unit")
	}
}

func TestStackableSchedulerTakeover(t *testing.T) {
	base := NewFIFO()
	s := NewStack(base)
	if s.Depth() != 1 {
		t.Fatalf("Depth = %d, want 1", s.Depth())
	}
	baseUnits := mkUnits(2)
	for _, u := range baseUnits {
		s.Push(u)
	}

	// Push an ad-hoc LIFO scheduler: new work goes there and is served
	// first; the base queue is not lost.
	adhoc := NewLIFO()
	s.PushScheduler(adhoc)
	adhocUnits := mkUnits(2)
	for _, u := range adhocUnits {
		s.Push(u)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if got := s.Pop(); got != adhocUnits[1] {
		t.Fatalf("stacked pop = %d, want ad-hoc LIFO head %d", got.ID(), adhocUnits[1].ID())
	}
	if got := s.PopScheduler(); got != adhoc {
		t.Fatal("PopScheduler did not return the ad-hoc policy")
	}
	// Remaining ad-hoc unit left with its policy; base resumes.
	if got := s.Pop(); got != baseUnits[0] {
		t.Fatalf("post-pop pop = %d, want base head %d", got.ID(), baseUnits[0].ID())
	}
}

func TestStackBottomPolicyCannotPop(t *testing.T) {
	s := NewStack(NewFIFO())
	if s.PopScheduler() != nil {
		t.Fatal("popped the bottom policy")
	}
}

func TestStackDrainsTopFirst(t *testing.T) {
	s := NewStack(NewFIFO())
	bottom := mkUnits(1)[0]
	s.Push(bottom)
	s.PushScheduler(NewFIFO())
	top := mkUnits(1)[0]
	s.Push(top)
	if got := s.Pop(); got != top {
		t.Fatal("top policy not drained first")
	}
	if got := s.Pop(); got != bottom {
		t.Fatal("bottom unit unreachable through stack")
	}
	if s.Pop() != nil {
		t.Fatal("stack invented a unit")
	}
}

func TestRandomPolicyConserves(t *testing.T) {
	p := NewRandom(1)
	us := mkUnits(20)
	for _, u := range us {
		p.Push(u)
	}
	if p.Len() != 20 {
		t.Fatalf("Len = %d, want 20", p.Len())
	}
	seen := map[uint64]bool{}
	for i := 0; i < 20; i++ {
		u := p.Pop()
		if u == nil {
			t.Fatalf("pop %d returned nil with units remaining", i)
		}
		if seen[u.ID()] {
			t.Fatalf("unit %d popped twice", u.ID())
		}
		seen[u.ID()] = true
	}
	if p.Pop() != nil {
		t.Fatal("empty random policy returned a unit")
	}
}

func TestRandomPolicyActuallyShuffles(t *testing.T) {
	// With 20 units, at least one of 5 seeded runs must deviate from
	// insertion order (probability of failure ~ (1/20!)^5).
	inOrderRuns := 0
	for seed := int64(0); seed < 5; seed++ {
		p := NewRandom(seed)
		us := mkUnits(20)
		for _, u := range us {
			p.Push(u)
		}
		inOrder := true
		for i := range us {
			if p.Pop() != us[i] {
				inOrder = false
			}
		}
		if inOrder {
			inOrderRuns++
		}
	}
	if inOrderRuns == 5 {
		t.Fatal("random policy always preserved insertion order")
	}
}

func TestRandomPolicyAsStackMember(t *testing.T) {
	s := NewStack(NewFIFO())
	s.PushScheduler(NewRandom(7))
	us := mkUnits(5)
	for _, u := range us {
		s.Push(u)
	}
	got := 0
	for s.Pop() != nil {
		got++
	}
	if got != 5 {
		t.Fatalf("stacked random policy yielded %d units, want 5", got)
	}
}

func TestRoundRobinCycle(t *testing.T) {
	r := NewRoundRobin(3)
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := r.Next(); got != w {
			t.Fatalf("Next %d = %d, want %d", i, got, w)
		}
	}
	r.Reset()
	if r.Next() != 0 {
		t.Fatal("Reset did not restart the cycle")
	}
}

func TestRoundRobinPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRoundRobin(0) did not panic")
		}
	}()
	NewRoundRobin(0)
}

// Property: round-robin over n targets distributes k·n items exactly k
// times to every target.
func TestRoundRobinFairnessProperty(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n := int(n8%7) + 1
		k := int(k8 % 17)
		r := NewRoundRobin(n)
		counts := make([]int, n)
		for i := 0; i < k*n; i++ {
			counts[r.Next()]++
		}
		for _, c := range counts {
			if c != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a stack of policies conserves all pushed units.
func TestStackConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		s := NewStack(NewFIFO())
		pushed, popped := 0, 0
		for _, op := range ops {
			switch op % 4 {
			case 0:
				s.Push(ult.NewTasklet(func() {}))
				pushed++
			case 1:
				if s.Pop() != nil {
					popped++
				}
			case 2:
				s.PushScheduler(NewFIFO())
			case 3:
				// Units queued in a popped policy leave the stack
				// with it; drain them so conservation holds.
				if p := s.PopScheduler(); p != nil {
					for p.Pop() != nil {
						popped++
					}
				}
			}
		}
		for s.Pop() != nil {
			popped++
		}
		return pushed == popped && s.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
