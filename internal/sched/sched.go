// Package sched provides the pluggable scheduler framework of Table I:
// ordering policies over work-unit pools, the stackable scheduler that
// distinguishes Argobots from the other libraries, and dispatch helpers
// (round-robin distribution) shared by the emulations.
package sched

import (
	"math/rand"
	"sync"

	"repro/internal/queue"
	"repro/internal/ult"
)

// Policy is a scheduling policy over a pool of ready work units. Policies
// must be safe for concurrent use: pools can be shared between execution
// streams.
type Policy interface {
	// Push makes a unit available to the policy.
	Push(u ult.Unit)
	// Pop selects and removes the next unit, or returns nil.
	Pop() ult.Unit
	// Len reports how many units the policy currently holds.
	Len() int
}

// The selectable policy names backends advertise in their capabilities
// and Open accepts in Config.Scheduler. DefaultPolicy is what every
// library in Table I ships unconfigured.
const (
	// NameFIFO is arrival-order scheduling, the default everywhere.
	NameFIFO = "fifo"
	// NameLIFO is newest-first scheduling (owner side of work-first).
	NameLIFO = "lifo"
	// NamePriority is the fixed-class priority policy.
	NamePriority = "priority"
	// NameRandom is the uniformly random policy.
	NameRandom = "random"
)

// DefaultPolicy is the policy name selected when a configuration leaves
// the scheduler unset.
const DefaultPolicy = NameFIFO

// Names lists the policy names ByName resolves, default first.
func Names() []string {
	return []string{NameFIFO, NameLIFO, NamePriority, NameRandom}
}

// Default returns a new instance of the default policy — what a backend
// uses when its configuration leaves the pool ordering unset.
func Default() Policy { return NewFIFO() }

// ByName resolves a policy name to a factory. The factory is called once
// per pool (per execution stream with private pools), so each pool gets
// its own policy instance. Unknown names return ok = false.
func ByName(name string) (factory func() Policy, ok bool) {
	switch name {
	case "", NameFIFO:
		return func() Policy { return NewFIFO() }, true
	case NameLIFO:
		return func() Policy { return NewLIFO() }, true
	case NamePriority:
		// Four classes, matching the priority depth the ablation tests
		// exercise; plain Push lands in class 0.
		return func() Policy { return NewPriority(4) }, true
	case NameRandom:
		// Deterministic seed: the policy is random in dispatch order,
		// not in test reproducibility.
		return func() Policy { return NewRandom(1) }, true
	default:
		return nil, false
	}
}

// BatchPusher is an optional Policy extension for inserting many units in
// one operation: the lock-free FIFO reserves all cells with a single
// fetch-add, the mutex-backed policies take their lock once. Bulk
// creation (ULTCreateBulk, ParallelFor) goes through it via PushAll so
// the per-unit submission cost of the loop and task figures is amortized.
type BatchPusher interface {
	// PushBatch makes every unit in us available to the policy, in order.
	PushBatch(us []ult.Unit)
}

// PushAll inserts us into p, using the batch path when the policy has
// one and falling back to per-unit pushes.
func PushAll(p Policy, us []ult.Unit) {
	if bp, ok := p.(BatchPusher); ok {
		bp.PushBatch(us)
		return
	}
	for _, u := range us {
		p.Push(u)
	}
}

// YieldQueuer is an optional Policy extension for reinserting units that
// yielded. Policies whose Pop favors the newest unit implement it so a
// yielder re-enters at the oldest position — a yield means "run others
// first", and without the distinction a newest-first pool would
// redispatch the yielder immediately, starving the very units it yielded
// to (polling joins would livelock).
type YieldQueuer interface {
	// PushYielded reinserts a unit that cooperatively yielded.
	PushYielded(u ult.Unit)
}

// Requeue reinserts a yielded unit into p, honoring PushYielded when the
// policy distinguishes yields from fresh pushes. Runtime scheduling
// loops use it on their requeue paths.
func Requeue(p Policy, u ult.Unit) {
	if yq, ok := p.(YieldQueuer); ok {
		yq.PushYielded(u)
		return
	}
	p.Push(u)
}

// FIFO schedules units in arrival order — the default policy of every
// library in Table I except where configured otherwise. It rides the
// lock-free MPMC queue, so the default scheduling hot path (every create
// and every dispatch on every backend) runs without a single lock.
type FIFO struct {
	q queue.FIFO
}

// NewFIFO returns a FIFO policy.
func NewFIFO() *FIFO { return &FIFO{} }

// Push implements Policy.
func (p *FIFO) Push(u ult.Unit) { p.q.Push(u) }

// PushBatch implements BatchPusher: one fetch-add reserves every cell.
func (p *FIFO) PushBatch(us []ult.Unit) { p.q.PushBatch(us) }

// Pop implements Policy.
func (p *FIFO) Pop() ult.Unit { return p.q.Pop() }

// Len implements Policy.
func (p *FIFO) Len() int { return p.q.Len() }

// Stats exposes the underlying queue counters.
func (p *FIFO) Stats() *queue.Stats { return p.q.Stats() }

// LIFO schedules the most recently created unit first — the owner-side
// order of work-first runtimes, which favors recursive decomposition.
//
// LIFO stays on the mutex deque deliberately: as a Policy it must accept
// pushes from any execution stream (shared pools, round-robin dealing)
// and reinsert yielded units at the oldest end, and that combination —
// concurrent multi-producer bottom pushes plus PushTop — is exactly what
// the lock-free Chase–Lev deque's single-owner, monotonic-top discipline
// rules out.
type LIFO struct {
	d queue.MutexDeque
}

// NewLIFO returns a LIFO policy.
func NewLIFO() *LIFO { return &LIFO{} }

// Push implements Policy.
func (p *LIFO) Push(u ult.Unit) { p.d.PushBottom(u) }

// PushBatch implements BatchPusher: one lock acquisition for the batch.
func (p *LIFO) PushBatch(us []ult.Unit) { p.d.PushBottomBatch(us) }

// Pop implements Policy.
func (p *LIFO) Pop() ult.Unit { return p.d.PopBottom() }

// Len implements Policy.
func (p *LIFO) Len() int { return p.d.Len() }

// PushYielded implements YieldQueuer: a yielder re-enters at the oldest
// end, so newest-first dispatch serves everything else before it.
func (p *LIFO) PushYielded(u ult.Unit) { p.d.PushTop(u) }

// Steal removes the oldest unit for a thief.
func (p *LIFO) Steal() ult.Unit { return p.d.StealTop() }

// Stats exposes the underlying deque counters.
func (p *LIFO) Stats() *queue.Stats { return p.d.Stats() }

// Priority schedules across a fixed number of priority classes, highest
// class first, FIFO within a class. It demonstrates the "plug-in
// scheduler" row of Table I: runtimes that accept user schedulers can use
// any Policy implementation, including this one.
type Priority struct {
	classes []queue.FIFO
}

// NewPriority returns a policy with n priority classes; class n-1 is
// served first. Plain Push inserts at priority 0.
func NewPriority(n int) *Priority {
	if n < 1 {
		n = 1
	}
	return &Priority{classes: make([]queue.FIFO, n)}
}

// Push implements Policy, inserting at the lowest priority.
func (p *Priority) Push(u ult.Unit) { p.classes[0].Push(u) }

// PushBatch implements BatchPusher at the lowest priority.
func (p *Priority) PushBatch(us []ult.Unit) { p.classes[0].PushBatch(us) }

// PushPriority inserts a unit at the given class, clamped to the valid
// range.
func (p *Priority) PushPriority(u ult.Unit, class int) {
	if class < 0 {
		class = 0
	}
	if class >= len(p.classes) {
		class = len(p.classes) - 1
	}
	p.classes[class].Push(u)
}

// Pop implements Policy: highest class first.
func (p *Priority) Pop() ult.Unit {
	for i := len(p.classes) - 1; i >= 0; i-- {
		if u := p.classes[i].Pop(); u != nil {
			return u
		}
	}
	return nil
}

// Len implements Policy.
func (p *Priority) Len() int {
	n := 0
	for i := range p.classes {
		n += p.classes[i].Len()
	}
	return n
}

// Classes reports the number of priority classes.
func (p *Priority) Classes() int { return len(p.classes) }

// Random pops a uniformly random queued unit — the randomized policy
// shape MassiveThreads' random victim selection uses on the stealing
// side, exposed as a plug-in policy for ablations.
type Random struct {
	mu  sync.Mutex
	buf []ult.Unit
	rng *rand.Rand
}

// NewRandom returns a random policy seeded deterministically.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Push implements Policy.
func (p *Random) Push(u ult.Unit) {
	p.mu.Lock()
	p.buf = append(p.buf, u)
	p.mu.Unlock()
}

// Pop implements Policy: a uniformly random held unit.
func (p *Random) Pop() ult.Unit {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.buf)
	if n == 0 {
		return nil
	}
	i := p.rng.Intn(n)
	u := p.buf[i]
	p.buf[i] = p.buf[n-1]
	p.buf[n-1] = nil
	p.buf = p.buf[:n-1]
	return u
}

// Len implements Policy.
func (p *Random) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.buf)
}

// Stack is a stackable scheduler: a stack of policies where the topmost
// policy is consulted first and can be pushed/popped at run time. This is
// the "Stackable Scheduler" row of Table I, unique to Argobots: user code
// can push an ad-hoc policy (e.g., a priority scheduler for a critical
// phase) and pop it to restore the previous behaviour.
type Stack struct {
	mu    sync.Mutex
	stack []Policy
}

// NewStack returns a stackable scheduler with base as its bottom policy.
func NewStack(base Policy) *Stack {
	return &Stack{stack: []Policy{base}}
}

// PushScheduler makes p the active (topmost) policy.
func (s *Stack) PushScheduler(p Policy) {
	s.mu.Lock()
	s.stack = append(s.stack, p)
	s.mu.Unlock()
}

// PopScheduler removes the topmost policy and returns it. The bottom
// policy can never be popped; PopScheduler returns nil in that case.
func (s *Stack) PopScheduler() Policy {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.stack) <= 1 {
		return nil
	}
	p := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	return p
}

// Depth reports the number of stacked policies.
func (s *Stack) Depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stack)
}

// top returns the active policy.
func (s *Stack) top() Policy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stack[len(s.stack)-1]
}

// snapshot returns the policies from top to bottom.
func (s *Stack) snapshot() []Policy {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Policy, len(s.stack))
	for i := range s.stack {
		out[i] = s.stack[len(s.stack)-1-i]
	}
	return out
}

// Push implements Policy: units go to the active policy.
func (s *Stack) Push(u ult.Unit) { s.top().Push(u) }

// PushBatch implements BatchPusher: the active policy is resolved once
// (one mutex acquisition) and receives the whole batch.
func (s *Stack) PushBatch(us []ult.Unit) { PushAll(s.top(), us) }

// PushYielded implements YieldQueuer by delegating to the active policy.
func (s *Stack) PushYielded(u ult.Unit) { Requeue(s.top(), u) }

// Pop implements Policy: the active policy is drained first, then lower
// ones, so pushing a scheduler takes over without losing queued work.
// The depth-1 case — every scheduler that never stacked an ad-hoc
// policy, i.e. the scheduling loops' steady state — skips the snapshot
// allocation.
func (s *Stack) Pop() ult.Unit {
	s.mu.Lock()
	if len(s.stack) == 1 {
		p := s.stack[0]
		s.mu.Unlock()
		return p.Pop()
	}
	out := make([]Policy, len(s.stack))
	for i := range s.stack {
		out[i] = s.stack[len(s.stack)-1-i]
	}
	s.mu.Unlock()
	for _, p := range out {
		if u := p.Pop(); u != nil {
			return u
		}
	}
	return nil
}

// Len implements Policy across all stacked policies.
func (s *Stack) Len() int {
	n := 0
	for _, p := range s.snapshot() {
		n += p.Len()
	}
	return n
}

// StatsProvider is the optional Policy extension instrumented pools
// implement (FIFO and LIFO do; their containers count every operation).
type StatsProvider interface {
	// Stats exposes the underlying container counters.
	Stats() *queue.Stats
}

// CountsReporter is the optional Policy extension for composite
// policies that aggregate several instrumented containers.
type CountsReporter interface {
	// Counts reports the summed container counters.
	Counts() queue.Counts
}

// CountsOf snapshots a policy's container counters; policies with no
// instrumentation (Random) report zeros. This is the single entry point
// the serving tier's metrics export uses — it never needs to know which
// policy a pool runs.
func CountsOf(p Policy) queue.Counts {
	switch v := p.(type) {
	case CountsReporter:
		return v.Counts()
	case StatsProvider:
		return v.Stats().Snapshot()
	}
	return queue.Counts{}
}

// Counts implements CountsReporter by summing the priority classes.
func (p *Priority) Counts() queue.Counts {
	var c queue.Counts
	for i := range p.classes {
		c = c.Plus(p.classes[i].Stats().Snapshot())
	}
	return c
}

// Counts implements CountsReporter across all stacked policies, so a
// stream's counters stay visible while an ad-hoc scheduler is pushed.
func (s *Stack) Counts() queue.Counts {
	var c queue.Counts
	for _, p := range s.snapshot() {
		c = c.Plus(CountsOf(p))
	}
	return c
}

// RoundRobin deals successive items to n targets in cyclic order: the
// dispatch pattern the paper's microbenchmarks use when a master thread
// pushes work units directly into other threads' pools (Converse
// CmiSyncSend, Argobots private pools, qthread_fork_to; §VIII-B).
type RoundRobin struct {
	mu   sync.Mutex
	n    int
	next int
}

// NewRoundRobin returns a dealer over n targets. It panics if n < 1.
func NewRoundRobin(n int) *RoundRobin {
	if n < 1 {
		panic("sched: round-robin over zero targets")
	}
	return &RoundRobin{n: n}
}

// Next returns the index of the next target.
func (r *RoundRobin) Next() int {
	r.mu.Lock()
	i := r.next
	r.next = (r.next + 1) % r.n
	r.mu.Unlock()
	return i
}

// Reset restarts the cycle at target 0.
func (r *RoundRobin) Reset() {
	r.mu.Lock()
	r.next = 0
	r.mu.Unlock()
}
