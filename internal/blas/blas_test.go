package blas

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float32) bool {
	return math.Abs(float64(a-b)) <= 1e-4*(1+math.Abs(float64(b)))
}

func TestSscal(t *testing.T) {
	v := []float32{1, 2, 3, 4}
	Sscal(v, 2.5)
	want := []float32{2.5, 5, 7.5, 10}
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("v = %v, want %v", v, want)
		}
	}
}

func TestSscalEmpty(t *testing.T) {
	Sscal(nil, 3) // must not panic
	Sscal([]float32{}, 3)
}

func TestSscalRangeClamps(t *testing.T) {
	v := []float32{1, 1, 1, 1}
	SscalRange(v, 2, -3, 2)
	if v[0] != 2 || v[1] != 2 || v[2] != 1 || v[3] != 1 {
		t.Fatalf("v = %v after clamped-low range", v)
	}
	SscalRange(v, 3, 3, 99)
	if v[3] != 3 {
		t.Fatalf("v = %v after clamped-high range", v)
	}
}

func TestSscalElem(t *testing.T) {
	v := []float32{1, 2, 3}
	SscalElem(v, 10, 1)
	if v[0] != 1 || v[1] != 20 || v[2] != 3 {
		t.Fatalf("v = %v", v)
	}
}

// Property: scaling the whole vector elementwise equals scaling it with
// one call — the equivalence the task-parallel microbenchmarks rely on.
func TestSscalElementwiseEquivalence(t *testing.T) {
	f := func(raw []float32, a float32) bool {
		if len(raw) > 256 {
			raw = raw[:256]
		}
		whole := make([]float32, len(raw))
		perElem := make([]float32, len(raw))
		copy(whole, raw)
		copy(perElem, raw)
		Sscal(whole, a)
		for i := range perElem {
			SscalElem(perElem, a, i)
		}
		for i := range whole {
			na, nb := math.IsNaN(float64(whole[i])), math.IsNaN(float64(perElem[i]))
			if na || nb {
				if na != nb {
					return false
				}
				continue
			}
			if whole[i] != perElem[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: chunked range scaling covers exactly the whole vector.
func TestSscalRangeChunksEquivalence(t *testing.T) {
	f := func(n16 uint16, k8 uint8) bool {
		n := int(n16%500) + 1
		k := int(k8%8) + 1
		whole := make([]float32, n)
		chunked := make([]float32, n)
		Iota(whole)
		Iota(chunked)
		Sscal(whole, 3)
		for tid := 0; tid < k; tid++ {
			lo := tid * n / k
			hi := (tid + 1) * n / k
			SscalRange(chunked, 3, lo, hi)
		}
		for i := range whole {
			if whole[i] != chunked[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSaxpy(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 20, 30}
	Saxpy(2, x, y)
	want := []float32{12, 24, 36}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
}

func TestSaxpyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Saxpy accepted mismatched lengths")
		}
	}()
	Saxpy(1, []float32{1}, []float32{1, 2})
}

func TestSdot(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{4, 5, 6}
	if got := Sdot(x, y); !almostEq(got, 32) {
		t.Fatalf("Sdot = %v, want 32", got)
	}
}

func TestSdotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sdot accepted mismatched lengths")
		}
	}()
	Sdot([]float32{1, 2}, []float32{1})
}

func TestSasum(t *testing.T) {
	if got := Sasum([]float32{-1, 2, -3}); !almostEq(got, 6) {
		t.Fatalf("Sasum = %v, want 6", got)
	}
	if got := Sasum(nil); got != 0 {
		t.Fatalf("Sasum(nil) = %v", got)
	}
}

func TestDgemmSmall(t *testing.T) {
	// [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50], accumulated onto C=I.
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	c := []float64{1, 0, 0, 1}
	Dgemm(2, a, b, c)
	want := []float64{20, 22, 43, 51}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c = %v, want %v", c, want)
		}
	}
}

func TestDgemmRowsPartitionMatchesWhole(t *testing.T) {
	const n = 7
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i % 5)
		b[i] = float64((i * 3) % 7)
	}
	whole := make([]float64, n*n)
	Dgemm(n, a, b, whole)
	parts := make([]float64, n*n)
	DgemmRows(n, a, b, parts, 0, 3)
	DgemmRows(n, a, b, parts, 3, n)
	for i := range whole {
		if whole[i] != parts[i] {
			t.Fatalf("row partition diverges at %d: %v vs %v", i, parts[i], whole[i])
		}
	}
}

func TestDgemmDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short slice did not panic")
		}
	}()
	Dgemm(3, make([]float64, 8), make([]float64, 9), make([]float64, 9))
}

func TestFillAndIota(t *testing.T) {
	v := make([]float32, 4)
	Fill(v, 7)
	for _, x := range v {
		if x != 7 {
			t.Fatalf("Fill: v = %v", v)
		}
	}
	Iota(v)
	for i, x := range v {
		if x != float32(i) {
			t.Fatalf("Iota: v = %v", v)
		}
	}
}
