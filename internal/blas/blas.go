// Package blas provides the BLAS-1 kernels the paper's evaluation uses as
// work-unit bodies (§IX, Listing 5): Sscal — chosen because it "matches
// perfectly the fine-grained approach of LWT and is highly parallelizable"
// — plus the small companions (axpy, dot, asum) the examples use to build
// realistic vector workloads.
package blas

// Sscal multiplies every component of v by a, in place (Listing 5).
func Sscal(v []float32, a float32) {
	for i := range v {
		v[i] *= a
	}
}

// SscalRange applies Sscal to the half-open index range [lo, hi) of v —
// the per-thread chunk of the for-loop microbenchmark (§VIII-A1).
func SscalRange(v []float32, a float32, lo, hi int) {
	if lo < 0 {
		lo = 0
	}
	if hi > len(v) {
		hi = len(v)
	}
	for i := lo; i < hi; i++ {
		v[i] *= a
	}
}

// SscalElem scales a single element — the per-task granularity of the
// task-parallel microbenchmarks ("one task is created for each vector
// element", §IX).
func SscalElem(v []float32, a float32, i int) {
	v[i] *= a
}

// Saxpy computes y ← a·x + y elementwise. It panics if the slices have
// different lengths.
func Saxpy(a float32, x, y []float32) {
	if len(x) != len(y) {
		panic("blas: Saxpy length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// Sdot returns the dot product of x and y. It panics on length mismatch.
func Sdot(x, y []float32) float32 {
	if len(x) != len(y) {
		panic("blas: Sdot length mismatch")
	}
	var s float32
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Sasum returns the sum of absolute values of v.
func Sasum(v []float32) float32 {
	var s float32
	for _, x := range v {
		if x < 0 {
			s -= x
		} else {
			s += x
		}
	}
	return s
}

// Fill sets every element of v to x.
func Fill(v []float32, x float32) {
	for i := range v {
		v[i] = x
	}
}

// Iota fills v with 0, 1, 2, ... — a convenient deterministic test vector.
func Iota(v []float32) {
	for i := range v {
		v[i] = float32(i)
	}
}

// Dgemm computes C ← A·B + C for dense row-major n×n matrices — the
// BLAS-3 workload the serving layer uses as a coarse-grained compute
// request, complementing the fine-grained BLAS-1 kernels above. It
// panics if any slice is shorter than n·n.
func Dgemm(n int, a, b, c []float64) {
	DgemmRows(n, a, b, c, 0, n)
}

// DgemmRows computes the row range [lo, hi) of C ← A·B + C, the
// per-work-unit chunk when a GEMM request is decomposed across ULTs.
func DgemmRows(n int, a, b, c []float64, lo, hi int) {
	if n < 0 || len(a) < n*n || len(b) < n*n || len(c) < n*n {
		panic("blas: Dgemm dimension mismatch")
	}
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	for i := lo; i < hi; i++ {
		ci := c[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			aik := a[i*n+k]
			if aik == 0 {
				continue
			}
			bk := b[k*n : (k+1)*n]
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
}
