// Package trace is the runtime's always-on flight recorder: executors
// record scheduling events (dispatch, tasklet execution, steal, barrier,
// idle, I/O park) into per-executor lock-free ring buffers, and the
// serving layer records one request interval per completion. The rings
// are bounded and overwrite their oldest entries, so tracing stays
// enabled under production load at a measured cost below 2% of serve
// throughput (see TRACING.md for the current number) — the recorder is
// meant to be *on* when the anomaly hits, not enabled afterwards.
//
// The package aggregates dumps into the kind of time breakdown the
// paper argues from — e.g. "Converse Threads expends up to 75% of its
// execution time in performing barrier and yield operations" (§IX-D) —
// and exports the Chrome trace-event JSON format for visual inspection
// in chrome://tracing or Perfetto.
//
// # Architecture
//
// A Recorder owns a registry of rings. Each executor loop acquires one
// ring for the lifetime of the loop (Recorder.Ring) and is that ring's
// only writer: the claim is an owner-local cursor load/store plus an
// odd sequence store — the owner-local-cursor/atomic-publication idiom
// of the Chase–Lev deque (internal/queue), applied to fixed-size slots,
// with no interlocked instruction on the hot path. Serve's per-shard
// request lanes (Recorder.SharedRing) are written by whichever executor
// finishes a request; there a fetch-add claims the slot and a CAS takes
// ownership. Two rate limiters keep always-on affordable: executor
// loops coalesce per-unit dispatch events into per-burst intervals
// (Batcher — one clock read per batch, Unit carries the unit count),
// and the serving layer samples its request intervals (every Nth plus
// every slow request; serve.Options.TraceSample).
//
// Readers never stop the writers: Snapshot walks every ring and decodes
// slots under a per-slot sequence check (seq odd = being written, seq
// even = published, seq encodes the claim cursor), discarding slots torn
// by a concurrent overwrite. A dump is therefore a consistent sample of
// the recent past, not a barrier — which is the point of a flight
// recorder.
//
// The process-global recorder (Default) is what every backend uses
// unless a test injects its own; LWT_TRACE_OFF=1 disables it (rings are
// nil, recording is a nil-check) and LWT_TRACE_SLOTS sizes the per-ring
// window.
package trace

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// Kind classifies a traced event.
type Kind int

// The traced event kinds.
const (
	// KindDispatch is a ULT dispatch interval. Executor loops batch
	// consecutive dispatches (Batcher): one event spans the burst and
	// Unit carries the number of units dispatched, not an id.
	KindDispatch Kind = iota
	// KindTasklet is an inline tasklet execution interval, batched like
	// KindDispatch (Unit = count).
	KindTasklet
	// KindYield is a yield hand-back instant (or a master-thread yield
	// interval on Converse).
	KindYield
	// KindSteal is a successful work steal instant.
	KindSteal
	// KindBarrier is a barrier wait interval.
	KindBarrier
	// KindIdle is an idle interval: from the dispatch cycle that first
	// found no work to the one that found some. Executor loops emit one
	// event per idle episode, not one per empty poll, so an idle
	// executor cannot flood its ring.
	KindIdle
	// KindUser is an application-defined interval; the serving layer
	// records one per sampled request (serve.Options.TraceSample, plus
	// every slow request), submission to completion, Unit = request id.
	KindUser
	// KindPark is an async-I/O park interval: the work unit was
	// suspended on the reactor, holding no executor.
	KindPark
	// KindCancel is a cooperative-cancellation instant: a parked or
	// queued request was woken or shed because its end-to-end budget
	// ran out (deadline passed, client gone).
	KindCancel
	// KindBreaker is a circuit-breaker state transition instant at the
	// gateway; Unit encodes the new state (0 closed, 1 half-open,
	// 2 open).
	KindBreaker

	numKinds = int(KindBreaker) + 1
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindDispatch:
		return "dispatch"
	case KindTasklet:
		return "tasklet"
	case KindYield:
		return "yield"
	case KindSteal:
		return "steal"
	case KindBarrier:
		return "barrier"
	case KindIdle:
		return "idle"
	case KindUser:
		return "user"
	case KindPark:
		return "park"
	case KindCancel:
		return "cancel"
	case KindBreaker:
		return "breaker"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// kindByName inverts String for dump round-trips.
func kindByName(s string) (Kind, bool) {
	for k := Kind(0); int(k) < numKinds; k++ {
		if k.String() == s {
			return k, true
		}
	}
	return 0, false
}

// MarshalJSON renders the kind by name, so dumps read as documentation.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON accepts either the name or the numeric form.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		if v, ok := kindByName(s); ok {
			*k = v
			return nil
		}
		return fmt.Errorf("trace: unknown kind %q", s)
	}
	var n int
	if err := json.Unmarshal(b, &n); err != nil {
		return err
	}
	*k = Kind(n)
	return nil
}

// Event is one decoded recorded event. Instantaneous events have
// Dur == 0.
type Event struct {
	// Lane is the recording ring's name (e.g. "argobots/es1",
	// "serve/go/shard0"); empty for hand-built events.
	Lane string `json:"lane,omitempty"`
	// Exec is the recording executor's identifier. Serve request lanes
	// use -(shard+1): the work ran on some backend executor, but the
	// interval belongs to the request.
	Exec int `json:"exec"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Unit is the work-unit or request ID involved, or 0.
	Unit uint64 `json:"unit,omitempty"`
	// Start is the event start time.
	Start time.Time `json:"start"`
	// Dur is the event duration (0 for instants).
	Dur time.Duration `json:"dur"`
	// Label is an optional annotation (interned; see LabelCode).
	Label string `json:"label,omitempty"`
}

// Labels are interned process-wide so a ring slot stores a fixed-size
// code instead of a string header (a string cannot be published
// atomically). Interning is for setup paths — executor loops and the
// serving layer register their labels once and reuse the code.
var labels = struct {
	sync.Mutex
	byName map[string]uint16
	names  []string
}{byName: map[string]uint16{"": 0}, names: []string{""}}

// LabelCode interns a label and returns its fixed-size code for Emit.
// Code 0 is the empty label. The table is process-wide and append-only;
// registering more than 65535 distinct labels panics, which no
// legitimate instrumentation does (labels name event classes, not
// instances).
func LabelCode(s string) uint16 {
	labels.Lock()
	defer labels.Unlock()
	if c, ok := labels.byName[s]; ok {
		return c
	}
	if len(labels.names) > 0xFFFF {
		panic("trace: label table overflow (labels must be event classes, not per-event data)")
	}
	c := uint16(len(labels.names))
	labels.byName[s] = c
	labels.names = append(labels.names, s)
	return c
}

// labelName resolves a code back to its string; unknown codes (from a
// dump produced by another process) decode as empty.
func labelName(c uint16) string {
	labels.Lock()
	defer labels.Unlock()
	if int(c) < len(labels.names) {
		return labels.names[c]
	}
	return ""
}
