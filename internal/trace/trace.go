// Package trace provides lightweight event tracing for the runtime
// emulations: executors record scheduling events (dispatch, yield,
// tasklet execution, steal, barrier, idle) into per-executor ring
// buffers, and the package aggregates them into the kind of time
// breakdown the paper argues from — e.g. "Converse Threads expends up to
// 75 % of its execution time in performing barrier and yield operations"
// (§IX-D). Traces can also be exported in the Chrome trace-event JSON
// format for visual inspection.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies a traced event.
type Kind int

// The traced event kinds.
const (
	// KindDispatch is a ULT dispatch interval.
	KindDispatch Kind = iota
	// KindTasklet is an inline tasklet execution interval.
	KindTasklet
	// KindYield is a yield hand-back instant.
	KindYield
	// KindSteal is a successful work steal instant.
	KindSteal
	// KindBarrier is a barrier wait interval.
	KindBarrier
	// KindIdle is an idle interval (no work found).
	KindIdle
	// KindUser is an application-defined interval.
	KindUser
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindDispatch:
		return "dispatch"
	case KindTasklet:
		return "tasklet"
	case KindYield:
		return "yield"
	case KindSteal:
		return "steal"
	case KindBarrier:
		return "barrier"
	case KindIdle:
		return "idle"
	case KindUser:
		return "user"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one recorded event. Instantaneous events have Dur == 0.
type Event struct {
	// Exec is the recording executor's identifier.
	Exec int
	// Kind classifies the event.
	Kind Kind
	// Unit is the work-unit ID involved, or 0.
	Unit uint64
	// Start is the event start time.
	Start time.Time
	// Dur is the event duration (0 for instants).
	Dur time.Duration
	// Label is an optional annotation.
	Label string
}

// Recorder collects events from any number of executors. A nil *Recorder
// is valid and records nothing, so runtimes can be instrumented
// unconditionally.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	cap    int
	drops  uint64
	t0     time.Time
}

// NewRecorder returns a recorder bounded to capacity events (older events
// are never evicted; past capacity new events are counted as dropped, so
// a trace is always a prefix of the run).
func NewRecorder(capacity int) *Recorder {
	if capacity < 1 {
		capacity = 1
	}
	return &Recorder{cap: capacity, t0: time.Now()}
}

// Record appends an event. Safe for concurrent use; no-op on nil.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.events) >= r.cap {
		r.drops++
	} else {
		r.events = append(r.events, e)
	}
	r.mu.Unlock()
}

// Span records an interval event around fn. No-op wrapper on nil.
func (r *Recorder) Span(exec int, kind Kind, unit uint64, fn func()) {
	if r == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	r.Record(Event{Exec: exec, Kind: kind, Unit: unit, Start: start, Dur: time.Since(start)})
}

// Instant records a zero-duration event. No-op on nil.
func (r *Recorder) Instant(exec int, kind Kind, unit uint64) {
	if r == nil {
		return
	}
	r.Record(Event{Exec: exec, Kind: kind, Unit: unit, Start: time.Now()})
}

// Events returns a copy of the recorded events in recording order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Dropped reports how many events exceeded capacity.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drops
}

// Reset clears the recorder.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = r.events[:0]
	r.drops = 0
	r.t0 = time.Now()
	r.mu.Unlock()
}

// Summary is the aggregate breakdown of a trace.
type Summary struct {
	// ByKind is total duration per interval kind.
	ByKind map[Kind]time.Duration
	// Counts is the event count per kind (including instants).
	Counts map[Kind]int
	// Execs is the set of executor IDs seen.
	Execs []int
	// Span is the wall interval from first event start to last event
	// end.
	Span time.Duration
}

// Summarize aggregates a trace.
func Summarize(events []Event) Summary {
	s := Summary{ByKind: map[Kind]time.Duration{}, Counts: map[Kind]int{}}
	if len(events) == 0 {
		return s
	}
	execSet := map[int]bool{}
	first := events[0].Start
	last := events[0].Start.Add(events[0].Dur)
	for _, e := range events {
		s.ByKind[e.Kind] += e.Dur
		s.Counts[e.Kind]++
		execSet[e.Exec] = true
		if e.Start.Before(first) {
			first = e.Start
		}
		if end := e.Start.Add(e.Dur); end.After(last) {
			last = end
		}
	}
	for id := range execSet {
		s.Execs = append(s.Execs, id)
	}
	sort.Ints(s.Execs)
	s.Span = last.Sub(first)
	return s
}

// Fraction reports the share of traced interval time spent in the given
// kinds (e.g. barrier+yield for the paper's Converse observation).
func (s Summary) Fraction(kinds ...Kind) float64 {
	var total, sel time.Duration
	for k, d := range s.ByKind {
		total += d
		for _, want := range kinds {
			if k == want {
				sel += d
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(sel) / float64(total)
}

// Render formats the summary as an aligned text table.
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d executors, span %v\n", len(s.Execs), s.Span)
	kinds := make([]Kind, 0, len(s.Counts))
	for k := range s.Counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %-9s count=%-7d time=%v\n", k, s.Counts[k], s.ByKind[k])
	}
	return b.String()
}

// chromeEvent is one entry of the Chrome trace-event format.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
}

// WriteChromeTrace exports the events as a Chrome trace-event JSON array
// (load in chrome://tracing or Perfetto). Executors map to thread lanes.
func WriteChromeTrace(w io.Writer, events []Event) error {
	if len(events) == 0 {
		_, err := w.Write([]byte("[]"))
		return err
	}
	t0 := events[0].Start
	for _, e := range events {
		if e.Start.Before(t0) {
			t0 = e.Start
		}
	}
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		ph := "X"
		if e.Dur == 0 {
			ph = "i"
		}
		name := e.Kind.String()
		if e.Label != "" {
			name += ":" + e.Label
		}
		out = append(out, chromeEvent{
			Name: name,
			Ph:   ph,
			Ts:   float64(e.Start.Sub(t0)) / 1e3,
			Dur:  float64(e.Dur) / 1e3,
			PID:  1,
			TID:  e.Exec,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
